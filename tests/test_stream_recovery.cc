// Streaming recovery (DESIGN.md §12) bit-exactness and fault tests.
//
// The streaming read path (Options::streaming_recovery, ON by default) must
// be observationally identical to the seed's materializing path: same
// recovered tensors bit-for-bit, same accept/reject decisions under faults
// and corruption, at every lane and worker count, with CAS on or off. These
// tests pin that contract; the peak-buffering test pins the point of the
// whole exercise (recovery no longer allocates whole-snapshot buffers).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/blob_formats.h"
#include "core/manager.h"
#include "serialize/compress.h"
#include "serve/service.h"
#include "serve/trace.h"
#include "storage/env.h"
#include "storage/stream_file.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using ::mmm::testing::TempDir;

void ExpectSetsEqual(const ModelSet& a, const ModelSet& b,
                     const std::string& label) {
  ASSERT_EQ(a.models.size(), b.models.size()) << label;
  for (size_t m = 0; m < a.models.size(); ++m) {
    ASSERT_EQ(a.models[m].size(), b.models[m].size()) << label << " model " << m;
    for (size_t p = 0; p < a.models[m].size(); ++p) {
      EXPECT_EQ(a.models[m][p].first, b.models[m][p].first)
          << label << " model " << m << " param " << p;
      EXPECT_TRUE(a.models[m][p].second.Equals(b.models[m][p].second))
          << label << " model " << m << " param " << p << " ("
          << a.models[m][p].first << ") differs";
    }
  }
}

struct StoreFixture {
  std::unique_ptr<MultiModelScenario> scenario;
  /// Saved ids, oldest first, across all four approaches and the version
  /// chain (initial + 2 derived cycles per approach).
  std::vector<std::string> ids;
};

/// Builds a store at `root` holding an initial set plus two update cycles
/// for every approach, then closes the writing manager (managers hold the
/// journal lock, so only one may be open on a root at a time).
StoreFixture BuildStore(const std::string& root, Env* env, bool cas_enabled,
                        Compression compression) {
  StoreFixture fixture;
  ScenarioConfig config = ScenarioConfig::Battery(6);
  config.samples_per_dataset = 32;
  fixture.scenario = std::make_unique<MultiModelScenario>(config);
  fixture.scenario->Init().Check();

  ModelSetManager::Options options;
  options.root_dir = root;
  options.env = env;
  options.resolver = fixture.scenario.get();
  options.cas.enabled = cas_enabled;
  options.blob_compression = compression;
  options.streaming_recovery = false;  // write path is identical either way
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  std::map<ApproachType, std::string> heads;
  for (ApproachType type : kAllApproaches) {
    std::string id = manager->SaveInitial(type, fixture.scenario->current_set())
                         .ValueOrDie()
                         .set_id;
    heads[type] = id;
    fixture.ids.push_back(id);
  }
  for (int cycle = 0; cycle < 2; ++cycle) {
    ModelSetUpdateInfo update = fixture.scenario->AdvanceCycle().ValueOrDie();
    for (ApproachType type : kAllApproaches) {
      update.base_set_id = heads[type];
      std::string id = manager
                           ->SaveDerived(type, fixture.scenario->current_set(),
                                         update)
                           .ValueOrDie()
                           .set_id;
      heads[type] = id;
      fixture.ids.push_back(id);
    }
  }
  return fixture;
}

/// Recovers every id with one manager configuration; the manager is opened
/// and closed inside so arms never contend for the journal lock.
std::vector<ModelSet> RecoverAll(const std::string& root, Env* env,
                                 DatasetResolver* resolver,
                                 const std::vector<std::string>& ids,
                                 bool streaming, size_t lanes,
                                 uint64_t window_bytes = 0) {
  ModelSetManager::Options options;
  options.root_dir = root;
  options.env = env;
  options.resolver = resolver;
  options.streaming_recovery = streaming;
  options.stream_window_bytes = window_bytes;
  options.pipeline.lanes = lanes;
  auto manager = ModelSetManager::Open(options).ValueOrDie();
  std::vector<ModelSet> sets;
  sets.reserve(ids.size());
  for (const std::string& id : ids) {
    sets.push_back(manager->Recover(id).ValueOrDie());
  }
  return sets;
}

/// Tentpole contract: streaming == materializing, bit for bit, for all four
/// approaches × lanes {1, 4} × CAS {off, on} × compression {none, lz}.
TEST(StreamRecoveryTest, BitExactAcrossApproachesLanesCasCompression) {
  for (bool cas : {false, true}) {
    for (Compression compression : {Compression::kNone, Compression::kLz}) {
      SCOPED_TRACE(::testing::Message()
                   << "cas=" << cas << " compression="
                   << static_cast<int>(compression));
      TempDir dir("stream-bitexact");
      StoreFixture fixture = BuildStore(dir.path() + "/store", Env::Default(),
                                        cas, compression);

      std::vector<ModelSet> reference =
          RecoverAll(dir.path() + "/store", Env::Default(),
                     fixture.scenario.get(), fixture.ids,
                     /*streaming=*/false, /*lanes=*/1);
      for (size_t lanes : {size_t{1}, size_t{4}}) {
        for (bool streaming : {false, true}) {
          if (!streaming && lanes == 1) continue;  // the reference itself
          std::vector<ModelSet> got =
              RecoverAll(dir.path() + "/store", Env::Default(),
                         fixture.scenario.get(), fixture.ids, streaming, lanes);
          ASSERT_EQ(got.size(), reference.size());
          for (size_t i = 0; i < got.size(); ++i) {
            ExpectSetsEqual(reference[i], got[i],
                            StringFormat("set %s streaming=%d lanes=%zu",
                                         fixture.ids[i].c_str(), streaming,
                                         lanes));
          }
        }
      }
    }
  }
}

/// Tiny stream windows force many ReadFileRange calls and exercise every
/// window-boundary path in the incremental decoders; results must still be
/// bit-exact.
TEST(StreamRecoveryTest, BitExactAtTinyWindowSizes) {
  TempDir dir("stream-window");
  StoreFixture fixture = BuildStore(dir.path() + "/store", Env::Default(),
                                    /*cas_enabled=*/true, Compression::kLz);
  std::vector<ModelSet> reference =
      RecoverAll(dir.path() + "/store", Env::Default(), fixture.scenario.get(),
                 fixture.ids, /*streaming=*/false, /*lanes=*/1);
  for (uint64_t window : {uint64_t{64}, uint64_t{4096}}) {
    std::vector<ModelSet> got =
        RecoverAll(dir.path() + "/store", Env::Default(),
                   fixture.scenario.get(), fixture.ids,
                   /*streaming=*/true, /*lanes=*/1, window);
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectSetsEqual(reference[i], got[i],
                      StringFormat("window=%llu set %s",
                                   static_cast<unsigned long long>(window),
                                   fixture.ids[i].c_str()));
    }
  }
}

/// Serving-layer parity: Replay at workers {1, 4}, streaming off vs on,
/// recovered sets identical pairwise and across worker counts.
TEST(StreamRecoveryTest, BitExactThroughServiceWorkers) {
  TempDir dir("stream-workers");
  StoreFixture fixture = BuildStore(dir.path() + "/store", Env::Default(),
                                    /*cas_enabled=*/false, Compression::kNone);
  // Replay the Update chain (the only approach with the cached path that
  // admits layers early under streaming).
  std::vector<std::string> trace;
  for (const std::string& id : fixture.ids) trace.push_back(id);

  std::vector<ModelSet> reference;
  bool have_reference = false;
  for (size_t workers : {size_t{1}, size_t{4}}) {
    for (bool streaming : {false, true}) {
      ModelSetManager::Options options;
      options.root_dir = dir.path() + "/store";
      options.resolver = fixture.scenario.get();
      options.streaming_recovery = streaming;
      auto manager = ModelSetManager::Open(options).ValueOrDie();
      ModelSetServiceOptions service_options;
      service_options.workers = workers;
      ModelSetService service(manager.get(), service_options);
      std::vector<ModelSet> recovered;
      std::vector<ServeResult> results = service.Replay(trace, &recovered);
      ASSERT_EQ(results.size(), trace.size());
      for (const ServeResult& r : results) {
        ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      }
      ASSERT_EQ(recovered.size(), trace.size());
      if (!have_reference) {
        reference = std::move(recovered);
        have_reference = true;
        continue;
      }
      for (size_t i = 0; i < recovered.size(); ++i) {
        ExpectSetsEqual(reference[i], recovered[i],
                        StringFormat("workers=%zu streaming=%d request %zu",
                                     workers, streaming, i));
      }
    }
  }
}

/// Streaming admits each finished layer to the LayerCache while the blob is
/// still in flight; a warm replay must therefore hit the cache and still be
/// bit-exact.
TEST(StreamRecoveryTest, EarlyLayerAdmissionFillsCache) {
  TempDir dir("stream-cache");
  StoreFixture fixture = BuildStore(dir.path() + "/store", Env::Default(),
                                    /*cas_enabled=*/false, Compression::kNone);
  // Only Update sets have the cached recovery path; pick its chain.
  std::vector<std::string> chain;
  for (size_t i = 0; i < fixture.ids.size(); ++i) {
    // BuildStore pushes approaches in kAllApproaches order; kUpdate is
    // index 2 within each group of 4.
    if (i % 4 == 2) chain.push_back(fixture.ids[i]);
  }
  ASSERT_EQ(chain.size(), 3u);

  ModelSetManager::Options options;
  options.root_dir = dir.path() + "/store";
  options.resolver = fixture.scenario.get();
  options.streaming_recovery = true;
  auto manager = ModelSetManager::Open(options).ValueOrDie();
  ModelSetServiceOptions service_options;
  service_options.workers = 1;
  service_options.cache_enabled = true;
  service_options.cache_capacity_bytes = 256ull * 1024 * 1024;
  ModelSetService service(manager.get(), service_options);

  // Cold pass populates the cache from inside the streaming decode; the
  // warm pass must take layer hits.
  std::vector<ModelSet> cold_sets;
  std::vector<ServeResult> cold = service.Replay(chain, &cold_sets);
  for (const ServeResult& r : cold) ASSERT_TRUE(r.status.ok());
  std::vector<ModelSet> warm_sets;
  std::vector<ServeResult> warm = service.Replay(chain, &warm_sets);
  uint64_t warm_hits = 0;
  for (const ServeResult& r : warm) {
    ASSERT_TRUE(r.status.ok());
    warm_hits += r.cache.layer_hits;
  }
  EXPECT_GT(warm_hits, 0u);
  for (size_t i = 0; i < chain.size(); ++i) {
    ExpectSetsEqual(cold_sets[i], warm_sets[i],
                    StringFormat("warm replay of %s", chain[i].c_str()));
  }
}

/// Shard-kill fault (blobs subtree unreachable): both read paths fail
/// cleanly with a non-OK status, and after healing both recover the exact
/// reference bytes. Streaming must not mask or reorder fault surfacing.
TEST(StreamRecoveryTest, FaultedBlobDirFailsCleanlyBothPaths) {
  TempDir dir("stream-fault");
  FaultInjectionEnv fault(Env::Default());
  const std::string root = dir.path() + "/store";
  StoreFixture fixture = BuildStore(root, &fault, /*cas_enabled=*/false,
                                    Compression::kLz);
  std::vector<ModelSet> reference =
      RecoverAll(root, &fault, fixture.scenario.get(), fixture.ids,
                 /*streaming=*/false, /*lanes=*/1);

  for (bool streaming : {false, true}) {
    ModelSetManager::Options options;
    options.root_dir = root;
    options.env = &fault;
    options.resolver = fixture.scenario.get();
    options.streaming_recovery = streaming;
    auto manager = ModelSetManager::Open(options).ValueOrDie();

    fault.FailPathsUnder(root + "/blobs");
    // Baseline's initial set (ids[1]) must read its param blob.
    Result<ModelSet> down = manager->Recover(fixture.ids[1]);
    EXPECT_FALSE(down.ok()) << "streaming=" << streaming;
    fault.HealPaths();

    for (size_t i = 0; i < fixture.ids.size(); ++i) {
      Result<ModelSet> up = manager->Recover(fixture.ids[i]);
      ASSERT_TRUE(up.ok()) << up.status().ToString();
      ExpectSetsEqual(reference[i], up.ValueOrDie(),
                      StringFormat("healed streaming=%d set %s",
                                   static_cast<int>(streaming),
                                   fixture.ids[i].c_str()));
    }
  }
}

/// Short read (a blob truncated on disk after a partial crash): both paths
/// must reject — never return a short or padded set — and agree on ok().
TEST(StreamRecoveryTest, TruncatedBlobRejectedByBothPaths) {
  TempDir dir("stream-trunc");
  const std::string root = dir.path() + "/store";
  StoreFixture fixture = BuildStore(root, Env::Default(), /*cas_enabled=*/false,
                                    Compression::kNone);

  // Truncate the largest blob file (a parameter-scale artifact some set
  // needs) to half its size, emulating a torn write that fsync never
  // covered.
  std::string victim;
  uintmax_t victim_size = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(root + "/blobs")) {
    if (!entry.is_regular_file()) continue;
    if (entry.file_size() > victim_size) {
      victim_size = entry.file_size();
      victim = entry.path().string();
    }
  }
  ASSERT_FALSE(victim.empty());
  std::filesystem::resize_file(victim, victim_size / 2);

  size_t rejected = 0;
  for (const std::string& id : fixture.ids) {
    ModelSet materialized;
    bool mat_ok;
    {
      ModelSetManager::Options options;
      options.root_dir = root;
      options.resolver = fixture.scenario.get();
      options.streaming_recovery = false;
      auto manager = ModelSetManager::Open(options).ValueOrDie();
      Result<ModelSet> r = manager->Recover(id);
      mat_ok = r.ok();
      if (mat_ok) materialized = std::move(r).ValueOrDie();
    }
    ModelSetManager::Options options;
    options.root_dir = root;
    options.resolver = fixture.scenario.get();
    options.streaming_recovery = true;
    auto manager = ModelSetManager::Open(options).ValueOrDie();
    Result<ModelSet> streamed = manager->Recover(id);
    ASSERT_EQ(mat_ok, streamed.ok())
        << "paths disagree on set " << id << ": materializing "
        << (mat_ok ? "accepted" : "rejected") << ", streaming "
        << streamed.status().ToString();
    if (mat_ok) {
      ExpectSetsEqual(materialized, streamed.ValueOrDie(), "set " + id);
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u) << "truncation hit no recovery path";
}

/// The point of streaming: peak decoder buffering stays at roughly one
/// layer, not the whole decompressed blob.
TEST(StreamRecoveryTest, PeakBufferingIsOneLayerNotWholeBlob) {
  auto set = MakeInitializedSet(Ffnn48Spec(), 16, /*seed=*/11).ValueOrDie();
  std::vector<uint8_t> raw = EncodeParamBlob(set);
  std::vector<uint8_t> blob = CompressBlob(Compression::kLz, raw);

  size_t max_layer_bytes = 0;
  for (const auto& [key, tensor] : set.models[0]) {
    max_layer_bytes =
        std::max(max_layer_bytes, tensor.data().size() * sizeof(float));
  }

  BlobDecompressor decompressor;
  size_t emitted = 0;
  ParamBlobStreamDecoder decoder(
      set.spec, raw.size(),
      [&](size_t, size_t, const std::string&, Tensor) {
        ++emitted;
        return Status::OK();
      });
  std::vector<uint8_t> ready;
  const size_t chunk = 64 * 1024;
  for (size_t off = 0; off < blob.size(); off += chunk) {
    size_t n = std::min(chunk, blob.size() - off);
    ready.clear();
    ASSERT_TRUE(
        decompressor.Feed(std::span<const uint8_t>(blob.data() + off, n), &ready)
            .ok());
    ASSERT_TRUE(decoder.Feed(ready).ok());
  }
  ready.clear();
  ASSERT_TRUE(decompressor.Finish(&ready).ok());
  ASSERT_TRUE(decoder.Feed(ready).ok());
  ASSERT_TRUE(decoder.Finish().ok());
  EXPECT_EQ(emitted, set.models.size() * set.models[0].size());

  // One layer plus bounded slack — far below the whole blob.
  EXPECT_LE(decoder.peak_buffered_bytes(), max_layer_bytes + 4096);
  EXPECT_LT(decoder.peak_buffered_bytes(), raw.size() / 4);
  // The LZ window retains at most kMaxOffset bytes plus chunk slack.
  EXPECT_LT(decompressor.peak_buffered_bytes(), raw.size());
}

}  // namespace
}  // namespace mmm
