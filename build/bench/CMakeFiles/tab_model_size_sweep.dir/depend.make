# Empty dependencies file for tab_model_size_sweep.
# This may be replaced when dependencies are built.
