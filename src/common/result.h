#ifndef MMM_COMMON_RESULT_H_
#define MMM_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace mmm {

/// \brief Either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result: a fallible function that produces a value returns
/// Result<T> instead of taking an out-parameter.
///
/// \code
///   Result<Tensor> Load(const std::string& path);
///   ...
///   MMM_ASSIGN_OR_RETURN(Tensor t, Load(path));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Aborts if the status is OK, since an OK
  /// Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      Status::Internal("Result constructed from OK status without a value").Check();
    }
  }

  bool ok() const { return status_.ok(); }

  /// Returns the status (OK when a value is present).
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Returns the value; undefined if !ok().
  const T& ValueOrDie() const& {
    status_.Check();
    return *value_;
  }
  T& ValueOrDie() & {
    status_.Check();
    return *value_;
  }
  T ValueOrDie() && {
    status_.Check();
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mmm

#endif  // MMM_COMMON_RESULT_H_
