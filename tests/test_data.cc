#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/cifar_synthetic.h"
#include "data/dataset.h"
#include "data/dataset_ref.h"
#include "data/normalizer.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::RandomTensor;

TEST(TrainingDataTest, SizeAndHead) {
  TrainingData data{RandomTensor(Shape{10, 4}, 1), RandomTensor(Shape{10, 1}, 2)};
  EXPECT_EQ(data.size(), 10u);
  TrainingData head = data.Head(4);
  EXPECT_EQ(head.size(), 4u);
  EXPECT_EQ(head.inputs.shape(), (Shape{4, 4}));
  // Head keeps prefix rows exactly.
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(head.inputs.at(i), data.inputs.at(i));
  }
}

TEST(TrainingDataTest, HeadLargerThanSizeIsIdentity) {
  TrainingData data{RandomTensor(Shape{5, 2}, 3), RandomTensor(Shape{5, 1}, 4)};
  TrainingData head = data.Head(100);
  EXPECT_EQ(head.size(), 5u);
  EXPECT_TRUE(head.inputs.Equals(data.inputs));
}

TEST(TrainingDataTest, HeadOfHighRankInputs) {
  TrainingData data{RandomTensor(Shape{6, 3, 4, 4}, 5), RandomTensor(Shape{6}, 6)};
  TrainingData head = data.Head(2);
  EXPECT_EQ(head.inputs.shape(), (Shape{2, 3, 4, 4}));
  EXPECT_EQ(head.targets.shape(), (Shape{2}));
}

TEST(NormalizerTest, NormalizeDenormalizeRoundTrip) {
  FeatureNormalizer norm({1.0f, -2.0f}, {2.0f, 0.5f});
  Tensor m(Shape{3, 2}, {1, -2, 3, -1, 5, 0});
  ASSERT_OK_AND_ASSIGN(Tensor normalized, norm.Normalize(m));
  EXPECT_EQ(normalized.at2(0, 0), 0.0f);
  EXPECT_EQ(normalized.at2(0, 1), 0.0f);
  EXPECT_EQ(normalized.at2(1, 0), 1.0f);
  ASSERT_OK_AND_ASSIGN(Tensor back, norm.Denormalize(normalized));
  EXPECT_TRUE(back.AllClose(m, 1e-5f));
}

TEST(NormalizerTest, RejectsWrongWidth) {
  FeatureNormalizer norm({0.0f}, {1.0f});
  EXPECT_TRUE(norm.Normalize(Tensor(Shape{2, 3})).status().IsInvalidArgument());
  EXPECT_TRUE(norm.Normalize(Tensor(Shape{4})).status().IsInvalidArgument());
}

TEST(NormalizerTest, JsonRoundTrip) {
  FeatureNormalizer norm({1.5f, -0.25f, 3.0f}, {2.0f, 4.0f, 0.125f});
  ASSERT_OK_AND_ASSIGN(FeatureNormalizer decoded,
                       FeatureNormalizer::FromJson(norm.ToJson()));
  EXPECT_EQ(decoded, norm);
}

TEST(NormalizerTest, FromJsonRejectsZeroScale) {
  FeatureNormalizer norm({1.0f}, {1.0f});
  JsonValue json = norm.ToJson();
  JsonValue scales = JsonValue::Array();
  scales.Append(0.0);
  json.Set("scales", std::move(scales));
  EXPECT_TRUE(FeatureNormalizer::FromJson(json).status().IsCorruption());
}

TEST(DatasetRefTest, JsonRoundTrip) {
  DatasetRef ref{"battery://cell/17/cycle/2", "abc123"};
  ASSERT_OK_AND_ASSIGN(DatasetRef decoded, DatasetRef::FromJson(ref.ToJson()));
  EXPECT_EQ(decoded, ref);
}

TEST(DatasetRefTest, HashIsContentSensitive) {
  TrainingData a{RandomTensor(Shape{4, 2}, 1), RandomTensor(Shape{4, 1}, 2)};
  TrainingData b = a;
  EXPECT_EQ(HashTrainingData(a), HashTrainingData(b));
  b.targets.at(0) += 1e-6f;
  EXPECT_NE(HashTrainingData(a), HashTrainingData(b));
}

TEST(DatasetRefTest, HashCoversShapeNotJustBytes) {
  TrainingData a{Tensor(Shape{2, 2}, {1, 2, 3, 4}), Tensor(Shape{2}, {0, 1})};
  TrainingData b{Tensor(Shape{4, 1}, {1, 2, 3, 4}), Tensor(Shape{2}, {0, 1})};
  EXPECT_NE(HashTrainingData(a), HashTrainingData(b));
}

TEST(CifarSyntheticTest, ShapesAndLabelRange) {
  CifarSyntheticGenerator gen(9);
  TrainingData data = gen.Generate(0, 0, 32);
  EXPECT_EQ(data.inputs.shape(), (Shape{32, 3, 32, 32}));
  EXPECT_EQ(data.targets.shape(), (Shape{32}));
  for (float label : data.targets.data()) {
    EXPECT_GE(label, 0.0f);
    EXPECT_LT(label, 10.0f);
    EXPECT_EQ(label, std::floor(label));
  }
}

TEST(CifarSyntheticTest, PixelsInUnitRange) {
  CifarSyntheticGenerator gen(10);
  TrainingData data = gen.Generate(1, 0, 8);
  for (float p : data.inputs.data()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(CifarSyntheticTest, DeterministicPerKey) {
  CifarSyntheticGenerator gen(11);
  TrainingData a = gen.Generate(5, 2, 16);
  TrainingData b = gen.Generate(5, 2, 16);
  EXPECT_TRUE(a.inputs.Equals(b.inputs));
  EXPECT_TRUE(a.targets.Equals(b.targets));
  EXPECT_FALSE(a.inputs.Equals(gen.Generate(6, 2, 16).inputs));
  EXPECT_FALSE(a.inputs.Equals(gen.Generate(5, 3, 16).inputs));
}

TEST(CifarSyntheticTest, AllClassesAppear) {
  CifarSyntheticGenerator gen(12);
  TrainingData data = gen.Generate(0, 0, 500);
  std::set<int> classes;
  for (float label : data.targets.data()) {
    classes.insert(static_cast<int>(label));
  }
  EXPECT_EQ(classes.size(), 10u);
}

TEST(CifarSyntheticTest, ClassesAreSeparableByMeanColor) {
  // Two images of the same class should usually be closer in channel means
  // than images of different classes — the signal a convnet learns.
  CifarSyntheticGenerator gen(13);
  TrainingData data = gen.Generate(0, 0, 200);
  const size_t image = 3 * 32 * 32;
  auto mean_of = [&](size_t i) {
    double sum = 0.0;
    for (size_t j = 0; j < image; ++j) sum += data.inputs.at(i * image + j);
    return sum / image;
  };
  // Average intra-class vs inter-class distance of image means.
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  for (size_t i = 0; i < 60; ++i) {
    for (size_t j = i + 1; j < 60; ++j) {
      double d = std::fabs(mean_of(i) - mean_of(j));
      if (data.targets.at(i) == data.targets.at(j)) {
        intra += d;
        ++intra_n;
      } else {
        inter += d;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0);
  ASSERT_GT(inter_n, 0);
  EXPECT_LT(intra / intra_n, inter / inter_n);
}

}  // namespace
}  // namespace mmm
