// Fixture: suppressed naked new lints clean; smart-pointer construction is
// never flagged in the first place.
#include <memory>

struct Widget {
  int value = 0;
};

Widget* Make() {
  // MMMLINT(naked-new): fixture hands ownership to a C API
  return new Widget();
}

std::unique_ptr<Widget> MakeOwned() {
  return std::unique_ptr<Widget>(new Widget());
}
