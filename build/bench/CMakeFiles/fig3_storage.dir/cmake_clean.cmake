file(REMOVE_RECURSE
  "CMakeFiles/fig3_storage.dir/fig3_storage.cpp.o"
  "CMakeFiles/fig3_storage.dir/fig3_storage.cpp.o.d"
  "fig3_storage"
  "fig3_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
