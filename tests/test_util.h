#ifndef MMM_TESTS_TEST_UTIL_H_
#define MMM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace mmm::testing {

/// gtest helpers for Status/Result.
#define ASSERT_OK(expr)                                   \
  do {                                                    \
    const ::mmm::Status _st = (expr);                     \
    ASSERT_TRUE(_st.ok()) << _st.ToString();              \
  } while (false)

#define EXPECT_OK(expr)                                   \
  do {                                                    \
    const ::mmm::Status _st = (expr);                     \
    EXPECT_TRUE(_st.ok()) << _st.ToString();              \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                  \
  auto MMM_CONCAT(_res_, __LINE__) = (rexpr);             \
  ASSERT_TRUE(MMM_CONCAT(_res_, __LINE__).ok())           \
      << MMM_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(MMM_CONCAT(_res_, __LINE__)).ValueOrDie()

/// Unique scratch directory under the system temp dir, removed on
/// destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("mmm-test-" + tag + "-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Uniform random tensor in [-1, 1).
inline Tensor RandomTensor(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (float& x : t.mutable_data()) {
    x = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  return t;
}

}  // namespace mmm::testing

#endif  // MMM_TESTS_TEST_UTIL_H_
