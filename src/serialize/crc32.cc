#include "serialize/crc32.h"

#include <array>

namespace mmm {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xedb88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32::Extend(uint32_t crc, std::span<const uint8_t> data) {
  const auto& table = Table();
  crc = ~crc;
  for (uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32::Compute(std::span<const uint8_t> data) { return Extend(0, data); }

uint32_t Crc32::Compute(std::string_view data) {
  return Compute(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(data.data()), data.size()));
}

}  // namespace mmm
