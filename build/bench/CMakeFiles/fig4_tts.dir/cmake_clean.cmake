file(REMOVE_RECURSE
  "CMakeFiles/fig4_tts.dir/fig4_tts.cpp.o"
  "CMakeFiles/fig4_tts.dir/fig4_tts.cpp.o.d"
  "fig4_tts"
  "fig4_tts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
