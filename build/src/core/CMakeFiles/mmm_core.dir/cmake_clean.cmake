file(REMOVE_RECURSE
  "CMakeFiles/mmm_core.dir/adaptive.cc.o"
  "CMakeFiles/mmm_core.dir/adaptive.cc.o.d"
  "CMakeFiles/mmm_core.dir/baseline.cc.o"
  "CMakeFiles/mmm_core.dir/baseline.cc.o.d"
  "CMakeFiles/mmm_core.dir/blob_formats.cc.o"
  "CMakeFiles/mmm_core.dir/blob_formats.cc.o.d"
  "CMakeFiles/mmm_core.dir/gc.cc.o"
  "CMakeFiles/mmm_core.dir/gc.cc.o.d"
  "CMakeFiles/mmm_core.dir/inspect.cc.o"
  "CMakeFiles/mmm_core.dir/inspect.cc.o.d"
  "CMakeFiles/mmm_core.dir/manager.cc.o"
  "CMakeFiles/mmm_core.dir/manager.cc.o.d"
  "CMakeFiles/mmm_core.dir/mmlib_base.cc.o"
  "CMakeFiles/mmm_core.dir/mmlib_base.cc.o.d"
  "CMakeFiles/mmm_core.dir/model_set.cc.o"
  "CMakeFiles/mmm_core.dir/model_set.cc.o.d"
  "CMakeFiles/mmm_core.dir/provenance.cc.o"
  "CMakeFiles/mmm_core.dir/provenance.cc.o.d"
  "CMakeFiles/mmm_core.dir/recommend.cc.o"
  "CMakeFiles/mmm_core.dir/recommend.cc.o.d"
  "CMakeFiles/mmm_core.dir/set_codec.cc.o"
  "CMakeFiles/mmm_core.dir/set_codec.cc.o.d"
  "CMakeFiles/mmm_core.dir/streaming.cc.o"
  "CMakeFiles/mmm_core.dir/streaming.cc.o.d"
  "CMakeFiles/mmm_core.dir/update.cc.o"
  "CMakeFiles/mmm_core.dir/update.cc.o.d"
  "libmmm_core.a"
  "libmmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
