#ifndef MMM_DATA_NORMALIZER_H_
#define MMM_DATA_NORMALIZER_H_

#include <vector>

#include "common/result.h"
#include "serialize/json.h"
#include "tensor/tensor.h"

namespace mmm {

/// \brief Per-feature affine normalization x' = (x - offset) / scale.
///
/// The paper normalizes features "to provide an equal feature scale" (§4.1).
/// The normalizer's constants are part of the training pipeline and are
/// persisted with the provenance record so replayed training sees identical
/// inputs.
class FeatureNormalizer {
 public:
  FeatureNormalizer() = default;

  /// One (offset, scale) pair per feature column. Scales must be non-zero.
  FeatureNormalizer(std::vector<float> offsets, std::vector<float> scales);

  /// Normalizes an [n, features] matrix column-wise.
  Result<Tensor> Normalize(const Tensor& matrix) const;

  /// Inverse transform.
  Result<Tensor> Denormalize(const Tensor& matrix) const;

  size_t feature_count() const { return offsets_.size(); }

  JsonValue ToJson() const;
  static Result<FeatureNormalizer> FromJson(const JsonValue& json);

  bool operator==(const FeatureNormalizer& other) const = default;

 private:
  std::vector<float> offsets_;
  std::vector<float> scales_;
};

}  // namespace mmm

#endif  // MMM_DATA_NORMALIZER_H_
