#include "storage/executor.h"

namespace mmm {

Executor::Executor(size_t lanes) : lanes_(lanes == 0 ? 1 : lanes) {
  workers_.reserve(lanes_ - 1);
  for (size_t lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { WorkerLoop(lane); });
  }
}

Executor::~Executor() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void Executor::RunLane(size_t lane, size_t count,
                       const std::function<void(size_t)>& fn) {
  for (size_t i = lane; i < count; i += lanes_) fn(i);
}

void Executor::ParallelFor(size_t count,
                           const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (lanes_ == 1 || count == 1) {
    // Inline fast path: no threads involved, items run in index order.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    count_ = count;
    lanes_done_ = 0;
    ++generation_;
  }
  work_cv_.NotifyAll();
  RunLane(0, count, fn);
  MutexLock lock(mu_);
  while (lanes_done_ != lanes_ - 1) done_cv_.Wait(mu_);
  fn_ = nullptr;
}

void Executor::WorkerLoop(size_t lane) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen) work_cv_.Wait(mu_);
      if (shutdown_) return;
      seen = generation_;
      fn = fn_;
      count = count_;
    }
    RunLane(lane, count, *fn);
    {
      MutexLock lock(mu_);
      ++lanes_done_;
    }
    done_cv_.NotifyOne();
  }
}

}  // namespace mmm
