#include "core/manager.h"

#include <algorithm>

namespace mmm {

std::string ApproachTypeName(ApproachType type) {
  switch (type) {
    case ApproachType::kMMlibBase:
      return "mmlib-base";
    case ApproachType::kBaseline:
      return "baseline";
    case ApproachType::kUpdate:
      return "update";
    case ApproachType::kProvenance:
      return "provenance";
  }
  return "?";
}

Result<ApproachType> ApproachTypeFromName(const std::string& name) {
  if (name == "mmlib-base") return ApproachType::kMMlibBase;
  if (name == "baseline") return ApproachType::kBaseline;
  if (name == "update") return ApproachType::kUpdate;
  if (name == "provenance") return ApproachType::kProvenance;
  return Status::InvalidArgument("unknown approach '", name, "'");
}

namespace {

/// One past the largest id counter among persisted sets (0 when empty).
/// Ids look like "set-000004-a1b2c3d4": the counter sits between the last
/// two dashes. Unparseable ids are skipped.
Result<uint64_t> MaxPersistedIdCounter(DocumentStore* doc_store) {
  uint64_t next = 0;
  if (doc_store->Count(kSetCollection) == 0) return next;
  MMM_ASSIGN_OR_RETURN(std::vector<JsonValue> docs,
                       doc_store->All(kSetCollection));
  for (const JsonValue& doc : docs) {
    auto id = doc.GetString("_id");
    if (!id.ok()) continue;
    size_t suffix = id.ValueOrDie().rfind('-');
    if (suffix == std::string::npos || suffix == 0) continue;
    size_t counter = id.ValueOrDie().rfind('-', suffix - 1);
    if (counter == std::string::npos) continue;
    const std::string field =
        id.ValueOrDie().substr(counter + 1, suffix - counter - 1);
    if (field.empty() ||
        field.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    next = std::max<uint64_t>(next,
                              std::strtoull(field.c_str(), nullptr, 10) + 1);
  }
  return next;
}

}  // namespace

Result<std::unique_ptr<ModelSetManager>> ModelSetManager::Open(Options options) {
  if (options.root_dir.empty()) {
    return Status::InvalidArgument("manager needs a root_dir");
  }
  Env* env = options.env != nullptr ? options.env : Env::Default();

  auto manager = std::unique_ptr<ModelSetManager>(new ModelSetManager());
  if (options.ids == nullptr) {
    manager->ids_ = std::make_unique<IdGenerator>(options.id_seed);
  }
  IdGenerator* ids =
      options.ids != nullptr ? options.ids : manager->ids_.get();
  manager->file_store_ = std::make_unique<FileStore>(
      env, options.root_dir + "/blobs", options.profile.file_store,
      &manager->sim_clock_);
  MMM_RETURN_NOT_OK(manager->file_store_->Open());
  MMM_RETURN_NOT_OK(env->CreateDirs(options.root_dir));
  manager->doc_store_ = std::make_unique<DocumentStore>(
      env, options.root_dir + "/docstore.wal", options.profile.document_store,
      &manager->sim_clock_);
  MMM_RETURN_NOT_OK(manager->doc_store_->Open());

  // Replay the commit journal before anything reads the stores: saves
  // interrupted mid-commit are rolled back (or, past their commit mark,
  // rolled forward), so the id counter below and every later query see only
  // consistent all-or-nothing sets.
  manager->journal_ = std::make_unique<CommitJournal>(
      env, options.root_dir + "/commit.journal");
  MMM_RETURN_NOT_OK(manager->journal_->Open());
  MMM_ASSIGN_OR_RETURN(
      manager->repair_report_,
      manager->journal_->Replay(manager->file_store_.get(),
                                manager->doc_store_.get()));

  // Open the content-addressed store after journal replay (its rebuild
  // must see only consistent commits) and before anything reads or writes
  // blobs. A store that ever ran with CAS re-enables it via its checkpoint
  // marker, so chunked blobs never meet CAS-blind GC.
  const std::string cas_index_path = options.root_dir + "/cas.index";
  bool cas_enabled = options.cas.enabled;
  if (!cas_enabled) {
    MMM_ASSIGN_OR_RETURN(cas_enabled, env->FileExists(cas_index_path));
  }
  if (cas_enabled) {
    options.cas.enabled = true;
    MMM_ASSIGN_OR_RETURN(
        manager->cas_,
        CasStore::Open(env, manager->file_store_.get(), cas_index_path,
                       options.cas));
  }

  // New ids must not collide with sets persisted by a previous session.
  // Deletions can leave the counters sparse (e.g. only "set-000004-…"
  // survives a retention sweep), so the document count is not enough: scan
  // the surviving ids and advance past the largest counter.
  MMM_ASSIGN_OR_RETURN(uint64_t max_counter,
                       MaxPersistedIdCounter(manager->doc_store_.get()));
  ids->AdvanceTo(max_counter);

  manager->executor_ =
      std::make_unique<Executor>(std::max<size_t>(1, options.pipeline.lanes));
  manager->context_ = StoreContext{manager->file_store_.get(),
                                   manager->doc_store_.get(),
                                   ids, &manager->sim_clock_,
                                   options.blob_compression,
                                   manager->executor_.get(), options.pipeline,
                                   manager->journal_.get(),
                                   manager->cas_.get(),
                                   options.streaming_recovery,
                                   options.stream_window_bytes};

  EnvironmentInfo environment = options.environment.has_value()
                                    ? *options.environment
                                    : EnvironmentInfo::Capture();
  manager->mmlib_base_ =
      std::make_unique<MMlibBaseApproach>(manager->context_, environment);
  manager->baseline_ = std::make_unique<BaselineApproach>(manager->context_);
  manager->update_ = std::make_unique<UpdateApproach>(manager->context_,
                                                      options.update_options);
  manager->provenance_ = std::make_unique<ProvenanceApproach>(
      manager->context_, options.resolver, environment,
      options.provenance_recover_options);
  manager->auto_compaction_ = options.auto_compaction;
  return manager;
}

ModelSetApproach* ModelSetManager::approach(ApproachType type) {
  switch (type) {
    case ApproachType::kMMlibBase:
      return mmlib_base_.get();
    case ApproachType::kBaseline:
      return baseline_.get();
    case ApproachType::kUpdate:
      return update_.get();
    case ApproachType::kProvenance:
      return provenance_.get();
  }
  return nullptr;
}

Result<SaveResult> ModelSetManager::SaveInitial(ApproachType type,
                                                const ModelSet& set) {
  return approach(type)->SaveInitial(set);
}

Result<SaveResult> ModelSetManager::SaveDerived(ApproachType type,
                                                const ModelSet& set,
                                                const ModelSetUpdateInfo& update) {
  MMM_ASSIGN_OR_RETURN(SaveResult result,
                       approach(type)->SaveDerived(set, update));
  // Opportunistic compaction: only once a save can actually have pushed a
  // chain past the bound — the pass itself re-scans and is a no-op when
  // every chain is already within it.
  if (auto_compaction_.has_value() &&
      result.chain_depth > auto_compaction_->max_chain_depth) {
    MMM_RETURN_NOT_OK(CompactChains(*auto_compaction_).status());
  }
  return result;
}

Result<CompactionReport> ModelSetManager::CompactChains(
    const CompactionPolicy& policy) {
  ChainCompactor compactor(
      context_, [this](const std::string& set_id) { return Recover(set_id); });
  return compactor.Compact(policy);
}

Result<ModelSet> ModelSetManager::Recover(const std::string& set_id,
                                          RecoverStats* stats) {
  MMM_ASSIGN_OR_RETURN(JsonValue doc,
                       doc_store_->Get(kSetCollection, set_id));
  MMM_ASSIGN_OR_RETURN(std::string approach_name, doc.GetString("approach"));
  MMM_ASSIGN_OR_RETURN(ApproachType type, ApproachTypeFromName(approach_name));
  return approach(type)->Recover(set_id, stats);
}

Result<std::vector<StateDict>> ModelSetManager::RecoverModels(
    const std::string& set_id, const std::vector<size_t>& indices,
    RecoverStats* stats) {
  MMM_ASSIGN_OR_RETURN(JsonValue doc,
                       doc_store_->Get(kSetCollection, set_id));
  MMM_ASSIGN_OR_RETURN(std::string approach_name, doc.GetString("approach"));
  MMM_ASSIGN_OR_RETURN(ApproachType type, ApproachTypeFromName(approach_name));
  return approach(type)->RecoverModels(set_id, indices, stats);
}

}  // namespace mmm
