#include "core/model_set.h"

namespace mmm {

ParamLayout LayoutOf(const ArchitectureSpec& spec) {
  ParamLayout layout;
  for (const LayerSpec& layer : spec.layers) {
    if (layer.type == "linear") {
      layout.emplace_back(layer.name + ".weight", Shape{layer.out, layer.in});
      layout.emplace_back(layer.name + ".bias", Shape{layer.out});
    } else if (layer.type == "conv2d") {
      layout.emplace_back(layer.name + ".weight",
                          Shape{layer.out, layer.in, layer.kernel, layer.kernel});
      layout.emplace_back(layer.name + ".bias", Shape{layer.out});
    }
  }
  return layout;
}

size_t LayoutNumel(const ParamLayout& layout) {
  size_t numel = 0;
  for (const auto& [_, shape] : layout) numel += Tensor::NumElements(shape);
  return numel;
}

Status CheckSetConsistent(const ModelSet& set) {
  ParamLayout layout = LayoutOf(set.spec);
  for (size_t m = 0; m < set.models.size(); ++m) {
    const StateDict& state = set.models[m];
    if (state.size() != layout.size()) {
      return Status::InvalidArgument("model ", m, " has ", state.size(),
                                     " parameters, layout expects ",
                                     layout.size());
    }
    for (size_t i = 0; i < layout.size(); ++i) {
      if (state[i].first != layout[i].first) {
        return Status::InvalidArgument("model ", m, " parameter ", i, " is '",
                                       state[i].first, "', layout expects '",
                                       layout[i].first, "'");
      }
      if (state[i].second.shape() != layout[i].second) {
        return Status::InvalidArgument("model ", m, " parameter '",
                                       state[i].first, "' has wrong shape");
      }
    }
  }
  return Status::OK();
}

Result<ModelSet> MakeInitializedSet(const ArchitectureSpec& spec, size_t count,
                                    uint64_t seed) {
  ModelSet set;
  set.spec = spec;
  set.models.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    uint64_t model_seed = Rng::Mix64(seed ^ (k * 0x9e3779b97f4a7c15ULL + 1));
    MMM_ASSIGN_OR_RETURN(Model model, Model::CreateInitialized(spec, model_seed));
    set.models.push_back(model.GetStateDict());
  }
  return set;
}

}  // namespace mmm
