#include "prov/replay.h"

namespace mmm {

Status ReplayEngine::ReplayUpdate(Model* model, const TrainPipelineSpec& pipeline,
                                  const DatasetRef& data_ref, size_t max_samples) {
  if (resolver_ == nullptr) {
    return Status::InvalidArgument("replay engine has no dataset resolver");
  }
  MMM_RETURN_NOT_OK(pipeline.Validate());
  MMM_ASSIGN_OR_RETURN(TrainingData data, resolver_->Resolve(data_ref));
  if (max_samples > 0 && data.size() > max_samples) {
    data = data.Head(max_samples);
  }
  MMM_ASSIGN_OR_RETURN(
      TrainReport report,
      TrainModel(model, data.inputs, data.targets, pipeline.train_config));
  (void)report;
  return Status::OK();
}

}  // namespace mmm
