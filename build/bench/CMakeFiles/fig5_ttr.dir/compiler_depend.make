# Empty compiler generated dependencies file for fig5_ttr.
# This may be replaced when dependencies are built.
