file(REMOVE_RECURSE
  "libmmm_tensor.a"
)
