#ifndef MMM_STORAGE_LATENCY_MODEL_H_
#define MMM_STORAGE_LATENCY_MODEL_H_

#include <cstdint>
#include <string>

namespace mmm {

/// \brief Cost model of one store backend: a fixed per-operation round-trip
/// latency plus a per-byte transfer cost.
struct StoreLatencyModel {
  /// Charged once per store operation (insert/get/put/read).
  uint64_t per_op_nanos = 0;
  /// Charged per byte moved in or out of the store.
  double per_byte_nanos = 0.0;

  uint64_t CostNanos(uint64_t bytes) const {
    double transfer = per_byte_nanos * static_cast<double>(bytes);
    // Clamp before the cast: double -> uint64_t is undefined once the value
    // exceeds the destination range (UBSan float-cast-overflow), which a
    // pathological model (huge per_byte_nanos, ~exabyte payload) can reach.
    constexpr double kMax = 9.2e18;  // < 2^63, exactly representable
    if (!(transfer > 0.0)) return per_op_nanos;  // also rejects NaN
    if (transfer >= kMax) return per_op_nanos + static_cast<uint64_t>(kMax);
    return per_op_nanos + static_cast<uint64_t>(transfer);
  }
};

/// \brief Latency profile of one evaluation setup (paper §4.1).
///
/// The paper runs on two machines whose measured differences are dominated by
/// the speed of the connection to the document store ("The reason is the
/// faster connections to the document store on the server setup", §4.3). We
/// model each setup as a pair of latency models; see DESIGN.md §1 for the
/// substitution rationale.
struct SetupProfile {
  std::string name;
  StoreLatencyModel document_store;
  StoreLatencyModel file_store;

  /// Apple M1 Pro laptop setup: document-store round-trips ~0.45 ms (local
  /// service over loopback with container indirection), SSD file store.
  static SetupProfile M1() {
    SetupProfile p;
    p.name = "M1";
    p.document_store = {450'000, 0.30};   // 0.45 ms/op, ~3.3 GB/s
    p.file_store = {55'000, 0.45};        // 55 us/op,  ~2.2 GB/s
    return p;
  }

  /// Threadripper server setup: fast local connection to the document store.
  static SetupProfile Server() {
    SetupProfile p;
    p.name = "server";
    p.document_store = {60'000, 0.20};    // 60 us/op, ~5 GB/s
    p.file_store = {30'000, 0.30};        // 30 us/op, ~3.3 GB/s
    return p;
  }

  /// Zero-cost profile for unit tests.
  static SetupProfile None() {
    SetupProfile p;
    p.name = "none";
    return p;
  }
};

}  // namespace mmm

#endif  // MMM_STORAGE_LATENCY_MODEL_H_
