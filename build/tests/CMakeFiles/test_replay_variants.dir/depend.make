# Empty dependencies file for test_replay_variants.
# This may be replaced when dependencies are built.
