#include "common/id.h"

#include "common/strings.h"

namespace mmm {

std::string IdGenerator::Next(const std::string& prefix) {
  uint64_t suffix = rng_.NextUint64() & 0xffffffffULL;
  return StringFormat("%s-%06llu-%08llx", prefix.c_str(),
                      static_cast<unsigned long long>(counter_++),
                      static_cast<unsigned long long>(suffix));
}

}  // namespace mmm
