#ifndef MMM_CAS_CHUNKER_H_
#define MMM_CAS_CHUNKER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace mmm {

/// \brief Configuration of the content-addressed chunk store (src/cas/).
///
/// Off by default: the store then behaves (and costs) exactly as before —
/// every blob is written and read verbatim. When enabled, parameter-scale
/// blobs are split into content-defined chunks keyed by SHA-256 and shared
/// across *all* sets; see cas/cas_store.h for the refcounting lifecycle.
struct CasOptions {
  bool enabled = false;
  /// A content-defined cut is never taken before this many bytes.
  uint64_t min_chunk_bytes = 2048;
  /// Expected chunk size: the rolling hash cuts when its low
  /// log2(avg_chunk_bytes) bits are zero. Must be a power of two.
  uint64_t avg_chunk_bytes = 8192;
  /// A cut is forced at this many bytes regardless of content.
  uint64_t max_chunk_bytes = 65536;
  /// Fallback mode: cut every avg_chunk_bytes exactly (no rolling hash).
  /// Cheaper, but an insertion/deletion shifts every later boundary.
  bool fixed_size = false;
  /// Blobs smaller than this are stored verbatim — chunking tiny metadata
  /// blobs would cost a manifest indirection per read for no dedup.
  uint64_t min_blob_bytes = 4096;

  Status Validate() const;
};

/// \brief One chunk of a blob payload: `[offset, offset + length)`.
struct ChunkSpan {
  size_t offset = 0;
  size_t length = 0;
};

/// Splits `data` into content-defined chunks (Gear rolling hash; see
/// DESIGN.md §10). Deterministic in the bytes alone: two blobs sharing a run
/// of content longer than a few max-chunk windows produce identical chunks
/// for the shared run, which is what makes cross-set dedup work. Spans are
/// contiguous, in order, and cover `data` exactly; every span except the
/// last is at least min_chunk_bytes and every span is at most
/// max_chunk_bytes. Empty input yields no spans.
std::vector<ChunkSpan> ChunkBlob(std::span<const uint8_t> data,
                                 const CasOptions& options);

}  // namespace mmm

#endif  // MMM_CAS_CHUNKER_H_
