#include "core/manager.h"

#include <algorithm>

namespace mmm {

std::string ApproachTypeName(ApproachType type) {
  switch (type) {
    case ApproachType::kMMlibBase:
      return "mmlib-base";
    case ApproachType::kBaseline:
      return "baseline";
    case ApproachType::kUpdate:
      return "update";
    case ApproachType::kProvenance:
      return "provenance";
  }
  return "?";
}

Result<ApproachType> ApproachTypeFromName(const std::string& name) {
  if (name == "mmlib-base") return ApproachType::kMMlibBase;
  if (name == "baseline") return ApproachType::kBaseline;
  if (name == "update") return ApproachType::kUpdate;
  if (name == "provenance") return ApproachType::kProvenance;
  return Status::InvalidArgument("unknown approach '", name, "'");
}

Result<std::unique_ptr<ModelSetManager>> ModelSetManager::Open(Options options) {
  if (options.root_dir.empty()) {
    return Status::InvalidArgument("manager needs a root_dir");
  }
  Env* env = options.env != nullptr ? options.env : Env::Default();

  auto manager = std::unique_ptr<ModelSetManager>(new ModelSetManager());
  manager->ids_ = std::make_unique<IdGenerator>(options.id_seed);
  manager->file_store_ = std::make_unique<FileStore>(
      env, options.root_dir + "/blobs", options.profile.file_store,
      &manager->sim_clock_);
  MMM_RETURN_NOT_OK(manager->file_store_->Open());
  MMM_RETURN_NOT_OK(env->CreateDirs(options.root_dir));
  manager->doc_store_ = std::make_unique<DocumentStore>(
      env, options.root_dir + "/docstore.wal", options.profile.document_store,
      &manager->sim_clock_);
  MMM_RETURN_NOT_OK(manager->doc_store_->Open());
  // New ids must not collide with sets persisted by a previous session.
  manager->ids_->AdvanceTo(manager->doc_store_->Count(kSetCollection));

  manager->executor_ =
      std::make_unique<Executor>(std::max<size_t>(1, options.pipeline.lanes));
  manager->context_ = StoreContext{manager->file_store_.get(),
                                   manager->doc_store_.get(),
                                   manager->ids_.get(), &manager->sim_clock_,
                                   options.blob_compression,
                                   manager->executor_.get(), options.pipeline};

  EnvironmentInfo environment = options.environment.has_value()
                                    ? *options.environment
                                    : EnvironmentInfo::Capture();
  manager->mmlib_base_ =
      std::make_unique<MMlibBaseApproach>(manager->context_, environment);
  manager->baseline_ = std::make_unique<BaselineApproach>(manager->context_);
  manager->update_ = std::make_unique<UpdateApproach>(manager->context_,
                                                      options.update_options);
  manager->provenance_ = std::make_unique<ProvenanceApproach>(
      manager->context_, options.resolver, environment,
      options.provenance_recover_options);
  return manager;
}

ModelSetApproach* ModelSetManager::approach(ApproachType type) {
  switch (type) {
    case ApproachType::kMMlibBase:
      return mmlib_base_.get();
    case ApproachType::kBaseline:
      return baseline_.get();
    case ApproachType::kUpdate:
      return update_.get();
    case ApproachType::kProvenance:
      return provenance_.get();
  }
  return nullptr;
}

Result<SaveResult> ModelSetManager::SaveInitial(ApproachType type,
                                                const ModelSet& set) {
  return approach(type)->SaveInitial(set);
}

Result<SaveResult> ModelSetManager::SaveDerived(ApproachType type,
                                                const ModelSet& set,
                                                const ModelSetUpdateInfo& update) {
  return approach(type)->SaveDerived(set, update);
}

Result<ModelSet> ModelSetManager::Recover(const std::string& set_id,
                                          RecoverStats* stats) {
  MMM_ASSIGN_OR_RETURN(JsonValue doc,
                       doc_store_->Get(kSetCollection, set_id));
  MMM_ASSIGN_OR_RETURN(std::string approach_name, doc.GetString("approach"));
  MMM_ASSIGN_OR_RETURN(ApproachType type, ApproachTypeFromName(approach_name));
  return approach(type)->Recover(set_id, stats);
}

Result<std::vector<StateDict>> ModelSetManager::RecoverModels(
    const std::string& set_id, const std::vector<size_t>& indices,
    RecoverStats* stats) {
  MMM_ASSIGN_OR_RETURN(JsonValue doc,
                       doc_store_->Get(kSetCollection, set_id));
  MMM_ASSIGN_OR_RETURN(std::string approach_name, doc.GetString("approach"));
  MMM_ASSIGN_OR_RETURN(ApproachType type, ApproachTypeFromName(approach_name));
  return approach(type)->RecoverModels(set_id, indices, stats);
}

}  // namespace mmm
