file(REMOVE_RECURSE
  "CMakeFiles/mmm_storage.dir/document_store.cc.o"
  "CMakeFiles/mmm_storage.dir/document_store.cc.o.d"
  "CMakeFiles/mmm_storage.dir/env.cc.o"
  "CMakeFiles/mmm_storage.dir/env.cc.o.d"
  "CMakeFiles/mmm_storage.dir/file_store.cc.o"
  "CMakeFiles/mmm_storage.dir/file_store.cc.o.d"
  "libmmm_storage.a"
  "libmmm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
