// Exhaustive crash-point sweep of every approach's save path.
//
// For each approach and lane count, a probe world first runs the whole
// workload against a healed FaultInjectionEnv to learn how many env writes
// each save issues. The sweep then re-runs the workload in a fresh world per
// write index k, arms the fault so the k-th write of the target save (and
// everything after it) fails, and asserts the crash contract after reopening:
//
//  - the journal replay reports a clean repair,
//  - the store validates and has no orphan blobs (fsck-clean),
//  - every previously saved set still recovers bit-exactly,
//  - the interrupted save either vanished completely (rollback) or recovers
//    bit-exactly (commit) — never a set with wrong bytes.
//
// Because FaultInjectionEnv numbers batched writes in staging order (see
// WriteOrderGroup in storage/env.h), the sweep is deterministic and the
// write counts are identical at lanes=1 and lanes=4.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "core/gc.h"
#include "core/inspect.h"
#include "core/manager.h"
#include "fleet/plan.h"
#include "fleet/simulator.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

ScenarioConfig SweepScenario() {
  // 4 models, half fully and a quarter partially retrained per cycle, with a
  // tiny training load: big enough that every save stages several blobs,
  // small enough that a sweep world costs milliseconds.
  ScenarioConfig config = ScenarioConfig::Battery(4);
  config.full_update_fraction = 0.5;
  config.partial_update_fraction = 0.25;
  config.samples_per_dataset = 32;
  return config;
}

/// One isolated store universe: scenario + fault-injected in-memory env +
/// manager. Worlds with the same seed config replay bit-identical workloads.
struct World {
  World() : fault(&base) {}

  Status Open(ApproachType type, size_t lanes) {
    approach = type;
    scenario = std::make_unique<MultiModelScenario>(SweepScenario());
    MMM_RETURN_NOT_OK(scenario->Init());
    return Reopen(lanes);
  }

  /// Opens a fresh manager over the same env (journal replay runs here).
  Status Reopen(size_t lanes) {
    manager.reset();
    ModelSetManager::Options options;
    options.root_dir = "/store";
    options.env = &fault;
    options.resolver = scenario.get();
    options.pipeline.lanes = lanes;
    options.cas = cas;
    MMM_ASSIGN_OR_RETURN(manager, ModelSetManager::Open(options));
    return Status::OK();
  }

  Result<SaveResult> SaveInitial() {
    return manager->SaveInitial(approach, scenario->current_set());
  }

  Result<SaveResult> SaveDerived(const std::string& base_id,
                                 const ModelSetUpdateInfo& update) {
    ModelSetUpdateInfo derived = update;
    derived.base_set_id = base_id;
    return manager->SaveDerived(approach, scenario->current_set(), derived);
  }

  InMemoryEnv base;
  FaultInjectionEnv fault;
  ApproachType approach;
  /// Off by default (the seed contract); CAS sweeps turn it on before Open.
  CasOptions cas;
  std::unique_ptr<MultiModelScenario> scenario;
  std::unique_ptr<ModelSetManager> manager;
};

void ExpectSetEquals(const ModelSet& recovered, const ModelSet& expected,
                     const std::string& label) {
  ASSERT_EQ(recovered.models.size(), expected.models.size()) << label;
  ASSERT_EQ(recovered.spec, expected.spec) << label;
  for (size_t m = 0; m < recovered.models.size(); ++m) {
    ASSERT_EQ(recovered.models[m].size(), expected.models[m].size()) << label;
    for (size_t p = 0; p < recovered.models[m].size(); ++p) {
      ASSERT_EQ(recovered.models[m][p].first, expected.models[m][p].first)
          << label;
      ASSERT_TRUE(
          recovered.models[m][p].second.Equals(expected.models[m][p].second))
          << label << ": model " << m << " param "
          << recovered.models[m][p].first;
    }
  }
}

/// The in-process fsck: journal repair clean, store validates, no orphans.
void ExpectStoreConsistent(World* world, const std::string& label) {
  const RepairReport& repair = world->manager->repair_report();
  EXPECT_TRUE(repair.clean()) << label << ": " << repair.problems.size()
                              << " repair problem(s), first: "
                              << (repair.problems.empty()
                                      ? ""
                                      : repair.problems.front());
  ASSERT_OK_AND_ASSIGN(StoreValidationReport validation,
                       world->manager->ValidateStore());
  EXPECT_TRUE(validation.ok())
      << label << ": "
      << (validation.problems.empty() ? "" : validation.problems.front());
  ASSERT_OK_AND_ASSIGN(OrphanReport orphans,
                       FindOrphanBlobs(world->manager->context()));
  EXPECT_TRUE(orphans.clean())
      << label << ": "
      << (orphans.clean() ? "" : orphans.orphan_blobs.front());
}

/// Asserts the interrupted save either fully vanished or fully committed.
void ExpectRollbackOrCommit(World* world, const std::string& set_id,
                            const ModelSet& expected,
                            const std::string& label) {
  auto doc = world->manager->doc_store()->Get(kSetCollection, set_id);
  if (!doc.ok()) {
    // Rollback: the set must be completely gone — FindOrphanBlobs (run by
    // ExpectStoreConsistent) already proved no blob of it survived.
    EXPECT_TRUE(doc.status().IsNotFound()) << label << ": " << doc.status();
    return;
  }
  // Commit: the set must recover bit-exactly.
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, world->manager->Recover(set_id));
  ExpectSetEquals(recovered, expected, label + " (committed)");
}

struct ProbeCounts {
  int64_t before_initial = 0;
  int64_t initial_writes = 0;
  int64_t before_derived = 0;
  int64_t derived_writes = 0;
  std::string initial_id;
  std::string derived_id;
};

/// Runs the whole workload healed and records per-save write counts.
ProbeCounts Probe(ApproachType type, size_t lanes) {
  ProbeCounts counts;
  World world;
  world.Open(type, lanes).Check();
  counts.before_initial = world.fault.write_count();
  auto initial = world.SaveInitial();
  initial.status().Check();
  counts.initial_id = initial.ValueOrDie().set_id;
  counts.initial_writes = world.fault.write_count() - counts.before_initial;

  auto update = world.scenario->AdvanceCycle();
  update.status().Check();
  counts.before_derived = world.fault.write_count();
  auto derived = world.SaveDerived(counts.initial_id, update.ValueOrDie());
  derived.status().Check();
  counts.derived_id = derived.ValueOrDie().set_id;
  counts.derived_writes = world.fault.write_count() - counts.before_derived;
  return counts;
}

class CrashSweep : public ::testing::TestWithParam<ApproachType> {};

TEST_P(CrashSweep, WriteCountsAreLaneInvariant) {
  // The staging-order write numbering is what makes the sweep meaningful at
  // lanes>1: the same fault index must denote the same logical write.
  ProbeCounts serial = Probe(GetParam(), 1);
  ProbeCounts parallel = Probe(GetParam(), 4);
  EXPECT_EQ(serial.initial_writes, parallel.initial_writes);
  EXPECT_EQ(serial.derived_writes, parallel.derived_writes);
  EXPECT_EQ(serial.initial_id, parallel.initial_id);
  EXPECT_EQ(serial.derived_id, parallel.derived_id);
  EXPECT_GE(serial.initial_writes, 4);  // begin + blobs + commit + doc + finish
}

TEST_P(CrashSweep, EveryCrashPointOfInitialSaveRecovers) {
  for (size_t lanes : {size_t{1}, size_t{4}}) {
    ProbeCounts probe = Probe(GetParam(), lanes);
    for (int64_t k = 0; k < probe.initial_writes; ++k) {
      std::string label = ApproachTypeName(GetParam()) + " lanes=" +
                          std::to_string(lanes) + " initial crash@" +
                          std::to_string(k);
      World world;
      ASSERT_OK(world.Open(GetParam(), lanes));
      ASSERT_EQ(world.fault.write_count(), probe.before_initial) << label;
      world.fault.FailWritesAfter(probe.before_initial + k);
      EXPECT_FALSE(world.SaveInitial().ok()) << label;
      world.fault.Heal();
      ASSERT_OK(world.Reopen(lanes));
      ExpectStoreConsistent(&world, label);
      ExpectRollbackOrCommit(&world, probe.initial_id,
                             world.scenario->current_set(), label);
    }
  }
}

TEST_P(CrashSweep, EveryCrashPointOfDerivedSavePreservesBase) {
  for (size_t lanes : {size_t{1}, size_t{4}}) {
    ProbeCounts probe = Probe(GetParam(), lanes);
    for (int64_t k = 0; k < probe.derived_writes; ++k) {
      std::string label = ApproachTypeName(GetParam()) + " lanes=" +
                          std::to_string(lanes) + " derived crash@" +
                          std::to_string(k);
      World world;
      ASSERT_OK(world.Open(GetParam(), lanes));
      ASSERT_OK(world.SaveInitial().status());
      ModelSet initial_state = world.scenario->current_set();  // deep copy
      ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update,
                           world.scenario->AdvanceCycle());
      ASSERT_EQ(world.fault.write_count(), probe.before_derived) << label;
      world.fault.FailWritesAfter(probe.before_derived + k);
      EXPECT_FALSE(world.SaveDerived(probe.initial_id, update).ok()) << label;
      world.fault.Heal();
      ASSERT_OK(world.Reopen(lanes));
      ExpectStoreConsistent(&world, label);
      // The base set must have survived the crash untouched.
      ASSERT_OK_AND_ASSIGN(ModelSet base_recovered,
                           world.manager->Recover(probe.initial_id));
      ExpectSetEquals(base_recovered, initial_state, label + " (base)");
      ExpectRollbackOrCommit(&world, probe.derived_id,
                             world.scenario->current_set(), label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, CrashSweep,
                         ::testing::Values(ApproachType::kMMlibBase,
                                           ApproachType::kBaseline,
                                           ApproachType::kUpdate,
                                           ApproachType::kProvenance),
                         [](const auto& info) {
                           std::string name = ApproachTypeName(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ---------------------------------------------------------------------------
// CAS crash sweep: with the content-addressed chunk store on, a save stages
// chunk blobs + a manifest instead of one verbatim blob, and the derived
// save dedups against the base's chunks. Crashing at every write must leave
// the refcount index consistent with the store (CasStore::Audit runs inside
// ValidateStore), the base recoverable from chunks the rollback must not
// touch, and no orphaned chunk blob behind (the open-time sweep reclaims
// chunks a rolled-back commit had already written).

CasOptions SweepCasOptions() {
  // Chunks small enough that the 4-model battery blobs split into several
  // chunks (so crashes land between chunk writes), big enough to keep the
  // per-point write count — and so the sweep's cost — bounded.
  CasOptions cas;
  cas.enabled = true;
  cas.min_chunk_bytes = 256;
  cas.avg_chunk_bytes = 1024;
  cas.max_chunk_bytes = 4096;
  cas.min_blob_bytes = 512;
  return cas;
}

/// Probe twin of Probe() with CAS enabled.
ProbeCounts ProbeCas(ApproachType type, size_t lanes) {
  ProbeCounts counts;
  World world;
  world.cas = SweepCasOptions();
  world.Open(type, lanes).Check();
  counts.before_initial = world.fault.write_count();
  auto initial = world.SaveInitial();
  initial.status().Check();
  counts.initial_id = initial.ValueOrDie().set_id;
  counts.initial_writes = world.fault.write_count() - counts.before_initial;
  // The sweep is vacuous unless the save actually chunked something.
  if (world.manager->cas()->ManifestNames().empty()) {
    Status::Internal("CAS probe save produced no manifests").Check();
  }

  auto update = world.scenario->AdvanceCycle();
  update.status().Check();
  counts.before_derived = world.fault.write_count();
  auto derived = world.SaveDerived(counts.initial_id, update.ValueOrDie());
  derived.status().Check();
  counts.derived_id = derived.ValueOrDie().set_id;
  counts.derived_writes = world.fault.write_count() - counts.before_derived;
  return counts;
}

class CasCrashSweep : public ::testing::TestWithParam<ApproachType> {};

TEST_P(CasCrashSweep, EveryCrashPointKeepsChunkRefcountsConsistent) {
  for (size_t lanes : {size_t{1}, size_t{4}}) {
    ProbeCounts probe = ProbeCas(GetParam(), lanes);
    ASSERT_GT(probe.derived_writes, 0) << "probe saved nothing";
    for (int64_t k = 0; k < probe.derived_writes; ++k) {
      std::string label = ApproachTypeName(GetParam()) + " cas lanes=" +
                          std::to_string(lanes) + " derived crash@" +
                          std::to_string(k);
      World world;
      world.cas = SweepCasOptions();
      ASSERT_OK(world.Open(GetParam(), lanes));
      ASSERT_OK(world.SaveInitial().status());
      ModelSet initial_state = world.scenario->current_set();  // deep copy
      ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update,
                           world.scenario->AdvanceCycle());
      ASSERT_EQ(world.fault.write_count(), probe.before_derived) << label;
      world.fault.FailWritesAfter(probe.before_derived + k);
      EXPECT_FALSE(world.SaveDerived(probe.initial_id, update).ok()) << label;
      world.fault.Heal();
      ASSERT_OK(world.Reopen(lanes));
      ASSERT_NE(world.manager->cas(), nullptr) << label;
      // ValidateStore runs CasStore::Audit: refcounts == live manifest refs,
      // every referenced chunk present with matching hash; FindOrphanBlobs
      // proves the open-time sweep left no unreferenced chunk blob.
      ExpectStoreConsistent(&world, label);
      // The base's chunks survived the rollback (shared-chunk safety).
      ASSERT_OK_AND_ASSIGN(ModelSet base_recovered,
                           world.manager->Recover(probe.initial_id));
      ExpectSetEquals(base_recovered, initial_state, label + " (base)");
      ExpectRollbackOrCommit(&world, probe.derived_id,
                             world.scenario->current_set(), label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, CasCrashSweep,
                         ::testing::Values(ApproachType::kMMlibBase,
                                           ApproachType::kBaseline,
                                           ApproachType::kUpdate,
                                           ApproachType::kProvenance),
                         [](const auto& info) {
                           std::string name = ApproachTypeName(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ---------------------------------------------------------------------------
// Compaction crash sweep: the chain compactor's journaled rebase commits get
// the same exhaustive treatment as the save paths. A probe world learns how
// many env writes a full CompactChains pass issues (two rebase commits for
// this chain shape), then the sweep crashes a fresh world at every write
// index. After healing and reopening, the store must be fsck-clean and every
// set of the chain must recover bit-exactly — compaction is metadata motion,
// so no crash may ever change recovered bytes.

CompactionPolicy SweepCompactionPolicy() {
  CompactionPolicy policy;
  policy.max_chain_depth = 1;
  return policy;
}

struct CompactionProbe {
  int64_t before_compact = 0;
  int64_t compact_writes = 0;
  std::vector<std::string> ids;
};

/// Grows an update chain (depths 0..4) whose compaction at max_chain_depth=1
/// plans two rebases; `states` (optional) receives each save's bit-exact
/// fleet state keyed by set id.
void BuildCompactionWorkload(World* world,
                             std::vector<std::string>* ids,
                             std::map<std::string, ModelSet>* states) {
  auto initial = world->SaveInitial();
  initial.status().Check();
  ids->push_back(initial.ValueOrDie().set_id);
  if (states != nullptr) {
    (*states)[ids->back()] = world->scenario->current_set();
  }
  for (int i = 0; i < 4; ++i) {
    auto update = world->scenario->AdvanceCycle();
    update.status().Check();
    auto derived = world->SaveDerived(ids->back(), update.ValueOrDie());
    derived.status().Check();
    ids->push_back(derived.ValueOrDie().set_id);
    if (states != nullptr) {
      (*states)[ids->back()] = world->scenario->current_set();
    }
  }
}

CompactionProbe ProbeCompaction(size_t lanes) {
  CompactionProbe probe;
  World world;
  world.Open(ApproachType::kUpdate, lanes).Check();
  BuildCompactionWorkload(&world, &probe.ids, nullptr);
  probe.before_compact = world.fault.write_count();
  auto report = world.manager->CompactChains(SweepCompactionPolicy());
  report.status().Check();
  if (report.ValueOrDie().sets_rebased != 2u) {
    Status::Internal("probe expected 2 rebases").Check();
  }
  probe.compact_writes = world.fault.write_count() - probe.before_compact;
  return probe;
}

TEST(CompactionCrashSweep, WriteCountsAreLaneInvariant) {
  CompactionProbe serial = ProbeCompaction(1);
  CompactionProbe parallel = ProbeCompaction(4);
  EXPECT_EQ(serial.compact_writes, parallel.compact_writes);
  EXPECT_EQ(serial.ids, parallel.ids);
  // Two journaled commits: begin + snapshot blobs + commit + docs + finish
  // each.
  EXPECT_GE(serial.compact_writes, 8);
}

TEST(CompactionCrashSweep, EveryCrashPointLeavesStoreCleanAndBitExact) {
  for (size_t lanes : {size_t{1}, size_t{4}}) {
    CompactionProbe probe = ProbeCompaction(lanes);
    for (int64_t k = 0; k < probe.compact_writes; ++k) {
      std::string label =
          "lanes=" + std::to_string(lanes) + " compact crash@" +
          std::to_string(k);
      World world;
      ASSERT_OK(world.Open(ApproachType::kUpdate, lanes));
      std::vector<std::string> ids;
      std::map<std::string, ModelSet> states;
      BuildCompactionWorkload(&world, &ids, &states);
      ASSERT_EQ(ids, probe.ids) << label;
      ASSERT_EQ(world.fault.write_count(), probe.before_compact) << label;
      world.fault.FailWritesAfter(probe.before_compact + k);
      EXPECT_FALSE(world.manager->CompactChains(SweepCompactionPolicy()).ok())
          << label;
      world.fault.Heal();
      ASSERT_OK(world.Reopen(lanes));
      ExpectStoreConsistent(&world, label);
      // Unlike an interrupted save, an interrupted compaction has no
      // vanishing outcome: every set existed before the pass and must
      // recover the exact same bytes after the crash, whether its rebase
      // rolled back or committed.
      for (const std::string& id : ids) {
        ASSERT_OK_AND_ASSIGN(ModelSet recovered, world.manager->Recover(id));
        ExpectSetEquals(recovered, states.at(id), label + " set " + id);
      }
      // And the healed store compacts to completion.
      ASSERT_OK_AND_ASSIGN(CompactionReport report,
                           world.manager->CompactChains(
                               SweepCompactionPolicy()));
      EXPECT_TRUE(report.skipped.empty()) << label;
      for (const std::string& id : ids) {
        ASSERT_OK_AND_ASSIGN(ChainInspection chain,
                             InspectChain(world.manager->context(), id));
        EXPECT_LE(chain.depth, 1u) << label << " set " << id;
        EXPECT_TRUE(chain.depth_matches()) << label << " set " << id;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Recovery-path unit coverage the sweep cannot reach directly.

TEST(CrashRecoveryTest, CleanWorldReportsEmptyRepair) {
  World world;
  ASSERT_OK(world.Open(ApproachType::kBaseline, 1));
  ASSERT_OK(world.SaveInitial().status());
  ASSERT_OK(world.Reopen(1));
  EXPECT_EQ(world.manager->repair_report().entries_scanned, 0u);
  EXPECT_FALSE(world.manager->repair_report().repaired_anything());
  ExpectStoreConsistent(&world, "clean world");
}

TEST(CrashRecoveryTest, CommittedButUnfinishedEntryIsRolledForward) {
  // Crash between the commit mark and the finish mark: the doc inserts are
  // journaled intents, so replay must materialize the set document.
  World world;
  ASSERT_OK(world.Open(ApproachType::kBaseline, 1));
  int64_t base = world.fault.write_count();
  // Writes: begin(0) blobs(1,2) commit(3) doc(4) finish(5) — fail the doc
  // insert, so the entry is committed but incomplete.
  world.fault.FailWritesAfter(base + 4);
  auto saved = world.SaveInitial();
  EXPECT_FALSE(saved.ok());
  EXPECT_EQ(world.manager->doc_store()->Count(kSetCollection), 0u);
  world.fault.Heal();
  ASSERT_OK(world.Reopen(1));
  EXPECT_EQ(world.manager->repair_report().completed, 1u);
  EXPECT_EQ(world.manager->repair_report().docs_inserted, 1u);
  EXPECT_EQ(world.manager->doc_store()->Count(kSetCollection), 1u);
  ExpectStoreConsistent(&world, "rolled forward");
}

TEST(CrashRecoveryTest, UncommittedEntryIsRolledBack) {
  World world;
  ASSERT_OK(world.Open(ApproachType::kBaseline, 1));
  int64_t base = world.fault.write_count();
  world.fault.FailWritesAfter(base + 2);  // fail the second blob write
  EXPECT_FALSE(world.SaveInitial().ok());
  world.fault.Heal();
  // The first staged blob landed before the crash and is now orphaned...
  ASSERT_OK_AND_ASSIGN(auto blobs, world.manager->file_store()->List());
  EXPECT_EQ(blobs.size(), 1u);
  ASSERT_OK(world.Reopen(1));
  // ...until replay rolls the entry back.
  EXPECT_EQ(world.manager->repair_report().rolled_back, 1u);
  EXPECT_EQ(world.manager->repair_report().blobs_deleted, 1u);
  ASSERT_OK_AND_ASSIGN(blobs, world.manager->file_store()->List());
  EXPECT_TRUE(blobs.empty());
  ExpectStoreConsistent(&world, "rolled back");
}

TEST(CrashRecoveryTest, PendingJournalBlobsAreLiveForGC) {
  // A failed save leaves its journal entry pending in-process; the orphan
  // scan must not treat its surviving blobs as sweepable — their fate
  // belongs to the next replay.
  World world;
  ASSERT_OK(world.Open(ApproachType::kBaseline, 1));
  int64_t base = world.fault.write_count();
  world.fault.FailWritesAfter(base + 2);
  EXPECT_FALSE(world.SaveInitial().ok());
  world.fault.Heal();
  EXPECT_EQ(world.manager->journal()->pending_entries(), 1u);
  ASSERT_OK_AND_ASSIGN(OrphanReport orphans,
                       FindOrphanBlobs(world.manager->context()));
  EXPECT_TRUE(orphans.clean());
}

TEST(CrashRecoveryTest, TornJournalTailIsDropped) {
  // A crash mid-append leaves half a begin record; reopening must treat the
  // journal as ending before it.
  World world;
  ASSERT_OK(world.Open(ApproachType::kBaseline, 1));
  ASSERT_OK(world.SaveInitial().status());
  std::string torn = "{\"txn\":99,\"state\":\"begi";
  ASSERT_OK(world.base.AppendToFile(
      "/store/commit.journal",
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(torn.data()),
                               torn.size())));
  ASSERT_OK(world.Reopen(1));
  EXPECT_TRUE(world.manager->repair_report().clean());
  EXPECT_EQ(world.manager->doc_store()->Count(kSetCollection), 1u);
  ExpectStoreConsistent(&world, "torn tail");
}

TEST(CrashRecoveryTest, FleetSimulatorCrashSweepHoldsTheContract) {
  // The sweeps above enumerate every crash point *within* one save; the
  // fleet simulator sweeps the orthogonal dimension — *which* save of a
  // long interleaved lifecycle (mixed approaches, deletes, retention,
  // compaction) crashes mid-commit — and checks the same contract through
  // its oracles after every reopen: clean journal repair, fsck-clean
  // store, bit-exact recoveries of every survivor, and an inventory that
  // reconciles with the shadow model (rolled forward or fully rolled
  // back, never a torn set). Varying crash_seed and crash_window moves
  // both which saves are armed and where inside the commit they fail.
  FleetPlanConfig config;
  config.seed = 14;
  config.steps = 40;
  config.checkpoint_interval = 20;
  FleetPlan plan = FleetPlan::Generate(config);

  uint64_t total_crashes = 0;
  for (uint64_t crash_seed : {17, 18, 19}) {
    for (uint64_t crash_window : {2, 6}) {
      FleetSimOptions options;
      options.inject_crashes = true;
      options.crash_seed = crash_seed;
      options.crash_window = crash_window;
      options.crash_percent = 50;
      FleetSimulator simulator(plan, options);
      ASSERT_OK_AND_ASSIGN(FleetRunReport report, simulator.Run());
      std::string problems;
      for (const FleetProblem& problem : report.problems) {
        problems += problem.op + ": " + problem.detail + "\n";
      }
      ASSERT_TRUE(report.ok()) << "crash_seed=" << crash_seed
                               << " window=" << crash_window << ":\n"
                               << problems;
      total_crashes += report.crashes_injected;
    }
  }
  // The armed points must actually fire; the draws are deterministic, so
  // this cannot flake.
  EXPECT_GT(total_crashes, 0u);
}

}  // namespace
}  // namespace mmm
