// Sharded serving tier: consistent-hash placement, coordinator control
// plane, and journal-replay failover.
//
// Coverage, in order:
//  - ShardRouter: determinism, the movement bounds that justify a ring
//    (remove/add relocate ~K/N ids, ReplaceShard relocates zero), errors.
//  - A 1-shard cluster is bit-exact with an un-sharded manager + service
//    driven identically: same id stream, same save bytes, same recovered
//    tensors, same per-request modeled costs and cache counters.
//  - Multi-shard routing: derived sets colocate with their base, data
//    spreads over shards, maintenance ops (CompactChains, RetainOnly,
//    Fsck, StatusReport) fan out and merge.
//  - Failover: killing a shard mid-traffic (path faults on its subtree)
//    degrades only that shard's requests; after HealPaths + FailOver the
//    replacement replays the journal and the cluster is fsck-clean and
//    bit-exact, with zero ids moved.
//  - AddShard + Rebalance: misplacement drops to zero with recovered bytes
//    unchanged, and a crash-point sweep over the rebalance write sequence
//    (test_crash_recovery.cc style) shows any interruption is repaired by
//    reopen + rerun.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/shard_router.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/manager.h"
#include "serve/service.h"
#include "serve/trace.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

// ---------------------------------------------------------------------------
// ShardRouter: deterministic placement and movement bounds.

std::vector<std::string> RandomIds(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ids.push_back(StringFormat("set-%06zu-%08llx", i,
                               static_cast<unsigned long long>(
                                   rng.NextUint64() & 0xffffffffu)));
  }
  return ids;
}

std::map<std::string, std::string> OwnersOf(
    const ShardRouter& router, const std::vector<std::string>& ids) {
  std::map<std::string, std::string> owners;
  for (const std::string& id : ids) {
    auto owner = router.OwnerOf(id);
    owner.status().Check();
    owners[id] = owner.ValueOrDie();
  }
  return owners;
}

TEST(ShardRouterTest, PlacementIsDeterministicAndCoversEveryShard) {
  ShardRouter a(64);
  ShardRouter b(64);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_OK(a.AddShard(StringFormat("shard-%zu", i)));
    ASSERT_OK(b.AddShard(StringFormat("shard-%zu", i)));
  }
  std::vector<std::string> ids = RandomIds(2000, /*seed=*/1234);
  std::map<std::string, size_t> per_shard;
  for (const std::string& id : ids) {
    ASSERT_OK_AND_ASSIGN(std::string owner_a, a.OwnerOf(id));
    ASSERT_OK_AND_ASSIGN(std::string owner_b, b.OwnerOf(id));
    EXPECT_EQ(owner_a, owner_b);
    per_shard[owner_a] += 1;
  }
  // Virtual nodes keep the split roughly even: every shard owns a
  // nontrivial share of 2000 ids (expected 500 each).
  ASSERT_EQ(per_shard.size(), 4u);
  for (const auto& [shard, count] : per_shard) {
    EXPECT_GT(count, 200u) << shard;
    EXPECT_LT(count, 900u) << shard;
  }
}

TEST(ShardRouterTest, RemovingOneShardMovesOnlyItsIds) {
  const size_t kShards = 5;
  const std::vector<std::string> ids = RandomIds(2000, /*seed=*/99);
  ShardRouter router(64);
  for (size_t i = 0; i < kShards; ++i) {
    ASSERT_OK(router.AddShard(StringFormat("shard-%zu", i)));
  }
  std::map<std::string, std::string> before = OwnersOf(router, ids);
  ASSERT_OK(router.RemoveShard("shard-2"));
  std::map<std::string, std::string> after = OwnersOf(router, ids);

  size_t moved = 0;
  for (const std::string& id : ids) {
    if (before[id] == "shard-2") {
      // Orphaned ids must land somewhere else...
      EXPECT_NE(after[id], "shard-2");
      ++moved;
    } else {
      // ...and nothing else moves at all.
      EXPECT_EQ(after[id], before[id]) << id;
    }
  }
  // ~K/N expected; 2.5x slack keeps the bound meaningful without flaking
  // on hash variance (the ids and ring are fixed, so this is deterministic
  // anyway — the slack documents the property, not test noise).
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, ids.size() * 5 / (2 * kShards));
}

TEST(ShardRouterTest, AddingOneShardMovesBoundedIdsAllToTheNewShard) {
  const size_t kShards = 4;
  const std::vector<std::string> ids = RandomIds(2000, /*seed=*/2718);
  ShardRouter router(64);
  for (size_t i = 0; i < kShards; ++i) {
    ASSERT_OK(router.AddShard(StringFormat("shard-%zu", i)));
  }
  std::map<std::string, std::string> before = OwnersOf(router, ids);
  ASSERT_OK(router.AddShard("shard-new"));
  std::map<std::string, std::string> after = OwnersOf(router, ids);

  size_t moved = 0;
  for (const std::string& id : ids) {
    if (after[id] != before[id]) {
      // Every relocated id relocates *to the new shard*; no id shuffles
      // between surviving shards.
      EXPECT_EQ(after[id], "shard-new") << id;
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, ids.size() * 5 / (2 * (kShards + 1)));
}

TEST(ShardRouterTest, ReplaceShardMovesNothing) {
  const std::vector<std::string> ids = RandomIds(1000, /*seed=*/31337);
  ShardRouter router(64);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_OK(router.AddShard(StringFormat("shard-%zu", i)));
  }
  std::map<std::string, std::string> before = OwnersOf(router, ids);
  ASSERT_OK(router.ReplaceShard("shard-1", "shard-1-r1"));
  ASSERT_OK_AND_ASSIGN(std::string ring_key, router.RingKeyOf("shard-1-r1"));
  EXPECT_EQ(ring_key, "shard-1");
  for (const std::string& id : ids) {
    ASSERT_OK_AND_ASSIGN(std::string owner, router.OwnerOf(id));
    EXPECT_EQ(owner,
              before[id] == "shard-1" ? "shard-1-r1" : before[id])
        << id;
  }
  // And the rename survives a rebuild from (name, ring key) pairs, which is
  // how a reopened coordinator reconstructs the ring from its manifest.
  ShardRouter rebuilt(64);
  for (const std::string& name : router.Shards()) {
    ASSERT_OK_AND_ASSIGN(std::string key, router.RingKeyOf(name));
    ASSERT_OK(rebuilt.AddShardWithKey(name, key));
  }
  for (const std::string& id : ids) {
    ASSERT_OK_AND_ASSIGN(std::string owner, router.OwnerOf(id));
    ASSERT_OK_AND_ASSIGN(std::string rebuilt_owner, rebuilt.OwnerOf(id));
    EXPECT_EQ(owner, rebuilt_owner) << id;
  }
}

TEST(ShardRouterTest, ErrorsAreTyped) {
  ShardRouter router(8);
  EXPECT_TRUE(router.OwnerOf("set-1").status().IsInvalidArgument());
  ASSERT_OK(router.AddShard("a"));
  EXPECT_TRUE(router.AddShard("a").IsAlreadyExists());
  EXPECT_TRUE(router.RemoveShard("b").IsNotFound());
  EXPECT_TRUE(router.ReplaceShard("b", "c").IsNotFound());
  EXPECT_TRUE(router.RingKeyOf("b").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Cluster fixture: a coordinator over a fault-injectable in-memory env.

void ExpectSetEquals(const ModelSet& recovered, const ModelSet& expected,
                     const std::string& label) {
  ASSERT_EQ(recovered.models.size(), expected.models.size()) << label;
  ASSERT_EQ(recovered.spec, expected.spec) << label;
  for (size_t m = 0; m < recovered.models.size(); ++m) {
    ASSERT_EQ(recovered.models[m].size(), expected.models[m].size()) << label;
    for (size_t p = 0; p < recovered.models[m].size(); ++p) {
      ASSERT_EQ(recovered.models[m][p].first, expected.models[m][p].first)
          << label;
      ASSERT_TRUE(
          recovered.models[m][p].second.Equals(expected.models[m][p].second))
          << label << ": model " << m << " param "
          << recovered.models[m][p].first;
    }
  }
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : fault_(&base_) {}

  void OpenCluster(size_t shards) {
    ScenarioConfig config = ScenarioConfig::Battery(8);
    config.samples_per_dataset = 48;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    ASSERT_OK(scenario_->Init());
    ASSERT_OK(Reopen(shards));
  }

  // Opens a fresh coordinator over the same env (per-shard journal replay
  // runs here). On reopen the manifest wins, so `shards` only matters the
  // first time.
  Status Reopen(size_t shards) {
    cluster_.reset();
    ClusterOptions options;
    options.root_dir = "/cluster";
    options.env = &fault_;
    options.shard_count = shards;
    options.resolver = scenario_.get();
    options.profile = SetupProfile::Server();
    options.service.cache_enabled = cache_enabled_;
    MMM_ASSIGN_OR_RETURN(cluster_, Coordinator::Open(std::move(options)));
    return Status::OK();
  }

  std::string Save(ApproachType type, const ModelSetUpdateInfo* update) {
    Result<SaveResult> saved =
        update == nullptr
            ? cluster_->SaveInitial(type, scenario_->current_set())
            : [&] {
                ModelSetUpdateInfo derived = *update;
                derived.base_set_id = heads_[type];
                return cluster_->SaveDerived(type, scenario_->current_set(),
                                             derived);
              }();
    saved.status().Check();
    if (update != nullptr) {
      // Chain colocation: the derived set landed on its base's shard.
      auto base_owner = cluster_->OwnerOf(heads_[type]);
      auto owner = cluster_->OwnerOf(saved.ValueOrDie().set_id);
      base_owner.status().Check();
      owner.status().Check();
      EXPECT_EQ(owner.ValueOrDie(), base_owner.ValueOrDie());
    }
    heads_[type] = saved.ValueOrDie().set_id;
    first_.emplace(type, saved.ValueOrDie().set_id);
    expected_[saved.ValueOrDie().set_id] = scenario_->current_set();
    order_.push_back(saved.ValueOrDie().set_id);
    return saved.ValueOrDie().set_id;
  }

  void SaveAll(const ModelSetUpdateInfo* update) {
    for (ApproachType type : kAllApproaches) Save(type, update);
  }

  // Initial saves for every approach plus `cycles` derived generations.
  void BuildWorkload(size_t cycles) {
    SaveAll(nullptr);
    for (size_t cycle = 0; cycle < cycles; ++cycle) {
      auto update = scenario_->AdvanceCycle();
      update.status().Check();
      SaveAll(&update.ValueOrDie());
    }
  }

  void ExpectAllSetsBitExact(const std::string& label) {
    for (const auto& [id, expected] : expected_) {
      ASSERT_OK_AND_ASSIGN(ModelSet recovered, cluster_->Recover(id));
      ExpectSetEquals(recovered, expected, label + " set " + id);
    }
  }

  void ExpectFsckClean(const std::string& label) {
    ASSERT_OK_AND_ASSIGN(ClusterFsckReport fsck, cluster_->Fsck());
    EXPECT_TRUE(fsck.clean())
        << label << ": "
        << (fsck.problems.empty() ? "shard-level problem"
                                  : fsck.problems.front());
  }

  InMemoryEnv base_;
  FaultInjectionEnv fault_;
  /// Set to false before OpenCluster for deterministic degraded-mode
  /// assertions (a dead shard must not answer from a warm cache).
  bool cache_enabled_ = true;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<Coordinator> cluster_;
  std::map<ApproachType, std::string> heads_;
  /// First id saved with each approach (each approach's chain root).
  std::map<ApproachType, std::string> first_;
  std::map<std::string, ModelSet> expected_;
  std::vector<std::string> order_;
};

// ---------------------------------------------------------------------------
// Single-shard parity: the acceptance bar for the whole tier. A 1-shard
// cluster and an un-sharded manager + service, driven identically, must be
// indistinguishable request by request.

TEST(ClusterParityTest, SingleShardClusterIsBitExactWithUnshardedService) {
  ScenarioConfig config = ScenarioConfig::Battery(8);
  config.samples_per_dataset = 48;

  // Plain world: manager + service, as before the cluster tier existed.
  InMemoryEnv plain_env;
  auto plain_scenario = std::make_unique<MultiModelScenario>(config);
  ASSERT_OK(plain_scenario->Init());
  ModelSetManager::Options manager_options;
  manager_options.root_dir = "/plain";
  manager_options.env = &plain_env;
  manager_options.resolver = plain_scenario.get();
  manager_options.profile = SetupProfile::Server();
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(manager_options));
  ModelSetService service(manager.get(), ModelSetServiceOptions{});

  // Cluster world: one shard over its own env, same seeds.
  InMemoryEnv cluster_env;
  auto cluster_scenario = std::make_unique<MultiModelScenario>(config);
  ASSERT_OK(cluster_scenario->Init());
  ClusterOptions cluster_options;
  cluster_options.root_dir = "/cluster";
  cluster_options.env = &cluster_env;
  cluster_options.shard_count = 1;
  cluster_options.resolver = cluster_scenario.get();
  cluster_options.profile = SetupProfile::Server();
  ASSERT_OK_AND_ASSIGN(auto cluster,
                       Coordinator::Open(std::move(cluster_options)));

  // Drive both worlds through the same save sequence and compare every
  // SaveResult field that reflects store behavior.
  std::map<ApproachType, std::string> plain_heads, cluster_heads;
  std::vector<std::string> ids;
  auto save_all = [&](const ModelSetUpdateInfo* plain_update,
                      const ModelSetUpdateInfo* cluster_update) {
    for (ApproachType type : kAllApproaches) {
      Result<SaveResult> plain_saved =
          plain_update == nullptr
              ? manager->SaveInitial(type, plain_scenario->current_set())
              : [&] {
                  ModelSetUpdateInfo derived = *plain_update;
                  derived.base_set_id = plain_heads[type];
                  return manager->SaveDerived(
                      type, plain_scenario->current_set(), derived);
                }();
      Result<SaveResult> cluster_saved =
          cluster_update == nullptr
              ? cluster->SaveInitial(type, cluster_scenario->current_set())
              : [&] {
                  ModelSetUpdateInfo derived = *cluster_update;
                  derived.base_set_id = cluster_heads[type];
                  return cluster->SaveDerived(
                      type, cluster_scenario->current_set(), derived);
                }();
      ASSERT_OK(plain_saved.status());
      ASSERT_OK(cluster_saved.status());
      const SaveResult& p = plain_saved.ValueOrDie();
      const SaveResult& c = cluster_saved.ValueOrDie();
      EXPECT_EQ(p.set_id, c.set_id);  // identical id streams
      EXPECT_EQ(p.bytes_written, c.bytes_written);
      EXPECT_EQ(p.file_store_writes, c.file_store_writes);
      EXPECT_EQ(p.doc_store_writes, c.doc_store_writes);
      EXPECT_EQ(p.simulated_store_nanos, c.simulated_store_nanos);
      plain_heads[type] = p.set_id;
      cluster_heads[type] = c.set_id;
      ids.push_back(p.set_id);
    }
  };
  save_all(nullptr, nullptr);
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo plain_update,
                         plain_scenario->AdvanceCycle());
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo cluster_update,
                         cluster_scenario->AdvanceCycle());
    save_all(&plain_update, &cluster_update);
  }

  // Replay the same Zipfian trace through both serving paths; every
  // per-request result must match field for field, including the cache
  // counters (workers=1, so the hit pattern is deterministic).
  std::vector<std::string> trace = BuildZipfianTrace(ids, 96, 0.99, 13);
  std::vector<ModelSet> plain_recovered, cluster_recovered;
  std::vector<ServeResult> plain_results =
      service.Replay(trace, &plain_recovered);
  std::vector<ServeResult> cluster_results =
      cluster->Replay(trace, &cluster_recovered);
  ASSERT_EQ(plain_results.size(), cluster_results.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_OK(plain_results[i].status);
    ASSERT_OK(cluster_results[i].status);
    EXPECT_EQ(plain_results[i].set_id, cluster_results[i].set_id);
    EXPECT_EQ(plain_results[i].modeled_store_nanos,
              cluster_results[i].modeled_store_nanos)
        << "request " << i;
    EXPECT_EQ(plain_results[i].sets_walked, cluster_results[i].sets_walked);
    EXPECT_EQ(plain_results[i].cache.layer_hits,
              cluster_results[i].cache.layer_hits);
    EXPECT_EQ(plain_results[i].cache.layer_misses,
              cluster_results[i].cache.layer_misses);
    EXPECT_EQ(plain_results[i].cache.meta_hits,
              cluster_results[i].cache.meta_hits);
    EXPECT_EQ(plain_results[i].cache.meta_misses,
              cluster_results[i].cache.meta_misses);
    ExpectSetEquals(cluster_recovered[i], plain_recovered[i],
                    "request " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Multi-shard routing and fan-out maintenance.

TEST_F(ClusterTest, DataSpreadsAndEverySetServesBitExact) {
  OpenCluster(4);
  SaveAll(nullptr);
  // Initial saves are ring-placed by construction: nothing is misplaced.
  {
    ASSERT_OK_AND_ASSIGN(ClusterStatus initial, cluster_->StatusReport());
    for (const ShardStatus& shard : initial.shards) {
      EXPECT_EQ(shard.misplaced_sets, 0u) << shard.name;
    }
  }
  for (int cycle = 0; cycle < 2; ++cycle) {
    auto update = scenario_->AdvanceCycle();
    update.status().Check();
    SaveAll(&update.ValueOrDie());  // Save() asserts colocation
  }

  ASSERT_OK_AND_ASSIGN(ClusterStatus status, cluster_->StatusReport());
  EXPECT_EQ(status.shards.size(), 4u);
  EXPECT_EQ(status.total_sets, expected_.size());
  size_t populated = 0;
  size_t misplaced = 0;
  for (const ShardStatus& shard : status.shards) {
    misplaced += shard.misplaced_sets;
    if (shard.sets > 0) ++populated;
  }
  // Chain colocation keeps every non-full set with its base (never
  // misplaced); only the *full* derived copies (baseline / mmlib-base, 2
  // per cycle) can sit off their ring arc until a rebalance.
  EXPECT_LE(misplaced, 4u);
  // 4 initial ids over 4 shards: the fixed hash constellation populates
  // more than one shard (deterministic, not a distributional gamble).
  EXPECT_GE(populated, 2u);

  ExpectAllSetsBitExact("multi-shard");
  ExpectFsckClean("multi-shard");

  // A cross-shard trace replays with per-request results in input order.
  std::vector<std::string> trace = BuildZipfianTrace(order_, 64, 0.99, 17);
  std::vector<ModelSet> recovered;
  std::vector<ServeResult> results = cluster_->Replay(trace, &recovered);
  ASSERT_EQ(results.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok())
        << "request " << i << ": " << results[i].status.ToString();
    EXPECT_EQ(results[i].set_id, trace[i]);
    ExpectSetEquals(recovered[i], expected_[trace[i]], "request " + trace[i]);
  }
  // Unknown ids fail per-request without disturbing the rest.
  std::vector<ServeResult> mixed =
      cluster_->Replay({order_.front(), "set-999999-cafecafe"});
  ASSERT_OK(mixed[0].status);
  EXPECT_TRUE(mixed[1].status.IsNotFound());
}

TEST_F(ClusterTest, MaintenanceFansOutAcrossShards) {
  OpenCluster(3);
  BuildWorkload(/*cycles=*/2);

  // Chain compaction reaches chains on every shard through one call.
  CompactionPolicy policy;
  policy.max_chain_depth = 1;
  ASSERT_OK_AND_ASSIGN(CompactionReport compacted,
                       cluster_->CompactChains(policy));
  EXPECT_GT(compacted.chains_scanned, 0u);
  EXPECT_GT(compacted.sets_rebased, 0u);  // update chains had depth 2
  ExpectAllSetsBitExact("after compaction");

  // RetainOnly validates before deleting anything...
  auto bad = cluster_->RetainOnly({heads_[ApproachType::kUpdate], "set-nope"});
  EXPECT_TRUE(bad.status().IsNotFound());
  ExpectAllSetsBitExact("after refused retain");

  // ...then keeps the heads plus their lineage closure everywhere else.
  // The compaction above shortened the update chains, so the orphaned
  // mid-chain sets fall out of every head's lineage and are deleted.
  std::vector<std::string> keep;
  for (const auto& [type, id] : heads_) keep.push_back(id);
  ASSERT_OK_AND_ASSIGN(DeleteReport deleted, cluster_->RetainOnly(keep));
  EXPECT_GT(deleted.sets_deleted, 0u);
  for (const auto& [type, id] : heads_) {
    ASSERT_OK_AND_ASSIGN(ModelSet recovered, cluster_->Recover(id));
    ExpectSetEquals(recovered, expected_[id], "kept head " + id);
  }
  // Deleted sets are gone from the serving path and the placement map on
  // every shard the fan-out reached.
  ASSERT_EQ(deleted.deleted_set_ids.size(), deleted.sets_deleted);
  for (const std::string& id : deleted.deleted_set_ids) {
    EXPECT_TRUE(cluster_->Recover(id).status().IsNotFound()) << id;
    EXPECT_TRUE(cluster_->OwnerOf(id).status().IsNotFound()) << id;
  }
  ASSERT_OK_AND_ASSIGN(ClusterStatus retained, cluster_->StatusReport());
  EXPECT_EQ(retained.total_sets + deleted.sets_deleted, expected_.size());
  ExpectFsckClean("after retain");
}

TEST_F(ClusterTest, PinningRoutesToTheOwningShardAndBlocksDeletion) {
  OpenCluster(2);
  std::string id = Save(ApproachType::kUpdate, nullptr);
  ASSERT_OK(cluster_->PinSet(id));
  ASSERT_OK_AND_ASSIGN(std::string owner, cluster_->OwnerOf(id));
  ModelSetService::StatsSnapshot snapshot =
      cluster_->shard(owner)->service()->Snapshot();
  EXPECT_EQ(snapshot.pinned_sets, std::vector<std::string>{id});

  auto deleted = cluster_->DeleteSet(id);
  EXPECT_TRUE(deleted.status().IsInvalidArgument())
      << deleted.status().ToString();
  ASSERT_OK_AND_ASSIGN(ModelSet still_there, cluster_->Recover(id));
  ExpectSetEquals(still_there, expected_[id], "pinned survivor");

  ASSERT_OK(cluster_->UnpinSet(id));
  ASSERT_OK(cluster_->DeleteSet(id).status());
  EXPECT_TRUE(cluster_->OwnerOf(id).status().IsNotFound());
  EXPECT_TRUE(cluster_->PinSet("set-nope").IsNotFound());
}

TEST_F(ClusterTest, ReopenPreservesTopologyPlacementAndIdStream) {
  OpenCluster(3);
  BuildWorkload(/*cycles=*/1);
  std::vector<std::string> names = cluster_->ShardNames();
  std::map<std::string, std::string> owners;
  for (const std::string& id : order_) {
    ASSERT_OK_AND_ASSIGN(owners[id], cluster_->OwnerOf(id));
  }

  // Reopen asking for 1 shard: the manifest wins, nothing changes.
  ASSERT_OK(Reopen(/*shards=*/1));
  EXPECT_EQ(cluster_->shard_count(), 3u);
  EXPECT_EQ(cluster_->ShardNames(), names);
  for (const std::string& id : order_) {
    ASSERT_OK_AND_ASSIGN(std::string owner, cluster_->OwnerOf(id));
    EXPECT_EQ(owner, owners[id]) << id;
  }
  ExpectAllSetsBitExact("after reopen");

  // The master id generator resumed past every persisted id: a new save
  // must mint a fresh id, not recycle one.
  std::string fresh = Save(ApproachType::kMMlibBase, nullptr);
  EXPECT_EQ(owners.count(fresh), 0u) << fresh;
  ExpectFsckClean("after reopen");
}

// ---------------------------------------------------------------------------
// Failover: kill a shard mid-traffic, replay its journal into a
// replacement, and verify the cluster is whole again with zero id movement.

TEST_F(ClusterTest, KillingAShardMidTrafficFailsOverCleanly) {
  cache_enabled_ = false;
  OpenCluster(3);
  BuildWorkload(/*cycles=*/2);
  std::vector<std::string> trace = BuildZipfianTrace(order_, 64, 0.99, 23);
  for (const ServeResult& r : cluster_->Replay(trace)) ASSERT_OK(r.status);

  // The victim: whichever shard serves the first saved set. Interrupt a
  // derived save against it mid-write first, so its journal has an entry
  // to roll back — the failover replay must repair it.
  ASSERT_OK_AND_ASSIGN(std::string victim, cluster_->OwnerOf(order_.front()));
  std::string victim_root = cluster_->shard(victim)->root_dir();
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  ModelSetUpdateInfo interrupted = update;
  interrupted.base_set_id = order_.front();
  fault_.FailWritesAfter(fault_.write_count() + 2);
  EXPECT_FALSE(cluster_
                   ->SaveDerived(ApproachType::kMMlibBase,
                                 scenario_->current_set(), interrupted)
                   .ok());
  fault_.Heal();

  // Now the node dies: its subtree becomes unreachable while traffic is
  // in flight on other threads.
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&] {
      for (int round = 0; round < 3; ++round) cluster_->Replay(trace);
    });
  }
  fault_.FailPathsUnder(victim_root);
  for (std::thread& t : traffic) t.join();

  // Degraded mode: exactly the victim's requests fail, everyone else
  // keeps serving.
  for (const ServeResult& r : cluster_->Replay(trace)) {
    ASSERT_OK_AND_ASSIGN(std::string owner, cluster_->OwnerOf(r.set_id));
    if (owner == victim) {
      EXPECT_FALSE(r.status.ok()) << r.set_id;
    } else {
      ASSERT_TRUE(r.status.ok())
          << r.set_id << ": " << r.status.ToString();
    }
  }

  // The replacement mounts the surviving subtree: heal, fail over, and the
  // journal replay rolls the interrupted save back.
  fault_.HealPaths();
  ASSERT_OK_AND_ASSIGN(RepairReport replay, cluster_->FailOver(victim));
  EXPECT_TRUE(replay.clean())
      << (replay.problems.empty() ? "" : replay.problems.front());
  EXPECT_EQ(replay.rolled_back, 1u);

  EXPECT_EQ(cluster_->shard(victim), nullptr);
  std::string replacement = victim + "-r1";
  ASSERT_NE(cluster_->shard(replacement), nullptr);
  ASSERT_OK_AND_ASSIGN(ClusterStatus status, cluster_->StatusReport());
  EXPECT_EQ(status.failovers, 1u);
  for (const ShardStatus& shard : status.shards) {
    if (shard.name == replacement) {
      // ReplaceShard inherited the dead shard's points...
      EXPECT_EQ(shard.ring_key, victim);
      // ...so nothing is misplaced: zero ids moved.
      EXPECT_EQ(shard.misplaced_sets, 0u);
    }
  }
  for (const std::string& id : order_) {
    ASSERT_OK_AND_ASSIGN(std::string owner, cluster_->OwnerOf(id));
    EXPECT_NE(owner, victim) << id;
  }

  // Whole again: every request serves bit-exactly and the fsck is clean.
  std::vector<ModelSet> recovered;
  std::vector<ServeResult> results = cluster_->Replay(trace, &recovered);
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok())
        << trace[i] << ": " << results[i].status.ToString();
    ExpectSetEquals(recovered[i], expected_[trace[i]], "post-failover");
  }
  ExpectFsckClean("post-failover");

  // And the cluster survives another generation of the same shard dying.
  fault_.FailPathsUnder(victim_root);
  fault_.HealPaths();
  ASSERT_OK(cluster_->FailOver(replacement).status());
  ASSERT_NE(cluster_->shard(victim + "-r1-r2"), nullptr);
  ExpectAllSetsBitExact("second failover");
  ExpectFsckClean("second failover");
}

TEST_F(ClusterTest, FailOverUnknownShardIsTyped) {
  OpenCluster(2);
  EXPECT_TRUE(cluster_->FailOver("shard-9").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Elastic growth: AddShard + Rebalance restore ring placement with
// recovered bytes unchanged, and converge (a second run moves nothing).

TEST_F(ClusterTest, AddShardThenRebalanceRestoresRingPlacement) {
  OpenCluster(2);
  BuildWorkload(/*cycles=*/2);

  ASSERT_OK(cluster_->AddShard("shard-2"));
  EXPECT_TRUE(cluster_->AddShard("shard-2").IsAlreadyExists());
  EXPECT_EQ(cluster_->shard_count(), 3u);
  // Until the rebalance, everything keeps serving from where it was.
  ExpectAllSetsBitExact("pre-rebalance");

  ASSERT_OK_AND_ASSIGN(RebalanceReport moved, cluster_->Rebalance());
  EXPECT_TRUE(moved.skipped.empty())
      << (moved.skipped.empty() ? "" : moved.skipped.front());
  ASSERT_OK_AND_ASSIGN(ClusterStatus status, cluster_->StatusReport());
  for (const ShardStatus& shard : status.shards) {
    EXPECT_EQ(shard.misplaced_sets, 0u) << shard.name;
  }
  EXPECT_EQ(status.total_sets, expected_.size());
  // Moves are placement surgery, never data surgery: bytes unchanged.
  ExpectAllSetsBitExact("post-rebalance");
  ExpectFsckClean("post-rebalance");

  // Converged: a second run finds nothing to do.
  ASSERT_OK_AND_ASSIGN(RebalanceReport again, cluster_->Rebalance());
  EXPECT_EQ(again.sets_moved, 0u);
  EXPECT_EQ(again.chains_flattened, 0u);

  // A pinned set refuses to leave its shard but does not fail the run.
  // (Pinning is an update-approach feature, so pin that chain's head.)
  ASSERT_OK(cluster_->AddShard("shard-3"));
  std::string pinned_id = heads_[ApproachType::kUpdate];
  ASSERT_OK_AND_ASSIGN(std::string pinned_owner, cluster_->OwnerOf(pinned_id));
  ASSERT_OK(cluster_->PinSet(pinned_id));
  ASSERT_OK_AND_ASSIGN(RebalanceReport pinned, cluster_->Rebalance());
  ASSERT_OK_AND_ASSIGN(std::string owner_now, cluster_->OwnerOf(pinned_id));
  EXPECT_EQ(owner_now, pinned_owner);
  ASSERT_OK(cluster_->UnpinSet(pinned_id));
  ASSERT_OK(cluster_->Rebalance().status());
  ExpectFsckClean("post-growth");
  ExpectAllSetsBitExact("post-growth");
}

// ---------------------------------------------------------------------------
// Crash-during-rebalance sweep (test_crash_recovery.cc style): a probe run
// learns the rebalance's write count, then every k-th write crashes a fresh
// world. Reopening replays each shard's journal; rerunning the rebalance
// must converge with every set bit-exact and the cluster fsck-clean.

struct RebalanceWorld {
  RebalanceWorld() : fault(&base) {}

  Status Open() {
    ScenarioConfig config = ScenarioConfig::Battery(4);
    config.full_update_fraction = 0.5;
    config.partial_update_fraction = 0.25;
    config.samples_per_dataset = 32;
    scenario = std::make_unique<MultiModelScenario>(config);
    MMM_RETURN_NOT_OK(scenario->Init());
    return Reopen();
  }

  Status Reopen() {
    cluster.reset();
    ClusterOptions options;
    options.root_dir = "/cluster";
    options.env = &fault;
    options.shard_count = 1;
    options.resolver = scenario.get();
    MMM_ASSIGN_OR_RETURN(cluster, Coordinator::Open(std::move(options)));
    return Status::OK();
  }

  // A chain plus two standalone sets on the original single shard, then a
  // new empty shard — everything the ring hands to shard-1 is misplaced
  // until the rebalance moves it.
  Status Build() {
    auto record = [&](Result<SaveResult> saved) -> Status {
      MMM_RETURN_NOT_OK(saved.status());
      ids.push_back(saved.ValueOrDie().set_id);
      expected[saved.ValueOrDie().set_id] = scenario->current_set();
      return Status::OK();
    };
    MMM_RETURN_NOT_OK(record(cluster->SaveInitial(ApproachType::kUpdate,
                                                  scenario->current_set())));
    MMM_RETURN_NOT_OK(record(cluster->SaveInitial(ApproachType::kBaseline,
                                                  scenario->current_set())));
    MMM_RETURN_NOT_OK(record(cluster->SaveInitial(ApproachType::kMMlibBase,
                                                  scenario->current_set())));
    std::string head = ids.front();
    for (int i = 0; i < 2; ++i) {
      MMM_ASSIGN_OR_RETURN(ModelSetUpdateInfo update,
                           scenario->AdvanceCycle());
      update.base_set_id = head;
      MMM_RETURN_NOT_OK(record(cluster->SaveDerived(
          ApproachType::kUpdate, scenario->current_set(), update)));
      head = ids.back();
    }
    return cluster->AddShard("shard-1");
  }

  InMemoryEnv base;
  FaultInjectionEnv fault;
  std::unique_ptr<MultiModelScenario> scenario;
  std::unique_ptr<Coordinator> cluster;
  std::vector<std::string> ids;
  std::map<std::string, ModelSet> expected;
};

TEST(RebalanceCrashSweep, EveryCrashPointConvergesCleanAndBitExact) {
  // Probe: learn the write count of an unimpeded rebalance, and make sure
  // the fixed hash constellation actually exercises both a flatten and a
  // move (the ids and ring are deterministic, so this cannot flake).
  int64_t before = 0;
  int64_t writes = 0;
  {
    RebalanceWorld probe;
    ASSERT_OK(probe.Open());
    ASSERT_OK(probe.Build());
    before = probe.fault.write_count();
    ASSERT_OK_AND_ASSIGN(RebalanceReport report, probe.cluster->Rebalance());
    writes = probe.fault.write_count() - before;
    ASSERT_GT(report.sets_moved, 0u);
    ASSERT_TRUE(report.skipped.empty());
    ASSERT_GT(writes, 0);
  }

  // Sweep, strided to bound the runtime; the first and last write index
  // are always included.
  int64_t stride = std::max<int64_t>(1, writes / 24);
  for (int64_t k = 0; k < writes; k += (k + stride >= writes ? 1 : stride)) {
    std::string label = "rebalance crash@" + std::to_string(k);
    RebalanceWorld world;
    ASSERT_OK(world.Open());
    ASSERT_OK(world.Build());
    ASSERT_EQ(world.fault.write_count(), before) << label;
    world.fault.FailWritesAfter(before + k);
    EXPECT_FALSE(world.cluster->Rebalance().ok()) << label;
    world.fault.Heal();

    // The coordinator crashed with it; a fresh one reopens the shards
    // (journal replay), rediscovers placement from the stores, and the
    // rerun converges.
    ASSERT_OK(world.Reopen());
    ASSERT_OK_AND_ASSIGN(RebalanceReport rerun, world.cluster->Rebalance());
    EXPECT_TRUE(rerun.skipped.empty()) << label;
    ASSERT_OK_AND_ASSIGN(ClusterStatus status, world.cluster->StatusReport());
    EXPECT_EQ(status.total_sets, world.ids.size()) << label;
    for (const ShardStatus& shard : status.shards) {
      EXPECT_EQ(shard.misplaced_sets, 0u) << label << " " << shard.name;
    }
    for (const std::string& id : world.ids) {
      ASSERT_OK_AND_ASSIGN(ModelSet recovered, world.cluster->Recover(id));
      ExpectSetEquals(recovered, world.expected.at(id), label + " " + id);
    }
    ASSERT_OK_AND_ASSIGN(ClusterFsckReport fsck, world.cluster->Fsck());
    EXPECT_TRUE(fsck.clean())
        << label << ": "
        << (fsck.problems.empty() ? "shard-level problem"
                                  : fsck.problems.front());
  }
}

}  // namespace
}  // namespace mmm
