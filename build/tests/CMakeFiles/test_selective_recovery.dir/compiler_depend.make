# Empty compiler generated dependencies file for test_selective_recovery.
# This may be replaced when dependencies are built.
