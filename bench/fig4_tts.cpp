// Figure 4 (paper §4.3): median time-to-save per use case, on both hardware
// profiles (4a: M1 laptop, 4b: server).
//
// Expected shape (paper): MMlib-base is slowest by far (one store round-trip
// per model); Baseline is fastest; Update pays a hashing overhead on top of
// Baseline; Provenance matches Baseline at U1 and is the cheapest at U3.
// The M1 -> server improvement is concentrated in MMlib-base because the
// server's document-store connection is faster.
//
// Reported times are wall clock + modeled store latency (see DESIGN.md §1:
// store round-trip costs are simulated so results reproduce anywhere).
//
// Knobs: MMM_MODELS (default 5000), MMM_RUNS (3; paper uses 5),
// MMM_U3_ITERATIONS (3), MMM_SAMPLES (256).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv();
  knobs.Describe("fig4_tts");

  for (const SetupProfile& profile :
       {SetupProfile::M1(), SetupProfile::Server()}) {
    ExperimentConfig config;
    config.scenario = ScenarioConfig::Battery(knobs.models);
    config.scenario.samples_per_dataset = knobs.samples;
    config.u3_iterations = knobs.u3_iterations;
    config.runs = knobs.runs;
    config.measure_ttr = false;
    config.profile = profile;
    config.work_dir = "/tmp/mmm-bench-fig4-" + profile.name;

    ExperimentRunner runner(config);
    auto results = runner.Run().ValueOrDie();

    const char* figure = profile.name == "M1" ? "4a" : "4b";
    PrintMetricTable(
        StringFormat("Figure %s: median time-to-save in s (%s setup, %zu "
                     "models, %d runs)",
                     figure, profile.name.c_str(), knobs.models, knobs.runs),
        results, [](const ApproachMetrics& m) { return Seconds(m.tts_seconds); });
    PrintMetricTable(
        StringFormat("  breakdown, %s: modeled store latency portion in s",
                     profile.name.c_str()),
        results,
        [](const ApproachMetrics& m) { return Seconds(m.tts_modeled_seconds); });

    CleanupWorkDir(knobs, config.work_dir);
  }
  return 0;
}
