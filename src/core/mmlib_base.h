#ifndef MMM_CORE_MMLIB_BASE_H_
#define MMM_CORE_MMLIB_BASE_H_

#include "core/approach.h"
#include "prov/environment.h"

namespace mmm {

/// \brief MMlib's baseline approach (the paper's reference point, §2.2/§4.1).
///
/// Saves every model of a set *individually*, as a single-model management
/// system would: per model one weights blob (state dict with layer-name
/// keys), one source-code artifact, and one metadata document embedding the
/// full architecture description and environment info. This is deliberately
/// wasteful in exactly the ways the paper identifies:
///   - O1: architecture, dict keys, code, and environment are persisted
///     n times per set;
///   - O3: every model costs two file-store writes plus a document-store
///     round-trip, so saving n models is ~3n store operations.
class MMlibBaseApproach : public ModelSetApproach {
 public:
  /// \param environment environment snapshot persisted per model (MMlib
  ///        records it with every save).
  MMlibBaseApproach(StoreContext context, EnvironmentInfo environment);

  std::string Name() const override { return "mmlib-base"; }
  Result<SaveResult> SaveInitial(const ModelSet& set) override;
  Result<SaveResult> SaveDerived(const ModelSet& set,
                                 const ModelSetUpdateInfo& update) override;
  Result<ModelSet> Recover(const std::string& set_id,
                           RecoverStats* stats) override;
  Result<std::vector<StateDict>> RecoverModels(const std::string& set_id,
                                               const std::vector<size_t>& indices,
                                               RecoverStats* stats) override;
  using ModelSetApproach::Recover;
  using ModelSetApproach::RecoverModels;

 private:
  Result<SaveResult> SaveAllIndividually(const ModelSet& set);

  StoreContext context_;
  EnvironmentInfo environment_;
};

/// Document-store collection holding MMlib-base's per-model documents.
inline constexpr char kMmlibModelCollection[] = "mmlib_models";

}  // namespace mmm

#endif  // MMM_CORE_MMLIB_BASE_H_
