#ifndef MMM_CORE_BASELINE_H_
#define MMM_CORE_BASELINE_H_

#include "core/approach.h"

namespace mmm {

/// \brief The paper's Baseline approach (§3.2).
///
/// Represents a set by exactly three artifacts — one metadata document, one
/// architecture blob, one concatenated parameter blob — addressing O1
/// (architecture/metadata stored once per set, parameters stored without
/// per-model dictionary keys) and O3 (a constant number of store writes per
/// set instead of ~3n).
///
/// Every saved set is independently recoverable: storage consumption is flat
/// across update cycles, and time-to-recover is constant (Figures 3/5).
class BaselineApproach : public ModelSetApproach {
 public:
  explicit BaselineApproach(StoreContext context) : context_(context) {}

  std::string Name() const override { return "baseline"; }
  Result<SaveResult> SaveInitial(const ModelSet& set) override;
  Result<SaveResult> SaveDerived(const ModelSet& set,
                                 const ModelSetUpdateInfo& update) override;
  Result<ModelSet> Recover(const std::string& set_id,
                           RecoverStats* stats) override;
  Result<std::vector<StateDict>> RecoverModels(const std::string& set_id,
                                               const std::vector<size_t>& indices,
                                               RecoverStats* stats) override;
  using ModelSetApproach::Recover;
  using ModelSetApproach::RecoverModels;

 private:
  Result<SaveResult> SaveSnapshot(const ModelSet& set,
                                  const std::string& base_set_id);

  StoreContext context_;
};

}  // namespace mmm

#endif  // MMM_CORE_BASELINE_H_
