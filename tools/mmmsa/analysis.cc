#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cfg.h"
#include "parser.h"
#include "sa.h"

namespace mmmsa {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Shared token helpers (mirrors parser.cc's private ones).

const Token* At(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() ? &toks[i] : nullptr;
}

bool IsIdent(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kIdent && t->text == text;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

bool IsAnyIdent(const Token* t) {
  return t != nullptr && t->kind == TokenKind::kIdent;
}

size_t SkipParens(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i + 1;
  }
  return toks.size();
}

// ---------------------------------------------------------------------------
// File collection + lexing.

bool HasSourceExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::vector<std::string> CollectSources(const std::vector<std::string>& paths,
                                        std::vector<std::string>* io_errors) {
  std::vector<std::string> out;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(
               path, fs::directory_options::skip_permission_denied, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
          out.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      out.push_back(path);
    } else if (io_errors != nullptr) {
      io_errors->push_back(path);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// ---------------------------------------------------------------------------
// Suppressions: `// MMMSA(<analysis>): reason` on the line or the line above.

class Suppressions {
 public:
  explicit Suppressions(const std::vector<LexedFile>& files) {
    for (const LexedFile& f : files) {
      std::string path = EffectivePath(f.path);
      for (const Comment& c : f.comments) {
        size_t pos = c.text.find("MMMSA(");
        if (pos == std::string::npos) continue;
        size_t close = c.text.find(')', pos);
        if (close == std::string::npos) continue;
        std::string analysis = c.text.substr(pos + 6, close - pos - 6);
        by_file_[path].emplace(c.line, analysis);
      }
    }
  }

  bool Covers(const Finding& finding) const {
    auto it = by_file_.find(finding.file);
    if (it == by_file_.end()) return false;
    for (int line : {finding.line, finding.line - 1}) {
      auto range = it->second.equal_range(line);
      for (auto e = range.first; e != range.second; ++e) {
        if (e->second == finding.analysis || e->second == "*") return true;
      }
    }
    return false;
  }

 private:
  std::map<std::string, std::multimap<int, std::string>> by_file_;
};

// ---------------------------------------------------------------------------
// Lock-expression and callee resolution.

struct Analyzer;

/// Splits a member chain like `c . topo_mu_` / `store_ -> mu_` into
/// segments; each segment may carry a trailing `()` call marker.
struct ChainSeg {
  std::string name;
  bool call = false;
};

/// Parses tokens [begin, end) as `seg (. | ->) seg ...`, each seg an ident
/// optionally followed by `( )` (empty-arg accessor). Leading `*`/`&`/`this->`
/// is tolerated. Returns empty when the shape does not fit.
std::vector<ChainSeg> ParseChain(const std::vector<Token>& toks, size_t begin,
                                 size_t end) {
  std::vector<ChainSeg> chain;
  size_t i = begin;
  while (i < end && (IsPunct(&toks[i], "*") || IsPunct(&toks[i], "&"))) ++i;
  if (i < end && IsIdent(&toks[i], "this") && i + 1 < end &&
      IsPunct(&toks[i + 1], "->")) {
    i += 2;  // `this->member` resolves like a bare member
  }
  while (i < end) {
    if (!IsAnyIdent(&toks[i])) return {};
    ChainSeg seg;
    seg.name = toks[i].text;
    ++i;
    if (i < end && IsPunct(&toks[i], "(")) {
      size_t close = SkipParens(toks, i);
      if (close - i != 2) return {};  // accessor chains only: no arguments
      seg.call = true;
      i = close;
    }
    chain.push_back(std::move(seg));
    if (i >= end) break;
    if (!IsPunct(&toks[i], ".") && !IsPunct(&toks[i], "->")) return {};
    ++i;
    if (i >= end) return {};  // trailing separator: malformed
  }
  return chain;
}

struct Analyzer {
  explicit Analyzer(const Program& p) : program(p) {}
  const Program& program;

  /// Walks the enclosing-class chain from `scope` outward looking up `key`
  /// with `probe`; returns the first hit.
  template <typename Fn>
  std::string ProbeScopes(const std::string& scope, Fn probe) const {
    std::string s = scope;
    while (true) {
      std::string hit = probe(s);
      if (!hit.empty()) return hit;
      if (s.empty()) return "";
      size_t pos = s.rfind("::");
      s = pos == std::string::npos ? "" : s.substr(0, pos);
    }
  }

  /// Resolves the class of chain segment 0 in the context of `fn`.
  std::string ResolveChainBase(const FunctionInfo& fn,
                               const ChainSeg& seg) const {
    if (seg.call) {
      // Accessor call at the head: a method of the enclosing class or a
      // free function with a unique class-valued return.
      const FunctionInfo* callee = nullptr;
      std::string q = ProbeScopes(fn.class_scope, [&](const std::string& s) {
        std::string cand = s.empty() ? seg.name : s + "::" + seg.name;
        return program.by_qualified.count(cand) != 0 ? cand : std::string();
      });
      if (!q.empty()) {
        callee = &program.functions[program.by_qualified.at(q)[0]];
        return callee->return_class;
      }
      return "";
    }
    auto vt = fn.var_types.find(seg.name);
    if (vt != fn.var_types.end()) return vt->second;
    return ProbeScopes(fn.class_scope, [&](const std::string& s) {
      if (s.empty()) return std::string();
      auto cit = program.classes.find(s);
      if (cit == program.classes.end()) return std::string();
      auto mt = cit->second.member_types.find(seg.name);
      return mt != cit->second.member_types.end() ? mt->second : std::string();
    });
  }

  /// Steps from class `cls` through one chain segment.
  std::string ResolveChainStep(const std::string& cls,
                               const ChainSeg& seg) const {
    auto cit = program.classes.find(cls);
    if (cit == program.classes.end()) return "";
    if (seg.call) {
      auto rit = cit->second.method_return_class.find(seg.name);
      return rit != cit->second.method_return_class.end() ? rit->second : "";
    }
    auto mt = cit->second.member_types.find(seg.name);
    return mt != cit->second.member_types.end() ? mt->second : "";
  }

  /// Resolves a lock expression (tokens of a guard-constructor argument or
  /// an MMM_REQUIRES spelling) to a lock id; "" when unknown.
  std::string ResolveLockExpr(const FunctionInfo& fn,
                              const std::vector<Token>& toks, size_t begin,
                              size_t end) const {
    std::vector<ChainSeg> chain = ParseChain(toks, begin, end);
    if (chain.empty()) return "";
    if (chain.size() == 1) {
      const ChainSeg& seg = chain[0];
      if (seg.call) {
        // `MutexLock lock(SinkMutex());` — the returned-lock idiom.
        std::string q = ProbeScopes(fn.class_scope, [&](const std::string& s) {
          std::string cand = s.empty() ? seg.name : s + "::" + seg.name;
          return program.returned_locks.count(cand) != 0 ? cand
                                                         : std::string();
        });
        if (!q.empty()) return program.returned_locks.at(q);
        return "";
      }
      // Bare lock member of the enclosing class chain...
      std::string id = ProbeScopes(fn.class_scope, [&](const std::string& s) {
        if (s.empty()) return std::string();
        std::string cand = s + "::" + seg.name;
        return program.lock_index.count(cand) != 0 ? cand : std::string();
      });
      if (!id.empty()) return id;
      // ...or a unique lock member name anywhere.
      auto mit = program.locks_by_member.find(seg.name);
      if (mit != program.locks_by_member.end() && mit->second.size() == 1) {
        return mit->second[0];
      }
      return "";
    }
    // Chain: resolve the receiver class, then the final lock member.
    std::string cls = ResolveChainBase(fn, chain[0]);
    for (size_t i = 1; i + 1 < chain.size() && !cls.empty(); ++i) {
      cls = ResolveChainStep(cls, chain[i]);
    }
    const std::string& leaf = chain.back().name;
    if (!cls.empty()) {
      std::string cand = cls + "::" + leaf;
      if (program.lock_index.count(cand) != 0) return cand;
    }
    auto mit = program.locks_by_member.find(leaf);
    if (mit != program.locks_by_member.end() && mit->second.size() == 1) {
      return mit->second[0];
    }
    return "";
  }

  /// Resolves a call site ending at the callee ident `toks[name_idx]`
  /// (followed by `(`). `chain_begin` is the first token of the receiver
  /// chain (== name_idx for a bare call). Returns function indices.
  std::vector<size_t> ResolveCallee(const FunctionInfo& fn,
                                    const std::vector<Token>& toks,
                                    size_t chain_begin, size_t name_idx) const {
    const std::string& name = toks[name_idx].text;
    // Qualified call `C::m(...)` — must win over the bare-call probe, or
    // `Shard::Open(...)` inside a Coordinator method would resolve to
    // Coordinator::Open.
    if (name_idx >= 1 && IsPunct(&toks[name_idx - 1], "::")) {
      if (name_idx >= 2 && IsAnyIdent(&toks[name_idx - 2])) {
        std::string cls = mmmsa::ResolveClassName(program, fn.class_scope,
                                                  toks[name_idx - 2].text);
        if (!cls.empty()) {
          auto qit = program.by_qualified.find(cls + "::" + name);
          if (qit != program.by_qualified.end()) return qit->second;
        }
      }
      return {};  // namespace-qualified (std::move, mmm::...) or unknown
    }
    if (chain_begin == name_idx) {
      // Bare call: enclosing class method first, then a free function.
      std::string q = ProbeScopes(fn.class_scope, [&](const std::string& s) {
        if (s.empty()) return std::string();
        std::string cand = s + "::" + name;
        return program.by_qualified.count(cand) != 0 ? cand : std::string();
      });
      if (!q.empty()) return program.by_qualified.at(q);
      auto fit = program.free_by_name.find(name);
      if (fit != program.free_by_name.end() && fit->second.size() == 1) {
        return fit->second;
      }
      return {};
    }
    // Member call through a receiver chain.
    std::vector<ChainSeg> chain = ParseChain(toks, chain_begin, name_idx);
    if (chain.empty()) return {};
    std::string cls = ResolveChainBase(fn, chain[0]);
    for (size_t i = 1; i < chain.size() && !cls.empty(); ++i) {
      cls = ResolveChainStep(cls, chain[i]);
    }
    if (cls.empty()) return {};
    std::string probe = cls;
    while (!probe.empty()) {
      auto qit = program.by_qualified.find(probe + "::" + name);
      if (qit != program.by_qualified.end()) return qit->second;
      size_t pos = probe.rfind("::");
      probe = pos == std::string::npos ? "" : probe.substr(0, pos);
      break;  // only the exact class: base-class walks would guess
    }
    return {};
  }
};

/// Finds the start of the receiver chain for a call whose name ident sits at
/// `name_idx`: walks back over `seg (.|->) seg` links. Returns name_idx for
/// a bare call.
size_t ChainStart(const std::vector<Token>& toks, size_t name_idx) {
  size_t i = name_idx;
  while (i >= 2 &&
         (IsPunct(&toks[i - 1], ".") || IsPunct(&toks[i - 1], "->"))) {
    size_t prev = i - 2;
    if (IsPunct(&toks[prev], ")")) {
      // accessor call: scan back to its `(` then the ident before it
      int depth = 0;
      size_t j = prev;
      while (true) {
        if (IsPunct(&toks[j], ")")) ++depth;
        if (IsPunct(&toks[j], "(") && --depth == 0) break;
        if (j == 0) return i;
        --j;
      }
      if (j == 0 || !IsAnyIdent(&toks[j - 1])) return i;
      i = j - 1;
      continue;
    }
    if (!IsAnyIdent(&toks[prev])) return i;
    i = prev;
  }
  return i;
}

bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "while",      "for",         "switch",  "return",
      "sizeof",   "alignof",    "decltype",    "new",     "delete",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
      "assert",   "defined",    "catch",       "throw",
  };
  return kKeywords.count(s) != 0 || s.rfind("MMM_", 0) == 0;
}

// ---------------------------------------------------------------------------
// Analysis 1: lock-order graph.

struct LockEdge {
  std::string from, to;
  std::string file;
  int line = 0;
  std::string via;  ///< qualified function where the edge was observed
};

struct CallSite {
  size_t callee = 0;        ///< index into program.functions
  std::vector<std::string> held;
  std::string file;
  int line = 0;
};

struct FnLockFacts {
  std::vector<std::string> direct;  ///< lock ids acquired in the body
  std::vector<CallSite> calls;
};

class LockOrderAnalysis {
 public:
  LockOrderAnalysis(const Program& program, const Analyzer& az)
      : program_(program), az_(az) {}

  void Run(std::vector<Finding>* findings) {
    facts_.resize(program_.functions.size());
    for (size_t i = 0; i < program_.functions.size(); ++i) {
      CollectFunction(i);
    }
    PropagateSummaries();
    AddCallEdges();
    ReportMissingRanks(findings);
    ReportInversions(findings);
    ReportCycles(findings);
  }

  const std::map<std::pair<std::string, std::string>, LockEdge>& edges() const {
    return edges_;
  }

 private:
  void AddEdge(const std::string& from, const std::string& to,
               const std::string& file, int line, const std::string& via) {
    auto key = std::make_pair(from, to);
    if (edges_.count(key) == 0) {
      edges_[key] = LockEdge{from, to, file, line, via};
    }
  }

  /// Scans one token run for guard declarations and call sites, with `held`
  /// live for the rest of the enclosing statement sequence.
  void ScanTokens(size_t fn_idx, const std::vector<Token>& toks,
                  std::vector<std::string>* held) {
    const FunctionInfo& fn = program_.functions[fn_idx];
    for (size_t i = 0; i < toks.size(); ++i) {
      if (!IsAnyIdent(&toks[i])) continue;
      const std::string& t = toks[i].text;
      if (t == "MutexLock" || t == "ReaderMutexLock" ||
          t == "WriterMutexLock") {
        // `MutexLock name ( expr ) ;`
        if (i + 2 < toks.size() && IsAnyIdent(&toks[i + 1]) &&
            IsPunct(&toks[i + 2], "(")) {
          size_t close = SkipParens(toks, i + 2);
          std::string id =
              az_.ResolveLockExpr(fn, toks, i + 3, close > i + 2 ? close - 1
                                                                 : i + 3);
          if (!id.empty()) {
            for (const std::string& h : *held) {
              AddEdge(h, id, EffectivePath(fn.file), toks[i].line,
                      fn.qualified);
            }
            facts_[fn_idx].direct.push_back(id);
            held->push_back(id);
          }
          i = close > i ? close - 1 : i;
        }
        continue;
      }
      // Call site: ident followed by `(`, not a keyword/macro, not a guard.
      if (i + 1 < toks.size() && IsPunct(&toks[i + 1], "(") &&
          !IsCallKeyword(t)) {
        size_t chain_begin = ChainStart(toks, i);
        std::vector<size_t> callees =
            az_.ResolveCallee(fn, toks, chain_begin, i);
        for (size_t callee : callees) {
          if (callee == fn_idx) continue;  // recursion adds nothing
          facts_[fn_idx].calls.push_back(CallSite{
              callee, *held, EffectivePath(fn.file), toks[i].line});
        }
      }
    }
  }

  void WalkStmts(size_t fn_idx, const std::vector<Stmt>& stmts,
                 std::vector<std::string> held) {
    for (const Stmt& s : stmts) {
      size_t held_before = held.size();
      ScanTokens(fn_idx, s.tokens, &held);
      // Guards declared inside a condition/plain stmt stay held for the
      // nested bodies and the following siblings (RAII scope = enclosing
      // block, which this sequence models).
      WalkStmts(fn_idx, s.body, held);
      if (s.has_else) {
        std::vector<std::string> else_held(held.begin(),
                                           held.begin() + held_before);
        // else branch: guards from the then-path are out of scope; guards
        // from the condition (rare) conservatively dropped too.
        WalkStmts(fn_idx, s.else_body, else_held);
      }
    }
  }

  void CollectFunction(size_t fn_idx) {
    const FunctionInfo& fn = program_.functions[fn_idx];
    std::vector<std::string> held;
    for (const std::string& spelling : fn.requires_locks) {
      LexedFile lexed = mmmlint::Lex("<requires>", spelling);
      std::string id =
          az_.ResolveLockExpr(fn, lexed.tokens, 0, lexed.tokens.size());
      if (!id.empty()) held.push_back(id);
    }
    required_[fn_idx] = held;
    WalkStmts(fn_idx, fn.body, std::move(held));
  }

  void PropagateSummaries() {
    summaries_.assign(program_.functions.size(), {});
    for (size_t i = 0; i < facts_.size(); ++i) {
      summaries_[i].insert(facts_[i].direct.begin(), facts_[i].direct.end());
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < facts_.size(); ++i) {
        for (const CallSite& cs : facts_[i].calls) {
          for (const std::string& id : summaries_[cs.callee]) {
            if (summaries_[i].insert(id).second) changed = true;
          }
        }
      }
    }
  }

  void AddCallEdges() {
    for (size_t i = 0; i < facts_.size(); ++i) {
      for (const CallSite& cs : facts_[i].calls) {
        if (cs.held.empty()) continue;
        for (const std::string& acquired : summaries_[cs.callee]) {
          for (const std::string& h : cs.held) {
            AddEdge(h, acquired, cs.file, cs.line,
                    program_.functions[i].qualified);
          }
        }
      }
    }
  }

  void ReportMissingRanks(std::vector<Finding>* findings) {
    for (const LockDecl& lock : program_.locks) {
      std::string path = EffectivePath(lock.file);
      if (path.rfind("src/", 0) != 0) continue;
      if (lock.rank >= 0) continue;
      Finding f;
      f.analysis = "lock-order";
      f.rule = "lock-rank-missing";
      f.file = path;
      f.line = lock.line;
      f.symbol = lock.id;
      f.message = "lock '" + lock.id +
                  "' has no MMM_LOCK_RANK annotation; every Mutex/SharedMutex "
                  "under src/ must declare its place in the global order "
                  "(DESIGN.md §6.2)";
      findings->push_back(std::move(f));
    }
  }

  void ReportInversions(std::vector<Finding>* findings) {
    for (const auto& [key, edge] : edges_) {
      const LockDecl* from = program_.FindLock(edge.from);
      const LockDecl* to = program_.FindLock(edge.to);
      if (from == nullptr || to == nullptr) continue;
      if (from->rank < 0 || to->rank < 0) continue;
      if (from->rank < to->rank) continue;
      Finding f;
      f.analysis = "lock-order";
      f.rule = "rank-inversion";
      f.file = edge.file;
      f.line = edge.line;
      f.symbol = edge.from + "->" + edge.to;
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "'%s' (rank %d) acquired while holding '%s' (rank %d) in "
                    "%s; acquisition order must follow strictly increasing "
                    "ranks",
                    edge.to.c_str(), to->rank, edge.from.c_str(), from->rank,
                    edge.via.c_str());
      f.message = buf;
      findings->push_back(std::move(f));
    }
  }

  void ReportCycles(std::vector<Finding>* findings) {
    // Tarjan SCC over the acquisition graph; an SCC of >1 lock, or a
    // self-edge, is a potential deadlock cycle.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, edge] : edges_) {
      adj[edge.from].push_back(edge.to);
      adj[edge.to];  // ensure node exists
    }
    std::map<std::string, int> index, low;
    std::map<std::string, bool> on_stack;
    std::vector<std::string> stack;
    std::vector<std::vector<std::string>> sccs;
    int counter = 0;
    // Iterative Tarjan to stay safe on deep graphs.
    struct Frame {
      std::string node;
      size_t next = 0;
    };
    for (const auto& [start, unused] : adj) {
      if (index.count(start) != 0) continue;
      std::vector<Frame> frames{{start, 0}};
      index[start] = low[start] = counter++;
      stack.push_back(start);
      on_stack[start] = true;
      while (!frames.empty()) {
        Frame& fr = frames.back();
        const std::vector<std::string>& succs = adj[fr.node];
        if (fr.next < succs.size()) {
          const std::string& next = succs[fr.next++];
          if (index.count(next) == 0) {
            index[next] = low[next] = counter++;
            stack.push_back(next);
            on_stack[next] = true;
            frames.push_back(Frame{next, 0});
          } else if (on_stack[next]) {
            low[fr.node] = std::min(low[fr.node], index[next]);
          }
          continue;
        }
        if (low[fr.node] == index[fr.node]) {
          std::vector<std::string> scc;
          while (true) {
            std::string top = stack.back();
            stack.pop_back();
            on_stack[top] = false;
            scc.push_back(top);
            if (top == fr.node) break;
          }
          sccs.push_back(std::move(scc));
        }
        std::string done = fr.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[done]);
        }
      }
    }
    for (std::vector<std::string>& scc : sccs) {
      bool self_loop =
          scc.size() == 1 && edges_.count({scc[0], scc[0]}) != 0;
      if (scc.size() < 2 && !self_loop) continue;
      std::sort(scc.begin(), scc.end());
      std::string joined;
      for (const std::string& id : scc) {
        joined += joined.empty() ? id : "<->" + id;
      }
      // Anchor the finding at the lexicographically first in-cycle edge.
      const LockEdge* site = nullptr;
      for (const auto& [key, edge] : edges_) {
        if (std::find(scc.begin(), scc.end(), edge.from) == scc.end()) continue;
        if (std::find(scc.begin(), scc.end(), edge.to) == scc.end()) continue;
        if (site == nullptr) site = &edge;
      }
      Finding f;
      f.analysis = "lock-order";
      f.rule = "lock-cycle";
      f.file = site != nullptr ? site->file : "<unknown>";
      f.line = site != nullptr ? site->line : 0;
      f.symbol = joined;
      f.message =
          "acquisition-order cycle between locks {" + joined +
          "}: two threads taking them in opposite orders can deadlock";
      findings->push_back(std::move(f));
    }
  }

  const Program& program_;
  const Analyzer& az_;
  std::vector<FnLockFacts> facts_;
  std::map<size_t, std::vector<std::string>> required_;
  std::vector<std::set<std::string>> summaries_;
  std::map<std::pair<std::string, std::string>, LockEdge> edges_;
};

// ---------------------------------------------------------------------------
// Analysis 2: Status dataflow.

class StatusFlowAnalysis {
 public:
  explicit StatusFlowAnalysis(const Program& program) : program_(program) {}

  void Run(std::vector<Finding>* findings) {
    for (const FunctionInfo& fn : program_.functions) {
      AnalyzeFunction(fn, findings);
    }
  }

 private:
  enum class Mark { kNone, kLive, kConsumed };

  struct VarState {
    Mark mark = Mark::kNone;
    std::set<int> origins;  ///< CFG node ids whose assignment is unchecked

    bool Join(const VarState& other) {
      // Optimistic join: a path that consumed the value clears the alarm.
      VarState merged;
      if (mark == Mark::kConsumed || other.mark == Mark::kConsumed) {
        merged.mark = Mark::kConsumed;
      } else if (mark == Mark::kLive || other.mark == Mark::kLive) {
        merged.mark = Mark::kLive;
        merged.origins = origins;
        merged.origins.insert(other.origins.begin(), other.origins.end());
      } else {
        merged.mark = Mark::kNone;
      }
      bool changed = merged.mark != mark || merged.origins != origins;
      *this = merged;
      return changed;
    }
  };

  /// Declared Status locals: stmt-initial `Status name` / `mmm::Status name`
  /// (also after `const`). Returns name -> decl line.
  static void FindDecl(const Stmt& s, std::map<std::string, int>* decls) {
    const std::vector<Token>& toks = s.tokens;
    size_t i = 0;
    if (IsIdent(At(toks, i), "const")) ++i;
    if (IsIdent(At(toks, i), "mmm") && IsPunct(At(toks, i + 1), "::")) i += 2;
    if (!IsIdent(At(toks, i), "Status")) return;
    if (!IsAnyIdent(At(toks, i + 1))) return;
    (*decls)[toks[i + 1].text] = s.line;
  }

  static bool Mentions(const std::vector<Token>& toks, const std::string& var,
                       size_t from = 0) {
    for (size_t i = from; i < toks.size(); ++i) {
      if (!IsIdent(&toks[i], var)) continue;
      if (i > 0 &&
          (IsPunct(&toks[i - 1], ".") || IsPunct(&toks[i - 1], "->"))) {
        continue;  // member of something else that happens to share the name
      }
      return true;
    }
    return false;
  }

  /// True when the RHS tokens are a benign OK construction.
  static bool IsOkConstruction(const std::vector<Token>& toks, size_t from) {
    for (size_t i = from; i < toks.size(); ++i) {
      if (IsPunct(&toks[i], ";")) break;
      if (IsIdent(&toks[i], "OK") || IsIdent(&toks[i], "OkStatus")) {
        return true;
      }
      if (toks[i].kind == TokenKind::kIdent && toks[i].text != "Status" &&
          toks[i].text != "mmm") {
        return false;
      }
    }
    return false;
  }

  void AnalyzeFunction(const FunctionInfo& fn, std::vector<Finding>* findings) {
    Cfg cfg = BuildCfg(fn.body);
    if (cfg.entry < 0) return;

    // Collect candidate variables from declaration statements.
    std::map<std::string, int> decls;
    for (int n = 0; n < static_cast<int>(cfg.nodes.size()); ++n) {
      const Stmt* s = cfg.nodes[n].stmt;
      if (s != nullptr && s->kind == Stmt::Kind::kPlain) FindDecl(*s, &decls);
    }
    std::string path = EffectivePath(fn.file);
    for (const auto& [var, decl_line] : decls) {
      AnalyzeVar(fn, path, cfg, var, findings);
    }
  }

  /// Transfer function for one node; may emit an overwrite finding.
  VarState Transfer(const FunctionInfo& fn, const std::string& path,
                    const Cfg& cfg, int node, const std::string& var,
                    VarState in, std::set<std::string>* reported,
                    std::vector<Finding>* findings) {
    const Stmt* s = cfg.nodes[node].stmt;
    if (s == nullptr) {  // synthetic exit: falling off the end drops `var`
      if (in.mark == Mark::kLive) {
        for (int origin : in.origins) {
          const Stmt* os = cfg.nodes[origin].stmt;
          ReportDrop(fn, path, os != nullptr ? os->line : fn.line, var,
                     "falls out of scope", reported, findings);
        }
      }
      return in;
    }
    const std::vector<Token>& toks = s->tokens;

    // Declaration statement for this var?
    bool is_decl = false;
    {
      std::map<std::string, int> d;
      if (s->kind == Stmt::Kind::kPlain) FindDecl(*s, &d);
      is_decl = d.count(var) != 0;
    }
    if (is_decl) {
      // `Status v = <init>;` — live iff initialized with a non-OK call.
      size_t eq = 0;
      for (size_t i = 0; i < toks.size(); ++i) {
        if (IsPunct(&toks[i], "=")) {
          eq = i;
          break;
        }
      }
      VarState out;
      if (eq == 0) {
        out.mark = Mark::kConsumed;  // default-constructed OK status
      } else if (IsOkConstruction(toks, eq + 1)) {
        out.mark = Mark::kConsumed;
      } else {
        out.mark = Mark::kLive;
        out.origins = {node};
      }
      return out;
    }

    // Head assignment `v = <rhs>;`?
    if (s->kind == Stmt::Kind::kPlain && toks.size() >= 2 &&
        IsIdent(&toks[0], var) && IsPunct(&toks[1], "=")) {
      bool rhs_reads_v = Mentions(toks, var, 2);
      if (!rhs_reads_v && in.mark == Mark::kLive) {
        for (int origin : in.origins) {
          if (origin == node) continue;  // loop re-assignment of itself
          const Stmt* os = cfg.nodes[origin].stmt;
          std::string key = var + "@" + std::to_string(s->line) + "<-" +
                            std::to_string(os != nullptr ? os->line : 0);
          if (!reported->insert("ow:" + key).second) continue;
          Finding f;
          f.analysis = "status-flow";
          f.rule = "status-overwrite";
          f.file = path;
          f.line = s->line;
          f.symbol = fn.qualified + "::" + var;
          f.message = "'" + var + "' still holds the unchecked Status from " +
                      "line " +
                      std::to_string(os != nullptr ? os->line : 0) +
                      " when it is overwritten here in " + fn.qualified +
                      "; check or propagate it first";
          findings->push_back(std::move(f));
        }
      }
      VarState out;
      if (IsOkConstruction(toks, 2)) {
        out.mark = Mark::kConsumed;
      } else {
        out.mark = Mark::kLive;
        out.origins = {node};
      }
      return out;
    }

    // Return statement: mentioning v propagates it; otherwise a live v is
    // dropped on this early-return path.
    if (s->kind == Stmt::Kind::kReturn) {
      if (Mentions(toks, var)) {
        VarState out;
        out.mark = Mark::kConsumed;
        return out;
      }
      if (in.mark == Mark::kLive) {
        ReportDrop(fn, path, s->line, var,
                   "is dropped by this return", reported, findings);
        VarState out;
        out.mark = Mark::kConsumed;  // report each return once
        return out;
      }
      return in;
    }

    // Any other mention consumes (reads, passes, .ok() checks, macro use).
    if (Mentions(toks, var)) {
      VarState out;
      out.mark = Mark::kConsumed;
      return out;
    }
    return in;
  }

  void ReportDrop(const FunctionInfo& fn, const std::string& path, int line,
                  const std::string& var, const std::string& how,
                  std::set<std::string>* reported,
                  std::vector<Finding>* findings) {
    std::string key = "dr:" + var + "@" + std::to_string(line) + ":" + how;
    if (!reported->insert(key).second) return;
    Finding f;
    f.analysis = "status-flow";
    f.rule = "status-drop";
    f.file = path;
    f.line = line;
    f.symbol = fn.qualified + "::" + var;
    f.message = "Status '" + var + "' in " + fn.qualified +
                " is assigned but never checked before it " + how +
                "; propagate it or check .ok()";
    findings->push_back(std::move(f));
  }

  void AnalyzeVar(const FunctionInfo& fn, const std::string& path,
                  const Cfg& cfg, const std::string& var,
                  std::vector<Finding>* findings) {
    size_t n = cfg.nodes.size();
    std::vector<VarState> in_state(n), out_state(n);
    std::set<std::string> reported;
    std::vector<Finding> staged;

    // Two rounds: one to reach the fixpoint silently, then one reporting
    // pass over the stable states (so loop back-edges cannot double-report
    // with partial states).
    for (int round = 0; round < 2; ++round) {
      std::vector<Finding>* sink = round == 0 ? nullptr : &staged;
      bool changed = true;
      int iterations = 0;
      while (changed && iterations++ < 64) {
        changed = false;
        for (int node = 0; node < static_cast<int>(n); ++node) {
          VarState in;
          bool has_pred = false;
          for (int p = 0; p < static_cast<int>(n); ++p) {
            for (int succ : cfg.nodes[p].succs) {
              if (succ != node) continue;
              if (!has_pred) {
                in = out_state[p];
                has_pred = true;
              } else {
                in.Join(out_state[p]);
              }
            }
          }
          if (node == cfg.entry && !has_pred) in = VarState{};
          in_state[node] = in;
          std::vector<Finding> scratch;
          VarState out =
              Transfer(fn, path, cfg, node, var, in, &reported,
                       sink != nullptr ? sink : &scratch);
          if (out.mark != out_state[node].mark ||
              out.origins != out_state[node].origins) {
            out_state[node] = out;
            changed = true;
          }
        }
        if (sink != nullptr) break;  // reporting pass: single sweep
      }
      if (round == 0) reported.clear();
    }
    findings->insert(findings->end(), staged.begin(), staged.end());
  }

  const Program& program_;
};

// ---------------------------------------------------------------------------
// Analysis 3: journal-protocol conformance.

class JournalPathAnalysis {
 public:
  JournalPathAnalysis(const Program& program, const Analyzer& az)
      : program_(program), az_(az) {}

  void Run(std::vector<Finding>* findings) {
    size_t n = program_.functions.size();
    std::vector<std::vector<Token>> flat(n);
    for (size_t i = 0; i < n; ++i) {
      Flatten(program_.functions[i].body, &flat[i]);
    }

    // Round 1: direct primitives. A function whose file is part of the
    // storage/CAS machinery is sanctioned — deletions there ARE the
    // journal/sweep implementation.
    std::vector<bool> raw(n, false);
    std::vector<Finding> site(n);
    for (size_t i = 0; i < n; ++i) {
      const FunctionInfo& fn = program_.functions[i];
      if (Sanctioned(fn)) continue;
      bool intent = false;
      for (size_t t = 0; t < flat[i].size(); ++t) {
        const Token& tok = flat[i][t];
        if (IsAnyIdent(&tok) && kIntentIdents.count(tok.text) != 0) {
          intent = true;
        }
        if (intent) break;
        if (IsDeletePrimitive(flat[i], t)) {
          raw[i] = true;
          site[i] = MakeFinding(fn, tok.line,
                                "calls blob/file deletion ('" + tok.text +
                                    "') with no preceding journaled intent");
          break;
        }
      }
    }

    // Fixpoint: calling a raw deleter without preceding intent makes the
    // caller raw too (the violation floats up to the outermost entry).
    std::vector<std::vector<std::pair<size_t, int>>> callsites(n);
    for (size_t i = 0; i < n; ++i) {
      const FunctionInfo& fn = program_.functions[i];
      for (size_t t = 0; t + 1 < flat[i].size(); ++t) {
        if (!IsAnyIdent(&flat[i][t]) || !IsPunct(&flat[i][t + 1], "(")) {
          continue;
        }
        if (IsCallKeyword(flat[i][t].text)) continue;
        size_t chain_begin = ChainStart(flat[i], t);
        for (size_t callee : az_.ResolveCallee(fn, flat[i], chain_begin, t)) {
          if (callee != i) {
            callsites[i].push_back({callee, static_cast<int>(t)});
          }
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < n; ++i) {
        if (raw[i]) continue;
        const FunctionInfo& fn = program_.functions[i];
        if (Sanctioned(fn)) continue;
        for (const auto& [callee, tok_idx] : callsites[i]) {
          if (!raw[callee]) continue;
          bool intent = false;
          for (int t = 0; t < tok_idx; ++t) {
            if (IsAnyIdent(&flat[i][t]) &&
                kIntentIdents.count(flat[i][t].text) != 0) {
              intent = true;
              break;
            }
          }
          if (intent) continue;
          raw[i] = true;
          site[i] = MakeFinding(
              fn, flat[i][tok_idx].line,
              "reaches blob/file deletion via '" +
                  program_.functions[callee].qualified +
                  "' with no preceding journaled intent on this path");
          changed = true;
          break;
        }
      }
    }

    // Report the raw functions nothing calls: the outermost unjournaled
    // entry points. Raw functions that only discharged callers reach are
    // covered at those call sites.
    std::vector<bool> has_caller(n, false);
    for (size_t i = 0; i < n; ++i) {
      for (const auto& [callee, tok_idx] : callsites[i]) {
        has_caller[callee] = true;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (raw[i] && !has_caller[i]) findings->push_back(site[i]);
    }
  }

 private:
  inline static const std::set<std::string> kIntentIdents = {
      "Begin",              // CommitJournal::Begin — journaled write intent
      "OnManifestDeleted",  // CAS refcount decrement before blob removal
      "FindOrphanBlobs",    // sweep candidates derived from the journal
      "PendingBlobs",       // journal-replay pending set
  };

  static bool Sanctioned(const FunctionInfo& fn) {
    std::string path = EffectivePath(fn.file);
    return path.rfind("src/storage/", 0) == 0 ||
           path.rfind("src/cas/", 0) == 0;
  }

  static bool IsDeletePrimitive(const std::vector<Token>& toks, size_t i) {
    if (!IsAnyIdent(&toks[i]) || !IsPunct(At(toks, i + 1), "(")) return false;
    if (toks[i].text == "DeleteFile") return true;
    if (toks[i].text != "Delete") return false;
    return i > 0 &&
           (IsPunct(&toks[i - 1], ".") || IsPunct(&toks[i - 1], "->"));
  }

  static void Flatten(const std::vector<Stmt>& stmts,
                      std::vector<Token>* out) {
    for (const Stmt& s : stmts) {
      out->insert(out->end(), s.tokens.begin(), s.tokens.end());
      Flatten(s.body, out);
      Flatten(s.else_body, out);
    }
  }

  Finding MakeFinding(const FunctionInfo& fn, int line,
                      const std::string& what) const {
    Finding f;
    f.analysis = "journal-path";
    f.rule = "unjournaled-delete";
    f.file = EffectivePath(fn.file);
    f.line = line;
    f.symbol = fn.qualified;
    f.message = fn.qualified + " " + what +
                "; destructive blob operations must be dominated by a "
                "journal Begin/OnManifestDeleted/orphan-sweep intent "
                "(DESIGN.md §6.5)";
    return f;
  }

  const Program& program_;
  const Analyzer& az_;
};

// ---------------------------------------------------------------------------
// Analysis 4: layer DAG.

class LayerDagAnalysis {
 public:
  void Run(const std::vector<LexedFile>& files,
           std::vector<Finding>* findings) {
    static const std::map<std::string, std::set<std::string>> kAllowed = {
        {"common", {}},
        {"serialize", {"common"}},
        {"tensor", {"common", "serialize"}},
        {"storage", {"common", "serialize"}},
        {"nn", {"common", "serialize", "tensor"}},
        {"data", {"common", "serialize", "tensor"}},
        {"cas", {"common", "serialize", "storage"}},
        {"battery", {"common", "data"}},
        {"prov", {"common", "serialize", "data", "nn"}},
        {"core",
         {"common", "serialize", "tensor", "storage", "cas", "nn", "data",
          "prov"}},
        {"serve", {"common", "serialize", "tensor", "storage", "core"}},
        {"workload", {"common", "core", "data", "nn", "prov", "battery"}},
        {"cluster", {"common", "serialize", "storage", "core", "serve"}},
        {"fleet",
         {"common", "serialize", "storage", "cas", "core", "serve", "cluster",
          "nn", "prov", "battery"}},
    };

    for (const LexedFile& file : files) {
      std::string path = EffectivePath(file.path);
      if (path.rfind("src/", 0) != 0) continue;  // tools/tests/bench: free
      std::string layer = path.substr(4, path.find('/', 4) - 4);
      auto allowed_it = kAllowed.find(layer);
      if (allowed_it == kAllowed.end()) continue;
      const std::set<std::string>& allowed = allowed_it->second;

      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!IsPunct(&toks[i], "#") || !IsIdent(&toks[i + 1], "include") ||
            toks[i + 2].kind != TokenKind::kString) {
          continue;
        }
        const std::string& inc = toks[i + 2].text;
        size_t slash = inc.find('/');
        if (slash == std::string::npos) continue;  // same-dir include
        std::string target = inc.substr(0, slash);
        if (kAllowed.count(target) == 0) continue;  // not a src layer
        if (target == layer || allowed.count(target) != 0) continue;
        Finding f;
        f.analysis = "layer-dag";
        f.rule = "layer-violation";
        f.file = path;
        f.line = toks[i + 2].line;
        f.symbol = layer + "->" + target;
        f.message = "layer '" + layer + "' must not include '" + inc +
                    "' from layer '" + target +
                    "': the enforced dependency DAG (ARCHITECTURE.md) "
                    "points strictly downward";
        findings->push_back(std::move(f));
      }
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Public interface.

const std::vector<std::string>& AnalysisNames() {
  static const std::vector<std::string> kNames = {
      "lock-order", "status-flow", "journal-path", "layer-dag"};
  return kNames;
}

std::string EffectivePath(const std::string& path) {
  static const std::vector<std::string> kMarkers = {"src/", "tools/", "tests/",
                                                    "bench/"};
  size_t best = std::string::npos;
  for (const std::string& marker : kMarkers) {
    size_t pos = path.rfind(marker);
    while (pos != std::string::npos) {
      bool boundary = pos == 0 || path[pos - 1] == '/';
      if (boundary && (best == std::string::npos || pos > best)) best = pos;
      if (pos == 0) break;
      pos = path.rfind(marker, pos - 1);
    }
  }
  return best == std::string::npos ? path : path.substr(best);
}

std::vector<Finding> AnalyzePaths(const std::vector<std::string>& paths,
                                  const SaOptions& options,
                                  std::vector<std::string>* io_errors) {
  std::vector<std::string> sources = CollectSources(paths, io_errors);
  std::vector<LexedFile> files;
  files.reserve(sources.size());
  for (const std::string& path : sources) {
    std::string contents;
    if (!ReadFile(path, &contents)) {
      if (io_errors != nullptr) io_errors->push_back(path);
      continue;
    }
    files.push_back(mmmlint::Lex(path, contents));
  }

  auto enabled = [&](const std::string& name) {
    return options.only_analyses.empty() ||
           options.only_analyses.count(name) != 0;
  };

  std::vector<Finding> findings;
  Program program;
  if (enabled("lock-order") || enabled("status-flow") ||
      enabled("journal-path")) {
    program = ParseProgram(files);
  }
  Analyzer az(program);
  if (enabled("lock-order")) {
    LockOrderAnalysis(program, az).Run(&findings);
  }
  if (enabled("status-flow")) {
    StatusFlowAnalysis(program).Run(&findings);
  }
  if (enabled("journal-path")) {
    JournalPathAnalysis(program, az).Run(&findings);
  }
  if (enabled("layer-dag")) {
    LayerDagAnalysis().Run(files, &findings);
  }

  Suppressions suppressions(files);
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return suppressions.Covers(f);
                                }),
                 findings.end());
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());
  return findings;
}

std::string DescribeLockGraph(const std::vector<std::string>& paths) {
  std::vector<std::string> sources = CollectSources(paths, nullptr);
  std::vector<LexedFile> files;
  for (const std::string& path : sources) {
    std::string contents;
    if (ReadFile(path, &contents)) files.push_back(mmmlint::Lex(path, contents));
  }
  Program program = ParseProgram(files);
  Analyzer az(program);
  std::vector<Finding> scratch;
  LockOrderAnalysis analysis(program, az);
  analysis.Run(&scratch);
  std::ostringstream out;
  out << "# locks (rank, id, declaration)\n";
  std::vector<const LockDecl*> locks;
  for (const LockDecl& l : program.locks) locks.push_back(&l);
  std::sort(locks.begin(), locks.end(),
            [](const LockDecl* a, const LockDecl* b) {
              if (a->rank != b->rank) return a->rank < b->rank;
              return a->id < b->id;
            });
  for (const LockDecl* l : locks) {
    out << "  " << (l->rank < 0 ? std::string("   ?")
                                : std::to_string(l->rank))
        << "  " << l->id << "  (" << EffectivePath(l->file) << ":" << l->line
        << (l->shared ? ", shared" : "") << ")\n";
  }
  out << "# acquisition edges (outer -> inner, first site)\n";
  for (const auto& [key, edge] : analysis.edges()) {
    out << "  " << edge.from << " -> " << edge.to << "  (" << edge.file << ":"
        << edge.line << " in " << edge.via << ")\n";
  }
  return out.str();
}

bool ApplyBaseline(const std::string& baseline_path,
                   std::vector<Finding>* findings, std::string* error) {
  std::string contents;
  if (!ReadFile(baseline_path, &contents)) {
    if (error != nullptr) {
      *error = "cannot read baseline file '" + baseline_path + "'";
    }
    return false;
  }
  std::set<std::string> keys;
  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  findings->erase(
      std::remove_if(findings->begin(), findings->end(),
                     [&](const Finding& f) {
                       return keys.count(f.rule + "|" + f.file + "|" +
                                         f.symbol) != 0;
                     }),
      findings->end());
  return true;
}

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) {
    keys.insert(f.rule + "|" + f.file + "|" + f.symbol);
  }
  std::ostringstream out;
  out << "# mmmsa ratchet baseline: rule|file|symbol per line.\n"
      << "# Findings listed here are known debt and do not fail the build;\n"
      << "# remove lines as they are fixed. Never add lines for new code.\n";
  for (const std::string& key : keys) out << key << "\n";
  return out.str();
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.analysis << "/" << f.rule
        << "] " << f.message << "\n";
  }
  if (findings.empty()) {
    out << "mmmsa: clean\n";
  } else {
    out << "mmmsa: " << findings.size() << " finding"
        << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return out.str();
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string FormatSarif(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"mmmsa\",\n"
      << "          \"informationUri\": \"DESIGN.md\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const std::string& rule : rules) {
    out << (first ? "" : ",") << "\n            {\"id\": \""
        << JsonEscape(rule) << "\"}";
    first = false;
  }
  out << (rules.empty() ? "" : "\n          ") << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out << (first ? "" : ",") << "\n        {\n"
        << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(f.message)
        << "\"},\n"
        << "          \"partialFingerprints\": {\"mmmsaSymbol\": \""
        << JsonEscape(f.symbol) << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"},\n"
        << "                \"region\": {\"startLine\": " << f.line << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
    first = false;
  }
  out << (findings.empty() ? "" : "\n      ") << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace mmmsa
