# Empty dependencies file for tab_provenance_training.
# This may be replaced when dependencies are built.
