#include <gtest/gtest.h>

#include "prov/environment.h"
#include "prov/pipeline.h"
#include "prov/replay.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::RandomTensor;

TEST(EnvironmentTest, CaptureFillsFields) {
  EnvironmentInfo info = EnvironmentInfo::Capture();
  EXPECT_FALSE(info.os_name.empty());
  EXPECT_GT(info.cpu_cores, 0);
  EXPECT_FALSE(info.packages.empty());
  EXPECT_FALSE(info.library_version.empty());
}

TEST(EnvironmentTest, JsonRoundTrip) {
  EnvironmentInfo info = EnvironmentInfo::Capture();
  ASSERT_OK_AND_ASSIGN(EnvironmentInfo decoded,
                       EnvironmentInfo::FromJson(info.ToJson()));
  EXPECT_EQ(decoded, info);
}

TEST(EnvironmentTest, JsonRoundTripThroughText) {
  EnvironmentInfo info = EnvironmentInfo::Capture();
  ASSERT_OK_AND_ASSIGN(JsonValue parsed, JsonValue::Parse(info.ToJson().Dump()));
  ASSERT_OK_AND_ASSIGN(EnvironmentInfo decoded, EnvironmentInfo::FromJson(parsed));
  EXPECT_EQ(decoded, info);
}

TEST(EnvironmentTest, SerializedSizeIsRealistic) {
  // MMlib-base persists this per model; it must be a nontrivial artifact
  // (the paper measures ~KBs of per-model overhead).
  EnvironmentInfo info = EnvironmentInfo::Capture();
  EXPECT_GT(info.ToJson().Dump().size(), 500u);
}

TEST(PipelineTest, CreateFillsHashAndValidates) {
  TrainConfig config;
  TrainPipelineSpec spec =
      TrainPipelineSpec::Create(config, CanonicalPipelineCode(config));
  EXPECT_OK(spec.Validate());
  EXPECT_EQ(spec.code_hash.size(), 64u);
}

TEST(PipelineTest, ValidateDetectsTampering) {
  TrainConfig config;
  TrainPipelineSpec spec = TrainPipelineSpec::Create(config, "code v1");
  spec.pipeline_code = "code v2";
  EXPECT_TRUE(spec.Validate().IsCorruption());
}

TEST(PipelineTest, JsonRoundTrip) {
  TrainConfig config;
  config.shuffle_seed = 0xdeadbeefcafef00dULL;
  config.trainable_layers = {"fc4"};
  TrainPipelineSpec spec =
      TrainPipelineSpec::Create(config, CanonicalPipelineCode(config));
  ASSERT_OK_AND_ASSIGN(TrainPipelineSpec decoded,
                       TrainPipelineSpec::FromJson(spec.ToJson()));
  EXPECT_EQ(decoded, spec);
  EXPECT_OK(decoded.Validate());
}

TEST(PipelineTest, CanonicalCodeReflectsConfig) {
  TrainConfig config;
  config.optimizer = "adam";
  config.loss = "cross_entropy";
  config.epochs = 7;
  std::string code = CanonicalPipelineCode(config);
  EXPECT_NE(code.find("Adam"), std::string::npos);
  EXPECT_NE(code.find("CrossEntropyLoss"), std::string::npos);
  EXPECT_NE(code.find("range(7)"), std::string::npos);
}

// A resolver serving one in-memory dataset.
class FakeResolver : public DatasetResolver {
 public:
  explicit FakeResolver(TrainingData data) : data_(std::move(data)) {}

  Result<TrainingData> Resolve(const DatasetRef& ref) override {
    if (ref.uri != "fake://data") return Status::NotFound("no such uri: ", ref.uri);
    if (!ref.content_hash.empty() &&
        ref.content_hash != HashTrainingData(data_)) {
      return Status::Corruption("hash mismatch");
    }
    return data_;
  }

 private:
  TrainingData data_;
};

TrainingData SmallRegression() {
  return {RandomTensor(Shape{32, 4}, 1), RandomTensor(Shape{32, 1}, 2)};
}

TEST(ReplayTest, ReplayReproducesTrainingBitExactly) {
  TrainingData data = SmallRegression();
  FakeResolver resolver(data);
  ReplayEngine engine(&resolver);

  TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.learning_rate = 0.05f;
  config.shuffle_seed = 0xffffffff00000001ULL;
  TrainPipelineSpec pipeline =
      TrainPipelineSpec::Create(config, CanonicalPipelineCode(config));

  ASSERT_OK_AND_ASSIGN(Model original, Model::CreateInitialized(Ffnn48Spec(), 3));
  ASSERT_OK_AND_ASSIGN(Model replayed, original.Clone());

  ASSERT_OK(TrainModel(&original, data.inputs, data.targets, config).status());
  DatasetRef ref{"fake://data", HashTrainingData(data)};
  ASSERT_OK(engine.ReplayUpdate(&replayed, pipeline, ref));

  StateDict a = original.GetStateDict(), b = replayed.GetStateDict();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].second.Equals(b[i].second)) << a[i].first;
  }
}

TEST(ReplayTest, MaxSamplesCapsTraining) {
  TrainingData data = SmallRegression();
  FakeResolver resolver(data);
  ReplayEngine engine(&resolver);
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  TrainPipelineSpec pipeline =
      TrainPipelineSpec::Create(config, CanonicalPipelineCode(config));

  ASSERT_OK_AND_ASSIGN(Model full, Model::CreateInitialized(Ffnn48Spec(), 5));
  ASSERT_OK_AND_ASSIGN(Model capped, full.Clone());
  DatasetRef ref{"fake://data", ""};
  ASSERT_OK(engine.ReplayUpdate(&full, pipeline, ref, /*max_samples=*/0));
  ASSERT_OK(engine.ReplayUpdate(&capped, pipeline, ref, /*max_samples=*/8));
  // A reduced-data replay is an approximation: parameters differ.
  EXPECT_FALSE(
      full.GetStateDict()[0].second.Equals(capped.GetStateDict()[0].second));
}

TEST(ReplayTest, HashMismatchIsCorruption) {
  FakeResolver resolver(SmallRegression());
  ReplayEngine engine(&resolver);
  TrainConfig config;
  TrainPipelineSpec pipeline =
      TrainPipelineSpec::Create(config, CanonicalPipelineCode(config));
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 6));
  DatasetRef ref{"fake://data", std::string(64, '0')};
  EXPECT_TRUE(engine.ReplayUpdate(&model, pipeline, ref).IsCorruption());
}

TEST(ReplayTest, InvalidPipelineIsRejected) {
  FakeResolver resolver(SmallRegression());
  ReplayEngine engine(&resolver);
  TrainConfig config;
  TrainPipelineSpec pipeline = TrainPipelineSpec::Create(config, "code");
  pipeline.pipeline_code = "tampered";
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 7));
  EXPECT_TRUE(
      engine.ReplayUpdate(&model, pipeline, DatasetRef{"fake://data", ""})
          .IsCorruption());
}

TEST(ReplayTest, MissingResolverIsInvalidArgument) {
  ReplayEngine engine(nullptr);
  TrainConfig config;
  TrainPipelineSpec pipeline =
      TrainPipelineSpec::Create(config, CanonicalPipelineCode(config));
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 8));
  EXPECT_TRUE(
      engine.ReplayUpdate(&model, pipeline, DatasetRef{"fake://data", ""})
          .IsInvalidArgument());
}

}  // namespace
}  // namespace mmm
