#ifndef MMM_STORAGE_EXECUTOR_H_
#define MMM_STORAGE_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace mmm {

/// \brief Fixed-size worker pool with deterministic work assignment.
///
/// The storage pipeline's parallelism substrate: StoreBatch fans blob writes
/// and encode/hash/compress work out over the pool's lanes, and the latency
/// model charges `max` across lanes instead of the serial sum.
///
/// Lane 0 always runs on the calling thread; only `lanes - 1` background
/// threads exist. An Executor with one lane therefore executes everything
/// inline, in index order, with no synchronization at all — bit-identical
/// to the pre-pipeline serial code.
///
/// Work item `i` of a ParallelFor runs on lane `i % lanes`, and each lane
/// processes its items in increasing index order. The work-to-lane
/// assignment is thus deterministic and independent of thread scheduling:
/// results written to per-index slots come out identical for any lane
/// count, which is what makes recovered blobs reproducible.
///
/// Dispatch is not reentrant: work items must not call ParallelFor on the
/// same Executor, and only one thread may dispatch at a time. Items on
/// different lanes run concurrently, so they must not touch shared state
/// without their own synchronization (per-index output slots are safe).
class Executor {
 public:
  /// \param lanes number of parallel lanes (>= 1; 0 is clamped to 1).
  explicit Executor(size_t lanes = 1);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t lanes() const { return lanes_; }

  /// Runs `fn(0) ... fn(count - 1)` across the lanes and returns when every
  /// call has finished. Item `i` runs on lane `i % lanes()`.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(size_t lane);
  void RunLane(size_t lane, size_t count,
               const std::function<void(size_t)>& fn);

  size_t lanes_;
  std::vector<std::thread> workers_;

  Mutex mu_ MMM_LOCK_RANK(130);
  CondVar work_cv_;
  CondVar done_cv_;
  /// Current dispatch (null between dispatches).
  const std::function<void(size_t)>* fn_ MMM_GUARDED_BY(mu_) = nullptr;
  size_t count_ MMM_GUARDED_BY(mu_) = 0;
  /// Bumped per dispatch to wake the workers.
  uint64_t generation_ MMM_GUARDED_BY(mu_) = 0;
  size_t lanes_done_ MMM_GUARDED_BY(mu_) = 0;
  bool shutdown_ MMM_GUARDED_BY(mu_) = false;
};

}  // namespace mmm

#endif  // MMM_STORAGE_EXECUTOR_H_
