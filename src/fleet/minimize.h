#ifndef MMM_FLEET_MINIMIZE_H_
#define MMM_FLEET_MINIMIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/simulator.h"

namespace mmm {

/// \brief Knobs of the failing-trace minimizer.
struct FleetMinimizeOptions {
  /// Replay budget: the minimizer stops (keeping its best-so-far trace)
  /// after this many RunOps calls.
  size_t max_runs = 2000;
};

/// \brief Outcome of minimizing one failing trace.
struct FleetMinimizeResult {
  /// Shortest failing subsequence found, in original plan order.
  std::vector<FleetOp> ops;
  /// Index of each minimized op in the input sequence (parallel to `ops`).
  std::vector<size_t> steps;
  /// The report of the minimized trace's (failing) replay.
  FleetRunReport report;
  /// RunOps calls spent.
  size_t runs = 0;
  /// True when ddmin converged to 1-minimality (removing any single op makes
  /// the failure disappear); false when max_runs cut the search short.
  bool minimal = false;
};

/// \brief Shrinks a failing op sequence to a short failing subsequence.
///
/// Classic delta debugging (ddmin) over *subsequences* of the input: the
/// trace is split into chunks, and each chunk / chunk-complement is replayed
/// from a fresh world; any candidate that still fails becomes the new trace.
/// Ordinal addressing makes every subsequence executable — ops referencing a
/// save that was dropped are skipped deterministically — so no repair step
/// is needed between reductions.
///
/// "Failing" means the replay completes with report.ok() == false. A replay
/// whose RunOps returns a hard error (world failed to open) counts as not
/// failing, keeping the search conservative. Determinism of the simulator
/// makes the result reproducible: minimizing the same trace twice yields the
/// same subsequence after the same number of runs.
///
/// `ops` must already fail when replayed on `simulator` (callers typically
/// pass the plan's full op list after a failing Run). Returns InvalidArgument
/// when it does not.
Result<FleetMinimizeResult> MinimizeFailingTrace(
    FleetSimulator* simulator, const std::vector<FleetOp>& ops,
    const FleetMinimizeOptions& options = {});

/// Renders a minimized failure as a self-contained JSON repro artifact:
/// plan seed + generation knobs, world options, the oracle's verdict, and
/// the canonical rendering of every op in the minimized sequence (with its
/// index in the original plan, so the subsequence can be reconstructed).
std::string RenderRepro(const FleetPlan& plan, const FleetSimOptions& options,
                        const FleetMinimizeResult& minimized);

}  // namespace mmm

#endif  // MMM_FLEET_MINIMIZE_H_
