#ifndef MMM_CORE_APPROACH_H_
#define MMM_CORE_APPROACH_H_

#include <string>

#include "cas/cas_store.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/result.h"
#include "core/model_set.h"
#include "serialize/compress.h"
#include "storage/document_store.h"
#include "storage/file_store.h"
#include "storage/store_batch.h"

namespace mmm {

/// \brief Shared storage backends handed to every approach.
///
/// One file store (parameter/architecture blobs), one document store
/// (metadata), one id generator, the simulated clock the stores charge
/// their latency to, and the write-pipeline executor every save path fans
/// its store ops out over.
struct StoreContext {
  FileStore* file_store = nullptr;
  DocumentStore* doc_store = nullptr;
  IdGenerator* ids = nullptr;
  SimulatedClock* sim_clock = nullptr;
  /// Applied to the large binary artifacts (parameter/diff/hash blobs) —
  /// the paper's §4.5 future work. Reads auto-detect, so stores written
  /// with any setting stay readable.
  Compression blob_compression = Compression::kNone;
  /// Worker pool for batched saves; nullptr means serial (one lane).
  Executor* executor = nullptr;
  /// Lane count / dispatch cost of the write pipeline (see store_batch.h).
  StorePipelineOptions pipeline;
  /// Commit journal making every batch atomic across both stores; nullptr
  /// commits without crash protection (see storage/journal.h).
  CommitJournal* journal = nullptr;
  /// Content-addressed chunk store; nullptr (the default) stores every
  /// payload verbatim — the seed behavior and cost model, bit-exactly.
  /// When set, batches chunk+dedup eligible blob writes and reads
  /// reassemble through cas/blob_io.h (see cas/cas_store.h).
  CasStore* cas = nullptr;
  /// Streaming recovery (DESIGN.md §12): recovery reads pull blobs
  /// window-by-window through FileStore::OpenStream and the incremental
  /// decoders instead of materializing the stored bytes first. Bit-exact
  /// with the materializing path, and the modeled store cost is identical
  /// by construction (OpenStream charges exactly what Get charges); what
  /// changes is peak memory (≈ one window + one layer instead of the whole
  /// snapshot) and wall-clock (decode overlaps nothing extra, but the
  /// intermediate copies disappear).
  bool streaming_recovery = false;
  /// Stream window size for streaming recovery; 0 means
  /// kDefaultStreamWindowBytes.
  uint64_t stream_window_bytes = 0;

  Status Validate() const {
    if (file_store == nullptr || doc_store == nullptr || ids == nullptr) {
      return Status::InvalidArgument("store context is incomplete");
    }
    return Status::OK();
  }
};

/// Opens an op-batch over the context's stores and pipeline configuration.
/// Approaches stage every write of one save into such a batch and commit it
/// once — no save path talks to FileStore/DocumentStore write methods
/// directly.
inline StoreBatch MakeBatch(const StoreContext& context) {
  return StoreBatch(context.file_store, context.doc_store, context.executor,
                    context.pipeline, context.journal, context.cas);
}

/// \brief Outcome of saving one model set.
struct SaveResult {
  /// Identifier to later recover the set with.
  std::string set_id;
  /// Bytes persisted for this set across both stores — the paper's "storage
  /// consumption" metric (excludes referenced datasets and base sets).
  uint64_t bytes_written = 0;
  /// Store round-trips performed (opportunity O3's cost driver).
  uint64_t file_store_writes = 0;
  uint64_t doc_store_writes = 0;
  /// Modeled store latency charged during the save, in nanoseconds.
  uint64_t simulated_store_nanos = 0;
  /// Hops from the saved set to its nearest full snapshot, as recorded in
  /// the set document: 0 for full snapshots, base depth + 1 for deltas and
  /// provenance records. The adaptive policy reads this instead of guessing.
  uint64_t chain_depth = 0;
};

/// \brief Statistics of recovering one model set.
struct RecoverStats {
  /// Sets materialized, including recursively recovered bases.
  uint64_t sets_recovered = 0;
  /// Models retrained during provenance replay.
  uint64_t models_retrained = 0;
  uint64_t simulated_store_nanos = 0;
};

/// \brief Interface of a multi-model management approach (paper §3).
///
/// Implementations: MMlibBaseApproach (the reference point), BaselineApproach
/// (§3.2), UpdateApproach (§3.3), ProvenanceApproach (§3.4).
class ModelSetApproach {
 public:
  virtual ~ModelSetApproach() = default;

  /// Canonical approach name ("mmlib-base", "baseline", "update",
  /// "provenance"); recorded in the set document so recovery can dispatch.
  virtual std::string Name() const = 0;

  /// Saves an initial model set (use case U1).
  virtual Result<SaveResult> SaveInitial(const ModelSet& set) = 0;

  /// Saves a set derived from a previously saved set (use case U3).
  /// Full-snapshot approaches may ignore `update`.
  virtual Result<SaveResult> SaveDerived(const ModelSet& set,
                                         const ModelSetUpdateInfo& update) = 0;

  /// Recovers a previously saved set by id. `stats` is optional.
  virtual Result<ModelSet> Recover(const std::string& set_id,
                                   RecoverStats* stats) = 0;

  Result<ModelSet> Recover(const std::string& set_id) {
    return Recover(set_id, nullptr);
  }

  /// Recovers only the models at `indices` (any order, duplicates allowed);
  /// the result is parallel to `indices`. This is the paper's deployment
  /// read path — "we ... only recover a selected number of models, for
  /// example, after an accident" (§1) — and implementations avoid
  /// materializing the full set where their format permits (ranged reads of
  /// the parameter blob, per-model diff filtering, subset replay).
  virtual Result<std::vector<StateDict>> RecoverModels(
      const std::string& set_id, const std::vector<size_t>& indices,
      RecoverStats* stats) = 0;

  Result<std::vector<StateDict>> RecoverModels(
      const std::string& set_id, const std::vector<size_t>& indices) {
    return RecoverModels(set_id, indices, nullptr);
  }
};

/// Name of the document-store collection holding one document per saved set.
inline constexpr char kSetCollection[] = "model_sets";

}  // namespace mmm

#endif  // MMM_CORE_APPROACH_H_
