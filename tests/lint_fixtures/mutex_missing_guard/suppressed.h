// Fixture: either an MMM_GUARDED_BY annotation or a justified suppression
// satisfies the rule.
#pragma once

class Mutex;

#define MMM_GUARDED_BY(x)

class Annotated {
 private:
  Mutex mu_;
  int count_ MMM_GUARDED_BY(mu_) = 0;
};

class Suppressed {
 private:
  Mutex mu_;  // MMMLINT(mutex-missing-guard): serializes calls into a C library
};
