#ifndef MMM_SERIALIZE_BINARY_IO_H_
#define MMM_SERIALIZE_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mmm {

/// \brief Append-only little-endian binary encoder.
///
/// The writer produces the on-disk format used by all model-management
/// approaches: fixed-width primitives are written little-endian, lengths are
/// LEB128 varints, and float spans are written as raw IEEE-754 bytes (this is
/// what makes Baseline's "concatenate all parameters into one blob" cheap).
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteUint8(uint8_t value) { buffer_.push_back(value); }
  void WriteUint16(uint16_t value) { WriteLittleEndian(value); }
  void WriteUint32(uint32_t value) { WriteLittleEndian(value); }
  void WriteUint64(uint64_t value) { WriteLittleEndian(value); }
  void WriteInt32(int32_t value) { WriteLittleEndian(static_cast<uint32_t>(value)); }
  void WriteInt64(int64_t value) { WriteLittleEndian(static_cast<uint64_t>(value)); }

  void WriteFloat(float value) {
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    WriteUint32(bits);
  }
  void WriteDouble(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    WriteUint64(bits);
  }

  /// Unsigned LEB128.
  void WriteVarint(uint64_t value);

  /// Varint length followed by raw bytes.
  void WriteString(std::string_view value);

  /// Raw bytes, no length prefix.
  void WriteBytes(std::span<const uint8_t> bytes);

  /// Raw IEEE-754 bytes of `values`, no length prefix. Assumes a
  /// little-endian host (checked once at startup in the library).
  void WriteFloatSpan(std::span<const float> values);

  /// Varint count followed by raw float bytes.
  void WriteFloatVector(std::span<const float> values);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void WriteLittleEndian(T value) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  std::vector<uint8_t> buffer_;
};

/// \brief Bounds-checked reader for BinaryWriter output.
///
/// All accessors return Result so that corrupted or truncated artifacts
/// surface as Status::Corruption instead of undefined behaviour.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadUint8();
  Result<uint16_t> ReadUint16();
  Result<uint32_t> ReadUint32();
  Result<uint64_t> ReadUint64();
  Result<int32_t> ReadInt32();
  Result<int64_t> ReadInt64();
  Result<float> ReadFloat();
  Result<double> ReadDouble();
  Result<uint64_t> ReadVarint();
  Result<std::string> ReadString();

  /// Reads `count` raw floats.
  Status ReadFloatSpan(size_t count, float* out);

  /// Reads a varint count followed by that many floats.
  Result<std::vector<float>> ReadFloatVector();

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - offset_; }
  size_t offset() const { return offset_; }
  bool AtEnd() const { return offset_ == data_.size(); }

  /// Skips `count` bytes.
  Status Skip(size_t count);

 private:
  template <typename T>
  Result<T> ReadLittleEndian() {
    if (remaining() < sizeof(T)) {
      return Status::Corruption("binary reader: truncated input at offset ",
                                offset_);
    }
    T value = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<T>(data_[offset_ + i]) << (8 * i);
    }
    offset_ += sizeof(T);
    return value;
  }

  std::span<const uint8_t> data_;
  size_t offset_ = 0;
};

}  // namespace mmm

#endif  // MMM_SERIALIZE_BINARY_IO_H_
