# Empty compiler generated dependencies file for fig4_tts.
# This may be replaced when dependencies are built.
