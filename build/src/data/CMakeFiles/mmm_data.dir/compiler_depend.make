# Empty compiler generated dependencies file for mmm_data.
# This may be replaced when dependencies are built.
