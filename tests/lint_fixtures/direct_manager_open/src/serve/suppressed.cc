// Fixture: a justified suppression lints clean.
struct ModelSetManager {
  struct Options;
  static int Open(const Options& options);
};

int ServeFrom(const ModelSetManager::Options& options) {
  // MMMLINT(direct-manager-open): fixture models a sanctioned standalone tool
  return ModelSetManager::Open(options);
}
