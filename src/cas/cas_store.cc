#include "cas/cas_store.h"

#include <algorithm>
#include <set>

#include "serialize/crc32.h"
#include "serialize/json.h"
#include "serialize/sha256.h"

namespace mmm {

namespace {

std::string HexOfChunkBlob(const std::string& blob_name) {
  return blob_name.substr(sizeof(kCasChunkPrefix) - 1);
}

}  // namespace

/// \brief Per-commit write session (see storage/cas_iface.h for the
/// protocol). Collects refcount deltas and applies them atomically under
/// the store's lock once the commit is durable.
class CasBatchSession : public CasWriteSession {
 public:
  explicit CasBatchSession(CasStore* store) : store_(store) {}
  ~CasBatchSession() override {
    if (!closed_) Aborted();
  }

  Status TransformWrite(const std::string& name, std::vector<uint8_t>* data,
                        std::vector<ChunkWrite>* new_chunks) override {
    if (IsChunkBlobName(name)) {
      return Status::Internal("cas session asked to transform chunk blob '",
                              name, "'");
    }
    const CasOptions& options = store_->options_;
    // Small payloads stay verbatim — unless they happen to start with the
    // manifest magic, which a raw payload must never do (the read path
    // would misparse it), so those are chunked regardless of size.
    if (data->size() < options.min_blob_bytes && !IsManifestPayload(*data)) {
      MutexLock lock(store_->mu_);
      RecordRetireLocked(name);
      return Status::OK();
    }

    CasManifest manifest;
    manifest.raw_size = data->size();
    manifest.raw_crc = Crc32::Compute(*data);
    const std::vector<ChunkSpan> spans = ChunkBlob(*data, options);

    MutexLock lock(store_->mu_);
    // Overwriting a previously chunked blob retires the old version's refs.
    RecordRetireLocked(name);
    for (const ChunkSpan& span : spans) {
      std::span<const uint8_t> bytes(data->data() + span.offset, span.length);
      const std::string hex = Sha256::Hash(bytes).ToHex();
      manifest.chunks.push_back({hex, span.length});
      increments_[hex] += 1;
      chunk_bytes_[hex] = span.length;
      PinLocked(hex);
      const bool in_store = store_->chunks_.count(hex) != 0;
      if (!in_store && staged_.insert(hex).second) {
        new_chunks->push_back(
            {ChunkBlobName(hex),
             std::vector<uint8_t>(bytes.begin(), bytes.end())});
      }
    }
    written_manifests_[name] =
        CasStore::ManifestState{manifest.raw_size, manifest.chunks};
    *data = EncodeManifest(manifest);
    return Status::OK();
  }

  Status TrackDelete(const std::string& name) override {
    MutexLock lock(store_->mu_);
    RecordRetireLocked(name);
    return Status::OK();
  }

  Status Applied() override {
    closed_ = true;
    MutexLock lock(store_->mu_);
    // Retired manifests first: a chunk both retired and re-referenced nets
    // out under the same lock, so it never becomes sweepable in between.
    for (const std::string& name : retired_) {
      auto it = store_->manifests_.find(name);
      if (it == store_->manifests_.end()) continue;
      for (const CasChunkRef& ref : it->second.chunks) {
        auto chunk = store_->chunks_.find(ref.hash_hex);
        if (chunk != store_->chunks_.end() && chunk->second.refs > 0) {
          --chunk->second.refs;
        }
      }
      store_->manifests_.erase(it);
    }
    for (const auto& [hex, count] : increments_) {
      CasStore::ChunkState& state = store_->chunks_[hex];
      state.refs += count;
      state.bytes = chunk_bytes_[hex];
    }
    for (auto& [name, state] : written_manifests_) {
      store_->manifests_[name] = std::move(state);
    }
    UnpinAllLocked();
    // Decrement-then-sweep: chunks the retirements zeroed go now, unless an
    // overlapping session still pins them.
    for (auto it = store_->chunks_.begin(); it != store_->chunks_.end();) {
      if (it->second.refs == 0 && store_->pins_.count(it->first) == 0) {
        MMM_RETURN_NOT_OK(store_->store_->Delete(ChunkBlobName(it->first)));
        it = store_->chunks_.erase(it);
      } else {
        ++it;
      }
    }
    return store_->PersistIndexLocked();
  }

  void Aborted() override {
    closed_ = true;
    MutexLock lock(store_->mu_);
    UnpinAllLocked();
    increments_.clear();
    written_manifests_.clear();
    retired_.clear();
  }

 private:
  void RecordRetireLocked(const std::string& name)
      MMM_REQUIRES(store_->mu_) {
    if (store_->manifests_.count(name) != 0) retired_.insert(name);
  }
  void PinLocked(const std::string& hex) MMM_REQUIRES(store_->mu_) {
    if (pinned_.insert(hex).second) ++store_->pins_[hex];
  }
  void UnpinAllLocked() MMM_REQUIRES(store_->mu_) {
    for (const std::string& hex : pinned_) {
      auto it = store_->pins_.find(hex);
      if (it == store_->pins_.end()) continue;
      if (--it->second == 0) store_->pins_.erase(it);
    }
    pinned_.clear();
  }

  CasStore* store_;
  bool closed_ = false;
  /// chunk hex -> reference count this commit adds.
  std::map<std::string, uint64_t> increments_;
  std::map<std::string, uint64_t> chunk_bytes_;
  /// Chunks whose blob writes this session already handed to the batch.
  std::set<std::string> staged_;
  /// Chunks this session pinned against concurrent sweeps.
  std::set<std::string> pinned_;
  /// Manifest names this commit overwrites or deletes.
  std::set<std::string> retired_;
  std::map<std::string, CasStore::ManifestState> written_manifests_;
};

Result<std::unique_ptr<CasStore>> CasStore::Open(Env* env, FileStore* store,
                                                 std::string index_path,
                                                 CasOptions options) {
  MMM_RETURN_NOT_OK(options.Validate());
  auto cas = std::unique_ptr<CasStore>(
      new CasStore(env, store, std::move(index_path), options));
  MMM_ASSIGN_OR_RETURN(Rebuilt scan, cas->ScanStore());
  MutexLock lock(cas->mu_);
  cas->chunks_ = std::move(scan.chunks);
  cas->manifests_ = std::move(scan.manifests);
  // Reclaim chunk blobs no live manifest references — leftovers of
  // rolled-back commits (rollback never deletes `cas` intents; see
  // storage/journal.h) or of a crash between a decrement and its sweep.
  // Skipped when the scan saw undecodable manifests: their references are
  // unknown, so deleting anything could orphan a recoverable blob; fsck
  // reports the corruption instead.
  if (scan.problems.empty()) {
    for (const auto& [blob_name, size] : scan.chunk_blobs) {
      (void)size;
      if (cas->chunks_.count(HexOfChunkBlob(blob_name)) == 0) {
        MMM_RETURN_NOT_OK(
            env->DeleteFile(store->root() + "/" + blob_name));
      }
    }
  }
  MMM_RETURN_NOT_OK(cas->PersistIndexLocked());
  return cas;
}

Result<CasStore::Rebuilt> CasStore::ScanStore() const {
  Rebuilt out;
  MMM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       env_->ListDir(store_->root()));
  for (const std::string& name : names) {
    const std::string path = store_->root() + "/" + name;
    if (IsChunkBlobName(name)) {
      MMM_ASSIGN_OR_RETURN(uint64_t size, env_->FileSize(path));
      out.chunk_blobs[name] = size;
      continue;
    }
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, env_->ReadFile(path));
    if (!IsManifestPayload(data)) continue;
    auto manifest = DecodeManifest(data);
    if (!manifest.ok()) {
      out.problems.push_back("manifest '" + name +
                             "': " + manifest.status().ToString());
      continue;
    }
    ManifestState state;
    state.raw_size = manifest.ValueOrDie().raw_size;
    state.chunks = std::move(manifest.ValueOrDie().chunks);
    for (const CasChunkRef& ref : state.chunks) {
      ChunkState& chunk = out.chunks[ref.hash_hex];
      chunk.refs += 1;
      chunk.bytes = ref.length;
    }
    out.manifests[name] = std::move(state);
  }
  return out;
}

bool CasStore::IsManifest(const std::string& name) const {
  MutexLock lock(mu_);
  return manifests_.count(name) != 0;
}

std::optional<std::vector<CasChunkRef>> CasStore::ManifestChunks(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = manifests_.find(name);
  if (it == manifests_.end()) return std::nullopt;
  return it->second.chunks;
}

uint64_t CasStore::RefCount(const std::string& hash_hex) const {
  MutexLock lock(mu_);
  auto it = chunks_.find(hash_hex);
  return it == chunks_.end() ? 0 : it->second.refs;
}

std::map<std::string, uint64_t> CasStore::ChunkRefsSnapshot() const {
  MutexLock lock(mu_);
  std::map<std::string, uint64_t> refs;
  for (const auto& [hex, state] : chunks_) refs[hex] = state.refs;
  return refs;
}

std::vector<std::string> CasStore::ManifestNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(manifests_.size());
  for (const auto& [name, state] : manifests_) names.push_back(name);
  return names;
}

Result<CasStore::Stats> CasStore::ComputeStats() const {
  Stats stats;
  {
    MutexLock lock(mu_);
    stats.unique_chunks = chunks_.size();
    for (const auto& [hex, state] : chunks_) {
      stats.chunk_bytes += state.bytes;
      stats.total_refs += state.refs;
      ++stats.refcount_histogram[state.refs];
    }
    stats.manifests = manifests_.size();
    for (const auto& [name, state] : manifests_) {
      stats.manifest_raw_bytes += state.raw_size;
    }
  }
  MMM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       env_->ListDir(store_->root()));
  MutexLock lock(mu_);
  for (const std::string& name : names) {
    if (IsChunkBlobName(name) &&
        chunks_.count(HexOfChunkBlob(name)) == 0) {
      ++stats.orphan_chunks;
    }
  }
  return stats;
}

void CasStore::OnManifestDeleted(const std::string& name) {
  MutexLock lock(mu_);
  auto it = manifests_.find(name);
  if (it == manifests_.end()) return;
  for (const CasChunkRef& ref : it->second.chunks) {
    auto chunk = chunks_.find(ref.hash_hex);
    if (chunk != chunks_.end() && chunk->second.refs > 0) {
      --chunk->second.refs;
    }
  }
  manifests_.erase(it);
}

Result<CasStore::SweepReport> CasStore::SweepZeroRefChunks() {
  MutexLock lock(mu_);
  SweepReport report;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->second.refs == 0 && pins_.count(it->first) == 0) {
      MMM_RETURN_NOT_OK(store_->Delete(ChunkBlobName(it->first)));
      ++report.chunks_swept;
      report.bytes_swept += it->second.bytes;
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
  MMM_RETURN_NOT_OK(PersistIndexLocked());
  return report;
}

Result<CasStore::SweepReport> CasStore::SweepUntrackedChunks() {
  MMM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       env_->ListDir(store_->root()));
  MutexLock lock(mu_);
  SweepReport report;
  for (const std::string& name : names) {
    if (!IsChunkBlobName(name)) continue;
    const std::string hex = HexOfChunkBlob(name);
    if (chunks_.count(hex) != 0 || pins_.count(hex) != 0) continue;
    MMM_ASSIGN_OR_RETURN(uint64_t size,
                         env_->FileSize(store_->root() + "/" + name));
    MMM_RETURN_NOT_OK(store_->Delete(name));
    ++report.chunks_swept;
    report.bytes_swept += size;
  }
  return report;
}

Status CasStore::Audit(std::vector<std::string>* problems) const {
  MMM_ASSIGN_OR_RETURN(Rebuilt scan, ScanStore());
  for (const std::string& problem : scan.problems) {
    problems->push_back(problem);
  }
  // Every referenced chunk must exist with the manifest's recorded size.
  for (const auto& [name, manifest] : scan.manifests) {
    for (const CasChunkRef& ref : manifest.chunks) {
      auto blob = scan.chunk_blobs.find(ChunkBlobName(ref.hash_hex));
      if (blob == scan.chunk_blobs.end()) {
        problems->push_back("manifest '" + name +
                            "' references missing chunk " + ref.hash_hex);
      } else if (blob->second != ref.length) {
        problems->push_back("manifest '" + name + "' chunk " + ref.hash_hex +
                            " has size " + std::to_string(blob->second) +
                            ", manifest records " +
                            std::to_string(ref.length));
      }
    }
  }
  // Chunk contents must hash to their names; unreferenced chunks are
  // orphans (a sweep must not have left any behind).
  for (const auto& [blob_name, size] : scan.chunk_blobs) {
    (void)size;
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                         env_->ReadFile(store_->root() + "/" + blob_name));
    const std::string hex = Sha256::Hash(std::span<const uint8_t>(data)).ToHex();
    if (ChunkBlobName(hex) != blob_name) {
      problems->push_back("chunk '" + blob_name +
                          "' content hashes to " + hex);
    }
    if (scan.chunks.count(HexOfChunkBlob(blob_name)) == 0) {
      problems->push_back("orphan chunk '" + blob_name +
                          "' (no live manifest references it)");
    }
  }
  // The in-memory index must match the store exactly; a zero-refcount
  // entry still in memory means a sweep was skipped.
  {
    MutexLock lock(mu_);
    for (const auto& [hex, state] : chunks_) {
      auto rebuilt = scan.chunks.find(hex);
      if (state.refs == 0) {
        if (pins_.count(hex) == 0) {
          problems->push_back("index holds zero-refcount chunk " + hex +
                              " that no sweep reclaimed");
        }
      } else if (rebuilt == scan.chunks.end()) {
        problems->push_back("index chunk " + hex + " (refs " +
                            std::to_string(state.refs) +
                            ") has no referencing manifest in the store");
      } else if (rebuilt->second.refs != state.refs) {
        problems->push_back("index chunk " + hex + " refcount " +
                            std::to_string(state.refs) +
                            " != recomputed " +
                            std::to_string(rebuilt->second.refs));
      }
    }
    for (const auto& [hex, state] : scan.chunks) {
      if (chunks_.count(hex) == 0) {
        problems->push_back("store chunk " + hex + " (refs " +
                            std::to_string(state.refs) +
                            ") is missing from the index");
      }
    }
    for (const auto& [name, manifest] : scan.manifests) {
      (void)manifest;
      if (manifests_.count(name) == 0) {
        problems->push_back("store manifest '" + name +
                            "' is missing from the index");
      }
    }
    for (const auto& [name, manifest] : manifests_) {
      (void)manifest;
      if (scan.manifests.count(name) == 0) {
        problems->push_back("index manifest '" + name +
                            "' does not exist in the store");
      }
    }
  }
  // The persisted checkpoint must agree with the recomputed refcounts.
  MMM_ASSIGN_OR_RETURN(bool checkpoint_exists, env_->FileExists(index_path_));
  if (!checkpoint_exists) {
    problems->push_back("cas index checkpoint '" + index_path_ +
                        "' is missing");
    return Status::OK();
  }
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, env_->ReadFile(index_path_));
  auto parsed = JsonValue::Parse(std::string_view(
      reinterpret_cast<const char*>(raw.data()), raw.size()));
  if (!parsed.ok()) {
    problems->push_back("cas index checkpoint unparseable: " +
                        parsed.status().ToString());
    return Status::OK();
  }
  const JsonValue record = std::move(parsed).ValueOrDie();
  std::map<std::string, uint64_t> recorded;
  MMM_ASSIGN_OR_RETURN(const JsonValue* chunk_array, record.Get("chunks"));
  for (const JsonValue& entry : chunk_array->array_items()) {
    MMM_ASSIGN_OR_RETURN(const JsonValue* hex, entry.At(0));
    MMM_ASSIGN_OR_RETURN(const JsonValue* refs, entry.At(1));
    MMM_ASSIGN_OR_RETURN(std::string hex_value, hex->AsString());
    MMM_ASSIGN_OR_RETURN(int64_t ref_count, refs->AsInt64());
    recorded[hex_value] = static_cast<uint64_t>(ref_count);
  }
  for (const auto& [hex, state] : scan.chunks) {
    auto it = recorded.find(hex);
    if (it == recorded.end()) {
      problems->push_back("checkpoint is missing chunk " + hex);
    } else if (it->second != state.refs) {
      problems->push_back("checkpoint chunk " + hex + " refcount " +
                          std::to_string(it->second) + " != recomputed " +
                          std::to_string(state.refs));
    }
  }
  for (const auto& [hex, refs] : recorded) {
    if (refs > 0 && scan.chunks.count(hex) == 0) {
      problems->push_back("checkpoint chunk " + hex +
                          " no longer exists in the store");
    }
  }
  return Status::OK();
}

std::unique_ptr<CasWriteSession> CasStore::BeginSession() {
  return std::make_unique<CasBatchSession>(this);
}

Status CasStore::PersistIndexLocked() {
  JsonValue record = JsonValue::Object();
  record.Set("version", 1);
  JsonValue chunk_array = JsonValue::Array();
  for (const auto& [hex, state] : chunks_) {
    JsonValue entry = JsonValue::Array();
    entry.Append(hex);
    entry.Append(state.refs);
    entry.Append(state.bytes);
    chunk_array.Append(std::move(entry));
  }
  record.Set("chunks", std::move(chunk_array));
  JsonValue manifest_array = JsonValue::Array();
  for (const auto& [name, state] : manifests_) {
    JsonValue entry = JsonValue::Array();
    entry.Append(name);
    entry.Append(state.raw_size);
    JsonValue chunks = JsonValue::Array();
    for (const CasChunkRef& ref : state.chunks) {
      JsonValue chunk = JsonValue::Array();
      chunk.Append(ref.hash_hex);
      chunk.Append(ref.length);
      chunks.Append(std::move(chunk));
    }
    entry.Append(std::move(chunks));
    manifest_array.Append(std::move(entry));
  }
  record.Set("manifests", std::move(manifest_array));
  const std::string text = record.Dump();
  return env_->WriteFile(
      index_path_,
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(text.data()),
                               text.size()));
}

}  // namespace mmm
