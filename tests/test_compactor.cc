// Chain-compactor coverage: bit-exactness of every approach across the
// rebase, the depth bound itself (checked against the ground-truth
// InspectChain walk, not the rewritten metadata), the policy gates, GC
// coordination, and the chain_depth-derived recovery budget's behavior on a
// store whose base pointers were corrupted into a cycle.

#include "core/compactor.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/gc.h"
#include "core/inspect.h"
#include "core/manager.h"
#include "core/set_codec.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

class CompactorTest : public ::testing::TestWithParam<size_t> {
 protected:
  CompactorTest() : temp_("compactor") {
    ScenarioConfig config = ScenarioConfig::Battery(6);
    config.full_update_fraction = 0.5;
    config.partial_update_fraction = 0.25;
    config.samples_per_dataset = 32;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    scenario_->Init().Check();
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    options.pipeline.lanes = GetParam();
    manager_ = ModelSetManager::Open(options).ValueOrDie();
  }

  /// Saves an initial set plus `cycles` derived sets, returning every id and
  /// recording the scenario state each save captured (for bit-exactness).
  std::vector<std::string> BuildChain(ApproachType type, int cycles) {
    std::vector<std::string> ids;
    std::string id =
        manager_->SaveInitial(type, scenario_->current_set()).ValueOrDie().set_id;
    states_[id] = scenario_->current_set();
    ids.push_back(id);
    for (int i = 0; i < cycles; ++i) {
      ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
      update.base_set_id = ids.back();
      id = manager_->SaveDerived(type, scenario_->current_set(), update)
               .ValueOrDie()
               .set_id;
      states_[id] = scenario_->current_set();
      ids.push_back(id);
    }
    return ids;
  }

  void ExpectBitExact(const std::string& id) {
    ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager_->Recover(id));
    const ModelSet& expected = states_.at(id);
    ASSERT_EQ(recovered.models.size(), expected.models.size()) << id;
    for (size_t m = 0; m < recovered.models.size(); ++m) {
      ASSERT_EQ(recovered.models[m].size(), expected.models[m].size()) << id;
      for (size_t p = 0; p < recovered.models[m].size(); ++p) {
        ASSERT_TRUE(recovered.models[m][p].second.Equals(
            expected.models[m][p].second))
            << id << " model " << m << " param "
            << recovered.models[m][p].first;
      }
    }
  }

  /// Every chain within `max_depth`, recorded depths truthful, store valid,
  /// no orphan blobs — the full post-compaction contract.
  void ExpectCompactedStore(uint64_t max_depth) {
    ASSERT_OK_AND_ASSIGN(std::vector<SetSummary> sets,
                         manager_->ListSets());
    for (const SetSummary& s : sets) {
      ASSERT_OK_AND_ASSIGN(ChainInspection chain,
                           InspectChain(manager_->context(), s.id));
      EXPECT_LE(chain.depth, max_depth) << s.id;
      EXPECT_TRUE(chain.depth_matches())
          << s.id << ": walked " << chain.depth << ", recorded "
          << chain.recorded_depth;
    }
    ASSERT_OK_AND_ASSIGN(StoreValidationReport health,
                         ValidateStore(manager_->context()));
    EXPECT_TRUE(health.ok())
        << (health.problems.empty() ? "" : health.problems.front());
    ASSERT_OK_AND_ASSIGN(OrphanReport orphans,
                         FindOrphanBlobs(manager_->context()));
    EXPECT_TRUE(orphans.clean())
        << (orphans.clean() ? "" : orphans.orphan_blobs.front());
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
  std::map<std::string, ModelSet> states_;
};

TEST_P(CompactorTest, UpdateChainIsReboundAndBitExact) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 7);
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  ASSERT_OK_AND_ASSIGN(CompactionReport report,
                       manager_->CompactChains(policy));
  // Depths 0..7 with a bound of 2 rebase at depths 3 and 6.
  EXPECT_EQ(report.sets_rebased, 2u);
  EXPECT_EQ(report.rebased_set_ids.size(), 2u);
  EXPECT_EQ(report.rebased_set_ids[0], ids[3]);
  EXPECT_EQ(report.rebased_set_ids[1], ids[6]);
  // Each rebase rewrites itself plus the descendants down to the next one.
  EXPECT_EQ(report.docs_rewritten, 3u + 2u);
  EXPECT_GT(report.bytes_written, 0u);
  EXPECT_GT(report.bytes_reclaimed, 0u);
  EXPECT_TRUE(report.skipped.empty());
  ExpectCompactedStore(2);
  for (const std::string& id : ids) ExpectBitExact(id);
  // The rebase points are now full snapshots under their original ids.
  ASSERT_OK_AND_ASSIGN(SetDocument rebased,
                       FetchSetDocument(manager_->context(), ids[3]));
  EXPECT_EQ(rebased.kind, "full");
  EXPECT_EQ(rebased.chain_depth, 0u);
  EXPECT_TRUE(rebased.diff_blob.empty());
  EXPECT_EQ(rebased.base_set_id, ids[2]);  // lineage preserved
}

TEST_P(CompactorTest, ProvenanceChainIsReboundAndBitExact) {
  std::vector<std::string> ids = BuildChain(ApproachType::kProvenance, 5);
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  ASSERT_OK_AND_ASSIGN(CompactionReport report,
                       manager_->CompactChains(policy));
  EXPECT_EQ(report.sets_rebased, 1u);
  EXPECT_EQ(report.rebased_set_ids[0], ids[3]);
  ExpectCompactedStore(2);
  for (const std::string& id : ids) ExpectBitExact(id);
  ASSERT_OK_AND_ASSIGN(SetDocument rebased,
                       FetchSetDocument(manager_->context(), ids[3]));
  EXPECT_EQ(rebased.kind, "full");
  EXPECT_TRUE(rebased.prov_blob.empty());
}

TEST_P(CompactorTest, FullSnapshotApproachesAreNoOps) {
  BuildChain(ApproachType::kBaseline, 2);
  BuildChain(ApproachType::kMMlibBase, 1);
  CompactionPolicy policy;
  policy.max_chain_depth = 1;
  ASSERT_OK_AND_ASSIGN(CompactionReport report,
                       manager_->CompactChains(policy));
  // Every baseline/MMlib set is its own full snapshot — nothing to rebase,
  // but each one roots a (trivial) chain.
  EXPECT_EQ(report.sets_rebased, 0u);
  EXPECT_EQ(report.docs_rewritten, 0u);
  EXPECT_EQ(report.chains_scanned, 5u);
  ExpectCompactedStore(0);
  for (const auto& [id, unused] : states_) ExpectBitExact(id);
}

TEST_P(CompactorTest, CompactionIsIdempotent) {
  BuildChain(ApproachType::kUpdate, 6);
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  ASSERT_OK(manager_->CompactChains(policy).status());
  ASSERT_OK_AND_ASSIGN(CompactionReport second,
                       manager_->CompactChains(policy));
  EXPECT_EQ(second.sets_rebased, 0u);
  EXPECT_EQ(second.docs_rewritten, 0u);
  EXPECT_EQ(second.bytes_written, 0u);
}

TEST_P(CompactorTest, DryRunPlansWithoutWriting) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 5);
  ASSERT_OK_AND_ASSIGN(std::vector<SetSummary> before, manager_->ListSets());
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  policy.dry_run = true;
  ASSERT_OK_AND_ASSIGN(CompactionReport report,
                       manager_->CompactChains(policy));
  EXPECT_EQ(report.sets_rebased, 1u);
  EXPECT_EQ(report.rebased_set_ids[0], ids[3]);
  EXPECT_EQ(report.docs_rewritten, 3u);
  EXPECT_EQ(report.bytes_written, 0u);
  EXPECT_GT(report.bytes_reclaimed, 0u);  // planned, not executed
  // The store is untouched: same kinds, same depths, same artifact bytes.
  ASSERT_OK_AND_ASSIGN(std::vector<SetSummary> after, manager_->ListSets());
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].kind, before[i].kind);
    EXPECT_EQ(after[i].chain_depth, before[i].chain_depth);
    EXPECT_EQ(after[i].artifact_bytes, before[i].artifact_bytes);
  }
}

TEST_P(CompactorTest, ByteGateSkipsUnprofitableRebases) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 4);
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  policy.min_bytes_reclaimed = 1ull << 40;  // nothing reclaims a terabyte
  ASSERT_OK_AND_ASSIGN(CompactionReport report,
                       manager_->CompactChains(policy));
  EXPECT_EQ(report.sets_rebased, 0u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_NE(report.skipped[0].find(ids[3]), std::string::npos);
  // Skipping leaves the chain long but the store fully consistent.
  ExpectCompactedStore(4);
  for (const std::string& id : ids) ExpectBitExact(id);
}

TEST_P(CompactorTest, SupersededDeltaBlobIsRetired) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 3);
  ASSERT_OK_AND_ASSIGN(SetDocument before,
                       FetchSetDocument(manager_->context(), ids[3]));
  ASSERT_FALSE(before.diff_blob.empty());
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  ASSERT_OK(manager_->CompactChains(policy).status());
  // The rebase's old diff blob is gone from the file store — handed to the
  // journal's post-commit deletes, not left for a GC sweep.
  EXPECT_FALSE(
      manager_->file_store()->Exists(before.diff_blob).ValueOr(true));
  ASSERT_OK_AND_ASSIGN(OrphanReport orphans,
                       FindOrphanBlobs(manager_->context()));
  EXPECT_TRUE(orphans.clean());
}

TEST_P(CompactorTest, GcComposesWithCompaction) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 6);
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  ASSERT_OK(manager_->CompactChains(policy).status());
  // The compacted store obeys the usual GC rules: a rebased set is a real
  // full snapshot, so everything above it can be retired while it survives.
  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       RetainOnly(manager_->context(), {ids[3]}));
  EXPECT_GT(report.sets_deleted, 0u);
  ExpectBitExact(ids[3]);
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health,
                       ValidateStore(manager_->context()));
  EXPECT_TRUE(health.ok());
  ASSERT_OK_AND_ASSIGN(OrphanReport orphans,
                       FindOrphanBlobs(manager_->context()));
  EXPECT_TRUE(orphans.clean());
}

TEST_P(CompactorTest, AutoCompactionBoundsChainsAsTheyGrow) {
  // Reopen with the opportunistic policy armed and grow a chain well past
  // the bound: no chain may ever exceed it, and every version stays
  // bit-exact.
  manager_.reset();
  ModelSetManager::Options options;
  options.root_dir = temp_.path() + "/store";
  options.resolver = scenario_.get();
  options.pipeline.lanes = GetParam();
  CompactionPolicy policy;
  policy.max_chain_depth = 2;
  options.auto_compaction = policy;
  manager_ = ModelSetManager::Open(options).ValueOrDie();

  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 8);
  ExpectCompactedStore(2);
  for (const std::string& id : ids) ExpectBitExact(id);
}

TEST_P(CompactorTest, CompactionSurvivesReopen) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 5);
  CompactionPolicy policy;
  policy.max_chain_depth = 1;
  ASSERT_OK(manager_->CompactChains(policy).status());
  manager_.reset();
  ModelSetManager::Options options;
  options.root_dir = temp_.path() + "/store";
  options.resolver = scenario_.get();
  options.pipeline.lanes = GetParam();
  manager_ = ModelSetManager::Open(options).ValueOrDie();
  EXPECT_TRUE(manager_->repair_report().clean());
  ExpectCompactedStore(1);
  for (const std::string& id : ids) ExpectBitExact(id);
}

INSTANTIATE_TEST_SUITE_P(Lanes, CompactorTest, ::testing::Values(1, 4),
                         [](const auto& info) {
                           return "lanes" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// The chain_depth-derived recovery budget (the fixed bug: the budget used to
// be sized by the *whole set collection*, so a corrupted base-pointer cycle
// could walk every set of every approach before failing).

class CorruptChainTest : public ::testing::Test {
 protected:
  CorruptChainTest() : temp_("corrupt-chain") {
    ScenarioConfig config = ScenarioConfig::Battery(4);
    config.samples_per_dataset = 32;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    scenario_->Init().Check();
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    manager_ = ModelSetManager::Open(options).ValueOrDie();
  }

  /// Redirects `set_id`'s base pointer to `new_base` behind the manager's
  /// back (simulated metadata corruption).
  void CorruptBasePointer(const std::string& set_id,
                          const std::string& new_base) {
    ASSERT_OK_AND_ASSIGN(SetDocument doc,
                         FetchSetDocument(manager_->context(), set_id));
    doc.base_set_id = new_base;
    ASSERT_OK(manager_->doc_store()->Remove(kSetCollection, set_id));
    ASSERT_OK(manager_->doc_store()->Insert(kSetCollection, doc.ToJson()));
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
};

TEST_F(CorruptChainTest, BasePointerCycleFailsCleanlyWithBoundedWalk) {
  // A mixed store: baseline and provenance sets around an update chain, so
  // an unbounded (collection-sized) budget would be much larger than the
  // chain itself.
  ASSERT_OK(
      manager_->SaveInitial(ApproachType::kBaseline, scenario_->current_set())
          .status());
  std::string root =
      manager_->SaveInitial(ApproachType::kUpdate, scenario_->current_set())
          .ValueOrDie()
          .set_id;
  std::vector<std::string> ids{root};
  for (int i = 0; i < 3; ++i) {
    ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
    update.base_set_id = ids.back();
    ids.push_back(manager_
                      ->SaveDerived(ApproachType::kUpdate,
                                    scenario_->current_set(), update)
                      .ValueOrDie()
                      .set_id);
  }
  ASSERT_OK(manager_
                ->SaveInitial(ApproachType::kProvenance,
                              scenario_->current_set())
                .status());

  // Corrupt the chain into a cycle: ids[1] -> ids[3] -> ids[2] -> ids[1].
  CorruptBasePointer(ids[1], ids[3]);

  RecoverStats stats;
  Status st = manager_->Recover(ids[3], &stats).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("too deep"), std::string::npos)
      << st.ToString();
  // The walk was budgeted by the target's recorded depth (3 hops + itself),
  // not by the 6-document collection: it gave up after materializing at
  // most chain_depth + 1 sets.
  EXPECT_LE(stats.sets_recovered, 4u);

  // Selective recovery takes the same budget.
  EXPECT_TRUE(manager_->RecoverModels(ids[3], {0}).status().IsCorruption());

  // The cached read path, too.
  CacheRequestStats cache_stats;
  EXPECT_TRUE(manager_->update_approach()
                  ->RecoverCached(ids[3], nullptr, nullptr, &cache_stats)
                  .status()
                  .IsCorruption());
}

TEST_F(CorruptChainTest, SelfCycleFailsImmediately) {
  std::string root =
      manager_->SaveInitial(ApproachType::kUpdate, scenario_->current_set())
          .ValueOrDie()
          .set_id;
  ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
  update.base_set_id = root;
  std::string derived = manager_
                            ->SaveDerived(ApproachType::kUpdate,
                                          scenario_->current_set(), update)
                            .ValueOrDie()
                            .set_id;
  CorruptBasePointer(derived, derived);
  RecoverStats stats;
  Status st = manager_->Recover(derived, &stats).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_LE(stats.sets_recovered, 2u);
}

}  // namespace
}  // namespace mmm
