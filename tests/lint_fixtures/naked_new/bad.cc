// Fixture: a naked new outside an allocator shim must be flagged.
struct Widget {
  int value = 0;
};

Widget* Make() {
  return new Widget();
}
