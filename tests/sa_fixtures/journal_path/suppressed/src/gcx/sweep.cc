// The bad variant with an MMMSA suppression on the deletion site.

class Env {
 public:
  int Delete(const char* path);
};

void SweepEverything(Env* env, const char* path) {
  // MMMSA(journal-path): seeded fixture, raw delete is the point
  env->Delete(path);
}
