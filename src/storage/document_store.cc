#include "storage/document_store.h"

namespace mmm {

DocumentStore::DocumentStore(Env* env, std::string wal_path,
                             StoreLatencyModel latency, SimulatedClock* sim_clock)
    : env_(env),
      wal_path_(std::move(wal_path)),
      latency_(latency),
      sim_clock_(sim_clock) {}

void DocumentStore::Charge(uint64_t bytes) const {
  if (sim_clock_ != nullptr) sim_clock_->Advance(latency_.CostNanos(bytes));
}

Status DocumentStore::Open() {
  MMM_ASSIGN_OR_RETURN(bool exists, env_->FileExists(wal_path_));
  if (!exists) return Status::OK();
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, env_->ReadFile(wal_path_));
  std::string_view text(reinterpret_cast<const char*>(raw.data()), raw.size());
  size_t start = 0;
  size_t line_no = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    bool torn_tail = end == std::string_view::npos;
    if (torn_tail) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    auto parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      if (torn_tail) {
        // A crash mid-append leaves one incomplete record at the very end
        // of the log; everything before it is intact, so recovery simply
        // drops the torn tail (it was never acknowledged as written).
        break;
      }
      return parsed.status().WithContext("document store WAL line ", line_no);
    }
    JsonValue record = std::move(parsed).ValueOrDie();
    MMM_ASSIGN_OR_RETURN(std::string collection, record.GetString("collection"));
    if (record.Has("tombstone")) {
      MMM_ASSIGN_OR_RETURN(std::string id, record.GetString("tombstone"));
      auto coll_it = id_index_.find(collection);
      if (coll_it != id_index_.end()) {
        auto doc_it = coll_it->second.find(id);
        if (doc_it != coll_it->second.end()) {
          RemoveAt(collection, doc_it->second);
        }
      }
      continue;
    }
    MMM_ASSIGN_OR_RETURN(const JsonValue* doc, record.Get("doc"));
    MMM_ASSIGN_OR_RETURN(std::string id, doc->GetString("_id"));
    auto& docs = collections_[collection];
    id_index_[collection][id] = docs.size();
    docs.push_back(*doc);
  }
  return Status::OK();
}

Status DocumentStore::Insert(const std::string& collection, const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("document must be a json object");
  }
  auto id_result = doc.GetString("_id");
  if (!id_result.ok()) {
    return Status::InvalidArgument("document must have a string _id member");
  }
  const std::string id = id_result.ValueOrDie();
  auto& index = id_index_[collection];
  if (index.contains(id)) {
    return Status::AlreadyExists("document '", id, "' already in collection '",
                                 collection, "'");
  }

  JsonValue record = JsonValue::Object();
  record.Set("collection", collection);
  record.Set("doc", doc);
  std::string line = record.Dump();
  line.push_back('\n');
  MMM_RETURN_NOT_OK(env_->AppendToFile(
      wal_path_, std::span<const uint8_t>(
                     reinterpret_cast<const uint8_t*>(line.data()), line.size())));

  auto& docs = collections_[collection];
  index[id] = docs.size();
  docs.push_back(doc);

  stats_.AddWrite(line.size());
  Charge(line.size());
  return Status::OK();
}

void DocumentStore::RemoveAt(const std::string& collection, size_t position) {
  auto& docs = collections_[collection];
  auto& index = id_index_[collection];
  // Erase and re-index the documents that shifted left.
  std::string removed_id = docs[position].GetString("_id").ValueOrDie();
  docs.erase(docs.begin() + static_cast<ptrdiff_t>(position));
  index.erase(removed_id);
  for (auto& [id, pos] : index) {
    if (pos > position) --pos;
  }
}

Status DocumentStore::Remove(const std::string& collection,
                             const std::string& id) {
  auto coll_it = id_index_.find(collection);
  if (coll_it == id_index_.end() || !coll_it->second.contains(id)) {
    return Status::NotFound("no document '", id, "' in collection '", collection,
                            "'");
  }
  JsonValue record = JsonValue::Object();
  record.Set("collection", collection);
  record.Set("tombstone", id);
  std::string line = record.Dump();
  line.push_back('\n');
  MMM_RETURN_NOT_OK(env_->AppendToFile(
      wal_path_, std::span<const uint8_t>(
                     reinterpret_cast<const uint8_t*>(line.data()), line.size())));
  RemoveAt(collection, coll_it->second.at(id));
  stats_.AddWrite(line.size());
  Charge(line.size());
  return Status::OK();
}

Status DocumentStore::Compact() {
  std::string rewritten;
  for (const auto& [collection, docs] : collections_) {
    for (const JsonValue& doc : docs) {
      JsonValue record = JsonValue::Object();
      record.Set("collection", collection);
      record.Set("doc", doc);
      rewritten += record.Dump();
      rewritten.push_back('\n');
    }
  }
  return env_->WriteFile(
      wal_path_, std::span<const uint8_t>(
                     reinterpret_cast<const uint8_t*>(rewritten.data()),
                     rewritten.size()));
}

Result<uint64_t> DocumentStore::WalBytes() const {
  MMM_ASSIGN_OR_RETURN(bool exists, env_->FileExists(wal_path_));
  if (!exists) return uint64_t{0};
  return env_->FileSize(wal_path_);
}

Result<JsonValue> DocumentStore::Get(const std::string& collection,
                                     const std::string& id) const {
  auto coll_it = id_index_.find(collection);
  if (coll_it == id_index_.end()) {
    return Status::NotFound("no collection '", collection, "'");
  }
  auto doc_it = coll_it->second.find(id);
  if (doc_it == coll_it->second.end()) {
    return Status::NotFound("no document '", id, "' in collection '", collection,
                            "'");
  }
  const JsonValue& doc = collections_.at(collection)[doc_it->second];
  uint64_t bytes = doc.Dump().size();
  stats_.AddRead(bytes);
  Charge(bytes);
  return doc;
}

Result<std::vector<JsonValue>> DocumentStore::Find(const std::string& collection,
                                                   const std::string& field,
                                                   const JsonValue& value) const {
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) {
    return Status::NotFound("no collection '", collection, "'");
  }
  std::vector<JsonValue> matches;
  uint64_t bytes = 0;
  for (const JsonValue& doc : coll_it->second) {
    auto member = doc.Get(field);
    if (member.ok() && *member.ValueOrDie() == value) {
      matches.push_back(doc);
      bytes += doc.Dump().size();
    }
  }
  stats_.AddRead(bytes);
  Charge(bytes);
  return matches;
}

Result<std::vector<JsonValue>> DocumentStore::All(
    const std::string& collection) const {
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) {
    return Status::NotFound("no collection '", collection, "'");
  }
  uint64_t bytes = 0;
  for (const JsonValue& doc : coll_it->second) bytes += doc.Dump().size();
  stats_.AddRead(bytes);
  Charge(bytes);
  return coll_it->second;
}

size_t DocumentStore::Count(const std::string& collection) const {
  auto coll_it = collections_.find(collection);
  return coll_it == collections_.end() ? 0 : coll_it->second.size();
}

std::vector<std::string> DocumentStore::Collections() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

}  // namespace mmm
