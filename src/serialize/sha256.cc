#include "serialize/sha256.h"

#include <cstring>

#include "common/simd.h"
#include "common/strings.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace mmm {
namespace {

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t Rotr(uint32_t x, int n) {
  // Masking keeps the complementary shift out of UB territory (x << 32 is
  // undefined for n == 0) even if a future caller passes 0 or 32.
  return (x >> (n & 31)) | (x << ((32 - n) & 31));
}

}  // namespace

std::string Sha256Digest::ToHex() const { return HexEncode(bytes); }

Sha256::Sha256() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
}

void Sha256::ProcessBlock(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(std::span<const uint8_t> data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffer_size_ > 0) {
    size_t take = std::min(data.size(), sizeof(buffer_) - buffer_size_);
    std::memcpy(buffer_ + buffer_size_, data.data(), take);
    buffer_size_ += take;
    offset += take;
    if (buffer_size_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_size_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_size_ = data.size() - offset;
  }
}

void Sha256::Update(std::string_view data) {
  Update(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                                  data.size()));
}

Sha256Digest Sha256::Finish() {
  uint64_t bit_length = total_bytes_ * 8;
  uint8_t pad = 0x80;
  Update(std::span<const uint8_t>(&pad, 1));
  uint8_t zero = 0;
  while (buffer_size_ != 56) {
    Update(std::span<const uint8_t>(&zero, 1));
  }
  uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<uint8_t>(bit_length >> (56 - 8 * i));
  }
  // Bypass Update's byte counting for the length suffix.
  std::memcpy(buffer_ + buffer_size_, length_bytes, 8);
  ProcessBlock(buffer_);
  buffer_size_ = 0;

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest.bytes[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    digest.bytes[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest.bytes[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest.bytes[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

Sha256Digest Sha256::Hash(std::span<const uint8_t> data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

Sha256Digest Sha256::Hash(std::string_view data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

namespace {

#if defined(__x86_64__)

constexpr uint32_t kInitState[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};

/// The final padded block(s) of one stream. Every stream in a batch has
/// the same length, so all lanes have the same block count (1 or 2) and
/// the lanes never diverge.
struct Sha256Tail {
  uint8_t bytes[2][64] = {};
  size_t count = 1;
};

Sha256Tail BuildSha256Tail(const uint8_t* stream, size_t length) {
  Sha256Tail tail;
  const size_t rem = length % 64;
  std::memcpy(tail.bytes[0], stream + (length - rem), rem);
  tail.bytes[0][rem] = 0x80;
  tail.count = (rem + 9 <= 64) ? 1 : 2;
  const uint64_t bits = static_cast<uint64_t>(length) * 8;
  uint8_t* length_bytes = tail.bytes[tail.count - 1] + 56;
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  }
  return tail;
}

uint32_t LoadBigEndian32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

// ----- 4-way SSE2 lanes (baseline x86-64, no target attribute needed) -----

__m128i Rotr4(__m128i x, int n) {
  return _mm_or_si128(_mm_srli_epi32(x, n), _mm_slli_epi32(x, 32 - n));
}

void ProcessBlock4Sse2(__m128i state[8], const uint8_t* const blocks[4]) {
  __m128i w[64];
  alignas(16) uint32_t tmp[4];
  for (int i = 0; i < 16; ++i) {
    for (int l = 0; l < 4; ++l) tmp[l] = LoadBigEndian32(blocks[l] + i * 4);
    w[i] = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
  }
  for (int i = 16; i < 64; ++i) {
    const __m128i x15 = w[i - 15];
    const __m128i x2 = w[i - 2];
    const __m128i s0 = _mm_xor_si128(_mm_xor_si128(Rotr4(x15, 7), Rotr4(x15, 18)),
                                     _mm_srli_epi32(x15, 3));
    const __m128i s1 = _mm_xor_si128(_mm_xor_si128(Rotr4(x2, 17), Rotr4(x2, 19)),
                                     _mm_srli_epi32(x2, 10));
    w[i] = _mm_add_epi32(_mm_add_epi32(w[i - 16], s0),
                         _mm_add_epi32(w[i - 7], s1));
  }
  __m128i a = state[0], b = state[1], c = state[2], d = state[3];
  __m128i e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const __m128i s1 =
        _mm_xor_si128(_mm_xor_si128(Rotr4(e, 6), Rotr4(e, 11)), Rotr4(e, 25));
    const __m128i ch =
        _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
    const __m128i temp1 = _mm_add_epi32(
        _mm_add_epi32(_mm_add_epi32(h, s1), _mm_add_epi32(ch, w[i])),
        _mm_set1_epi32(static_cast<int>(kRoundConstants[i])));
    const __m128i s0 =
        _mm_xor_si128(_mm_xor_si128(Rotr4(a, 2), Rotr4(a, 13)), Rotr4(a, 22));
    const __m128i maj = _mm_xor_si128(
        _mm_xor_si128(_mm_and_si128(a, b), _mm_and_si128(a, c)),
        _mm_and_si128(b, c));
    const __m128i temp2 = _mm_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm_add_epi32(temp1, temp2);
  }
  state[0] = _mm_add_epi32(state[0], a);
  state[1] = _mm_add_epi32(state[1], b);
  state[2] = _mm_add_epi32(state[2], c);
  state[3] = _mm_add_epi32(state[3], d);
  state[4] = _mm_add_epi32(state[4], e);
  state[5] = _mm_add_epi32(state[5], f);
  state[6] = _mm_add_epi32(state[6], g);
  state[7] = _mm_add_epi32(state[7], h);
}

void HashMany4Sse2(const uint8_t* const* streams, size_t length,
                   Sha256Digest* digests) {
  __m128i state[8];
  for (int i = 0; i < 8; ++i) {
    state[i] = _mm_set1_epi32(static_cast<int>(kInitState[i]));
  }
  const uint8_t* blocks[4];
  const size_t full_blocks = length / 64;
  for (size_t b = 0; b < full_blocks; ++b) {
    for (int l = 0; l < 4; ++l) blocks[l] = streams[l] + b * 64;
    ProcessBlock4Sse2(state, blocks);
  }
  Sha256Tail tails[4];
  for (int l = 0; l < 4; ++l) tails[l] = BuildSha256Tail(streams[l], length);
  for (size_t t = 0; t < tails[0].count; ++t) {
    for (int l = 0; l < 4; ++l) blocks[l] = tails[l].bytes[t];
    ProcessBlock4Sse2(state, blocks);
  }
  alignas(16) uint32_t tmp[4];
  for (int word = 0; word < 8; ++word) {
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), state[word]);
    for (int l = 0; l < 4; ++l) {
      digests[l].bytes[word * 4] = static_cast<uint8_t>(tmp[l] >> 24);
      digests[l].bytes[word * 4 + 1] = static_cast<uint8_t>(tmp[l] >> 16);
      digests[l].bytes[word * 4 + 2] = static_cast<uint8_t>(tmp[l] >> 8);
      digests[l].bytes[word * 4 + 3] = static_cast<uint8_t>(tmp[l]);
    }
  }
}

// ----- 8-way AVX2 lanes (runtime-dispatched; helpers carry the same
// target attribute so they inline into the kernel) -----

__attribute__((target("avx2"))) inline __m256i Rotr8(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

__attribute__((target("avx2"))) void ProcessBlock8Avx2(
    __m256i state[8], const uint8_t* const blocks[8]) {
  __m256i w[64];
  alignas(32) uint32_t tmp[8];
  for (int i = 0; i < 16; ++i) {
    for (int l = 0; l < 8; ++l) tmp[l] = LoadBigEndian32(blocks[l] + i * 4);
    w[i] = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }
  for (int i = 16; i < 64; ++i) {
    const __m256i x15 = w[i - 15];
    const __m256i x2 = w[i - 2];
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(Rotr8(x15, 7), Rotr8(x15, 18)),
        _mm256_srli_epi32(x15, 3));
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(Rotr8(x2, 17), Rotr8(x2, 19)),
        _mm256_srli_epi32(x2, 10));
    w[i] = _mm256_add_epi32(_mm256_add_epi32(w[i - 16], s0),
                            _mm256_add_epi32(w[i - 7], s1));
  }
  __m256i a = state[0], b = state[1], c = state[2], d = state[3];
  __m256i e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(Rotr8(e, 6), Rotr8(e, 11)), Rotr8(e, 25));
    const __m256i ch =
        _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
    const __m256i temp1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, s1), _mm256_add_epi32(ch, w[i])),
        _mm256_set1_epi32(static_cast<int>(kRoundConstants[i])));
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(Rotr8(a, 2), Rotr8(a, 13)), Rotr8(a, 22));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i temp2 = _mm256_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(temp1, temp2);
  }
  state[0] = _mm256_add_epi32(state[0], a);
  state[1] = _mm256_add_epi32(state[1], b);
  state[2] = _mm256_add_epi32(state[2], c);
  state[3] = _mm256_add_epi32(state[3], d);
  state[4] = _mm256_add_epi32(state[4], e);
  state[5] = _mm256_add_epi32(state[5], f);
  state[6] = _mm256_add_epi32(state[6], g);
  state[7] = _mm256_add_epi32(state[7], h);
}

__attribute__((target("avx2"))) void HashMany8Avx2(
    const uint8_t* const* streams, size_t length, Sha256Digest* digests) {
  __m256i state[8];
  for (int i = 0; i < 8; ++i) {
    state[i] = _mm256_set1_epi32(static_cast<int>(kInitState[i]));
  }
  const uint8_t* blocks[8];
  const size_t full_blocks = length / 64;
  for (size_t b = 0; b < full_blocks; ++b) {
    for (int l = 0; l < 8; ++l) blocks[l] = streams[l] + b * 64;
    ProcessBlock8Avx2(state, blocks);
  }
  Sha256Tail tails[8];
  for (int l = 0; l < 8; ++l) tails[l] = BuildSha256Tail(streams[l], length);
  for (size_t t = 0; t < tails[0].count; ++t) {
    for (int l = 0; l < 8; ++l) blocks[l] = tails[l].bytes[t];
    ProcessBlock8Avx2(state, blocks);
  }
  alignas(32) uint32_t tmp[8];
  for (int word = 0; word < 8; ++word) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), state[word]);
    for (int l = 0; l < 8; ++l) {
      digests[l].bytes[word * 4] = static_cast<uint8_t>(tmp[l] >> 24);
      digests[l].bytes[word * 4 + 1] = static_cast<uint8_t>(tmp[l] >> 16);
      digests[l].bytes[word * 4 + 2] = static_cast<uint8_t>(tmp[l] >> 8);
      digests[l].bytes[word * 4 + 3] = static_cast<uint8_t>(tmp[l]);
    }
  }
}

#endif  // defined(__x86_64__)

}  // namespace

void Sha256HashMany(const uint8_t* const* streams, size_t length,
                    size_t count, Sha256Digest* digests) {
  size_t i = 0;
#if defined(__x86_64__)
  const SimdLevel level = ActiveSimdLevel();
  if (level == SimdLevel::kAvx2) {
    for (; i + 8 <= count; i += 8) {
      HashMany8Avx2(streams + i, length, digests + i);
    }
  }
  if (level >= SimdLevel::kSse2) {
    for (; i + 4 <= count; i += 4) {
      HashMany4Sse2(streams + i, length, digests + i);
    }
  }
#endif
  for (; i < count; ++i) {
    digests[i] = Sha256::Hash(std::span<const uint8_t>(streams[i], length));
  }
}

}  // namespace mmm
