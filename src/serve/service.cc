#include "serve/service.h"

#include <algorithm>

#include "common/clock.h"
#include "core/inspect.h"
#include "core/set_codec.h"

namespace mmm {

namespace {

/// Raw-byte map key of a digest.
std::string RawKey(const Sha256Digest& hash) {
  return std::string(reinterpret_cast<const char*>(hash.bytes.data()),
                     hash.bytes.size());
}

std::vector<Sha256Digest> Flatten(const HashTable& hashes) {
  std::vector<Sha256Digest> flat;
  for (const auto& row : hashes) flat.insert(flat.end(), row.begin(), row.end());
  return flat;
}

uint64_t WallNanos() { return WallClock::NowNanos(); }

}  // namespace

bool ModelSetService::CacheAdapter::GetLayer(const Sha256Digest& hash,
                                             Tensor* out) {
  return service_->layer_cache_.Get(hash, out);
}

void ModelSetService::CacheAdapter::PutLayer(const Sha256Digest& hash,
                                             const Tensor& value) {
  service_->layer_cache_.Put(hash, value);
}

bool ModelSetService::CacheAdapter::GetSetMeta(const std::string& set_id,
                                               HashTable* hashes,
                                               ArchitectureSpec* spec) {
  MutexLock lock(service_->meta_mu_);
  auto it = service_->meta_index_.find(set_id);
  if (it == service_->meta_index_.end()) return false;
  service_->meta_lru_.splice(service_->meta_lru_.begin(), service_->meta_lru_,
                             it->second);
  *hashes = it->second->hashes;
  *spec = it->second->spec;
  return true;
}

void ModelSetService::CacheAdapter::PutSetMeta(const std::string& set_id,
                                               const HashTable& hashes,
                                               const ArchitectureSpec& spec) {
  MutexLock lock(service_->meta_mu_);
  // The hash index always learns the mapping — it is what lets the GC
  // invalidate a set's layers even after the memo entry was evicted.
  service_->hash_index_[set_id] = Flatten(hashes);
  size_t bound = service_->options_.meta_cache_entries;
  if (bound == 0) return;
  auto it = service_->meta_index_.find(set_id);
  if (it != service_->meta_index_.end()) {
    service_->meta_lru_.splice(service_->meta_lru_.begin(),
                               service_->meta_lru_, it->second);
    it->second->hashes = hashes;
    it->second->spec = spec;
    return;
  }
  service_->meta_lru_.push_front(MetaEntry{set_id, hashes, spec});
  service_->meta_index_[set_id] = service_->meta_lru_.begin();
  while (service_->meta_lru_.size() > bound) {
    service_->meta_index_.erase(service_->meta_lru_.back().set_id);
    service_->meta_lru_.pop_back();
  }
}

ModelSetService::ModelSetService(ModelSetManager* manager,
                                 ModelSetServiceOptions options)
    : manager_(manager),
      options_(options),
      layer_cache_(options.cache_capacity_bytes,
                   options.cache_shards == 0 ? 1 : options.cache_shards),
      adapter_(this),
      executor_(std::make_unique<Executor>(
          options.workers == 0 ? 1 : options.workers)) {}

ModelSetService::~ModelSetService() = default;

Result<ModelSet> ModelSetService::Recover(const std::string& set_id,
                                          ServeResult* result) {
  uint64_t start = WallNanos();
  Result<ModelSet> recovered = [&]() -> Result<ModelSet> {
    ReaderMutexLock lock(gate_);
    return RecoverLocked(set_id, result);
  }();
  if (result != nullptr) {
    result->set_id = set_id;
    result->status = recovered.status();
    result->wall_nanos = WallNanos() - start;
  }
  return recovered;
}

Result<ModelSet> ModelSetService::RecoverLocked(const std::string& set_id,
                                                ServeResult* result) {
  RecoverStats stats;
  CacheRequestStats cache_stats;
  Result<ModelSet> recovered = [&]() -> Result<ModelSet> {
    if (!options_.cache_enabled) {
      // Straight through the manager — bit-identical, byte-for-byte, to a
      // direct Recover call (no extra document fetch, no cache probes).
      return manager_->Recover(set_id, &stats);
    }
    MMM_ASSIGN_OR_RETURN(SetDocument doc,
                         FetchSetDocument(manager_->context(), set_id));
    if (doc.approach == "update") {
      return manager_->update_approach()->RecoverCached(set_id, &adapter_,
                                                        &stats, &cache_stats);
    }
    return manager_->Recover(set_id, &stats);
  }();
  if (result != nullptr) {
    result->modeled_store_nanos = stats.simulated_store_nanos;
    result->sets_walked = stats.sets_recovered;
    result->cache = cache_stats;
  }
  return recovered;
}

std::vector<ServeResult> ModelSetService::Replay(
    const std::vector<std::string>& set_ids, std::vector<ModelSet>* recovered) {
  MutexLock replay_lock(replay_mu_);
  std::vector<ServeResult> results(set_ids.size());
  if (recovered != nullptr) {
    recovered->assign(set_ids.size(), ModelSet{});
  }
  executor_->ParallelFor(set_ids.size(), [&](size_t i) {
    Result<ModelSet> r = Recover(set_ids[i], &results[i]);
    if (recovered != nullptr && r.ok()) {
      (*recovered)[i] = std::move(r).ValueOrDie();
    }
  });
  return results;
}

Status ModelSetService::PinSet(const std::string& set_id) {
  WriterMutexLock lock(gate_);
  if (!options_.cache_enabled) {
    return Status::InvalidArgument("cannot pin: the cache is disabled");
  }
  {
    MutexLock pin_lock(pin_mu_);
    if (pinned_sets_.count(set_id) != 0) {
      return Status::AlreadyExists("set ", set_id, " is already pinned");
    }
  }
  MMM_ASSIGN_OR_RETURN(SetDocument doc,
                       FetchSetDocument(manager_->context(), set_id));
  if (doc.approach != "update") {
    return Status::InvalidArgument(
        "only update-approach sets are cacheable; set ", set_id,
        " was saved by '", doc.approach, "'");
  }
  // Materialize through the cache; this also records the set's hash table
  // in the hash index, aligned m-major with set.models.
  MMM_ASSIGN_OR_RETURN(ModelSet set, manager_->update_approach()->RecoverCached(
                                         set_id, &adapter_, nullptr, nullptr));
  std::vector<Sha256Digest> hashes = KnownHashesOf(set_id);
  size_t layers_per_model = set.models.empty() ? 0 : set.models[0].size();
  if (hashes.size() != set.models.size() * layers_per_model) {
    return Status::Internal("hash index out of sync for set ", set_id);
  }

  MutexLock pin_lock(pin_mu_);
  for (size_t i = 0; i < hashes.size(); ++i) {
    uint64_t& refs = pinned_hash_refs_[RawKey(hashes[i])];
    if (refs == 0) {
      const Tensor& value =
          set.models[i / layers_per_model][i % layers_per_model].second;
      // Pin in place if resident; otherwise admit pre-pinned so the entry
      // can never lose a race against eviction.
      if (!layer_cache_.Pin(hashes[i]) &&
          !layer_cache_.Put(hashes[i], value, /*pinned=*/true)) {
        // Roll back every reference taken so far (a set may repeat a hash
        // when models share identical layer bytes).
        pinned_hash_refs_.erase(RawKey(hashes[i]));
        for (size_t j = 0; j < i; ++j) {
          auto ref = pinned_hash_refs_.find(RawKey(hashes[j]));
          if (ref != pinned_hash_refs_.end() && --ref->second == 0) {
            pinned_hash_refs_.erase(ref);
            layer_cache_.Unpin(hashes[j]);
          }
        }
        return Status::InvalidArgument(
            "cannot pin set ", set_id,
            ": the cache cannot hold all its layers (capacity ",
            layer_cache_.capacity_bytes(), " bytes)");
      }
    }
    refs += 1;
  }
  pinned_sets_[set_id] = std::move(hashes);
  return Status::OK();
}

Status ModelSetService::UnpinSet(const std::string& set_id) {
  MutexLock pin_lock(pin_mu_);
  auto it = pinned_sets_.find(set_id);
  if (it == pinned_sets_.end()) {
    return Status::NotFound("set ", set_id, " is not pinned");
  }
  for (const Sha256Digest& hash : it->second) {
    auto ref = pinned_hash_refs_.find(RawKey(hash));
    if (ref == pinned_hash_refs_.end()) continue;
    if (--ref->second == 0) {
      pinned_hash_refs_.erase(ref);
      layer_cache_.Unpin(hash);
    }
  }
  pinned_sets_.erase(it);
  return Status::OK();
}

std::string ModelSetService::PinGuardOwner(const std::string& set_id) {
  std::vector<std::string> pinned;
  {
    MutexLock pin_lock(pin_mu_);
    for (const auto& [id, hashes] : pinned_sets_) pinned.push_back(id);
  }
  // The walk is local instead of mmm::Lineage because lineage may be
  // legitimately pruned: a full set keeps its base_set_id as history after
  // the base is deleted (full sets are not cascade dependents) or rebased
  // away, and the guard must stop at the first missing document rather than
  // fail the whole operation with NotFound.
  for (const std::string& pinned_id : pinned) {
    std::string current = pinned_id;
    uint64_t budget = manager_->context().doc_store->Count(kSetCollection) + 1;
    while (!current.empty() && budget-- > 0) {
      if (current == set_id) return pinned_id;
      Result<SetDocument> doc = FetchSetDocument(manager_->context(), current);
      if (!doc.ok()) break;  // pruned lineage: nothing upstream to protect
      current = doc.ValueOrDie().base_set_id;
    }
  }
  return "";
}

Result<bool> ModelSetService::PinProtects(const std::string& set_id) {
  ReaderMutexLock lock(gate_);
  return !PinGuardOwner(set_id).empty();
}

Result<DeleteReport> ModelSetService::DeleteSet(const std::string& set_id,
                                                const DeleteOptions& options) {
  WriterMutexLock lock(gate_);
  // Pin-fail: refuse to delete anything a pinned set needs for recovery —
  // the pinned set itself, or any ancestor its recorded base links reach.
  const std::string guard = PinGuardOwner(set_id);
  if (!guard.empty()) {
    return Status::InvalidArgument(
        "cannot delete set ", set_id, ": pinned set ", guard,
        guard == set_id ? " is pinned" : " needs it for recovery");
  }
  MMM_ASSIGN_OR_RETURN(DeleteReport report,
                       mmm::DeleteSet(manager_->context(), set_id, options));
  InvalidateDeleted(report.deleted_set_ids);
  return report;
}

Result<DeleteReport> ModelSetService::RetainOnly(
    const std::vector<std::string>& keep_set_ids) {
  WriterMutexLock lock(gate_);
  // Pinned sets are implicitly kept (RetainOnly itself keeps their whole
  // recovery lineage).
  std::vector<std::string> keep = keep_set_ids;
  {
    MutexLock pin_lock(pin_mu_);
    for (const auto& [id, hashes] : pinned_sets_) {
      if (std::find(keep.begin(), keep.end(), id) == keep.end()) {
        keep.push_back(id);
      }
    }
  }
  MMM_ASSIGN_OR_RETURN(DeleteReport report,
                       mmm::RetainOnly(manager_->context(), keep));
  InvalidateDeleted(report.deleted_set_ids);
  return report;
}

Result<CompactionReport> ModelSetService::CompactChains(
    const CompactionPolicy& policy) {
  WriterMutexLock lock(gate_);
  MMM_ASSIGN_OR_RETURN(CompactionReport report,
                       manager_->CompactChains(policy));
  // Rewritten sets changed on disk (kind/depth metadata, retired blobs), so
  // their cached per-set state is stale. Layer entries are keyed by content
  // hash and the bytes did not change, but InvalidateDeleted's conservative
  // sweep (drop meta + unpinned layers, spare pinned ones) is exactly the
  // coherence rule wanted here: the next recovery of a rewritten set
  // re-reads its document and repopulates.
  InvalidateDeleted(report.rewritten_set_ids);
  return report;
}

void ModelSetService::InvalidateDeleted(
    const std::vector<std::string>& deleted_set_ids) {
  for (const std::string& id : deleted_set_ids) {
    std::vector<Sha256Digest> hashes;
    {
      MutexLock lock(meta_mu_);
      auto hit = hash_index_.find(id);
      if (hit != hash_index_.end()) {
        hashes = std::move(hit->second);
        hash_index_.erase(hit);
      }
      auto mit = meta_index_.find(id);
      if (mit != meta_index_.end()) {
        meta_lru_.erase(mit->second);
        meta_index_.erase(mit);
      }
    }
    MutexLock pin_lock(pin_mu_);
    for (const Sha256Digest& hash : hashes) {
      // A layer shared with a pinned (surviving) set stays resident; the
      // rest of the collected set's layers are dropped. Deleted sets can
      // never be served again either way — every recovery re-fetches the
      // set document, and that fetch now fails.
      if (pinned_hash_refs_.count(RawKey(hash)) != 0) continue;
      layer_cache_.Invalidate(hash);
    }
  }
}

std::vector<Sha256Digest> ModelSetService::KnownHashesOf(
    const std::string& set_id) {
  MutexLock lock(meta_mu_);
  auto it = hash_index_.find(set_id);
  if (it == hash_index_.end()) return {};
  return it->second;
}

void ModelSetService::Drain() {
  // Taking the gate exclusively waits out every shared holder (in-flight
  // recoveries); releasing it immediately is the whole point — the caller
  // only wants the quiescent instant.
  WriterMutexLock lock(gate_);
}

ModelSetService::StatsSnapshot ModelSetService::Snapshot() const {
  StatsSnapshot snapshot;
  snapshot.cache = layer_cache_.stats();
  snapshot.pinned_sets = PinnedSets();
  snapshot.workers = options_.workers;
  snapshot.cache_enabled = options_.cache_enabled;
  return snapshot;
}

void ModelSetService::InvalidateSets(const std::vector<std::string>& set_ids) {
  WriterMutexLock lock(gate_);
  InvalidateDeleted(set_ids);
}

std::vector<std::string> ModelSetService::PinnedSets() const {
  MutexLock lock(pin_mu_);
  std::vector<std::string> ids;
  ids.reserve(pinned_sets_.size());
  for (const auto& [id, hashes] : pinned_sets_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace mmm
