#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mmm {
namespace {

TEST(StringsTest, JoinBasics) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, SplitBasics) {
  EXPECT_EQ(Split("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("/x/", '/'), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringsTest, SplitJoinRoundTrip) {
  std::vector<std::string> parts{"battery:", "", "cell", "17", "cycle", "2"};
  EXPECT_EQ(Split(Join(parts, "/"), '/'), parts);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("set-000001", "set-"));
  EXPECT_FALSE(StartsWith("se", "set-"));
  EXPECT_TRUE(EndsWith("blob.params.bin", ".bin"));
  EXPECT_FALSE(EndsWith("bin", ".bin"));
}

TEST(StringsTest, HexEncodeKnownValues) {
  std::vector<uint8_t> bytes{0x00, 0x0f, 0xff, 0xa5};
  EXPECT_EQ(HexEncode(bytes), "000fffa5");
}

TEST(StringsTest, HexDecodeInvertsEncode) {
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> bytes(rng.NextBounded(64));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextBounded(256));
    std::vector<uint8_t> decoded;
    ASSERT_TRUE(HexDecode(HexEncode(bytes), &decoded));
    EXPECT_EQ(decoded, bytes);
  }
}

TEST(StringsTest, HexDecodeRejectsMalformed) {
  std::vector<uint8_t> out;
  EXPECT_FALSE(HexDecode("abc", &out));   // odd length
  EXPECT_FALSE(HexDecode("zz", &out));    // non-hex
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(100 * 1024 * 1024), "100.00 MiB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(2.5), "2.500 s");
  EXPECT_EQ(HumanSeconds(0.0025), "2.500 ms");
  EXPECT_EQ(HumanSeconds(2.5e-6), "2.500 us");
}

TEST(StringsTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringFormat("empty"), "empty");
}

}  // namespace
}  // namespace mmm
