#ifndef MMM_TOOLS_MMMSA_PARSER_H_
#define MMM_TOOLS_MMMSA_PARSER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

/// \file
/// mmmsa's lightweight C++ front end: a declaration and function-body parser
/// over the mmmlint token stream. It is *not* a C++ parser — it recovers
/// exactly the structure the whole-program analyses need and skips the rest:
///
///   - class/struct scopes (including nested and file-local classes), their
///     data members with a best-effort type (the unique known-class
///     identifier in the declaration), their lock members
///     (`Mutex`/`SharedMutex`) with the `MMM_LOCK_RANK(n)` annotation, and
///     their method declarations with `MMM_REQUIRES(...)` contracts;
///   - function definitions with a qualified name, parameter/local variable
///     types, and the body parsed into a statement tree (blocks, if/else,
///     loops, switch, return/break/continue); lambda bodies stay inline in
///     their enclosing statement, which matches how this codebase uses them
///     (IIFEs and `ParallelFor` closures that run before the statement
///     completes);
///   - functions that return a reference to a function-local static lock
///     (the logging-sink idiom), so `MutexLock lock(SinkMutex())` resolves.
///
/// Everything unresolvable is dropped, never guessed: the analyses downstream
/// are tuned for zero false positives on the real tree, so a missed edge is
/// acceptable and an invented one is not.

namespace mmmsa {

using mmmlint::Comment;
using mmmlint::LexedFile;
using mmmlint::Token;
using mmmlint::TokenKind;

/// One statement of a function body.
struct Stmt {
  enum class Kind {
    kPlain,     ///< expression/declaration statement (tokens = whole stmt)
    kBlock,     ///< bare `{ ... }`
    kIf,        ///< tokens = condition; body = then, else_body = else
    kLoop,      ///< while/for/do; tokens = condition/header
    kSwitch,    ///< tokens = condition; body = flattened cases
    kReturn,    ///< tokens = `return ...` up to `;`
    kBreak,
    kContinue,
  };
  Kind kind = Kind::kPlain;
  int line = 0;
  std::vector<Token> tokens;
  std::vector<Stmt> body;
  std::vector<Stmt> else_body;
  bool has_else = false;
};

/// One `Mutex`/`SharedMutex` declaration (class member or function-local
/// static). `id` is the scoped name the analyses key on, e.g.
/// "Coordinator::topo_mu_", "LayerCache::Shard::mu", "SinkMutex::mu".
struct LockDecl {
  std::string id;
  std::string file;
  int line = 0;
  int rank = -1;  ///< from MMM_LOCK_RANK(n); -1 when unannotated
  bool shared = false;
};

/// One function definition (body present).
struct FunctionInfo {
  std::string name;         ///< unqualified, e.g. "Open"
  std::string qualified;    ///< e.g. "Coordinator::Open"; dtors "~Foo"
  std::string class_scope;  ///< scoped class name, "" for free functions
  std::string file;
  int line = 0;
  std::vector<Stmt> body;
  /// Parameter and local variable names -> scoped class name of their type
  /// (only variables whose declaration names a known class).
  std::map<std::string, std::string> var_types;
  /// Lock ids this function's declaration demands via MMM_REQUIRES /
  /// MMM_REQUIRES_SHARED (merged from the in-class declaration).
  std::vector<std::string> requires_locks;
  /// Scoped class name of the return type when exactly one known class
  /// appears in the return-type tokens ("" otherwise). Lets accessor chains
  /// like `shard->service()->Replay(...)` resolve.
  std::string return_class;
};

struct ClassInfo {
  std::string name;  ///< scoped, e.g. "LayerCache::Shard"
  /// member name -> scoped class name of its type (known classes only).
  std::map<std::string, std::string> member_types;
  /// Methods declared or defined in the class body.
  std::set<std::string> methods;
  std::map<std::string, std::string> method_return_class;
  /// method name -> raw MMM_REQUIRES argument spellings (e.g. "mu_").
  std::map<std::string, std::vector<std::string>> method_requires;
};

struct Program {
  std::map<std::string, ClassInfo> classes;  ///< scoped name -> info
  std::vector<LockDecl> locks;
  std::vector<FunctionInfo> functions;
  /// Function qualified name -> lock id, for functions whose body is
  /// `static Mutex mu; ...; return mu;`.
  std::map<std::string, std::string> returned_locks;

  // ----- lookup tables (built by ParseProgram) -----
  /// top-level (non-nested) class name -> scoped names carrying it.
  std::map<std::string, std::vector<std::string>> top_level_classes;
  /// qualified function name -> indices into `functions`.
  std::map<std::string, std::vector<size_t>> by_qualified;
  /// free-function name -> indices into `functions`.
  std::map<std::string, std::vector<size_t>> free_by_name;
  /// lock id -> index into `locks`.
  std::map<std::string, size_t> lock_index;
  /// lock member name (last component) -> lock ids carrying it.
  std::map<std::string, std::vector<std::string>> locks_by_member;

  const LockDecl* FindLock(const std::string& id) const {
    auto it = lock_index.find(id);
    return it == lock_index.end() ? nullptr : &locks[it->second];
  }
};

/// Parses every file into one linked Program.
Program ParseProgram(const std::vector<LexedFile>& files);

/// Resolves a bare type name seen inside `enclosing_class` to a scoped class
/// name: nested class of the enclosing chain first, then a unique top-level
/// class. Returns "" when unknown or ambiguous.
std::string ResolveClassName(const Program& program,
                             const std::string& enclosing_class,
                             const std::string& name);

}  // namespace mmmsa

#endif  // MMM_TOOLS_MMMSA_PARSER_H_
