// Fixture: second leg of the a.h <-> b.h cycle.
#pragma once
#include "a.h"

struct B {
  int value = 0;
};
