# Empty compiler generated dependencies file for test_approaches.
# This may be replaced when dependencies are built.
