#ifndef MMM_STORAGE_STREAM_FILE_H_
#define MMM_STORAGE_STREAM_FILE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/env.h"

namespace mmm {

/// Default streaming window: large enough that per-window overhead is
/// noise, small enough that a recovery's transient buffering is hundreds
/// of KiB instead of the full snapshot (DESIGN.md §12).
inline constexpr uint64_t kDefaultStreamWindowBytes = 256 * 1024;

/// \brief Pull-based windowed reader over one stored blob (DESIGN.md §12).
///
/// A StreamFile is the streaming counterpart of FileStore::Get: the caller
/// pulls fixed-size windows with Next() and overlaps decode/hash/
/// decompress work with the read loop instead of materializing the whole
/// blob first. Obtained via FileStore::OpenStream, which performs the
/// store-level accounting; see there for the cost model.
///
/// Windows are served through Env::ReadFileRange, so fault injection is
/// transparent: a FaultInjectionEnv that kills the path mid-stream surfaces
/// the error on the Next() that touches it, exactly where a real short read
/// would appear. The file length is latched at open; a blob that shrinks
/// underneath an open stream surfaces as the underlying env's OutOfRange.
///
/// Not thread-safe; one reader per instance (matching the one-recovery-
/// per-request shape of the read path).
class StreamFile {
 public:
  /// Total size of the blob, latched at open.
  uint64_t size() const { return size_; }
  /// Bytes delivered so far.
  uint64_t offset() const { return offset_; }
  /// The configured window size.
  uint64_t window_bytes() const { return window_bytes_; }
  bool done() const { return offset_ == size_; }

  /// Reads the next window: up to window_bytes() bytes (the final window
  /// is shorter; an empty span means end of stream). The span aliases an
  /// internal buffer that the next Next() call invalidates.
  Result<std::span<const uint8_t>> Next();

 private:
  friend class FileStore;
  StreamFile(Env* env, std::string path, uint64_t size, uint64_t window_bytes)
      : env_(env),
        path_(std::move(path)),
        size_(size),
        window_bytes_(window_bytes == 0 ? kDefaultStreamWindowBytes
                                        : window_bytes) {}

  Env* env_;
  std::string path_;
  uint64_t size_;
  uint64_t window_bytes_;
  uint64_t offset_ = 0;
  std::vector<uint8_t> buffer_;
};

}  // namespace mmm

#endif  // MMM_STORAGE_STREAM_FILE_H_
