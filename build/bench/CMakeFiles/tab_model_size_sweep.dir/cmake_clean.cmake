file(REMOVE_RECURSE
  "CMakeFiles/tab_model_size_sweep.dir/tab_model_size_sweep.cpp.o"
  "CMakeFiles/tab_model_size_sweep.dir/tab_model_size_sweep.cpp.o.d"
  "tab_model_size_sweep"
  "tab_model_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_model_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
