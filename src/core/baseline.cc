#include "core/baseline.h"

#include "core/set_codec.h"

namespace mmm {

Result<SaveResult> BaselineApproach::SaveSnapshot(const ModelSet& set,
                                                  const std::string& base_set_id) {
  MMM_RETURN_NOT_OK(context_.Validate());
  MMM_RETURN_NOT_OK(CheckSetConsistent(set));
  StatsCapture capture(context_);
  SaveResult result;
  result.set_id = context_.ids->Next("set");

  // One batch per save: both snapshot blobs plus the set document commit
  // through the write pipeline together.
  StoreBatch batch = MakeBatch(context_);
  batch.AnnotateCommit(result.set_id, Name());
  SetDocument doc;
  doc.id = result.set_id;
  doc.approach = Name();
  doc.base_set_id = base_set_id;
  MMM_RETURN_NOT_OK(StageFullSnapshot(context_, &batch, result.set_id, set, &doc));
  StageSetDocument(&batch, doc);
  MMM_RETURN_NOT_OK(batch.Commit());

  capture.FillSave(&result);
  return result;
}

Result<SaveResult> BaselineApproach::SaveInitial(const ModelSet& set) {
  return SaveSnapshot(set, /*base_set_id=*/"");
}

Result<SaveResult> BaselineApproach::SaveDerived(const ModelSet& set,
                                                 const ModelSetUpdateInfo& update) {
  // Baseline ignores derivation for storage purposes (it always writes a
  // full snapshot) but records lineage for analytics.
  return SaveSnapshot(set, update.base_set_id);
}

Result<std::vector<StateDict>> BaselineApproach::RecoverModels(
    const std::string& set_id, const std::vector<size_t>& indices,
    RecoverStats* stats) {
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not baseline");
  }
  MMM_ASSIGN_OR_RETURN(std::vector<StateDict> models,
                       ReadModelsFromSnapshot(context_, doc, indices));
  if (stats != nullptr) {
    stats->sets_recovered += 1;
    capture.FillRecover(stats);
  }
  return models;
}

Result<ModelSet> BaselineApproach::Recover(const std::string& set_id,
                                           RecoverStats* stats) {
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not baseline");
  }
  MMM_ASSIGN_OR_RETURN(ModelSet set, ReadFullSnapshot(context_, doc));
  if (stats != nullptr) {
    stats->sets_recovered += 1;
    capture.FillRecover(stats);
  }
  return set;
}

}  // namespace mmm
