// Quickstart: manage a set of related models with every approach.
//
// Creates a set of 200 battery models (FFNN-48), saves it with all four
// approaches, updates a few models, saves the derived sets, and recovers
// everything back — printing the storage consumption and store writes that
// make the paper's point.
//
// Run: ./build/examples/quickstart

#include <algorithm>
#include <cstdio>

#include "common/strings.h"
#include "core/manager.h"
#include "workload/scenario.h"

using namespace mmm;  // NOLINT — example code

int main() {
  // A scenario: 200 battery cells, each with its own FFNN-48 model.
  ScenarioConfig config = ScenarioConfig::Battery(/*num_models=*/200);
  config.samples_per_dataset = 128;
  MultiModelScenario scenario(config);
  scenario.Init().Check();

  // One manager per approach chain (separate directories).
  ModelSetManager::Options options;
  options.root_dir = "/tmp/mmm-quickstart";
  options.resolver = &scenario;
  Env::Default()->RemoveDirs(options.root_dir).Check();
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  std::printf("== U1: saving the initial set of %zu models (%zu params each)\n",
              scenario.current_set().size(),
              scenario.current_set().spec.ParameterCount());
  std::map<ApproachType, std::string> heads;
  for (ApproachType type : kAllApproaches) {
    SaveResult saved =
        manager->SaveInitial(type, scenario.current_set()).ValueOrDie();
    heads[type] = saved.set_id;
    std::printf("  %-11s storage=%-12s writes(file=%llu, doc=%llu)\n",
                ApproachTypeName(type).c_str(),
                HumanBytes(saved.bytes_written).c_str(),
                static_cast<unsigned long long>(saved.file_store_writes),
                static_cast<unsigned long long>(saved.doc_store_writes));
  }

  // One update cycle: 5% full + 5% partial updates, then save derived sets.
  ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
  std::printf("\n== U3-1: %zu models updated, saving the derived set\n",
              static_cast<size_t>(std::count_if(
                  update.kinds.begin(), update.kinds.end(),
                  [](UpdateKind k) { return k != UpdateKind::kNone; })));
  for (ApproachType type : kAllApproaches) {
    ModelSetUpdateInfo derived = update;
    derived.base_set_id = heads[type];
    SaveResult saved =
        manager->SaveDerived(type, scenario.current_set(), derived).ValueOrDie();
    heads[type] = saved.set_id;
    std::printf("  %-11s storage=%-12s writes(file=%llu, doc=%llu)\n",
                ApproachTypeName(type).c_str(),
                HumanBytes(saved.bytes_written).c_str(),
                static_cast<unsigned long long>(saved.file_store_writes),
                static_cast<unsigned long long>(saved.doc_store_writes));
  }

  // Recover each derived set and verify it equals the live set.
  std::printf("\n== Recovering every derived set\n");
  for (ApproachType type : kAllApproaches) {
    RecoverStats stats;
    ModelSet recovered = manager->Recover(heads[type], &stats).ValueOrDie();
    bool identical = recovered.models.size() == scenario.current_set().size();
    size_t mismatched = 0;
    for (size_t m = 0; identical && m < recovered.models.size(); ++m) {
      for (size_t p = 0; p < recovered.models[m].size(); ++p) {
        if (!recovered.models[m][p].second.Equals(
                scenario.current_set().models[m][p].second)) {
          ++mismatched;
          break;
        }
      }
    }
    std::printf(
        "  %-11s sets_walked=%llu retrained=%llu models_mismatched=%zu%s\n",
        ApproachTypeName(type).c_str(),
        static_cast<unsigned long long>(stats.sets_recovered),
        static_cast<unsigned long long>(stats.models_retrained), mismatched,
        type == ApproachType::kProvenance && mismatched == 0
            ? " (bit-exact replay)"
            : "");
  }
  std::printf("\nDone. Artifacts under /tmp/mmm-quickstart\n");
  return 0;
}
