#include "storage/store_batch.h"

#include <algorithm>

namespace mmm {

StoreBatch::StoreBatch(FileStore* file_store, DocumentStore* doc_store,
                       Executor* executor, StorePipelineOptions options)
    : file_store_(file_store),
      doc_store_(doc_store),
      executor_(executor),
      options_(options) {}

void StoreBatch::PutBlob(std::string name, std::vector<uint8_t> data) {
  ops_.push_back(StagedOp{OpKind::kBlobWrite, std::move(name), std::move(data),
                          nullptr, JsonValue()});
}

void StoreBatch::PutBlobString(std::string name, std::string_view data) {
  PutBlob(std::move(name),
          std::vector<uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                               reinterpret_cast<const uint8_t*>(data.data()) +
                                   data.size()));
}

void StoreBatch::PutBlobDeferred(std::string name, BlobProducer producer) {
  ops_.push_back(StagedOp{OpKind::kBlobWrite, std::move(name), {},
                          std::move(producer), JsonValue()});
}

void StoreBatch::InsertDocument(std::string collection, JsonValue doc) {
  ops_.push_back(StagedOp{OpKind::kDocInsert, std::move(collection), {},
                          nullptr, std::move(doc)});
}

Status StoreBatch::Commit() {
  const size_t lanes = executor_ != nullptr ? executor_->lanes() : 1;
  Status status = lanes > 1 ? CommitParallel() : CommitSerial();
  ops_.clear();
  return status;
}

Status StoreBatch::CommitSerial() {
  // One lane: ops run inline in staging order through the stores' plain
  // entry points, which charge the simulated clock per op — the serial sum,
  // i.e. the paper's original cost model, bit-exactly.
  for (StagedOp& op : ops_) {
    switch (op.kind) {
      case OpKind::kBlobWrite: {
        if (op.producer != nullptr) {
          MMM_ASSIGN_OR_RETURN(op.data, op.producer());
        }
        MMM_RETURN_NOT_OK(file_store_->Put(op.name, op.data));
        break;
      }
      case OpKind::kDocInsert:
        MMM_RETURN_NOT_OK(doc_store_->Insert(op.name, op.doc));
        break;
    }
  }
  return Status::OK();
}

Status StoreBatch::CommitParallel() {
  const size_t lanes = executor_->lanes();

  // File ops in staging order; each is one parallel work item.
  std::vector<size_t> blob_ops;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OpKind::kBlobWrite) blob_ops.push_back(i);
  }

  std::vector<Status> statuses(blob_ops.size());
  std::vector<uint64_t> costs(blob_ops.size(), 0);
  std::vector<StoreStats> deltas(blob_ops.size());
  executor_->ParallelFor(blob_ops.size(), [&](size_t i) {
    StagedOp& op = ops_[blob_ops[i]];
    if (op.producer != nullptr) {
      Result<std::vector<uint8_t>> produced = op.producer();
      if (!produced.ok()) {
        statuses[i] = std::move(produced).status();
        return;
      }
      op.data = std::move(produced).ValueOrDie();
    }
    statuses[i] =
        file_store_->PutDetached(op.name, op.data, &deltas[i], &costs[i]);
  });

  // Merge the per-op counters once and charge the overlapped latency:
  // max across lanes plus the per-op dispatch cost.
  StoreStats merged;
  std::vector<uint64_t> lane_nanos(lanes, 0);
  for (size_t i = 0; i < blob_ops.size(); ++i) {
    merged = merged + deltas[i];
    lane_nanos[i % lanes] += costs[i];
  }
  uint64_t charge =
      *std::max_element(lane_nanos.begin(), lane_nanos.end()) +
      options_.dispatch_nanos_per_op * static_cast<uint64_t>(blob_ops.size());
  file_store_->MergeBatch(merged, charge);

  // First failure in staging order aborts the batch before the document
  // phase.
  for (const Status& status : statuses) {
    MMM_RETURN_NOT_OK(status);
  }

  // Document inserts model a single serialized metadata-store connection.
  for (StagedOp& op : ops_) {
    if (op.kind != OpKind::kDocInsert) continue;
    MMM_RETURN_NOT_OK(doc_store_->Insert(op.name, op.doc));
  }
  return Status::OK();
}

}  // namespace mmm
