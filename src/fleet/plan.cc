#include "fleet/plan.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "serve/trace.h"

namespace mmm {
namespace {

std::string JoinOrdinals(const std::vector<uint64_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out.push_back(',');
    out += StringFormat("%llu", static_cast<unsigned long long>(values[i]));
  }
  return out;
}

}  // namespace

const char* FleetOpKindName(FleetOpKind kind) {
  switch (kind) {
    case FleetOpKind::kSaveInitial: return "save-initial";
    case FleetOpKind::kSaveDerived: return "save-derived";
    case FleetOpKind::kRecoverBurst: return "recover";
    case FleetOpKind::kPinSet: return "pin";
    case FleetOpKind::kUnpinSet: return "unpin";
    case FleetOpKind::kDeleteSet: return "delete";
    case FleetOpKind::kRetainOnly: return "retain";
    case FleetOpKind::kCompactChains: return "compact";
    case FleetOpKind::kCheckpoint: return "checkpoint";
    case FleetOpKind::kKillShard: return "kill-shard";
    case FleetOpKind::kAddShard: return "add-shard";
    case FleetOpKind::kRebalance: return "rebalance";
  }
  return "unknown";
}

std::string FleetOp::Render() const {
  switch (kind) {
    case FleetOpKind::kSaveInitial:
      return StringFormat("save-initial o=%llu fam=%llu a=%s",
                          static_cast<unsigned long long>(ordinal),
                          static_cast<unsigned long long>(target),
                          ApproachTypeName(approach).c_str());
    case FleetOpKind::kSaveDerived:
      return StringFormat("save-derived o=%llu base=%llu a=%s",
                          static_cast<unsigned long long>(ordinal),
                          static_cast<unsigned long long>(base),
                          ApproachTypeName(approach).c_str());
    case FleetOpKind::kRecoverBurst:
      return StringFormat("recover t=%s", JoinOrdinals(targets).c_str());
    case FleetOpKind::kPinSet:
      return StringFormat("pin o=%llu",
                          static_cast<unsigned long long>(target));
    case FleetOpKind::kUnpinSet:
      return StringFormat("unpin o=%llu",
                          static_cast<unsigned long long>(target));
    case FleetOpKind::kDeleteSet:
      return StringFormat("delete o=%llu cascade=%d",
                          static_cast<unsigned long long>(target),
                          cascade ? 1 : 0);
    case FleetOpKind::kRetainOnly:
      return StringFormat("retain keep=%s", JoinOrdinals(targets).c_str());
    case FleetOpKind::kCompactChains:
      return StringFormat("compact max-depth=%llu",
                          static_cast<unsigned long long>(target));
    case FleetOpKind::kCheckpoint:
      return "checkpoint";
    case FleetOpKind::kKillShard:
      return StringFormat("kill-shard r=%llu",
                          static_cast<unsigned long long>(target));
    case FleetOpKind::kAddShard:
      return "add-shard";
    case FleetOpKind::kRebalance:
      return "rebalance";
  }
  return "unknown";
}

// --- FleetSymbolicState -----------------------------------------------------

void FleetSymbolicState::ApplySave(const FleetOp& op) {
  if (op.ordinal >= sets_.size()) sets_.resize(op.ordinal + 1);
  SymSet& s = sets_[op.ordinal];
  s.approach = op.approach;
  s.alive = true;
  s.pinned = false;
  if (op.kind == FleetOpKind::kSaveInitial) {
    s.parent = -1;
    s.family = op.target;
    s.is_full = true;
    s.depth = 0;
    return;
  }
  const SymSet& base = sets_[op.base];
  s.family = base.family;
  // Update/Provenance record deltas at base depth + 1; Baseline writes full
  // snapshots whose documents still carry the lineage link; MMlib-base has
  // no notion of set derivation at all — every save is an independent full
  // snapshot with no recorded base, so no lineage link exists to protect.
  s.parent = op.approach == ApproachType::kMMlibBase
                 ? -1
                 : static_cast<int64_t>(op.base);
  if (op.approach == ApproachType::kUpdate ||
      op.approach == ApproachType::kProvenance) {
    s.is_full = false;
    s.depth = base.depth + 1;
  } else {
    s.is_full = true;
    s.depth = 0;
  }
}

void FleetSymbolicState::KillSave(uint64_t ordinal) {
  if (ordinal < sets_.size()) {
    sets_[ordinal].alive = false;
    sets_[ordinal].pinned = false;
  }
  chunk_refs_.erase(ordinal);
}

void FleetSymbolicState::SetChunkOwnership(
    uint64_t ordinal, std::map<std::string, uint64_t> refs) {
  if (refs.empty()) {
    chunk_refs_.erase(ordinal);
  } else {
    chunk_refs_[ordinal] = std::move(refs);
  }
}

std::map<std::string, uint64_t> FleetSymbolicState::PredictedChunkRefs()
    const {
  std::map<std::string, uint64_t> total;
  for (const auto& [ordinal, refs] : chunk_refs_) {
    if (!Alive(ordinal)) continue;
    for (const auto& [hex, count] : refs) total[hex] += count;
  }
  return total;
}

bool FleetSymbolicState::Known(uint64_t ordinal) const {
  return ordinal < sets_.size();
}

bool FleetSymbolicState::Alive(uint64_t ordinal) const {
  return ordinal < sets_.size() && sets_[ordinal].alive;
}

std::vector<uint64_t> FleetSymbolicState::Live() const {
  std::vector<uint64_t> out;
  for (uint64_t o = 0; o < sets_.size(); ++o) {
    if (sets_[o].alive) out.push_back(o);
  }
  return out;
}

std::vector<uint64_t> FleetSymbolicState::LiveOfFamily(uint64_t family) const {
  std::vector<uint64_t> out;
  for (uint64_t o = 0; o < sets_.size(); ++o) {
    if (sets_[o].alive && sets_[o].family == family) out.push_back(o);
  }
  return out;
}

std::vector<uint64_t> FleetSymbolicState::Pinned() const {
  std::vector<uint64_t> out;
  for (uint64_t o = 0; o < sets_.size(); ++o) {
    if (sets_[o].alive && sets_[o].pinned) out.push_back(o);
  }
  return out;
}

std::vector<uint64_t> FleetSymbolicState::DeleteClosure(uint64_t ordinal) const {
  std::set<uint64_t> doomed{ordinal};
  // Children always have larger ordinals, so one ascending pass closes the
  // non-full-descendant set.
  for (uint64_t o = ordinal + 1; o < sets_.size(); ++o) {
    const SymSet& s = sets_[o];
    if (!s.alive || s.is_full || s.parent < 0) continue;
    if (doomed.count(static_cast<uint64_t>(s.parent))) doomed.insert(o);
  }
  return std::vector<uint64_t>(doomed.begin(), doomed.end());
}

bool FleetSymbolicState::HasDependents(uint64_t ordinal) const {
  for (uint64_t o = ordinal + 1; o < sets_.size(); ++o) {
    const SymSet& s = sets_[o];
    if (s.alive && !s.is_full && s.parent == static_cast<int64_t>(ordinal)) {
      return true;
    }
  }
  return false;
}

std::vector<uint64_t> FleetSymbolicState::PinProtected() const {
  std::set<uint64_t> guarded;
  for (uint64_t o = 0; o < sets_.size(); ++o) {
    if (!sets_[o].alive || !sets_[o].pinned) continue;
    // The serving layer guards the pinned set's full lineage walk — every
    // base link, full snapshots included.
    int64_t cur = static_cast<int64_t>(o);
    while (cur >= 0 && sets_[cur].alive) {
      guarded.insert(static_cast<uint64_t>(cur));
      cur = sets_[cur].parent;
    }
  }
  return std::vector<uint64_t>(guarded.begin(), guarded.end());
}

std::vector<uint64_t> FleetSymbolicState::RetainSurvivors(
    const std::vector<uint64_t>& keep) const {
  std::set<uint64_t> survivors;
  auto close_over = [&](uint64_t start) {
    int64_t cur = static_cast<int64_t>(start);
    while (cur >= 0 && sets_[cur].alive) {
      if (!survivors.insert(static_cast<uint64_t>(cur)).second) break;
      cur = sets_[cur].parent;
    }
  };
  for (uint64_t k : keep) {
    if (Alive(k)) close_over(k);
  }
  for (uint64_t p : Pinned()) close_over(p);
  return std::vector<uint64_t>(survivors.begin(), survivors.end());
}

void FleetSymbolicState::ApplyDelete(const std::vector<uint64_t>& closure) {
  for (uint64_t o : closure) KillSave(o);
}

std::vector<uint64_t> FleetSymbolicState::ApplyRetain(
    const std::vector<uint64_t>& keep) {
  std::vector<uint64_t> survivors = RetainSurvivors(keep);
  std::set<uint64_t> kept(survivors.begin(), survivors.end());
  std::vector<uint64_t> deleted;
  for (uint64_t o : Live()) {
    if (!kept.count(o)) {
      deleted.push_back(o);
      KillSave(o);
    }
  }
  return deleted;
}

std::vector<uint64_t> FleetSymbolicState::ApplyCompact(
    uint64_t max_chain_depth) {
  std::vector<uint64_t> rebased;
  // Root-first greedy pass, exactly the compactor's order: parents precede
  // children by ordinal, so each set's effective depth under the already-
  // applied upstream rebases is its (possibly rewritten) parent depth + 1.
  for (uint64_t o = 0; o < sets_.size(); ++o) {
    SymSet& s = sets_[o];
    if (!s.alive) continue;
    if (s.is_full) {
      s.depth = 0;
      continue;
    }
    uint64_t depth = sets_[s.parent].depth + 1;
    if (depth > max_chain_depth) {
      s.is_full = true;
      s.depth = 0;
      rebased.push_back(o);
    } else {
      s.depth = depth;
    }
  }
  return rebased;
}

void FleetSymbolicState::Resync(uint64_t ordinal, bool is_full,
                                uint64_t depth) {
  if (ordinal >= sets_.size()) return;
  sets_[ordinal].is_full = is_full;
  sets_[ordinal].depth = depth;
}

// --- FleetPlan --------------------------------------------------------------

namespace {

/// Draws one live ordinal, Zipfian-skewed with the newest live set hottest.
uint64_t DrawZipfTarget(const std::vector<uint64_t>& live, double theta,
                        Rng* rng) {
  ZipfianSampler zipf(live.size(), theta);
  size_t rank = zipf.Sample(rng);
  return live[live.size() - 1 - rank];
}

}  // namespace

FleetPlan FleetPlan::Generate(const FleetPlanConfig& config) {
  FleetPlan plan;
  plan.config = config;
  Rng rng = Rng(config.seed).Fork("fleet-plan");
  FleetSymbolicState sym;
  uint64_t next_ordinal = 0;
  uint64_t families = 0;
  size_t since_checkpoint = 0;
  size_t since_wave = 0;

  auto emit = [&](FleetOp op) {
    if (op.kind == FleetOpKind::kSaveInitial ||
        op.kind == FleetOpKind::kSaveDerived) {
      sym.ApplySave(op);
    }
    ++since_checkpoint;
    ++since_wave;
    plan.ops.push_back(std::move(op));
  };

  auto emit_initial = [&]() {
    FleetOp op;
    op.kind = FleetOpKind::kSaveInitial;
    op.ordinal = next_ordinal++;
    op.target = families;  // the new family's id
    op.approach = config.approaches[families % config.approaches.size()];
    ++families;
    emit(std::move(op));
  };

  auto emit_derived = [&](uint64_t base_ordinal) {
    FleetOp op;
    op.kind = FleetOpKind::kSaveDerived;
    op.ordinal = next_ordinal++;
    op.base = base_ordinal;
    op.approach = sym.at(base_ordinal).approach;
    emit(std::move(op));
  };

  auto emit_recover_burst = [&](const std::vector<uint64_t>& live) {
    FleetOp op;
    op.kind = FleetOpKind::kRecoverBurst;
    for (size_t i = 0; i < config.burst_len; ++i) {
      op.targets.push_back(DrawZipfTarget(live, config.theta, &rng));
    }
    emit(std::move(op));
  };

  while (plan.ops.size() < config.steps) {
    std::vector<uint64_t> live = sym.Live();
    // Commission the initial fleet families first; re-commission if GC ever
    // empties the store mid-horizon.
    if (live.empty() || families < config.families) {
      emit_initial();
      continue;
    }
    if (config.checkpoint_interval > 0 &&
        since_checkpoint >= config.checkpoint_interval) {
      since_checkpoint = 0;
      FleetOp op;
      op.kind = FleetOpKind::kCheckpoint;
      emit(std::move(op));
      continue;
    }
    // Staggered OTA retraining wave: every family's newest live version
    // spawns a derived successor.
    if (config.wave_interval > 0 && since_wave >= config.wave_interval) {
      since_wave = 0;
      for (uint64_t fam = 0; fam < families; ++fam) {
        std::vector<uint64_t> of_family = sym.LiveOfFamily(fam);
        if (!of_family.empty()) emit_derived(of_family.back());
      }
      continue;
    }

    uint64_t draw = rng.NextBounded(100);
    if (draw < 5) {
      // Cell-replacement churn: a brand-new fleet family appears.
      emit_initial();
    } else if (draw < 32) {
      emit_derived(DrawZipfTarget(live, config.theta, &rng));
    } else if (draw < 62) {
      emit_recover_burst(live);
    } else if (draw < 68) {
      // Pin a hot Update-approach set (the only approach with a cached,
      // pinnable recovery path).
      std::vector<uint64_t> candidates;
      for (uint64_t o : live) {
        if (sym.at(o).approach == ApproachType::kUpdate && !sym.at(o).pinned) {
          candidates.push_back(o);
        }
      }
      if (candidates.empty() || sym.Pinned().size() >= 2) {
        emit_recover_burst(live);
      } else {
        FleetOp op;
        op.kind = FleetOpKind::kPinSet;
        op.target = candidates[rng.NextBounded(candidates.size())];
        sym.Pin(op.target);
        emit(std::move(op));
      }
    } else if (draw < 74) {
      std::vector<uint64_t> pinned = sym.Pinned();
      if (pinned.empty()) {
        emit_recover_burst(live);
      } else {
        FleetOp op;
        op.kind = FleetOpKind::kUnpinSet;
        op.target = pinned[rng.NextBounded(pinned.size())];
        sym.Unpin(op.target);
        emit(std::move(op));
      }
    } else if (draw < 84) {
      // Decommission one set. Respect the serving layer's pin guard (the
      // simulator treats an expected-failure delete as a skip, but the
      // generator aims for operations that execute).
      uint64_t target = live[rng.NextBounded(live.size())];
      bool cascade = sym.HasDependents(target) || rng.NextBounded(2) == 1;
      std::vector<uint64_t> closure =
          cascade ? sym.DeleteClosure(target) : std::vector<uint64_t>{target};
      std::vector<uint64_t> guarded = sym.PinProtected();
      bool blocked = false;
      for (uint64_t o : closure) {
        if (std::binary_search(guarded.begin(), guarded.end(), o)) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        emit_recover_burst(live);
      } else {
        FleetOp op;
        op.kind = FleetOpKind::kDeleteSet;
        op.target = target;
        op.cascade = cascade;
        sym.ApplyDelete(closure);
        emit(std::move(op));
      }
    } else if (draw < 88) {
      // Retention sweep: keep every family's newest version (plus lineage
      // and pins — the GC closes over those itself).
      FleetOp op;
      op.kind = FleetOpKind::kRetainOnly;
      for (uint64_t fam = 0; fam < families; ++fam) {
        std::vector<uint64_t> of_family = sym.LiveOfFamily(fam);
        if (!of_family.empty()) op.targets.push_back(of_family.back());
      }
      if (op.targets.empty()) {
        emit_recover_burst(live);
      } else {
        sym.ApplyRetain(op.targets);
        emit(std::move(op));
      }
    } else if (draw < 94) {
      FleetOp op;
      op.kind = FleetOpKind::kCompactChains;
      op.target = config.compact_max_depth;
      sym.ApplyCompact(op.target);
      emit(std::move(op));
    } else if (config.cluster_events) {
      uint64_t which = rng.NextBounded(4);
      FleetOp op;
      if (which == 0) {
        op.kind = FleetOpKind::kAddShard;
      } else if (which == 1) {
        op.kind = FleetOpKind::kRebalance;
      } else {
        op.kind = FleetOpKind::kKillShard;
        op.target = rng.NextBounded(1u << 30);
      }
      emit(std::move(op));
    } else {
      emit_recover_burst(live);
    }
  }

  FleetOp final_audit;
  final_audit.kind = FleetOpKind::kCheckpoint;
  plan.ops.push_back(std::move(final_audit));
  plan.save_count = next_ordinal;
  return plan;
}

std::string FleetPlan::Render() const {
  std::string approaches;
  for (size_t i = 0; i < config.approaches.size(); ++i) {
    if (i) approaches.push_back(',');
    approaches += ApproachTypeName(config.approaches[i]);
  }
  std::string out = StringFormat(
      "fleet-plan seed=%llu steps=%zu families=%zu models=%zu a=%s "
      "theta=%.6g burst=%zu compact-depth=%llu checkpoint=%zu wave=%zu "
      "cluster=%d saves=%llu\n",
      static_cast<unsigned long long>(config.seed), config.steps,
      config.families, config.models_per_set, approaches.c_str(), config.theta,
      config.burst_len, static_cast<unsigned long long>(config.compact_max_depth),
      config.checkpoint_interval, config.wave_interval,
      config.cluster_events ? 1 : 0,
      static_cast<unsigned long long>(save_count));
  for (const FleetOp& op : ops) {
    out += op.Render();
    out.push_back('\n');
  }
  return out;
}

FleetPlan FleetPlan::WithApproach(ApproachType type) const {
  FleetPlan out = *this;
  out.config.approaches = {type};
  for (FleetOp& op : out.ops) {
    if (op.kind == FleetOpKind::kSaveInitial ||
        op.kind == FleetOpKind::kSaveDerived) {
      op.approach = type;
    }
  }
  return out;
}

}  // namespace mmm
