#include "common/rng.h"

#include <cmath>

namespace mmm {
namespace {

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64Next(&sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  if (bound == 0) return 0;
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextUint64() >> 40) * 0x1.0p-24f;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform. u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

Rng Rng::Fork(std::string_view purpose, uint64_t index) const {
  uint64_t h = seed_;
  for (char c : purpose) {
    h = Mix64(h ^ static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  h = Mix64(h ^ index);
  return Rng(h);
}

uint64_t Rng::Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace mmm
