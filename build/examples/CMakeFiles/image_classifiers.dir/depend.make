# Empty dependencies file for image_classifiers.
# This may be replaced when dependencies are built.
