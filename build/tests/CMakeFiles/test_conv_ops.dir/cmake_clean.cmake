file(REMOVE_RECURSE
  "CMakeFiles/test_conv_ops.dir/test_conv_ops.cc.o"
  "CMakeFiles/test_conv_ops.dir/test_conv_ops.cc.o.d"
  "test_conv_ops"
  "test_conv_ops.pdb"
  "test_conv_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
