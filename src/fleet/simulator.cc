#include "fleet/simulator.h"

#include <algorithm>
#include <map>
#include <set>

#include "cas/manifest.h"
#include "cluster/coordinator.h"
#include "common/strings.h"
#include "core/gc.h"
#include "serve/service.h"
#include "storage/env.h"

namespace mmm {
namespace {

/// "" when bit-identical, else a one-line description of the first
/// divergence.
std::string DiffSets(const ModelSet& got, const ModelSet& want) {
  if (!(got.spec == want.spec)) return "architecture spec differs";
  if (got.models.size() != want.models.size()) {
    return StringFormat("model count %zu != expected %zu", got.models.size(),
                        want.models.size());
  }
  for (size_t m = 0; m < got.models.size(); ++m) {
    if (got.models[m].size() != want.models[m].size()) {
      return StringFormat("model %zu parameter count differs", m);
    }
    for (size_t p = 0; p < got.models[m].size(); ++p) {
      if (got.models[m][p].first != want.models[m][p].first) {
        return StringFormat("model %zu param %zu key '%s' != '%s'", m, p,
                            got.models[m][p].first.c_str(),
                            want.models[m][p].first.c_str());
      }
      if (!got.models[m][p].second.Equals(want.models[m][p].second)) {
        return StringFormat("model %zu param '%s' bytes differ", m,
                            got.models[m][p].first.c_str());
      }
    }
  }
  return "";
}

std::string JoinIds(const std::set<std::string>& ids) {
  std::string out;
  for (const std::string& id : ids) {
    if (!out.empty()) out += ",";
    out += id;
  }
  return out;
}

}  // namespace

/// The live world one run executes against, plus the shadow state predicting
/// it. Rebuilt at the start of every Run/RunOps; kept for inspection after.
struct FleetSimulator::World {
  enum class OpOutcome { kExecuted, kSkipped, kStop };

  World(const FleetPlanConfig& plan_config, const FleetSimOptions& opts,
        FleetContentEngine* content_engine)
      : config(plan_config), options(opts), engine(content_engine),
        fault(&base_env) {}

  const FleetPlanConfig& config;
  FleetSimOptions options;
  FleetContentEngine* engine;

  InMemoryEnv base_env;
  FaultInjectionEnv fault;

  /// Un-sharded backend (options.shards == 0). The service wraps the
  /// manager, so declaration order doubles as destruction order.
  std::unique_ptr<ModelSetManager> manager;
  std::unique_ptr<ModelSetService> service;
  /// Sharded backend (options.shards >= 1).
  std::unique_ptr<Coordinator> cluster;

  FleetSymbolicState shadow;
  /// ordinal -> bound set id; stale entries of dead ordinals are kept (they
  /// are harmless and record history), `ordinal_of` always points at the
  /// newest binding of an id.
  std::map<uint64_t, std::string> id_of;
  std::map<std::string, uint64_t> ordinal_of;
  size_t grown_shards = 0;

  FleetRunReport report;

  // --- binding -------------------------------------------------------------

  bool Bound(uint64_t ordinal) const { return id_of.count(ordinal) != 0; }

  void Bind(uint64_t ordinal, const std::string& id) {
    id_of[ordinal] = id;
    ordinal_of[id] = ordinal;
  }

  /// True when the op's set reference is executable: bound and alive.
  bool Usable(uint64_t ordinal) const {
    return Bound(ordinal) && shadow.Alive(ordinal);
  }

  bool Problem(size_t step, const FleetOp& op, std::string detail) {
    report.problems.push_back({step, op.Render(), std::move(detail)});
    report.failing_step = step;
    return false;
  }

  // --- backend -------------------------------------------------------------

  Status OpenBackend() {
    if (options.shards == 0) {
      service.reset();
      manager.reset();
      ModelSetManager::Options manager_options;
      manager_options.root_dir = "/fleet";
      manager_options.env = &fault;
      manager_options.resolver = engine;
      manager_options.pipeline.lanes = options.lanes;
      manager_options.cas = options.cas;
      // Modeled store latency on (simulated clock, no real waiting) so the
      // recover_modeled_nanos stream carries real per-request costs.
      manager_options.profile = SetupProfile::Server();
      // MMMLINT(direct-manager-open): fresh in-memory world per run.
      MMM_ASSIGN_OR_RETURN(manager, ModelSetManager::Open(manager_options));
      ModelSetServiceOptions service_options;
      service_options.workers = options.workers;
      service_options.cache_enabled = options.cache_enabled;
      service_options.cache_capacity_bytes = options.cache_capacity_bytes;
      service = std::make_unique<ModelSetService>(manager.get(),
                                                  service_options);
      return Status::OK();
    }
    cluster.reset();
    ClusterOptions cluster_options;
    cluster_options.root_dir = "/fleet";
    cluster_options.env = &fault;
    cluster_options.shard_count = options.shards;
    cluster_options.resolver = engine;
    cluster_options.pipeline.lanes = options.lanes;
    cluster_options.cas = options.cas;
    cluster_options.profile = SetupProfile::Server();
    cluster_options.service.workers = options.workers;
    cluster_options.service.cache_enabled = options.cache_enabled;
    cluster_options.service.cache_capacity_bytes =
        options.cache_capacity_bytes;
    MMM_ASSIGN_OR_RETURN(cluster, Coordinator::Open(std::move(cluster_options)));
    return Status::OK();
  }

  Result<std::vector<SetSummary>> ListAll() {
    if (cluster == nullptr) return manager->ListSets();
    std::vector<SetSummary> all;
    for (const std::string& name : cluster->ShardNames()) {
      Shard* shard = cluster->shard(name);
      if (shard == nullptr) {
        return Status::Internal("shard ", name, " vanished");
      }
      MMM_ASSIGN_OR_RETURN(std::vector<SetSummary> some,
                           shard->manager()->ListSets());
      all.insert(all.end(), some.begin(), some.end());
    }
    return all;
  }

  std::vector<ServeResult> ReplayIds(const std::vector<std::string>& ids,
                                     std::vector<ModelSet>* recovered) {
    return cluster != nullptr ? cluster->Replay(ids, recovered)
                              : service->Replay(ids, recovered);
  }

  /// "" when the store is fully fsck-clean (journal repair + validation +
  /// orphan scan, all shards), else the first problem.
  std::string FsckProblem() {
    if (cluster != nullptr) {
      Result<ClusterFsckReport> fsck = cluster->Fsck();
      if (!fsck.ok()) return fsck.status().ToString();
      const ClusterFsckReport& report = fsck.ValueOrDie();
      if (report.clean()) return "";
      if (!report.problems.empty()) return report.problems.front();
      for (const ShardFsck& shard : report.shards) {
        if (!shard.repair.clean()) {
          return "shard " + shard.shard + ": journal repair not clean";
        }
        if (!shard.validation.ok()) {
          return "shard " + shard.shard + ": " + shard.validation.problems.front();
        }
        if (!shard.orphans.clean()) {
          return "shard " + shard.shard + ": orphan blobs";
        }
      }
      return "cluster fsck not clean";
    }
    if (!manager->repair_report().clean()) return "journal repair not clean";
    Result<StoreValidationReport> validation = manager->ValidateStore();
    if (!validation.ok()) return validation.status().ToString();
    if (!validation.ValueOrDie().ok()) {
      return validation.ValueOrDie().problems.front();
    }
    Result<OrphanReport> orphans = FindOrphanBlobs(manager->context());
    if (!orphans.ok()) return orphans.status().ToString();
    if (!orphans.ValueOrDie().clean()) {
      return StringFormat("%zu orphan blobs",
                          orphans.ValueOrDie().orphan_blobs.size());
    }
    return "";
  }

  // --- chunk-refcount shadow (CAS runs) ------------------------------------

  /// Re-reads `ordinal`'s chunk references from the CAS index after an
  /// operation that (re)wrote its blobs. Manifests are attributed by blob
  /// name prefix: every artifact blob name starts with its set's id, and
  /// ids are fixed-width, so no id prefixes another. Un-sharded worlds only
  /// (no-op otherwise).
  void ObserveChunkOwnership(uint64_t ordinal) {
    if (manager == nullptr || manager->cas() == nullptr) return;
    const std::string& id = id_of[ordinal];
    std::map<std::string, uint64_t> refs;
    for (const std::string& name : manager->cas()->ManifestNames()) {
      if (name.rfind(id, 0) != 0) continue;
      std::optional<std::vector<CasChunkRef>> chunks =
          manager->cas()->ManifestChunks(name);
      if (!chunks.has_value()) continue;
      for (const CasChunkRef& ref : *chunks) ++refs[ref.hash_hex];
    }
    shadow.SetChunkOwnership(ordinal, std::move(refs));
  }

  /// "" when the CAS refcount index, the store's literal `cas-` listing, and
  /// the shadow's summed per-set ownership all agree; else the first
  /// divergence. Runs after every executed op of an un-sharded CAS world.
  std::string ChunkOracleProblem() {
    if (manager == nullptr || manager->cas() == nullptr) return "";
    std::map<std::string, uint64_t> predicted = shadow.PredictedChunkRefs();
    std::map<std::string, uint64_t> actual =
        manager->cas()->ChunkRefsSnapshot();
    for (const auto& [hex, refs] : predicted) {
      auto it = actual.find(hex);
      if (it == actual.end()) {
        return StringFormat("index lost chunk %s (shadow predicts refs=%llu)",
                            hex.substr(0, 12).c_str(),
                            static_cast<unsigned long long>(refs));
      }
      if (it->second != refs) {
        return StringFormat("chunk %s has refs=%llu, shadow predicts %llu",
                            hex.substr(0, 12).c_str(),
                            static_cast<unsigned long long>(it->second),
                            static_cast<unsigned long long>(refs));
      }
    }
    for (const auto& [hex, refs] : actual) {
      if (predicted.count(hex) == 0) {
        return StringFormat(
            "index tracks chunk %s (refs=%llu) no live set's manifests "
            "reference",
            hex.substr(0, 12).c_str(),
            static_cast<unsigned long long>(refs));
      }
    }
    // The store must hold exactly the predicted chunk blobs: a missing one
    // is data loss, an extra one is a zero-ref chunk a sweep failed to
    // reclaim.
    Result<std::vector<std::string>> listed = manager->file_store()->List();
    if (!listed.ok()) return listed.status().ToString();
    std::set<std::string> chunk_blobs;
    for (const std::string& name : listed.ValueOrDie()) {
      if (IsChunkBlobName(name)) chunk_blobs.insert(ChunkHexOfBlobName(name));
    }
    for (const auto& [hex, refs] : predicted) {
      if (chunk_blobs.erase(hex) == 0) {
        return "store lost referenced chunk blob " + hex.substr(0, 12);
      }
    }
    if (!chunk_blobs.empty()) {
      return StringFormat("%zu unreferenced chunk blob(s) survived a sweep, "
                          "first %s",
                          chunk_blobs.size(),
                          chunk_blobs.begin()->substr(0, 12).c_str());
    }
    return "";
  }

  // --- save path (with optional crash injection) ---------------------------

  OpOutcome ExecSave(const FleetOp& op, size_t step) {
    const bool derived = op.kind == FleetOpKind::kSaveDerived;
    const ModelSet* content = nullptr;
    ModelSetUpdateInfo update;
    if (derived) {
      if (!Usable(op.base)) return OpOutcome::kSkipped;
      Result<const ModelSet*> made = engine->DerivedSet(op.ordinal, op.base);
      if (!made.ok()) {
        Problem(step, op, "content engine: " + made.status().ToString());
        return OpOutcome::kStop;
      }
      content = made.ValueOrDie();
      update = engine->UpdateFor(op.ordinal, op.base);
      update.base_set_id = id_of[op.base];
    } else {
      Result<const ModelSet*> made = engine->InitialSet(op.ordinal);
      if (!made.ok()) {
        Problem(step, op, "content engine: " + made.status().ToString());
        return OpOutcome::kStop;
      }
      content = made.ValueOrDie();
    }

    bool armed = false;
    if (options.inject_crashes) {
      // Keyed by ordinal, not step index: a minimized subsequence replays
      // the identical crash decision for every surviving save.
      Rng crash_rng = Rng(options.crash_seed).Fork("fleet-crash", op.ordinal);
      if (crash_rng.NextBounded(100) < options.crash_percent) {
        armed = true;
        fault.FailWritesAfter(fault.write_count() + 1 +
                              static_cast<int64_t>(crash_rng.NextBounded(
                                  std::max<uint64_t>(1, options.crash_window))));
      }
    }

    Result<SaveResult> saved =
        derived ? (cluster != nullptr
                       ? cluster->SaveDerived(op.approach, *content, update)
                       : manager->SaveDerived(op.approach, *content, update))
                : (cluster != nullptr
                       ? cluster->SaveInitial(op.approach, *content)
                       : manager->SaveInitial(op.approach, *content));
    if (armed) fault.Heal();

    if (saved.ok()) {
      ++report.saves;
      const SaveResult& result = saved.ValueOrDie();
      Bind(op.ordinal, result.set_id);
      shadow.ApplySave(op);
      ObserveChunkOwnership(op.ordinal);
      if (result.chain_depth != shadow.at(op.ordinal).depth) {
        Problem(step, op,
                StringFormat("save reported chain depth %llu, shadow predicts "
                             "%llu",
                             static_cast<unsigned long long>(result.chain_depth),
                             static_cast<unsigned long long>(
                                 shadow.at(op.ordinal).depth)));
        return OpOutcome::kStop;
      }
      return OpOutcome::kExecuted;
    }
    if (!armed) {
      Problem(step, op, "save failed: " + saved.status().ToString());
      return OpOutcome::kStop;
    }
    ++report.crashes_injected;
    return ReopenAfterCrash(op, step) ? OpOutcome::kExecuted : OpOutcome::kStop;
  }

  /// Heals, reopens the world through the commit-journal replay, asserts it
  /// fsck-clean, and reconciles the shadow with the store: the crashed save
  /// either rolled forward (exactly one id we never saw — bind it) or rolled
  /// back (nothing new). Pins do not survive the service restart.
  bool ReopenAfterCrash(const FleetOp& op, size_t step) {
    Status reopened = OpenBackend();
    if (!reopened.ok()) {
      return Problem(step, op,
                     "reopen after crash failed: " + reopened.ToString());
    }
    std::string fsck = FsckProblem();
    if (!fsck.empty()) {
      return Problem(step, op, "post-crash fsck: " + fsck);
    }
    Result<std::vector<SetSummary>> listed = ListAll();
    if (!listed.ok()) {
      return Problem(step, op,
                     "post-crash inventory: " + listed.status().ToString());
    }
    std::set<std::string> live_bound;
    for (const auto& [ordinal, id] : id_of) {
      if (shadow.Alive(ordinal)) live_bound.insert(id);
    }
    std::set<std::string> present;
    std::vector<std::string> unknown;
    for (const SetSummary& summary : listed.ValueOrDie()) {
      present.insert(summary.id);
      if (!live_bound.count(summary.id)) unknown.push_back(summary.id);
    }
    if (unknown.size() > 1) {
      return Problem(step, op, StringFormat("crash left %zu unknown sets",
                                            unknown.size()));
    }
    if (unknown.size() == 1) {
      // The crashed commit had reached its commit mark; replay rolled it
      // forward. The store's new set is the crashed save's.
      ++report.saves;
      Bind(op.ordinal, unknown.front());
      shadow.ApplySave(op);
      ObserveChunkOwnership(op.ordinal);
    }
    for (const std::string& id : live_bound) {
      if (!present.count(id)) {
        return Problem(step, op, "crash lost live set " + id);
      }
    }
    for (uint64_t pinned : shadow.Pinned()) shadow.Unpin(pinned);
    return true;
  }

  // --- serving / GC / compaction ops ---------------------------------------

  OpOutcome ExecRecoverBurst(const FleetOp& op, size_t step) {
    std::vector<std::string> ids;
    std::vector<uint64_t> ordinals;
    for (uint64_t target : op.targets) {
      if (Usable(target)) {
        ids.push_back(id_of[target]);
        ordinals.push_back(target);
      }
    }
    if (ids.empty()) return OpOutcome::kSkipped;
    std::vector<ModelSet> recovered;
    std::vector<ServeResult> results = ReplayIds(ids, &recovered);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!results[i].status.ok()) {
        Problem(step, op,
                "recovery of " + ids[i] + " failed: " +
                    results[i].status.ToString());
        return OpOutcome::kStop;
      }
      std::string diff = DiffSets(recovered[i], engine->ExpectedSet(ordinals[i]));
      if (!diff.empty()) {
        Problem(step, op, "recovery of " + ids[i] + " not bit-exact: " + diff);
        return OpOutcome::kStop;
      }
      report.recover_modeled_nanos.push_back(results[i].modeled_store_nanos);
      ++report.recoveries;
    }
    return OpOutcome::kExecuted;
  }

  OpOutcome ExecPin(const FleetOp& op, size_t step) {
    if (!Usable(op.target) || !options.cache_enabled) return OpOutcome::kSkipped;
    const FleetSymbolicState::SymSet& target = shadow.at(op.target);
    // Only update-approach sets are pinnable; a differential variant of the
    // plan under another approach deterministically skips its pin ops.
    if (target.approach != ApproachType::kUpdate || target.pinned) {
      return OpOutcome::kSkipped;
    }
    const std::string& id = id_of[op.target];
    Status status = cluster != nullptr ? cluster->PinSet(id)
                                       : service->PinSet(id);
    if (!status.ok()) {
      Problem(step, op, "pin of " + id + " failed: " + status.ToString());
      return OpOutcome::kStop;
    }
    shadow.Pin(op.target);
    return OpOutcome::kExecuted;
  }

  OpOutcome ExecUnpin(const FleetOp& op, size_t step) {
    if (!Usable(op.target) || !shadow.at(op.target).pinned) {
      return OpOutcome::kSkipped;
    }
    const std::string& id = id_of[op.target];
    Status status = cluster != nullptr ? cluster->UnpinSet(id)
                                       : service->UnpinSet(id);
    if (!status.ok()) {
      Problem(step, op, "unpin of " + id + " failed: " + status.ToString());
      return OpOutcome::kStop;
    }
    shadow.Unpin(op.target);
    return OpOutcome::kExecuted;
  }

  OpOutcome ExecDelete(const FleetOp& op, size_t step) {
    if (!Usable(op.target)) return OpOutcome::kSkipped;
    const std::string& id = id_of[op.target];
    bool dependents = shadow.HasDependents(op.target);
    std::vector<uint64_t> guarded = shadow.PinProtected();
    bool pin_blocked =
        std::binary_search(guarded.begin(), guarded.end(), op.target);

    DeleteOptions delete_options;
    delete_options.cascade = op.cascade;
    Result<DeleteReport> result =
        cluster != nullptr ? cluster->DeleteSet(id, delete_options)
                           : service->DeleteSet(id, delete_options);

    if ((!op.cascade && dependents) || pin_blocked) {
      // The shadow predicts a refusal (dependent sets without cascade, or
      // pin protection); the system agreeing to delete would be the bug.
      if (result.ok()) {
        Problem(step, op,
                pin_blocked ? "pin-protected delete succeeded"
                            : "delete with dependents succeeded without "
                              "cascade");
        return OpOutcome::kStop;
      }
      return OpOutcome::kExecuted;
    }
    if (!result.ok()) {
      Problem(step, op, "delete failed: " + result.status().ToString());
      return OpOutcome::kStop;
    }
    std::vector<uint64_t> closure = op.cascade
                                        ? shadow.DeleteClosure(op.target)
                                        : std::vector<uint64_t>{op.target};
    std::set<std::string> expect;
    for (uint64_t ordinal : closure) expect.insert(id_of[ordinal]);
    std::set<std::string> got(result.ValueOrDie().deleted_set_ids.begin(),
                              result.ValueOrDie().deleted_set_ids.end());
    if (got != expect) {
      Problem(step, op, "delete collected {" + JoinIds(got) +
                            "}, shadow predicts {" + JoinIds(expect) + "}");
      return OpOutcome::kStop;
    }
    shadow.ApplyDelete(closure);
    ++report.deletes;
    return OpOutcome::kExecuted;
  }

  OpOutcome ExecRetain(const FleetOp& op, size_t step) {
    std::vector<uint64_t> keep;
    std::vector<std::string> keep_ids;
    for (uint64_t target : op.targets) {
      if (Usable(target)) {
        keep.push_back(target);
        keep_ids.push_back(id_of[target]);
      }
    }
    if (keep.empty()) return OpOutcome::kSkipped;

    std::set<std::string> expect;
    {
      std::vector<uint64_t> survivors = shadow.RetainSurvivors(keep);
      std::set<uint64_t> kept(survivors.begin(), survivors.end());
      for (uint64_t live : shadow.Live()) {
        if (!kept.count(live)) expect.insert(id_of[live]);
      }
    }
    Result<DeleteReport> result = cluster != nullptr
                                      ? cluster->RetainOnly(keep_ids)
                                      : service->RetainOnly(keep_ids);
    if (!result.ok()) {
      Problem(step, op, "retain failed: " + result.status().ToString());
      return OpOutcome::kStop;
    }
    std::set<std::string> got(result.ValueOrDie().deleted_set_ids.begin(),
                              result.ValueOrDie().deleted_set_ids.end());
    if (got != expect) {
      Problem(step, op, "retain collected {" + JoinIds(got) +
                            "}, shadow predicts {" + JoinIds(expect) + "}");
      return OpOutcome::kStop;
    }
    shadow.ApplyRetain(keep);
    ++report.retains;
    return OpOutcome::kExecuted;
  }

  OpOutcome ExecCompact(const FleetOp& op, size_t step) {
    std::set<std::string> expect;
    for (uint64_t ordinal : shadow.ApplyCompact(op.target)) {
      expect.insert(id_of[ordinal]);
    }
    CompactionPolicy policy;
    policy.max_chain_depth = op.target;
    Result<CompactionReport> result =
        cluster != nullptr ? cluster->CompactChains(policy)
                           : service->CompactChains(policy);
    if (!result.ok()) {
      Problem(step, op, "compaction failed: " + result.status().ToString());
      return OpOutcome::kStop;
    }
    const CompactionReport& report_value = result.ValueOrDie();
    if (!report_value.skipped.empty()) {
      Problem(step, op, "compaction skipped a planned rebase: " +
                            report_value.skipped.front());
      return OpOutcome::kStop;
    }
    std::set<std::string> got(report_value.rebased_set_ids.begin(),
                              report_value.rebased_set_ids.end());
    if (got != expect) {
      Problem(step, op, "compaction rebased {" + JoinIds(got) +
                            "}, shadow predicts {" + JoinIds(expect) + "}");
      return OpOutcome::kStop;
    }
    // A rebase rewrites the set's blobs as a fresh full snapshot: its chunk
    // ownership changed wholesale, so re-observe before the chunk oracle.
    for (const std::string& id : got) {
      ObserveChunkOwnership(ordinal_of[id]);
    }
    ++report.compactions;
    return OpOutcome::kExecuted;
  }

  // --- cluster control-plane ops -------------------------------------------

  OpOutcome ExecKillShard(const FleetOp& op, size_t step) {
    if (cluster == nullptr) return OpOutcome::kSkipped;
    std::vector<std::string> names = cluster->ShardNames();
    const std::string victim = names[op.target % names.size()];

    // Pins on the victim die with its process state; note them before the
    // replacement shard opens with an empty pin table.
    std::vector<uint64_t> lost_pins;
    for (uint64_t pinned : shadow.Pinned()) {
      Result<std::string> owner = cluster->OwnerOf(id_of[pinned]);
      if (owner.ok() && owner.ValueOrDie() == victim) {
        lost_pins.push_back(pinned);
      }
    }

    // Node loss: the subtree goes dark, then the surviving durable bytes
    // are mounted again and the coordinator fails over onto them.
    Result<ClusterStatus> status = cluster->StatusReport();
    if (status.ok()) {
      for (const ShardStatus& shard : status.ValueOrDie().shards) {
        if (shard.name == victim) fault.FailPathsUnder(shard.root_dir);
      }
    }
    fault.HealPaths();
    Result<RepairReport> repaired = cluster->FailOver(victim);
    if (!repaired.ok()) {
      Problem(step, op, "failover of " + victim + " failed: " +
                            repaired.status().ToString());
      return OpOutcome::kStop;
    }
    if (!repaired.ValueOrDie().clean()) {
      Problem(step, op, "failover journal replay of " + victim + " not clean");
      return OpOutcome::kStop;
    }
    for (uint64_t pinned : lost_pins) shadow.Unpin(pinned);
    ++report.failovers;
    return OpOutcome::kExecuted;
  }

  OpOutcome ExecAddShard(const FleetOp& op, size_t step) {
    if (cluster == nullptr) return OpOutcome::kSkipped;
    std::string name = StringFormat(
        "grown-%llu", static_cast<unsigned long long>(grown_shards));
    Status status = cluster->AddShard(name);
    if (!status.ok()) {
      Problem(step, op, "add-shard failed: " + status.ToString());
      return OpOutcome::kStop;
    }
    ++grown_shards;
    ++report.shards_added;
    return OpOutcome::kExecuted;
  }

  OpOutcome ExecRebalance(const FleetOp& op, size_t step) {
    if (cluster == nullptr) return OpOutcome::kSkipped;
    Result<RebalanceReport> result = cluster->Rebalance();
    if (!result.ok()) {
      Problem(step, op, "rebalance failed: " + result.status().ToString());
      return OpOutcome::kStop;
    }
    // Moves may be skipped for pinned sets; with no pins anywhere, a skip is
    // a defect.
    if (!result.ValueOrDie().skipped.empty() && shadow.Pinned().empty()) {
      Problem(step, op,
              "rebalance skipped without pins: " +
                  result.ValueOrDie().skipped.front());
      return OpOutcome::kStop;
    }
    // Rebalance flattens chains holding misplaced sets (which chains depends
    // on the ring, not on anything the shadow models), so re-base the
    // shadow's kind/depth on the store — inventory equality still holds.
    Result<std::vector<SetSummary>> listed = ListAll();
    if (!listed.ok()) {
      Problem(step, op,
              "post-rebalance inventory: " + listed.status().ToString());
      return OpOutcome::kStop;
    }
    for (const SetSummary& summary : listed.ValueOrDie()) {
      auto it = ordinal_of.find(summary.id);
      if (it == ordinal_of.end()) {
        Problem(step, op, "rebalance produced unknown set " + summary.id);
        return OpOutcome::kStop;
      }
      shadow.Resync(it->second, summary.kind == "full", summary.chain_depth);
    }
    ++report.rebalances;
    return OpOutcome::kExecuted;
  }

  // --- checkpoint audit -----------------------------------------------------

  OpOutcome ExecCheckpoint(const FleetOp& op, size_t step) {
    // 1. Inventory: the store holds exactly the shadow's live sets.
    Result<std::vector<SetSummary>> listed = ListAll();
    if (!listed.ok()) {
      Problem(step, op, "inventory: " + listed.status().ToString());
      return OpOutcome::kStop;
    }
    std::map<std::string, const SetSummary*> by_id;
    for (const SetSummary& summary : listed.ValueOrDie()) {
      by_id[summary.id] = &summary;
    }
    std::vector<uint64_t> live = shadow.Live();
    if (by_id.size() != live.size()) {
      Problem(step, op,
              StringFormat("store holds %zu sets, shadow predicts %zu",
                           by_id.size(), live.size()));
      return OpOutcome::kStop;
    }
    FleetRunReport::StorageSample sample;
    sample.step = step;
    sample.live_sets = live.size();
    for (uint64_t ordinal : live) {
      auto found = by_id.find(id_of[ordinal]);
      if (found == by_id.end()) {
        Problem(step, op, "store lost live set " + id_of[ordinal]);
        return OpOutcome::kStop;
      }
      const SetSummary& summary = *found->second;
      const FleetSymbolicState::SymSet& predicted = shadow.at(ordinal);
      if (summary.chain_depth != predicted.depth ||
          (summary.kind == "full") != predicted.is_full ||
          summary.approach != ApproachTypeName(predicted.approach)) {
        Problem(step, op,
                StringFormat("set %s is kind=%s depth=%llu approach=%s; "
                             "shadow predicts full=%d depth=%llu approach=%s",
                             summary.id.c_str(), summary.kind.c_str(),
                             static_cast<unsigned long long>(summary.chain_depth),
                             summary.approach.c_str(), predicted.is_full ? 1 : 0,
                             static_cast<unsigned long long>(predicted.depth),
                             ApproachTypeName(predicted.approach).c_str()));
        return OpOutcome::kStop;
      }
      // 2. Recorded depth matches the measured chain walk.
      Result<ChainInspection> inspected = InspectChainOf(summary.id);
      if (!inspected.ok()) {
        Problem(step, op, "chain walk of " + summary.id + ": " +
                              inspected.status().ToString());
        return OpOutcome::kStop;
      }
      if (!inspected.ValueOrDie().depth_matches()) {
        Problem(step, op,
                StringFormat("set %s records depth %llu but measures %llu",
                             summary.id.c_str(),
                             static_cast<unsigned long long>(
                                 inspected.ValueOrDie().recorded_depth),
                             static_cast<unsigned long long>(
                                 inspected.ValueOrDie().depth)));
        return OpOutcome::kStop;
      }
      sample.artifact_bytes += summary.artifact_bytes;
      if (summary.kind == "full") {
        sample.full_artifact_bytes += summary.artifact_bytes;
        ++sample.full_sets;
      }
    }
    report.storage.push_back(sample);

    // 3. Pins: the services' pin tables match the shadow exactly.
    std::set<std::string> pinned_ids;
    if (cluster != nullptr) {
      Result<ClusterStatus> status = cluster->StatusReport();
      if (!status.ok()) {
        Problem(step, op, "status report: " + status.status().ToString());
        return OpOutcome::kStop;
      }
      for (const ShardStatus& shard : status.ValueOrDie().shards) {
        pinned_ids.insert(shard.stats.pinned_sets.begin(),
                          shard.stats.pinned_sets.end());
      }
    } else {
      std::vector<std::string> pinned = service->PinnedSets();
      pinned_ids.insert(pinned.begin(), pinned.end());
    }
    std::set<std::string> expect_pinned;
    for (uint64_t pinned : shadow.Pinned()) expect_pinned.insert(id_of[pinned]);
    if (pinned_ids != expect_pinned) {
      Problem(step, op, "pinned sets {" + JoinIds(pinned_ids) +
                            "}, shadow predicts {" + JoinIds(expect_pinned) +
                            "}");
      return OpOutcome::kStop;
    }

    // 4. Integrity: journal repair, validation, orphan scan.
    std::string fsck = FsckProblem();
    if (!fsck.empty()) {
      Problem(step, op, "fsck: " + fsck);
      return OpOutcome::kStop;
    }

    // 5. Deep audit: every live set recovers bit-exactly via serving.
    if (options.deep_checkpoints && !live.empty()) {
      std::vector<std::string> ids;
      for (uint64_t ordinal : live) ids.push_back(id_of[ordinal]);
      std::vector<ModelSet> recovered;
      std::vector<ServeResult> results = ReplayIds(ids, &recovered);
      for (size_t i = 0; i < ids.size(); ++i) {
        if (!results[i].status.ok()) {
          Problem(step, op, "audit recovery of " + ids[i] + " failed: " +
                                results[i].status.ToString());
          return OpOutcome::kStop;
        }
        std::string diff = DiffSets(recovered[i], engine->ExpectedSet(live[i]));
        if (!diff.empty()) {
          Problem(step, op,
                  "audit recovery of " + ids[i] + " not bit-exact: " + diff);
          return OpOutcome::kStop;
        }
        report.recover_modeled_nanos.push_back(results[i].modeled_store_nanos);
        ++report.recoveries;
      }
    }
    return OpOutcome::kExecuted;
  }

  Result<ChainInspection> InspectChainOf(const std::string& id) {
    if (cluster == nullptr) {
      return InspectChain(manager->context(), id);
    }
    MMM_ASSIGN_OR_RETURN(std::string owner, cluster->OwnerOf(id));
    Shard* shard = cluster->shard(owner);
    if (shard == nullptr) return Status::Internal("shard ", owner, " vanished");
    return InspectChain(shard->manager()->context(), id);
  }

  // --- dispatch -------------------------------------------------------------

  OpOutcome ExecuteOp(const FleetOp& op, size_t step) {
    switch (op.kind) {
      case FleetOpKind::kSaveInitial:
      case FleetOpKind::kSaveDerived:
        return ExecSave(op, step);
      case FleetOpKind::kRecoverBurst:
        return ExecRecoverBurst(op, step);
      case FleetOpKind::kPinSet:
        return ExecPin(op, step);
      case FleetOpKind::kUnpinSet:
        return ExecUnpin(op, step);
      case FleetOpKind::kDeleteSet:
        return ExecDelete(op, step);
      case FleetOpKind::kRetainOnly:
        return ExecRetain(op, step);
      case FleetOpKind::kCompactChains:
        return ExecCompact(op, step);
      case FleetOpKind::kCheckpoint:
        return ExecCheckpoint(op, step);
      case FleetOpKind::kKillShard:
        return ExecKillShard(op, step);
      case FleetOpKind::kAddShard:
        return ExecAddShard(op, step);
      case FleetOpKind::kRebalance:
        return ExecRebalance(op, step);
    }
    return OpOutcome::kSkipped;
  }
};

// --- FleetSimulator ---------------------------------------------------------

FleetSimulator::FleetSimulator(FleetPlan plan, FleetSimOptions options)
    : plan_(std::move(plan)), options_(std::move(options)) {
  FleetContentEngine::Config content;
  content.seed = plan_.config.seed;
  content.models_per_set = plan_.config.models_per_set;
  content.samples_per_dataset = plan_.config.samples_per_dataset;
  content.full_update_fraction = plan_.config.full_update_fraction;
  content.partial_update_fraction = plan_.config.partial_update_fraction;
  engine_ = std::make_unique<FleetContentEngine>(content);
}

FleetSimulator::~FleetSimulator() = default;

Result<FleetRunReport> FleetSimulator::Run() { return RunOps(plan_.ops); }

Result<FleetRunReport> FleetSimulator::RunOps(const std::vector<FleetOp>& ops) {
  world_ = std::make_unique<World>(plan_.config, options_, engine_.get());
  MMM_RETURN_NOT_OK(world_->OpenBackend());
  for (size_t step = 0; step < ops.size(); ++step) {
    World::OpOutcome outcome = world_->ExecuteOp(ops[step], step);
    if (outcome == World::OpOutcome::kStop) break;
    if (outcome == World::OpOutcome::kSkipped) {
      ++world_->report.ops_skipped;
      continue;
    }
    ++world_->report.ops_executed;
    // Per-step chunk-refcount oracle (no-op unless CAS is on, un-sharded).
    std::string chunk_problem = world_->ChunkOracleProblem();
    if (!chunk_problem.empty()) {
      world_->Problem(step, ops[step], "chunk oracle: " + chunk_problem);
      break;
    }
    if (options_.synthetic_fault) {
      std::string injected = options_.synthetic_fault(ops[step], step);
      if (!injected.empty()) {
        world_->Problem(step, ops[step], "synthetic: " + injected);
        break;
      }
    }
  }
  world_->report.live_sets_final = world_->shadow.Live().size();
  return world_->report;
}

Result<ModelSet> FleetSimulator::RecoverOrdinal(uint64_t ordinal) {
  if (world_ == nullptr) return Status::InvalidArgument("no run yet");
  if (!world_->Usable(ordinal)) {
    return Status::NotFound("ordinal ", std::to_string(ordinal),
                            " is not live");
  }
  const std::string& id = world_->id_of[ordinal];
  if (world_->cluster != nullptr) return world_->cluster->Recover(id);
  return world_->service->Recover(id);
}

Result<std::vector<SetSummary>> FleetSimulator::LiveSummaries() {
  if (world_ == nullptr) return Status::InvalidArgument("no run yet");
  MMM_ASSIGN_OR_RETURN(std::vector<SetSummary> listed, world_->ListAll());
  std::sort(listed.begin(), listed.end(),
            [&](const SetSummary& a, const SetSummary& b) {
              return world_->ordinal_of[a.id] < world_->ordinal_of[b.id];
            });
  return listed;
}

std::vector<uint64_t> FleetSimulator::LiveOrdinals() const {
  if (world_ == nullptr) return {};
  return world_->shadow.Live();
}

}  // namespace mmm
