#include "nn/model.h"

#include "nn/init.h"

namespace mmm {

Result<Model> Model::Create(const ArchitectureSpec& spec) {
  MMM_ASSIGN_OR_RETURN(std::unique_ptr<Sequential> network, spec.Build());
  return Model(spec, std::move(network));
}

Result<Model> Model::CreateInitialized(const ArchitectureSpec& spec,
                                       uint64_t seed) {
  MMM_ASSIGN_OR_RETURN(Model model, Create(spec));
  Rng rng = Rng(seed).Fork("init");
  InitNetwork(model.network(), &rng);
  return model;
}

StateDict Model::GetStateDict() const {
  StateDict state;
  for (const NamedParameter& named : network_->NamedParameters()) {
    state.emplace_back(named.qualified_name, named.parameter->value);
  }
  return state;
}

Status Model::LoadStateDict(const StateDict& state) {
  std::vector<NamedParameter> named = network_->NamedParameters();
  if (named.size() != state.size()) {
    return Status::InvalidArgument("state dict has ", state.size(),
                                   " entries, model expects ", named.size());
  }
  for (size_t i = 0; i < named.size(); ++i) {
    if (named[i].qualified_name != state[i].first) {
      return Status::InvalidArgument("state dict key mismatch at ", i, ": '",
                                     state[i].first, "' vs '",
                                     named[i].qualified_name, "'");
    }
    if (named[i].parameter->value.shape() != state[i].second.shape()) {
      return Status::InvalidArgument("state dict shape mismatch for '",
                                     state[i].first, "'");
    }
  }
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].parameter->value = state[i].second;
  }
  return Status::OK();
}

Result<Model> Model::Clone() const {
  MMM_ASSIGN_OR_RETURN(Model copy, Create(spec_));
  MMM_RETURN_NOT_OK(copy.LoadStateDict(GetStateDict()));
  return copy;
}

}  // namespace mmm
