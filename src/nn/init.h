#ifndef MMM_NN_INIT_H_
#define MMM_NN_INIT_H_

#include "common/rng.h"
#include "nn/sequential.h"

namespace mmm {

/// \file
/// Deterministic parameter initialization. Every initializer consumes an Rng
/// stream; the stream's seed is recorded in the training provenance so the
/// Provenance approach can reproduce initial parameters exactly.

/// Uniform in [-bound, bound].
void InitUniform(Tensor* tensor, Rng* rng, float bound);

/// Glorot/Xavier uniform given fan-in and fan-out.
void InitXavierUniform(Tensor* tensor, Rng* rng, size_t fan_in, size_t fan_out);

/// Kaiming/He uniform given fan-in (for ReLU networks).
void InitKaimingUniform(Tensor* tensor, Rng* rng, size_t fan_in);

/// Initializes every layer of `network` in order: weights Xavier-uniform
/// (fan sizes derived from the parameter shape), biases uniform in
/// [-1/sqrt(fan_in), 1/sqrt(fan_in)] (PyTorch's Linear default).
void InitNetwork(Sequential* network, Rng* rng);

}  // namespace mmm

#endif  // MMM_NN_INIT_H_
