#include <gtest/gtest.h>

#include "core/manager.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

// Shared fixture: a small battery scenario advanced through two update
// cycles, managed by every approach.
class ApproachTest : public ::testing::Test {
 protected:
  ApproachTest() : temp_("approach") {}

  void OpenManager(ScenarioConfig scenario_config = ScenarioConfig::Battery(40),
                   UpdateApproachOptions update_options = {},
                   ProvenanceRecoverOptions prov_options = {}) {
    scenario_config.samples_per_dataset = 64;
    scenario_ = std::make_unique<MultiModelScenario>(scenario_config);
    ASSERT_OK(scenario_->Init());
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    options.update_options = update_options;
    options.provenance_recover_options = prov_options;
    ASSERT_OK_AND_ASSIGN(manager_, ModelSetManager::Open(options));
  }

  // Saves the current scenario state with `type`, deriving from the
  // approach's chain head when one exists.
  SaveResult Save(ApproachType type, const ModelSetUpdateInfo* update) {
    Result<SaveResult> saved =
        update == nullptr
            ? manager_->SaveInitial(type, scenario_->current_set())
            : [&] {
                ModelSetUpdateInfo derived = *update;
                derived.base_set_id = heads_[type];
                return manager_->SaveDerived(type, scenario_->current_set(),
                                             derived);
              }();
    saved.status().Check();
    heads_[type] = saved.ValueOrDie().set_id;
    return saved.ValueOrDie();
  }

  void ExpectSetEquals(const ModelSet& recovered, const ModelSet& expected) {
    ASSERT_EQ(recovered.models.size(), expected.models.size());
    ASSERT_EQ(recovered.spec, expected.spec);
    for (size_t m = 0; m < recovered.models.size(); ++m) {
      ASSERT_EQ(recovered.models[m].size(), expected.models[m].size());
      for (size_t p = 0; p < recovered.models[m].size(); ++p) {
        ASSERT_EQ(recovered.models[m][p].first, expected.models[m][p].first);
        ASSERT_TRUE(
            recovered.models[m][p].second.Equals(expected.models[m][p].second))
            << "model " << m << " param " << recovered.models[m][p].first;
      }
    }
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
  std::map<ApproachType, std::string> heads_;
};

// ---------------------------------------------------------------------------
// Round trips, parameterized over all approaches.

class ApproachSweep : public ApproachTest,
                      public ::testing::WithParamInterface<ApproachType> {};

TEST_P(ApproachSweep, InitialSaveRecoverRoundTrip) {
  OpenManager();
  Save(GetParam(), nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSet recovered,
                       manager_->Recover(heads_[GetParam()]));
  ExpectSetEquals(recovered, scenario_->current_set());
}

TEST_P(ApproachSweep, DerivedSaveRecoverRoundTrip) {
  OpenManager();
  Save(GetParam(), nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  Save(GetParam(), &update);
  ASSERT_OK_AND_ASSIGN(ModelSet recovered,
                       manager_->Recover(heads_[GetParam()]));
  ExpectSetEquals(recovered, scenario_->current_set());
}

TEST_P(ApproachSweep, ThreeCycleChainRecovers) {
  OpenManager();
  Save(GetParam(), nullptr);
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    Save(GetParam(), &update);
  }
  RecoverStats stats;
  ASSERT_OK_AND_ASSIGN(ModelSet recovered,
                       manager_->Recover(heads_[GetParam()], &stats));
  ExpectSetEquals(recovered, scenario_->current_set());
  bool recursive = GetParam() == ApproachType::kUpdate ||
                   GetParam() == ApproachType::kProvenance;
  EXPECT_EQ(stats.sets_recovered, recursive ? 4u : 1u);
}

TEST_P(ApproachSweep, IntermediateSetsRemainRecoverable) {
  OpenManager();
  Save(GetParam(), nullptr);
  std::string u1_id = heads_[GetParam()];
  ModelSet u1_state = scenario_->current_set();  // deep copy
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  Save(GetParam(), &update);
  // Saving U3-1 must not disturb U1's recoverability.
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager_->Recover(u1_id));
  ExpectSetEquals(recovered, u1_state);
}

TEST_P(ApproachSweep, RecoverUnknownIdFails) {
  OpenManager();
  Save(GetParam(), nullptr);
  EXPECT_TRUE(manager_->Recover("set-999999-deadbeef").status().IsNotFound());
}

TEST_P(ApproachSweep, WrongApproachRejectsForeignSet) {
  OpenManager();
  Save(GetParam(), nullptr);
  for (ApproachType other : kAllApproaches) {
    if (other == GetParam()) continue;
    EXPECT_TRUE(manager_->approach(other)
                    ->Recover(heads_[GetParam()])
                    .status()
                    .IsInvalidArgument());
  }
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, ApproachSweep,
                         ::testing::Values(ApproachType::kMMlibBase,
                                           ApproachType::kBaseline,
                                           ApproachType::kUpdate,
                                           ApproachType::kProvenance),
                         [](const auto& info) {
                           std::string name = ApproachTypeName(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ---------------------------------------------------------------------------
// Storage characteristics (paper §4.2 in miniature).

TEST_F(ApproachTest, BaselineUsesFewerBytesAndWritesThanMMlib) {
  OpenManager();
  SaveResult mmlib = Save(ApproachType::kMMlibBase, nullptr);
  SaveResult baseline = Save(ApproachType::kBaseline, nullptr);
  EXPECT_LT(baseline.bytes_written, mmlib.bytes_written);
  EXPECT_LT(baseline.file_store_writes, mmlib.file_store_writes);
  EXPECT_LE(baseline.file_store_writes, 2u);
  EXPECT_EQ(baseline.doc_store_writes, 1u);
  // MMlib-base writes per model: weights + code files, metadata doc.
  EXPECT_EQ(mmlib.file_store_writes, 2u * 40);
  EXPECT_EQ(mmlib.doc_store_writes, 40u + 1);
}

TEST_F(ApproachTest, UpdateDeltaIsMuchSmallerThanFullSnapshot) {
  OpenManager();
  SaveResult initial = Save(ApproachType::kUpdate, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  SaveResult delta = Save(ApproachType::kUpdate, &update);
  EXPECT_LT(delta.bytes_written, initial.bytes_written / 2);
}

TEST_F(ApproachTest, ProvenanceDerivedSaveIsTiny) {
  OpenManager();
  SaveResult initial = Save(ApproachType::kProvenance, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  SaveResult derived = Save(ApproachType::kProvenance, &update);
  EXPECT_LT(derived.bytes_written, initial.bytes_written / 20);
}

TEST_F(ApproachTest, UpdateDiffContainsExactlyChangedTensors) {
  // 40 models, 5% full (2 models -> 8 tensors) + 5% partial (2 models,
  // fc3+fc4 -> 4 tensors each): 16 changed tensors total.
  OpenManager();
  Save(ApproachType::kUpdate, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  size_t full_models = 0, partial_models = 0;
  for (UpdateKind kind : update.kinds) {
    full_models += kind == UpdateKind::kFull;
    partial_models += kind == UpdateKind::kPartial;
  }
  EXPECT_EQ(full_models, 2u);
  EXPECT_EQ(partial_models, 2u);
  SaveResult delta = Save(ApproachType::kUpdate, &update);
  // Expected payload: 2 full models (4993 floats) + 2 partial models
  // (fc3: 48x48+48, fc4: 48+1 = 2401 floats) + hash table + diff list + doc.
  uint64_t expected_floats = 2 * 4993 + 2 * 2401;
  uint64_t hash_bytes = 40 * 8 * 32;
  EXPECT_NEAR(static_cast<double>(delta.bytes_written),
              static_cast<double>(expected_floats * 4 + hash_bytes),
              2500.0);  // diff list, metadata doc, blob headers
}

TEST_F(ApproachTest, UpdateWithNoChangesProducesEmptyDiff) {
  OpenManager();
  Save(ApproachType::kUpdate, nullptr);
  ModelSetUpdateInfo update;  // no models actually changed
  SaveResult delta = Save(ApproachType::kUpdate, &update);
  // Hash blob dominates; diff payload is empty.
  EXPECT_LT(delta.bytes_written, 40u * 8 * 32 + 2000);
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager_->Recover(heads_[ApproachType::kUpdate]));
  ExpectSetEquals(recovered, scenario_->current_set());
}

// ---------------------------------------------------------------------------
// Update approach specifics.

TEST_F(ApproachTest, UpdateRequiresBaseSetId) {
  OpenManager();
  ModelSetUpdateInfo update;
  EXPECT_TRUE(manager_
                  ->SaveDerived(ApproachType::kUpdate, scenario_->current_set(),
                                update)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ApproachTest, UpdateRejectsForeignBase) {
  OpenManager();
  Save(ApproachType::kBaseline, nullptr);
  ModelSetUpdateInfo update;
  update.base_set_id = heads_[ApproachType::kBaseline];
  EXPECT_TRUE(manager_
                  ->SaveDerived(ApproachType::kUpdate, scenario_->current_set(),
                                update)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ApproachTest, UpdateRejectsModelCountChange) {
  OpenManager();
  Save(ApproachType::kUpdate, nullptr);
  ModelSet smaller = scenario_->current_set();
  smaller.models.pop_back();
  ModelSetUpdateInfo update;
  update.base_set_id = heads_[ApproachType::kUpdate];
  EXPECT_TRUE(manager_->SaveDerived(ApproachType::kUpdate, smaller, update)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ApproachTest, SnapshotIntervalBoundsChainDepth) {
  UpdateApproachOptions options;
  options.snapshot_interval = 2;
  OpenManager(ScenarioConfig::Battery(20), options);
  Save(ApproachType::kUpdate, nullptr);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    Save(ApproachType::kUpdate, &update);
  }
  RecoverStats stats;
  ASSERT_OK_AND_ASSIGN(ModelSet recovered,
                       manager_->Recover(heads_[ApproachType::kUpdate], &stats));
  ExpectSetEquals(recovered, scenario_->current_set());
  // With snapshots every 2 deltas, recovery never walks more than 2 sets.
  EXPECT_LE(stats.sets_recovered, 2u);
}

// ---------------------------------------------------------------------------
// Provenance approach specifics.

TEST_F(ApproachTest, ProvenanceRequiresUpdateMetadata) {
  OpenManager();
  Save(ApproachType::kProvenance, nullptr);
  ModelSetUpdateInfo update;
  update.base_set_id = heads_[ApproachType::kProvenance];
  // Missing kinds/pipeline.
  EXPECT_TRUE(manager_
                  ->SaveDerived(ApproachType::kProvenance,
                                scenario_->current_set(), update)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ApproachTest, ProvenanceRequiresDataRefsForUpdatedModels) {
  OpenManager();
  Save(ApproachType::kProvenance, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  update.base_set_id = heads_[ApproachType::kProvenance];
  // Blank out a data ref of an updated model.
  for (size_t i = 0; i < update.kinds.size(); ++i) {
    if (update.kinds[i] != UpdateKind::kNone) {
      update.data_refs[i].uri.clear();
      break;
    }
  }
  EXPECT_TRUE(manager_
                  ->SaveDerived(ApproachType::kProvenance,
                                scenario_->current_set(), update)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ApproachTest, ProvenanceReplayIsBitExactOverTwoCycles) {
  OpenManager();
  Save(ApproachType::kProvenance, nullptr);
  for (int i = 0; i < 2; ++i) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    Save(ApproachType::kProvenance, &update);
  }
  RecoverStats stats;
  ASSERT_OK_AND_ASSIGN(
      ModelSet recovered,
      manager_->Recover(heads_[ApproachType::kProvenance], &stats));
  ExpectSetEquals(recovered, scenario_->current_set());
  EXPECT_EQ(stats.sets_recovered, 3u);
  EXPECT_EQ(stats.models_retrained, 8u);  // 4 updated models x 2 cycles
}

TEST_F(ApproachTest, ProvenanceCappedRecoveryIsApproximate) {
  ProvenanceRecoverOptions prov;
  prov.max_replay_models = 1;
  prov.max_replay_samples = 16;
  OpenManager(ScenarioConfig::Battery(40), {}, prov);
  Save(ApproachType::kProvenance, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  Save(ApproachType::kProvenance, &update);
  RecoverStats stats;
  ASSERT_OK_AND_ASSIGN(
      ModelSet recovered,
      manager_->Recover(heads_[ApproachType::kProvenance], &stats));
  EXPECT_EQ(stats.models_retrained, 1u);  // measurement protocol
  EXPECT_EQ(recovered.models.size(), scenario_->current_set().models.size());
}

TEST_F(ApproachTest, ProvenanceRecoveryFailsWhenDataChanged) {
  OpenManager();
  Save(ApproachType::kProvenance, nullptr);
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  // Tamper with a content hash to emulate externally-changed data.
  for (size_t i = 0; i < update.kinds.size(); ++i) {
    if (update.kinds[i] != UpdateKind::kNone) {
      update.data_refs[i].content_hash = std::string(64, 'f');
      break;
    }
  }
  Save(ApproachType::kProvenance, &update);
  EXPECT_TRUE(manager_->Recover(heads_[ApproachType::kProvenance])
                  .status()
                  .IsCorruption());
}

// ---------------------------------------------------------------------------
// Fault injection: a failed save surfaces as an error, not silent corruption.

TEST_F(ApproachTest, FailedWriteSurfacesIOError) {
  ScenarioConfig config = ScenarioConfig::Battery(10);
  config.samples_per_dataset = 32;
  scenario_ = std::make_unique<MultiModelScenario>(config);
  ASSERT_OK(scenario_->Init());

  FaultInjectionEnv fault_env(Env::Default());
  ModelSetManager::Options options;
  options.root_dir = temp_.path() + "/faulty";
  options.env = &fault_env;
  options.resolver = scenario_.get();
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));

  fault_env.FailWritesAfter(fault_env.write_count() + 1);
  EXPECT_TRUE(manager->SaveInitial(ApproachType::kBaseline,
                                   scenario_->current_set())
                  .status()
                  .IsIOError());
  fault_env.Heal();
  EXPECT_OK(manager->SaveInitial(ApproachType::kBaseline,
                                 scenario_->current_set())
                .status());
}

}  // namespace
}  // namespace mmm
