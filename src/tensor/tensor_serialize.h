#ifndef MMM_TENSOR_TENSOR_SERIALIZE_H_
#define MMM_TENSOR_TENSOR_SERIALIZE_H_

#include "common/result.h"
#include "serialize/binary_io.h"
#include "tensor/tensor.h"

namespace mmm {

/// Writes a tensor as: varint ndim, varint dims..., raw float32 data.
void WriteTensor(BinaryWriter* writer, const Tensor& tensor);

/// Inverse of WriteTensor.
Result<Tensor> ReadTensor(BinaryReader* reader);

}  // namespace mmm

#endif  // MMM_TENSOR_TENSOR_SERIALIZE_H_
