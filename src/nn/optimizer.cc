#include "nn/optimizer.h"

#include <cmath>

namespace mmm {

SGD::SGD(std::vector<Parameter*> parameters, float learning_rate, float momentum,
         float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(parameters_.size());
    for (Parameter* p : parameters_) velocity_.emplace_back(p->value.shape());
  }
}

void SGD::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Parameter* p = parameters_[i];
    if (!p->trainable) continue;
    auto value = p->value.mutable_data();
    auto grad = p->grad.data();
    if (momentum_ == 0.0f) {
      for (size_t j = 0; j < value.size(); ++j) {
        float g = grad[j] + weight_decay_ * value[j];
        value[j] -= learning_rate_ * g;
      }
    } else {
      auto velocity = velocity_[i].mutable_data();
      for (size_t j = 0; j < value.size(); ++j) {
        float g = grad[j] + weight_decay_ * value[j];
        velocity[j] = momentum_ * velocity[j] + g;
        value[j] -= learning_rate_ * velocity[j];
      }
    }
  }
}

Adam::Adam(std::vector<Parameter*> parameters, float learning_rate, float beta1,
           float beta2, float epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  first_moment_.reserve(parameters_.size());
  second_moment_.reserve(parameters_.size());
  for (Parameter* p : parameters_) {
    first_moment_.emplace_back(p->value.shape());
    second_moment_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Parameter* p = parameters_[i];
    if (!p->trainable) continue;
    auto value = p->value.mutable_data();
    auto grad = p->grad.data();
    auto m = first_moment_[i].mutable_data();
    auto v = second_moment_[i].mutable_data();
    for (size_t j = 0; j < value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      float m_hat = m[j] / bias1;
      float v_hat = v[j] / bias2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace mmm
