#include "nn/activations.h"

#include <cmath>

#include "tensor/ops.h"

namespace mmm {

Tensor Tanh::Forward(const Tensor& input) {
  cached_output_ = Map(input, [](float x) { return std::tanh(x); });
  return cached_output_;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  MMM_DCHECK(grad_output.shape() == cached_output_.shape());
  Tensor grad = grad_output;
  auto g = grad.mutable_data();
  auto y = cached_output_.data();
  for (size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return grad;
}

Tensor ReLU::Forward(const Tensor& input) {
  cached_input_ = input;
  return Map(input, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  MMM_DCHECK(grad_output.shape() == cached_input_.shape());
  Tensor grad = grad_output;
  auto g = grad.mutable_data();
  auto x = cached_input_.data();
  for (size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad;
}

Tensor Sigmoid::Forward(const Tensor& input) {
  cached_output_ = Map(input, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  return cached_output_;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  MMM_DCHECK(grad_output.shape() == cached_output_.shape());
  Tensor grad = grad_output;
  auto g = grad.mutable_data();
  auto y = cached_output_.data();
  for (size_t i = 0; i < g.size(); ++i) g[i] *= y[i] * (1.0f - y[i]);
  return grad;
}

}  // namespace mmm
