#include "nn/sequential.h"

#include <algorithm>

namespace mmm {

Module* Sequential::Add(std::string name, std::unique_ptr<Module> module) {
  MMM_DCHECK(!name.empty() && name.find('.') == std::string::npos);
  for (const auto& [existing, _] : children_) {
    MMM_DCHECK(existing != name);
  }
  children_.emplace_back(std::move(name), std::move(module));
  return children_.back().second.get();
}

Tensor Sequential::Forward(const Tensor& input) {
  Tensor activation = input;
  for (auto& [_, child] : children_) {
    activation = child->Forward(activation);
  }
  return activation;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    grad = it->second->Backward(grad);
  }
  return grad;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (auto& [_, child] : children_) {
    for (Parameter* p : child->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<NamedParameter> Sequential::NamedParameters() {
  std::vector<NamedParameter> named;
  for (auto& [name, child] : children_) {
    for (Parameter* p : child->Parameters()) {
      named.push_back({name + "." + p->name, p});
    }
  }
  return named;
}

Result<Module*> Sequential::Child(const std::string& name) {
  for (auto& [child_name, child] : children_) {
    if (child_name == name) return child.get();
  }
  return Status::NotFound("sequential has no child '", name, "'");
}

size_t Sequential::ParameterCount() {
  size_t count = 0;
  for (Parameter* p : Parameters()) count += p->value.numel();
  return count;
}

void Sequential::ZeroGrad() {
  for (Parameter* p : Parameters()) p->ZeroGrad();
}

Status Sequential::SetTrainableLayers(const std::vector<std::string>& layers) {
  if (layers.empty()) {
    for (Parameter* p : Parameters()) p->trainable = true;
    return Status::OK();
  }
  for (const std::string& layer : layers) {
    bool found = false;
    for (const auto& [child_name, _] : children_) {
      if (child_name == layer) {
        found = true;
        break;
      }
    }
    if (!found) return Status::InvalidArgument("unknown layer '", layer, "'");
  }
  for (auto& [child_name, child] : children_) {
    bool trainable =
        std::find(layers.begin(), layers.end(), child_name) != layers.end();
    for (Parameter* p : child->Parameters()) p->trainable = trainable;
  }
  return Status::OK();
}

}  // namespace mmm
