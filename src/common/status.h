#ifndef MMM_COMMON_STATUS_H_
#define MMM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mmm {

/// Error category of a Status. Mirrors the Arrow/RocksDB convention of a small
/// closed set of codes plus a human-readable message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kOutOfRange = 8,
};

/// \brief Returns the canonical lowercase name of a status code
/// (e.g. "invalid-argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a message.
///
/// The library does not throw exceptions; every fallible public API returns a
/// Status (or a Result<T>, see result.h). Statuses are cheap to copy in the OK
/// case (no allocation) and carry an allocated message otherwise.
///
/// Typical use:
/// \code
///   Status DoWork() {
///     MMM_RETURN_NOT_OK(Step1());
///     if (bad) return Status::InvalidArgument("bad input: ", detail);
///     return Status::OK();
///   }
/// \endcode
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK (success) status.
  static Status OK() { return Status(); }

  /// \name Factory functions, one per error code.
  /// Each concatenates its arguments into the message via operator<<.
  /// @{
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Build(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Build(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Build(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Build(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Corruption(Args&&... args) {
    return Build(StatusCode::kCorruption, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Build(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Build(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Build(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  /// @}

  /// Returns true iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prepends context to the message, keeping the code. Returns *this
  /// to allow `return st.WithContext("while saving set ", id);`.
  template <typename... Args>
  Status WithContext(Args&&... args) const {
    if (ok()) return *this;
    Status out = Build(code_, std::forward<Args>(args)...);
    out.message_ += ": " + message_;
    return out;
  }

  /// Aborts the process if the status is not OK. Use only in tests, examples,
  /// and benchmark drivers where failure is unrecoverable.
  void Check() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  template <typename... Args>
  static Status Build(StatusCode code, Args&&... args) {
    std::string msg;
    (AppendToMessage(&msg, std::forward<Args>(args)), ...);
    return Status(code, std::move(msg));
  }

  template <typename T>
  static void AppendToMessage(std::string* msg, T&& part) {
    if constexpr (std::is_convertible_v<T, std::string_view>) {
      msg->append(std::string_view(part));
    } else {
      msg->append(std::to_string(part));
    }
  }

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mmm

/// Propagates a non-OK Status to the caller.
#define MMM_RETURN_NOT_OK(expr)                    \
  do {                                             \
    ::mmm::Status _mmm_status = (expr);            \
    if (!_mmm_status.ok()) return _mmm_status;     \
  } while (false)

#define MMM_CONCAT_IMPL(x, y) x##y
#define MMM_CONCAT(x, y) MMM_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success binds the value to
/// `lhs`, on failure returns the error status to the caller.
#define MMM_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto MMM_CONCAT(_mmm_result_, __LINE__) = (rexpr);              \
  if (!MMM_CONCAT(_mmm_result_, __LINE__).ok())                   \
    return MMM_CONCAT(_mmm_result_, __LINE__).status();           \
  lhs = std::move(MMM_CONCAT(_mmm_result_, __LINE__)).ValueOrDie()

#endif  // MMM_COMMON_STATUS_H_
