#include "parser.h"

#include <algorithm>
#include <cstdlib>

namespace mmmsa {
namespace {

const Token* At(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() ? &toks[i] : nullptr;
}

bool IsIdent(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kIdent && t->text == text;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

bool IsAnyIdent(const Token* t) {
  return t != nullptr && t->kind == TokenKind::kIdent;
}

size_t SkipParens(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i + 1;
  }
  return toks.size();
}

size_t SkipBraces(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Past a balanced `< ... >` group ("<" at `open`), counting ">>" as two
/// closers. Gives up (returns open+1) if the group does not close within the
/// same statement-ish window — `<` was a comparison, not a template.
size_t SkipAngles(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "<") ++depth;
    if (toks[i].text == ">" && --depth == 0) return i + 1;
    if (toks[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
    if (toks[i].text == ";" || toks[i].text == "{") break;
  }
  return open + 1;
}

bool IsTypeNoiseIdent(const std::string& s) {
  static const std::set<std::string> kNoise = {
      "const",    "mutable",  "static",   "constexpr", "inline", "volatile",
      "unsigned", "signed",   "long",     "short",     "int",    "char",
      "bool",     "float",    "double",   "void",      "auto",   "std",
      "size_t",   "uint64_t", "int64_t",  "uint32_t",  "int32_t", "uint8_t",
      "int8_t",   "uint16_t", "int16_t",  "typename",  "struct", "class",
      "explicit", "virtual",  "friend",   "extern",    "using",  "operator",
  };
  return kNoise.count(s) != 0;
}

// ---------------------------------------------------------------------------
// Statement parsing.

std::vector<Stmt> ParseStmts(const std::vector<Token>& toks, size_t begin,
                             size_t end);

/// Consumes one plain statement [i, ...) up to `;` at paren depth 0,
/// swallowing balanced brace groups (lambda bodies, init lists) along the
/// way. Stops before an unbalanced `}`.
size_t ConsumePlain(const std::vector<Token>& toks, size_t i, size_t end,
                    std::vector<Token>* out) {
  int paren = 0;
  while (i < end) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(") ++paren;
      if (t.text == ")") --paren;
      if (t.text == "{") {
        size_t close = SkipBraces(toks, i);
        out->insert(out->end(), toks.begin() + i, toks.begin() + close);
        i = close;
        continue;
      }
      if (t.text == "}" && paren <= 0) return i;  // unbalanced: block end
      if (t.text == ";" && paren <= 0) {
        out->push_back(t);
        return i + 1;
      }
    }
    out->push_back(t);
    ++i;
  }
  return i;
}

size_t ParseOneStmt(const std::vector<Token>& toks, size_t i, size_t end,
                    std::vector<Stmt>* out);

/// Parses either a `{ ... }` block or a single statement into `*body`.
size_t ParseBody(const std::vector<Token>& toks, size_t i, size_t end,
                 std::vector<Stmt>* body) {
  if (i < end && IsPunct(&toks[i], "{")) {
    size_t close = SkipBraces(toks, i);
    *body = ParseStmts(toks, i + 1, close > i ? close - 1 : i + 1);
    return close;
  }
  return ParseOneStmt(toks, i, end, body);
}

size_t ParseOneStmt(const std::vector<Token>& toks, size_t i, size_t end,
                    std::vector<Stmt>* out) {
  while (i < end && IsPunct(&toks[i], ";")) ++i;  // stray semicolons
  if (i >= end) return i;
  const Token& t = toks[i];

  // Labels: `case <expr>:`, `default:`, `name:` — skip and parse what
  // follows as the statement proper.
  if (IsIdent(&t, "case")) {
    size_t j = i + 1;
    while (j < end && !IsPunct(&toks[j], ":")) ++j;
    return ParseOneStmt(toks, j + 1, end, out);
  }
  if (IsIdent(&t, "default") && IsPunct(At(toks, i + 1), ":")) {
    return ParseOneStmt(toks, i + 2, end, out);
  }

  if (IsIdent(&t, "if")) {
    Stmt s;
    s.kind = Stmt::Kind::kIf;
    s.line = t.line;
    size_t j = i + 1;
    if (IsIdent(At(toks, j), "constexpr")) ++j;
    if (IsPunct(At(toks, j), "(")) {
      size_t close = SkipParens(toks, j);
      s.tokens.assign(toks.begin() + j + 1, toks.begin() + (close - 1));
      j = close;
    }
    j = ParseBody(toks, j, end, &s.body);
    if (IsIdent(At(toks, j), "else")) {
      s.has_else = true;
      j = ParseBody(toks, j + 1, end, &s.else_body);
    }
    out->push_back(std::move(s));
    return j;
  }

  if (IsIdent(&t, "while") || IsIdent(&t, "for")) {
    Stmt s;
    s.kind = Stmt::Kind::kLoop;
    s.line = t.line;
    size_t j = i + 1;
    if (IsPunct(At(toks, j), "(")) {
      size_t close = SkipParens(toks, j);
      s.tokens.assign(toks.begin() + j + 1, toks.begin() + (close - 1));
      j = close;
    }
    j = ParseBody(toks, j, end, &s.body);
    out->push_back(std::move(s));
    return j;
  }

  if (IsIdent(&t, "do")) {
    Stmt s;
    s.kind = Stmt::Kind::kLoop;
    s.line = t.line;
    size_t j = ParseBody(toks, i + 1, end, &s.body);
    if (IsIdent(At(toks, j), "while") && IsPunct(At(toks, j + 1), "(")) {
      size_t close = SkipParens(toks, j + 1);
      s.tokens.assign(toks.begin() + j + 2, toks.begin() + (close - 1));
      j = close;
      if (IsPunct(At(toks, j), ";")) ++j;
    }
    out->push_back(std::move(s));
    return j;
  }

  if (IsIdent(&t, "switch")) {
    Stmt s;
    s.kind = Stmt::Kind::kSwitch;
    s.line = t.line;
    size_t j = i + 1;
    if (IsPunct(At(toks, j), "(")) {
      size_t close = SkipParens(toks, j);
      s.tokens.assign(toks.begin() + j + 1, toks.begin() + (close - 1));
      j = close;
    }
    j = ParseBody(toks, j, end, &s.body);
    out->push_back(std::move(s));
    return j;
  }

  if (IsIdent(&t, "return")) {
    Stmt s;
    s.kind = Stmt::Kind::kReturn;
    s.line = t.line;
    size_t j = ConsumePlain(toks, i, end, &s.tokens);
    out->push_back(std::move(s));
    return j;
  }

  if (IsIdent(&t, "break") || IsIdent(&t, "continue")) {
    Stmt s;
    s.kind = IsIdent(&t, "break") ? Stmt::Kind::kBreak : Stmt::Kind::kContinue;
    s.line = t.line;
    s.tokens.push_back(t);
    size_t j = i + 1;
    if (IsPunct(At(toks, j), ";")) ++j;
    out->push_back(std::move(s));
    return j;
  }

  if (IsPunct(&t, "{")) {
    Stmt s;
    s.kind = Stmt::Kind::kBlock;
    s.line = t.line;
    size_t close = SkipBraces(toks, i);
    s.body = ParseStmts(toks, i + 1, close > i ? close - 1 : i + 1);
    out->push_back(std::move(s));
    return close;
  }

  if (IsPunct(&t, "}")) return i;  // caller's block end; do not consume

  Stmt s;
  s.kind = Stmt::Kind::kPlain;
  s.line = t.line;
  size_t j = ConsumePlain(toks, i, end, &s.tokens);
  if (j == i) return i + 1;  // defensive progress on unparseable input
  out->push_back(std::move(s));
  return j;
}

std::vector<Stmt> ParseStmts(const std::vector<Token>& toks, size_t begin,
                             size_t end) {
  std::vector<Stmt> out;
  size_t i = begin;
  while (i < end) {
    size_t next = ParseOneStmt(toks, i, end, &out);
    if (next <= i) break;  // no progress: bail rather than loop
    i = next;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Declaration scanning.

struct RawMember {
  std::vector<Token> tokens;  ///< the whole member declaration
};

struct RawClass {
  std::string scoped_name;
  std::string file;
  std::vector<RawMember> members;  ///< non-function member declarations
};

struct RawFunction {
  FunctionInfo info;                 ///< body parsed, types unresolved
  std::vector<Token> header;        ///< return type + qualifiers
  std::vector<Token> params;        ///< parameter-list tokens
  std::vector<Token> body_tokens;   ///< flat body tokens (for local decls)
};

struct FileScan {
  std::vector<RawClass> classes;
  std::vector<RawFunction> functions;
};

/// Extracts `MMM_REQUIRES(...)` / `MMM_REQUIRES_SHARED(...)` argument
/// spellings from a declaration token slice. Each comma-separated argument
/// becomes one spelling with its tokens joined ("service_->meta_mu_").
std::vector<std::string> ExtractRequires(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    if (toks[i].text != "MMM_REQUIRES" && toks[i].text != "MMM_REQUIRES_SHARED")
      continue;
    if (!IsPunct(&toks[i + 1], "(")) continue;
    size_t close = SkipParens(toks, i + 1);
    std::string cur;
    for (size_t j = i + 2; j + 1 < close; ++j) {
      if (IsPunct(&toks[j], ",")) {
        if (!cur.empty()) out.push_back(cur);
        cur.clear();
      } else {
        cur += toks[j].text;
      }
    }
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

int ExtractLockRank(const std::vector<Token>& toks) {
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (IsIdent(&toks[i], "MMM_LOCK_RANK") && IsPunct(&toks[i + 1], "(") &&
        toks[i + 2].kind == TokenKind::kNumber) {
      return std::atoi(toks[i + 2].text.c_str());
    }
  }
  return -1;
}

/// Scans one file's token stream for classes and function definitions.
/// `scope` is the enclosing class chain ("A::B"); namespaces are ignored.
class DeclScanner {
 public:
  DeclScanner(const LexedFile& file, FileScan* out)
      : file_(file), toks_(file.tokens), out_(out) {}

  void Run() { ScanScope(0, toks_.size(), ""); }

 private:
  /// Scans declarations in [i, end) at class/namespace scope `scope`.
  void ScanScope(size_t i, size_t end, const std::string& scope) {
    while (i < end) {
      const Token& t = toks_[i];
      if (IsPunct(&t, ";") || IsPunct(&t, "}")) {
        ++i;
        continue;
      }
      if (IsPunct(&t, "#")) {  // preprocessor directive: rest of the line
        size_t j = i + 1;
        while (j < end && toks_[j].line == t.line) ++j;
        i = j;
        continue;
      }
      if (IsIdent(&t, "template")) {
        ++i;
        if (i < end && IsPunct(&toks_[i], "<")) i = SkipAngles(toks_, i);
        continue;  // the templated entity parses as a normal declaration
      }
      if (IsIdent(&t, "namespace")) {
        size_t j = i + 1;
        while (j < end && !IsPunct(&toks_[j], "{") && !IsPunct(&toks_[j], ";"))
          ++j;
        if (j < end && IsPunct(&toks_[j], "{")) {
          size_t close = SkipBraces(toks_, j);
          ScanScope(j + 1, close > j ? close - 1 : j + 1, scope);
          i = close;
        } else {
          i = j + 1;  // namespace alias / using-directive tail
        }
        continue;
      }
      if (IsIdent(&t, "using") || IsIdent(&t, "typedef") ||
          IsIdent(&t, "friend") || IsIdent(&t, "static_assert")) {
        while (i < end && !IsPunct(&toks_[i], ";")) {
          if (IsPunct(&toks_[i], "{")) {
            i = SkipBraces(toks_, i);
            continue;
          }
          ++i;
        }
        ++i;
        continue;
      }
      if ((IsIdent(&t, "public") || IsIdent(&t, "private") ||
           IsIdent(&t, "protected")) &&
          IsPunct(At(toks_, i + 1), ":")) {
        i += 2;
        continue;
      }
      if (IsIdent(&t, "enum")) {
        size_t j = i + 1;
        while (j < end && !IsPunct(&toks_[j], "{") && !IsPunct(&toks_[j], ";"))
          ++j;
        if (j < end && IsPunct(&toks_[j], "{")) j = SkipBraces(toks_, j);
        while (j < end && !IsPunct(&toks_[j], ";")) ++j;
        i = j + 1;
        continue;
      }
      if (IsIdent(&t, "class") || IsIdent(&t, "struct") ||
          IsIdent(&t, "union")) {
        i = ScanClass(i, end, scope);
        continue;
      }
      i = ScanDeclaration(i, end, scope);
    }
  }

  /// Parses a class-head starting at the class/struct keyword; recurses into
  /// the body. Returns the index past the declaration.
  size_t ScanClass(size_t i, size_t end, const std::string& scope) {
    size_t j = i + 1;
    std::string name;
    while (j < end) {
      const Token& t = toks_[j];
      if (IsPunct(&t, "(")) {  // attribute macro like MMM_CAPABILITY("m")
        j = SkipParens(toks_, j);
        continue;
      }
      if (IsPunct(&t, ";")) return j + 1;  // forward declaration
      if (IsPunct(&t, ":") || IsPunct(&t, "{")) break;
      if (t.kind == TokenKind::kIdent && t.text != "final" &&
          t.text != "alignas") {
        name = t.text;
      }
      ++j;
    }
    // Skip the base clause to the body opener.
    while (j < end && !IsPunct(&toks_[j], "{")) {
      if (IsPunct(&toks_[j], "(")) {
        j = SkipParens(toks_, j);
        continue;
      }
      if (IsPunct(&toks_[j], ";")) return j + 1;
      ++j;
    }
    if (j >= end) return end;
    size_t close = SkipBraces(toks_, j);
    if (name.empty()) name = "anon";
    std::string scoped = scope.empty() ? name : scope + "::" + name;
    out_->classes.push_back(RawClass{scoped, file_.path, {}});
    ScanScope(j + 1, close > j ? close - 1 : j + 1, scoped);
    // Past the body there may be `name;` declarators — consume to `;`.
    size_t k = close;
    while (k < end && !IsPunct(&toks_[k], ";") && !IsPunct(&toks_[k], "}")) ++k;
    return k < end && IsPunct(&toks_[k], ";") ? k + 1 : k;
  }

  RawClass* FindRawClass(const std::string& scoped) {
    for (RawClass& c : out_->classes) {
      if (c.scoped_name == scoped) return &c;
    }
    return nullptr;
  }

  /// Parses one generic declaration (field, method decl, or function def).
  size_t ScanDeclaration(size_t i, size_t end, const std::string& scope) {
    std::vector<Token> decl;
    bool saw_params = false;
    size_t params_begin = 0, params_end = 0;
    size_t j = i;
    while (j < end) {
      const Token& t = toks_[j];
      if (IsPunct(&t, ";")) {
        RecordPlainDecl(decl, scope, saw_params, params_begin, params_end);
        return j + 1;
      }
      if (IsPunct(&t, "}")) {
        // Unterminated declaration at block end (macro row, etc.): drop it.
        return j;
      }
      if (IsPunct(&t, "(")) {
        size_t close = SkipParens(toks_, j);
        // The last ident-preceded group before the body is the param list.
        if (j > i && (IsAnyIdent(&toks_[j - 1]) ||
                      (j >= 2 && IsPunct(&toks_[j - 1], "~")))) {
          saw_params = true;
          params_begin = j + 1;
          params_end = close > j ? close - 1 : j + 1;
        }
        decl.insert(decl.end(), toks_.begin() + j, toks_.begin() + close);
        j = close;
        continue;
      }
      if (IsPunct(&t, "=")) {
        // `= default;` / `= delete;` / `= 0;` / initializers: scan to `;`.
        while (j < end && !IsPunct(&toks_[j], ";")) {
          if (IsPunct(&toks_[j], "{")) {
            j = SkipBraces(toks_, j);
            continue;
          }
          if (IsPunct(&toks_[j], "(")) {
            j = SkipParens(toks_, j);
            continue;
          }
          decl.push_back(toks_[j]);
          ++j;
        }
        RecordPlainDecl(decl, scope, saw_params, params_begin, params_end);
        return j < end ? j + 1 : end;
      }
      if (IsPunct(&t, ":") && saw_params) {
        // Constructor init list: `name(...)` / `name{...}` groups, then the
        // body brace (recognizable as a `{` right after `)` or `}`).
        ++j;
        while (j < end) {
          if (IsPunct(&toks_[j], "(")) {
            j = SkipParens(toks_, j);
            continue;
          }
          if (IsPunct(&toks_[j], "{")) {
            bool body = j > 0 && (IsPunct(&toks_[j - 1], ")") ||
                                  IsPunct(&toks_[j - 1], "}"));
            if (body) break;
            j = SkipBraces(toks_, j);
            continue;
          }
          if (IsPunct(&toks_[j], ";")) return j + 1;  // defensive
          ++j;
        }
        if (j >= end) return end;
        return RecordFunction(decl, scope, params_begin, params_end, j);
      }
      if (IsPunct(&t, "{")) {
        if (saw_params) {
          return RecordFunction(decl, scope, params_begin, params_end, j);
        }
        // Brace initializer in a variable declaration.
        j = SkipBraces(toks_, j);
        continue;
      }
      decl.push_back(t);
      ++j;
    }
    return end;
  }

  /// Declaration that ended at `;`: a field or a method declaration.
  void RecordPlainDecl(const std::vector<Token>& decl, const std::string& scope,
                       bool saw_params, size_t params_begin,
                       size_t params_end) {
    (void)params_begin;
    (void)params_end;
    if (scope.empty()) return;  // namespace-scope variables: not needed
    RawClass* cls = FindRawClass(scope);
    if (cls == nullptr) return;
    if (saw_params) {
      // Method declaration: name = ident right before the first `(`.
      for (size_t k = 0; k + 1 < decl.size(); ++k) {
        if (IsPunct(&decl[k + 1], "(") && IsAnyIdent(&decl[k])) {
          // record via the member list abuse is avoided; scanned in pass 2
          break;
        }
      }
      cls->members.push_back(RawMember{decl});  // classified again in pass 2
      return;
    }
    cls->members.push_back(RawMember{decl});
  }

  /// Function definition whose body opens at toks_[body_open] == `{`.
  /// Returns the index past the body.
  size_t RecordFunction(const std::vector<Token>& decl,
                        const std::string& scope, size_t params_begin,
                        size_t params_end, size_t body_open) {
    size_t close = SkipBraces(toks_, body_open);
    // Function name: the ident before the parameter group. In `decl` the
    // param group was appended, so find the last `( ... )` group's opener.
    std::string name, qualified_prefix;
    bool dtor = false;
    {
      // Walk the decl tokens to locate the name just before the param list
      // that matches [params_begin, params_end) by line/position heuristic:
      // the params group is the last paren group in decl.
      int depth = 0;
      size_t open_idx = decl.size();
      for (size_t k = 0; k < decl.size(); ++k) {
        if (IsPunct(&decl[k], "(")) {
          if (depth == 0) open_idx = k;
          ++depth;
        } else if (IsPunct(&decl[k], ")")) {
          --depth;
        }
      }
      if (open_idx == decl.size() || open_idx == 0) return close;
      size_t n = open_idx - 1;
      if (!IsAnyIdent(&decl[n])) return close;  // operator or cast: skip
      name = decl[n].text;
      if (n >= 1 && IsPunct(&decl[n - 1], "~")) {
        dtor = true;
        if (n >= 2) n -= 1;  // step onto the `~` for the :: walk below
      }
      if (IsIdent(At(decl, n >= 1 ? n - 1 : 0), "operator")) return close;
      // Qualified prefix: `A :: B :: [~] name`.
      size_t q = n;
      std::vector<std::string> prefix;
      while (q >= 2 && IsPunct(&decl[q - 1], "::") && IsAnyIdent(&decl[q - 2])) {
        prefix.push_back(decl[q - 2].text);
        q -= 2;
      }
      std::reverse(prefix.begin(), prefix.end());
      for (const std::string& p : prefix) {
        qualified_prefix += qualified_prefix.empty() ? p : "::" + p;
      }
    }
    if (name == "if" || name == "while" || name == "for" || name == "switch" ||
        name == "return") {
      return close;  // defensive: never treat control flow as a definition
    }

    RawFunction fn;
    fn.info.name = (dtor ? "~" : "") + name;
    fn.info.class_scope = !scope.empty() ? scope : qualified_prefix;
    fn.info.qualified = fn.info.class_scope.empty()
                            ? fn.info.name
                            : fn.info.class_scope + "::" + fn.info.name;
    fn.info.file = file_.path;
    fn.info.line = toks_[body_open].line;
    size_t body_begin = body_open + 1;
    size_t body_end = close > body_open ? close - 1 : body_open + 1;
    fn.info.body = ParseStmts(toks_, body_begin, body_end);
    fn.body_tokens.assign(toks_.begin() + body_begin, toks_.begin() + body_end);
    fn.header = decl;
    fn.params.assign(toks_.begin() + std::min(params_begin, toks_.size()),
                     toks_.begin() + std::min(params_end, toks_.size()));
    out_->functions.push_back(std::move(fn));
    return close;
  }

  const LexedFile& file_;
  const std::vector<Token>& toks_;
  FileScan* out_;
};

// ---------------------------------------------------------------------------
// Pass 2: linking.

/// True when the member declaration declares a lock; fills name/shared/rank.
bool ClassifyLockMember(const std::vector<Token>& decl, std::string* name,
                        bool* shared, int* rank, int* line) {
  for (size_t i = 0; i + 1 < decl.size(); ++i) {
    if (decl[i].kind != TokenKind::kIdent) continue;
    if (decl[i].text != "Mutex" && decl[i].text != "SharedMutex") continue;
    if (i > 0 && IsPunct(&decl[i - 1], "<")) continue;  // template arg
    if (!IsAnyIdent(&decl[i + 1])) continue;
    *name = decl[i + 1].text;
    *shared = decl[i].text == "SharedMutex";
    *rank = ExtractLockRank(decl);
    *line = decl[i].line;
    return true;
  }
  return false;
}

/// Member (non-method) declaration: name and candidate type idents.
bool ClassifyFieldMember(const std::vector<Token>& decl, std::string* name,
                         std::vector<std::string>* type_idents) {
  // Method declarations (param group present) are classified elsewhere.
  // Name: last ident before the first of `=`, MMM_GUARDED_BY,
  // MMM_PT_GUARDED_BY, MMM_LOCK_RANK, or end-of-declaration.
  size_t stop = decl.size();
  for (size_t i = 0; i < decl.size(); ++i) {
    if (decl[i].kind == TokenKind::kIdent &&
        (decl[i].text == "MMM_GUARDED_BY" ||
         decl[i].text == "MMM_PT_GUARDED_BY" ||
         decl[i].text == "MMM_LOCK_RANK")) {
      stop = i;
      break;
    }
    if (IsPunct(&decl[i], "=")) {
      stop = i;
      break;
    }
  }
  std::string last;
  for (size_t i = 0; i < stop; ++i) {
    if (decl[i].kind == TokenKind::kIdent && !IsTypeNoiseIdent(decl[i].text)) {
      if (!last.empty()) type_idents->push_back(last);
      last = decl[i].text;
    }
  }
  if (last.empty()) return false;
  *name = last;
  return true;
}

/// True when the declaration contains a top-level parameter group (method).
bool LooksLikeMethodDecl(const std::vector<Token>& decl, std::string* name,
                         std::vector<std::string>* pre_name_idents) {
  int depth = 0;
  for (size_t i = 0; i < decl.size(); ++i) {
    if (IsPunct(&decl[i], "(")) {
      if (depth == 0 && i > 0 && IsAnyIdent(&decl[i - 1])) {
        *name = decl[i - 1].text;
        for (size_t k = 0; k + 1 < i; ++k) {
          if (decl[k].kind == TokenKind::kIdent &&
              !IsTypeNoiseIdent(decl[k].text)) {
            pre_name_idents->push_back(decl[k].text);
          }
        }
        return true;
      }
      ++depth;
    } else if (IsPunct(&decl[i], ")")) {
      --depth;
    }
  }
  return false;
}

}  // namespace

std::string ResolveClassName(const Program& program,
                             const std::string& enclosing_class,
                             const std::string& name) {
  // Nested lookup: walk the enclosing chain outward.
  std::string scope = enclosing_class;
  while (!scope.empty()) {
    std::string candidate = scope + "::" + name;
    if (program.classes.count(candidate) != 0) return candidate;
    size_t pos = scope.rfind("::");
    scope = pos == std::string::npos ? "" : scope.substr(0, pos);
  }
  if (program.classes.count(name) != 0) return name;
  auto it = program.top_level_classes.find(name);
  if (it != program.top_level_classes.end() && it->second.size() == 1) {
    return it->second[0];
  }
  return "";
}

Program ParseProgram(const std::vector<LexedFile>& files) {
  Program program;
  std::vector<FileScan> scans(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    DeclScanner(files[i], &scans[i]).Run();
  }

  // Register classes first so type resolution sees the global set.
  for (const FileScan& scan : scans) {
    for (const RawClass& rc : scan.classes) {
      ClassInfo& info = program.classes[rc.scoped_name];
      info.name = rc.scoped_name;
      std::string top = rc.scoped_name.substr(0, rc.scoped_name.find("::"));
      if (rc.scoped_name.find("::") == std::string::npos) {
        auto& v = program.top_level_classes[top];
        if (std::find(v.begin(), v.end(), rc.scoped_name) == v.end()) {
          v.push_back(rc.scoped_name);
        }
      }
    }
  }

  // Members: locks, field types, method declarations.
  for (const FileScan& scan : scans) {
    for (const RawClass& rc : scan.classes) {
      ClassInfo& info = program.classes[rc.scoped_name];
      for (const RawMember& m : rc.members) {
        std::string lock_name;
        bool shared = false;
        int rank = -1, line = 0;
        std::string method_name;
        std::vector<std::string> pre_idents;
        if (ClassifyLockMember(m.tokens, &lock_name, &shared, &rank, &line)) {
          LockDecl lock;
          lock.id = rc.scoped_name + "::" + lock_name;
          lock.file = rc.file;
          lock.line = line;
          lock.rank = rank;
          lock.shared = shared;
          if (program.lock_index.count(lock.id) == 0) {
            program.lock_index[lock.id] = program.locks.size();
            program.locks_by_member[lock_name].push_back(lock.id);
            program.locks.push_back(std::move(lock));
          }
          continue;
        }
        if (LooksLikeMethodDecl(m.tokens, &method_name, &pre_idents)) {
          info.methods.insert(method_name);
          std::vector<std::string> reqs = ExtractRequires(m.tokens);
          if (!reqs.empty()) {
            auto& dst = info.method_requires[method_name];
            dst.insert(dst.end(), reqs.begin(), reqs.end());
          }
          // Return class: unique known class among the pre-name idents.
          std::string ret;
          for (const std::string& ident : pre_idents) {
            std::string resolved =
                ResolveClassName(program, rc.scoped_name, ident);
            if (resolved.empty()) continue;
            if (!ret.empty() && ret != resolved) {
              ret.clear();
              break;
            }
            ret = resolved;
          }
          if (!ret.empty()) info.method_return_class[method_name] = ret;
          continue;
        }
        std::string field_name;
        std::vector<std::string> type_idents;
        if (ClassifyFieldMember(m.tokens, &field_name, &type_idents)) {
          std::string type;
          for (const std::string& ident : type_idents) {
            std::string resolved =
                ResolveClassName(program, rc.scoped_name, ident);
            if (resolved.empty()) continue;
            if (!type.empty() && type != resolved) {
              type.clear();
              break;
            }
            type = resolved;
          }
          if (!type.empty()) info.member_types[field_name] = type;
        }
      }
    }
  }

  // Functions: var types from params and local declarations, requires
  // contracts, return classes, function-local static locks.
  for (const FileScan& scan : scans) {
    for (const RawFunction& raw : scan.functions) {
      FunctionInfo fn = raw.info;

      auto bind_vars = [&](const std::vector<Token>& toks) {
        // `Class [&*]* name [,)=;({]` — first known class then next ident.
        for (size_t i = 0; i < toks.size(); ++i) {
          if (toks[i].kind != TokenKind::kIdent ||
              IsTypeNoiseIdent(toks[i].text)) {
            continue;
          }
          if (i > 0 && (IsPunct(&toks[i - 1], ".") ||
                        IsPunct(&toks[i - 1], "->") ||
                        IsPunct(&toks[i - 1], "::"))) {
            continue;  // member access / qualified use, not a type
          }
          std::string cls =
              ResolveClassName(program, fn.class_scope, toks[i].text);
          if (cls.empty()) continue;
          // Scan forward over `* & const` to the declared name.
          size_t j = i + 1;
          while (j < toks.size() &&
                 (IsPunct(&toks[j], "*") || IsPunct(&toks[j], "&") ||
                  IsPunct(&toks[j], "&&") || IsIdent(&toks[j], "const"))) {
            ++j;
          }
          if (j < toks.size() && IsAnyIdent(&toks[j])) {
            const Token* after = At(toks, j + 1);
            if (after == nullptr || IsPunct(after, ",") ||
                IsPunct(after, ")") || IsPunct(after, ";") ||
                IsPunct(after, "=") || IsPunct(after, "(") ||
                IsPunct(after, "{")) {
              fn.var_types.emplace(toks[j].text, cls);
            }
          }
        }
      };
      bind_vars(raw.params);
      bind_vars(raw.body_tokens);

      // Requires contracts: from the out-of-line header and the in-class
      // declaration.
      std::vector<std::string> raw_requires = ExtractRequires(raw.header);
      auto cls_it = program.classes.find(fn.class_scope);
      if (cls_it != program.classes.end()) {
        auto req_it = cls_it->second.method_requires.find(fn.name);
        if (req_it != cls_it->second.method_requires.end()) {
          raw_requires.insert(raw_requires.end(), req_it->second.begin(),
                              req_it->second.end());
        }
      }
      fn.requires_locks = std::move(raw_requires);  // resolved by analyses

      // Return class (for accessor chains): unique known class in the
      // header before the name.
      {
        std::string ret;
        int depth = 0;
        for (size_t k = 0; k < raw.header.size(); ++k) {
          if (IsPunct(&raw.header[k], "(")) ++depth;
          if (IsPunct(&raw.header[k], ")")) --depth;
          if (depth > 0 || raw.header[k].kind != TokenKind::kIdent) continue;
          if (IsTypeNoiseIdent(raw.header[k].text)) continue;
          if (raw.header[k].text == fn.name) break;
          std::string resolved =
              ResolveClassName(program, fn.class_scope, raw.header[k].text);
          if (resolved.empty()) continue;
          if (!ret.empty() && ret != resolved) {
            ret.clear();
            break;
          }
          ret = resolved;
        }
        fn.return_class = ret;
        if (cls_it != program.classes.end()) {
          cls_it->second.methods.insert(fn.name);
          if (!ret.empty() &&
              cls_it->second.method_return_class.count(fn.name) == 0) {
            cls_it->second.method_return_class[fn.name] = ret;
          }
        }
      }

      // Function-local static locks + the returned-lock idiom.
      {
        const std::vector<Token>& body = raw.body_tokens;
        std::string local_lock_name;
        for (size_t k = 0; k + 2 < body.size(); ++k) {
          if (IsIdent(&body[k], "static") &&
              (IsIdent(&body[k + 1], "Mutex") ||
               IsIdent(&body[k + 1], "SharedMutex")) &&
              IsAnyIdent(&body[k + 2])) {
            LockDecl lock;
            local_lock_name = body[k + 2].text;
            lock.id = fn.qualified + "::" + local_lock_name;
            lock.file = fn.file;
            lock.line = body[k + 2].line;
            lock.shared = IsIdent(&body[k + 1], "SharedMutex");
            // Rank annotation sits on the same declaration statement.
            std::vector<Token> decl_slice;
            for (size_t m = k; m < body.size() && !IsPunct(&body[m], ";"); ++m)
              decl_slice.push_back(body[m]);
            lock.rank = ExtractLockRank(decl_slice);
            if (program.lock_index.count(lock.id) == 0) {
              program.lock_index[lock.id] = program.locks.size();
              program.locks_by_member[local_lock_name].push_back(lock.id);
              program.locks.push_back(std::move(lock));
            }
          }
        }
        if (!local_lock_name.empty()) {
          // `return <name>;` anywhere in the body completes the idiom.
          for (size_t k = 0; k + 2 < body.size(); ++k) {
            if (IsIdent(&body[k], "return") &&
                IsIdent(&body[k + 1], local_lock_name) &&
                IsPunct(&body[k + 2], ";")) {
              program.returned_locks[fn.qualified] =
                  fn.qualified + "::" + local_lock_name;
              break;
            }
          }
        }
      }

      size_t idx = program.functions.size();
      program.by_qualified[fn.qualified].push_back(idx);
      if (fn.class_scope.empty()) {
        program.free_by_name[fn.name].push_back(idx);
      }
      program.functions.push_back(std::move(fn));
    }
  }

  return program;
}

}  // namespace mmmsa
