file(REMOVE_RECURSE
  "CMakeFiles/tab_ablation_snapshot_interval.dir/tab_ablation_snapshot_interval.cpp.o"
  "CMakeFiles/tab_ablation_snapshot_interval.dir/tab_ablation_snapshot_interval.cpp.o.d"
  "tab_ablation_snapshot_interval"
  "tab_ablation_snapshot_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ablation_snapshot_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
