// Fixture: suppressed direct reads lint clean.
struct Env;

int Recover(Env* env) {
  // MMMLINT(direct-env-read): fixture reads a debug dump, not a store blob
  int s = env->ReadFile("blob");
  if (s != 0) return s;
  // MMMLINT(direct-env-read): fixture probes a sidecar outside the store
  s = env->ReadFileRange("blob", 0, 64);
  return s;
}
