#ifndef MMM_TOOLS_MMMLINT_LEXER_H_
#define MMM_TOOLS_MMMLINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace mmmlint {

enum class TokenKind {
  kIdent,    ///< identifiers and keywords (the rules treat keywords by name)
  kNumber,   ///< numeric literal
  kString,   ///< string literal (text excludes quotes; raw strings supported)
  kChar,     ///< character literal
  kPunct,    ///< one punctuator, longest-match ("->", "::", "<<", ...)
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;
};

/// A comment kept out-of-band for suppression matching.
struct Comment {
  int line = 0;       ///< line the comment starts on
  std::string text;   ///< body without the // or /* */ markers
};

/// Token stream of one file, comments separated out.
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lexes C++ source: skips whitespace, separates comments, folds line
/// continuations, and keeps preprocessor tokens inline (so `#include "x"`
/// appears as the tokens `#`, `include`, and a string). Never fails: bytes
/// that fit nothing become single-char punctuators.
LexedFile Lex(std::string path, std::string_view source);

}  // namespace mmmlint

#endif  // MMM_TOOLS_MMMLINT_LEXER_H_
