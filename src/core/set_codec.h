#ifndef MMM_CORE_SET_CODEC_H_
#define MMM_CORE_SET_CODEC_H_

#include <string>

#include "core/approach.h"
#include "core/blob_formats.h"
#include "core/model_set.h"
#include "serialize/json.h"

namespace mmm {

/// \brief The per-set metadata document every approach writes to the
/// document store (one document per saved set — opportunity O1/O3).
struct SetDocument {
  std::string id;
  std::string approach;  ///< "mmlib-base" | "baseline" | "update" | "provenance"
  /// "full" = complete parameters stored; "delta" = Update diff vs base;
  /// "prov" = provenance record vs base.
  std::string kind = "full";
  std::string base_set_id;  ///< empty for initial sets / standalone snapshots
  std::string family;       ///< architecture family label
  uint64_t num_models = 0;
  /// Number of delta/prov hops to the nearest full snapshot (0 for "full").
  uint64_t chain_depth = 0;
  /// \name Artifact blob names in the file store ("" = absent).
  /// @{
  std::string arch_blob;
  std::string param_blob;
  std::string hash_blob;
  std::string diff_blob;
  std::string prov_blob;
  /// @}

  JsonValue ToJson() const;
  static Result<SetDocument> FromJson(const JsonValue& json);
};

/// \brief Snapshots store statistics to compute per-operation deltas.
///
/// Usage: construct before the operation, call FillSave / FillRecover after.
///
/// Saves diff the *shared* simulated clock: the write pipeline fans blob
/// charges out across executor lanes, so the calling thread's counter would
/// undercount. Recoveries run entirely on the calling thread, so FillRecover
/// diffs the thread-local counter instead — exact per request even when the
/// serving layer overlaps many recoveries on one shared clock.
class StatsCapture {
 public:
  explicit StatsCapture(const StoreContext& context);

  void FillSave(SaveResult* result) const;
  void FillRecover(RecoverStats* stats) const;

 private:
  const StoreContext& context_;
  uint64_t file_bytes_written_;
  uint64_t file_writes_;
  uint64_t doc_bytes_written_;
  uint64_t doc_writes_;
  uint64_t sim_nanos_;
  uint64_t thread_sim_nanos_;
};

/// \name Full-snapshot helpers (Baseline's save/load logic, reused by
/// Update's and Provenance's initial saves — paper §3.3/§3.4 both start
/// "using Baseline's logic").
/// @{

/// Stages the architecture blob + concatenated param blob for `set` under
/// `set_id` into `batch`, and fills the artifact names into `doc`. The
/// parameter encode (and compression) runs as a deferred work item on a
/// pipeline lane at commit time, so `set` must outlive the batch's
/// Commit().
Status StageFullSnapshot(const StoreContext& context, StoreBatch* batch,
                         const std::string& set_id, const ModelSet& set,
                         SetDocument* doc);

/// Single-op convenience over StageFullSnapshot: stages into a fresh batch
/// and commits it immediately.
Status WriteFullSnapshot(const StoreContext& context, const std::string& set_id,
                         const ModelSet& set, SetDocument* doc);

/// Reads a full snapshot described by `doc`. With
/// `context.streaming_recovery` set, the parameter blob is pulled
/// window-by-window through the incremental decompressor and
/// ParamBlobStreamDecoder (DESIGN.md §12) — bit-identical result, but the
/// stored bytes and the decompressed blob are never materialized whole.
Result<ModelSet> ReadFullSnapshot(const StoreContext& context,
                                  const SetDocument& doc);

/// Streams a stored parameter blob (possibly compressed, possibly CAS-
/// chunked) through the incremental decode pipeline, handing each finished
/// layer to `sink` in (model, param) order the moment its bytes are
/// complete. Returns the blob's model count. Accepts exactly the blobs the
/// materializing path accepts and validates the same header/size/CRC
/// invariants (shuffle-compressed blobs degenerate to decode-at-finish —
/// the byte-plane transpose is global — but remain bit-exact).
Result<size_t> StreamParamBlob(const StoreContext& context,
                               const std::string& blob_name,
                               const ArchitectureSpec& spec,
                               ParamBlobStreamDecoder::LayerSink sink);

/// Reads only the models at `indices` from a full snapshot. Uncompressed
/// parameter blobs are accessed with ranged store reads (one per distinct
/// model); compressed blobs fall back to a full read. The result is
/// parallel to `indices`.
Result<std::vector<StateDict>> ReadModelsFromSnapshot(
    const StoreContext& context, const SetDocument& doc,
    const std::vector<size_t>& indices);

/// Reads the snapshot's architecture.
Result<ArchitectureSpec> ReadSnapshotSpec(const StoreContext& context,
                                          const SetDocument& doc);

/// Returns InvalidArgument unless every index is < num_models.
Status CheckIndices(const std::vector<size_t>& indices, uint64_t num_models);
/// @}

/// Stages the set document for insertion into the metadata collection.
/// `doc` is captured by value at staging time, so every field must be final.
void StageSetDocument(StoreBatch* batch, const SetDocument& doc);

/// Single-op convenience over StageSetDocument: stages into a fresh batch
/// and commits it immediately.
Status InsertSetDocument(const StoreContext& context, const SetDocument& doc);

/// Fetches and parses a set document.
Result<SetDocument> FetchSetDocument(const StoreContext& context,
                                     const std::string& set_id);

/// Encodes the architecture blob content (spec + explicit parameter layout).
std::string EncodeArchBlob(const ArchitectureSpec& spec);

/// Decodes an architecture blob.
Result<ArchitectureSpec> DecodeArchBlob(const std::string& text);

}  // namespace mmm

#endif  // MMM_CORE_SET_CODEC_H_
