#include "cas/blob_io.h"

#include <map>

#include "serialize/crc32.h"

namespace mmm {

namespace {

/// Fetches a manifest's chunks and reassembles the payload, verifying size
/// and CRC. Repeated chunks within one manifest are fetched once.
Result<std::vector<uint8_t>> Reassemble(FileStore* store,
                                        const std::string& name,
                                        const CasManifest& manifest) {
  std::vector<uint8_t> out;
  out.reserve(manifest.raw_size);
  std::map<std::string, std::vector<uint8_t>> fetched;
  for (const CasChunkRef& ref : manifest.chunks) {
    auto it = fetched.find(ref.hash_hex);
    if (it == fetched.end()) {
      auto chunk = store->Get(ChunkBlobName(ref.hash_hex));
      if (!chunk.ok()) {
        return chunk.status().WithContext("blob '", name, "' chunk ",
                                          ref.hash_hex);
      }
      it = fetched.emplace(ref.hash_hex, std::move(chunk).ValueOrDie()).first;
    }
    if (it->second.size() != ref.length) {
      return Status::Corruption("blob '", name, "' chunk ", ref.hash_hex,
                                " has ", it->second.size(),
                                " bytes, manifest records ", ref.length);
    }
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  if (out.size() != manifest.raw_size) {
    return Status::Corruption("blob '", name, "' reassembled to ", out.size(),
                              " bytes, manifest records ", manifest.raw_size);
  }
  if (Crc32::Compute(out) != manifest.raw_crc) {
    return Status::Corruption("blob '", name,
                              "' fails its manifest crc after reassembly");
  }
  return out;
}

Result<CasManifest> FetchManifest(FileStore* store, const std::string& name) {
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, store->Get(name));
  auto manifest = DecodeManifest(data);
  if (!manifest.ok()) {
    return manifest.status().WithContext("blob '", name, "'");
  }
  return manifest;
}

}  // namespace

Result<std::vector<uint8_t>> CasReadBlob(FileStore* store,
                                         const std::string& name) {
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, store->Get(name));
  if (!IsManifestPayload(data)) return data;
  auto manifest = DecodeManifest(data);
  if (!manifest.ok()) {
    return manifest.status().WithContext("blob '", name, "'");
  }
  return Reassemble(store, name, manifest.ValueOrDie());
}

Result<std::string> CasReadBlobString(FileStore* store,
                                      const std::string& name) {
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, CasReadBlob(store, name));
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

Result<uint64_t> CasBlobSize(FileStore* store, const CasStore* cas,
                             const std::string& name) {
  if (cas == nullptr || !cas->IsManifest(name)) return store->Size(name);
  MMM_ASSIGN_OR_RETURN(CasManifest manifest, FetchManifest(store, name));
  return manifest.raw_size;
}

Result<std::vector<uint8_t>> CasReadBlobRange(FileStore* store,
                                              const CasStore* cas,
                                              const std::string& name,
                                              uint64_t offset,
                                              uint64_t length) {
  if (cas == nullptr || !cas->IsManifest(name)) {
    return store->GetRange(name, offset, length);
  }
  MMM_ASSIGN_OR_RETURN(CasManifest manifest, FetchManifest(store, name));
  if (offset + length > manifest.raw_size) {
    return Status::OutOfRange("blob '", name, "' range [", offset, ", ",
                              offset + length, ") exceeds logical size ",
                              manifest.raw_size);
  }
  std::vector<uint8_t> out;
  out.reserve(length);
  uint64_t chunk_start = 0;
  const uint64_t end = offset + length;
  for (const CasChunkRef& ref : manifest.chunks) {
    const uint64_t chunk_end = chunk_start + ref.length;
    if (chunk_end > offset && chunk_start < end) {
      const uint64_t local_offset =
          offset > chunk_start ? offset - chunk_start : 0;
      const uint64_t local_end =
          end < chunk_end ? end - chunk_start : ref.length;
      MMM_ASSIGN_OR_RETURN(
          std::vector<uint8_t> piece,
          store->GetRange(ChunkBlobName(ref.hash_hex), local_offset,
                          local_end - local_offset));
      out.insert(out.end(), piece.begin(), piece.end());
    }
    chunk_start = chunk_end;
    if (chunk_start >= end) break;
  }
  if (out.size() != length) {
    return Status::Corruption("blob '", name, "' ranged read produced ",
                              out.size(), " bytes, wanted ", length);
  }
  return out;
}

}  // namespace mmm
