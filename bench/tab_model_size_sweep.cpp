// §4.2 text experiment: effect of model size / domain on storage.
//
// Compares FFNN-48 (4,993 params) with FFNN-69 (10,075 params) and the
// CIFAR convnet (6,882 params). Expected shape (paper): going FFNN-48 ->
// FFNN-69 scales MMlib-base by ~1.7x (its metadata overhead is
// size-independent), Baseline/Update by ~2.0x (pure parameter payload), and
// Provenance not at all; CIFAR shows the same trends scaled by its
// parameter count, independent of the domain.
//
// Knobs: MMM_MODELS (default 2000 — the conv scenario trains on one core),
// MMM_SAMPLES (256 battery / 48 CIFAR).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

namespace {

struct SweepPoint {
  const char* label;
  ScenarioConfig scenario;
};

}  // namespace

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/2000,
                                         /*default_runs=*/1);
  knobs.Describe("tab_model_size_sweep");

  std::vector<SweepPoint> points;
  points.push_back({"FFNN-48", ScenarioConfig::Battery(knobs.models)});
  points.push_back({"FFNN-69", ScenarioConfig::BatteryLarge(knobs.models)});
  points.push_back({"CIFAR", ScenarioConfig::Cifar(knobs.models)});
  points[0].scenario.samples_per_dataset = knobs.samples;
  points[1].scenario.samples_per_dataset = knobs.samples;

  Table u1_table(StringFormat("Storage at U1 in MB by architecture "
                              "(%zu models)",
                              knobs.models),
                 ApproachColumns());
  Table u3_table(StringFormat("Storage at U3-1 in MB by architecture "
                              "(%zu models, 10%% updates)",
                              knobs.models),
                 ApproachColumns());

  std::map<std::string, std::map<ApproachType, uint64_t>> u1_bytes;
  for (const SweepPoint& point : points) {
    ExperimentConfig config;
    config.scenario = point.scenario;
    config.u3_iterations = 1;
    config.runs = 1;
    config.measure_ttr = false;
    config.work_dir = "/tmp/mmm-bench-size-sweep";

    ExperimentRunner runner(config);
    auto results = runner.Run().ValueOrDie();
    std::vector<std::string> u1_cells, u3_cells;
    for (ApproachType type : kAllApproaches) {
      u1_cells.push_back(Mb(results[0].metrics.at(type).storage_bytes));
      u3_cells.push_back(Mb(results[1].metrics.at(type).storage_bytes));
      u1_bytes[point.label][type] = results[0].metrics.at(type).storage_bytes;
    }
    u1_table.AddRow(point.label, u1_cells);
    u3_table.AddRow(point.label, u3_cells);
    CleanupWorkDir(knobs, config.work_dir);
  }
  u1_table.Print();
  u3_table.Print();

  std::printf(
      "\nFFNN-69 / FFNN-48 storage scaling at U1 "
      "(paper: MMlib-base 1.7x, Baseline/Update ~2.0x, Provenance ~1.0x —\n"
      " parameter ratio is 10075/4993 = 2.02x):\n");
  for (ApproachType type : kAllApproaches) {
    double ratio =
        static_cast<double>(u1_bytes["FFNN-69"][type]) /
        static_cast<double>(u1_bytes["FFNN-48"][type]);
    std::printf("  %-11s %.2fx\n", ApproachTypeName(type).c_str(), ratio);
  }
  std::printf(
      "(Provenance scales at U1 because its *initial* save uses Baseline's "
      "logic;\n the paper's flat-storage claim is about derived sets — see "
      "the U3 table.)\n");
  return 0;
}
