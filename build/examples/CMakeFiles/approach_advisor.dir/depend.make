# Empty dependencies file for approach_advisor.
# This may be replaced when dependencies are built.
