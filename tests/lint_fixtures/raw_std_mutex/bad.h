// Fixture: raw std::mutex (and friends) must be flagged outside
// common/thread_annotations.h.
#pragma once
#include <mutex>

class Counter {
 public:
  void Bump();

 private:
  std::mutex mu_;  // also trips mutex-missing-guard; that rule has its own
                   // fixture, so this test filters to raw-std-mutex only
  int n_ = 0;
};
