file(REMOVE_RECURSE
  "libmmm_serialize.a"
)
