#ifndef MMM_BENCH_BENCH_UTIL_H_
#define MMM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/env_config.h"
#include "common/strings.h"
#include "core/manager.h"
#include "workload/experiment.h"

namespace mmm::bench {

/// \brief Fixed-width ASCII table mirroring the paper's figures
/// (rows = use cases, columns = approaches).
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(const std::string& label, const std::vector<std::string>& cells) {
    rows_.push_back({label, cells});
  }

  void Print() const {
    std::printf("\n%s\n", title_.c_str());
    std::printf("%-10s", "");
    for (const auto& column : columns_) std::printf(" | %12s", column.c_str());
    std::printf("\n");
    std::printf("----------");
    for (size_t i = 0; i < columns_.size(); ++i) std::printf("-+-------------");
    std::printf("\n");
    for (const auto& [label, cells] : rows_) {
      std::printf("%-10s", label.c_str());
      for (const auto& cell : cells) std::printf(" | %12s", cell.c_str());
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

inline std::vector<std::string> ApproachColumns() {
  return {"MMlib-base", "Baseline", "Update", "Provenance"};
}

/// Prints one metric of an experiment result as a paper-style table.
/// `select` extracts the cell value from ApproachMetrics.
template <typename Fn>
void PrintMetricTable(const std::string& title,
                      const std::vector<UseCaseResult>& results, Fn select) {
  Table table(title, ApproachColumns());
  for (const UseCaseResult& row : results) {
    std::vector<std::string> cells;
    for (ApproachType type : kAllApproaches) {
      auto it = row.metrics.find(type);
      cells.push_back(it == row.metrics.end() ? "-" : select(it->second));
    }
    table.AddRow(row.use_case, cells);
  }
  table.Print();
}

inline std::string Mb(uint64_t bytes) {
  return StringFormat("%.2f", static_cast<double>(bytes) / 1e6);
}

inline std::string Seconds(double s) { return StringFormat("%.3f", s); }

/// Common scaling knobs, shared by every figure bench.
struct BenchKnobs {
  size_t models;
  int runs;
  size_t u3_iterations;
  size_t samples;
  bool keep_artifacts;

  static BenchKnobs FromEnv(size_t default_models = 5000,
                            int default_runs = 3) {
    BenchKnobs knobs;
    knobs.models = static_cast<size_t>(
        GetEnvInt64("MMM_MODELS", static_cast<int64_t>(default_models)));
    knobs.runs = static_cast<int>(GetEnvInt64("MMM_RUNS", default_runs));
    knobs.u3_iterations =
        static_cast<size_t>(GetEnvInt64("MMM_U3_ITERATIONS", 3));
    knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 256));
    knobs.keep_artifacts = GetEnvBool("MMM_KEEP_ARTIFACTS", false);
    return knobs;
  }

  void Describe(const char* bench_name) const {
    std::printf(
        "[%s] models=%zu runs=%d u3_iterations=%zu samples=%zu\n"
        "  (override with MMM_MODELS / MMM_RUNS / MMM_U3_ITERATIONS / "
        "MMM_SAMPLES; paper setting: 5000 models, 5 runs)\n",
        bench_name, models, runs, u3_iterations, samples);
  }
};

/// Removes the experiment working directory unless MMM_KEEP_ARTIFACTS=1.
inline void CleanupWorkDir(const BenchKnobs& knobs, const std::string& dir) {
  if (!knobs.keep_artifacts) Env::Default()->RemoveDirs(dir).Check();
}

}  // namespace mmm::bench

#endif  // MMM_BENCH_BENCH_UTIL_H_
