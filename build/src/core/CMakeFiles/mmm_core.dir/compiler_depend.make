# Empty compiler generated dependencies file for mmm_core.
# This may be replaced when dependencies are built.
