#ifndef MMM_SERIALIZE_COMPRESS_H_
#define MMM_SERIALIZE_COMPRESS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace mmm {

/// Compression method for blob artifacts (the paper's §4.5 future work:
/// "evaluate if it is beneficial to integrate compression techniques into
/// our approaches").
enum class Compression : uint8_t {
  kNone = 0,
  /// LZ77 with greedy hash-chain matching (LZ4-style token format).
  kLz = 1,
  /// Byte-plane shuffle (stride 4, for float32 payloads) followed by LZ.
  /// Grouping the exponent bytes of neighboring floats makes runs the LZ
  /// stage can exploit.
  kShuffleLz = 2,
};

std::string_view CompressionName(Compression method);
Result<Compression> CompressionFromName(std::string_view name);

/// \brief Compresses `input` into a self-describing blob:
/// magic "MMZ1", method byte, varint raw size, payload.
/// kNone stores the payload verbatim (still framed, so decoding is uniform).
std::vector<uint8_t> CompressBlob(Compression method,
                                  std::span<const uint8_t> input);

/// \brief Inverse of CompressBlob. If `input` does not start with the
/// compression magic it is returned unchanged (raw legacy blob).
Result<std::vector<uint8_t>> DecompressBlob(std::span<const uint8_t> input);

/// \name Raw primitives (exposed for tests and benchmarks).
/// @{

/// LZ77-compresses `input` (no framing). Always succeeds; incompressible
/// data expands by at most ~1/255 + 16 bytes.
std::vector<uint8_t> LzCompress(std::span<const uint8_t> input);

/// Decompresses LzCompress output; `raw_size` must be the original size.
Result<std::vector<uint8_t>> LzDecompress(std::span<const uint8_t> input,
                                          size_t raw_size);

/// \brief Incremental LzDecompress for the streaming recovery path
/// (DESIGN.md §12): absorbs the compressed stream in arbitrarily sized
/// chunks and emits decompressed bytes as each token completes, retaining
/// only the 64 KiB match window internally — peak memory is O(window), not
/// O(raw_size).
///
/// Bit-exact with LzDecompress over the concatenated feeds: it accepts
/// exactly the streams the materializing decoder accepts (including its
/// tolerance for trailing bytes once `raw_size` output has been produced)
/// and rejects the rest, with one deliberate tightening that is vacuous
/// for well-formed streams: a match offset reaching before the retained
/// window is rejected outright. Since retention equals the format's
/// maximum offset (65535), that is the same `offset > produced` check the
/// materializing decoder performs.
class LzDecompressor {
 public:
  /// `raw_size` is the expected decompressed size (from the blob header).
  /// Unlike the materializing decoder it never drives allocation, so no
  /// plausibility clamp is needed: an implausible size simply runs out of
  /// input and fails at Finish().
  explicit LzDecompressor(size_t raw_size);

  /// Absorbs the next compressed chunk, appending any newly decompressed
  /// bytes to `*out`. Errors are sticky.
  Status Feed(std::span<const uint8_t> data, std::vector<uint8_t>* out);

  /// Declares end of input: fails unless exactly `raw_size` bytes were
  /// produced and no token was left half-parsed.
  Status Finish();

  size_t produced() const { return produced_; }
  /// High-water mark of internal buffering (the retained window), for the
  /// peak-memory assertions in tests.
  size_t peak_buffered_bytes() const { return peak_buffered_; }

 private:
  enum class State : uint8_t {
    kToken,       // expecting a token byte
    kLiteralLen,  // reading 255-continuation literal length bytes
    kLiterals,    // copying literal bytes through
    kOffset,      // reading the 2-byte little-endian match offset
    kMatchLen,    // reading 255-continuation match length bytes
    kDone,        // raw_size produced; trailing input is ignored
  };

  // Appends the bytes produced past `before_size` (the window length
  // before the current step) to `*out`, then trims the window to its
  // retention bound.
  void EmitAndTrim(size_t before_size, std::vector<uint8_t>* out);
  // Runs the match whose offset/length state is complete, in bounded steps.
  Status ExecuteMatch(std::vector<uint8_t>* out);
  Status Fail(Status status);

  size_t raw_size_ = 0;
  size_t produced_ = 0;
  size_t peak_buffered_ = 0;
  State state_ = State::kToken;
  Status error_;                 // sticky
  std::vector<uint8_t> window_;  // trailing bytes of the output stream
  uint8_t token_ = 0;
  size_t literal_remaining_ = 0;
  size_t match_code_ = 0;
  size_t offset_ = 0;
  uint8_t offset_bytes_ = 0;  // how many of the 2 offset bytes arrived
};

/// \brief Incremental DecompressBlob: absorbs a stored blob (framed or raw
/// legacy) in chunks and streams out the decompressed payload. kNone and
/// legacy blobs pass through window-by-window; kLz streams through
/// LzDecompressor; kShuffleLz must buffer the LZ output until Finish()
/// because the byte-plane unshuffle is a global transpose (documented
/// exception — shuffle is sized for float payloads that compress well, so
/// the buffered plane data is the compressed-side win, not the raw blob).
class BlobDecompressor {
 public:
  BlobDecompressor() = default;

  /// Absorbs the next stored-blob chunk, appending decompressed bytes to
  /// `*out`. Errors are sticky.
  Status Feed(std::span<const uint8_t> data, std::vector<uint8_t>* out);

  /// Declares end of the stored blob; appends any final bytes to `*out`
  /// (everything, for kShuffleLz) and validates sizes.
  Status Finish(std::vector<uint8_t>* out);

  /// Decompressed payload size, known once a framed header has been
  /// parsed; nullopt before that and for raw legacy passthrough (where the
  /// stored size *is* the payload size — the caller knows it).
  std::optional<uint64_t> raw_size() const { return raw_size_; }

  size_t peak_buffered_bytes() const;

 private:
  enum class Mode : uint8_t {
    kHeader,       // accumulating the frame header (or deciding legacy)
    kPassthrough,  // raw legacy blob: emit bytes unchanged
    kStoredNone,   // framed kNone: emit payload, count bytes
    kStoredLz,     // framed kLz: stream through lz_
    kStoredShuffleLz,  // framed kShuffleLz: collect lz_ output, transpose at
                       // Finish
  };

  Status Fail(Status status);

  Mode mode_ = Mode::kHeader;
  Status error_;  // sticky
  std::vector<uint8_t> header_;
  std::optional<uint64_t> raw_size_;
  uint64_t emitted_ = 0;
  std::optional<LzDecompressor> lz_;
  std::vector<uint8_t> shuffled_;  // kShuffleLz only
  size_t peak_header_ = 0;
};

/// Splits `input` into `stride` byte planes: all 1st bytes, all 2nd bytes, …
/// The tail (input.size() % stride) is appended verbatim.
std::vector<uint8_t> ShuffleBytes(std::span<const uint8_t> input, size_t stride);

/// Inverse of ShuffleBytes.
std::vector<uint8_t> UnshuffleBytes(std::span<const uint8_t> input,
                                    size_t stride);
/// @}

}  // namespace mmm

#endif  // MMM_SERIALIZE_COMPRESS_H_
