// Adaptive deployment (the paper's §4.5 future work, implemented):
// the manager observes the workload and re-selects the management approach
// per save.
//
// Phase 1 is a quiet archive (rare recoveries): the policy favors
// Provenance. Phase 2 is an investigation period — engineers repeatedly
// recover fleet versions — so time-to-recover starts to matter and the
// policy moves to a cheaper-to-recover approach while keeping every saved
// version recoverable.
//
// Run: ./build/examples/adaptive_deployment

#include <cstdio>

#include "common/strings.h"
#include "core/adaptive.h"
#include "workload/scenario.h"

using namespace mmm;  // NOLINT — example code

int main() {
  ScenarioConfig config = ScenarioConfig::Battery(/*num_models=*/300);
  config.samples_per_dataset = 96;
  MultiModelScenario scenario(config);
  scenario.Init().Check();

  ModelSetManager::Options options;
  options.root_dir = "/tmp/mmm-adaptive";
  options.resolver = &scenario;
  Env::Default()->RemoveDirs(options.root_dir).Check();
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  AdaptivePolicyOptions policy;
  policy.profile.recover_time_weight = 1.0;
  policy.profile.retrain_seconds_per_model = 900.0;
  policy.smoothing = 0.6;
  AdaptiveModelSetManager adaptive(manager.get(), policy);

  std::printf("=== Adaptive multi-model deployment (300 models) ===\n\n");
  adaptive.SaveInitial(scenario.current_set()).status().Check();
  std::printf("%-7s %-12s %-11s %9s %13s\n", "cycle", "phase", "approach",
              "storage", "recoveries/s.");

  std::vector<std::string> versions{adaptive.head()};
  for (int cycle = 1; cycle <= 6; ++cycle) {
    bool investigation = cycle >= 4;
    if (investigation) {
      // Engineers pull historical fleet versions while debugging.
      for (int r = 0; r < 6; ++r) {
        adaptive.Recover(versions[versions.size() / 2]).status().Check();
      }
    }
    ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
    SaveResult saved =
        adaptive.SaveDerived(scenario.current_set(), update).ValueOrDie();
    versions.push_back(saved.set_id);
    std::printf("U3-%-4d %-12s %-11s %9s %13.2f\n", cycle,
                investigation ? "investigate" : "archive",
                ApproachTypeName(adaptive.current_choice()).c_str(),
                HumanBytes(saved.bytes_written).c_str(),
                adaptive.profile().recoveries_per_save);
  }

  std::printf("\nEvery archived version stays recoverable across the switch:\n");
  for (size_t v = 0; v < versions.size(); ++v) {
    RecoverStats stats;
    auto recovered = manager->Recover(versions[v], &stats);
    std::printf("  %-24s %s (%llu sets walked)\n", versions[v].c_str(),
                recovered.ok() ? "ok" : recovered.status().ToString().c_str(),
                static_cast<unsigned long long>(stats.sets_recovered));
  }
  std::printf("\nDone. Artifacts under /tmp/mmm-adaptive\n");
  return 0;
}
