
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serialize/binary_io.cc" "src/serialize/CMakeFiles/mmm_serialize.dir/binary_io.cc.o" "gcc" "src/serialize/CMakeFiles/mmm_serialize.dir/binary_io.cc.o.d"
  "/root/repo/src/serialize/compress.cc" "src/serialize/CMakeFiles/mmm_serialize.dir/compress.cc.o" "gcc" "src/serialize/CMakeFiles/mmm_serialize.dir/compress.cc.o.d"
  "/root/repo/src/serialize/crc32.cc" "src/serialize/CMakeFiles/mmm_serialize.dir/crc32.cc.o" "gcc" "src/serialize/CMakeFiles/mmm_serialize.dir/crc32.cc.o.d"
  "/root/repo/src/serialize/json.cc" "src/serialize/CMakeFiles/mmm_serialize.dir/json.cc.o" "gcc" "src/serialize/CMakeFiles/mmm_serialize.dir/json.cc.o.d"
  "/root/repo/src/serialize/sha256.cc" "src/serialize/CMakeFiles/mmm_serialize.dir/sha256.cc.o" "gcc" "src/serialize/CMakeFiles/mmm_serialize.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
