// Serving-layer benchmark: recovery cost under a Zipfian request trace as a
// function of layer-cache capacity.
//
// A battery deployment is saved with the Update approach (one full base set,
// then one delta per update cycle). A multi-version Zipfian trace — newest
// sets hottest — is then replayed through ModelSetService at several cache
// capacities, from cache-off to 4x the base set's footprint. Reported per
// capacity: layer hit rate, sets served without any store read, file-store
// read ops, and the modeled per-request recovery cost (mean / p99).
//
// Expected shape: with the cache sized to hold the base set, derived-set
// recoveries stop re-reading the base snapshot (the staircase in the
// paper's Figure 5 flattens), so store reads and modeled cost drop sharply;
// beyond that, extra capacity buys diminishing returns. workers=1 keeps
// every request's counters exact and the run bit-deterministic.
//
// Results are also written to BENCH_serving.json.
//
// A second table replays the trace at workers {1, N}; its quantiles are
// computed over the pooled per-request samples of every worker (quantiles
// of per-worker means would understate p99).
//
// Knobs: MMM_MODELS (default 200), MMM_SAMPLES (128), MMM_U3_ITERATIONS (8),
// MMM_REQUESTS (200), MMM_WORKERS (4).

#include "bench/bench_util.h"
#include "serve/layer_cache.h"
#include "serve/service.h"
#include "serve/trace.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/200,
                                         /*default_runs=*/1);
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 128));
  knobs.u3_iterations = static_cast<size_t>(GetEnvInt64("MMM_U3_ITERATIONS", 8));
  size_t requests = static_cast<size_t>(GetEnvInt64("MMM_REQUESTS", 200));
  knobs.Describe("tab_serving_cache");

  // Build the versioned store: base set + one Update delta per cycle.
  ScenarioConfig scenario_config = ScenarioConfig::Battery(knobs.models);
  scenario_config.samples_per_dataset = knobs.samples;
  MultiModelScenario scenario(scenario_config);
  scenario.Init().Check();

  ModelSetManager::Options options;
  options.root_dir = "/tmp/mmm-bench-serving/store";
  options.resolver = &scenario;
  options.profile = SetupProfile::Server();
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  std::vector<std::string> ids;
  ModelSet base_set = scenario.current_set();
  ids.push_back(manager->SaveInitial(ApproachType::kUpdate, base_set)
                    .ValueOrDie()
                    .set_id);
  for (size_t cycle = 0; cycle < knobs.u3_iterations; ++cycle) {
    ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
    update.base_set_id = ids.back();
    ids.push_back(
        manager->SaveDerived(ApproachType::kUpdate, scenario.current_set(), update)
            .ValueOrDie()
            .set_id);
  }

  // The base set's cache footprint anchors the capacity sweep.
  uint64_t base_bytes = 0;
  for (const StateDict& model : base_set.models) {
    for (const auto& [key, tensor] : model) {
      base_bytes += LayerCache::ChargeOf(tensor);
    }
  }

  // Newest versions first: they take the head of the Zipfian distribution.
  std::vector<std::string> hot_first(ids.rbegin(), ids.rend());
  std::vector<std::string> trace =
      BuildZipfianTrace(hot_first, requests, /*theta=*/0.99, /*seed=*/7);

  struct Row {
    std::string label;
    uint64_t capacity;
  };
  const Row rows[] = {
      {"off", 0},
      {"0.5x base", base_bytes / 2},
      {"1x base", base_bytes + base_bytes / 8},  // base + headroom for deltas
      {"2x base", 2 * base_bytes},
      {"4x base", 4 * base_bytes},
  };

  std::printf(
      "\nUpdate approach, %zu models, %zu versions, %zu Zipfian requests "
      "(theta 0.99, base footprint %.2f MB):\n",
      knobs.models, ids.size(), trace.size(),
      static_cast<double>(base_bytes) / 1e6);
  std::printf("%-10s | %8s | %10s | %10s | %12s | %12s\n", "cache", "hit %",
              "from-cache", "file reads", "mean ms", "p99 ms");

  JsonValue out_rows = JsonValue::Array();
  for (const Row& row : rows) {
    ModelSetServiceOptions service_options;
    service_options.workers = 1;  // exact per-request counters
    service_options.cache_enabled = row.capacity > 0;
    service_options.cache_capacity_bytes = row.capacity;
    ModelSetService service(manager.get(), service_options);

    StoreStats before = manager->file_store()->stats();
    std::vector<ServeResult> results = service.Replay(trace);
    StoreStats reads = manager->file_store()->stats() - before;

    CacheRequestStats cache;
    std::vector<uint64_t> modeled;
    modeled.reserve(results.size());
    for (const ServeResult& r : results) {
      r.status.Check();  // every request must succeed, bit-exact
      cache += r.cache;
      modeled.push_back(r.modeled_store_nanos);
    }
    uint64_t probes = cache.layer_hits + cache.layer_misses;
    double hit_rate =
        probes == 0 ? 0.0
                    : static_cast<double>(cache.layer_hits) /
                          static_cast<double>(probes);
    LatencySummary lat = Summarize(modeled);

    std::printf("%-10s | %8.1f | %10llu | %10llu | %12.3f | %12.3f\n",
                row.label.c_str(), 100.0 * hit_rate,
                static_cast<unsigned long long>(cache.sets_from_cache),
                static_cast<unsigned long long>(reads.read_ops), lat.mean / 1e6,
                static_cast<double>(lat.p99) / 1e6);

    JsonValue entry = JsonValue::Object();
    entry.Set("label", row.label);
    entry.Set("capacity_bytes", row.capacity);
    entry.Set("layer_hit_rate", hit_rate);
    entry.Set("layer_hits", cache.layer_hits);
    entry.Set("layer_misses", cache.layer_misses);
    entry.Set("sets_from_cache", cache.sets_from_cache);
    entry.Set("file_read_ops", reads.read_ops);
    entry.Set("file_bytes_read", reads.bytes_read);
    entry.Set("mean_recover_nanos", lat.mean);
    entry.Set("p99_recover_nanos", lat.p99);
    out_rows.Append(std::move(entry));
  }

  // Worker sweep at the 1x-base capacity: tail latency over the *pooled*
  // per-request samples of all workers. (Quantiles of per-worker means
  // would understate p99 — one slow request on one worker disappears into
  // that worker's mean.) The cache hit pattern can shift at workers>1
  // (concurrent requests race to populate shared entries), so hit counters
  // are reported per arm rather than asserted.
  size_t sweep_workers = static_cast<size_t>(GetEnvInt64("MMM_WORKERS", 4));
  std::printf("\nWorker sweep at 1x base capacity (pooled per-request "
              "quantiles):\n");
  std::printf("%-10s | %8s | %12s | %12s | %12s\n", "workers", "hit %",
              "mean ms", "p50 ms", "p99 ms");
  JsonValue worker_rows = JsonValue::Array();
  for (size_t workers : {size_t{1}, sweep_workers}) {
    ModelSetServiceOptions service_options;
    service_options.workers = workers;
    service_options.cache_enabled = true;
    service_options.cache_capacity_bytes = base_bytes + base_bytes / 8;
    ModelSetService service(manager.get(), service_options);

    std::vector<ServeResult> results = service.Replay(trace);
    CacheRequestStats cache;
    std::vector<uint64_t> modeled;  // pooled across all workers
    modeled.reserve(results.size());
    for (const ServeResult& r : results) {
      r.status.Check();
      cache += r.cache;
      modeled.push_back(r.modeled_store_nanos);
    }
    uint64_t probes = cache.layer_hits + cache.layer_misses;
    double hit_rate = probes == 0 ? 0.0
                                  : static_cast<double>(cache.layer_hits) /
                                        static_cast<double>(probes);
    LatencySummary lat = Summarize(std::move(modeled));
    std::printf("%-10zu | %8.1f | %12.3f | %12.3f | %12.3f\n", workers,
                100.0 * hit_rate, lat.mean / 1e6,
                static_cast<double>(lat.p50) / 1e6,
                static_cast<double>(lat.p99) / 1e6);

    JsonValue entry = JsonValue::Object();
    entry.Set("workers", static_cast<uint64_t>(workers));
    entry.Set("layer_hit_rate", hit_rate);
    entry.Set("mean_recover_nanos", lat.mean);
    entry.Set("p50_recover_nanos", lat.p50);
    entry.Set("p99_recover_nanos", lat.p99);
    worker_rows.Append(std::move(entry));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "tab_serving_cache");
  doc.Set("models", static_cast<uint64_t>(knobs.models));
  doc.Set("versions", static_cast<uint64_t>(ids.size()));
  doc.Set("requests", static_cast<uint64_t>(trace.size()));
  doc.Set("theta", 0.99);
  doc.Set("base_footprint_bytes", base_bytes);
  doc.Set("rows", std::move(out_rows));
  doc.Set("worker_rows", std::move(worker_rows));
  std::string json = doc.DumpPretty() + "\n";
  Env::Default()
      ->WriteFile("BENCH_serving.json",
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(json.data()),
                      json.size()))
      .Check();
  std::printf(
      "\nwrote BENCH_serving.json\n"
      "(Expected: at >= 1x base capacity, derived-set recoveries stop "
      "re-reading the base snapshot\n and mean/p99 modeled cost drop; 'off' "
      "is the cache-less control arm.)\n");

  CleanupWorkDir(knobs, "/tmp/mmm-bench-serving");
  return 0;
}
