file(REMOVE_RECURSE
  "CMakeFiles/tab_ablation_hash_granularity.dir/tab_ablation_hash_granularity.cpp.o"
  "CMakeFiles/tab_ablation_hash_granularity.dir/tab_ablation_hash_granularity.cpp.o.d"
  "tab_ablation_hash_granularity"
  "tab_ablation_hash_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ablation_hash_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
