file(REMOVE_RECURSE
  "CMakeFiles/battery_fleet.dir/battery_fleet.cpp.o"
  "CMakeFiles/battery_fleet.dir/battery_fleet.cpp.o.d"
  "battery_fleet"
  "battery_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
