file(REMOVE_RECURSE
  "CMakeFiles/test_prov.dir/test_prov.cc.o"
  "CMakeFiles/test_prov.dir/test_prov.cc.o.d"
  "test_prov"
  "test_prov.pdb"
  "test_prov[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
