file(REMOVE_RECURSE
  "libmmm_battery.a"
)
