#ifndef MMM_NN_ARCHITECTURE_H_
#define MMM_NN_ARCHITECTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "serialize/json.h"
#include "nn/sequential.h"

namespace mmm {

/// \brief Description of one layer in an architecture.
struct LayerSpec {
  std::string name;   ///< unique within the architecture ("fc1", "conv2").
  std::string type;   ///< linear | conv2d | tanh | relu | sigmoid |
                      ///< maxpool2d | flatten
  size_t in = 0;      ///< in features/channels (linear, conv2d)
  size_t out = 0;     ///< out features/channels (linear, conv2d)
  size_t kernel = 0;  ///< kernel size (conv2d)

  bool operator==(const LayerSpec& other) const = default;
};

/// \brief Serializable description of a model architecture.
///
/// This is the artifact the paper calls "model architecture": all models of a
/// multi-model set share one ArchitectureSpec, so the Baseline approach
/// persists it exactly once per set while MMlib-base persists it once per
/// model (optimization opportunity O1).
struct ArchitectureSpec {
  /// Family label ("FFNN-48", "FFNN-69", "CIFAR").
  std::string family;
  /// Per-sample input shape, excluding the batch dimension ({4} or {3,32,32}).
  std::vector<size_t> input_shape;
  std::vector<LayerSpec> layers;

  /// Instantiates an uninitialized network from the spec.
  Result<std::unique_ptr<Sequential>> Build() const;

  /// Total number of trainable scalars implied by the spec.
  size_t ParameterCount() const;

  /// Names of layers that own parameters, in order ("fc1", "fc2", ...).
  std::vector<std::string> ParameterLayerNames() const;

  JsonValue ToJson() const;
  static Result<ArchitectureSpec> FromJson(const JsonValue& json);

  /// A Python-like source listing of the architecture. MMlib-base persists
  /// this "model code" artifact with every model, as the original MMlib does.
  std::string SourceCode() const;

  bool operator==(const ArchitectureSpec& other) const = default;
};

/// \name Model zoo (paper §4.1).
/// Parameter counts match the paper exactly.
/// @{

/// Battery FFNN with hidden width `hidden`: 4 inputs (current, temperature,
/// charge, state-of-health), three hidden tanh layers, one linear output.
ArchitectureSpec MakeBatteryFfnnSpec(size_t hidden, const std::string& family);

/// FFNN-48: 4,993 parameters (Heinrich et al. best performer).
ArchitectureSpec Ffnn48Spec();

/// FFNN-69: 10,075 parameters (identical shape, wider layers).
ArchitectureSpec Ffnn69Spec();

/// CIFAR convnet: 6,882 parameters
/// (conv 3->6 k5, pool, conv 6->16 k5, pool, fc 400->10).
ArchitectureSpec CifarNetSpec();
/// @}

}  // namespace mmm

#endif  // MMM_NN_ARCHITECTURE_H_
