#ifndef MMM_SERIALIZE_SHA256_H_
#define MMM_SERIALIZE_SHA256_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mmm {

/// \brief A 256-bit digest.
struct Sha256Digest {
  std::array<uint8_t, 32> bytes{};

  /// Lowercase hex representation (64 characters).
  std::string ToHex() const;

  bool operator==(const Sha256Digest& other) const { return bytes == other.bytes; }
  bool operator!=(const Sha256Digest& other) const { return !(*this == other); }
};

/// \brief Incremental SHA-256 (FIPS 180-4).
///
/// The Update approach hashes every layer's parameter bytes to detect which
/// layers changed between model-set versions without loading the previous
/// set's parameters.
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input.
  void Update(std::span<const uint8_t> data);
  void Update(std::string_view data);

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Sha256Digest Finish();

  /// One-shot helpers.
  static Sha256Digest Hash(std::span<const uint8_t> data);
  static Sha256Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffer_size_ = 0;
};

/// \brief Hashes `count` equal-length byte streams at once:
/// `digests[i] == Sha256::Hash({streams[i], length})` for every `i`,
/// bit-exactly.
///
/// SHA-256 has no intra-message parallelism, but a model set hashes one
/// same-shaped layer per model (core/blob_formats.cc), so independent
/// streams of identical length are the natural unit: they run in lockstep
/// SIMD lanes (8-way AVX2 / 4-way SSE2, dispatched via ActiveSimdLevel)
/// with a scalar loop for the remainder and for non-x86 builds. Integer
/// rounds only, so every lane width produces identical digests.
void Sha256HashMany(const uint8_t* const* streams, size_t length,
                    size_t count, Sha256Digest* digests);

}  // namespace mmm

#endif  // MMM_SERIALIZE_SHA256_H_
