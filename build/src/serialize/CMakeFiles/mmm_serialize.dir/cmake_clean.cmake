file(REMOVE_RECURSE
  "CMakeFiles/mmm_serialize.dir/binary_io.cc.o"
  "CMakeFiles/mmm_serialize.dir/binary_io.cc.o.d"
  "CMakeFiles/mmm_serialize.dir/compress.cc.o"
  "CMakeFiles/mmm_serialize.dir/compress.cc.o.d"
  "CMakeFiles/mmm_serialize.dir/crc32.cc.o"
  "CMakeFiles/mmm_serialize.dir/crc32.cc.o.d"
  "CMakeFiles/mmm_serialize.dir/json.cc.o"
  "CMakeFiles/mmm_serialize.dir/json.cc.o.d"
  "CMakeFiles/mmm_serialize.dir/sha256.cc.o"
  "CMakeFiles/mmm_serialize.dir/sha256.cc.o.d"
  "libmmm_serialize.a"
  "libmmm_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
