// Downward includes only: serve may depend on core, storage, and common.
#ifndef SA_FIXTURE_LAYER_DAG_CLEAN_H_
#define SA_FIXTURE_LAYER_DAG_CLEAN_H_

#include "common/status.h"
#include "core/manager.h"
#include "storage/executor.h"

#endif  // SA_FIXTURE_LAYER_DAG_CLEAN_H_
