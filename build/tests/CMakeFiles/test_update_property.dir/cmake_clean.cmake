file(REMOVE_RECURSE
  "CMakeFiles/test_update_property.dir/test_update_property.cc.o"
  "CMakeFiles/test_update_property.dir/test_update_property.cc.o.d"
  "test_update_property"
  "test_update_property.pdb"
  "test_update_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
