#include "fleet/content.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "common/strings.h"
#include "nn/trainer.h"
#include "prov/pipeline.h"

namespace mmm {
namespace {

BatteryDataConfig MakeDataConfig(const FleetContentEngine::Config& config) {
  BatteryDataConfig data_config;
  data_config.seed = config.seed;
  data_config.samples_per_cycle = config.samples_per_dataset;
  return data_config;
}

/// Battery aging along the plan: SoH decays with the save ordinal (clamped
/// like the scenario's long-horizon floor).
double SohForCycle(uint64_t cycle) {
  return std::max(0.5, 1.0 - 0.01 * static_cast<double>(cycle));
}

}  // namespace

FleetContentEngine::FleetContentEngine(const Config& config)
    : config_(config),
      spec_(Ffnn48Spec()),
      partial_layers_({"fc3", "fc4"}),
      battery_gen_(MakeDataConfig(config)) {}

Result<const ModelSet*> FleetContentEngine::InitialSet(uint64_t ordinal) {
  auto it = sets_.find(ordinal);
  if (it != sets_.end()) return &it->second;
  MMM_ASSIGN_OR_RETURN(
      ModelSet set,
      MakeInitializedSet(spec_, config_.models_per_set,
                         Rng::Mix64(config_.seed ^ (0xf1ee7000ULL + ordinal))));
  return &(sets_[ordinal] = std::move(set));
}

TrainPipelineSpec FleetContentEngine::PipelineFor(uint64_t ordinal) const {
  TrainConfig train;
  train.epochs = 1;
  train.batch_size = 16;
  train.learning_rate = 0.05f;
  train.optimizer = "sgd";
  train.loss = "mse";
  train.shuffle_seed = Rng::Mix64(config_.seed ^ (0xabcdef12345ULL + ordinal));
  return TrainPipelineSpec::Create(train, CanonicalPipelineCode(train));
}

TrainingData FleetContentEngine::GenerateData(uint64_t model_index,
                                              uint64_t cycle) const {
  return battery_gen_.GenerateCellDataset(model_index, cycle,
                                          SohForCycle(cycle));
}

Result<const ModelSet*> FleetContentEngine::DerivedSet(uint64_t ordinal,
                                                       uint64_t parent) {
  auto it = sets_.find(ordinal);
  if (it != sets_.end()) return &it->second;
  auto parent_it = sets_.find(parent);
  if (parent_it == sets_.end()) {
    return Status::InvalidArgument("fleet content: parent ordinal not computed");
  }
  ModelSet set = parent_it->second;  // start from the parent's exact bytes

  const size_t n = config_.models_per_set;
  auto count_full = static_cast<size_t>(std::llround(
      config_.full_update_fraction * static_cast<double>(n)));
  auto count_partial = static_cast<size_t>(std::llround(
      config_.partial_update_fraction * static_cast<double>(n)));
  count_full = std::min(count_full, n);
  count_partial = std::min(count_partial, n - count_full);

  // The retrained subset is drawn per ordinal, not per parent: two children
  // of one base retrain different cells.
  Rng schedule_rng = Rng(config_.seed).Fork("fleet-update", ordinal);
  std::vector<size_t> order = schedule_rng.Permutation(n);

  StoredUpdate update;
  update.parent = parent;
  update.kinds.assign(n, UpdateKind::kNone);
  update.data_refs.resize(n);

  TrainPipelineSpec pipeline = PipelineFor(ordinal);
  for (size_t i = 0; i < count_full + count_partial; ++i) {
    size_t model_index = order[i];
    UpdateKind kind = i < count_full ? UpdateKind::kFull : UpdateKind::kPartial;
    update.kinds[model_index] = kind;

    TrainingData data = GenerateData(model_index, ordinal);
    DatasetRef ref;
    ref.uri = StringFormat("battery://cell/%llu/cycle/%llu",
                           static_cast<unsigned long long>(model_index),
                           static_cast<unsigned long long>(ordinal));
    ref.content_hash = HashTrainingData(data);
    update.data_refs[model_index] = std::move(ref);

    // Exactly the steps ReplayEngine performs from the persisted record, so
    // provenance recovery reproduces these bytes bit-for-bit.
    MMM_ASSIGN_OR_RETURN(Model model, Model::Create(spec_));
    MMM_RETURN_NOT_OK(model.LoadStateDict(set.models[model_index]));
    TrainConfig train = pipeline.train_config;
    if (kind == UpdateKind::kPartial) train.trainable_layers = partial_layers_;
    MMM_ASSIGN_OR_RETURN(TrainReport report,
                         TrainModel(&model, data.inputs, data.targets, train));
    (void)report;
    set.models[model_index] = model.GetStateDict();
  }

  updates_[ordinal] = std::move(update);
  return &(sets_[ordinal] = std::move(set));
}

ModelSetUpdateInfo FleetContentEngine::UpdateFor(uint64_t ordinal,
                                                 uint64_t parent) {
  ModelSetUpdateInfo info;
  auto it = updates_.find(ordinal);
  if (it == updates_.end()) return info;
  info.kinds = it->second.kinds;
  info.data_refs = it->second.data_refs;
  info.pipeline = PipelineFor(ordinal);
  info.partial_layers = partial_layers_;
  auto parent_it = sets_.find(parent);
  if (parent_it != sets_.end()) info.base_set = &parent_it->second;
  return info;
}

const ModelSet& FleetContentEngine::ExpectedSet(uint64_t ordinal) const {
  return sets_.at(ordinal);
}

Result<TrainingData> FleetContentEngine::Resolve(const DatasetRef& ref) {
  // Parse "battery://cell/<model>/cycle/<ordinal>".
  std::vector<std::string> parts = Split(ref.uri, '/');
  if (parts.size() != 6 || parts[0] != "battery:" || parts[2] != "cell" ||
      parts[4] != "cycle") {
    return Status::InvalidArgument("malformed fleet dataset uri '", ref.uri,
                                   "'");
  }
  char* end = nullptr;
  uint64_t model_index = std::strtoull(parts[3].c_str(), &end, 10);
  if (end == parts[3].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad model index in uri '", ref.uri, "'");
  }
  uint64_t cycle = std::strtoull(parts[5].c_str(), &end, 10);
  if (end == parts[5].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad cycle in uri '", ref.uri, "'");
  }
  TrainingData data = GenerateData(model_index, cycle);
  if (!ref.content_hash.empty() &&
      HashTrainingData(data) != ref.content_hash) {
    return Status::Corruption("fleet dataset '", ref.uri,
                              "' no longer matches its content hash");
  }
  return data;
}

}  // namespace mmm
