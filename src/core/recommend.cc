#include "core/recommend.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace mmm {
namespace {

// Per-model metadata MMlib-base persists redundantly (architecture, code,
// environment, dict keys), in bytes; measured from the implementation
// (bench/tab_overhead_breakdown reports the exact numbers).
constexpr double kMmlibPerModelOverhead = 4500.0;
// Per-(model, layer) hash record in the Update approach's hash blob.
constexpr double kHashBytesPerParamTensor = 32.0;
constexpr double kParamTensorsPerModel = 8.0;
// One dataset reference in a provenance record.
constexpr double kBytesPerDatasetRef = 130.0;
// Set-level fixed overhead (set document + architecture blob).
constexpr double kSetOverheadBytes = 4000.0;
// Environment + pipeline record, stored once per provenance set.
constexpr double kProvRecordBytes = 6000.0;

}  // namespace

ApproachCostEstimate EstimateApproachCost(ApproachType approach,
                                          const WorkloadProfile& w) {
  ApproachCostEstimate e;
  e.approach = approach;
  const double model_bytes = static_cast<double>(w.params_per_model) * 4.0;
  const double n = static_cast<double>(w.num_models);
  const double full_set_bytes = n * model_bytes;
  const double hash_bytes = n * kParamTensorsPerModel * kHashBytesPerParamTensor;

  double store_ops = 0.0;
  switch (approach) {
    case ApproachType::kMMlibBase:
      e.storage_bytes_per_cycle =
          full_set_bytes + n * kMmlibPerModelOverhead;
      store_ops = 3.0 * n;  // weights + code + metadata per model
      e.recover_seconds = e.storage_bytes_per_cycle / w.store_bandwidth_bytes_per_s +
                          2.0 * n * w.store_op_seconds;
      break;
    case ApproachType::kBaseline:
      e.storage_bytes_per_cycle = full_set_bytes + kSetOverheadBytes;
      store_ops = 3.0;
      e.recover_seconds = e.storage_bytes_per_cycle / w.store_bandwidth_bytes_per_s +
                          3.0 * w.store_op_seconds;
      break;
    case ApproachType::kUpdate: {
      double changed_bytes =
          n * w.update_rate * w.updated_param_fraction * model_bytes;
      e.storage_bytes_per_cycle = changed_bytes + hash_bytes + kSetOverheadBytes;
      store_ops = 4.0;  // doc + diff + hashes (+ base hash read)
      // Recovery walks the chain: every hop loads ~the same delta volume on
      // top of the initial full snapshot.
      e.recover_seconds =
          (full_set_bytes + w.expected_chain_length * e.storage_bytes_per_cycle) /
              w.store_bandwidth_bytes_per_s +
          (1.0 + w.expected_chain_length) * 3.0 * w.store_op_seconds;
      break;
    }
    case ApproachType::kProvenance: {
      double refs = n * w.update_rate;
      e.storage_bytes_per_cycle =
          kProvRecordBytes + refs * kBytesPerDatasetRef + kSetOverheadBytes / 4.0;
      store_ops = 2.0;  // doc + provenance record
      e.recover_seconds =
          full_set_bytes / w.store_bandwidth_bytes_per_s +
          w.expected_chain_length * refs * w.retrain_seconds_per_model;
      break;
    }
  }
  // Saving moves the cycle's bytes once plus one round-trip per store op.
  e.save_seconds = e.storage_bytes_per_cycle / w.store_bandwidth_bytes_per_s +
                   store_ops * w.store_op_seconds;
  return e;
}

Recommendation RecommendApproach(const WorkloadProfile& workload) {
  std::vector<ApproachCostEstimate> estimates;
  for (ApproachType type : kAllApproaches) {
    estimates.push_back(EstimateApproachCost(type, workload));
  }
  // Normalize each metric by the best candidate so weights are comparable.
  double min_storage = estimates[0].storage_bytes_per_cycle;
  double min_save = estimates[0].save_seconds;
  double min_recover = estimates[0].recover_seconds;
  for (const auto& e : estimates) {
    min_storage = std::min(min_storage, e.storage_bytes_per_cycle);
    min_save = std::min(min_save, e.save_seconds);
    min_recover = std::min(min_recover, e.recover_seconds);
  }
  auto safe_ratio = [](double value, double base) {
    return base > 0.0 ? value / base : 1.0;
  };
  for (auto& e : estimates) {
    e.weighted_score =
        workload.storage_weight *
            std::log2(1.0 + safe_ratio(e.storage_bytes_per_cycle, min_storage)) +
        workload.save_time_weight *
            std::log2(1.0 + safe_ratio(e.save_seconds, min_save)) +
        workload.recover_time_weight * workload.recoveries_per_save *
            std::log2(1.0 + safe_ratio(e.recover_seconds, min_recover));
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const ApproachCostEstimate& a, const ApproachCostEstimate& b) {
              return a.weighted_score < b.weighted_score;
            });

  Recommendation rec;
  rec.approach = estimates.front().approach;
  rec.estimates = estimates;
  rec.rationale = StringFormat(
      "%s minimizes the weighted cost: est. %.1f MB/cycle storage, %.3f s "
      "save, %.1f s recover (weights: storage %.2f, save %.2f, recover %.2f x "
      "%.3f recoveries/save)",
      ApproachTypeName(rec.approach).c_str(),
      estimates.front().storage_bytes_per_cycle / 1e6,
      estimates.front().save_seconds, estimates.front().recover_seconds,
      workload.storage_weight, workload.save_time_weight,
      workload.recover_time_weight, workload.recoveries_per_save);
  return rec;
}

}  // namespace mmm
