#ifndef MMM_CORE_MODEL_SET_H_
#define MMM_CORE_MODEL_SET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset_ref.h"
#include "nn/architecture.h"
#include "nn/model.h"
#include "prov/pipeline.h"

namespace mmm {

/// \brief A set of models sharing one architecture (Figure 1 of the paper).
///
/// The unit of every save/recover operation in multi-model management.
/// Model k corresponds to the same real-world entity (battery cell k) in
/// every version of the set.
struct ModelSet {
  ArchitectureSpec spec;
  /// One state dict per model; all must match the spec's parameter layout.
  std::vector<StateDict> models;

  size_t size() const { return models.size(); }
};

/// (qualified key, shape) of every parameter tensor, in state-dict order.
using ParamLayout = std::vector<std::pair<std::string, Shape>>;

/// Derives the parameter layout implied by an architecture spec without
/// instantiating a network.
ParamLayout LayoutOf(const ArchitectureSpec& spec);

/// Scalar parameter count of a layout.
size_t LayoutNumel(const ParamLayout& layout);

/// Verifies every model in the set matches the spec's layout.
Status CheckSetConsistent(const ModelSet& set);

/// Creates a set of `count` freshly initialized models. Model k is seeded
/// with (seed, k), so sets are reproducible and models differ from each
/// other.
Result<ModelSet> MakeInitializedSet(const ArchitectureSpec& spec, size_t count,
                                    uint64_t seed);

/// How a model changed relative to the base set (paper §2.1).
enum class UpdateKind : int {
  kNone = 0,     ///< not retrained; parameters identical to the base set
  kPartial = 1,  ///< a subset of layers retrained
  kFull = 2,     ///< all layers retrained
};

/// \brief Derivation metadata available when saving a non-initial set.
///
/// Baseline/MMlib-base ignore everything but nothing breaks without it;
/// Update needs `base_set_id`; Provenance needs all fields.
struct ModelSetUpdateInfo {
  /// Id of the set this one was derived from (must already be saved).
  std::string base_set_id;
  /// Per-model update kind; size must equal the set size. Empty means
  /// unknown (treated as all-full by Provenance validation).
  std::vector<UpdateKind> kinds;
  /// Per-model training-data reference; only entries of updated models are
  /// read.
  std::vector<DatasetRef> data_refs;
  /// The shared training pipeline used for this update cycle.
  TrainPipelineSpec pipeline;
  /// Layers retrained for kPartial models (shared across the set).
  std::vector<std::string> partial_layers;
  /// Optional borrowed view of the base set's parameter values. Only needed
  /// when the Update approach runs with XOR delta encoding (the saver — the
  /// fleet manager that just retrained the models — usually still holds the
  /// previous version in memory).
  const ModelSet* base_set = nullptr;
};

}  // namespace mmm

#endif  // MMM_CORE_MODEL_SET_H_
