#ifndef MMM_CORE_GC_H_
#define MMM_CORE_GC_H_

#include <string>
#include <vector>

#include "core/approach.h"

namespace mmm {

/// \brief Outcome of a deletion/retention operation.
struct DeleteReport {
  size_t sets_deleted = 0;
  size_t blobs_deleted = 0;
  uint64_t bytes_reclaimed = 0;
  /// Of blobs_deleted, how many were content-addressed chunks reclaimed by
  /// the refcount sweep (always 0 when CAS is off).
  size_t chunks_swept = 0;
  std::vector<std::string> deleted_set_ids;
};

/// \brief Options of DeleteSet.
struct DeleteOptions {
  /// Also delete every set that (transitively) derives from the target.
  /// Without cascade, deleting a set that others depend on fails — Update
  /// deltas and Provenance records are unrecoverable without their base.
  bool cascade = false;
};

/// Deletes a saved set: its metadata document, its per-model documents
/// (MMlib-base), and its file-store artifacts. Fails with InvalidArgument
/// when dependent sets exist and `options.cascade` is false.
Result<DeleteReport> DeleteSet(const StoreContext& context,
                               const std::string& set_id,
                               const DeleteOptions& options = {});

/// Retention sweep: keeps `keep_set_ids` plus everything they (transitively)
/// need for recovery — the lineage closure — and deletes all other sets.
/// Typical use: keep only the newest version of each fleet.
Result<DeleteReport> RetainOnly(const StoreContext& context,
                                const std::vector<std::string>& keep_set_ids);

/// \brief File-store blobs no metadata references (see FindOrphanBlobs).
struct OrphanReport {
  std::vector<std::string> orphan_blobs;
  uint64_t orphan_bytes = 0;

  bool clean() const { return orphan_blobs.empty(); }
};

/// Scans the file store for blobs that neither a set document, an MMlib
/// per-model document, nor a pending commit-journal entry references.
/// Journal-pending blobs are live by definition: they belong to an in-flight
/// or crashed commit whose fate the next journal replay decides, so sweeping
/// them here would race the recovery protocol. A store that only ever
/// commits through journaled batches reports no orphans after replay.
Result<OrphanReport> FindOrphanBlobs(const StoreContext& context);

/// Deletes every orphan FindOrphanBlobs reports.
Result<DeleteReport> SweepOrphanBlobs(const StoreContext& context);

}  // namespace mmm

#endif  // MMM_CORE_GC_H_
