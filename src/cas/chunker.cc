#include "cas/chunker.h"

#include <array>

namespace mmm {

namespace {

/// SplitMix64 step — fills the Gear table with well-mixed constants at
/// compile time, with no runtime randomness source.
constexpr uint64_t SplitMix64(uint64_t* state) {
  uint64_t x = (*state += 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::array<uint64_t, 256> MakeGearTable() {
  std::array<uint64_t, 256> table{};
  uint64_t state = 0x6d6d6d2d63617331ull;  // "mmm-cas1"
  for (uint64_t& entry : table) entry = SplitMix64(&state);
  return table;
}

/// One 64-bit constant per byte value. The Gear hash `h = (h << 1) + g[b]`
/// forgets a byte after 64 shifts, so the cut decision depends only on a
/// sliding window of the last 64 bytes — the property that re-synchronizes
/// boundaries after an edit.
constexpr std::array<uint64_t, 256> kGearTable = MakeGearTable();

bool IsPowerOfTwo(uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace

Status CasOptions::Validate() const {
  if (!IsPowerOfTwo(avg_chunk_bytes)) {
    return Status::InvalidArgument("cas avg_chunk_bytes (", avg_chunk_bytes,
                                   ") must be a power of two");
  }
  if (min_chunk_bytes == 0 || min_chunk_bytes > avg_chunk_bytes ||
      avg_chunk_bytes > max_chunk_bytes) {
    return Status::InvalidArgument(
        "cas chunk sizes must satisfy 0 < min (", min_chunk_bytes,
        ") <= avg (", avg_chunk_bytes, ") <= max (", max_chunk_bytes, ")");
  }
  if (min_blob_bytes == 0) {
    return Status::InvalidArgument("cas min_blob_bytes must be positive");
  }
  return Status::OK();
}

std::vector<ChunkSpan> ChunkBlob(std::span<const uint8_t> data,
                                 const CasOptions& options) {
  std::vector<ChunkSpan> spans;
  if (data.empty()) return spans;

  if (options.fixed_size) {
    const size_t step = static_cast<size_t>(options.avg_chunk_bytes);
    for (size_t start = 0; start < data.size(); start += step) {
      spans.push_back({start, std::min(step, data.size() - start)});
    }
    return spans;
  }

  const uint64_t mask = options.avg_chunk_bytes - 1;
  size_t start = 0;
  uint64_t hash = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    hash = (hash << 1) + kGearTable[data[i]];
    const size_t length = i + 1 - start;
    if ((length >= options.min_chunk_bytes && (hash & mask) == 0) ||
        length >= options.max_chunk_bytes) {
      spans.push_back({start, length});
      start = i + 1;
      hash = 0;
    }
  }
  if (start < data.size()) spans.push_back({start, data.size() - start});
  return spans;
}

}  // namespace mmm
