// Figure 5 (paper §4.4): median time-to-recover per use case, on both
// hardware profiles (5a: M1 laptop, 5b: server).
//
// Expected shape (paper): MMlib-base and Baseline are flat across use cases
// (every set is independently recoverable), with MMlib-base much slower;
// Update and Provenance show a staircase — recovering U3-k walks the whole
// chain back to U1. Provenance uses the paper's measurement protocol
// ("only train one model with reduced data per iteration"); see
// tab_provenance_training for the extensive-training staircase.
//
// A second section replays a Zipfian trace through ModelSetService at
// workers {1, N} with streaming recovery off vs on (DESIGN.md §12). Tail
// latency is computed over the *pooled* per-request samples of all workers
// — quantiles of per-worker means would understate p99 at workers>1.
// With MMM_ASSERT_STREAMING=1 (the CI bench-smoke job) the run fails unless
// streaming p99 TTR <= materializing p99 TTR at workers>1.
//
// Results are also written to BENCH_ttr.json.
//
// Knobs: MMM_MODELS (default 5000), MMM_RUNS (3; paper uses 5),
// MMM_U3_ITERATIONS (3), MMM_SAMPLES (256), MMM_PROV_REPLAY_MODELS (1),
// MMM_PROV_REPLAY_SAMPLES (64), MMM_SERVE_REQUESTS (64),
// MMM_SERVE_WORKERS (4).

#include <cstdlib>

#include "bench/bench_util.h"
#include "serve/service.h"
#include "serve/trace.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

namespace {

JsonValue SummaryJson(const LatencySummary& summary) {
  JsonValue json = JsonValue::Object();
  json.Set("mean_nanos", summary.mean);
  json.Set("p50_nanos", summary.p50);
  json.Set("p99_nanos", summary.p99);
  json.Set("max_nanos", summary.max);
  return json;
}

struct ServeArm {
  LatencySummary wall;
  LatencySummary modeled;
};

/// Replays `trace` at the given worker count with streaming recovery on or
/// off, pooling the raw per-request samples of every worker before the
/// quantiles are taken.
ServeArm RunServeArm(const std::string& root, MultiModelScenario* scenario,
                     const std::vector<std::string>& trace, size_t workers,
                     bool streaming) {
  ModelSetManager::Options options;
  options.root_dir = root;
  options.resolver = scenario;
  options.profile = SetupProfile::Server();
  options.streaming_recovery = streaming;
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  ModelSetServiceOptions service_options;
  service_options.workers = workers;
  // Cache off: every request pays the full store read, which is the path
  // streaming changes; it also keeps workers>1 free of cache-race noise.
  service_options.cache_enabled = false;
  ModelSetService service(manager.get(), service_options);

  std::vector<ServeResult> results = service.Replay(trace);
  std::vector<uint64_t> wall;
  std::vector<uint64_t> modeled;
  wall.reserve(results.size());
  modeled.reserve(results.size());
  for (const ServeResult& r : results) {
    r.status.Check();
    wall.push_back(r.wall_nanos);
    modeled.push_back(r.modeled_store_nanos);
  }
  ServeArm arm;
  arm.wall = Summarize(std::move(wall));
  arm.modeled = Summarize(std::move(modeled));
  return arm;
}

}  // namespace

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv();
  knobs.Describe("fig5_ttr");
  ProvenanceRecoverOptions prov;
  prov.max_replay_models =
      static_cast<size_t>(GetEnvInt64("MMM_PROV_REPLAY_MODELS", 1));
  prov.max_replay_samples =
      static_cast<size_t>(GetEnvInt64("MMM_PROV_REPLAY_SAMPLES", 64));

  JsonValue profiles_json = JsonValue::Array();
  for (const SetupProfile& profile :
       {SetupProfile::M1(), SetupProfile::Server()}) {
    ExperimentConfig config;
    config.scenario = ScenarioConfig::Battery(knobs.models);
    config.scenario.samples_per_dataset = knobs.samples;
    config.u3_iterations = knobs.u3_iterations;
    config.runs = knobs.runs;
    config.measure_ttr = true;
    config.profile = profile;
    config.provenance_recover = prov;
    config.work_dir = "/tmp/mmm-bench-fig5-" + profile.name;

    ExperimentRunner runner(config);
    auto results = runner.Run().ValueOrDie();

    const char* figure = profile.name == "M1" ? "5a" : "5b";
    PrintMetricTable(
        StringFormat("Figure %s: median time-to-recover in s (%s setup, %zu "
                     "models, %d runs)",
                     figure, profile.name.c_str(), knobs.models, knobs.runs),
        results, [](const ApproachMetrics& m) { return Seconds(m.ttr_seconds); });
    PrintMetricTable(
        StringFormat("  breakdown, %s: modeled store latency portion in s",
                     profile.name.c_str()),
        results,
        [](const ApproachMetrics& m) { return Seconds(m.ttr_modeled_seconds); });

    JsonValue profile_json = JsonValue::Object();
    profile_json.Set("profile", profile.name);
    JsonValue use_cases = JsonValue::Array();
    for (const UseCaseResult& row : results) {
      JsonValue entry = JsonValue::Object();
      entry.Set("use_case", row.use_case);
      JsonValue approaches = JsonValue::Object();
      for (const auto& [type, metrics] : row.metrics) {
        JsonValue m = JsonValue::Object();
        m.Set("ttr_seconds", metrics.ttr_seconds);
        m.Set("ttr_wall_seconds", metrics.ttr_wall_seconds);
        m.Set("ttr_modeled_seconds", metrics.ttr_modeled_seconds);
        approaches.Set(ApproachTypeName(type), std::move(m));
      }
      entry.Set("approaches", std::move(approaches));
      use_cases.Append(std::move(entry));
    }
    profile_json.Set("use_cases", std::move(use_cases));
    profiles_json.Append(std::move(profile_json));

    CleanupWorkDir(knobs, config.work_dir);
  }

  // ---- Serving arm: pooled per-request p99, streaming off vs on. ----
  size_t serve_requests =
      static_cast<size_t>(GetEnvInt64("MMM_SERVE_REQUESTS", 64));
  size_t serve_workers =
      static_cast<size_t>(GetEnvInt64("MMM_SERVE_WORKERS", 4));
  bool assert_streaming = GetEnvBool("MMM_ASSERT_STREAMING", false);

  const std::string serve_root = "/tmp/mmm-bench-fig5-serve";
  ScenarioConfig scenario_config = ScenarioConfig::Battery(knobs.models);
  scenario_config.samples_per_dataset = knobs.samples;
  MultiModelScenario scenario(scenario_config);
  scenario.Init().Check();
  {
    ModelSetManager::Options options;
    options.root_dir = serve_root + "/store";
    options.resolver = &scenario;
    options.profile = SetupProfile::Server();
    auto manager = ModelSetManager::Open(options).ValueOrDie();
    std::vector<std::string> ids;
    ids.push_back(manager->SaveInitial(ApproachType::kUpdate,
                                       scenario.current_set())
                      .ValueOrDie()
                      .set_id);
    for (size_t cycle = 0; cycle < knobs.u3_iterations; ++cycle) {
      ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
      update.base_set_id = ids.back();
      ids.push_back(manager
                        ->SaveDerived(ApproachType::kUpdate,
                                      scenario.current_set(), update)
                        .ValueOrDie()
                        .set_id);
    }
    std::vector<std::string> hot_first(ids.rbegin(), ids.rend());
    std::vector<std::string> trace =
        BuildZipfianTrace(hot_first, serve_requests, /*theta=*/0.99, /*seed=*/7);

    std::printf(
        "\nServing TTR, Update chain of %zu versions, %zu Zipfian requests "
        "(cache off, pooled per-request quantiles):\n",
        ids.size(), trace.size());
    std::printf("%-22s | %12s | %12s | %12s\n", "arm", "mean ms", "p99 ms",
                "modeled p99");

    JsonValue serving_json = JsonValue::Array();
    bool gate_ok = true;
    for (size_t workers : {size_t{1}, serve_workers}) {
      ServeArm materializing;
      ServeArm streaming;
      // The gate compares wall clock of two otherwise identical arms; at
      // smoke scale a scheduler hiccup can flip it, so retry the pair a
      // few times before declaring the regression real.
      const int attempts = assert_streaming && workers > 1 ? 3 : 1;
      for (int attempt = 0; attempt < attempts; ++attempt) {
        materializing = RunServeArm(serve_root + "/store", &scenario, trace,
                                    workers, /*streaming=*/false);
        streaming = RunServeArm(serve_root + "/store", &scenario, trace,
                                workers, /*streaming=*/true);
        if (streaming.wall.p99 <= materializing.wall.p99) break;
      }
      for (bool is_streaming : {false, true}) {
        const ServeArm& arm = is_streaming ? streaming : materializing;
        std::printf("%-22s | %12.3f | %12.3f | %12.3f\n",
                    StringFormat("w%zu %s", workers,
                                 is_streaming ? "streaming" : "materializing")
                        .c_str(),
                    arm.wall.mean / 1e6,
                    static_cast<double>(arm.wall.p99) / 1e6,
                    static_cast<double>(arm.modeled.p99) / 1e6);
        JsonValue entry = JsonValue::Object();
        entry.Set("workers", static_cast<uint64_t>(workers));
        entry.Set("streaming", is_streaming);
        entry.Set("requests", static_cast<uint64_t>(trace.size()));
        entry.Set("wall", SummaryJson(arm.wall));
        entry.Set("modeled", SummaryJson(arm.modeled));
        serving_json.Append(std::move(entry));
      }
      if (assert_streaming && workers > 1 &&
          streaming.wall.p99 > materializing.wall.p99) {
        std::printf(
            "FAIL: streaming p99 %.3f ms > materializing p99 %.3f ms at "
            "workers=%zu\n",
            static_cast<double>(streaming.wall.p99) / 1e6,
            static_cast<double>(materializing.wall.p99) / 1e6, workers);
        gate_ok = false;
      }
    }

    JsonValue doc = JsonValue::Object();
    doc.Set("bench", "fig5_ttr");
    doc.Set("models", static_cast<uint64_t>(knobs.models));
    doc.Set("runs", static_cast<int64_t>(knobs.runs));
    doc.Set("u3_iterations", static_cast<uint64_t>(knobs.u3_iterations));
    doc.Set("profiles", std::move(profiles_json));
    doc.Set("serving", std::move(serving_json));
    std::string json = doc.DumpPretty() + "\n";
    Env::Default()
        ->WriteFile("BENCH_ttr.json",
                    std::span<const uint8_t>(
                        reinterpret_cast<const uint8_t*>(json.data()),
                        json.size()))
        .Check();
    std::printf("\nwrote BENCH_ttr.json\n");
    if (!gate_ok) return 1;
  }

  CleanupWorkDir(knobs, serve_root);
  return 0;
}
