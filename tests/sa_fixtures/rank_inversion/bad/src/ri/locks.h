// Seeded rank inversion without a cycle: only one path exists and it takes
// the higher-ranked lock first. mmmsa must report rank-inversion (and no
// lock-cycle — nothing takes them in the other order).
#ifndef SA_FIXTURE_RANK_INVERSION_BAD_H_
#define SA_FIXTURE_RANK_INVERSION_BAD_H_

class Inverted {
 public:
  void Publish() {
    MutexLock inner_first(high_);
    MutexLock outer_second(low_);
    ++epoch_;
  }

 private:
  Mutex low_ MMM_LOCK_RANK(10);
  Mutex high_ MMM_LOCK_RANK(20);
  int epoch_ = 0;
};

#endif  // SA_FIXTURE_RANK_INVERSION_BAD_H_
