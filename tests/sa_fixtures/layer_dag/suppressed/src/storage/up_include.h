// The bad variant with an MMMSA suppression on the upward include.
#ifndef SA_FIXTURE_LAYER_DAG_SUPPRESSED_H_
#define SA_FIXTURE_LAYER_DAG_SUPPRESSED_H_

#include "common/status.h"
// MMMSA(layer-dag): seeded fixture, upward include is the point
#include "serve/layer_cache.h"

#endif  // SA_FIXTURE_LAYER_DAG_SUPPRESSED_H_
