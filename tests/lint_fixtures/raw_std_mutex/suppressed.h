// Fixture: a justified raw std::mutex lints clean.
#pragma once
#include <mutex>

class Counter {
 public:
  void Bump();

 private:
  // MMMLINT(raw-std-mutex): fixture interoperates with a non-wrapped cv
  std::mutex mu_;  // MMMLINT(mutex-missing-guard): guards an external resource
  int n_ = 0;
};
