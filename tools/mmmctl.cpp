// mmmctl — command-line inspector for a multi-model-management store.
//
//   mmmctl <store-dir> list                 list every saved set
//   mmmctl <store-dir> lineage <set-id>     show a set's delta/prov chain
//   mmmctl <store-dir> validate             full integrity check
//   mmmctl <store-dir> fsck                 crash-recovery check: report the
//                                           open-time journal replay, validate
//                                           every set, and list orphan blobs
//   mmmctl <store-dir> show <set-id>        metadata + artifact sizes
//   mmmctl <store-dir> export <set-id> <out-dir>
//                                           recover a set and write one
//                                           state-dict blob per model
//
// Export works for full-snapshot and Update chains; Provenance chains
// additionally need the external data owner, which a generic CLI does not
// have — exporting such sets reports an error explaining that.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/blob_formats.h"
#include "core/gc.h"
#include "core/manager.h"

using namespace mmm;  // NOLINT — tool code

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintSummaryHeader() {
  std::printf("%-24s %-11s %-6s %-8s %7s %6s %10s  %s\n", "set id", "approach",
              "kind", "family", "models", "depth", "bytes", "base");
}

void PrintSummary(const SetSummary& s) {
  std::printf("%-24s %-11s %-6s %-8s %7llu %6llu %10s  %s\n", s.id.c_str(),
              s.approach.c_str(), s.kind.c_str(), s.family.c_str(),
              static_cast<unsigned long long>(s.num_models),
              static_cast<unsigned long long>(s.chain_depth),
              HumanBytes(s.artifact_bytes).c_str(), s.base_set_id.c_str());
}

int CmdList(ModelSetManager* manager) {
  auto sets = manager->ListSets();
  if (!sets.ok()) return Fail(sets.status());
  PrintSummaryHeader();
  uint64_t total = 0;
  for (const SetSummary& s : sets.ValueOrDie()) {
    PrintSummary(s);
    total += s.artifact_bytes;
  }
  std::printf("%zu sets, %s of artifacts\n", sets.ValueOrDie().size(),
              HumanBytes(total).c_str());
  return 0;
}

int CmdLineage(ModelSetManager* manager, const std::string& set_id) {
  auto chain = manager->Lineage(set_id);
  if (!chain.ok()) return Fail(chain.status());
  PrintSummaryHeader();
  for (const SetSummary& s : chain.ValueOrDie()) PrintSummary(s);
  return 0;
}

int CmdValidate(ModelSetManager* manager) {
  auto report = manager->ValidateStore();
  if (!report.ok()) return Fail(report.status());
  const StoreValidationReport& r = report.ValueOrDie();
  std::printf("checked %zu sets, %zu blobs, %s\n", r.sets_checked,
              r.blobs_checked, HumanBytes(r.bytes_checked).c_str());
  if (r.ok()) {
    std::printf("store is healthy\n");
    return 0;
  }
  for (const std::string& problem : r.problems) {
    std::printf("PROBLEM: %s\n", problem.c_str());
  }
  return 2;
}

int CmdFsck(ModelSetManager* manager) {
  // Opening the store already replayed the commit journal; report what the
  // replay repaired, then cross-check both stores against each other.
  const RepairReport& repair = manager->repair_report();
  if (repair.entries_scanned == 0) {
    std::printf("journal: clean (no interrupted commits)\n");
  } else {
    std::printf(
        "journal: %zu interrupted commit(s) — %zu rolled back, %zu completed "
        "(%zu blobs deleted, %zu docs removed, %zu docs inserted)\n",
        repair.entries_scanned, repair.rolled_back, repair.completed,
        repair.blobs_deleted, repair.docs_removed, repair.docs_inserted);
  }
  bool healthy = repair.clean();
  for (const std::string& problem : repair.problems) {
    std::printf("PROBLEM: %s\n", problem.c_str());
  }

  auto report = manager->ValidateStore();
  if (!report.ok()) return Fail(report.status());
  const StoreValidationReport& r = report.ValueOrDie();
  std::printf("checked %zu sets, %zu blobs, %s\n", r.sets_checked,
              r.blobs_checked, HumanBytes(r.bytes_checked).c_str());
  healthy = healthy && r.ok();
  for (const std::string& problem : r.problems) {
    std::printf("PROBLEM: %s\n", problem.c_str());
  }

  auto orphans = FindOrphanBlobs(manager->context());
  if (!orphans.ok()) return Fail(orphans.status());
  const OrphanReport& o = orphans.ValueOrDie();
  if (o.clean()) {
    std::printf("no orphan blobs\n");
  } else {
    healthy = false;
    for (const std::string& blob : o.orphan_blobs) {
      std::printf("PROBLEM: orphan blob '%s'\n", blob.c_str());
    }
    std::printf("%zu orphan blob(s), %s unaccounted\n", o.orphan_blobs.size(),
                HumanBytes(o.orphan_bytes).c_str());
  }

  if (healthy) {
    std::printf("store is consistent\n");
    return 0;
  }
  return 2;
}

int CmdShow(ModelSetManager* manager, const std::string& set_id) {
  auto doc = manager->doc_store()->Get(kSetCollection, set_id);
  if (!doc.ok()) return Fail(doc.status());
  std::printf("%s\n", doc.ValueOrDie().DumpPretty().c_str());
  return 0;
}

int CmdExport(ModelSetManager* manager, const std::string& set_id,
              const std::string& out_dir) {
  RecoverStats stats;
  auto recovered = manager->Recover(set_id, &stats);
  if (!recovered.ok()) return Fail(recovered.status());
  const ModelSet& set = recovered.ValueOrDie();
  Status st = Env::Default()->CreateDirs(out_dir);
  if (!st.ok()) return Fail(st);
  for (size_t m = 0; m < set.models.size(); ++m) {
    std::vector<uint8_t> blob = EncodeStateDict(set.models[m]);
    std::string path = StringFormat("%s/model-%05zu.sd", out_dir.c_str(), m);
    st = Env::Default()->WriteFile(path, blob);
    if (!st.ok()) return Fail(st);
  }
  std::printf("exported %zu models of %s to %s (walked %llu sets)\n",
              set.models.size(), set.spec.family.c_str(), out_dir.c_str(),
              static_cast<unsigned long long>(stats.sets_recovered));
  return 0;
}

int CmdDelete(ModelSetManager* manager, const std::string& set_id,
              bool cascade) {
  DeleteOptions options;
  options.cascade = cascade;
  auto report = DeleteSet(manager->context(), set_id, options);
  if (!report.ok()) return Fail(report.status());
  std::printf("deleted %zu set(s), %zu blobs, reclaimed %s\n",
              report.ValueOrDie().sets_deleted,
              report.ValueOrDie().blobs_deleted,
              HumanBytes(report.ValueOrDie().bytes_reclaimed).c_str());
  return 0;
}

int CmdRetain(ModelSetManager* manager, const std::vector<std::string>& keep) {
  auto report = RetainOnly(manager->context(), keep);
  if (!report.ok()) return Fail(report.status());
  std::printf("deleted %zu set(s), reclaimed %s\n",
              report.ValueOrDie().sets_deleted,
              HumanBytes(report.ValueOrDie().bytes_reclaimed).c_str());
  return 0;
}

int CmdCompact(ModelSetManager* manager) {
  uint64_t before = manager->doc_store()->WalBytes().ValueOr(0);
  Status st = manager->CompactStore();
  if (!st.ok()) return Fail(st);
  uint64_t after = manager->doc_store()->WalBytes().ValueOr(0);
  std::printf("metadata log: %s -> %s\n", HumanBytes(before).c_str(),
              HumanBytes(after).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: mmmctl <store-dir> "
                 "{list | lineage <set-id> | validate | fsck | show <set-id> | "
                 "export <set-id> <out-dir> | delete <set-id> [--cascade] | "
                 "retain <set-id>... | compact}\n");
    return 64;
  }
  ModelSetManager::Options options;
  options.root_dir = argv[1];
  auto manager = ModelSetManager::Open(options);
  if (!manager.ok()) return Fail(manager.status());

  std::string command = argv[2];
  if (command == "list") return CmdList(manager.ValueOrDie().get());
  if (command == "validate") return CmdValidate(manager.ValueOrDie().get());
  if (command == "fsck") return CmdFsck(manager.ValueOrDie().get());
  if (command == "lineage" && argc >= 4) {
    return CmdLineage(manager.ValueOrDie().get(), argv[3]);
  }
  if (command == "show" && argc >= 4) {
    return CmdShow(manager.ValueOrDie().get(), argv[3]);
  }
  if (command == "export" && argc >= 5) {
    return CmdExport(manager.ValueOrDie().get(), argv[3], argv[4]);
  }
  if (command == "delete" && argc >= 4) {
    bool cascade = argc >= 5 && std::strcmp(argv[4], "--cascade") == 0;
    return CmdDelete(manager.ValueOrDie().get(), argv[3], cascade);
  }
  if (command == "retain" && argc >= 4) {
    std::vector<std::string> keep(argv + 3, argv + argc);
    return CmdRetain(manager.ValueOrDie().get(), keep);
  }
  if (command == "compact") return CmdCompact(manager.ValueOrDie().get());
  std::fprintf(stderr, "unknown or incomplete command '%s'\n", command.c_str());
  return 64;
}
