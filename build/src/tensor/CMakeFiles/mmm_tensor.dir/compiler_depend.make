# Empty compiler generated dependencies file for mmm_tensor.
# This may be replaced when dependencies are built.
