#ifndef MMM_CAS_BLOB_IO_H_
#define MMM_CAS_BLOB_IO_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cas/cas_store.h"
#include "common/result.h"
#include "storage/file_store.h"

namespace mmm {

/// \file
/// CAS-aware blob reads — the only read entry points the approaches use
/// (core/set_codec.cc, core/update.cc, ...). With CAS off these are exact
/// pass-throughs: one store op, identical bytes, identical modeled cost, so
/// the seed cost accounting is untouched. With a chunked blob they fetch
/// the manifest plus its chunks and reassemble bit-exactly (size and CRC32
/// verified against the manifest).
///
/// Full reads sniff the manifest magic on bytes they already fetched, so
/// they stay correct on mixed stores even without a CasStore (e.g. a store
/// written with CAS reopened by an older reader). Ranged reads and sizes
/// need to know up front whether the name is a manifest — they consult
/// `cas` (nullable; null means "treat every blob as verbatim").

/// Reads a blob, reassembling from chunks when it is a manifest.
Result<std::vector<uint8_t>> CasReadBlob(FileStore* store,
                                         const std::string& name);

/// String flavor of CasReadBlob.
Result<std::string> CasReadBlobString(FileStore* store,
                                      const std::string& name);

/// Logical (reassembled) size of a blob. One Size op for verbatim blobs;
/// for manifests, reads the manifest and returns its recorded raw size.
Result<uint64_t> CasBlobSize(FileStore* store, const CasStore* cas,
                             const std::string& name);

/// Reads `[offset, offset + length)` of a blob's logical payload. Verbatim
/// blobs use one ranged store read; manifests fetch only the chunks that
/// overlap the range (preserving selective model recovery — the point of
/// ranged reads in ReadModelsFromSnapshot).
Result<std::vector<uint8_t>> CasReadBlobRange(FileStore* store,
                                              const CasStore* cas,
                                              const std::string& name,
                                              uint64_t offset,
                                              uint64_t length);

/// \brief Streams a blob's logical payload window-by-window (DESIGN.md
/// §12) without ever materializing it: `on_open(logical_size)` fires once
/// (after the manifest, if any, is decoded; may be null), then `on_window`
/// receives the payload bytes in order. The concatenated windows are
/// bit-identical to CasReadBlob's result, and the store accounting is too:
/// verbatim blobs are one OpenStream; manifests fetch each *distinct*
/// chunk once (repeated chunks are replayed from a retained copy, exactly
/// mirroring the materializing reassembly's fetch-once map — only chunks
/// that repeat later in the manifest are retained, so peak buffering is
/// bounded by the duplicated chunks, not the blob). Size and CRC are
/// verified against the manifest as the windows flow through.
///
/// A non-OK status from either callback aborts the stream and is returned
/// unchanged, so callers can propagate their own decode errors.
Status CasStreamBlob(FileStore* store, const std::string& name,
                     uint64_t window_bytes,
                     const std::function<Status(uint64_t)>& on_open,
                     const std::function<Status(std::span<const uint8_t>)>&
                         on_window);

/// Streams a stored blob through BlobDecompressor into a full decompressed
/// buffer: same bytes as DecompressBlob(CasReadBlob(...)), but the stored-
/// side intermediate never exists. For read paths that still need the
/// whole decoded payload at once (diff and hash-table blobs — small next
/// to param snapshots).
Result<std::vector<uint8_t>> CasReadBlobDecompressed(FileStore* store,
                                                     const std::string& name,
                                                     uint64_t window_bytes);

}  // namespace mmm

#endif  // MMM_CAS_BLOB_IO_H_
