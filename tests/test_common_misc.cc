#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/clock.h"
#include "common/env_config.h"
#include "common/id.h"
#include "common/logging.h"
#include "common/strings.h"
#include "storage/latency_model.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

TEST(IdGeneratorTest, IdsAreUniqueAndPrefixed) {
  IdGenerator ids(1);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    std::string id = ids.Next("set");
    EXPECT_TRUE(StartsWith(id, "set-"));
    EXPECT_TRUE(seen.insert(id).second) << id;
  }
  EXPECT_EQ(ids.count(), 1000u);
}

TEST(IdGeneratorTest, DeterministicForSeed) {
  IdGenerator a(5), b(5);
  EXPECT_EQ(a.Next("x"), b.Next("x"));
  EXPECT_EQ(a.Next("x"), b.Next("x"));
}

TEST(IdGeneratorTest, CounterEncodedInOrder) {
  IdGenerator ids(2);
  std::string first = ids.Next("set");
  std::string second = ids.Next("set");
  EXPECT_LT(first.substr(0, 10), second.substr(0, 10));
}

TEST(IdGeneratorTest, AdvanceToPreventsReuse) {
  IdGenerator ids(3);
  std::string a = ids.Next("set");
  IdGenerator reopened(3);
  reopened.AdvanceTo(1);
  std::string b = reopened.Next("set");
  EXPECT_NE(a.substr(0, 10), b.substr(0, 10));
  // AdvanceTo never moves backwards.
  reopened.AdvanceTo(0);
  EXPECT_EQ(reopened.count(), 2u);
}

TEST(ClockTest, StopWatchMeasuresElapsed) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.009);
  EXPECT_LT(elapsed, 1.0);
}

TEST(ClockTest, SimulatedClockAccumulates) {
  SimulatedClock clock;
  EXPECT_EQ(clock.nanos(), 0u);
  clock.Advance(1'000'000);
  clock.Advance(500'000);
  EXPECT_EQ(clock.nanos(), 1'500'000u);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0015);
  clock.Reset();
  EXPECT_EQ(clock.nanos(), 0u);
}

TEST(LatencyModelTest, CostCombinesOpAndBytes) {
  StoreLatencyModel model{1000, 2.0};
  EXPECT_EQ(model.CostNanos(0), 1000u);
  EXPECT_EQ(model.CostNanos(500), 2000u);
  StoreLatencyModel zero;
  EXPECT_EQ(zero.CostNanos(12345), 0u);
}

TEST(LatencyModelTest, PaperSetupsAreOrdered) {
  SetupProfile m1 = SetupProfile::M1();
  SetupProfile server = SetupProfile::Server();
  // §4.3: the server's document-store connection is faster.
  EXPECT_GT(m1.document_store.per_op_nanos, server.document_store.per_op_nanos);
  EXPECT_EQ(SetupProfile::None().document_store.per_op_nanos, 0u);
}

TEST(EnvConfigTest, ParsesValuesWithDefaults) {
  ::setenv("MMM_TEST_INT", "42", 1);
  ::setenv("MMM_TEST_DOUBLE", "2.5", 1);
  ::setenv("MMM_TEST_STRING", "hello", 1);
  ::setenv("MMM_TEST_BOOL_OFF", "off", 1);
  EXPECT_EQ(GetEnvInt64("MMM_TEST_INT", -1), 42);
  EXPECT_EQ(GetEnvInt64("MMM_TEST_ABSENT", -1), -1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("MMM_TEST_DOUBLE", 0.0), 2.5);
  EXPECT_EQ(GetEnvString("MMM_TEST_STRING", "d"), "hello");
  EXPECT_EQ(GetEnvString("MMM_TEST_ABSENT", "d"), "d");
  EXPECT_FALSE(GetEnvBool("MMM_TEST_BOOL_OFF", true));
  EXPECT_TRUE(GetEnvBool("MMM_TEST_INT", false));
  ::setenv("MMM_TEST_GARBAGE", "xyz", 1);
  EXPECT_EQ(GetEnvInt64("MMM_TEST_GARBAGE", 7), 7);
}

TEST(LoggingTest, ThresholdFilters) {
  LogLevel original = Logger::threshold();
  Logger::set_threshold(LogLevel::kError);
  // Below-threshold logging must be side-effect free (no crash, no output
  // assertions possible here, but exercise the path).
  MMM_LOG(kDebug) << "invisible " << 42;
  MMM_LOG(kInfo) << "also invisible";
  Logger::set_threshold(original);
}

TEST(LoggingTest, DcheckPassesOnTrue) {
  MMM_DCHECK(1 + 1 == 2);  // must not abort
  SUCCEED();
}

}  // namespace
}  // namespace mmm
