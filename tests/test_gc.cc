#include "core/gc.h"

#include <gtest/gtest.h>

#include "core/inspect.h"
#include "core/manager.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

class GcTest : public ::testing::Test {
 protected:
  GcTest() : temp_("gc") {
    ScenarioConfig config = ScenarioConfig::Battery(15);
    config.samples_per_dataset = 32;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    scenario_->Init().Check();
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    options.resolver = scenario_.get();
    manager_ = ModelSetManager::Open(options).ValueOrDie();
  }

  std::vector<std::string> BuildChain(ApproachType type, int cycles) {
    std::vector<std::string> ids;
    ids.push_back(
        manager_->SaveInitial(type, scenario_->current_set()).ValueOrDie().set_id);
    for (int i = 0; i < cycles; ++i) {
      ModelSetUpdateInfo update = scenario_->AdvanceCycle().ValueOrDie();
      update.base_set_id = ids.back();
      ids.push_back(manager_
                        ->SaveDerived(type, scenario_->current_set(), update)
                        .ValueOrDie()
                        .set_id);
    }
    return ids;
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
};

TEST_F(GcTest, DeleteStandaloneSet) {
  std::string id = manager_
                       ->SaveInitial(ApproachType::kBaseline,
                                     scenario_->current_set())
                       .ValueOrDie()
                       .set_id;
  ASSERT_OK_AND_ASSIGN(DeleteReport report, DeleteSet(manager_->context(), id));
  EXPECT_EQ(report.sets_deleted, 1u);
  EXPECT_EQ(report.blobs_deleted, 2u);  // arch + params
  EXPECT_GT(report.bytes_reclaimed, 15u * 4993 * 4);
  EXPECT_TRUE(manager_->Recover(id).status().IsNotFound());
  EXPECT_EQ(manager_->ListSets().ValueOrDie().size(), 0u);
}

TEST_F(GcTest, DeleteUnknownSetFails) {
  EXPECT_TRUE(DeleteSet(manager_->context(), "nope").status().IsNotFound());
}

TEST_F(GcTest, RefusesToDeleteBaseOfChainWithoutCascade) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 2);
  Status st = DeleteSet(manager_->context(), ids[0]).status();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("dependent"), std::string::npos);
  // Chain untouched.
  EXPECT_OK(manager_->Recover(ids.back()).status());
}

TEST_F(GcTest, CascadeDeletesDependentsToo) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 2);
  DeleteOptions options;
  options.cascade = true;
  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       DeleteSet(manager_->context(), ids[0], options));
  EXPECT_EQ(report.sets_deleted, 3u);
  for (const std::string& id : ids) {
    EXPECT_TRUE(manager_->Recover(id).status().IsNotFound());
  }
  // No orphaned blobs.
  EXPECT_TRUE(manager_->file_store()->List().ValueOrDie().empty());
}

TEST_F(GcTest, DeletingChainTipKeepsBaseRecoverable) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 2);
  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       DeleteSet(manager_->context(), ids[2]));
  EXPECT_EQ(report.sets_deleted, 1u);
  EXPECT_OK(manager_->Recover(ids[1]).status());
  EXPECT_OK(manager_->Recover(ids[0]).status());
}

TEST_F(GcTest, DeleteMMlibSetRemovesPerModelArtifacts) {
  std::string id = manager_
                       ->SaveInitial(ApproachType::kMMlibBase,
                                     scenario_->current_set())
                       .ValueOrDie()
                       .set_id;
  size_t blobs_before = manager_->file_store()->List().ValueOrDie().size();
  EXPECT_EQ(blobs_before, 30u);  // weights + code per model
  ASSERT_OK_AND_ASSIGN(DeleteReport report, DeleteSet(manager_->context(), id));
  EXPECT_EQ(report.blobs_deleted, 30u);
  EXPECT_TRUE(manager_->file_store()->List().ValueOrDie().empty());
  EXPECT_EQ(manager_->doc_store()->Count("mmlib_models"), 0u);
}

TEST_F(GcTest, BaselineLineageDoesNotBlockDeletion) {
  // Baseline derived sets only *record* lineage; they are independently
  // recoverable, so deleting their base is allowed.
  std::vector<std::string> ids = BuildChain(ApproachType::kBaseline, 1);
  ASSERT_OK(DeleteSet(manager_->context(), ids[0]).status());
  EXPECT_OK(manager_->Recover(ids[1]).status());
}

TEST_F(GcTest, RetainOnlyKeepsLineageClosure) {
  std::vector<std::string> update_ids = BuildChain(ApproachType::kUpdate, 2);
  std::string baseline_id = manager_
                                ->SaveInitial(ApproachType::kBaseline,
                                              scenario_->current_set())
                                .ValueOrDie()
                                .set_id;
  // Keep only the newest update set: its whole chain must survive, the
  // baseline snapshot must go.
  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       RetainOnly(manager_->context(), {update_ids.back()}));
  EXPECT_EQ(report.sets_deleted, 1u);
  EXPECT_EQ(report.deleted_set_ids[0], baseline_id);
  EXPECT_OK(manager_->Recover(update_ids.back()).status());
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health,
                       ValidateStore(manager_->context()));
  EXPECT_TRUE(health.ok());
}

TEST_F(GcTest, RetainOnlyUnknownIdFails) {
  BuildChain(ApproachType::kUpdate, 1);
  EXPECT_TRUE(RetainOnly(manager_->context(), {"ghost"}).status().IsNotFound());
}

TEST_F(GcTest, TombstonesSurviveReopen) {
  std::vector<std::string> ids = BuildChain(ApproachType::kUpdate, 1);
  DeleteOptions cascade;
  cascade.cascade = true;
  ASSERT_OK(DeleteSet(manager_->context(), ids[0], cascade).status());

  ModelSetManager::Options options;
  options.root_dir = temp_.path() + "/store";
  options.resolver = scenario_.get();
  auto reopened = ModelSetManager::Open(options).ValueOrDie();
  EXPECT_TRUE(reopened->Recover(ids[0]).status().IsNotFound());
  EXPECT_TRUE(reopened->Recover(ids[1]).status().IsNotFound());
  EXPECT_EQ(reopened->ListSets().ValueOrDie().size(), 0u);
}

TEST(DocumentStoreRemoveTest, RemoveAndReinsert) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  store.Open().Check();
  JsonValue doc = JsonValue::Object();
  doc.Set("_id", "a");
  doc.Set("v", 1);
  store.Insert("c", doc).Check();
  ASSERT_OK(store.Remove("c", "a"));
  EXPECT_TRUE(store.Get("c", "a").status().IsNotFound());
  EXPECT_TRUE(store.Remove("c", "a").IsNotFound());
  // The id becomes insertable again.
  doc.Set("v", 2);
  ASSERT_OK(store.Insert("c", doc));
  EXPECT_EQ(store.Get("c", "a").ValueOrDie().GetInt64("v").ValueOrDie(), 2);
}

TEST(DocumentStoreRemoveTest, IndexStaysConsistentAfterMiddleRemove) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  store.Open().Check();
  for (int i = 0; i < 5; ++i) {
    JsonValue doc = JsonValue::Object();
    doc.Set("_id", "d" + std::to_string(i));
    doc.Set("v", i);
    store.Insert("c", doc).Check();
  }
  ASSERT_OK(store.Remove("c", "d2"));
  EXPECT_EQ(store.Count("c"), 4u);
  EXPECT_EQ(store.Get("c", "d4").ValueOrDie().GetInt64("v").ValueOrDie(), 4);
  EXPECT_EQ(store.Get("c", "d0").ValueOrDie().GetInt64("v").ValueOrDie(), 0);
}

}  // namespace
}  // namespace mmm
