#include "storage/journal.h"

#include <algorithm>

#include "serialize/crc32.h"

namespace mmm {

Status CommitJournal::Open() {
  MutexLock lock(mu_);
  entries_.clear();
  next_txn_ = 1;
  MMM_ASSIGN_OR_RETURN(bool exists, env_->FileExists(path_));
  if (!exists) return Status::OK();
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, env_->ReadFile(path_));
  std::string_view text(reinterpret_cast<const char*>(raw.data()), raw.size());
  size_t start = 0;
  size_t line_no = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    bool torn_tail = end == std::string_view::npos;
    if (torn_tail) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    auto parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      if (torn_tail) {
        // A crash mid-append leaves one incomplete record at the end of the
        // log. It was never acknowledged, so whatever it would have recorded
        // never took effect — drop it.
        break;
      }
      return parsed.status().WithContext("commit journal line ", line_no);
    }
    JsonValue record = std::move(parsed).ValueOrDie();
    MMM_ASSIGN_OR_RETURN(int64_t txn_signed, record.GetInt64("txn"));
    uint64_t txn = static_cast<uint64_t>(txn_signed);
    next_txn_ = std::max(next_txn_, txn + 1);
    MMM_ASSIGN_OR_RETURN(std::string state, record.GetString("state"));
    if (state == "begin") {
      Entry entry;
      entry.txn = txn;
      entry.set_id = record.GetStringOr("set_id", "");
      entry.approach = record.GetStringOr("approach", "");
      MMM_ASSIGN_OR_RETURN(const JsonValue* blobs, record.Get("blobs"));
      for (const JsonValue& blob : blobs->array_items()) {
        BlobIntent intent;
        MMM_ASSIGN_OR_RETURN(intent.name, blob.GetString("name"));
        MMM_ASSIGN_OR_RETURN(int64_t crc, blob.GetInt64("crc"));
        intent.crc = static_cast<uint32_t>(crc);
        if (blob.Has("cas")) {
          MMM_ASSIGN_OR_RETURN(intent.cas_chunk, blob.GetBool("cas"));
        }
        entry.blobs.push_back(std::move(intent));
      }
      MMM_ASSIGN_OR_RETURN(const JsonValue* docs, record.Get("docs"));
      for (const JsonValue& doc : docs->array_items()) {
        DocIntent intent;
        MMM_ASSIGN_OR_RETURN(intent.collection, doc.GetString("collection"));
        MMM_ASSIGN_OR_RETURN(const JsonValue* body, doc.Get("doc"));
        intent.doc = *body;
        if (doc.Has("replace")) {
          MMM_ASSIGN_OR_RETURN(intent.replace, doc.GetBool("replace"));
        }
        entry.docs.push_back(std::move(intent));
      }
      if (record.Has("deletes")) {
        MMM_ASSIGN_OR_RETURN(const JsonValue* deletes, record.Get("deletes"));
        for (const JsonValue& name : deletes->array_items()) {
          MMM_ASSIGN_OR_RETURN(std::string blob_name, name.AsString());
          entry.deletes.push_back(std::move(blob_name));
        }
      }
      entries_.push_back(std::move(entry));
    } else if (state == "commit") {
      Entry* entry = FindEntry(txn);
      if (entry == nullptr) {
        return Status::Corruption("commit journal line ", line_no,
                                  ": commit mark for unknown txn ", txn);
      }
      entry->committed = true;
    } else if (state == "finish") {
      std::erase_if(entries_, [txn](const Entry& e) { return e.txn == txn; });
    } else {
      return Status::Corruption("commit journal line ", line_no,
                                ": unknown state '", state, "'");
    }
  }
  return Status::OK();
}

Result<RepairReport> CommitJournal::Replay(FileStore* file_store,
                                           DocumentStore* doc_store) {
  MutexLock lock(mu_);
  RepairReport report;
  for (const Entry& entry : entries_) {
    ++report.entries_scanned;
    if (!entry.committed) {
      // The commit mark never made it: the save failed. Undo whatever subset
      // of its declared side effects landed. Blob deletes are idempotent;
      // documents cannot normally exist yet (inserts start only after the
      // commit mark) but are removed defensively — except replace intents,
      // whose pre-existing document is the live version and must survive.
      // Retirement deletes (entry.deletes) never ran and never will.
      // Content-addressed chunk intents are skipped: the chunk may be
      // shared with a committed manifest, and if not, the CAS orphan sweep
      // right after this replay reclaims it (see BlobIntent::cas_chunk).
      for (const BlobIntent& blob : entry.blobs) {
        if (blob.cas_chunk) continue;
        auto exists = file_store->Exists(blob.name);
        if (exists.ok() && exists.ValueOrDie()) {
          MMM_RETURN_NOT_OK(file_store->Delete(blob.name));
          ++report.blobs_deleted;
        }
      }
      for (const DocIntent& doc : entry.docs) {
        if (doc.replace) continue;
        auto id = doc.doc.GetString("_id");
        if (!id.ok()) continue;
        if (doc_store->Get(doc.collection, id.ValueOrDie()).ok()) {
          MMM_RETURN_NOT_OK(doc_store->Remove(doc.collection, id.ValueOrDie()));
          ++report.docs_removed;
        }
      }
      ++report.rolled_back;
      continue;
    }
    // Committed: every blob is durable; roll the entry forward by inserting
    // whichever declared documents are still missing.
    for (const BlobIntent& blob : entry.blobs) {
      auto data = file_store->Get(blob.name);
      if (!data.ok()) {
        report.problems.push_back("committed txn " + std::to_string(entry.txn) +
                                  " (set " + entry.set_id + "): blob '" +
                                  blob.name + "' is missing");
        continue;
      }
      if (Crc32::Compute(data.ValueOrDie()) != blob.crc) {
        report.problems.push_back("committed txn " + std::to_string(entry.txn) +
                                  " (set " + entry.set_id + "): blob '" +
                                  blob.name + "' fails its journaled crc");
      }
    }
    for (const DocIntent& doc : entry.docs) {
      MMM_ASSIGN_OR_RETURN(std::string id, doc.doc.GetString("_id"));
      auto existing = doc_store->Get(doc.collection, id);
      if (existing.ok()) {
        // Replace intents upsert: an identical body means the replace
        // already landed; a different body is the old version, still
        // awaiting the rewrite. Plain inserts are simply already done.
        if (!doc.replace || existing.ValueOrDie() == doc.doc) continue;
        MMM_RETURN_NOT_OK(doc_store->Remove(doc.collection, id));
        ++report.docs_removed;
      }
      MMM_RETURN_NOT_OK(doc_store->Insert(doc.collection, doc.doc));
      ++report.docs_inserted;
    }
    for (const std::string& name : entry.deletes) {
      auto exists = file_store->Exists(name);
      if (exists.ok() && exists.ValueOrDie()) {
        MMM_RETURN_NOT_OK(file_store->Delete(name));
        ++report.blobs_deleted;
      }
    }
    ++report.completed;
  }
  entries_.clear();
  next_txn_ = 1;
  MMM_ASSIGN_OR_RETURN(bool exists, env_->FileExists(path_));
  if (exists) {
    MMM_ASSIGN_OR_RETURN(uint64_t size, env_->FileSize(path_));
    if (size > 0) {
      MMM_RETURN_NOT_OK(env_->WriteFile(path_, {}));
    }
  }
  return report;
}

Result<uint64_t> CommitJournal::Begin(const std::string& set_id,
                                      const std::string& approach,
                                      std::vector<BlobIntent> blobs,
                                      std::vector<DocIntent> docs,
                                      std::vector<std::string> deletes) {
  MutexLock lock(mu_);
  uint64_t txn = next_txn_++;
  JsonValue record = JsonValue::Object();
  record.Set("txn", txn);
  record.Set("state", "begin");
  record.Set("set_id", set_id);
  record.Set("approach", approach);
  JsonValue blob_array = JsonValue::Array();
  for (const BlobIntent& blob : blobs) {
    JsonValue intent = JsonValue::Object();
    intent.Set("name", blob.name);
    intent.Set("crc", static_cast<int64_t>(blob.crc));
    if (blob.cas_chunk) intent.Set("cas", true);
    blob_array.Append(std::move(intent));
  }
  record.Set("blobs", std::move(blob_array));
  JsonValue doc_array = JsonValue::Array();
  for (const DocIntent& doc : docs) {
    JsonValue intent = JsonValue::Object();
    intent.Set("collection", doc.collection);
    intent.Set("doc", doc.doc);
    if (doc.replace) intent.Set("replace", true);
    doc_array.Append(std::move(intent));
  }
  record.Set("docs", std::move(doc_array));
  if (!deletes.empty()) {
    JsonValue delete_array = JsonValue::Array();
    for (const std::string& name : deletes) delete_array.Append(name);
    record.Set("deletes", std::move(delete_array));
  }
  MMM_RETURN_NOT_OK(AppendRecord(record));

  Entry entry;
  entry.txn = txn;
  entry.set_id = set_id;
  entry.approach = approach;
  entry.blobs = std::move(blobs);
  entry.docs = std::move(docs);
  entry.deletes = std::move(deletes);
  entries_.push_back(std::move(entry));
  return txn;
}

Status CommitJournal::MarkCommitted(uint64_t txn) {
  MutexLock lock(mu_);
  Entry* entry = FindEntry(txn);
  if (entry == nullptr) {
    return Status::InvalidArgument("commit journal has no pending txn ", txn);
  }
  JsonValue record = JsonValue::Object();
  record.Set("txn", txn);
  record.Set("state", "commit");
  MMM_RETURN_NOT_OK(AppendRecord(record));
  entry->committed = true;
  return Status::OK();
}

Status CommitJournal::MarkFinished(uint64_t txn) {
  MutexLock lock(mu_);
  if (FindEntry(txn) == nullptr) {
    return Status::InvalidArgument("commit journal has no pending txn ", txn);
  }
  JsonValue record = JsonValue::Object();
  record.Set("txn", txn);
  record.Set("state", "finish");
  MMM_RETURN_NOT_OK(AppendRecord(record));
  std::erase_if(entries_, [txn](const Entry& e) { return e.txn == txn; });
  return Status::OK();
}

std::vector<std::string> CommitJournal::PendingBlobs() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const Entry& entry : entries_) {
    for (const BlobIntent& blob : entry.blobs) names.push_back(blob.name);
  }
  return names;
}

size_t CommitJournal::pending_entries() const {
  MutexLock lock(mu_);
  return entries_.size();
}

Status CommitJournal::AppendRecord(const JsonValue& record) {
  std::string line = record.Dump();
  line.push_back('\n');
  return env_->AppendToFile(
      path_, std::span<const uint8_t>(
                 reinterpret_cast<const uint8_t*>(line.data()), line.size()));
}

CommitJournal::Entry* CommitJournal::FindEntry(uint64_t txn) {
  for (Entry& entry : entries_) {
    if (entry.txn == txn) return &entry;
  }
  return nullptr;
}

}  // namespace mmm
