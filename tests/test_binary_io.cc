#include "serialize/binary_io.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

TEST(BinaryIoTest, PrimitiveRoundTrip) {
  BinaryWriter writer;
  writer.WriteUint8(0xab);
  writer.WriteUint16(0x1234);
  writer.WriteUint32(0xdeadbeef);
  writer.WriteUint64(0x0123456789abcdefULL);
  writer.WriteInt32(-42);
  writer.WriteInt64(-1);
  writer.WriteFloat(3.5f);
  writer.WriteDouble(-2.25);

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadUint8().ValueOrDie(), 0xab);
  EXPECT_EQ(reader.ReadUint16().ValueOrDie(), 0x1234);
  EXPECT_EQ(reader.ReadUint32().ValueOrDie(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadUint64().ValueOrDie(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.ReadInt32().ValueOrDie(), -42);
  EXPECT_EQ(reader.ReadInt64().ValueOrDie(), -1);
  EXPECT_EQ(reader.ReadFloat().ValueOrDie(), 3.5f);
  EXPECT_EQ(reader.ReadDouble().ValueOrDie(), -2.25);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIoTest, LittleEndianLayout) {
  BinaryWriter writer;
  writer.WriteUint32(0x01020304);
  ASSERT_EQ(writer.size(), 4u);
  EXPECT_EQ(writer.buffer()[0], 0x04);
  EXPECT_EQ(writer.buffer()[3], 0x01);
}

TEST(BinaryIoTest, StringRoundTrip) {
  BinaryWriter writer;
  writer.WriteString("");
  writer.WriteString("hello");
  std::string with_nul("a\0b", 3);
  writer.WriteString(with_nul);

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadString().ValueOrDie(), "");
  EXPECT_EQ(reader.ReadString().ValueOrDie(), "hello");
  EXPECT_EQ(reader.ReadString().ValueOrDie(), with_nul);
}

TEST(BinaryIoTest, FloatVectorRoundTrip) {
  std::vector<float> values{1.0f, -2.5f, 0.0f, 1e-30f, 1e30f};
  BinaryWriter writer;
  writer.WriteFloatVector(values);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadFloatVector().ValueOrDie(), values);
}

TEST(BinaryIoTest, TruncatedReadsFailWithCorruption) {
  BinaryWriter writer;
  writer.WriteUint32(7);
  BinaryReader reader(std::span<const uint8_t>(writer.buffer().data(), 2));
  EXPECT_TRUE(reader.ReadUint32().status().IsCorruption());
}

TEST(BinaryIoTest, TruncatedStringFails) {
  BinaryWriter writer;
  writer.WriteVarint(100);  // claims 100 bytes but provides none
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadString().status().IsCorruption());
}

TEST(BinaryIoTest, TruncatedVarintFails) {
  std::vector<uint8_t> bytes{0x80, 0x80};  // continuation bits, no terminator
  BinaryReader reader(bytes);
  EXPECT_TRUE(reader.ReadVarint().status().IsCorruption());
}

TEST(BinaryIoTest, OverlongVarintFails) {
  std::vector<uint8_t> bytes(11, 0x80);
  bytes.back() = 0x02;
  BinaryReader reader(bytes);
  EXPECT_TRUE(reader.ReadVarint().status().IsCorruption());
}

TEST(BinaryIoTest, SkipAdvancesAndChecksBounds) {
  BinaryWriter writer;
  writer.WriteUint32(0xaabbccdd);
  BinaryReader reader(writer.buffer());
  ASSERT_OK(reader.Skip(2));
  EXPECT_EQ(reader.remaining(), 2u);
  EXPECT_TRUE(reader.Skip(3).IsCorruption());
}

class VarintSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintSweep, RoundTrips) {
  BinaryWriter writer;
  writer.WriteVarint(GetParam());
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadVarint().ValueOrDie(), GetParam());
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, VarintSweep,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      0xffffffffULL, 0x100000000ULL, 0x7fffffffffffffffULL,
                      0xffffffffffffffffULL));

TEST(BinaryIoTest, RandomizedVarintRoundTrip) {
  Rng rng(99);
  BinaryWriter writer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    // Mix small and large magnitudes.
    uint64_t v = rng.NextUint64() >> rng.NextBounded(64);
    values.push_back(v);
    writer.WriteVarint(v);
  }
  BinaryReader reader(writer.buffer());
  for (uint64_t v : values) {
    EXPECT_EQ(reader.ReadVarint().ValueOrDie(), v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace mmm
