#include "common/simd.h"

#include <atomic>
#include <cstring>

#include "common/env_config.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace mmm {

namespace {

SimdLevel DetectSimdLevel() {
#if defined(__x86_64__)
  SimdLevel best = SimdLevel::kSse2;  // baseline for every x86-64 CPU
#if defined(__GNUC__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) best = SimdLevel::kAvx2;
#endif
#else
  SimdLevel best = SimdLevel::kScalar;
#endif
  // MMM_SIMD clamps downward only: tests pin "scalar"/"sse2" to prove
  // bit-exactness across levels; asking for more than the CPU has keeps
  // the best supported level.
  const std::string want = GetEnvString("MMM_SIMD", "");
  if (want == "scalar") return SimdLevel::kScalar;
  if (want == "sse2" && best > SimdLevel::kSse2) return SimdLevel::kSse2;
  return best;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  // Detection is idempotent, so a racing first call is harmless.
  static std::atomic<int> cached{-1};
  int level = cached.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(DetectSimdLevel());
    cached.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

namespace simd {

namespace {

void XorBytesScalar(uint8_t* dst, const uint8_t* src, size_t n) {
  // Word-at-a-time through memcpy keeps this UBSan-clean on any alignment.
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

#if defined(__x86_64__)
void XorBytesSse2(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(a, b));
  }
  XorBytesScalar(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void XorBytesAvx2(uint8_t* dst,
                                                  const uint8_t* src,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  XorBytesScalar(dst + i, src + i, n - i);
}
#endif  // defined(__x86_64__)

}  // namespace

void XorBytes(uint8_t* dst, const uint8_t* src, size_t n) {
#if defined(__x86_64__)
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      XorBytesAvx2(dst, src, n);
      return;
    case SimdLevel::kSse2:
      XorBytesSse2(dst, src, n);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  XorBytesScalar(dst, src, n);
}

void XorFloats(float* dst, const float* src, size_t n) {
  XorBytes(reinterpret_cast<uint8_t*>(dst),
           reinterpret_cast<const uint8_t*>(src), n * sizeof(float));
}

void ReplicateRun(uint8_t* dst, size_t offset, size_t n) {
  const uint8_t* src = dst - offset;
  // Short offsets replicate the run's own output; only the sequential
  // scalar loop (or copies narrower than the offset) preserves that
  // semantic bit-exactly.
  if (offset >= 16) {
    // Each 16-byte block reads bytes at least `offset >= 16` behind the
    // write cursor, i.e. bytes finalized by earlier blocks of this same
    // run — equivalent to the byte loop.
    size_t i = 0;
#if defined(__x86_64__)
    if (ActiveSimdLevel() != SimdLevel::kScalar) {
      for (; i + 16 <= n; i += 16) {
        const __m128i block =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), block);
      }
    }
#endif
    for (; i + 8 <= n && offset >= 8; i += 8) {
      uint64_t block;
      std::memcpy(&block, src + i, 8);
      std::memcpy(dst + i, &block, 8);
    }
    for (; i < n; ++i) dst[i] = src[i];
    return;
  }
  for (size_t i = 0; i < n; ++i) dst[i] = src[i];
}

}  // namespace simd

}  // namespace mmm
