// Fixture: a suppressed back edge lints clean. A real repo would break the
// cycle instead; the suppression records why it is tolerated meanwhile.
#pragma once
#include "b.h"  // MMMLINT(include-cycle): fixture demonstrating suppression

struct A {
  int value = 0;
};
