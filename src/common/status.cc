#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace mmm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kOutOfRange:
      return "out-of-range";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "Status check failed: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mmm
