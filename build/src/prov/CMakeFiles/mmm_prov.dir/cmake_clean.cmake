file(REMOVE_RECURSE
  "CMakeFiles/mmm_prov.dir/environment.cc.o"
  "CMakeFiles/mmm_prov.dir/environment.cc.o.d"
  "CMakeFiles/mmm_prov.dir/pipeline.cc.o"
  "CMakeFiles/mmm_prov.dir/pipeline.cc.o.d"
  "CMakeFiles/mmm_prov.dir/replay.cc.o"
  "CMakeFiles/mmm_prov.dir/replay.cc.o.d"
  "libmmm_prov.a"
  "libmmm_prov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_prov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
