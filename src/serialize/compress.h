#ifndef MMM_SERIALIZE_COMPRESS_H_
#define MMM_SERIALIZE_COMPRESS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace mmm {

/// Compression method for blob artifacts (the paper's §4.5 future work:
/// "evaluate if it is beneficial to integrate compression techniques into
/// our approaches").
enum class Compression : uint8_t {
  kNone = 0,
  /// LZ77 with greedy hash-chain matching (LZ4-style token format).
  kLz = 1,
  /// Byte-plane shuffle (stride 4, for float32 payloads) followed by LZ.
  /// Grouping the exponent bytes of neighboring floats makes runs the LZ
  /// stage can exploit.
  kShuffleLz = 2,
};

std::string_view CompressionName(Compression method);
Result<Compression> CompressionFromName(std::string_view name);

/// \brief Compresses `input` into a self-describing blob:
/// magic "MMZ1", method byte, varint raw size, payload.
/// kNone stores the payload verbatim (still framed, so decoding is uniform).
std::vector<uint8_t> CompressBlob(Compression method,
                                  std::span<const uint8_t> input);

/// \brief Inverse of CompressBlob. If `input` does not start with the
/// compression magic it is returned unchanged (raw legacy blob).
Result<std::vector<uint8_t>> DecompressBlob(std::span<const uint8_t> input);

/// \name Raw primitives (exposed for tests and benchmarks).
/// @{

/// LZ77-compresses `input` (no framing). Always succeeds; incompressible
/// data expands by at most ~1/255 + 16 bytes.
std::vector<uint8_t> LzCompress(std::span<const uint8_t> input);

/// Decompresses LzCompress output; `raw_size` must be the original size.
Result<std::vector<uint8_t>> LzDecompress(std::span<const uint8_t> input,
                                          size_t raw_size);

/// Splits `input` into `stride` byte planes: all 1st bytes, all 2nd bytes, …
/// The tail (input.size() % stride) is appended verbatim.
std::vector<uint8_t> ShuffleBytes(std::span<const uint8_t> input, size_t stride);

/// Inverse of ShuffleBytes.
std::vector<uint8_t> UnshuffleBytes(std::span<const uint8_t> input,
                                    size_t stride);
/// @}

}  // namespace mmm

#endif  // MMM_SERIALIZE_COMPRESS_H_
