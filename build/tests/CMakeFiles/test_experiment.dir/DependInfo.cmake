
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/test_experiment.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/test_experiment.dir/test_experiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mmm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/mmm_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/prov/CMakeFiles/mmm_prov.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mmm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mmm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/mmm_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
