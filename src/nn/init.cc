#include "nn/init.h"

#include <cmath>

namespace mmm {

void InitUniform(Tensor* tensor, Rng* rng, float bound) {
  for (float& x : tensor->mutable_data()) {
    x = static_cast<float>(rng->NextUniform(-bound, bound));
  }
}

void InitXavierUniform(Tensor* tensor, Rng* rng, size_t fan_in, size_t fan_out) {
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  InitUniform(tensor, rng, bound);
}

void InitKaimingUniform(Tensor* tensor, Rng* rng, size_t fan_in) {
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  InitUniform(tensor, rng, bound);
}

namespace {

/// Derives (fan_in, fan_out) from a weight shape: [out, in] for linear,
/// [out, in, k, k] for conv.
std::pair<size_t, size_t> FanSizes(const Shape& shape) {
  if (shape.size() == 2) return {shape[1], shape[0]};
  if (shape.size() == 4) {
    size_t receptive = shape[2] * shape[3];
    return {shape[1] * receptive, shape[0] * receptive};
  }
  return {shape.empty() ? 1 : shape[0], shape.empty() ? 1 : shape[0]};
}

}  // namespace

void InitNetwork(Sequential* network, Rng* rng) {
  for (auto& [layer_name, child] : network->children()) {
    (void)layer_name;
    auto params = child->Parameters();
    if (params.empty()) continue;
    size_t fan_in = 1;
    for (Parameter* p : params) {
      if (p->name == "weight") {
        auto [in, out] = FanSizes(p->value.shape());
        fan_in = in;
        InitXavierUniform(&p->value, rng, in, out);
      }
    }
    for (Parameter* p : params) {
      if (p->name == "bias") {
        float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
        InitUniform(&p->value, rng, bound);
      }
    }
  }
}

}  // namespace mmm
