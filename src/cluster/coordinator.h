#ifndef MMM_CLUSTER_COORDINATOR_H_
#define MMM_CLUSTER_COORDINATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/shard.h"
#include "cluster/shard_router.h"
#include "common/thread_annotations.h"
#include "storage/executor.h"

namespace mmm {

/// \brief Configuration of a sharded cluster.
///
/// The store-shaping knobs mirror ModelSetManager::Options and apply to
/// every shard uniformly; `shard_count`, `virtual_nodes`, and `id_seed` are
/// creation-time parameters persisted in the cluster manifest — on reopen
/// the manifest wins, so a cluster keeps its topology and id stream across
/// processes no matter what a later caller passes.
struct ClusterOptions {
  /// Cluster root; shards live in disjoint subtrees `<root>/shards/<name>`.
  std::string root_dir;
  Env* env = nullptr;
  /// Shards to create for a brand-new cluster (ignored on reopen).
  size_t shard_count = 1;
  size_t virtual_nodes = 64;
  uint64_t id_seed = 42;
  /// \name Per-shard store configuration (see ModelSetManager::Options).
  /// @{
  SetupProfile profile = SetupProfile::None();
  DatasetResolver* resolver = nullptr;
  UpdateApproachOptions update_options;
  ProvenanceRecoverOptions provenance_recover_options;
  Compression blob_compression = Compression::kNone;
  /// Content-addressed chunking, per shard: each shard runs its own
  /// CasStore over its private blob subtree, so dedup and refcounts stay
  /// shard-local and failover/rebalance move chunks with their shard.
  CasOptions cas;
  StorePipelineOptions pipeline;
  std::optional<EnvironmentInfo> environment;
  std::optional<CompactionPolicy> auto_compaction;
  /// @}
  /// Per-shard serving configuration (see ModelSetServiceOptions).
  ModelSetServiceOptions service;
};

/// \brief One shard's row in ClusterStatus.
struct ShardStatus {
  std::string name;
  /// Ring key the shard's points derive from (differs from the name after a
  /// failover — the replacement inherits the dead shard's points).
  std::string ring_key;
  std::string root_dir;
  size_t sets = 0;
  /// Sets this shard holds but does not own: full snapshots whose ring
  /// owner is another shard, plus chain members whose base lives elsewhere.
  /// Nonzero after AddShard until the next Rebalance.
  size_t misplaced_sets = 0;
  uint64_t artifact_bytes = 0;
  uint64_t saves = 0;
  ModelSetService::StatsSnapshot stats;
};

/// \brief Cluster-wide view for `mmmctl cluster status`.
struct ClusterStatus {
  size_t virtual_nodes = 0;
  uint64_t failovers = 0;
  size_t total_sets = 0;
  std::vector<ShardStatus> shards;
};

/// \brief One shard's integrity slice of a cluster fsck.
struct ShardFsck {
  std::string shard;
  /// What the open-time (or failover) journal replay repaired.
  RepairReport repair;
  StoreValidationReport validation;
  OrphanReport orphans;

  bool clean() const {
    return repair.clean() && validation.ok() && orphans.clean();
  }
};

/// \brief Cluster-wide integrity report: per-shard store checks plus the
/// coordinator's own placement invariants (no id on two shards, no chain
/// split across shards).
struct ClusterFsckReport {
  std::vector<ShardFsck> shards;
  std::vector<std::string> problems;

  bool clean() const {
    if (!problems.empty()) return false;
    for (const ShardFsck& shard : shards) {
      if (!shard.clean()) return false;
    }
    return true;
  }
};

/// \brief Outcome of one Rebalance run.
struct RebalanceReport {
  size_t passes = 0;
  /// Chain members re-saved as independent full snapshots so they could
  /// move individually (compactor rebases, summed over involved shards).
  size_t chains_flattened = 0;
  size_t sets_moved = 0;
  uint64_t bytes_moved = 0;
  std::vector<std::string> moved_set_ids;
  /// Moves not performed, with the reason (pinned on source, save failed…).
  std::vector<std::string> skipped;
};

/// \brief Control plane of the sharded serving tier.
///
/// Owns the consistent-hash ring, the placement map (set id → shard), and N
/// Shard instances over disjoint Env subtrees. Data-plane calls (save,
/// recover, replay, pin, delete) route to the owning shard; maintenance
/// calls (RetainOnly, CompactChains, Fsck) fan out to every shard in
/// parallel on an internal Executor. A cluster of one shard is bit-exact
/// with an un-sharded ModelSetManager + ModelSetService over the same
/// store: same id stream, same bytes, same modeled costs.
///
/// Placement rules:
///  - An initial save's id comes from the coordinator's master generator;
///    the ring places the id, and the id is queued to the owning shard
///    before the save is dispatched (see PreassignedIds).
///  - A derived save is colocated with its base's shard regardless of the
///    ring, so delta/provenance chains never span shards. AddShard +
///    Rebalance restores ring placement by flattening chains first.
///
/// Failover: killing a shard loses its process state, not its subtree (the
/// durable bytes survive, as with a machine whose disk outlives the crash).
/// FailOver() reopens the subtree under a replacement shard — the open-time
/// CommitJournal replay rolls half-written commits back or forward — and
/// rewrites the ring with ShardRouter::ReplaceShard, which moves zero keys.
///
/// Lock order (extends DESIGN.md §6.2): topo_mu_ > fanout_mu_ > place_mu_ >
/// Shard::save_mu_ > per-shard service locks. Data-plane ops hold topo_mu_
/// shared for their whole duration, so control-plane ops (FailOver,
/// AddShard, Rebalance), which take it exclusive, naturally drain in-flight
/// requests before touching topology.
class Coordinator {
 public:
  static Result<std::unique_ptr<Coordinator>> Open(ClusterOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// \name Data plane.
  /// @{

  /// Saves an initial set on the shard owning the newly drawn id.
  Result<SaveResult> SaveInitial(ApproachType type, const ModelSet& set)
      MMM_EXCLUDES(topo_mu_);

  /// Saves a derived set on its base's shard (chain colocation).
  Result<SaveResult> SaveDerived(ApproachType type, const ModelSet& set,
                                 const ModelSetUpdateInfo& update)
      MMM_EXCLUDES(topo_mu_);

  /// Recovers one set through the owning shard's service.
  Result<ModelSet> Recover(const std::string& set_id,
                           ServeResult* result = nullptr)
      MMM_EXCLUDES(topo_mu_);

  /// Serves a trace: requests are partitioned by owning shard and the
  /// per-shard sub-traces replay in parallel, preserving each shard's
  /// request order. Results (and `recovered`, if given) come back parallel
  /// to `set_ids`; unknown ids yield NotFound results without touching any
  /// shard. With one shard this is exactly ModelSetService::Replay.
  std::vector<ServeResult> Replay(const std::vector<std::string>& set_ids,
                                  std::vector<ModelSet>* recovered = nullptr)
      MMM_EXCLUDES(topo_mu_);

  Status PinSet(const std::string& set_id) MMM_EXCLUDES(topo_mu_);
  Status UnpinSet(const std::string& set_id) MMM_EXCLUDES(topo_mu_);

  /// Deletes through the owning shard's service (pin-fail applies).
  Result<DeleteReport> DeleteSet(const std::string& set_id,
                                 const DeleteOptions& options = {})
      MMM_EXCLUDES(topo_mu_);
  /// @}

  /// \name Cluster-wide maintenance (parallel fan-out).
  /// @{

  /// Retention sweep across every shard: keeps `keep_set_ids` (all of which
  /// must exist somewhere) plus per-shard recovery lineage; every other set
  /// on every shard is deleted. Reports are merged.
  Result<DeleteReport> RetainOnly(const std::vector<std::string>& keep_set_ids)
      MMM_EXCLUDES(topo_mu_);

  /// Runs the chain compactor on every shard; reports are merged.
  Result<CompactionReport> CompactChains(const CompactionPolicy& policy)
      MMM_EXCLUDES(topo_mu_);

  /// Full integrity check: per-shard validation + orphan scan + replay
  /// report, plus the coordinator's placement invariants.
  Result<ClusterFsckReport> Fsck() MMM_EXCLUDES(topo_mu_);

  /// Cluster-wide status (shard stores + serving stats + misplacement).
  Result<ClusterStatus> StatusReport() MMM_EXCLUDES(topo_mu_);
  /// @}

  /// \name Control plane (exclusive topology lock).
  /// @{

  /// Replaces a failed shard: drains and discards the old instance, reopens
  /// its subtree as `<name>-r<generation>` (the CommitJournal replay makes
  /// the store consistent again), and rewrites the ring in place — the
  /// replacement inherits the dead shard's points, so no id moves. The
  /// shard's Env subtree must be reachable again (heal injected faults
  /// first); the durable bytes are the recovery source. Returns the replay
  /// report of the replacement open.
  Result<RepairReport> FailOver(const std::string& shard_name)
      MMM_EXCLUDES(topo_mu_);

  /// Adds an empty shard to the ring. Existing sets do not move until
  /// Rebalance() is called; until then they are simply "misplaced" and
  /// continue to serve from where they are.
  Status AddShard(const std::string& name) MMM_EXCLUDES(topo_mu_);

  /// Moves misplaced sets to their ring owners with bounded key movement
  /// (only ids whose owning arc changed relocate — ~K/N of K ids for one
  /// shard added to N). Chains containing a misplaced set are flattened
  /// first (compactor, max_chain_depth = 0) so every set can move
  /// independently; each move is a journaled copy (same preassigned id) to
  /// the target followed by a delete on the source, so a crash anywhere
  /// leaves both stores consistent and a rerun converges: already-copied
  /// sets skip the copy, already-deleted sources skip the delete.
  Result<RebalanceReport> Rebalance() MMM_EXCLUDES(topo_mu_);
  /// @}

  size_t shard_count() const MMM_EXCLUDES(topo_mu_);
  std::vector<std::string> ShardNames() const MMM_EXCLUDES(topo_mu_);

  /// The shard currently owning `set_id` (placement map, not the ring —
  /// the two differ for colocated chain members and freshly added shards).
  Result<std::string> OwnerOf(const std::string& set_id) const
      MMM_EXCLUDES(place_mu_);

  /// Direct shard access for tests and benches; nullptr if unknown. The
  /// pointer is invalidated by FailOver of that shard.
  Shard* shard(const std::string& name) MMM_EXCLUDES(topo_mu_);

  const ClusterOptions& options() const { return options_; }

 private:
  /// Manifest row: a shard's name, its subtree (stable across failovers),
  /// and the ring key its points derive from.
  struct ShardSpec {
    std::string subdir;
    std::string ring_key;
  };

  Coordinator() = default;

  Status PersistManifest() MMM_REQUIRES(topo_mu_);
  Result<std::unique_ptr<Shard>> OpenShard(const std::string& name,
                                           const ShardSpec& spec,
                                           size_t index);
  /// The shard owning `set_id` per the placement map.
  Result<Shard*> RouteToOwner(const std::string& set_id)
      MMM_REQUIRES_SHARED(topo_mu_) MMM_EXCLUDES(place_mu_);
  /// Runs `fn(shard)` for every shard in parallel on the fan-out executor.
  void FanOut(const std::vector<Shard*>& shards,
              const std::function<void(size_t, Shard*)>& fn)
      MMM_EXCLUDES(fanout_mu_);
  std::vector<Shard*> AllShards() MMM_REQUIRES_SHARED(topo_mu_);

  ClusterOptions options_;
  Env* env_ = nullptr;
  std::string manifest_path_;

  /// Guards the topology: ring, shard instances, manifest. Data-plane ops
  /// hold it shared end-to-end; topology changes take it exclusive.
  mutable SharedMutex topo_mu_ MMM_LOCK_RANK(10);
  ShardRouter ring_ MMM_GUARDED_BY(topo_mu_);
  std::map<std::string, ShardSpec> specs_ MMM_GUARDED_BY(topo_mu_);
  std::map<std::string, std::unique_ptr<Shard>> shards_
      MMM_GUARDED_BY(topo_mu_);
  uint64_t failovers_ MMM_GUARDED_BY(topo_mu_) = 0;

  /// Fan-out executor dispatch is not reentrant; one fan-out at a time.
  Mutex fanout_mu_ MMM_LOCK_RANK(20);
  std::unique_ptr<Executor> fanout_ MMM_GUARDED_BY(fanout_mu_);

  /// Guards the master id generator and the placement map.
  mutable Mutex place_mu_ MMM_LOCK_RANK(30);
  std::unique_ptr<IdGenerator> master_ids_ MMM_GUARDED_BY(place_mu_);
  /// set id -> owning shard name. Derived saves inherit the base's entry.
  std::map<std::string, std::string> placement_ MMM_GUARDED_BY(place_mu_);

  /// Placement anomalies found at open (duplicate ids across shards);
  /// surfaced by Fsck until a Rebalance resolves them.
  std::vector<std::string> open_problems_;
};

}  // namespace mmm

#endif  // MMM_CLUSTER_COORDINATOR_H_
