#ifndef MMM_DATA_DATASET_H_
#define MMM_DATA_DATASET_H_

#include <string>

#include "tensor/tensor.h"

namespace mmm {

/// \brief An in-memory supervised dataset.
///
/// `inputs` is [n, features...]; `targets` is [n, outputs] for regression or
/// [n] class indices for classification.
struct TrainingData {
  Tensor inputs;
  Tensor targets;

  size_t size() const { return inputs.empty() ? 0 : inputs.dim(0); }

  /// Returns the first `count` samples (or all if fewer). Used to realize
  /// the paper's "reduced data" recovery protocol for Provenance.
  TrainingData Head(size_t count) const;
};

}  // namespace mmm

#endif  // MMM_DATA_DATASET_H_
