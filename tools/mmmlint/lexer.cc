#include "lexer.h"

#include <cctype>

namespace mmmlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char punctuators, longest first so greedy matching is correct.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", ".*",
};

}  // namespace

LexedFile Lex(std::string path, std::string_view src) {
  LexedFile out;
  out.path = std::move(path);
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();

  auto peek = [&](size_t ahead) -> char {
    return i + ahead < n ? src[i + ahead] : '\0';
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '\\' && peek(1) == '\n') {  // line continuation
      ++line;
      i += 2;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({line, std::string(src.substr(start, i - start))});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      int start_line = line;
      size_t start = i + 2;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.comments.push_back(
          {start_line, std::string(src.substr(start, i - start))});
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      size_t delim_start = i + 2;
      size_t paren = src.find('(', delim_start);
      if (paren != std::string_view::npos && paren - delim_start <= 16) {
        std::string closer = ")" +
                             std::string(src.substr(delim_start,
                                                    paren - delim_start)) +
                             "\"";
        size_t end = src.find(closer, paren + 1);
        if (end != std::string_view::npos) {
          std::string_view body = src.substr(paren + 1, end - paren - 1);
          int start_line = line;
          for (char b : body) {
            if (b == '\n') ++line;
          }
          out.tokens.push_back(
              {TokenKind::kString, std::string(body), start_line});
          i = end + closer.size();
          continue;
        }
      }
    }
    // String and char literals.
    if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line;
      ++i;
      std::string text;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          text.push_back(src[i]);
          text.push_back(src[i + 1]);
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; keep going defensively
        text.push_back(src[i]);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back({quote == '"' ? TokenKind::kString
                                         : TokenKind::kChar,
                            std::move(text), start_line});
      continue;
    }
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.tokens.push_back(
          {TokenKind::kIdent, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Numbers (incl. hex, separators, suffixes; pp-number rules, roughly).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      ++i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back(
          {TokenKind::kNumber, std::string(src.substr(start, i - start)),
           line});
      continue;
    }
    // Punctuators, longest match first.
    bool matched = false;
    for (std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        out.tokens.push_back({TokenKind::kPunct, std::string(p), line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace mmmlint
