// Fixture: a Mutex member whose class annotates nothing with
// MMM_GUARDED_BY hides the locking contract and must be flagged.
#pragma once

class Mutex;

class Registry {
 public:
  void Insert(int key);

 private:
  Mutex mu_;
  int count_ = 0;
};
