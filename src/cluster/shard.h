#ifndef MMM_CLUSTER_SHARD_H_
#define MMM_CLUSTER_SHARD_H_

#include <deque>
#include <memory>
#include <string>

#include "common/id.h"
#include "common/thread_annotations.h"
#include "core/manager.h"
#include "serve/service.h"

namespace mmm {

/// \brief Id source a shard's manager draws from under a coordinator.
///
/// The coordinator must know a set's id *before* the save reaches a shard —
/// the id is what the ring places. So it draws the id from its own master
/// generator, pushes it here, and the shard's approach code (which calls
/// `context.ids->Next("set")` as always) pops it back out in FIFO order.
/// With an empty queue the fallback generator answers, so a shard manager
/// also works stand-alone (each shard gets a distinct fallback seed).
class PreassignedIds : public IdGenerator {
 public:
  explicit PreassignedIds(uint64_t fallback_seed)
      : IdGenerator(fallback_seed) {}

  /// Queues the next id Next() will return.
  void Push(std::string id) {
    MutexLock lock(mu_);
    queue_.push_back(std::move(id));
  }

  /// Removes `id` from the queue if still pending (a save that failed
  /// before consuming its id must not leak it to the next save).
  void Cancel(const std::string& id) {
    MutexLock lock(mu_);
    std::erase(queue_, id);
  }

  std::string Next(const std::string& prefix) override {
    MutexLock lock(mu_);
    if (!queue_.empty()) {
      std::string id = std::move(queue_.front());
      queue_.pop_front();
      return id;
    }
    return IdGenerator::Next(prefix);
  }

  void AdvanceTo(uint64_t counter) override {
    MutexLock lock(mu_);
    IdGenerator::AdvanceTo(counter);
  }

 private:
  mutable Mutex mu_ MMM_LOCK_RANK(50);
  std::deque<std::string> queue_ MMM_GUARDED_BY(mu_);
};

/// \brief One serving shard: a ModelSetManager + ModelSetService over a
/// disjoint Env subtree, plus the preassigned-id queue the coordinator
/// feeds.
///
/// A shard is deliberately dumb — it knows nothing about the ring or its
/// peers. Everything cluster-shaped (placement, fan-out, failover) lives in
/// the Coordinator; a 1-shard cluster therefore behaves bit-exactly like an
/// un-sharded manager + service over the same store.
class Shard {
 public:
  struct Options {
    /// Shard-local store root (a subtree of the cluster root).
    std::string root_dir;
    /// Seed of the stand-alone fallback id generator; unused while a
    /// coordinator preassigns every id, but kept distinct per shard so a
    /// directly-driven shard cannot collide with its peers.
    uint64_t fallback_id_seed = 42;
    /// Manager configuration; root_dir and ids are overwritten by Open.
    ModelSetManager::Options manager;
    ModelSetServiceOptions service;
  };

  /// Opens the shard's stores (running the commit-journal replay — this is
  /// the whole of "replaying a lost shard's journal into a replacement":
  /// reopen the surviving subtree under a new Shard).
  static Result<std::unique_ptr<Shard>> Open(std::string name, Options options);

  const std::string& name() const { return name_; }
  const std::string& root_dir() const { return root_dir_; }

  ModelSetManager* manager() { return manager_.get(); }
  ModelSetService* service() { return service_.get(); }
  PreassignedIds* ids() { return ids_.get(); }

  /// What the open-time journal replay found and repaired.
  const RepairReport& repair_report() const {
    return manager_->repair_report();
  }

  /// \name Serialized save entry points.
  ///
  /// Saves within one shard run one at a time (matching the un-sharded
  /// world, where the test/bench driver saves sequentially); saves on
  /// *different* shards run in parallel.
  /// @{
  Result<SaveResult> SaveInitial(ApproachType type, const ModelSet& set)
      MMM_EXCLUDES(save_mu_);
  Result<SaveResult> SaveDerived(ApproachType type, const ModelSet& set,
                                 const ModelSetUpdateInfo& update)
      MMM_EXCLUDES(save_mu_);
  /// Saves committed on this shard so far (failed saves excluded).
  uint64_t saves() const MMM_EXCLUDES(save_mu_);
  /// @}

 private:
  Shard() = default;

  std::string name_;
  std::string root_dir_;
  std::unique_ptr<PreassignedIds> ids_;
  /// Destruction order: the service holds a raw manager pointer, so it is
  /// declared after (destroyed before) the manager.
  std::unique_ptr<ModelSetManager> manager_;
  std::unique_ptr<ModelSetService> service_;

  mutable Mutex save_mu_ MMM_LOCK_RANK(40);
  uint64_t saves_ MMM_GUARDED_BY(save_mu_) = 0;
};

}  // namespace mmm

#endif  // MMM_CLUSTER_SHARD_H_
