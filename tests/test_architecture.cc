#include "nn/architecture.h"

#include <gtest/gtest.h>

#include "core/model_set.h"
#include "nn/model.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

// The paper's exact parameter counts (§4.1): FFNN-48 has 4,993 parameters,
// FFNN-69 has 10,075, the CIFAR convnet has 6,882.
TEST(ArchitectureTest, Ffnn48HasExactly4993Parameters) {
  EXPECT_EQ(Ffnn48Spec().ParameterCount(), 4993u);
}

TEST(ArchitectureTest, Ffnn69HasExactly10075Parameters) {
  EXPECT_EQ(Ffnn69Spec().ParameterCount(), 10075u);
}

TEST(ArchitectureTest, CifarNetHasExactly6882Parameters) {
  EXPECT_EQ(CifarNetSpec().ParameterCount(), 6882u);
}

TEST(ArchitectureTest, BuiltNetworkMatchesSpecCount) {
  for (const ArchitectureSpec& spec :
       {Ffnn48Spec(), Ffnn69Spec(), CifarNetSpec()}) {
    ASSERT_OK_AND_ASSIGN(auto network, spec.Build());
    EXPECT_EQ(network->ParameterCount(), spec.ParameterCount()) << spec.family;
  }
}

TEST(ArchitectureTest, LayoutMatchesBuiltNetwork) {
  for (const ArchitectureSpec& spec :
       {Ffnn48Spec(), Ffnn69Spec(), CifarNetSpec()}) {
    ASSERT_OK_AND_ASSIGN(auto network, spec.Build());
    auto named = network->NamedParameters();
    ParamLayout layout = LayoutOf(spec);
    ASSERT_EQ(named.size(), layout.size()) << spec.family;
    for (size_t i = 0; i < named.size(); ++i) {
      EXPECT_EQ(named[i].qualified_name, layout[i].first);
      EXPECT_EQ(named[i].parameter->value.shape(), layout[i].second);
    }
    EXPECT_EQ(LayoutNumel(layout), spec.ParameterCount());
  }
}

TEST(ArchitectureTest, JsonRoundTrip) {
  for (const ArchitectureSpec& spec :
       {Ffnn48Spec(), Ffnn69Spec(), CifarNetSpec()}) {
    ASSERT_OK_AND_ASSIGN(ArchitectureSpec decoded,
                         ArchitectureSpec::FromJson(spec.ToJson()));
    EXPECT_EQ(decoded, spec);
  }
}

TEST(ArchitectureTest, JsonRoundTripThroughText) {
  ArchitectureSpec spec = CifarNetSpec();
  ASSERT_OK_AND_ASSIGN(JsonValue parsed, JsonValue::Parse(spec.ToJson().Dump()));
  ASSERT_OK_AND_ASSIGN(ArchitectureSpec decoded,
                       ArchitectureSpec::FromJson(parsed));
  EXPECT_EQ(decoded, spec);
}

TEST(ArchitectureTest, BuildRejectsUnknownLayerType) {
  ArchitectureSpec spec;
  spec.family = "broken";
  spec.layers = {{"x", "transformer", 0, 0, 0}};
  EXPECT_TRUE(spec.Build().status().IsInvalidArgument());
}

TEST(ArchitectureTest, BuildRejectsIncompleteLinear) {
  ArchitectureSpec spec;
  spec.family = "broken";
  spec.layers = {{"fc", "linear", 0, 5, 0}};
  EXPECT_TRUE(spec.Build().status().IsInvalidArgument());
}

TEST(ArchitectureTest, SourceCodeListsLayers) {
  std::string code = Ffnn48Spec().SourceCode();
  EXPECT_NE(code.find("class FFNN-48"), std::string::npos);
  EXPECT_NE(code.find("self.fc1 = Linear(4, 48)"), std::string::npos);
  EXPECT_NE(code.find("self.fc4 = Linear(48, 1)"), std::string::npos);
  EXPECT_NE(code.find("def forward"), std::string::npos);
}

TEST(ArchitectureTest, ParameterLayerNames) {
  EXPECT_EQ(Ffnn48Spec().ParameterLayerNames(),
            (std::vector<std::string>{"fc1", "fc2", "fc3", "fc4"}));
  EXPECT_EQ(CifarNetSpec().ParameterLayerNames(),
            (std::vector<std::string>{"conv1", "conv2", "fc1"}));
}

TEST(ArchitectureTest, FfnnForwardShape) {
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 1));
  Tensor out = model.Predict(testing::RandomTensor(Shape{7, 4}, 2));
  EXPECT_EQ(out.shape(), (Shape{7, 1}));
}

TEST(ArchitectureTest, CifarForwardShape) {
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(CifarNetSpec(), 1));
  Tensor out = model.Predict(testing::RandomTensor(Shape{2, 3, 32, 32}, 2));
  EXPECT_EQ(out.shape(), (Shape{2, 10}));
}

TEST(ModelTest, StateDictRoundTrip) {
  ASSERT_OK_AND_ASSIGN(Model a, Model::CreateInitialized(Ffnn48Spec(), 5));
  ASSERT_OK_AND_ASSIGN(Model b, Model::Create(Ffnn48Spec()));
  ASSERT_OK(b.LoadStateDict(a.GetStateDict()));
  Tensor input = testing::RandomTensor(Shape{3, 4}, 6);
  EXPECT_TRUE(a.Predict(input).Equals(b.Predict(input)));
}

TEST(ModelTest, LoadStateDictRejectsMismatchedKeys) {
  ASSERT_OK_AND_ASSIGN(Model model, Model::Create(Ffnn48Spec()));
  StateDict state = model.GetStateDict();
  state[0].first = "wrong.key";
  EXPECT_TRUE(model.LoadStateDict(state).IsInvalidArgument());
}

TEST(ModelTest, LoadStateDictRejectsWrongShape) {
  ASSERT_OK_AND_ASSIGN(Model model, Model::Create(Ffnn48Spec()));
  StateDict state = model.GetStateDict();
  state[0].second = Tensor(Shape{1, 1});
  EXPECT_TRUE(model.LoadStateDict(state).IsInvalidArgument());
}

TEST(ModelTest, LoadStateDictRejectsWrongCount) {
  ASSERT_OK_AND_ASSIGN(Model model, Model::Create(Ffnn48Spec()));
  StateDict state = model.GetStateDict();
  state.pop_back();
  EXPECT_TRUE(model.LoadStateDict(state).IsInvalidArgument());
}

TEST(ModelTest, CloneIsDeep) {
  ASSERT_OK_AND_ASSIGN(Model a, Model::CreateInitialized(Ffnn48Spec(), 7));
  ASSERT_OK_AND_ASSIGN(Model b, a.Clone());
  // Mutating the clone leaves the original untouched.
  b.network()->NamedParameters()[0].parameter->value.Fill(0.0f);
  EXPECT_FALSE(a.GetStateDict()[0].second.Equals(b.GetStateDict()[0].second));
}

TEST(ModelTest, InitializationIsSeedDeterministic) {
  ASSERT_OK_AND_ASSIGN(Model a, Model::CreateInitialized(Ffnn48Spec(), 9));
  ASSERT_OK_AND_ASSIGN(Model b, Model::CreateInitialized(Ffnn48Spec(), 9));
  ASSERT_OK_AND_ASSIGN(Model c, Model::CreateInitialized(Ffnn48Spec(), 10));
  EXPECT_TRUE(a.GetStateDict()[0].second.Equals(b.GetStateDict()[0].second));
  EXPECT_FALSE(a.GetStateDict()[0].second.Equals(c.GetStateDict()[0].second));
}

}  // namespace
}  // namespace mmm
