// Fixture: serving-layer code (anything outside src/core/, src/cluster/,
// tests, and bench) opening its own ModelSetManager must be flagged — the
// manager is injected, or the caller goes through the cluster Coordinator.
//
// Fixtures are linted, never compiled, so the manager stays a forward
// declaration.
struct ModelSetManager {
  struct Options;
  static int Open(const Options& options);
};

int ServeFrom(const ModelSetManager::Options& options) {
  return ModelSetManager::Open(options);
}
