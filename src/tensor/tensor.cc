#include "tensor/tensor.h"

#include <cmath>

#include "common/strings.h"

namespace mmm {

size_t Tensor::NumElements(const Shape& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  MMM_DCHECK(data_.size() == NumElements(shape_));
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values) {
  Shape shape{values.size()};
  return Tensor(std::move(shape), std::move(values));
}

Tensor Tensor::Reshape(Shape new_shape) const {
  MMM_DCHECK(NumElements(new_shape) == numel());
  return Tensor(std::move(new_shape), data_);
}

void Tensor::Fill(float value) {
  for (float& x : data_) x = value;
}

bool Tensor::Equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Tensor::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(shape_[i]);
  }
  out += "] {";
  size_t show = std::min<size_t>(8, data_.size());
  for (size_t i = 0; i < show; ++i) {
    if (i > 0) out += ", ";
    out += StringFormat("%g", data_[i]);
  }
  if (data_.size() > show) out += ", ...";
  out += "}";
  return out;
}

}  // namespace mmm
