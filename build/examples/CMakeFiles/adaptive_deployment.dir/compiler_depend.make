# Empty compiler generated dependencies file for adaptive_deployment.
# This may be replaced when dependencies are built.
