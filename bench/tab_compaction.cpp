// Chain-compaction benchmark: time-to-recover and bytes reclaimed as a
// function of the compactor's max_chain_depth bound.
//
// A battery deployment is saved with the Update approach — one full base set,
// then one delta per update cycle, with no snapshot interval, so the chain
// grows as deep as the version history. Each row re-grows that store, runs
// CompactChains at one depth bound, and then recovers *every* version,
// reporting the modeled store cost of the newest (deepest) version, the mean
// across versions, the longest recovery walk, and what the pass wrote and
// reclaimed. The uncompacted store is the control row.
//
// Expected shape: without compaction, TTR climbs linearly with the version
// index (the paper's §2.2 staircase — the newest version is the most
// expensive one). Any finite bound caps the walk at max_chain_depth + 1
// sets, so TTR stays flat no matter how long the history grows; tighter
// bounds trade more full-snapshot bytes written for flatter recoveries and
// more delta bytes retired.
//
// Results are also written to BENCH_compaction.json.
//
// Knobs: MMM_MODELS (default 100), MMM_SAMPLES (64), MMM_U3_ITERATIONS (12).

#include <limits>

#include "bench/bench_util.h"
#include "core/compactor.h"
#include "core/gc.h"
#include "core/inspect.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

namespace {

constexpr uint64_t kNoCompaction = std::numeric_limits<uint64_t>::max();

struct RowResult {
  uint64_t max_depth = kNoCompaction;
  CompactionReport compaction;
  double newest_ttr_s = 0.0;   ///< modeled TTR of the deepest version
  double mean_ttr_s = 0.0;     ///< mean modeled TTR across all versions
  uint64_t max_walk = 0;       ///< longest recovery chain walk (sets)
  std::vector<double> ttr_s;   ///< per-version modeled TTR, oldest first
};

}  // namespace

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/100,
                                         /*default_runs=*/1);
  knobs.samples = static_cast<size_t>(GetEnvInt64("MMM_SAMPLES", 64));
  knobs.u3_iterations =
      static_cast<size_t>(GetEnvInt64("MMM_U3_ITERATIONS", 12));
  knobs.Describe("tab_compaction");

  const uint64_t depths[] = {kNoCompaction, 8, 4, 2, 1};

  std::vector<RowResult> rows;
  for (uint64_t max_depth : depths) {
    // Re-grow the identical version history in a fresh store (the scenario
    // is seeded, so every row archives bit-identical fleets).
    ScenarioConfig scenario_config = ScenarioConfig::Battery(knobs.models);
    scenario_config.samples_per_dataset = knobs.samples;
    MultiModelScenario scenario(scenario_config);
    scenario.Init().Check();

    ModelSetManager::Options options;
    options.root_dir = "/tmp/mmm-bench-compaction/store";
    options.resolver = &scenario;
    options.profile = SetupProfile::Server();
    auto manager = ModelSetManager::Open(options).ValueOrDie();

    std::vector<std::string> ids;
    ids.push_back(
        manager->SaveInitial(ApproachType::kUpdate, scenario.current_set())
            .ValueOrDie()
            .set_id);
    for (size_t cycle = 0; cycle < knobs.u3_iterations; ++cycle) {
      ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
      update.base_set_id = ids.back();
      ids.push_back(manager
                        ->SaveDerived(ApproachType::kUpdate,
                                      scenario.current_set(), update)
                        .ValueOrDie()
                        .set_id);
    }

    RowResult row;
    row.max_depth = max_depth;
    if (max_depth != kNoCompaction) {
      CompactionPolicy policy;
      policy.max_chain_depth = max_depth;
      row.compaction = manager->CompactChains(policy).ValueOrDie();
      // Compaction must leave the store fsck-clean.
      StoreValidationReport health =
          manager->ValidateStore().ValueOrDie();
      if (!health.ok()) Status::Internal(health.problems.front()).Check();
      OrphanReport orphans =
          FindOrphanBlobs(manager->context()).ValueOrDie();
      if (!orphans.clean()) {
        Status::Internal("orphan blob ", orphans.orphan_blobs.front()).Check();
      }
    }

    for (const std::string& id : ids) {
      RecoverStats stats;
      manager->Recover(id, &stats).status().Check();
      row.ttr_s.push_back(stats.simulated_store_nanos / 1e9);
      row.mean_ttr_s += row.ttr_s.back();
      row.max_walk = std::max(row.max_walk, stats.sets_recovered);
    }
    row.newest_ttr_s = row.ttr_s.back();
    row.mean_ttr_s /= static_cast<double>(ids.size());
    rows.push_back(std::move(row));
    manager.reset();
    Env::Default()->RemoveDirs("/tmp/mmm-bench-compaction").Check();
  }

  std::printf(
      "\nUpdate approach, %zu models, %zu versions, modeled server store:\n",
      knobs.models, knobs.u3_iterations + 1);
  std::printf("%-10s | %8s | %10s | %10s | %9s | %12s | %12s\n", "max depth",
              "rebases", "newest TTR", "mean TTR", "max walk", "written MB",
              "reclaimed MB");
  JsonValue out_rows = JsonValue::Array();
  for (const RowResult& row : rows) {
    std::string label = row.max_depth == kNoCompaction
                            ? "none"
                            : std::to_string(row.max_depth);
    std::printf("%-10s | %8zu | %9.3fs | %9.3fs | %9llu | %12s | %12s\n",
                label.c_str(), row.compaction.sets_rebased, row.newest_ttr_s,
                row.mean_ttr_s, static_cast<unsigned long long>(row.max_walk),
                Mb(row.compaction.bytes_written).c_str(),
                Mb(row.compaction.bytes_reclaimed).c_str());

    JsonValue entry = JsonValue::Object();
    entry.Set("max_chain_depth",
              row.max_depth == kNoCompaction ? JsonValue()
                                             : JsonValue(row.max_depth));
    entry.Set("sets_rebased",
              static_cast<uint64_t>(row.compaction.sets_rebased));
    entry.Set("docs_rewritten",
              static_cast<uint64_t>(row.compaction.docs_rewritten));
    entry.Set("bytes_written", row.compaction.bytes_written);
    entry.Set("bytes_reclaimed", row.compaction.bytes_reclaimed);
    entry.Set("newest_ttr_seconds", row.newest_ttr_s);
    entry.Set("mean_ttr_seconds", row.mean_ttr_s);
    entry.Set("max_recovery_walk_sets", row.max_walk);
    JsonValue ttrs = JsonValue::Array();
    for (double t : row.ttr_s) ttrs.Append(t);
    entry.Set("ttr_seconds_by_version", std::move(ttrs));
    out_rows.Append(std::move(entry));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "tab_compaction");
  doc.Set("models", static_cast<uint64_t>(knobs.models));
  doc.Set("versions", static_cast<uint64_t>(knobs.u3_iterations + 1));
  doc.Set("rows", std::move(out_rows));
  std::string json = doc.DumpPretty() + "\n";
  Env::Default()
      ->WriteFile("BENCH_compaction.json",
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(json.data()),
                      json.size()))
      .Check();
  std::printf(
      "\nwrote BENCH_compaction.json\n"
      "(Expected: the 'none' row's TTR climbs with the version index; every "
      "bounded row walks\n at most max_chain_depth + 1 sets, so its TTR "
      "stays flat as the history grows.)\n");
  return 0;
}
