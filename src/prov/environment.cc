#include "prov/environment.h"

#include <sys/utsname.h>
#include <unistd.h>

#include <fstream>
#include <thread>

namespace mmm {
namespace {

std::string ReadCpuModel() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      size_t colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size()) {
        return line.substr(colon + 2);
      }
    }
  }
  return "unknown";
}

std::string ReadCpuFlags() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("flags", 0) == 0) {
      size_t colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size()) {
        return line.substr(colon + 2);
      }
    }
  }
  return "";
}

/// Runtime system libraries a DL deployment records (the slice of `dpkg -l`
/// the training stack links against).
std::vector<std::string> RepresentativeOsPackages() {
  return {
      "libc6/2.31-0ubuntu9.2",        "libstdc++6/10.2.0-5ubuntu1",
      "libgcc-s1/10.2.0-5ubuntu1",    "libgomp1/10.2.0-5ubuntu1",
      "libopenblas0/0.3.8+ds-1",      "liblapack3/3.9.0-1build1",
      "libblas3/3.9.0-1build1",       "libcudnn8/8.0.5.39-1+cuda11.0",
      "libcublas11/11.2.0.252-1",     "libcufft10/10.2.1.245-1",
      "libcurand10/10.2.1.245-1",     "libcusolver10/10.5.0.245-1",
      "libcusparse11/11.1.1.245-1",   "libnccl2/2.8.3-1+cuda11.0",
      "libjpeg-turbo8/2.0.3-0ubuntu1","libpng16-16/1.6.37-2",
      "libtiff5/4.1.0+git191117-2",   "libwebp6/0.6.1-2ubuntu0.20.04.1",
      "zlib1g/1:1.2.11.dfsg-2ubuntu1","libzstd1/1.4.4+dfsg-3ubuntu0.1",
      "liblz4-1/1.9.2-2ubuntu0.20.04.1",
      "libssl1.1/1.1.1f-1ubuntu2.1",  "libcurl4/7.68.0-1ubuntu2.4",
      "libffi7/3.3-4",                "libsqlite3-0/3.31.1-4ubuntu0.2",
      "libmongoc-1.0-0/1.16.1-1build1",
      "libbson-1.0-0/1.16.1-1build1", "libnuma1/2.0.12-1",
      "libtbb2/2020.1-2",             "libprotobuf17/3.6.1.3-2ubuntu5",
      "python3.8/3.8.5-1~20.04.2",    "python3-pip/20.0.2-5ubuntu1.1",
      "git/1:2.25.1-1ubuntu3",        "cmake/3.16.3-1ubuntu1",
      "gcc-9/9.3.0-17ubuntu1~20.04",  "ninja-build/1.10.0-1build1",
  };
}

uint64_t ReadTotalMemory() {
  std::ifstream meminfo("/proc/meminfo");
  std::string key;
  uint64_t kb = 0;
  while (meminfo >> key >> kb) {
    if (key == "MemTotal:") return kb * 1024;
    std::string rest;
    std::getline(meminfo, rest);
  }
  return 0;
}

/// Representative DL-stack package list (the paper's stack is PyTorch
/// 1.7.1). A realistic-length `pip freeze` of a full conda+PyTorch
/// environment runs to ~170 entries; its serialized size is a major part of
/// the per-model metadata overhead that MMlib-base pays and Baseline avoids
/// (§4.2 attributes ~8 KB of redundant metadata to every model).
std::vector<std::string> RepresentativePackages() {
  std::vector<std::string> packages = {
      "torch==1.7.1",         "torchvision==0.8.2", "numpy==1.19.5",
      "pandas==1.2.1",        "scipy==1.6.0",       "scikit-learn==0.24.1",
      "matplotlib==3.3.3",    "pillow==8.1.0",      "pymongo==3.11.2",
      "boto3==1.16.63",       "requests==2.25.1",   "urllib3==1.26.2",
      "protobuf==3.14.0",     "six==1.15.0",        "python-dateutil==2.8.1",
      "pytz==2020.5",         "typing-extensions==3.7.4.3",
      "dataclasses==0.6",     "future==0.18.2",     "joblib==1.0.0",
      "threadpoolctl==2.1.0", "kiwisolver==1.3.1",  "cycler==0.10.0",
      "pyparsing==2.4.7",     "botocore==1.19.63",  "jmespath==0.10.0",
      "s3transfer==0.3.4",    "certifi==2020.12.5", "chardet==4.0.0",
      "idna==2.10",           "mmlib==0.2.0",       "tqdm==4.56.0",
      "absl-py==0.11.0",      "aiohttp==3.7.3",     "alembic==1.5.2",
      "appdirs==1.4.4",       "astunparse==1.6.3",  "async-timeout==3.0.1",
      "attrs==20.3.0",        "backcall==0.2.0",    "bleach==3.2.2",
      "cachetools==4.2.0",    "cffi==1.14.4",       "click==7.1.2",
      "cloudpickle==1.6.0",   "colorama==0.4.4",    "conda==4.9.2",
      "cryptography==3.3.1",  "databricks-cli==0.14.1",
      "decorator==4.4.2",     "defusedxml==0.6.0",  "dill==0.3.3",
      "docker==4.4.1",        "entrypoints==0.3",   "filelock==3.0.12",
      "flask==1.1.2",         "fsspec==0.8.5",      "gitdb==4.0.5",
      "gitpython==3.1.12",    "google-auth==1.24.0",
      "google-auth-oauthlib==0.4.2",                "google-pasta==0.2.0",
      "greenlet==1.0.0",      "grpcio==1.34.1",     "gunicorn==20.0.4",
      "h5py==3.1.0",          "html5lib==1.1",      "importlib-metadata==3.4.0",
      "ipykernel==5.4.3",     "ipython==7.19.0",    "ipywidgets==7.6.3",
      "itsdangerous==1.1.0",  "jedi==0.18.0",       "jinja2==2.11.2",
      "jsonschema==3.2.0",    "jupyter-client==6.1.11",
      "jupyter-core==4.7.0",  "keras-preprocessing==1.1.2",
      "lightgbm==3.1.1",      "llvmlite==0.35.0",   "markdown==3.3.3",
      "markupsafe==1.1.1",    "mistune==0.8.4",     "mlflow==1.13.1",
      "multidict==5.1.0",     "nbclient==0.5.1",    "nbconvert==6.0.7",
      "nbformat==5.1.2",      "nest-asyncio==1.4.3",
      "networkx==2.5",        "notebook==6.2.0",    "numba==0.52.0",
      "oauthlib==3.1.0",      "onnx==1.8.0",        "onnxruntime==1.6.0",
      "opt-einsum==3.3.0",    "packaging==20.8",    "pandocfilters==1.4.3",
      "parso==0.8.1",         "pexpect==4.8.0",     "pickleshare==0.7.5",
      "pip==20.3.3",          "prometheus-client==0.9.0",
      "prometheus-flask-exporter==0.18.1",          "prompt-toolkit==3.0.10",
      "ptyprocess==0.7.0",    "py4j==0.10.9",       "pyarrow==2.0.0",
      "pyasn1==0.4.8",        "pyasn1-modules==0.2.8",
      "pycosat==0.6.3",       "pycparser==2.20",    "pygments==2.7.4",
      "pyopenssl==20.0.1",    "pyrsistent==0.17.3", "pysocks==1.7.1",
      "pyyaml==5.3.1",        "pyzmq==21.0.1",      "querystring-parser==1.2.4",
      "regex==2020.11.13",    "requests-oauthlib==1.3.0",
      "rsa==4.7",             "ruamel-yaml==0.15.87",
      "sacremoses==0.0.43",   "seaborn==0.11.1",    "send2trash==1.5.0",
      "sentencepiece==0.1.95",
      "setuptools==51.3.3",   "smmap==3.0.4",       "sqlalchemy==1.3.22",
      "sqlparse==0.4.1",      "tabulate==0.8.7",    "tensorboard==2.4.1",
      "tensorboard-plugin-wit==1.8.0",              "terminado==0.9.2",
      "testpath==0.4.4",      "tokenizers==0.9.4",  "tornado==6.1",
      "traitlets==5.0.5",     "transformers==4.2.2",
      "wcwidth==0.2.5",       "webencodings==0.5.1",
      "websocket-client==0.57.0",                   "werkzeug==1.0.1",
      "wheel==0.36.2",        "widgetsnbextension==3.5.1",
      "wrapt==1.12.1",        "xgboost==1.3.3",     "yarl==1.6.3",
      "zipp==3.4.0",          "zstandard==0.14.1",
  };
  return packages;
}

}  // namespace

EnvironmentInfo EnvironmentInfo::Capture() {
  EnvironmentInfo info;
  utsname uts{};
  if (uname(&uts) == 0) {
    info.os_name = uts.sysname;
    info.os_version = uts.release;
    info.hostname = uts.nodename;
  } else {
    info.os_name = "unknown";
  }
  info.cpu_model = ReadCpuModel();
  info.cpu_cores = static_cast<int>(std::thread::hardware_concurrency());
  info.total_memory_bytes = ReadTotalMemory();
  info.library_version = "mmm-1.0.0";
  info.python_version = "3.8.5";
  info.cuda_version = "";
  info.gpu_name = "";
  info.cpu_flags = ReadCpuFlags();
  info.packages = RepresentativePackages();
  info.os_packages = RepresentativeOsPackages();
  return info;
}

JsonValue EnvironmentInfo::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("os_name", os_name);
  json.Set("os_version", os_version);
  json.Set("hostname", hostname);
  json.Set("cpu_model", cpu_model);
  json.Set("cpu_cores", static_cast<int64_t>(cpu_cores));
  json.Set("total_memory_bytes", static_cast<int64_t>(total_memory_bytes));
  json.Set("library_version", library_version);
  json.Set("python_version", python_version);
  json.Set("cuda_version", cuda_version);
  json.Set("gpu_name", gpu_name);
  json.Set("cpu_flags", cpu_flags);
  JsonValue package_array = JsonValue::Array();
  for (const std::string& package : packages) package_array.Append(package);
  json.Set("packages", std::move(package_array));
  JsonValue os_package_array = JsonValue::Array();
  for (const std::string& package : os_packages) {
    os_package_array.Append(package);
  }
  json.Set("os_packages", std::move(os_package_array));
  return json;
}

Result<EnvironmentInfo> EnvironmentInfo::FromJson(const JsonValue& json) {
  EnvironmentInfo info;
  MMM_ASSIGN_OR_RETURN(info.os_name, json.GetString("os_name"));
  info.os_version = json.GetStringOr("os_version", "");
  info.hostname = json.GetStringOr("hostname", "");
  info.cpu_model = json.GetStringOr("cpu_model", "");
  info.cpu_cores = static_cast<int>(json.GetInt64Or("cpu_cores", 0));
  info.total_memory_bytes =
      static_cast<uint64_t>(json.GetInt64Or("total_memory_bytes", 0));
  info.library_version = json.GetStringOr("library_version", "");
  info.python_version = json.GetStringOr("python_version", "");
  info.cuda_version = json.GetStringOr("cuda_version", "");
  info.gpu_name = json.GetStringOr("gpu_name", "");
  info.cpu_flags = json.GetStringOr("cpu_flags", "");
  MMM_ASSIGN_OR_RETURN(const JsonValue* package_array, json.Get("packages"));
  for (const JsonValue& package : package_array->array_items()) {
    MMM_ASSIGN_OR_RETURN(std::string name, package.AsString());
    info.packages.push_back(std::move(name));
  }
  if (json.Has("os_packages")) {
    MMM_ASSIGN_OR_RETURN(const JsonValue* os_array, json.Get("os_packages"));
    for (const JsonValue& package : os_array->array_items()) {
      MMM_ASSIGN_OR_RETURN(std::string name, package.AsString());
      info.os_packages.push_back(std::move(name));
    }
  }
  return info;
}

}  // namespace mmm
