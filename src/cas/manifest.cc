#include "cas/manifest.h"

#include <cstring>

#include "serialize/json.h"

namespace mmm {

std::string ChunkBlobName(const std::string& hash_hex) {
  return kCasChunkPrefix + hash_hex;
}

bool IsChunkBlobName(std::string_view name) {
  return name.starts_with(kCasChunkPrefix);
}

std::string ChunkHexOfBlobName(std::string_view name) {
  return std::string(name.substr(sizeof(kCasChunkPrefix) - 1));
}

bool IsManifestPayload(std::span<const uint8_t> data) {
  return data.size() >= kCasManifestMagicSize &&
         std::memcmp(data.data(), kCasManifestMagic, kCasManifestMagicSize) == 0;
}

std::vector<uint8_t> EncodeManifest(const CasManifest& manifest) {
  JsonValue record = JsonValue::Object();
  record.Set("raw_size", manifest.raw_size);
  record.Set("raw_crc", static_cast<uint64_t>(manifest.raw_crc));
  JsonValue chunks = JsonValue::Array();
  for (const CasChunkRef& chunk : manifest.chunks) {
    JsonValue entry = JsonValue::Array();
    entry.Append(chunk.hash_hex);
    entry.Append(chunk.length);
    chunks.Append(std::move(entry));
  }
  record.Set("chunks", std::move(chunks));

  std::string body = record.Dump();
  std::vector<uint8_t> out(kCasManifestMagicSize + body.size());
  std::memcpy(out.data(), kCasManifestMagic, kCasManifestMagicSize);
  std::memcpy(out.data() + kCasManifestMagicSize, body.data(), body.size());
  return out;
}

Result<CasManifest> DecodeManifest(std::span<const uint8_t> data) {
  if (!IsManifestPayload(data)) {
    return Status::Corruption("cas manifest magic mismatch");
  }
  std::string_view body(
      reinterpret_cast<const char*>(data.data()) + kCasManifestMagicSize,
      data.size() - kCasManifestMagicSize);
  auto parsed = JsonValue::Parse(body);
  if (!parsed.ok()) {
    return parsed.status().WithContext("cas manifest body");
  }
  const JsonValue record = std::move(parsed).ValueOrDie();
  CasManifest manifest;
  MMM_ASSIGN_OR_RETURN(int64_t raw_size, record.GetInt64("raw_size"));
  MMM_ASSIGN_OR_RETURN(int64_t raw_crc, record.GetInt64("raw_crc"));
  manifest.raw_size = static_cast<uint64_t>(raw_size);
  manifest.raw_crc = static_cast<uint32_t>(raw_crc);
  MMM_ASSIGN_OR_RETURN(const JsonValue* chunks, record.Get("chunks"));
  if (!chunks->is_array()) {
    return Status::Corruption("cas manifest 'chunks' is not an array");
  }
  for (const JsonValue& entry : chunks->array_items()) {
    if (!entry.is_array() || entry.ArraySize() != 2) {
      return Status::Corruption("cas manifest chunk entry malformed");
    }
    CasChunkRef ref;
    MMM_ASSIGN_OR_RETURN(const JsonValue* hash, entry.At(0));
    MMM_ASSIGN_OR_RETURN(ref.hash_hex, hash->AsString());
    MMM_ASSIGN_OR_RETURN(const JsonValue* length, entry.At(1));
    MMM_ASSIGN_OR_RETURN(int64_t chunk_length, length->AsInt64());
    ref.length = static_cast<uint64_t>(chunk_length);
    if (ref.hash_hex.size() != 64) {
      return Status::Corruption("cas manifest chunk hash '", ref.hash_hex,
                                "' is not a sha-256 hex digest");
    }
    manifest.chunks.push_back(std::move(ref));
  }
  return manifest;
}

}  // namespace mmm
