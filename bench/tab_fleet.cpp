// Fleet-lifecycle simulation benchmark: sustained simulator throughput,
// recovery-cost distribution, and the storage trajectory of a long
// interleaved lifecycle (saves, Zipfian recovery bursts, pins, deletes,
// retention sweeps, compaction — plus failover/rebalance in the cluster
// rows), with every invariant oracle enabled.
//
// Each row replays the same seeded plan against a different world:
//
//   unsharded         ModelSetManager + ModelSetService
//   unsharded+crash   same, with deterministic mid-commit crash injection
//   cluster-2         2-shard Coordinator with kill/add/rebalance events
//   cluster-2+crash   same, with crash injection
//
// Reported per row: end-to-end wall ops/s (oracle checks included — this is
// simulator throughput, the budget a nightly long-horizon sweep spends),
// recoveries served, the modeled per-request recovery cost (mean / p99 /
// max, bit-deterministic at any worker count), injected crash count, and
// the final storage ratio: live artifact bytes over the bytes an
// all-full-snapshots store would hold for the same live sets (full_bytes /
// full_sets × live_sets). The per-checkpoint storage curve goes to the
// JSON verbatim.
//
// Results are also written to BENCH_fleet.json.
//
// Knobs: MMM_FLEET_STEPS (default 150), MMM_FLEET_SEED (7), MMM_RUNS (1).

#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "fleet/plan.h"
#include "fleet/simulator.h"
#include "serialize/json.h"
#include "serve/trace.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

namespace {

struct RowConfig {
  const char* label;
  size_t shards;
  bool crashes;
};

double StorageRatio(const FleetRunReport::StorageSample& sample) {
  if (sample.full_sets == 0 || sample.live_sets == 0) return 0;
  double all_full = static_cast<double>(sample.full_artifact_bytes) /
                    static_cast<double>(sample.full_sets) *
                    static_cast<double>(sample.live_sets);
  return all_full == 0 ? 0 : static_cast<double>(sample.artifact_bytes) /
                                 all_full;
}

}  // namespace

int main() {
  size_t steps =
      static_cast<size_t>(GetEnvInt64("MMM_FLEET_STEPS", 150));
  uint64_t seed = static_cast<uint64_t>(GetEnvInt64("MMM_FLEET_SEED", 7));
  int runs = static_cast<int>(GetEnvInt64("MMM_RUNS", 1));
  std::printf(
      "[tab_fleet] steps=%zu seed=%" PRIu64 " runs=%d\n"
      "  (override with MMM_FLEET_STEPS / MMM_FLEET_SEED / MMM_RUNS)\n",
      steps, seed, runs);

  const std::vector<RowConfig> rows{
      {"unsharded", 0, false},
      {"unsharded+crash", 0, true},
      {"cluster-2", 2, false},
      {"cluster-2+crash", 2, true},
  };

  std::printf(
      "\n%-16s | %8s | %10s | %10s | %9s | %9s | %7s | %7s\n",
      "world", "ops/s", "recoveries", "rec mean ms", "rec p99 ms", "crashes",
      "live", "ratio");
  JsonValue out_rows = JsonValue::Array();
  for (const RowConfig& row : rows) {
    FleetPlanConfig config;
    config.seed = seed;
    config.steps = steps;
    config.cluster_events = row.shards > 0;
    FleetPlan plan = FleetPlan::Generate(config);

    FleetSimOptions options;
    options.shards = row.shards;
    options.workers = 2;
    options.inject_crashes = row.crashes;

    // Best-of-N wall time (the report itself is identical every run).
    FleetSimulator simulator(std::move(plan), options);
    FleetRunReport report;
    double best_secs = 0;
    for (int run = 0; run < runs; ++run) {
      StopWatch watch;
      watch.Start();
      Result<FleetRunReport> result = simulator.Run();
      double secs = watch.ElapsedSeconds();
      result.status().Check();
      report = std::move(result).ValueOrDie();
      if (!report.ok()) {
        std::fprintf(stderr, "oracle violation in %s at step %zu: %s\n",
                     row.label, report.problems[0].step,
                     report.problems[0].detail.c_str());
        return 2;
      }
      if (run == 0 || secs < best_secs) best_secs = secs;
    }

    LatencySummary recover = Summarize(report.recover_modeled_nanos);
    double ratio = report.storage.empty() ? 0 : StorageRatio(report.storage.back());
    double ops_per_sec =
        best_secs == 0 ? 0 : static_cast<double>(report.ops_executed) / best_secs;
    std::printf(
        "%-16s | %8.1f | %10" PRIu64 " | %10.3f | %9.3f | %9" PRIu64
        " | %7" PRIu64 " | %7.3f\n",
        row.label, ops_per_sec, report.recoveries, recover.mean / 1e6,
        static_cast<double>(recover.p99) / 1e6, report.crashes_injected,
        report.live_sets_final, ratio);

    JsonValue entry = JsonValue::Object();
    entry.Set("world", row.label);
    entry.Set("shards", static_cast<uint64_t>(row.shards));
    entry.Set("crash_injection", row.crashes);
    entry.Set("wall_seconds", best_secs);
    entry.Set("ops_executed", static_cast<uint64_t>(report.ops_executed));
    entry.Set("ops_per_second", ops_per_sec);
    entry.Set("saves", report.saves);
    entry.Set("recoveries", report.recoveries);
    entry.Set("recover_mean_nanos", recover.mean);
    entry.Set("recover_p50_nanos", recover.p50);
    entry.Set("recover_p99_nanos", recover.p99);
    entry.Set("recover_max_nanos", recover.max);
    entry.Set("crashes_injected", report.crashes_injected);
    entry.Set("failovers", report.failovers);
    entry.Set("rebalances", report.rebalances);
    entry.Set("live_sets_final", report.live_sets_final);
    entry.Set("final_storage_ratio_vs_all_full", ratio);
    JsonValue curve = JsonValue::Array();
    for (const FleetRunReport::StorageSample& sample : report.storage) {
      JsonValue point = JsonValue::Object();
      point.Set("step", static_cast<uint64_t>(sample.step));
      point.Set("live_sets", sample.live_sets);
      point.Set("artifact_bytes", sample.artifact_bytes);
      point.Set("full_artifact_bytes", sample.full_artifact_bytes);
      point.Set("full_sets", sample.full_sets);
      point.Set("ratio_vs_all_full", StorageRatio(sample));
      curve.Append(std::move(point));
    }
    entry.Set("storage_curve", std::move(curve));
    out_rows.Append(std::move(entry));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "tab_fleet");
  doc.Set("steps", static_cast<uint64_t>(steps));
  doc.Set("seed", seed);
  doc.Set("rows", std::move(out_rows));
  std::string json = doc.DumpPretty() + "\n";
  Env::Default()
      ->WriteFile("BENCH_fleet.json",
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(json.data()),
                      json.size()))
      .Check();
  std::printf(
      "\nwrote BENCH_fleet.json\n"
      "(Expected: the storage ratio sits well under 1 — delta chains and "
      "dedup keep live bytes\n below an all-snapshots store — and the "
      "crash rows match their clean twins on every\n oracle while adding "
      "rollback/rollforward work.)\n");
  return 0;
}
