#ifndef MMM_CORE_COMPACTOR_H_
#define MMM_CORE_COMPACTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/approach.h"
#include "core/model_set.h"

namespace mmm {

/// \brief Knobs of the online chain compactor.
struct CompactionPolicy {
  /// Rewrite chains so every set is at most this many hops from a full
  /// snapshot. The paper's remedy for recursively increasing recovery times
  /// (§2.2) applied retroactively: `snapshot_interval` bounds chains at
  /// write time only; compaction bounds chains that already exist.
  uint64_t max_chain_depth = 4;
  /// Skip a rebase whose superseded delta/provenance blobs are smaller than
  /// this (a rebase trades delta bytes for a full snapshot, so tiny deltas
  /// may not be worth retiring). 0 = always rebase.
  uint64_t min_bytes_reclaimed = 0;
  /// Plan and report only; write nothing.
  bool dry_run = false;
};

/// \brief Outcome of one Compact() run.
struct CompactionReport {
  /// Full-snapshot chain roots examined.
  size_t chains_scanned = 0;
  /// Sets re-saved as full snapshots (in dry runs: planned rebases).
  size_t sets_rebased = 0;
  /// Set documents rewritten in place (rebases plus descendant depth fixes).
  size_t docs_rewritten = 0;
  /// File-store bytes written by the rebase snapshots.
  uint64_t bytes_written = 0;
  /// Bytes of superseded delta/provenance blobs handed to GC.
  uint64_t bytes_reclaimed = 0;
  /// Sets whose kind flipped to "full".
  std::vector<std::string> rebased_set_ids;
  /// Every set whose document changed (rebased sets plus rewritten
  /// descendants) — the serving layer invalidates exactly these.
  std::vector<std::string> rewritten_set_ids;
  /// Rebases skipped with the reason (policy gate, unrecoverable set, ...).
  std::vector<std::string> skipped;
};

/// Recovers a set bit-exactly, dispatching on its recorded approach (the
/// manager's Recover). Injected so the compactor does not depend on the
/// approach objects directly.
using CompactorRecoverFn =
    std::function<Result<ModelSet>(const std::string& set_id)>;

/// \brief Online, crash-safe chain compactor.
///
/// Walks every chain from its full-snapshot root and plans a rebase at each
/// set whose depth since the nearest (planned or existing) full snapshot
/// exceeds `max_chain_depth`. Each rebase recovers the chosen set bit-exactly
/// and re-saves it as a full snapshot *under the same set id* in one
/// journaled StoreBatch commit:
///
///  - the snapshot blobs are staged under the set's own id
///    (`<id>.arch.json` / `<id>.params.bin` — names a delta or provenance
///    set never owned, so nothing live is overwritten before the commit);
///  - the set document is rewritten in place (kind "full", chain_depth 0,
///    base_set_id kept as lineage, the hash blob kept unchanged);
///  - descendants between this rebase point and the next keep their base
///    pointers (the id did not change) and get their chain_depth rewritten
///    to the distance from the new snapshot;
///  - the superseded diff/provenance blob is retired through the journal's
///    delete intents, which run only after the commit mark.
///
/// A crash at any point therefore leaves the store fsck-clean: rollback
/// deletes only the staged snapshot blobs and keeps every old document and
/// blob live; roll-forward completes the document rewrites and re-issues the
/// retirement deletes. Stored chain_depth values only ever over-state the
/// true depth mid-compaction (rebases shorten chains), so depth-derived
/// recovery budgets stay sufficient at every commit boundary.
///
/// Recovery stays bit-exact for every set: the rebase point's bytes are the
/// bytes Recover returned, and descendants' diffs (absolute or XOR) apply
/// against the identical materialized base.
class ChainCompactor {
 public:
  ChainCompactor(StoreContext context, CompactorRecoverFn recover);

  /// Runs one compaction pass over the whole store. Unrecoverable sets
  /// (e.g. provenance chains without a dataset resolver) and rebases below
  /// the byte gate are skipped with a note; the store is left consistent
  /// either way.
  Result<CompactionReport> Compact(const CompactionPolicy& policy);

 private:
  StoreContext context_;
  CompactorRecoverFn recover_;
};

}  // namespace mmm

#endif  // MMM_CORE_COMPACTOR_H_
