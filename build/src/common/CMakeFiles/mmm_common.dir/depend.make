# Empty dependencies file for mmm_common.
# This may be replaced when dependencies are built.
