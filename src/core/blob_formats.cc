#include "core/blob_formats.h"

#include <algorithm>
#include <cstring>

#include "common/simd.h"
#include "serialize/binary_io.h"
#include "serialize/crc32.h"
#include "tensor/tensor_serialize.h"

namespace mmm {
namespace {

constexpr char kStateDictMagic[] = "MMMSDIC1";
constexpr char kParamMagic[] = "MMMPARM1";
constexpr char kHashMagic[] = "MMMHASH1";
constexpr char kDiffMagic[] = "MMMDIFF1";

void AppendCrcFooter(BinaryWriter* writer) {
  uint32_t crc = Crc32::Compute(writer->buffer());
  writer->WriteUint32(crc);
}

/// Validates the CRC footer and returns the payload without it.
Result<std::span<const uint8_t>> CheckCrcFooter(std::span<const uint8_t> blob) {
  if (blob.size() < 4) return Status::Corruption("blob too small for crc footer");
  std::span<const uint8_t> payload = blob.subspan(0, blob.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(blob[blob.size() - 4 + i]) << (8 * i);
  }
  if (Crc32::Compute(payload) != stored) {
    return Status::Corruption("blob crc mismatch");
  }
  return payload;
}

Status CheckMagic(BinaryReader* reader, const char* magic) {
  for (size_t i = 0; i < 8; ++i) {
    MMM_ASSIGN_OR_RETURN(uint8_t byte, reader->ReadUint8());
    if (byte != static_cast<uint8_t>(magic[i])) {
      return Status::Corruption("bad blob magic, expected ", magic);
    }
  }
  return Status::OK();
}

void WriteMagic(BinaryWriter* writer, const char* magic) {
  writer->WriteBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(magic), 8));
}

std::span<const uint8_t> TensorBytes(const Tensor& tensor) {
  return std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(tensor.data().data()),
      tensor.numel() * sizeof(float));
}

}  // namespace

std::vector<uint8_t> EncodeStateDict(const StateDict& state) {
  BinaryWriter writer;
  WriteMagic(&writer, kStateDictMagic);
  writer.WriteVarint(state.size());
  for (const auto& [key, tensor] : state) {
    writer.WriteString(key);
    WriteTensor(&writer, tensor);
  }
  AppendCrcFooter(&writer);
  return writer.TakeBuffer();
}

Result<StateDict> DecodeStateDict(std::span<const uint8_t> blob) {
  MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, CheckCrcFooter(blob));
  BinaryReader reader(payload);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kStateDictMagic));
  MMM_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  StateDict state;
  state.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MMM_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    MMM_ASSIGN_OR_RETURN(Tensor tensor, ReadTensor(&reader));
    state.emplace_back(std::move(key), std::move(tensor));
  }
  if (!reader.AtEnd()) return Status::Corruption("state dict has trailing bytes");
  return state;
}

std::vector<uint8_t> EncodeParamBlob(const ModelSet& set) {
  ParamLayout layout = LayoutOf(set.spec);
  size_t per_model = LayoutNumel(layout);
  BinaryWriter writer;
  WriteMagic(&writer, kParamMagic);
  writer.WriteVarint(set.models.size());
  writer.WriteVarint(per_model);
  for (const StateDict& state : set.models) {
    for (const auto& [_, tensor] : state) {
      writer.WriteFloatSpan(tensor.data());
    }
  }
  AppendCrcFooter(&writer);
  return writer.TakeBuffer();
}

Result<std::vector<StateDict>> DecodeParamBlob(const ArchitectureSpec& spec,
                                               std::span<const uint8_t> blob) {
  MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, CheckCrcFooter(blob));
  BinaryReader reader(payload);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kParamMagic));
  MMM_ASSIGN_OR_RETURN(uint64_t num_models, reader.ReadVarint());
  MMM_ASSIGN_OR_RETURN(uint64_t per_model, reader.ReadVarint());

  ParamLayout layout = LayoutOf(spec);
  if (per_model != LayoutNumel(layout)) {
    return Status::Corruption("param blob expects ", per_model,
                              " params/model, architecture implies ",
                              LayoutNumel(layout));
  }
  if (reader.remaining() != num_models * per_model * sizeof(float)) {
    return Status::Corruption("param blob size mismatch");
  }

  std::vector<StateDict> models;
  models.reserve(num_models);
  for (uint64_t m = 0; m < num_models; ++m) {
    StateDict state;
    state.reserve(layout.size());
    for (const auto& [key, shape] : layout) {
      size_t numel = Tensor::NumElements(shape);
      std::vector<float> data(numel);
      MMM_RETURN_NOT_OK(reader.ReadFloatSpan(numel, data.data()));
      state.emplace_back(key, Tensor(shape, std::move(data)));
    }
    models.push_back(std::move(state));
  }
  return models;
}

ParamBlobStreamDecoder::ParamBlobStreamDecoder(const ArchitectureSpec& spec,
                                               uint64_t total_bytes,
                                               LayerSink sink)
    : layout_(LayoutOf(spec)),
      total_bytes_(total_bytes),
      sink_(std::move(sink)) {
  if (total_bytes_ < 4) {
    error_ = Status::Corruption("blob too small for crc footer");
  }
}

Status ParamBlobStreamDecoder::Fail(Status status) {
  error_ = status;
  return error_;
}

void ParamBlobStreamDecoder::BeginTensor() {
  const size_t numel = Tensor::NumElements(layout_[param_].second);
  current_.assign(numel, 0.0f);
  current_filled_ = 0;
  peak_buffered_ =
      std::max(peak_buffered_, current_.size() * sizeof(float));
}

Status ParamBlobStreamDecoder::ParseHeaderByte(uint8_t byte) {
  if (header_shift_ >= 64) {
    return Status::Corruption("param blob header varint overflows");
  }
  header_value_ |= static_cast<uint64_t>(byte & 0x7f) << header_shift_;
  header_shift_ += 7;
  if ((byte & 0x80) != 0) return Status::OK();
  if (header_varints_done_ == 0) {
    num_models_ = header_value_;
  } else {
    per_model_ = header_value_;
    // Same validations DecodeParamBlob performs once the header is known.
    if (per_model_ != LayoutNumel(layout_)) {
      return Status::Corruption("param blob expects ", per_model_,
                                " params/model, architecture implies ",
                                LayoutNumel(layout_));
    }
    const uint64_t payload_bytes = total_bytes_ - 4;
    if (payload_bytes - position_ != num_models_ * per_model_ * sizeof(float)) {
      return Status::Corruption("param blob size mismatch");
    }
    if (num_models_ == 0 || layout_.empty()) {
      state_ = State::kDone;
      model_ = num_models_;
    } else {
      state_ = State::kTensors;
      BeginTensor();
      MMM_RETURN_NOT_OK(MaybeEmit());
    }
  }
  header_value_ = 0;
  header_shift_ = 0;
  ++header_varints_done_;
  return Status::OK();
}

Status ParamBlobStreamDecoder::MaybeEmit() {
  // Emits every tensor whose bytes are complete; loops so zero-element
  // layers cannot stall the byte-driven state machine.
  while (state_ == State::kTensors &&
         current_filled_ == current_.size() * sizeof(float)) {
    Tensor tensor(layout_[param_].second, std::move(current_));
    current_ = {};
    MMM_RETURN_NOT_OK(
        sink_(model_, param_, layout_[param_].first, std::move(tensor)));
    if (++param_ == layout_.size()) {
      param_ = 0;
      if (++model_ == num_models_) {
        state_ = State::kDone;
        break;
      }
    }
    BeginTensor();
  }
  return Status::OK();
}

Status ParamBlobStreamDecoder::Feed(std::span<const uint8_t> data) {
  if (!error_.ok()) return error_;
  if (position_ + data.size() > total_bytes_) {
    return Fail(Status::Corruption("param blob stream exceeds declared size ",
                                   total_bytes_));
  }
  const uint64_t payload_bytes = total_bytes_ - 4;
  size_t pos = 0;
  while (pos < data.size()) {
    // Footer bytes are collected, not decoded and not CRC'd.
    if (position_ >= payload_bytes) {
      footer_[footer_size_++] = data[pos++];
      ++position_;
      continue;
    }
    switch (state_) {
      case State::kMagic: {
        const uint8_t byte = data[pos];
        crc_ = Crc32::Extend(crc_, data.subspan(pos, 1));
        ++pos;
        ++position_;
        if (byte != static_cast<uint8_t>(kParamMagic[magic_matched_])) {
          return Fail(
              Status::Corruption("bad blob magic, expected ", kParamMagic));
        }
        if (++magic_matched_ == 8) state_ = State::kHeader;
        break;
      }
      case State::kHeader: {
        const uint8_t byte = data[pos];
        crc_ = Crc32::Extend(crc_, data.subspan(pos, 1));
        // Advance before parsing: the varint completion handler sizes the
        // remaining payload from position_.
        ++pos;
        ++position_;
        Status status = ParseHeaderByte(byte);
        if (!status.ok()) return Fail(status);
        break;
      }
      case State::kTensors: {
        const size_t payload_avail = static_cast<size_t>(
            std::min<uint64_t>(data.size() - pos, payload_bytes - position_));
        const size_t tensor_bytes = current_.size() * sizeof(float);
        const size_t take =
            std::min(payload_avail, tensor_bytes - current_filled_);
        crc_ = Crc32::Extend(crc_, data.subspan(pos, take));
        std::memcpy(
            reinterpret_cast<uint8_t*>(current_.data()) + current_filled_,
            data.data() + pos, take);
        current_filled_ += take;
        pos += take;
        position_ += take;
        Status status = MaybeEmit();
        if (!status.ok()) return Fail(status);
        break;
      }
      case State::kDone:
        // All tensors complete but payload bytes keep arriving — cannot
        // happen once the header size check passed; defensive.
        return Fail(Status::Corruption("param blob size mismatch"));
    }
  }
  return Status::OK();
}

Status ParamBlobStreamDecoder::Finish() {
  if (!error_.ok()) return error_;
  if (position_ != total_bytes_) {
    return Fail(Status::Corruption("param blob truncated: ", position_,
                                   " of ", total_bytes_, " bytes"));
  }
  if (state_ != State::kDone || model_ != num_models_) {
    return Fail(Status::Corruption("param blob size mismatch"));
  }
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(footer_[i]) << (8 * i);
  }
  if (crc_ != stored) return Fail(Status::Corruption("blob crc mismatch"));
  return Status::OK();
}

Result<ParamBlobLayout> ReadParamBlobHeader(std::span<const uint8_t> prefix) {
  BinaryReader reader(prefix);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kParamMagic));
  ParamBlobLayout layout;
  MMM_ASSIGN_OR_RETURN(uint64_t num_models, reader.ReadVarint());
  MMM_ASSIGN_OR_RETURN(uint64_t per_model, reader.ReadVarint());
  layout.num_models = num_models;
  layout.params_per_model = per_model;
  layout.header_bytes = reader.offset();
  return layout;
}

Result<StateDict> DecodeModelSlice(const ArchitectureSpec& spec,
                                   std::span<const uint8_t> slice) {
  ParamLayout layout = LayoutOf(spec);
  if (slice.size() != LayoutNumel(layout) * sizeof(float)) {
    return Status::Corruption("model slice has ", slice.size(),
                              " bytes, architecture implies ",
                              LayoutNumel(layout) * sizeof(float));
  }
  BinaryReader reader(slice);
  StateDict state;
  state.reserve(layout.size());
  for (const auto& [key, shape] : layout) {
    size_t numel = Tensor::NumElements(shape);
    std::vector<float> data(numel);
    MMM_RETURN_NOT_OK(reader.ReadFloatSpan(numel, data.data()));
    state.emplace_back(key, Tensor(shape, std::move(data)));
  }
  return state;
}

HashTable ComputeHashTable(const ModelSet& set, Executor* executor) {
  const size_t num_models = set.models.size();
  HashTable hashes(num_models);
  for (size_t m = 0; m < num_models; ++m) {
    hashes[m].resize(set.models[m].size());
  }
  // SHA-256 has no intra-message parallelism, but the set hashes the same
  // same-shaped layer across every model — ideal multi-stream SIMD lanes
  // (Sha256HashMany). Models are grouped in lane-width batches; each work
  // item hashes one batch, so the executor parallelism and the SIMD lanes
  // compose. Any model whose layer count or layer byte-size diverges from
  // the group (impossible for a consistent set, cheap to guard) falls back
  // to the scalar per-tensor hash.
  constexpr size_t kGroup = 8;  // widest lane count (AVX2)
  const size_t num_groups = (num_models + kGroup - 1) / kGroup;
  auto hash_group = [&](size_t g) {
    const size_t begin = g * kGroup;
    const size_t end = std::min(begin + kGroup, num_models);
    const size_t params = set.models[begin].size();
    bool uniform = true;
    for (size_t m = begin + 1; m < end && uniform; ++m) {
      uniform = set.models[m].size() == params;
    }
    if (uniform) {
      for (size_t p = 0; p < params && uniform; ++p) {
        const size_t length = TensorBytes(set.models[begin][p].second).size();
        const uint8_t* streams[kGroup];
        for (size_t m = begin; m < end; ++m) {
          std::span<const uint8_t> bytes =
              TensorBytes(set.models[m][p].second);
          if (bytes.size() != length) {
            uniform = false;
            break;
          }
          streams[m - begin] = bytes.data();
        }
        if (!uniform) break;
        Sha256Digest digests[kGroup];
        Sha256HashMany(streams, length, end - begin, digests);
        for (size_t m = begin; m < end; ++m) {
          hashes[m][p] = digests[m - begin];
        }
      }
    }
    if (!uniform) {
      for (size_t m = begin; m < end; ++m) {
        const StateDict& state = set.models[m];
        for (size_t p = 0; p < state.size(); ++p) {
          hashes[m][p] = Sha256::Hash(TensorBytes(state[p].second));
        }
      }
    }
  };
  if (executor != nullptr && executor->lanes() > 1 && num_groups > 1) {
    executor->ParallelFor(num_groups, hash_group);
  } else {
    for (size_t g = 0; g < num_groups; ++g) hash_group(g);
  }
  return hashes;
}

std::vector<uint8_t> EncodeHashTable(const HashTable& hashes) {
  BinaryWriter writer;
  WriteMagic(&writer, kHashMagic);
  writer.WriteVarint(hashes.size());
  writer.WriteVarint(hashes.empty() ? 0 : hashes[0].size());
  for (const auto& model_hashes : hashes) {
    for (const Sha256Digest& digest : model_hashes) {
      writer.WriteBytes(digest.bytes);
    }
  }
  AppendCrcFooter(&writer);
  return writer.TakeBuffer();
}

Result<HashTable> DecodeHashTable(std::span<const uint8_t> blob) {
  MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, CheckCrcFooter(blob));
  BinaryReader reader(payload);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kHashMagic));
  MMM_ASSIGN_OR_RETURN(uint64_t num_models, reader.ReadVarint());
  MMM_ASSIGN_OR_RETURN(uint64_t per_model, reader.ReadVarint());
  if (reader.remaining() != num_models * per_model * 32) {
    return Status::Corruption("hash table size mismatch");
  }
  HashTable hashes(num_models);
  for (uint64_t m = 0; m < num_models; ++m) {
    hashes[m].resize(per_model);
    for (uint64_t p = 0; p < per_model; ++p) {
      for (auto& byte : hashes[m][p].bytes) {
        MMM_ASSIGN_OR_RETURN(byte, reader.ReadUint8());
      }
    }
  }
  return hashes;
}

Tensor XorTensors(const Tensor& a, const Tensor& b) {
  MMM_DCHECK(a.shape() == b.shape());
  Tensor out = a;
  auto dst = out.mutable_data();
  auto src = b.data();
  // Bitwise XOR of the IEEE bit patterns (never float arithmetic), batched
  // through the runtime-dispatched SIMD substrate.
  simd::XorFloats(dst.data(), src.data(), dst.size());
  return out;
}

std::vector<uint8_t> EncodeDiffBlob(const ModelSet& set,
                                    const std::vector<DiffEntry>& entries,
                                    DiffEncoding encoding,
                                    const ModelSet* base_set) {
  MMM_DCHECK(encoding == DiffEncoding::kAbsolute || base_set != nullptr);
  BinaryWriter writer;
  WriteMagic(&writer, kDiffMagic);
  writer.WriteVarint(static_cast<uint64_t>(encoding));
  writer.WriteVarint(entries.size());
  for (const DiffEntry& entry : entries) {
    writer.WriteVarint(entry.model_index);
    writer.WriteVarint(entry.param_index);
  }
  for (const DiffEntry& entry : entries) {
    const Tensor& tensor = set.models[entry.model_index][entry.param_index].second;
    if (encoding == DiffEncoding::kXorBase) {
      Tensor delta = XorTensors(
          tensor, base_set->models[entry.model_index][entry.param_index].second);
      writer.WriteFloatSpan(delta.data());
    } else {
      writer.WriteFloatSpan(tensor.data());
    }
  }
  AppendCrcFooter(&writer);
  return writer.TakeBuffer();
}

Result<DecodedDiff> DecodeDiffBlob(const ArchitectureSpec& spec,
                                   std::span<const uint8_t> blob) {
  MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, CheckCrcFooter(blob));
  BinaryReader reader(payload);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kDiffMagic));
  MMM_ASSIGN_OR_RETURN(uint64_t encoding_value, reader.ReadVarint());
  if (encoding_value > static_cast<uint64_t>(DiffEncoding::kXorBase)) {
    return Status::Corruption("diff blob has unknown encoding ", encoding_value);
  }
  MMM_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());

  ParamLayout layout = LayoutOf(spec);
  DecodedDiff diff;
  diff.encoding = static_cast<DiffEncoding>(encoding_value);
  diff.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MMM_ASSIGN_OR_RETURN(uint64_t model_index, reader.ReadVarint());
    MMM_ASSIGN_OR_RETURN(uint64_t param_index, reader.ReadVarint());
    if (param_index >= layout.size()) {
      return Status::Corruption("diff entry references parameter ", param_index,
                                " but layout has ", layout.size());
    }
    diff.entries.push_back({static_cast<uint32_t>(model_index),
                            static_cast<uint32_t>(param_index)});
  }
  diff.tensors.reserve(count);
  for (const DiffEntry& entry : diff.entries) {
    const Shape& shape = layout[entry.param_index].second;
    size_t numel = Tensor::NumElements(shape);
    std::vector<float> data(numel);
    MMM_RETURN_NOT_OK(reader.ReadFloatSpan(numel, data.data()));
    diff.tensors.emplace_back(shape, std::move(data));
  }
  if (!reader.AtEnd()) return Status::Corruption("diff blob has trailing bytes");
  return diff;
}

Result<std::vector<DiffEntry>> DiffHashTables(const HashTable& base,
                                              const HashTable& current) {
  if (base.size() != current.size()) {
    return Status::InvalidArgument("hash tables differ in model count: ",
                                   base.size(), " vs ", current.size());
  }
  std::vector<DiffEntry> entries;
  for (size_t m = 0; m < base.size(); ++m) {
    if (base[m].size() != current[m].size()) {
      return Status::InvalidArgument("hash tables differ in layer count at model ",
                                     m);
    }
    for (size_t p = 0; p < base[m].size(); ++p) {
      if (base[m][p] != current[m][p]) {
        entries.push_back(
            {static_cast<uint32_t>(m), static_cast<uint32_t>(p)});
      }
    }
  }
  return entries;
}

}  // namespace mmm
