file(REMOVE_RECURSE
  "libmmm_storage.a"
)
