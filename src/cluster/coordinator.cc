#include "cluster/coordinator.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "serialize/json.h"
#include "storage/env.h"

namespace mmm {
namespace {

constexpr char kManifestName[] = "cluster.json";

/// Counter of an id like "set-000004-a1b2c3d4" (+1), or 0 if unparseable.
/// Mirrors the manager's open-time scan so the coordinator's master
/// generator advances past every persisted id, cluster-wide.
uint64_t IdCounterBound(const std::string& id) {
  size_t suffix = id.rfind('-');
  if (suffix == std::string::npos || suffix == 0) return 0;
  size_t counter = id.rfind('-', suffix - 1);
  if (counter == std::string::npos) return 0;
  const std::string field = id.substr(counter + 1, suffix - counter - 1);
  if (field.empty() ||
      field.find_first_not_of("0123456789") != std::string::npos) {
    return 0;
  }
  return std::strtoull(field.c_str(), nullptr, 10) + 1;
}

Status WriteStringFile(Env* env, const std::string& path,
                       const std::string& text) {
  return env->WriteFile(
      path, std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

void MergeDeleteReport(const DeleteReport& from, DeleteReport* into) {
  into->sets_deleted += from.sets_deleted;
  into->blobs_deleted += from.blobs_deleted;
  into->bytes_reclaimed += from.bytes_reclaimed;
  into->deleted_set_ids.insert(into->deleted_set_ids.end(),
                               from.deleted_set_ids.begin(),
                               from.deleted_set_ids.end());
}

void MergeCompactionReport(const CompactionReport& from,
                           CompactionReport* into) {
  into->chains_scanned += from.chains_scanned;
  into->sets_rebased += from.sets_rebased;
  into->docs_rewritten += from.docs_rewritten;
  into->bytes_written += from.bytes_written;
  into->bytes_reclaimed += from.bytes_reclaimed;
  into->rebased_set_ids.insert(into->rebased_set_ids.end(),
                               from.rebased_set_ids.begin(),
                               from.rebased_set_ids.end());
  into->rewritten_set_ids.insert(into->rewritten_set_ids.end(),
                                 from.rewritten_set_ids.begin(),
                                 from.rewritten_set_ids.end());
  into->skipped.insert(into->skipped.end(), from.skipped.begin(),
                       from.skipped.end());
}

}  // namespace

Coordinator::~Coordinator() = default;

Result<std::unique_ptr<Coordinator>> Coordinator::Open(ClusterOptions options) {
  if (options.root_dir.empty()) {
    return Status::InvalidArgument("cluster root_dir is empty");
  }
  if (options.shard_count == 0) {
    return Status::InvalidArgument("a cluster needs at least one shard");
  }
  auto coordinator = std::unique_ptr<Coordinator>(new Coordinator());
  Coordinator& c = *coordinator;
  c.env_ = options.env != nullptr ? options.env : Env::Default();
  MMM_RETURN_NOT_OK(c.env_->CreateDirs(options.root_dir));
  c.manifest_path_ = options.root_dir + "/" + kManifestName;

  WriterMutexLock topo_lock(c.topo_mu_);

  // Read or create the manifest. On reopen the manifest's topology wins
  // over whatever the caller passed, so the ring and id stream are stable
  // across processes (and across failover generations: ring keys recorded
  // here rebuild the exact ring the dead shards once hashed to).
  MMM_ASSIGN_OR_RETURN(bool have_manifest,
                       c.env_->FileExists(c.manifest_path_));
  if (have_manifest) {
    MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                         c.env_->ReadFile(c.manifest_path_));
    MMM_ASSIGN_OR_RETURN(
        JsonValue manifest,
        JsonValue::Parse(std::string_view(
            reinterpret_cast<const char*>(raw.data()), raw.size())));
    MMM_ASSIGN_OR_RETURN(int64_t virtual_nodes,
                         manifest.GetInt64("virtual_nodes"));
    MMM_ASSIGN_OR_RETURN(int64_t id_seed, manifest.GetInt64("id_seed"));
    options.virtual_nodes = static_cast<size_t>(virtual_nodes);
    options.id_seed = static_cast<uint64_t>(id_seed);
    c.failovers_ =
        static_cast<uint64_t>(manifest.GetInt64Or("failovers", 0));
    MMM_ASSIGN_OR_RETURN(const JsonValue* shards, manifest.Get("shards"));
    if (!shards->is_array() || shards->ArraySize() == 0) {
      return Status::Corruption("cluster manifest lists no shards");
    }
    for (size_t i = 0; i < shards->ArraySize(); ++i) {
      MMM_ASSIGN_OR_RETURN(const JsonValue* row, shards->At(i));
      MMM_ASSIGN_OR_RETURN(std::string name, row->GetString("name"));
      ShardSpec spec;
      MMM_ASSIGN_OR_RETURN(spec.subdir, row->GetString("subdir"));
      spec.ring_key = row->GetStringOr("ring_key", name);
      if (!c.specs_.emplace(std::move(name), std::move(spec)).second) {
        return Status::Corruption("cluster manifest repeats a shard name");
      }
    }
  } else {
    for (size_t i = 0; i < options.shard_count; ++i) {
      std::string name = StringFormat("shard-%zu", i);
      c.specs_[name] = ShardSpec{"shards/" + name, name};
    }
  }
  c.options_ = options;

  c.ring_ = ShardRouter(options.virtual_nodes);
  for (const auto& [name, spec] : c.specs_) {
    MMM_RETURN_NOT_OK(c.ring_.AddShardWithKey(name, spec.ring_key));
  }

  size_t index = 0;
  for (const auto& [name, spec] : c.specs_) {
    MMM_ASSIGN_OR_RETURN(std::unique_ptr<Shard> shard,
                         c.OpenShard(name, spec, index++));
    c.shards_.emplace(name, std::move(shard));
  }
  if (!have_manifest) MMM_RETURN_NOT_OK(c.PersistManifest());

  // Rebuild the placement map from the shards' stores (the stores are the
  // root of trust; the coordinator persists no placement of its own). A
  // set found on two shards is a rebalance interrupted between copy and
  // delete: serve from the ring owner's copy and let the next Rebalance
  // remove the other.
  {
    // Scoped to the placement rebuild: place_mu_ ranks above fanout_mu_
    // (DESIGN.md §6.2), so it must be released before the fan-out executor
    // construction below acquires fanout_mu_.
    MutexLock place_lock(c.place_mu_);
    c.master_ids_ = std::make_unique<IdGenerator>(options.id_seed);
    uint64_t max_counter = 0;
    for (const auto& [name, shard] : c.shards_) {
      MMM_ASSIGN_OR_RETURN(std::vector<SetSummary> sets,
                           shard->manager()->ListSets());
      for (const SetSummary& set : sets) {
        max_counter = std::max(max_counter, IdCounterBound(set.id));
        auto [it, inserted] = c.placement_.emplace(set.id, name);
        if (inserted) continue;
        MMM_ASSIGN_OR_RETURN(std::string ring_owner, c.ring_.OwnerOf(set.id));
        std::string loser = name;
        if (ring_owner == name) {
          loser = it->second;
          it->second = name;
        }
        c.open_problems_.push_back(StringFormat(
            "set '%s' exists on shards '%s' and '%s'; serving from '%s' "
            "(interrupted rebalance; run Rebalance to remove the copy on "
            "'%s')",
            set.id.c_str(), it->second.c_str(), loser.c_str(),
            it->second.c_str(), loser.c_str()));
      }
    }
    c.master_ids_->AdvanceTo(max_counter);
  }

  {
    MutexLock fanout_lock(c.fanout_mu_);
    c.fanout_ = std::make_unique<Executor>(std::max<size_t>(1, c.shards_.size()));
  }
  return coordinator;
}

Result<std::unique_ptr<Shard>> Coordinator::OpenShard(const std::string& name,
                                                      const ShardSpec& spec,
                                                      size_t index) {
  Shard::Options shard_options;
  shard_options.root_dir = options_.root_dir + "/" + spec.subdir;
  // Distinct per-shard fallback seed: only consulted if a shard manager is
  // driven without the coordinator preassigning ids.
  shard_options.fallback_id_seed = options_.id_seed + 7919 * (index + 1);
  shard_options.manager.env = env_;
  shard_options.manager.profile = options_.profile;
  shard_options.manager.resolver = options_.resolver;
  shard_options.manager.id_seed = options_.id_seed;
  shard_options.manager.update_options = options_.update_options;
  shard_options.manager.provenance_recover_options =
      options_.provenance_recover_options;
  shard_options.manager.blob_compression = options_.blob_compression;
  shard_options.manager.cas = options_.cas;
  shard_options.manager.pipeline = options_.pipeline;
  shard_options.manager.environment = options_.environment;
  shard_options.manager.auto_compaction = options_.auto_compaction;
  shard_options.service = options_.service;
  return Shard::Open(name, std::move(shard_options));
}

Status Coordinator::PersistManifest() {
  JsonValue manifest = JsonValue::Object();
  manifest.Set("virtual_nodes", static_cast<uint64_t>(ring_.virtual_nodes()));
  manifest.Set("id_seed", options_.id_seed);
  manifest.Set("failovers", failovers_);
  JsonValue shards = JsonValue::Array();
  for (const auto& [name, spec] : specs_) {
    JsonValue row = JsonValue::Object();
    row.Set("name", name);
    row.Set("subdir", spec.subdir);
    row.Set("ring_key", spec.ring_key);
    shards.Append(std::move(row));
  }
  manifest.Set("shards", std::move(shards));
  return WriteStringFile(env_, manifest_path_, manifest.DumpPretty() + "\n");
}

Result<Shard*> Coordinator::RouteToOwner(const std::string& set_id) {
  std::string owner;
  {
    MutexLock lock(place_mu_);
    auto it = placement_.find(set_id);
    if (it == placement_.end()) {
      return Status::NotFound("no set '", set_id, "' in the cluster");
    }
    owner = it->second;
  }
  auto it = shards_.find(owner);
  if (it == shards_.end()) {
    return Status::Internal("placement names unknown shard '", owner, "'");
  }
  return it->second.get();
}

std::vector<Shard*> Coordinator::AllShards() {
  std::vector<Shard*> shards;
  shards.reserve(shards_.size());
  for (const auto& [name, shard] : shards_) shards.push_back(shard.get());
  return shards;
}

void Coordinator::FanOut(const std::vector<Shard*>& shards,
                         const std::function<void(size_t, Shard*)>& fn) {
  MutexLock lock(fanout_mu_);
  fanout_->ParallelFor(shards.size(),
                       [&](size_t i) { fn(i, shards[i]); });
}

Result<SaveResult> Coordinator::SaveInitial(ApproachType type,
                                            const ModelSet& set) {
  ReaderMutexLock topo_lock(topo_mu_);
  std::string id;
  Shard* shard = nullptr;
  {
    MutexLock lock(place_mu_);
    id = master_ids_->Next("set");
    MMM_ASSIGN_OR_RETURN(std::string owner, ring_.OwnerOf(id));
    auto it = shards_.find(owner);
    if (it == shards_.end()) {
      return Status::Internal("ring names unknown shard '", owner, "'");
    }
    shard = it->second.get();
    shard->ids()->Push(id);
  }
  Result<SaveResult> saved = shard->SaveInitial(type, set);
  if (!saved.ok()) {
    shard->ids()->Cancel(id);
    return saved;
  }
  MutexLock lock(place_mu_);
  placement_[saved.ValueOrDie().set_id] = shard->name();
  return saved;
}

Result<SaveResult> Coordinator::SaveDerived(ApproachType type,
                                            const ModelSet& set,
                                            const ModelSetUpdateInfo& update) {
  ReaderMutexLock topo_lock(topo_mu_);
  MMM_ASSIGN_OR_RETURN(Shard * shard, RouteToOwner(update.base_set_id));
  std::string id;
  {
    MutexLock lock(place_mu_);
    // Colocate with the base's shard, ring be damned: Update deltas and
    // Provenance records are unrecoverable without their base, so a chain
    // never spans shards. Rebalance restores ring placement by flattening.
    id = master_ids_->Next("set");
    shard->ids()->Push(id);
  }
  Result<SaveResult> saved = shard->SaveDerived(type, set, update);
  if (!saved.ok()) {
    shard->ids()->Cancel(id);
    return saved;
  }
  MutexLock lock(place_mu_);
  placement_[saved.ValueOrDie().set_id] = shard->name();
  return saved;
}

Result<ModelSet> Coordinator::Recover(const std::string& set_id,
                                      ServeResult* result) {
  ReaderMutexLock topo_lock(topo_mu_);
  MMM_ASSIGN_OR_RETURN(Shard * shard, RouteToOwner(set_id));
  return shard->service()->Recover(set_id, result);
}

std::vector<ServeResult> Coordinator::Replay(
    const std::vector<std::string>& set_ids,
    std::vector<ModelSet>* recovered) {
  ReaderMutexLock topo_lock(topo_mu_);
  std::vector<ServeResult> results(set_ids.size());
  if (recovered != nullptr) {
    recovered->assign(set_ids.size(), ModelSet{});
  }

  // Partition the trace by owning shard, preserving per-shard request
  // order; each sub-trace replays on its shard's own worker pool.
  std::vector<Shard*> shards;
  std::vector<std::vector<size_t>> indices;  // parallel to `shards`
  std::unordered_map<Shard*, size_t> group_of;
  for (size_t i = 0; i < set_ids.size(); ++i) {
    Result<Shard*> owner = RouteToOwner(set_ids[i]);
    if (!owner.ok()) {
      results[i].set_id = set_ids[i];
      results[i].status = owner.status();
      continue;
    }
    auto [it, inserted] = group_of.emplace(owner.ValueOrDie(), shards.size());
    if (inserted) {
      shards.push_back(owner.ValueOrDie());
      indices.emplace_back();
    }
    indices[it->second].push_back(i);
  }

  FanOut(shards, [&](size_t g, Shard* shard) {
    std::vector<std::string> sub_ids;
    sub_ids.reserve(indices[g].size());
    for (size_t i : indices[g]) sub_ids.push_back(set_ids[i]);
    std::vector<ModelSet> sub_recovered;
    std::vector<ServeResult> sub_results = shard->service()->Replay(
        sub_ids, recovered != nullptr ? &sub_recovered : nullptr);
    for (size_t k = 0; k < indices[g].size(); ++k) {
      results[indices[g][k]] = std::move(sub_results[k]);
      if (recovered != nullptr) {
        (*recovered)[indices[g][k]] = std::move(sub_recovered[k]);
      }
    }
  });
  return results;
}

Status Coordinator::PinSet(const std::string& set_id) {
  ReaderMutexLock topo_lock(topo_mu_);
  MMM_ASSIGN_OR_RETURN(Shard * shard, RouteToOwner(set_id));
  return shard->service()->PinSet(set_id);
}

Status Coordinator::UnpinSet(const std::string& set_id) {
  ReaderMutexLock topo_lock(topo_mu_);
  MMM_ASSIGN_OR_RETURN(Shard * shard, RouteToOwner(set_id));
  return shard->service()->UnpinSet(set_id);
}

Result<DeleteReport> Coordinator::DeleteSet(const std::string& set_id,
                                            const DeleteOptions& options) {
  ReaderMutexLock topo_lock(topo_mu_);
  MMM_ASSIGN_OR_RETURN(Shard * shard, RouteToOwner(set_id));
  MMM_ASSIGN_OR_RETURN(DeleteReport report,
                       shard->service()->DeleteSet(set_id, options));
  MutexLock lock(place_mu_);
  for (const std::string& deleted : report.deleted_set_ids) {
    placement_.erase(deleted);
  }
  return report;
}

Result<DeleteReport> Coordinator::RetainOnly(
    const std::vector<std::string>& keep_set_ids) {
  ReaderMutexLock topo_lock(topo_mu_);
  // Validate up front: a typo'd keep id must fail the whole sweep before
  // any shard deletes anything.
  {
    MutexLock lock(place_mu_);
    for (const std::string& id : keep_set_ids) {
      if (placement_.find(id) == placement_.end()) {
        return Status::NotFound("no set '", id, "' in the cluster");
      }
    }
  }
  std::vector<Shard*> shards = AllShards();

  // Expand the keep list to its cluster-wide base-link closure before
  // partitioning. Chains never span shards, but recorded lineage can:
  // Rebalance moves flattened (full) sets to their ring owners individually,
  // and a full set keeps its base_set_id as history — so an ancestor may
  // live on another shard, where the local sweep (which only follows links
  // it can resolve) would never see it in a keep list and delete it. Pinned
  // sets get the same treatment: each shard keeps its own pins implicitly,
  // but only their local ancestors. The walk stops at missing bases exactly
  // like the un-sharded sweep, keeping a one-shard cluster bit-exact.
  std::vector<std::string> frontier = keep_set_ids;
  for (Shard* shard : shards) {
    for (std::string& pinned : shard->service()->PinnedSets()) {
      frontier.push_back(std::move(pinned));
    }
  }
  std::set<std::string> closure;
  while (!frontier.empty()) {
    std::string id = std::move(frontier.back());
    frontier.pop_back();
    if (!closure.insert(id).second) continue;
    Result<Shard*> owner = RouteToOwner(id);
    if (!owner.ok()) continue;  // stale link: nothing upstream to keep
    auto doc = FetchSetDocument(owner.ValueOrDie()->manager()->context(), id);
    if (!doc.ok()) continue;
    if (!doc.ValueOrDie().base_set_id.empty()) {
      frontier.push_back(doc.ValueOrDie().base_set_id);
    }
  }
  std::map<std::string, std::vector<std::string>> keep_by_shard;
  {
    MutexLock lock(place_mu_);
    for (const std::string& id : closure) {
      auto it = placement_.find(id);
      if (it != placement_.end()) keep_by_shard[it->second].push_back(id);
    }
  }
  std::vector<Result<DeleteReport>> reports;
  for (size_t i = 0; i < shards.size(); ++i) {
    reports.emplace_back(DeleteReport{});
  }
  FanOut(shards, [&](size_t i, Shard* shard) {
    auto it = keep_by_shard.find(shard->name());
    reports[i] = shard->service()->RetainOnly(
        it != keep_by_shard.end() ? it->second : std::vector<std::string>{});
  });
  DeleteReport merged;
  for (Result<DeleteReport>& report : reports) {
    MMM_RETURN_NOT_OK(report.status());
    MergeDeleteReport(report.ValueOrDie(), &merged);
  }
  MutexLock lock(place_mu_);
  for (const std::string& deleted : merged.deleted_set_ids) {
    placement_.erase(deleted);
  }
  return merged;
}

Result<CompactionReport> Coordinator::CompactChains(
    const CompactionPolicy& policy) {
  ReaderMutexLock topo_lock(topo_mu_);
  std::vector<Shard*> shards = AllShards();
  std::vector<Result<CompactionReport>> reports;
  for (size_t i = 0; i < shards.size(); ++i) {
    reports.emplace_back(CompactionReport{});
  }
  FanOut(shards, [&](size_t i, Shard* shard) {
    reports[i] = shard->service()->CompactChains(policy);
  });
  CompactionReport merged;
  for (Result<CompactionReport>& report : reports) {
    MMM_RETURN_NOT_OK(report.status());
    MergeCompactionReport(report.ValueOrDie(), &merged);
  }
  return merged;
}

Result<ClusterFsckReport> Coordinator::Fsck() {
  ReaderMutexLock topo_lock(topo_mu_);
  ClusterFsckReport report;
  report.problems = open_problems_;

  std::vector<Shard*> shards = AllShards();
  report.shards.resize(shards.size());
  std::vector<Status> statuses(shards.size(), Status::OK());
  FanOut(shards, [&](size_t i, Shard* shard) {
    ShardFsck& fsck = report.shards[i];
    fsck.shard = shard->name();
    fsck.repair = shard->repair_report();
    Result<StoreValidationReport> validation =
        shard->manager()->ValidateStore();
    if (!validation.ok()) {
      statuses[i] = validation.status();
      return;
    }
    fsck.validation = std::move(validation).ValueOrDie();
    Result<OrphanReport> orphans =
        FindOrphanBlobs(shard->manager()->context());
    if (!orphans.ok()) {
      statuses[i] = orphans.status();
      return;
    }
    fsck.orphans = std::move(orphans).ValueOrDie();
  });
  for (const Status& status : statuses) MMM_RETURN_NOT_OK(status);

  // Coordinator invariants: every id on exactly one shard, every chain
  // member colocated with its base.
  std::unordered_map<std::string, std::string> shard_of;
  std::vector<std::pair<SetSummary, std::string>> chain_members;
  for (Shard* shard : shards) {
    MMM_ASSIGN_OR_RETURN(std::vector<SetSummary> sets,
                         shard->manager()->ListSets());
    for (SetSummary& set : sets) {
      auto [it, inserted] = shard_of.emplace(set.id, shard->name());
      if (!inserted) {
        report.problems.push_back(
            StringFormat("set '%s' exists on shards '%s' and '%s'",
                         set.id.c_str(), it->second.c_str(),
                         shard->name().c_str()));
      }
      if (set.kind != "full" && !set.base_set_id.empty()) {
        chain_members.emplace_back(std::move(set), shard->name());
      }
    }
  }
  for (const auto& [set, shard_name] : chain_members) {
    auto it = shard_of.find(set.base_set_id);
    if (it == shard_of.end()) {
      report.problems.push_back(StringFormat(
          "set '%s' on shard '%s' needs base '%s', which no shard holds",
          set.id.c_str(), shard_name.c_str(), set.base_set_id.c_str()));
    } else if (it->second != shard_name) {
      report.problems.push_back(StringFormat(
          "chain split across shards: set '%s' on '%s' but its base '%s' "
          "on '%s'",
          set.id.c_str(), shard_name.c_str(), set.base_set_id.c_str(),
          it->second.c_str()));
    }
  }
  return report;
}

Result<ClusterStatus> Coordinator::StatusReport() {
  ReaderMutexLock topo_lock(topo_mu_);
  ClusterStatus status;
  status.virtual_nodes = ring_.virtual_nodes();
  status.failovers = failovers_;
  for (const auto& [name, shard] : shards_) {
    ShardStatus row;
    row.name = name;
    MMM_ASSIGN_OR_RETURN(row.ring_key, ring_.RingKeyOf(name));
    row.root_dir = shard->root_dir();
    row.saves = shard->saves();
    row.stats = shard->service()->Snapshot();
    MMM_ASSIGN_OR_RETURN(std::vector<SetSummary> sets,
                         shard->manager()->ListSets());
    row.sets = sets.size();
    for (const SetSummary& set : sets) {
      row.artifact_bytes += set.artifact_bytes;
      if (set.kind == "full") {
        MMM_ASSIGN_OR_RETURN(std::string owner, ring_.OwnerOf(set.id));
        if (owner != name) ++row.misplaced_sets;
      } else if (!set.base_set_id.empty()) {
        MutexLock lock(place_mu_);
        auto it = placement_.find(set.base_set_id);
        if (it == placement_.end() || it->second != name) {
          ++row.misplaced_sets;
        }
      }
    }
    status.total_sets += row.sets;
    status.shards.push_back(std::move(row));
  }
  return status;
}

Result<RepairReport> Coordinator::FailOver(const std::string& shard_name) {
  WriterMutexLock topo_lock(topo_mu_);
  auto shard_it = shards_.find(shard_name);
  auto spec_it = specs_.find(shard_name);
  if (shard_it == shards_.end() || spec_it == specs_.end()) {
    return Status::NotFound("no shard '", shard_name, "' in the cluster");
  }
  // The exclusive topology lock has already drained the data plane (every
  // data-plane op holds it shared end-to-end); Drain is belt and braces
  // against direct shard users.
  shard_it->second->service()->Drain();
  ShardSpec spec = spec_it->second;

  // Discard the failed instance, then reopen its subtree — the durable
  // bytes are the recovery source, and the open-time CommitJournal replay
  // rolls interrupted commits back or forward. The caller must have healed
  // the shard's Env faults first (the replacement "mounts" the subtree).
  shards_.erase(shard_it);
  specs_.erase(spec_it);
  ++failovers_;
  std::string new_name =
      StringFormat("%s-r%llu", shard_name.c_str(),
                   static_cast<unsigned long long>(failovers_));

  Result<std::unique_ptr<Shard>> reopened =
      OpenShard(new_name, spec, specs_.size());
  if (!reopened.ok()) {
    // Leave the shard out of the map but keep its spec so a later FailOver
    // retry can find it again.
    specs_[shard_name] = spec;
    return reopened.status();
  }
  RepairReport replay = reopened.ValueOrDie()->repair_report();
  specs_[new_name] = spec;  // same subtree, same ring key
  shards_.emplace(new_name, std::move(reopened).ValueOrDie());
  MMM_RETURN_NOT_OK(ring_.ReplaceShard(shard_name, new_name));
  {
    MutexLock lock(place_mu_);
    for (auto& [id, owner] : placement_) {
      if (owner == shard_name) owner = new_name;
    }
  }
  MMM_RETURN_NOT_OK(PersistManifest());
  return replay;
}

Status Coordinator::AddShard(const std::string& name) {
  WriterMutexLock topo_lock(topo_mu_);
  if (specs_.contains(name)) {
    return Status::AlreadyExists("shard '", name, "' already exists");
  }
  ShardSpec spec{"shards/" + name, name};
  MMM_ASSIGN_OR_RETURN(std::unique_ptr<Shard> shard,
                       OpenShard(name, spec, specs_.size()));
  MMM_RETURN_NOT_OK(ring_.AddShard(name));
  specs_[name] = spec;
  shards_.emplace(name, std::move(shard));
  {
    MutexLock lock(fanout_mu_);
    fanout_ = std::make_unique<Executor>(shards_.size());
  }
  return PersistManifest();
}

Result<RebalanceReport> Coordinator::Rebalance() {
  WriterMutexLock topo_lock(topo_mu_);
  RebalanceReport report;
  // Flattening can strand a freshly flattened member on a shard that is not
  // its ring owner, so iterate to a fixpoint; two passes suffice in
  // practice (flatten + move, then verify), the bound is a backstop.
  for (size_t pass = 0; pass < 4; ++pass) {
    bool changed = false;

    // Pass 1 over shards: flatten every chain on shards holding misplaced
    // sets, so each set becomes an independent full snapshot and can move
    // on its own. (Cascade hazard otherwise: deleting a moved chain root
    // would take its unmoved descendants with it.)
    for (const auto& [name, shard] : shards_) {
      MMM_ASSIGN_OR_RETURN(std::vector<SetSummary> sets,
                           shard->manager()->ListSets());
      bool needs_flatten = false;
      for (const SetSummary& set : sets) {
        if (set.kind == "full") continue;
        MMM_ASSIGN_OR_RETURN(std::string owner, ring_.OwnerOf(set.id));
        if (owner != name) {
          needs_flatten = true;
          break;
        }
      }
      if (!needs_flatten) continue;
      CompactionPolicy flatten;
      flatten.max_chain_depth = 0;
      MMM_ASSIGN_OR_RETURN(CompactionReport compacted,
                           shard->service()->CompactChains(flatten));
      report.chains_flattened += compacted.sets_rebased;
      changed = changed || compacted.sets_rebased > 0;
    }

    // Pass 2 over shards: move each misplaced full snapshot to its ring
    // owner. Copy first (journaled, all-or-nothing), delete second; a
    // rerun after a crash skips the copy if the target already has the
    // document and re-issues the idempotent delete.
    for (const auto& [name, source] : shards_) {
      MMM_ASSIGN_OR_RETURN(std::vector<SetSummary> sets,
                           source->manager()->ListSets());
      for (const SetSummary& set : sets) {
        if (set.kind != "full") continue;
        MMM_ASSIGN_OR_RETURN(std::string owner, ring_.OwnerOf(set.id));
        if (owner == name) continue;
        // A move that cannot complete must not start: if the source's pin
        // guard would refuse the delete leg, copying first would strand a
        // permanent duplicate placement (fsck would flag the set on two
        // shards on every audit). Skip the whole move and keep serving from
        // the source until the pin is released.
        MMM_ASSIGN_OR_RETURN(bool pin_protected,
                             source->service()->PinProtects(set.id));
        if (pin_protected) {
          report.skipped.push_back(StringFormat(
              "%s: not moved off '%s': pin-protected", set.id.c_str(),
              name.c_str()));
          continue;
        }
        auto target_it = shards_.find(owner);
        if (target_it == shards_.end()) {
          return Status::Internal("ring names unknown shard '", owner, "'");
        }
        Shard* target = target_it->second.get();

        MMM_ASSIGN_OR_RETURN(std::vector<SetSummary> target_sets,
                             target->manager()->ListSets());
        bool already_copied = false;
        for (const SetSummary& existing : target_sets) {
          if (existing.id == set.id) {
            already_copied = true;
            break;
          }
        }
        uint64_t bytes = 0;
        if (!already_copied) {
          MMM_ASSIGN_OR_RETURN(ApproachType type,
                               ApproachTypeFromName(set.approach));
          MMM_ASSIGN_OR_RETURN(ModelSet recovered,
                               source->manager()->Recover(set.id));
          target->ids()->Push(set.id);
          Result<SaveResult> saved = target->SaveInitial(type, recovered);
          if (!saved.ok()) {
            target->ids()->Cancel(set.id);
            return saved.status();
          }
          bytes = saved.ValueOrDie().bytes_written;
          // The copy is a fresh initial save, which records no lineage;
          // restore the source document's base link so a move never erases
          // history (RetainOnly's closure and `mmmctl lineage` follow it).
          if (!set.base_set_id.empty()) {
            const StoreContext& context = target->manager()->context();
            MMM_ASSIGN_OR_RETURN(SetDocument moved_doc,
                                 FetchSetDocument(context, set.id));
            moved_doc.base_set_id = set.base_set_id;
            StoreBatch batch = MakeBatch(context);
            batch.AnnotateCommit(set.id, "rebalance-lineage");
            batch.ReplaceDocument(kSetCollection, moved_doc.ToJson());
            MMM_RETURN_NOT_OK(batch.Commit());
          }
        }
        Result<DeleteReport> deleted = source->service()->DeleteSet(set.id);
        if (!deleted.ok()) {
          if (deleted.status().IsInvalidArgument()) {
            // Pinned on the source (or needed by a pinned set): leave the
            // copy in place and keep serving from the source.
            report.skipped.push_back(StringFormat(
                "%s: not moved off '%s': %s", set.id.c_str(), name.c_str(),
                deleted.status().ToString().c_str()));
            continue;
          }
          return deleted.status();
        }
        {
          MutexLock lock(place_mu_);
          placement_[set.id] = owner;
        }
        ++report.sets_moved;
        report.bytes_moved += bytes;
        report.moved_set_ids.push_back(set.id);
        changed = true;
      }
    }

    ++report.passes;
    if (!changed) break;
  }
  // Any duplicate recorded at open is resolved by the moves above (the
  // delete side is idempotent), so the stale problem notes can go.
  open_problems_.clear();
  return report;
}

size_t Coordinator::shard_count() const {
  ReaderMutexLock lock(topo_mu_);
  return shards_.size();
}

std::vector<std::string> Coordinator::ShardNames() const {
  ReaderMutexLock lock(topo_mu_);
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (const auto& [name, shard] : shards_) names.push_back(name);
  return names;
}

Result<std::string> Coordinator::OwnerOf(const std::string& set_id) const {
  MutexLock lock(place_mu_);
  auto it = placement_.find(set_id);
  if (it == placement_.end()) {
    return Status::NotFound("no set '", set_id, "' in the cluster");
  }
  return it->second;
}

Shard* Coordinator::shard(const std::string& name) {
  ReaderMutexLock lock(topo_mu_);
  auto it = shards_.find(name);
  return it == shards_.end() ? nullptr : it->second.get();
}

}  // namespace mmm
