// Fixture: explicit delete outside an allocator shim must be flagged.
struct Widget {
  int value = 0;
};

void Destroy(Widget* w) {
  delete w;
}
