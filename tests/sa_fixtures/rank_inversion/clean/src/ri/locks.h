// The same pair acquired in rank order: clean.
#ifndef SA_FIXTURE_RANK_INVERSION_CLEAN_H_
#define SA_FIXTURE_RANK_INVERSION_CLEAN_H_

class Inverted {
 public:
  void Publish() {
    MutexLock outer_first(low_);
    MutexLock inner_second(high_);
    ++epoch_;
  }

 private:
  Mutex low_ MMM_LOCK_RANK(10);
  Mutex high_ MMM_LOCK_RANK(20);
  int epoch_ = 0;
};

#endif  // SA_FIXTURE_RANK_INVERSION_CLEAN_H_
