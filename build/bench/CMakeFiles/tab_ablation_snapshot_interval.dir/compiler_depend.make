# Empty compiler generated dependencies file for tab_ablation_snapshot_interval.
# This may be replaced when dependencies are built.
