file(REMOVE_RECURSE
  "CMakeFiles/mmmctl.dir/mmmctl.cpp.o"
  "CMakeFiles/mmmctl.dir/mmmctl.cpp.o.d"
  "mmmctl"
  "mmmctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmmctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
