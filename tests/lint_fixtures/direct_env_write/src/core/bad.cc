// Fixture: approach code (anything under src/core/) calling Env write
// entry points directly bypasses StoreBatch and must be flagged.
//
// Fixtures are linted, never compiled, so Env stays a forward declaration:
// declaring the methods here would itself match the (token-level) rule.
struct Env;

int Save(Env* env) {
  int s = env->WriteFile("blob", "payload");
  if (s != 0) return s;
  s = env->AppendToFile("manifest", "entry");
  return s;
}
