#include "lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "lexer.h"

namespace mmmlint {
namespace {

namespace fs = std::filesystem;

bool PathContains(const std::string& path, std::string_view fragment) {
  return path.find(fragment) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Suppressions: `// MMMLINT(<rule>): reason` on the finding's line or the
// line directly above.

struct Suppressions {
  /// line -> rules suppressed there ("*" = all).
  std::unordered_map<int, std::vector<std::string>> by_line;

  bool Covers(const std::string& rule, int line) const {
    for (int l : {line, line - 1}) {
      auto it = by_line.find(l);
      if (it == by_line.end()) continue;
      for (const std::string& r : it->second) {
        if (r == "*" || r == rule) return true;
      }
    }
    return false;
  }
};

Suppressions CollectSuppressions(const LexedFile& file) {
  Suppressions out;
  for (const Comment& comment : file.comments) {
    size_t pos = 0;
    while ((pos = comment.text.find("MMMLINT(", pos)) != std::string::npos) {
      size_t start = pos + 8;
      size_t end = comment.text.find(')', start);
      if (end == std::string::npos) break;
      // A multi-line block comment suppresses relative to its first line,
      // which is the documented contract (suppressions are one-liners).
      out.by_line[comment.line].push_back(
          comment.text.substr(start, end - start));
      pos = end;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule engine scaffolding.

struct RuleContext {
  const LexedFile& file;
  std::vector<Finding>* findings;

  void Report(const std::string& rule, int line, std::string message) const {
    findings->push_back(Finding{file.path, line, rule, std::move(message)});
  }
};

const Token* TokenAt(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() ? &toks[i] : nullptr;
}

bool IsIdent(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kIdent && t->text == text;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

/// Index just past a balanced `( ... )` group starting at `open` (which must
/// be the opening paren); tolerates EOF by returning tokens.size().
size_t SkipParens(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Index just past a balanced `{ ... }` group starting at `open`.
size_t SkipBraces(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i + 1;
  }
  return toks.size();
}

// ---------------------------------------------------------------------------
// banned-random: nondeterminism sources outside the sanctioned shims.

const std::set<std::string, std::less<>> kBannedTypes = {
    "random_device", "mt19937",      "mt19937_64",
    "minstd_rand",   "ranlux24",     "default_random_engine",
    "system_clock",  "steady_clock", "high_resolution_clock",
};

const std::set<std::string, std::less<>> kBannedCalls = {
    "rand",      "srand",        "time",    "gettimeofday",
    "localtime", "clock_gettime", "gmtime", "mktime",
};

void CheckBannedRandom(const RuleContext& ctx) {
  if (PathContains(ctx.file.path, "common/rng.") ||
      PathContains(ctx.file.path, "common/clock.h")) {
    return;
  }
  const auto& toks = ctx.file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    bool member_access = IsPunct(prev, ".") || IsPunct(prev, "->");
    if (kBannedTypes.count(toks[i].text) != 0 && !member_access) {
      ctx.Report("banned-random", toks[i].line,
                 "'" + toks[i].text +
                     "' is nondeterministic; use src/common/rng.h (seeded "
                     "Rng) or src/common/clock.h (WallClock/SimulatedClock)");
      continue;
    }
    if (kBannedCalls.count(toks[i].text) != 0 && !member_access &&
        IsPunct(TokenAt(toks, i + 1), "(")) {
      ctx.Report("banned-random", toks[i].line,
                 "call to '" + toks[i].text +
                     "()' breaks the determinism contract; route randomness "
                     "through src/common/rng.h and time through "
                     "src/common/clock.h");
    }
  }
}

// ---------------------------------------------------------------------------
// discarded-status: a bare-statement call (or `(void)` cast) of a storage API
// whose Status/Result return encodes a write failure.

const std::set<std::string, std::less<>> kStatusCalls = {
    "Commit",        "WriteFile",  "AppendToFile", "DeleteFile",
    "CreateDirs",    "RemoveDirs", "MarkCommitted", "MarkFinished",
};

void CheckDiscardedStatus(const RuleContext& ctx) {
  const auto& toks = ctx.file.tokens;
  // Statement starts: after `;`, `{`, `}` at paren depth 0, plus index 0.
  size_t stmt = 0;
  int paren_depth = 0;
  for (size_t i = 0; i <= toks.size(); ++i) {
    bool boundary = i == toks.size();
    if (!boundary && toks[i].kind == TokenKind::kPunct) {
      if (toks[i].text == "(") ++paren_depth;
      if (toks[i].text == ")") --paren_depth;
      boundary = paren_depth == 0 && (toks[i].text == ";" ||
                                      toks[i].text == "{" ||
                                      toks[i].text == "}");
    }
    if (!boundary) continue;
    // Analyze [stmt, i): flag if it is a pure call chain ending in a
    // catalog call, optionally wrapped in a (void) cast.
    size_t p = stmt;
    bool voided = false;
    if (IsPunct(TokenAt(toks, p), "(") && IsIdent(TokenAt(toks, p + 1), "void") &&
        IsPunct(TokenAt(toks, p + 2), ")")) {
      voided = true;
      p += 3;
    }
    const Token* head = TokenAt(toks, p);
    if (head != nullptr && head->kind == TokenKind::kIdent) {
      std::string last_name = head->text;
      std::string final_call;
      int call_line = head->line;
      ++p;
      while (p < i) {
        if (IsPunct(TokenAt(toks, p), "::") &&
            TokenAt(toks, p + 1) != nullptr &&
            toks[p + 1].kind == TokenKind::kIdent) {
          last_name = toks[p + 1].text;
          p += 2;
        } else if (IsPunct(TokenAt(toks, p), "(")) {
          final_call = last_name;
          call_line = toks[p].line;
          p = SkipParens(toks, p);
        } else if ((IsPunct(TokenAt(toks, p), ".") ||
                    IsPunct(TokenAt(toks, p), "->")) &&
                   TokenAt(toks, p + 1) != nullptr &&
                   toks[p + 1].kind == TokenKind::kIdent) {
          last_name = toks[p + 1].text;
          p += 2;
        } else {
          final_call.clear();
          break;
        }
      }
      if (p == i && !final_call.empty() &&
          kStatusCalls.count(final_call) != 0 &&
          IsPunct(TokenAt(toks, i), ";")) {
        ctx.Report("discarded-status", call_line,
                   std::string(voided ? "(void)-cast" : "discarded") +
                       " Status/Result of '" + final_call +
                       "': handle the error or suppress with a justified "
                       "MMMLINT(discarded-status) comment");
      }
    }
    stmt = i + 1;
  }
}

// ---------------------------------------------------------------------------
// naked-new / delete outside allocator shims.

const std::set<std::string, std::less<>> kSmartPtrMakers = {
    "unique_ptr", "shared_ptr", "make_unique", "make_shared",
};

void CheckNakedNew(const RuleContext& ctx) {
  if (PathContains(ctx.file.path, "allocator")) return;
  const auto& toks = ctx.file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    if (toks[i].text == "new") {
      // Back-scan to the statement start: a `new` immediately wrapped into a
      // smart pointer is the sanctioned ownership-transfer idiom.
      bool smart = false;
      for (size_t j = i; j-- > 0;) {
        if (toks[j].kind == TokenKind::kPunct &&
            (toks[j].text == ";" || toks[j].text == "{" ||
             toks[j].text == "}")) {
          break;
        }
        if (toks[j].kind == TokenKind::kIdent &&
            kSmartPtrMakers.count(toks[j].text) != 0) {
          smart = true;
          break;
        }
      }
      if (!smart) {
        ctx.Report("naked-new", toks[i].line,
                   "naked 'new': wrap the allocation in std::unique_ptr / "
                   "std::make_unique (allocator shim files are exempt)");
      }
    } else if (toks[i].text == "delete") {
      const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
      if (IsPunct(prev, "=") || IsIdent(prev, "operator")) continue;
      ctx.Report("naked-delete", toks[i].line,
                 "explicit 'delete': ownership must live in a smart pointer "
                 "(allocator shim files are exempt)");
    }
  }
}

// ---------------------------------------------------------------------------
// mutex-missing-guard + raw-std-mutex.

const std::set<std::string, std::less<>> kWrappedMutexTypes = {
    "Mutex", "SharedMutex",
};

const std::set<std::string, std::less<>> kRawMutexTypes = {
    "mutex",           "shared_mutex",          "recursive_mutex",
    "timed_mutex",     "condition_variable",    "condition_variable_any",
    "recursive_timed_mutex",
};

void CheckMutexRules(const RuleContext& ctx) {
  if (PathContains(ctx.file.path, "common/thread_annotations.h")) {
    return;  // the annotated wrapper shim itself
  }
  const auto& toks = ctx.file.tokens;

  // raw-std-mutex: `std :: <raw type>` anywhere.
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (IsIdent(&toks[i], "std") && IsPunct(&toks[i + 1], "::") &&
        toks[i + 2].kind == TokenKind::kIdent &&
        kRawMutexTypes.count(toks[i + 2].text) != 0) {
      ctx.Report("raw-std-mutex", toks[i].line,
                 "raw std::" + toks[i + 2].text +
                     ": use the annotated wrappers in "
                     "common/thread_annotations.h (Mutex, SharedMutex, "
                     "CondVar) so -Wthread-safety can check the contract");
    }
  }

  // mutex-missing-guard: a class body that declares a wrapped mutex member
  // must annotate at least one field with MMM_GUARDED_BY / MMM_PT_GUARDED_BY.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(&toks[i], "class") && !IsIdent(&toks[i], "struct")) continue;
    // Find the body opener, skipping the name, attribute macros with
    // arguments, `final`, and base clauses. A `;` first means a forward
    // declaration.
    size_t p = i + 1;
    size_t body = 0;
    while (p < toks.size()) {
      if (IsPunct(&toks[p], ";")) break;
      if (IsPunct(&toks[p], "(")) {
        p = SkipParens(toks, p);
        continue;
      }
      if (IsPunct(&toks[p], "{")) {
        body = p;
        break;
      }
      ++p;
    }
    if (body == 0) continue;
    size_t end = SkipBraces(toks, body);
    bool has_guard = false;
    std::vector<std::pair<int, std::string>> mutex_members;
    int depth = 0;
    for (size_t j = body; j < end; ++j) {
      if (toks[j].kind == TokenKind::kPunct) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        continue;
      }
      if (toks[j].kind != TokenKind::kIdent) continue;
      if (toks[j].text == "MMM_GUARDED_BY" ||
          toks[j].text == "MMM_PT_GUARDED_BY") {
        has_guard = true;
      }
      bool wrapped_type = kWrappedMutexTypes.count(toks[j].text) != 0 &&
                          !IsPunct(TokenAt(toks, j >= 1 ? j - 1 : 0), "<");
      bool raw_type = kRawMutexTypes.count(toks[j].text) != 0 && j >= 2 &&
                      IsIdent(&toks[j - 2], "std") &&
                      IsPunct(&toks[j - 1], "::");
      if (depth == 0 && (wrapped_type || raw_type)) {
        // `Mutex name ;` at paren depth 0 is a member declaration.
        const Token* name = TokenAt(toks, j + 1);
        if (name != nullptr && name->kind == TokenKind::kIdent &&
            IsPunct(TokenAt(toks, j + 2), ";")) {
          mutex_members.emplace_back(toks[j].line, name->text);
        }
      }
    }
    if (!has_guard) {
      for (const auto& [line, name] : mutex_members) {
        ctx.Report("mutex-missing-guard", line,
                   "class declares mutex member '" + name +
                       "' but annotates no field with MMM_GUARDED_BY: state "
                       "the locking contract (or suppress with a reason if "
                       "the mutex guards an external resource)");
      }
    }
    // Do not skip past the body: nested classes are revisited on their own
    // `class` token and checked against their own members.
  }
}

// ---------------------------------------------------------------------------
// direct-env-write: approach code must stage writes through StoreBatch.

void CheckDirectEnvWrite(const RuleContext& ctx) {
  if (!PathContains(ctx.file.path, "src/core/")) return;
  const auto& toks = ctx.file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    if ((toks[i].text == "WriteFile" || toks[i].text == "AppendToFile") &&
        IsPunct(TokenAt(toks, i + 1), "(")) {
      ctx.Report("direct-env-write", toks[i].line,
                 "'" + toks[i].text +
                     "' in approach code: save-path writes must stage "
                     "through StoreBatch so batching, journaling, and "
                     "crash-point sweeps observe them");
    }
  }
}

// ---------------------------------------------------------------------------
// direct-env-read: approach code must read through FileStore (Get /
// GetRange / OpenStream), never Env::ReadFile / ReadFileRange directly —
// a direct read bypasses the modeled store latency, the StoreStats
// counters, and fault injection, so benches and crash sweeps silently stop
// observing it.

void CheckDirectEnvRead(const RuleContext& ctx) {
  if (!PathContains(ctx.file.path, "src/core/")) return;
  const auto& toks = ctx.file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    if ((toks[i].text == "ReadFile" || toks[i].text == "ReadFileRange") &&
        IsPunct(TokenAt(toks, i + 1), "(")) {
      ctx.Report("direct-env-read", toks[i].line,
                 "'" + toks[i].text +
                     "' in approach code: recovery reads must go through "
                     "FileStore (Get/GetRange/OpenStream) so modeled "
                     "latency, read counters, and fault injection observe "
                     "them");
    }
  }
}

// ---------------------------------------------------------------------------
// direct-manager-open: ModelSetManager is opened by its ownership layers
// (core itself, cluster shards) plus tests and benches; everything else gets
// a manager (or a Coordinator) handed to it. A stray Open elsewhere is how
// two facades end up racing on one store without the cluster's placement
// and locking discipline.

/// Path with everything up to and including the last "lint_fixtures/"
/// stripped, so fixture trees mirror real source paths (a fixture under
/// tests/lint_fixtures/x/src/serve/ is judged as src/serve/, not exempted
/// as part of tests/).
std::string EffectivePath(const std::string& path) {
  size_t pos = path.rfind("lint_fixtures/");
  if (pos == std::string::npos) return path;
  return path.substr(pos + std::string_view("lint_fixtures/").size());
}

void CheckDirectManagerOpen(const RuleContext& ctx) {
  std::string path = EffectivePath(ctx.file.path);
  if (PathContains(path, "src/core/") || PathContains(path, "src/cluster/") ||
      PathContains(path, "tests/") || PathContains(path, "bench/")) {
    return;
  }
  const auto& toks = ctx.file.tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (IsIdent(&toks[i], "ModelSetManager") && IsPunct(&toks[i + 1], "::") &&
        IsIdent(&toks[i + 2], "Open") && IsPunct(&toks[i + 3], "(")) {
      ctx.Report("direct-manager-open", toks[i].line,
                 "direct ModelSetManager::Open outside core/, cluster/, "
                 "tests, and bench: take an injected manager, or go through "
                 "cluster/Coordinator so placement and lock order hold");
    }
  }
}

// ---------------------------------------------------------------------------
// chunk-delete: the `cas-` chunk namespace is refcounted (cas/cas_store.h);
// a Delete that bypasses the CAS sweeper leaves the refcount index pointing
// at a blob that no longer exists, which every manifest sharing the chunk
// then fails to read. Only src/cas/ may delete chunk blobs; everyone else
// decrements (OnManifestDeleted) and lets the sweep reclaim.

void CheckChunkDelete(const RuleContext& ctx) {
  std::string path = EffectivePath(ctx.file.path);
  if (PathContains(path, "src/cas/")) return;
  const auto& toks = ctx.file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    if (toks[i].text != "Delete" && toks[i].text != "DeleteFile") continue;
    if (!IsPunct(TokenAt(toks, i + 1), "(")) continue;
    size_t end = SkipParens(toks, i + 1);
    for (size_t j = i + 2; j + 1 < end; ++j) {
      bool chunk_arg =
          (toks[j].kind == TokenKind::kIdent &&
           (toks[j].text == "ChunkBlobName" ||
            toks[j].text == "kCasChunkPrefix")) ||
          (toks[j].kind == TokenKind::kString &&
           toks[j].text.rfind("cas-", 0) == 0);
      if (chunk_arg) {
        ctx.Report("chunk-delete", toks[i].line,
                   "'" + toks[i].text +
                       "' of a cas- chunk blob outside src/cas/: chunks are "
                       "refcounted — call CasStore::OnManifestDeleted and "
                       "let SweepZeroRefChunks reclaim them");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// include-cycle: DFS over the quoted-include graph of the scanned files.

struct IncludeEdge {
  std::string target;  ///< include text as written
  int line = 0;
};

std::vector<IncludeEdge> ExtractIncludes(const LexedFile& file) {
  std::vector<IncludeEdge> out;
  const auto& toks = file.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (IsPunct(&toks[i], "#") && IsIdent(&toks[i + 1], "include") &&
        toks[i + 2].kind == TokenKind::kString &&
        toks[i + 1].line == toks[i + 2].line) {
      out.push_back({toks[i + 2].text, toks[i + 2].line});
    }
  }
  return out;
}

/// Maps each scanned file to a canonical node id, and resolves an include
/// string from a given file to a node id (or "" if it is not a scanned file).
class IncludeGraph {
 public:
  explicit IncludeGraph(const std::vector<LexedFile>& files) {
    for (const LexedFile& f : files) {
      by_suffix_[NormalizedSuffix(f.path)] = f.path;
      by_exact_[fs::weakly_canonical(f.path).string()] = f.path;
    }
    for (const LexedFile& f : files) {
      for (const IncludeEdge& inc : ExtractIncludes(f)) {
        std::string target = Resolve(f.path, inc.target);
        if (!target.empty()) {
          edges_[f.path].push_back({target, inc.line});
        }
      }
    }
  }

  /// Reports one finding per distinct cycle, attached to the edge that
  /// closes it.
  void ReportCycles(std::vector<Finding>* findings) const {
    std::unordered_map<std::string, int> color;  // 0 white 1 grey 2 black
    std::vector<std::string> stack;
    std::set<std::string> reported;
    for (const auto& [node, unused] : edges_) {
      Dfs(node, &color, &stack, &reported, findings);
    }
  }

 private:
  struct ResolvedEdge {
    std::string to;
    int line;
  };

  static std::string NormalizedSuffix(const std::string& path) {
    // Includes are rooted at src/ (e.g. "storage/env.h"); fall back to the
    // bare filename for tool-local includes.
    size_t pos = path.rfind("src/");
    if (pos != std::string::npos) return path.substr(pos + 4);
    return fs::path(path).filename().string();
  }

  std::string Resolve(const std::string& from, const std::string& inc) const {
    // Same-directory include first (tools), then the src/-rooted form.
    fs::path sibling = fs::path(from).parent_path() / inc;
    auto exact = by_exact_.find(fs::weakly_canonical(sibling).string());
    if (exact != by_exact_.end()) return exact->second;
    auto suffix = by_suffix_.find(inc);
    if (suffix != by_suffix_.end()) return suffix->second;
    return "";
  }

  void Dfs(const std::string& node, std::unordered_map<std::string, int>* color,
           std::vector<std::string>* stack, std::set<std::string>* reported,
           std::vector<Finding>* findings) const {
    int& c = (*color)[node];
    if (c != 0) return;
    c = 1;
    stack->push_back(node);
    auto it = edges_.find(node);
    if (it != edges_.end()) {
      for (const ResolvedEdge& edge : it->second) {
        int state = (*color)[edge.to];
        if (state == 1) {
          // Grey target: the stack suffix from `edge.to` is a cycle.
          auto begin = std::find(stack->begin(), stack->end(), edge.to);
          std::string chain;
          std::set<std::string> members;
          for (auto p = begin; p != stack->end(); ++p) {
            chain += NormalizedSuffix(*p) + " -> ";
            members.insert(*p);
          }
          chain += NormalizedSuffix(edge.to);
          std::string key;
          for (const std::string& m : members) key += m + "|";
          if (reported->insert(key).second) {
            findings->push_back(Finding{node, edge.line, "include-cycle",
                                        "include cycle: " + chain});
          }
        } else if (state == 0) {
          Dfs(edge.to, color, stack, reported, findings);
        }
      }
    }
    stack->pop_back();
    c = 2;
  }

  std::unordered_map<std::string, std::string> by_suffix_;
  std::unordered_map<std::string, std::string> by_exact_;
  std::unordered_map<std::string, std::vector<ResolvedEdge>> edges_;
};

// ---------------------------------------------------------------------------
// Driver.

bool WantRule(const LintOptions& options, std::string_view rule) {
  if (options.only_rules.empty()) return true;
  return std::find(options.only_rules.begin(), options.only_rules.end(),
                   rule) != options.only_rules.end();
}

void CollectSources(const std::string& root, std::vector<std::string>* out,
                    std::vector<Finding>* findings) {
  std::error_code ec;
  fs::file_status st = fs::status(root, ec);
  if (ec || !fs::exists(st)) {
    findings->push_back(Finding{root, 0, "io", "path does not exist"});
    return;
  }
  auto keep = [](const fs::path& p) {
    std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
  };
  if (fs::is_regular_file(st)) {
    out->push_back(root);
    return;
  }
  for (fs::recursive_directory_iterator it(root, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file() && keep(it->path())) {
      out->push_back(it->path().generic_string());
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> RuleNames() {
  return {"banned-random",  "discarded-status",   "naked-new",
          "naked-delete",   "mutex-missing-guard", "raw-std-mutex",
          "direct-env-write", "direct-env-read", "direct-manager-open",
          "chunk-delete", "include-cycle"};
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& options) {
  std::vector<Finding> findings;
  std::vector<std::string> sources;
  for (const std::string& p : paths) CollectSources(p, &sources, &findings);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  std::vector<LexedFile> lexed;
  lexed.reserve(sources.size());
  for (const std::string& path : sources) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{path, 0, "io", "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    lexed.push_back(Lex(path, buffer.str()));
  }

  for (const LexedFile& file : lexed) {
    RuleContext ctx{file, &findings};
    if (WantRule(options, "banned-random")) CheckBannedRandom(ctx);
    if (WantRule(options, "discarded-status")) CheckDiscardedStatus(ctx);
    if (WantRule(options, "naked-new") || WantRule(options, "naked-delete")) {
      CheckNakedNew(ctx);
    }
    if (WantRule(options, "mutex-missing-guard") ||
        WantRule(options, "raw-std-mutex")) {
      CheckMutexRules(ctx);
    }
    if (WantRule(options, "direct-env-write")) CheckDirectEnvWrite(ctx);
    if (WantRule(options, "direct-env-read")) CheckDirectEnvRead(ctx);
    if (WantRule(options, "direct-manager-open")) CheckDirectManagerOpen(ctx);
    if (WantRule(options, "chunk-delete")) CheckChunkDelete(ctx);
  }
  if (WantRule(options, "include-cycle")) {
    IncludeGraph(lexed).ReportCycles(&findings);
  }

  // Apply suppressions, then sort and dedupe (nested-class scans can visit a
  // member twice).
  std::unordered_map<std::string, Suppressions> suppressions;
  for (const LexedFile& file : lexed) {
    suppressions.emplace(file.path, CollectSuppressions(file));
  }
  std::erase_if(findings, [&](const Finding& f) {
    auto it = suppressions.find(f.file);
    return it != suppressions.end() && it->second.Covers(f.rule, f.line);
  });
  std::sort(findings.begin(), findings.end(), [](const Finding& a,
                                                 const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule;
                             }),
                 findings.end());
  return findings;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

std::vector<SuppressionNote> ListSuppressions(
    const std::vector<std::string>& paths) {
  std::vector<Finding> io_sink;
  std::vector<std::string> sources;
  for (const std::string& p : paths) CollectSources(p, &sources, &io_sink);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  std::vector<SuppressionNote> notes;
  for (const std::string& path : sources) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    LexedFile file = Lex(path, buffer.str());
    for (const Comment& comment : file.comments) {
      size_t pos = 0;
      while ((pos = comment.text.find("MMMLINT(", pos)) !=
             std::string::npos) {
        size_t start = pos + 8;
        size_t end = comment.text.find(')', start);
        if (end == std::string::npos) break;
        SuppressionNote note;
        note.file = path;
        note.line = comment.line;
        note.rule = comment.text.substr(start, end - start);
        // Only well-formed suppressions (`MMMLINT(<rule>): ...` with a real
        // rule name and the trailing colon) — doc comments describing the
        // syntax would otherwise show up as debt.
        bool rule_ok =
            note.rule == "*" ||
            (!note.rule.empty() &&
             note.rule.find_first_not_of(
                 "abcdefghijklmnopqrstuvwxyz0123456789-") ==
                 std::string::npos);
        if (!rule_ok || end + 1 >= comment.text.size() ||
            comment.text[end + 1] != ':') {
          pos = end;
          continue;
        }
        size_t reason_begin = end + 2;
        size_t reason_end = comment.text.find('\n', reason_begin);
        if (reason_end == std::string::npos) {
          reason_end = comment.text.size();
        }
        std::string reason =
            comment.text.substr(reason_begin, reason_end - reason_begin);
        while (!reason.empty() && reason.front() == ' ') reason.erase(0, 1);
        while (!reason.empty() &&
               (reason.back() == ' ' || reason.back() == '\r')) {
          reason.pop_back();
        }
        note.reason = std::move(reason);
        notes.push_back(std::move(note));
        pos = end;
      }
    }
  }
  std::sort(notes.begin(), notes.end(),
            [](const SuppressionNote& a, const SuppressionNote& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return notes;
}

std::string FormatJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n  {\"file\": \"" << JsonEscape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
        << "\", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]" : "\n]") << "\n";
  return out.str();
}

}  // namespace mmmlint
