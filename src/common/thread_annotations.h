#ifndef MMM_COMMON_THREAD_ANNOTATIONS_H_
#define MMM_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// \file
/// Clang Thread Safety Analysis support.
///
/// Every locking contract in the library is declared with these macros and
/// checked at compile time by clang's `-Wthread-safety` (the CI clang job
/// builds with `-Wthread-safety -Werror`). Under other compilers the macros
/// expand to nothing, so the annotations cost nothing outside analysis.
///
/// The standard library's mutex types are not annotated, so concurrent code
/// uses the thin wrappers below (`Mutex`, `SharedMutex`, `CondVar`) together
/// with the RAII guards (`MutexLock`, `ReaderMutexLock`, `WriterMutexLock`)
/// instead of `std::mutex` / `std::lock_guard`. mmmlint's `raw-std-mutex`
/// rule enforces that no other file declares a raw standard mutex member.
///
/// Conventions (see DESIGN.md §6):
///  - every field a mutex protects carries `MMM_GUARDED_BY(mu_)`;
///  - private helpers called with the lock held are `MMM_REQUIRES(mu_)`;
///  - public methods that take a lock internally are `MMM_EXCLUDES(mu_)`
///    where self-deadlock is a real hazard.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MMM_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef MMM_THREAD_ANNOTATION__
#define MMM_THREAD_ANNOTATION__(x)  // not clang: annotations are no-ops
#endif

#define MMM_CAPABILITY(x) MMM_THREAD_ANNOTATION__(capability(x))
#define MMM_SCOPED_CAPABILITY MMM_THREAD_ANNOTATION__(scoped_lockable)
#define MMM_GUARDED_BY(x) MMM_THREAD_ANNOTATION__(guarded_by(x))
#define MMM_PT_GUARDED_BY(x) MMM_THREAD_ANNOTATION__(pt_guarded_by(x))
#define MMM_ACQUIRED_BEFORE(...) \
  MMM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define MMM_ACQUIRED_AFTER(...) \
  MMM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define MMM_REQUIRES(...) \
  MMM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define MMM_REQUIRES_SHARED(...) \
  MMM_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define MMM_ACQUIRE(...) \
  MMM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define MMM_ACQUIRE_SHARED(...) \
  MMM_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define MMM_RELEASE(...) \
  MMM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define MMM_RELEASE_SHARED(...) \
  MMM_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define MMM_RELEASE_GENERIC(...) \
  MMM_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define MMM_TRY_ACQUIRE(...) \
  MMM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define MMM_EXCLUDES(...) MMM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define MMM_ASSERT_CAPABILITY(x) \
  MMM_THREAD_ANNOTATION__(assert_capability(x))
#define MMM_RETURN_CAPABILITY(x) MMM_THREAD_ANNOTATION__(lock_returned(x))
#define MMM_NO_THREAD_SAFETY_ANALYSIS \
  MMM_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Lock-rank declaration, consumed by tools/mmmsa rather than the compiler
/// (it expands to nothing everywhere). Ranks impose one global acquisition
/// order: a thread may only acquire a lock whose rank is strictly greater
/// than the rank of every lock it already holds, so any two locks ever held
/// together nest outer-lower/inner-higher and cross-subsystem deadlock
/// cycles are impossible by construction. Every Mutex/SharedMutex under
/// src/ must carry a rank (mmmsa's lock-rank-missing check enforces this);
/// the full table lives in DESIGN.md §6.2. Leave gaps between values so a
/// new lock can slot between existing ones without renumbering the world.
#define MMM_LOCK_RANK(n)

namespace mmm {

/// \brief Annotated exclusive mutex (wraps std::mutex).
class MMM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MMM_ACQUIRE() { mu_.lock(); }
  void Unlock() MMM_RELEASE() { mu_.unlock(); }
  bool TryLock() MMM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis) that the caller holds this mutex through
  /// some path the analysis cannot follow. No runtime effect.
  void AssertHeld() const MMM_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Annotated reader/writer mutex (wraps std::shared_mutex).
class MMM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MMM_ACQUIRE() { mu_.lock(); }
  void Unlock() MMM_RELEASE() { mu_.unlock(); }
  void LockShared() MMM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MMM_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock over a Mutex.
class MMM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MMM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MMM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief RAII shared (reader) lock over a SharedMutex.
class MMM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) MMM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() MMM_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief RAII exclusive (writer) lock over a SharedMutex.
class MMM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) MMM_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() MMM_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief Condition variable paired with mmm::Mutex (LevelDB port::CondVar
/// idiom). Wait() must be called with `mu` held; it releases the mutex while
/// blocked and reacquires it before returning, which the annotation
/// `MMM_REQUIRES(mu)` makes checkable: the capability is held on both sides
/// of the call from the analysis' point of view.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Always re-check the waited-for condition in a `while` loop around
  /// Wait(): wakeups are spurious by contract.
  void Wait(Mutex& mu) MMM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mmm

#endif  // MMM_COMMON_THREAD_ANNOTATIONS_H_
