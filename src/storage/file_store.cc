#include "storage/file_store.h"

namespace mmm {

FileStore::FileStore(Env* env, std::string root, StoreLatencyModel latency,
                     SimulatedClock* sim_clock)
    : env_(env), root_(std::move(root)), latency_(latency), sim_clock_(sim_clock) {}

Status FileStore::Open() { return env_->CreateDirs(root_); }

Status FileStore::ValidateName(const std::string& name) const {
  if (name.empty()) return Status::InvalidArgument("blob name must not be empty");
  if (name.find('/') != std::string::npos) {
    return Status::InvalidArgument("blob name must not contain '/': ", name);
  }
  return Status::OK();
}

void FileStore::Charge(uint64_t bytes) {
  if (sim_clock_ != nullptr) sim_clock_->Advance(latency_.CostNanos(bytes));
}

Status FileStore::Put(const std::string& name, std::span<const uint8_t> data) {
  MMM_RETURN_NOT_OK(ValidateName(name));
  MMM_RETURN_NOT_OK(env_->WriteFile(root_ + "/" + name, data));
  stats_.AddWrite(data.size());
  Charge(data.size());
  return Status::OK();
}

Status FileStore::PutString(const std::string& name, std::string_view data) {
  return Put(name, std::span<const uint8_t>(
                       reinterpret_cast<const uint8_t*>(data.data()), data.size()));
}

Status FileStore::Append(const std::string& name, std::span<const uint8_t> data) {
  MMM_RETURN_NOT_OK(ValidateName(name));
  MMM_RETURN_NOT_OK(env_->AppendToFile(root_ + "/" + name, data));
  stats_.AddWrite(data.size());
  Charge(data.size());
  return Status::OK();
}

Status FileStore::PutDetached(const std::string& name,
                              std::span<const uint8_t> data, StoreStats* stats,
                              uint64_t* cost_nanos) const {
  MMM_RETURN_NOT_OK(ValidateName(name));
  MMM_RETURN_NOT_OK(env_->WriteFile(root_ + "/" + name, data));
  ++stats->write_ops;
  stats->bytes_written += data.size();
  *cost_nanos = latency_.CostNanos(data.size());
  return Status::OK();
}

void FileStore::MergeBatch(const StoreStats& delta, uint64_t charge_nanos) {
  stats_.Add(delta);
  if (sim_clock_ != nullptr) sim_clock_->Advance(charge_nanos);
}

Result<std::vector<uint8_t>> FileStore::Get(const std::string& name) {
  MMM_RETURN_NOT_OK(ValidateName(name));
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, env_->ReadFile(root_ + "/" + name));
  stats_.AddRead(data.size());
  Charge(data.size());
  return data;
}

Result<std::string> FileStore::GetString(const std::string& name) {
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, Get(name));
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

Result<std::vector<uint8_t>> FileStore::GetRange(const std::string& name,
                                                 uint64_t offset,
                                                 uint64_t length) {
  MMM_RETURN_NOT_OK(ValidateName(name));
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                       env_->ReadFileRange(root_ + "/" + name, offset, length));
  stats_.AddRead(data.size());
  Charge(data.size());
  return data;
}

Result<StreamFile> FileStore::OpenStream(const std::string& name,
                                         uint64_t window_bytes) {
  MMM_RETURN_NOT_OK(ValidateName(name));
  const std::string path = root_ + "/" + name;
  auto size = env_->FileSize(path);
  if (!size.ok()) {
    // Report a missing blob the way Get does (PosixEnv's FileSize surfaces
    // a generic IOError for absent files).
    auto exists = env_->FileExists(path);
    if (exists.ok() && !exists.ValueOrDie()) {
      return Status::NotFound("cannot open for read: ", path);
    }
    return size.status();
  }
  // Whole-stream accounting up front; see the cost model in file_store.h.
  stats_.AddRead(size.ValueOrDie());
  Charge(size.ValueOrDie());
  return StreamFile(env_, path, size.ValueOrDie(), window_bytes);
}

Result<uint64_t> FileStore::Size(const std::string& name) {
  MMM_RETURN_NOT_OK(ValidateName(name));
  return env_->FileSize(root_ + "/" + name);
}

Result<bool> FileStore::Exists(const std::string& name) {
  MMM_RETURN_NOT_OK(ValidateName(name));
  return env_->FileExists(root_ + "/" + name);
}

Status FileStore::Delete(const std::string& name) {
  MMM_RETURN_NOT_OK(ValidateName(name));
  return env_->DeleteFile(root_ + "/" + name);
}

Result<std::vector<std::string>> FileStore::List() { return env_->ListDir(root_); }

}  // namespace mmm
