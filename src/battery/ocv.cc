#include "battery/ocv.h"

#include <algorithm>
#include <array>

namespace mmm {
namespace {

// 21 knots at 5% SoC spacing, typical NMC 18650 values.
constexpr std::array<double, 21> kOcvTable = {
    2.80, 3.22, 3.36, 3.44, 3.49, 3.53, 3.56, 3.58, 3.60, 3.62, 3.65,
    3.69, 3.73, 3.78, 3.83, 3.88, 3.94, 4.00, 4.06, 4.13, 4.20};

constexpr double kStep = 1.0 / (kOcvTable.size() - 1);

}  // namespace

double OcvCurve::Voltage(double soc) {
  soc = std::clamp(soc, 0.0, 1.0);
  double position = soc / kStep;
  auto index = static_cast<size_t>(position);
  if (index >= kOcvTable.size() - 1) return kOcvTable.back();
  double fraction = position - static_cast<double>(index);
  return kOcvTable[index] + fraction * (kOcvTable[index + 1] - kOcvTable[index]);
}

double OcvCurve::Slope(double soc) {
  soc = std::clamp(soc, 0.0, 1.0);
  auto index = static_cast<size_t>(soc / kStep);
  if (index >= kOcvTable.size() - 1) index = kOcvTable.size() - 2;
  return (kOcvTable[index + 1] - kOcvTable[index]) / kStep;
}

size_t OcvCurve::KnotCount() { return kOcvTable.size(); }

}  // namespace mmm
