#ifndef MMM_CORE_BLOB_FORMATS_H_
#define MMM_CORE_BLOB_FORMATS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model_set.h"
#include "serialize/sha256.h"
#include "storage/executor.h"

namespace mmm {

/// \file
/// On-disk blob formats shared by the management approaches. Every format is
/// little-endian, starts with an 8-byte magic, and ends with a CRC32 footer
/// over everything before it, so recovery can reject corrupted artifacts.

/// \name Per-model state dict with keys (the MMlib-base format).
/// Saving the dictionary keys with every model is exactly the redundancy the
/// paper's O1 identifies; Baseline avoids it via the set-level param blob.
/// @{
std::vector<uint8_t> EncodeStateDict(const StateDict& state);
Result<StateDict> DecodeStateDict(std::span<const uint8_t> blob);
/// @}

/// \name Set-level parameter blob (Baseline format, paper §3.2):
/// all models' parameters concatenated as raw floats, no per-model metadata.
/// @{
std::vector<uint8_t> EncodeParamBlob(const ModelSet& set);
/// Decodes using the layout derived from `spec`; validates counts and CRC.
Result<std::vector<StateDict>> DecodeParamBlob(const ArchitectureSpec& spec,
                                               std::span<const uint8_t> blob);
/// @}

/// \name Ranged access to the set-level parameter blob.
/// The deployment scenario recovers "a selected number of models" (§1);
/// because the param blob stores fixed-size raw-float slices, single models
/// can be fetched with one ranged store read instead of loading the set.
/// Ranged reads bypass the blob's CRC footer (whole-blob reads still
/// validate it).
/// @{
struct ParamBlobLayout {
  size_t header_bytes = 0;  ///< offset of model 0's first float
  size_t num_models = 0;
  size_t params_per_model = 0;

  size_t ModelBytes() const { return params_per_model * sizeof(float); }
  size_t ModelOffset(size_t index) const {
    return header_bytes + index * ModelBytes();
  }
};

/// Parses a param blob's header. `prefix` must hold the first
/// kParamBlobMaxHeaderBytes bytes (or the whole blob if smaller).
Result<ParamBlobLayout> ReadParamBlobHeader(std::span<const uint8_t> prefix);

/// Upper bound on the param blob header size (magic + two max varints).
inline constexpr size_t kParamBlobMaxHeaderBytes = 8 + 10 + 10;

/// Decodes one model's raw float slice (layout order) into a state dict.
Result<StateDict> DecodeModelSlice(const ArchitectureSpec& spec,
                                   std::span<const uint8_t> slice);
/// @}

/// \brief Streaming DecodeParamBlob (DESIGN.md §12): absorbs the
/// decompressed param blob in arbitrary chunks and emits each layer tensor
/// the moment its bytes are complete, in (model, param) order — so a
/// recovery can hand finished layers to the LayerCache while later models
/// are still in flight, and peak buffering is one layer plus the CRC
/// running state instead of the whole blob.
///
/// Accepts exactly the blobs DecodeParamBlob accepts (header, counts, and
/// CRC32 footer all validated — the footer necessarily last, at Finish,
/// since the CRC runs alongside the stream). The emitted tensors are
/// bit-identical to the materializing decode.
class ParamBlobStreamDecoder {
 public:
  /// Called once per completed layer, in (model, param) order. `key` is
  /// the layout key of parameter `param`. A non-OK return aborts decoding
  /// and surfaces from Feed/Finish.
  using LayerSink = std::function<Status(size_t model, size_t param,
                                         const std::string& key,
                                         Tensor tensor)>;

  /// `total_bytes` is the decompressed blob's full size (header through
  /// CRC footer), known up front from the stream being decoded.
  ParamBlobStreamDecoder(const ArchitectureSpec& spec, uint64_t total_bytes,
                         LayerSink sink);

  /// Absorbs the next chunk of the decompressed blob. Errors are sticky.
  Status Feed(std::span<const uint8_t> data);

  /// Validates completeness and the CRC footer.
  Status Finish();

  /// Model count from the blob header; 0 before the header has streamed.
  size_t num_models() const { return num_models_; }
  /// High-water mark of internal buffering (≈ one layer), for the
  /// peak-memory assertions in tests.
  size_t peak_buffered_bytes() const { return peak_buffered_; }

 private:
  enum class State : uint8_t {
    kMagic,    // matching the 8 magic bytes
    kHeader,   // reading the two header varints
    kTensors,  // filling layer tensors
    kDone,     // all models complete; draining the footer
  };

  Status Fail(Status status);
  Status ParseHeaderByte(uint8_t byte);
  Status MaybeEmit();
  void BeginTensor();

  ParamLayout layout_;
  uint64_t total_bytes_;
  LayerSink sink_;
  Status error_;  // sticky
  State state_ = State::kMagic;

  uint64_t position_ = 0;  // absolute bytes fed so far
  uint32_t crc_ = 0;       // over the payload (all bytes but the last 4)
  uint8_t footer_[4] = {0, 0, 0, 0};
  size_t footer_size_ = 0;

  size_t magic_matched_ = 0;
  int header_varints_done_ = 0;
  uint64_t header_value_ = 0;
  int header_shift_ = 0;
  uint64_t num_models_ = 0;
  uint64_t per_model_ = 0;

  size_t model_ = 0;
  size_t param_ = 0;
  std::vector<float> current_;   // layer being filled
  size_t current_filled_ = 0;    // bytes of current_ filled
  size_t peak_buffered_ = 0;
};

/// \name Per-layer hash table (Update approach, paper §3.3 step 2).
/// hashes[m][p] is the SHA-256 of model m's p-th parameter tensor bytes.
/// @{
using HashTable = std::vector<std::vector<Sha256Digest>>;

/// Hashes every parameter tensor of every model. With a multi-lane
/// `executor`, models are hashed in parallel (one model per work item); the
/// result is identical to the serial computation since each lane writes only
/// its own rows.
HashTable ComputeHashTable(const ModelSet& set, Executor* executor = nullptr);

std::vector<uint8_t> EncodeHashTable(const HashTable& hashes);
Result<HashTable> DecodeHashTable(std::span<const uint8_t> blob);
/// @}

/// \name Parameter diff blob (Update approach, paper §3.3 steps 3-4):
/// the diff list of changed (model, parameter) pairs followed by the
/// concatenated changed parameters.
///
/// Two payload encodings (the delta-encoding direction of §4.5, after
/// Bhattacherjee et al.):
///  - kAbsolute: the new parameter values verbatim (the paper's format);
///  - kXorBase: new XOR base values. XOR deltas compose along a chain
///    (v_n = v_root ^ d_1 ^ ... ^ d_n per tensor), and for partially
///    retrained layers most mantissa bits cancel, which the shuffle-LZ
///    codec then exploits.
/// @{
enum class DiffEncoding : uint8_t {
  kAbsolute = 0,
  kXorBase = 1,
};

struct DiffEntry {
  uint32_t model_index;
  uint32_t param_index;  ///< index into the set's ParamLayout
};

/// Encodes the diff. For kXorBase, `base_set` must be non-null and shaped
/// like `set`.
std::vector<uint8_t> EncodeDiffBlob(const ModelSet& set,
                                    const std::vector<DiffEntry>& entries,
                                    DiffEncoding encoding = DiffEncoding::kAbsolute,
                                    const ModelSet* base_set = nullptr);

struct DecodedDiff {
  DiffEncoding encoding = DiffEncoding::kAbsolute;
  std::vector<DiffEntry> entries;
  std::vector<Tensor> tensors;  ///< parallel to entries
};
Result<DecodedDiff> DecodeDiffBlob(const ArchitectureSpec& spec,
                                   std::span<const uint8_t> blob);

/// Elementwise XOR of two equal-shape float tensors (bit-level; its own
/// inverse).
Tensor XorTensors(const Tensor& a, const Tensor& b);
/// @}

/// Compares two hash tables and lists every (model, param) whose hash
/// changed. Tables must have identical dimensions.
Result<std::vector<DiffEntry>> DiffHashTables(const HashTable& base,
                                              const HashTable& current);

}  // namespace mmm

#endif  // MMM_CORE_BLOB_FORMATS_H_
