// Fixture: silently dropping a Status-returning call must be flagged, in
// both the bare-statement and the (void)-cast spelling.
struct Batch {
  int Commit();
};

struct Env {
  int DeleteFile(const char* path);
};

void Drop(Batch* batch, Env* env) {
  batch->Commit();
  (void)env->DeleteFile("x");
}
