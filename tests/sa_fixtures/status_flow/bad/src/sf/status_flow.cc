// Three seeded Status-handling bugs the flow-sensitive analysis must catch:
// a Status dropped on an early-return path, a Status overwritten before it
// was checked, and a Status that silently falls out of scope.

Status Load();
Status Persist();

Status DropOnEarlyReturn(bool flaky) {
  Status st = Load();
  if (flaky) {
    return Persist();
  }
  return st;
}

Status OverwriteUnchecked() {
  Status st = Load();
  st = Persist();
  return st;
}

void DropAtScopeExit() {
  Status st = Persist();
  int done = 1;
  (void)done;
}
