#include "core/provenance.h"

#include <algorithm>

#include "cas/blob_io.h"
#include "core/set_codec.h"

namespace mmm {
namespace {

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kNone:
      return "none";
    case UpdateKind::kPartial:
      return "partial";
    case UpdateKind::kFull:
      return "full";
  }
  return "?";
}

Result<UpdateKind> UpdateKindFromName(const std::string& name) {
  if (name == "none") return UpdateKind::kNone;
  if (name == "partial") return UpdateKind::kPartial;
  if (name == "full") return UpdateKind::kFull;
  return Status::Corruption("unknown update kind '", name, "'");
}

}  // namespace

ProvenanceApproach::ProvenanceApproach(StoreContext context,
                                       DatasetResolver* resolver,
                                       EnvironmentInfo environment,
                                       ProvenanceRecoverOptions recover_options)
    : context_(context),
      replay_(resolver),
      environment_(std::move(environment)),
      recover_options_(recover_options) {}

Result<SaveResult> ProvenanceApproach::SaveInitial(const ModelSet& set) {
  MMM_RETURN_NOT_OK(context_.Validate());
  MMM_RETURN_NOT_OK(CheckSetConsistent(set));
  StatsCapture capture(context_);
  SaveResult result;
  result.set_id = context_.ids->Next("set");

  // "For the initial model set, we save complete model representations
  // using Baseline's logic." (§3.4)
  StoreBatch batch = MakeBatch(context_);
  batch.AnnotateCommit(result.set_id, Name());
  SetDocument doc;
  doc.id = result.set_id;
  doc.approach = Name();
  MMM_RETURN_NOT_OK(StageFullSnapshot(context_, &batch, result.set_id, set, &doc));
  StageSetDocument(&batch, doc);
  MMM_RETURN_NOT_OK(batch.Commit());

  capture.FillSave(&result);
  return result;
}

Result<SaveResult> ProvenanceApproach::SaveDerived(
    const ModelSet& set, const ModelSetUpdateInfo& update) {
  MMM_RETURN_NOT_OK(context_.Validate());
  MMM_RETURN_NOT_OK(CheckSetConsistent(set));
  if (update.base_set_id.empty()) {
    return Status::InvalidArgument("provenance approach needs a base_set_id");
  }
  if (update.kinds.size() != set.models.size()) {
    return Status::InvalidArgument("provenance approach needs per-model update "
                                   "kinds (got ",
                                   update.kinds.size(), " for ",
                                   set.models.size(), " models)");
  }
  if (update.pipeline.pipeline_code.empty()) {
    return Status::InvalidArgument("provenance approach needs the pipeline spec");
  }
  MMM_RETURN_NOT_OK(update.pipeline.Validate());
  MMM_ASSIGN_OR_RETURN(SetDocument base_doc,
                       FetchSetDocument(context_, update.base_set_id));
  if (base_doc.approach != Name()) {
    return Status::InvalidArgument("base set ", update.base_set_id,
                                   " was saved by '", base_doc.approach,
                                   "', not provenance");
  }
  if (base_doc.num_models != set.models.size()) {
    return Status::InvalidArgument("set has ", set.models.size(),
                                   " models but base has ", base_doc.num_models);
  }

  StatsCapture capture(context_);
  SaveResult result;
  result.set_id = context_.ids->Next("set");

  // Environment, pipeline, and partial-layer list once per set; one dataset
  // reference per *updated* model (§3.4).
  JsonValue record = JsonValue::Object();
  record.Set("environment", environment_.ToJson());
  record.Set("pipeline", update.pipeline.ToJson());
  JsonValue partial_layers = JsonValue::Array();
  for (const std::string& layer : update.partial_layers) {
    partial_layers.Append(layer);
  }
  record.Set("partial_layers", std::move(partial_layers));
  JsonValue updates = JsonValue::Array();
  for (size_t index = 0; index < update.kinds.size(); ++index) {
    if (update.kinds[index] == UpdateKind::kNone) continue;
    if (index >= update.data_refs.size() || update.data_refs[index].uri.empty()) {
      return Status::InvalidArgument("updated model ", index,
                                     " is missing its dataset reference");
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("index", static_cast<int64_t>(index));
    entry.Set("kind", UpdateKindName(update.kinds[index]));
    entry.Set("data_ref", update.data_refs[index].ToJson());
    updates.Append(std::move(entry));
  }
  record.Set("updates", std::move(updates));

  SetDocument doc;
  doc.id = result.set_id;
  doc.approach = Name();
  doc.kind = "prov";
  doc.base_set_id = update.base_set_id;
  doc.family = base_doc.family;
  doc.num_models = set.models.size();
  doc.chain_depth = base_doc.chain_depth + 1;
  doc.prov_blob = result.set_id + ".prov.json";
  StoreBatch batch = MakeBatch(context_);
  batch.AnnotateCommit(result.set_id, Name());
  batch.PutBlobString(doc.prov_blob, record.Dump());
  StageSetDocument(&batch, doc);
  MMM_RETURN_NOT_OK(batch.Commit());

  capture.FillSave(&result);
  result.chain_depth = doc.chain_depth;
  return result;
}

Result<ModelSet> ProvenanceApproach::Recover(const std::string& set_id,
                                             RecoverStats* stats) {
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);
  uint64_t depth_budget = context_.doc_store->Count(kSetCollection) + 1;
  MMM_ASSIGN_OR_RETURN(ModelSet set,
                       RecoverInternal(set_id, stats, depth_budget));
  capture.FillRecover(stats);
  return set;
}

Result<std::vector<StateDict>> ProvenanceApproach::RecoverModels(
    const std::string& set_id, const std::vector<size_t>& indices,
    RecoverStats* stats) {
  MMM_RETURN_NOT_OK(context_.Validate());
  StatsCapture capture(context_);
  std::vector<size_t> unique = indices;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  uint64_t depth_budget = context_.doc_store->Count(kSetCollection) + 1;
  MMM_ASSIGN_OR_RETURN(
      auto by_index,
      RecoverModelsInternal(set_id, unique, nullptr, stats, depth_budget));
  std::vector<StateDict> out;
  out.reserve(indices.size());
  for (size_t index : indices) out.push_back(by_index.at(index));
  capture.FillRecover(stats);
  return out;
}

Result<std::map<size_t, StateDict>> ProvenanceApproach::RecoverModelsInternal(
    const std::string& set_id, const std::vector<size_t>& unique_indices,
    const ArchitectureSpec* spec_hint, RecoverStats* stats,
    uint64_t depth_budget) {
  if (depth_budget == 0) {
    return Status::Corruption("provenance recovery chain too deep (cycle?) at ",
                              set_id);
  }
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not provenance");
  }
  if (stats != nullptr) stats->sets_recovered += 1;

  if (doc.kind == "full") {
    MMM_RETURN_NOT_OK(CheckIndices(unique_indices, doc.num_models));
    MMM_ASSIGN_OR_RETURN(std::vector<StateDict> states,
                         ReadModelsFromSnapshot(context_, doc, unique_indices));
    std::map<size_t, StateDict> out;
    for (size_t i = 0; i < unique_indices.size(); ++i) {
      out[unique_indices[i]] = std::move(states[i]);
    }
    return out;
  }
  if (doc.kind != "prov") {
    return Status::Corruption("set ", set_id, " has unexpected kind '", doc.kind,
                              "'");
  }
  MMM_RETURN_NOT_OK(CheckIndices(unique_indices, doc.num_models));

  // Resolve the architecture once at the top of the recursion.
  ArchitectureSpec resolved_spec;
  if (spec_hint == nullptr) {
    SetDocument cursor = doc;
    uint64_t budget = depth_budget;
    while (cursor.arch_blob.empty() && !cursor.base_set_id.empty()) {
      if (budget-- == 0) {
        return Status::Corruption("provenance chain too deep resolving spec");
      }
      MMM_ASSIGN_OR_RETURN(cursor, FetchSetDocument(context_, cursor.base_set_id));
    }
    MMM_ASSIGN_OR_RETURN(resolved_spec, ReadSnapshotSpec(context_, cursor));
    spec_hint = &resolved_spec;
  }

  MMM_ASSIGN_OR_RETURN(
      auto models, RecoverModelsInternal(doc.base_set_id, unique_indices,
                                         spec_hint, stats, depth_budget - 1));

  MMM_ASSIGN_OR_RETURN(std::string record_text,
                       CasReadBlobString(context_.file_store, doc.prov_blob));
  MMM_ASSIGN_OR_RETURN(JsonValue record, JsonValue::Parse(record_text));
  MMM_ASSIGN_OR_RETURN(const JsonValue* pipeline_json, record.Get("pipeline"));
  MMM_ASSIGN_OR_RETURN(TrainPipelineSpec pipeline,
                       TrainPipelineSpec::FromJson(*pipeline_json));
  MMM_ASSIGN_OR_RETURN(const JsonValue* partial_json,
                       record.Get("partial_layers"));
  std::vector<std::string> partial_layers;
  for (const JsonValue& layer : partial_json->array_items()) {
    MMM_ASSIGN_OR_RETURN(std::string name, layer.AsString());
    partial_layers.push_back(std::move(name));
  }
  MMM_ASSIGN_OR_RETURN(const JsonValue* updates, record.Get("updates"));

  for (const JsonValue& entry : updates->array_items()) {
    MMM_ASSIGN_OR_RETURN(int64_t index_value, entry.GetInt64("index"));
    auto index = static_cast<size_t>(index_value);
    auto it = models.find(index);
    if (it == models.end()) continue;  // not a requested model
    MMM_ASSIGN_OR_RETURN(std::string kind_name, entry.GetString("kind"));
    MMM_ASSIGN_OR_RETURN(UpdateKind kind, UpdateKindFromName(kind_name));
    MMM_ASSIGN_OR_RETURN(const JsonValue* ref_json, entry.Get("data_ref"));
    MMM_ASSIGN_OR_RETURN(DatasetRef data_ref, DatasetRef::FromJson(*ref_json));

    MMM_ASSIGN_OR_RETURN(Model model, Model::Create(*spec_hint));
    MMM_RETURN_NOT_OK(model.LoadStateDict(it->second));
    TrainPipelineSpec model_pipeline = pipeline;
    model_pipeline.train_config.trainable_layers =
        kind == UpdateKind::kPartial ? partial_layers
                                     : std::vector<std::string>{};
    // Selective recovery is always exact: no replay caps.
    MMM_RETURN_NOT_OK(
        replay_.ReplayUpdate(&model, model_pipeline, data_ref, /*max_samples=*/0));
    it->second = model.GetStateDict();
    if (stats != nullptr) stats->models_retrained += 1;
  }
  return models;
}

Result<ModelSet> ProvenanceApproach::RecoverInternal(const std::string& set_id,
                                                     RecoverStats* stats,
                                                     uint64_t depth_budget) {
  if (depth_budget == 0) {
    return Status::Corruption("provenance recovery chain too deep (cycle?) at ",
                              set_id);
  }
  MMM_ASSIGN_OR_RETURN(SetDocument doc, FetchSetDocument(context_, set_id));
  if (doc.approach != Name()) {
    return Status::InvalidArgument("set ", set_id, " was saved by '",
                                   doc.approach, "', not provenance");
  }
  if (stats != nullptr) stats->sets_recovered += 1;

  if (doc.kind == "full") {
    return ReadFullSnapshot(context_, doc);
  }
  if (doc.kind != "prov") {
    return Status::Corruption("set ", set_id, " has unexpected kind '", doc.kind,
                              "'");
  }

  // Recursive recovery: materialize the base set, then re-train every
  // updated model on its referenced data (§3.4).
  MMM_ASSIGN_OR_RETURN(
      ModelSet set, RecoverInternal(doc.base_set_id, stats, depth_budget - 1));
  MMM_ASSIGN_OR_RETURN(std::string record_text,
                       CasReadBlobString(context_.file_store, doc.prov_blob));
  MMM_ASSIGN_OR_RETURN(JsonValue record, JsonValue::Parse(record_text));
  MMM_ASSIGN_OR_RETURN(const JsonValue* pipeline_json, record.Get("pipeline"));
  MMM_ASSIGN_OR_RETURN(TrainPipelineSpec pipeline,
                       TrainPipelineSpec::FromJson(*pipeline_json));
  MMM_ASSIGN_OR_RETURN(const JsonValue* partial_json,
                       record.Get("partial_layers"));
  std::vector<std::string> partial_layers;
  for (const JsonValue& layer : partial_json->array_items()) {
    MMM_ASSIGN_OR_RETURN(std::string name, layer.AsString());
    partial_layers.push_back(std::move(name));
  }
  MMM_ASSIGN_OR_RETURN(const JsonValue* updates, record.Get("updates"));

  size_t replayed = 0;
  for (const JsonValue& entry : updates->array_items()) {
    if (recover_options_.max_replay_models > 0 &&
        replayed >= recover_options_.max_replay_models) {
      break;  // measurement protocol: remaining models keep base parameters
    }
    MMM_ASSIGN_OR_RETURN(int64_t index_value, entry.GetInt64("index"));
    auto index = static_cast<size_t>(index_value);
    if (index >= set.models.size()) {
      return Status::Corruption("provenance update references model ", index);
    }
    MMM_ASSIGN_OR_RETURN(std::string kind_name, entry.GetString("kind"));
    MMM_ASSIGN_OR_RETURN(UpdateKind kind, UpdateKindFromName(kind_name));
    MMM_ASSIGN_OR_RETURN(const JsonValue* ref_json, entry.Get("data_ref"));
    MMM_ASSIGN_OR_RETURN(DatasetRef data_ref, DatasetRef::FromJson(*ref_json));

    MMM_ASSIGN_OR_RETURN(Model model, Model::Create(set.spec));
    MMM_RETURN_NOT_OK(model.LoadStateDict(set.models[index]));
    TrainPipelineSpec model_pipeline = pipeline;
    model_pipeline.train_config.trainable_layers =
        kind == UpdateKind::kPartial ? partial_layers
                                     : std::vector<std::string>{};
    MMM_RETURN_NOT_OK(replay_.ReplayUpdate(&model, model_pipeline, data_ref,
                                           recover_options_.max_replay_samples));
    set.models[index] = model.GetStateDict();
    if (stats != nullptr) stats->models_retrained += 1;
    ++replayed;
  }
  return set;
}

}  // namespace mmm
