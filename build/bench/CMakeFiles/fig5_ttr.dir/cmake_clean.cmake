file(REMOVE_RECURSE
  "CMakeFiles/fig5_ttr.dir/fig5_ttr.cpp.o"
  "CMakeFiles/fig5_ttr.dir/fig5_ttr.cpp.o.d"
  "fig5_ttr"
  "fig5_ttr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ttr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
