#ifndef MMM_STORAGE_STORE_BATCH_H_
#define MMM_STORAGE_STORE_BATCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serialize/json.h"
#include "storage/cas_iface.h"
#include "storage/document_store.h"
#include "storage/executor.h"
#include "storage/file_store.h"
#include "storage/journal.h"

namespace mmm {

/// \brief Knobs of the batched write pipeline.
struct StorePipelineOptions {
  /// Number of parallel write lanes. 1 (the default) reproduces the paper's
  /// serialized cost model bit-exactly: ops execute inline in staging order
  /// and the modeled latency is the serial sum of per-op costs.
  size_t lanes = 1;
  /// Modeled cost of handing one file-store op to a parallel lane
  /// (scheduling plus connection hand-off). Only charged when the batch
  /// actually overlaps (lanes > 1) — a serial pipeline dispatches nothing.
  uint64_t dispatch_nanos_per_op = 0;
};

/// Produces a blob payload on a worker lane. This is where CPU-heavy save
/// work (state-dict encoding, diff encoding, compression) runs when the
/// pipeline has more than one lane.
using BlobProducer = std::function<Result<std::vector<uint8_t>>()>;

/// \brief An op-batch over the file and document stores.
///
/// Callers stage blob writes, document inserts, and deferred
/// encode/compress work items, then Commit() once. Commit executes
/// independent file-store writes (and their producers) in parallel across
/// the executor's lanes; document inserts always run serially on the
/// committing thread, in staging order, modeling the single metadata-store
/// connection.
///
/// Latency accounting models overlapped I/O lanes: file op `i` (staging
/// order) is assigned to lane `i % lanes`, each lane's cost is the sum of
/// its ops' modeled costs, and the batch charges
/// `max(lane costs) + dispatch_nanos_per_op * file_ops` to the simulated
/// clock. With one lane the max over a single lane is the serial sum and no
/// dispatch cost applies, so lane=1 is bit-identical to issuing every op
/// directly against the stores. Store statistics (`write_ops`,
/// `bytes_written`) are collected per op and merged once per commit, so
/// counters stay exact for any lane count.
///
/// Error handling: Commit returns the first failing op in *staging* order
/// among the ops that ran, and skips the document phase if any file op
/// failed. Blob writes that already completed are not rolled back in
/// process (matching the pre-pipeline behavior of a failed multi-write
/// save); with a journal attached, the next open's journal replay rolls
/// them back — or rolls the commit forward — so the stores converge to
/// all-or-nothing (see storage/journal.h). Committing clears the batch
/// either way.
///
/// With a journal, Commit additionally brackets the batch in a commit
/// protocol: all deferred producers run first (so a failed encode touches
/// nothing), then a `begin` intent record, then the blob writes, a `commit`
/// mark, the document inserts, and a `finish` mark. Blob writes are
/// numbered in staging order through a WriteOrderGroup, so fault-injection
/// sweeps hit identical crash points at any lane count.
///
/// Deferred producers may capture references to caller state (e.g. the
/// ModelSet being saved); that state must stay alive and unmodified until
/// Commit returns. A batch is single-owner: stage and commit from one
/// thread.
class StoreBatch {
 public:
  /// \param executor worker pool; nullptr means serial (one lane).
  /// \param journal commit journal; nullptr commits without crash atomicity.
  /// \param cas content-addressed store; nullptr stores payloads verbatim.
  ///   When set, Commit first runs every deferred producer inline and hands
  ///   each blob write to a CAS session, which may rewrite it into chunk
  ///   writes plus a manifest (see storage/cas_iface.h). Chunk ops are
  ///   staged immediately before their manifest, in staging order, so
  ///   fault-injection crash points stay lane-invariant.
  StoreBatch(FileStore* file_store, DocumentStore* doc_store,
             Executor* executor = nullptr, StorePipelineOptions options = {},
             CommitJournal* journal = nullptr, CasWriter* cas = nullptr);

  /// Stages a blob write of ready bytes.
  void PutBlob(std::string name, std::vector<uint8_t> data);
  /// Stages a blob write of a string payload.
  void PutBlobString(std::string name, std::string_view data);
  /// Stages a blob write whose payload is produced on a worker lane at
  /// commit time.
  void PutBlobDeferred(std::string name, BlobProducer producer);
  /// Stages a document insert. The document is captured by value at staging
  /// time; inserts execute in staging order.
  void InsertDocument(std::string collection, JsonValue doc);
  /// Stages a document replace: the existing document with the same `_id`
  /// (if any) is removed and the new body inserted, atomically with the rest
  /// of the commit when a journal is attached (rollback keeps the old
  /// document; roll-forward upserts the new one). Used by the chain
  /// compactor to rewrite set metadata in place.
  void ReplaceDocument(std::string collection, JsonValue doc);
  /// Stages a blob retirement: the named blob is deleted only after the
  /// commit is durable (post-commit-mark, and re-issued by journal replay if
  /// interrupted), never on rollback. Used to hand superseded delta blobs to
  /// GC atomically with the metadata rewrite that orphans them.
  void DeleteBlob(std::string name);

  /// Labels the journal entry of this commit with the set being saved and
  /// the approach saving it (for repair reports and fsck). Optional; only
  /// meaningful when a journal is attached.
  void AnnotateCommit(std::string set_id, std::string approach);

  size_t staged_ops() const { return ops_.size(); }

  /// Executes every staged op as described above and clears the batch.
  /// Dropping the returned Status would silently lose a failed save, so the
  /// call site must consume it ([[nodiscard]] on Status enforces this).
  [[nodiscard]] Status Commit();

 private:
  enum class OpKind { kBlobWrite, kDocInsert, kDocReplace, kBlobDelete };

  struct StagedOp {
    OpKind kind;
    std::string name;  ///< blob name (kBlobWrite/kBlobDelete) or collection
    std::vector<uint8_t> data;
    BlobProducer producer;  ///< non-null: produces `data` at commit time
    JsonValue doc;
    /// Chunk blob staged by the CAS transform. Journaled as a `cas` intent:
    /// rollback must not delete it, since a chunk may be shared with
    /// already-committed manifests (see storage/journal.h).
    bool cas_chunk = false;
  };

  /// Runs producers, hands every blob write to a CAS session (which may
  /// rewrite it into a manifest), and splices the session's chunk writes
  /// into ops_. Fills `*session` for post-commit Applied()/Aborted().
  Status ApplyCasTransform(std::unique_ptr<CasWriteSession>* session);

  /// Executes one staged kDocInsert/kDocReplace against the document store.
  Status ApplyDocOp(const StagedOp& op);

  Status CommitSerial();
  Status CommitParallel();
  Status CommitJournaled(size_t lanes);
  /// Writes every staged blob (producers must have run already): in staging
  /// order via Put for one lane, fanned out via PutDetached under a
  /// WriteOrderGroup for more. Returns the first failure in staging order.
  Status WriteBlobs(const std::vector<size_t>& blob_ops, size_t lanes);

  FileStore* file_store_;
  DocumentStore* doc_store_;
  Executor* executor_;
  StorePipelineOptions options_;
  CommitJournal* journal_;
  CasWriter* cas_;
  std::string set_id_;
  std::string approach_;
  std::vector<StagedOp> ops_;
};

}  // namespace mmm

#endif  // MMM_STORAGE_STORE_BATCH_H_
