#include "common/logging.h"

#include <atomic>

#include "common/thread_annotations.h"

namespace mmm {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

/// Serializes the final stderr write so lines from concurrent workers (the
/// executor lanes, the serving pool) never interleave mid-line. Each Logger
/// formats into its own private stream; only the emission contends.
Mutex& SinkMutex() {
  static Mutex mu MMM_LOCK_RANK(160);
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel Logger::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void Logger::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

Logger::Logger(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

Logger::~Logger() {
  if (static_cast<int>(level_) >= g_threshold.load(std::memory_order_relaxed)) {
    stream_ << "\n";
    MutexLock lock(SinkMutex());
    std::cerr << stream_.str();
  }
}

}  // namespace mmm
