// Golden tests for tools/mmmsa: every analysis against its bad / clean /
// suppressed fixture trees under tests/sa_fixtures/, plus the self-check
// that the real tree is finding-free modulo the checked-in baseline. The
// fixtures mirror the src/ layout below an extra prefix (EffectivePath
// strips it) so path-gated analyses behave exactly as in the real tree.

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/mmmsa/sa.h"

namespace mmmsa {
namespace {

std::string FixtureDir(const std::string& analysis,
                       const std::string& variant) {
  return std::string(MMM_SA_FIXTURES) + "/" + analysis + "/" + variant;
}

std::vector<Finding> Analyze(const std::string& analysis,
                             const std::string& variant,
                             const std::string& only = "") {
  SaOptions options;
  if (!only.empty()) options.only_analyses.insert(only);
  std::vector<std::string> io_errors;
  std::vector<Finding> findings =
      AnalyzePaths({FixtureDir(analysis, variant)}, options, &io_errors);
  EXPECT_TRUE(io_errors.empty());
  return findings;
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& symbol_fragment) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule &&
           f.symbol.find(symbol_fragment) != std::string::npos;
  });
}

TEST(MmmsaCatalog, AnalysisNamesAreStable) {
  EXPECT_EQ(AnalysisNames(),
            (std::vector<std::string>{"lock-order", "status-flow",
                                      "journal-path", "layer-dag"}));
}

// ---------------------------------------------------------------------------
// lock-order: seeded cycle.

TEST(MmmsaLockOrder, SeededCycleFires) {
  std::vector<Finding> findings = Analyze("lock_cycle", "bad", "lock-order");
  EXPECT_TRUE(HasFinding(findings, "lock-cycle", "Tangle::a_"))
      << FormatText(findings);
  EXPECT_TRUE(HasFinding(findings, "lock-cycle", "Tangle::b_"))
      << FormatText(findings);
  // The against-rank direction of the cycle is also a rank inversion.
  EXPECT_TRUE(HasFinding(findings, "rank-inversion", "Tangle::b_->Tangle::a_"))
      << FormatText(findings);
}

TEST(MmmsaLockOrder, CycleCleanVariantIsSilent) {
  EXPECT_TRUE(Analyze("lock_cycle", "clean").empty());
}

TEST(MmmsaLockOrder, CycleSuppressedVariantIsSilent) {
  EXPECT_TRUE(Analyze("lock_cycle", "suppressed").empty());
}

// ---------------------------------------------------------------------------
// lock-order: seeded rank inversion (no cycle).

TEST(MmmsaLockOrder, SeededRankInversionFires) {
  std::vector<Finding> findings =
      Analyze("rank_inversion", "bad", "lock-order");
  EXPECT_TRUE(
      HasFinding(findings, "rank-inversion", "Inverted::high_->Inverted::low_"))
      << FormatText(findings);
  EXPECT_FALSE(HasFinding(findings, "lock-cycle", "Inverted"))
      << FormatText(findings);
}

TEST(MmmsaLockOrder, RankInversionCleanVariantIsSilent) {
  EXPECT_TRUE(Analyze("rank_inversion", "clean").empty());
}

TEST(MmmsaLockOrder, RankInversionSuppressedVariantIsSilent) {
  EXPECT_TRUE(Analyze("rank_inversion", "suppressed").empty());
}

// ---------------------------------------------------------------------------
// status-flow: drop on early return, overwrite, drop at scope exit.

TEST(MmmsaStatusFlow, SeededBugsFire) {
  std::vector<Finding> findings = Analyze("status_flow", "bad", "status-flow");
  EXPECT_TRUE(HasFinding(findings, "status-drop", "DropOnEarlyReturn::st"))
      << FormatText(findings);
  EXPECT_TRUE(
      HasFinding(findings, "status-overwrite", "OverwriteUnchecked::st"))
      << FormatText(findings);
  EXPECT_TRUE(HasFinding(findings, "status-drop", "DropAtScopeExit::st"))
      << FormatText(findings);
  EXPECT_EQ(findings.size(), 3u) << FormatText(findings);
}

TEST(MmmsaStatusFlow, CleanVariantIsSilent) {
  std::vector<Finding> findings = Analyze("status_flow", "clean");
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

TEST(MmmsaStatusFlow, SuppressedVariantIsSilent) {
  std::vector<Finding> findings = Analyze("status_flow", "suppressed");
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

// ---------------------------------------------------------------------------
// journal-path: un-journaled delete reachable through a helper.

TEST(MmmsaJournalPath, SeededRawDeleteFires) {
  std::vector<Finding> findings =
      Analyze("journal_path", "bad", "journal-path");
  // The finding lands on the outermost entry point, not the helper.
  EXPECT_TRUE(HasFinding(findings, "unjournaled-delete", "SweepEverything"))
      << FormatText(findings);
  EXPECT_FALSE(HasFinding(findings, "unjournaled-delete", "EvictBlobRaw"))
      << FormatText(findings);
}

TEST(MmmsaJournalPath, JournaledVariantIsSilent) {
  std::vector<Finding> findings = Analyze("journal_path", "clean");
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

TEST(MmmsaJournalPath, SuppressedVariantIsSilent) {
  std::vector<Finding> findings = Analyze("journal_path", "suppressed");
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

// ---------------------------------------------------------------------------
// layer-dag: upward include.

TEST(MmmsaLayerDag, UpwardIncludeFires) {
  std::vector<Finding> findings = Analyze("layer_dag", "bad", "layer-dag");
  EXPECT_TRUE(HasFinding(findings, "layer-violation", "storage->serve"))
      << FormatText(findings);
  EXPECT_EQ(findings.size(), 1u) << FormatText(findings);
}

TEST(MmmsaLayerDag, DownwardIncludesAreSilent) {
  EXPECT_TRUE(Analyze("layer_dag", "clean").empty());
}

TEST(MmmsaLayerDag, SuppressedVariantIsSilent) {
  EXPECT_TRUE(Analyze("layer_dag", "suppressed").empty());
}

// ---------------------------------------------------------------------------
// Formatters and the baseline ratchet.

TEST(MmmsaFormat, TextAndSarifCarryTheFinding) {
  std::vector<Finding> findings = Analyze("layer_dag", "bad");
  ASSERT_FALSE(findings.empty());
  std::string text = FormatText(findings);
  EXPECT_NE(text.find("layer-violation"), std::string::npos) << text;
  EXPECT_NE(text.find("src/storage/up_include.h"), std::string::npos) << text;
  std::string sarif = FormatSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"layer-violation\""), std::string::npos);
  EXPECT_NE(sarif.find("src/storage/up_include.h"), std::string::npos);
}

TEST(MmmsaFormat, EmptySarifIsWellFormedEnough) {
  std::string sarif = FormatSarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos) << sarif;
}

TEST(MmmsaBaseline, RoundTripFiltersBaselinedFindings) {
  std::vector<Finding> findings = Analyze("lock_cycle", "bad");
  ASSERT_FALSE(findings.empty());
  std::string serialized = FormatBaseline(findings);
  std::string path = ::testing::TempDir() + "/mmmsa_baseline_roundtrip.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fwrite(serialized.data(), 1, serialized.size(), f);
    fclose(f);
  }
  std::string error;
  ASSERT_TRUE(ApplyBaseline(path, &findings, &error)) << error;
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

TEST(MmmsaBaseline, MissingBaselineFileIsAnError) {
  std::vector<Finding> findings;
  std::string error;
  EXPECT_FALSE(
      ApplyBaseline("/nonexistent/mmmsa_baseline.txt", &findings, &error));
  EXPECT_FALSE(error.empty());
}

TEST(MmmsaEffectivePath, StripsFixturePrefixes) {
  EXPECT_EQ(EffectivePath("tests/sa_fixtures/lock_cycle/bad/src/lc/locks.h"),
            "src/lc/locks.h");
  EXPECT_EQ(EffectivePath("/root/repo/src/cas/cas_store.cc"),
            "src/cas/cas_store.cc");
  EXPECT_EQ(EffectivePath("tools/mmmsa/analysis.cc"), "tools/mmmsa/analysis.cc");
  EXPECT_EQ(EffectivePath("no/marker/here.cc"), "no/marker/here.cc");
}

// ---------------------------------------------------------------------------
// Self-check: the real tree is finding-free modulo the checked-in baseline.
// This is the same gate the CI job applies; a regression here means new code
// broke a whole-program invariant (or the analyzer grew a false positive —
// both block the merge on purpose).

TEST(MmmsaSelfCheck, RealTreeIsCleanModuloBaseline) {
  std::vector<std::string> io_errors;
  std::vector<Finding> findings =
      AnalyzePaths({std::string(MMM_SOURCE_ROOT) + "/src",
                    std::string(MMM_SOURCE_ROOT) + "/tools"},
                   SaOptions{}, &io_errors);
  EXPECT_TRUE(io_errors.empty());
  std::string error;
  ASSERT_TRUE(ApplyBaseline(
      std::string(MMM_SOURCE_ROOT) + "/tools/mmmsa/baseline.txt", &findings,
      &error))
      << error;
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

}  // namespace
}  // namespace mmmsa
