// The bad variant with MMMSA suppressions on every acquisition site: all
// lock-order findings must vanish.
#ifndef SA_FIXTURE_LOCK_CYCLE_SUPPRESSED_H_
#define SA_FIXTURE_LOCK_CYCLE_SUPPRESSED_H_

class Tangle {
 public:
  void f() {
    MutexLock first(a_);
    // MMMSA(lock-order): seeded fixture, inversion is the point
    MutexLock second(b_);
    ++work_;
  }

  void g() {
    MutexLock first(b_);
    // MMMSA(lock-order): seeded fixture, inversion is the point
    MutexLock second(a_);
    ++work_;
  }

 private:
  Mutex a_ MMM_LOCK_RANK(10);
  Mutex b_ MMM_LOCK_RANK(20);
  int work_ = 0;
};

#endif  // SA_FIXTURE_LOCK_CYCLE_SUPPRESSED_H_
