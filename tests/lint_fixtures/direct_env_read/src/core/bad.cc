// Fixture: approach code (anything under src/core/) calling Env read
// entry points directly bypasses FileStore accounting and must be flagged.
//
// Fixtures are linted, never compiled, so Env stays a forward declaration:
// declaring the methods here would itself match the (token-level) rule.
struct Env;

int Recover(Env* env) {
  int s = env->ReadFile("blob");
  if (s != 0) return s;
  s = env->ReadFileRange("blob", 0, 64);
  return s;
}
