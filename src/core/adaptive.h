#ifndef MMM_CORE_ADAPTIVE_H_
#define MMM_CORE_ADAPTIVE_H_

#include <string>

#include "core/manager.h"
#include "core/recommend.h"

namespace mmm {

/// \brief Options of the dynamic approach-selection policy.
struct AdaptivePolicyOptions {
  /// Priors and metric weights. The weights express the deployment's
  /// priorities and stay fixed; the rate fields are updated from
  /// observations.
  WorkloadProfile profile;
  /// EWMA factor applied to observed update/recovery rates (0 = frozen,
  /// 1 = latest observation only).
  double smoothing = 0.3;
};

/// \brief Dynamically chooses the management approach per save — the future
/// work announced in the paper's discussion (§4.5: "we plan to develop
/// heuristic-based approaches that dynamically choose the most suitable
/// strategy for a given scenario").
///
/// Wraps a ModelSetManager. Every SaveDerived observes the realized update
/// rate (from the per-model update kinds) and the recovery frequency (from
/// Recover calls between saves), folds them into the workload profile, and
/// re-runs the §4.5 cost heuristic. When the chosen approach differs from
/// the one that saved the previous version, the new chain starts with a
/// full snapshot of that approach, so every saved set stays recoverable.
class AdaptiveModelSetManager {
 public:
  AdaptiveModelSetManager(ModelSetManager* manager,
                          AdaptivePolicyOptions options);

  /// Saves the initial set with the currently recommended approach.
  Result<SaveResult> SaveInitial(const ModelSet& set);

  /// Observes `update`, re-selects the approach, and saves.
  Result<SaveResult> SaveDerived(const ModelSet& set,
                                 const ModelSetUpdateInfo& update);

  /// Recovers any set saved through this (or the underlying) manager and
  /// counts the recovery for the rate estimate.
  Result<ModelSet> Recover(const std::string& set_id,
                           RecoverStats* stats = nullptr);

  /// Tells the policy the chain compactor ran. If the head's chain was
  /// rewritten, the tracked depth is refreshed from its document (a head
  /// rebase resets it to zero), so the next selection reasons from the
  /// compacted chain, not the pre-compaction one.
  void ObserveCompaction(const CompactionReport& report);

  /// The approach the policy would use for the next save.
  ApproachType current_choice() const { return choice_; }

  /// The live workload estimate.
  const WorkloadProfile& profile() const { return options_.profile; }

  /// Id of the newest saved set.
  const std::string& head() const { return head_; }

 private:
  void ObserveUpdate(const ModelSet& set, const ModelSetUpdateInfo& update);
  void Reselect();

  ModelSetManager* manager_;
  AdaptivePolicyOptions options_;
  ApproachType choice_;
  /// Approach that produced `head_` (chains must stay homogeneous).
  ApproachType head_approach_;
  std::string head_;
  uint64_t saves_ = 0;
  uint64_t recoveries_since_save_ = 0;
  /// Recorded chain depth of `head_` — hops to its nearest full snapshot,
  /// taken from SaveResult::chain_depth at every save (0 after a full
  /// snapshot, which is also what a fresh chain on approach switch starts
  /// with) and refreshed by ObserveCompaction after a head rebase. This is
  /// the real depth the profile's expected_chain_length reports.
  uint64_t chain_depth_ = 0;
};

}  // namespace mmm

#endif  // MMM_CORE_ADAPTIVE_H_
