# Empty compiler generated dependencies file for mmm_workload.
# This may be replaced when dependencies are built.
