#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/adaptive.h"
#include "core/gc.h"
#include "core/streaming.h"
#include "nn/metrics.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

// End-to-end lifecycle: commission a fleet (streamed), run update cycles
// under every approach, retire old versions, compact, reopen, and analyse a
// single cell — the full deployment story of the paper plus this
// repository's extensions, in one test.
TEST(LifecycleTest, FullDeploymentStory) {
  TempDir temp("lifecycle");
  ScenarioConfig config = ScenarioConfig::Battery(24);
  config.samples_per_dataset = 48;
  MultiModelScenario scenario(config);
  ASSERT_OK(scenario.Init());

  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.resolver = &scenario;
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));

  // --- Commissioning: stream the initial fleet into a baseline snapshot.
  ASSERT_OK_AND_ASSIGN(auto writer,
                       StreamingSnapshotWriter::Begin(
                           manager->context(), config.spec, 24));
  for (const StateDict& model : scenario.current_set().models) {
    ASSERT_OK(writer->Append(model));
  }
  ASSERT_OK_AND_ASSIGN(SaveResult commissioned, writer->Finish());

  // --- Deployment: three update cycles archived with the Update approach,
  // seeded from the streamed snapshot's models.
  ASSERT_OK_AND_ASSIGN(ModelSet seeded, manager->Recover(commissioned.set_id));
  ASSERT_OK_AND_ASSIGN(SaveResult u1,
                       manager->SaveInitial(ApproachType::kUpdate, seeded));
  std::vector<std::string> versions{u1.set_id};
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
    update.base_set_id = versions.back();
    ASSERT_OK_AND_ASSIGN(
        SaveResult saved,
        manager->SaveDerived(ApproachType::kUpdate, scenario.current_set(),
                             update));
    versions.push_back(saved.set_id);
  }

  // --- Incident analysis: selectively recover one cell's history.
  size_t cell = 11;
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> now,
                       manager->RecoverModels(versions.back(), {cell}));
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> commissioned_state,
                       manager->RecoverModels(commissioned.set_id, {cell}));
  ASSERT_EQ(now.size(), 1u);
  ASSERT_EQ(commissioned_state.size(), 1u);
  EXPECT_TRUE(commissioned_state[0][0].second.Equals(seeded.models[cell][0].second));
  EXPECT_TRUE(
      now[0][0].second.Equals(scenario.current_set().models[cell][0].second));

  // The current model genuinely beats the commissioned one on fresh data
  // when the cell was updated at least once; both must at least be finite.
  BatteryDataGenerator generator({config.seed, 128, 0.004, 1.0, 25.0});
  TrainingData fresh = generator.GenerateCellDataset(cell, 3, 0.97);
  Model current_model = Model::Create(config.spec).ValueOrDie();
  ASSERT_OK(current_model.LoadStateDict(now[0]));
  ASSERT_OK_AND_ASSIGN(double rmse,
                       Rmse(current_model.Predict(fresh.inputs), fresh.targets));
  EXPECT_LT(rmse, 10.0);

  // --- Retention: keep only the newest chain, drop the streamed snapshot.
  ASSERT_OK_AND_ASSIGN(DeleteReport gc,
                       RetainOnly(manager->context(), {versions.back()}));
  EXPECT_EQ(gc.sets_deleted, 1u);  // the commissioned snapshot
  ASSERT_OK_AND_ASSIGN(uint64_t wal_before,
                       manager->doc_store()->WalBytes());
  ASSERT_OK(manager->CompactStore());
  ASSERT_OK_AND_ASSIGN(uint64_t wal_after, manager->doc_store()->WalBytes());
  EXPECT_LT(wal_after, wal_before);

  // --- The store survives a reopen with full integrity.
  ASSERT_OK_AND_ASSIGN(auto reopened, ModelSetManager::Open(options));
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health, reopened->ValidateStore());
  EXPECT_TRUE(health.ok()) << (health.problems.empty()
                                   ? ""
                                   : health.problems.front());
  ASSERT_OK_AND_ASSIGN(ModelSet final_state,
                       reopened->Recover(versions.back()));
  for (size_t m = 0; m < final_state.models.size(); ++m) {
    for (size_t p = 0; p < final_state.models[m].size(); ++p) {
      ASSERT_TRUE(final_state.models[m][p].second.Equals(
          scenario.current_set().models[m][p].second));
    }
  }
  EXPECT_TRUE(reopened->Recover(commissioned.set_id).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Property test: random interleavings of save / derive / delete / retain /
// compact against a fault-injected store. Saves are randomly crashed
// mid-commit; after every crash the store is reopened (replaying the commit
// journal) and must be fsck-clean with every surviving set bit-exact. GC and
// compaction are not journaled and always run healed.

namespace {

struct TrackedSet {
  std::string id;
  uint64_t cycle;  ///< scenario cycle whose state the set captured
  ModelSet state;
};

class LifecycleProperty {
 public:
  explicit LifecycleProperty(uint64_t seed) : rng_(seed), fault_(&base_) {}

  void Run(size_t steps) {
    ScenarioConfig config = ScenarioConfig::Battery(3);
    config.full_update_fraction = 0.5;
    config.partial_update_fraction = 0.34;
    config.samples_per_dataset = 32;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    ASSERT_OK(scenario_->Init());
    Reopen();
    for (size_t step = 0; step < steps && !::testing::Test::HasFatalFailure();
         ++step) {
      switch (rng_.NextBounded(8)) {
        case 0:
        case 1:
          StepInitialSave();
          break;
        case 2:
        case 3:
        case 4:
          StepDerivedSave();
          break;
        case 5:
          StepDeleteTip();
          break;
        case 6:
          StepRetainOne();
          break;
        case 7:
          ASSERT_OK(manager_->CompactStore());
          break;
      }
    }
    // Final audit: reopen once more and check every tracked set. The run is
    // only meaningful if the fault injection actually crashed some saves.
    Reopen();
    CheckStoreClean("final audit");
    CheckTrackedSetsRecover("final audit");
    EXPECT_GT(crashes_, 0u) << "no save ever crashed; sweep was vacuous";
  }

 private:
  ApproachType RandomApproach() {
    return kAllApproaches[rng_.NextBounded(4)];
  }

  void Reopen() {
    manager_.reset();
    ModelSetManager::Options options;
    options.root_dir = "/store";
    options.env = &fault_;
    options.resolver = scenario_.get();
    ASSERT_OK_AND_ASSIGN(manager_, ModelSetManager::Open(options));
  }

  void CheckStoreClean(const std::string& label) {
    const RepairReport& repair = manager_->repair_report();
    EXPECT_TRUE(repair.clean())
        << label << ": "
        << (repair.problems.empty() ? "" : repair.problems.front());
    ASSERT_OK_AND_ASSIGN(StoreValidationReport health,
                         manager_->ValidateStore());
    EXPECT_TRUE(health.ok())
        << label << ": "
        << (health.problems.empty() ? "" : health.problems.front());
    ASSERT_OK_AND_ASSIGN(OrphanReport orphans,
                         FindOrphanBlobs(manager_->context()));
    EXPECT_TRUE(orphans.clean())
        << label << ": orphan blob "
        << (orphans.clean() ? "" : orphans.orphan_blobs.front());
  }

  void CheckTrackedSetsRecover(const std::string& label) {
    for (const auto& [type, chain] : chains_) {
      for (const TrackedSet& tracked : chain) {
        ASSERT_OK_AND_ASSIGN(ModelSet recovered,
                             manager_->Recover(tracked.id));
        ASSERT_EQ(recovered.models.size(), tracked.state.models.size());
        for (size_t m = 0; m < recovered.models.size(); ++m) {
          for (size_t p = 0; p < recovered.models[m].size(); ++p) {
            ASSERT_TRUE(recovered.models[m][p].second.Equals(
                tracked.state.models[m][p].second))
                << label << ": set " << tracked.id << " model " << m;
          }
        }
      }
    }
  }

  /// Runs `save` with a fault armed about half of the time. A crashed save
  /// triggers reopen + full store audit; a completed save is tracked.
  void SaveStep(ApproachType type,
                const std::function<Result<SaveResult>()>& save) {
    bool inject = rng_.NextBounded(2) == 0;
    if (inject) {
      // The offset may exceed the save's write count, in which case the save
      // legitimately completes — both outcomes are valid.
      fault_.FailWritesAfter(fault_.write_count() + rng_.NextBounded(15));
    }
    Result<SaveResult> saved = save();
    fault_.Heal();
    if (saved.ok()) {
      chains_[type].push_back(
          {saved.ValueOrDie().set_id, scenario_->cycle(),
           scenario_->current_set()});
      return;
    }
    // The save crashed mid-commit: reopen, replay, audit.
    ASSERT_TRUE(inject) << saved.status().ToString();
    ++crashes_;
    Reopen();
    CheckStoreClean("after crashed save");
    CheckTrackedSetsRecover("after crashed save");
  }

  void StepInitialSave() {
    ApproachType type = RandomApproach();
    SaveStep(type, [&] {
      return manager_->SaveInitial(type, scenario_->current_set());
    });
  }

  void StepDerivedSave() {
    ApproachType type = RandomApproach();
    if (chains_[type].empty()) return;
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    const TrackedSet& tip = chains_[type].back();
    // A provenance record replays one cycle's training on top of its base,
    // so it is only correct when the base captured the directly preceding
    // cycle. Diff- and snapshot-style approaches tolerate stale bases.
    if (type == ApproachType::kProvenance &&
        tip.cycle + 1 != scenario_->cycle()) {
      type = ApproachType::kUpdate;
      if (chains_[type].empty()) return;
    }
    update.base_set_id = chains_[type].back().id;
    SaveStep(type, [&] {
      return manager_->SaveDerived(type, scenario_->current_set(), update);
    });
  }

  void StepDeleteTip() {
    ApproachType type = RandomApproach();
    if (chains_[type].empty()) return;
    // Cascade: a crashed-but-committed (hence untracked) save may have been
    // derived from this tip; tracked sets are never anyone's dependents
    // except the tip's own descendants, which a chain does not have.
    DeleteOptions options;
    options.cascade = true;
    ASSERT_OK(DeleteSet(manager_->context(), chains_[type].back().id, options)
                  .status());
    chains_[type].pop_back();
  }

  void StepRetainOne() {
    std::vector<ApproachType> with_chains;
    for (const auto& [type, chain] : chains_) {
      if (!chain.empty()) with_chains.push_back(type);
    }
    if (with_chains.empty()) return;
    ApproachType keep = with_chains[rng_.NextBounded(with_chains.size())];
    TrackedSet tip = chains_[keep].back();
    ASSERT_OK(RetainOnly(manager_->context(), {tip.id}).status());
    // Survivors are the kept tip's lineage closure. MMlib-base saves record
    // no lineage (each is standalone), so only the tip itself survives; the
    // other approaches' chains link via base_set_id and survive whole.
    for (ApproachType type : with_chains) {
      if (type != keep) chains_[type].clear();
    }
    if (keep == ApproachType::kMMlibBase) chains_[keep] = {std::move(tip)};
  }

  Rng rng_;
  InMemoryEnv base_;
  FaultInjectionEnv fault_;
  std::unique_ptr<MultiModelScenario> scenario_;
  std::unique_ptr<ModelSetManager> manager_;
  std::map<ApproachType, std::vector<TrackedSet>> chains_;
  size_t crashes_ = 0;
};

}  // namespace

TEST(LifecyclePropertyTest, RandomInterleavingsStayFsckClean) {
  for (uint64_t seed : {11u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    LifecycleProperty property(seed);
    property.Run(24);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace mmm
