#include "workload/scenario.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mmm {
namespace {

ScenarioConfig SmallBattery(size_t models = 20) {
  ScenarioConfig config = ScenarioConfig::Battery(models);
  config.samples_per_dataset = 48;
  return config;
}

TEST(ScenarioTest, InitBuildsRequestedSet) {
  MultiModelScenario scenario(SmallBattery(25));
  ASSERT_OK(scenario.Init());
  EXPECT_EQ(scenario.current_set().size(), 25u);
  EXPECT_EQ(scenario.current_set().spec.family, "FFNN-48");
  EXPECT_OK(CheckSetConsistent(scenario.current_set()));
}

TEST(ScenarioTest, InitTwiceFails) {
  MultiModelScenario scenario(SmallBattery());
  ASSERT_OK(scenario.Init());
  EXPECT_TRUE(scenario.Init().IsInvalidArgument());
}

TEST(ScenarioTest, AdvanceBeforeInitFails) {
  MultiModelScenario scenario(SmallBattery());
  EXPECT_TRUE(scenario.AdvanceCycle().status().IsInvalidArgument());
}

TEST(ScenarioTest, InitIsDeterministic) {
  MultiModelScenario a(SmallBattery()), b(SmallBattery());
  ASSERT_OK(a.Init());
  ASSERT_OK(b.Init());
  for (size_t m = 0; m < a.current_set().size(); ++m) {
    EXPECT_TRUE(a.current_set().models[m][0].second.Equals(
        b.current_set().models[m][0].second));
  }
}

TEST(ScenarioTest, AdvanceCycleUpdatesConfiguredFractions) {
  MultiModelScenario scenario(SmallBattery(40));
  ASSERT_OK(scenario.Init());
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
  size_t full = 0, partial = 0, none = 0;
  for (UpdateKind kind : update.kinds) {
    full += kind == UpdateKind::kFull;
    partial += kind == UpdateKind::kPartial;
    none += kind == UpdateKind::kNone;
  }
  EXPECT_EQ(full, 2u);     // 5% of 40
  EXPECT_EQ(partial, 2u);  // 5% of 40
  EXPECT_EQ(none, 36u);
  EXPECT_EQ(scenario.cycle(), 1u);
}

TEST(ScenarioTest, UpdatedModelsHaveDataRefsAndOthersDont) {
  MultiModelScenario scenario(SmallBattery(40));
  ASSERT_OK(scenario.Init());
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
  for (size_t i = 0; i < update.kinds.size(); ++i) {
    if (update.kinds[i] == UpdateKind::kNone) {
      EXPECT_TRUE(update.data_refs[i].uri.empty());
    } else {
      EXPECT_FALSE(update.data_refs[i].uri.empty());
      EXPECT_EQ(update.data_refs[i].content_hash.size(), 64u);
    }
  }
}

TEST(ScenarioTest, OnlyUpdatedModelsChange) {
  MultiModelScenario scenario(SmallBattery(40));
  ASSERT_OK(scenario.Init());
  ModelSet before = scenario.current_set();
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
  const ModelSet& after = scenario.current_set();
  for (size_t m = 0; m < before.models.size(); ++m) {
    bool changed = false;
    for (size_t p = 0; p < before.models[m].size(); ++p) {
      if (!before.models[m][p].second.Equals(after.models[m][p].second)) {
        changed = true;
      }
    }
    EXPECT_EQ(changed, update.kinds[m] != UpdateKind::kNone) << "model " << m;
  }
}

TEST(ScenarioTest, PartialUpdatesOnlyTouchPartialLayers) {
  MultiModelScenario scenario(SmallBattery(40));
  ASSERT_OK(scenario.Init());
  ModelSet before = scenario.current_set();
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
  const ModelSet& after = scenario.current_set();
  for (size_t m = 0; m < before.models.size(); ++m) {
    if (update.kinds[m] != UpdateKind::kPartial) continue;
    for (size_t p = 0; p < before.models[m].size(); ++p) {
      const std::string& key = before.models[m][p].first;
      bool in_partial = key.rfind("fc3", 0) == 0 || key.rfind("fc4", 0) == 0;
      bool changed =
          !before.models[m][p].second.Equals(after.models[m][p].second);
      EXPECT_EQ(changed, in_partial) << "model " << m << " " << key;
    }
  }
}

TEST(ScenarioTest, ResolveReturnsHashVerifiedData) {
  MultiModelScenario scenario(SmallBattery(10));
  ASSERT_OK(scenario.Init());
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
  for (size_t i = 0; i < update.kinds.size(); ++i) {
    if (update.kinds[i] == UpdateKind::kNone) continue;
    ASSERT_OK_AND_ASSIGN(TrainingData data,
                         scenario.Resolve(update.data_refs[i]));
    EXPECT_EQ(data.size(), 48u);
    EXPECT_EQ(HashTrainingData(data), update.data_refs[i].content_hash);
  }
}

TEST(ScenarioTest, ResolveRejectsMalformedUris) {
  MultiModelScenario scenario(SmallBattery(5));
  ASSERT_OK(scenario.Init());
  EXPECT_TRUE(scenario.Resolve({"garbage", ""}).status().IsInvalidArgument());
  EXPECT_TRUE(scenario.Resolve({"battery://cell/x/cycle/1", ""})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(scenario.Resolve({"cifar://model/1/cycle/1", ""})
                  .status()
                  .IsInvalidArgument());  // wrong scheme for battery scenario
}

TEST(ScenarioTest, ResolveDetectsTamperedHash) {
  MultiModelScenario scenario(SmallBattery(5));
  ASSERT_OK(scenario.Init());
  DatasetRef ref = scenario.MakeDatasetRef(1, 1);
  ref.content_hash[0] = ref.content_hash[0] == 'a' ? 'b' : 'a';
  EXPECT_TRUE(scenario.Resolve(ref).status().IsCorruption());
}

TEST(ScenarioTest, PipelineIsSharedWithinACycle) {
  MultiModelScenario scenario(SmallBattery(5));
  TrainPipelineSpec p1 = scenario.PipelineForCycle(1);
  TrainPipelineSpec p1_again = scenario.PipelineForCycle(1);
  TrainPipelineSpec p2 = scenario.PipelineForCycle(2);
  EXPECT_EQ(p1, p1_again);
  EXPECT_NE(p1.train_config.shuffle_seed, p2.train_config.shuffle_seed);
  EXPECT_OK(p1.Validate());
}

TEST(ScenarioTest, UpdateRateConfigurable) {
  ScenarioConfig config = SmallBattery(40);
  config.full_update_fraction = 0.15;
  config.partial_update_fraction = 0.15;
  MultiModelScenario scenario(config);
  ASSERT_OK(scenario.Init());
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
  size_t updated = 0;
  for (UpdateKind kind : update.kinds) updated += kind != UpdateKind::kNone;
  EXPECT_EQ(updated, 12u);  // 30% of 40
}

TEST(ScenarioTest, CifarScenarioEndToEnd) {
  ScenarioConfig config = ScenarioConfig::Cifar(6);
  config.full_update_fraction = 0.34;  // 2 models
  config.partial_update_fraction = 0.0;
  config.samples_per_dataset = 8;
  config.batch_size = 4;
  MultiModelScenario scenario(config);
  ASSERT_OK(scenario.Init());
  EXPECT_EQ(scenario.current_set().spec.family, "CIFAR");
  EXPECT_EQ(scenario.current_set().spec.ParameterCount(), 6882u);
  ModelSet before = scenario.current_set();
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
  size_t updated = 0;
  for (size_t m = 0; m < update.kinds.size(); ++m) {
    if (update.kinds[m] == UpdateKind::kNone) continue;
    ++updated;
    EXPECT_NE(update.data_refs[m].uri.find("cifar://"), std::string::npos);
    ASSERT_OK_AND_ASSIGN(TrainingData data, scenario.Resolve(update.data_refs[m]));
    EXPECT_EQ(data.inputs.shape(), (Shape{8, 3, 32, 32}));
  }
  EXPECT_EQ(updated, 2u);
}

}  // namespace
}  // namespace mmm
