# Empty dependencies file for tab_overhead_breakdown.
# This may be replaced when dependencies are built.
