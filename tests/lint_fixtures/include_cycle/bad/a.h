// Fixture: a.h -> b.h -> a.h is an include cycle and must be flagged.
#pragma once
#include "b.h"

struct A {
  int value = 0;
};
