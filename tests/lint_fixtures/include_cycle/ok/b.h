// Fixture: second leg; the suppression lives on whichever edge the scanner
// reports as the back edge, so both carry one.
#pragma once
#include "a.h"  // MMMLINT(include-cycle): fixture demonstrating suppression

struct B {
  int value = 0;
};
