#ifndef MMM_CAS_MANIFEST_H_
#define MMM_CAS_MANIFEST_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace mmm {

/// Chunk blobs live in the same file store as every other artifact, under a
/// reserved name prefix: `cas-<64 hex chars of the chunk's SHA-256>`. Only
/// the CAS sweeper (cas/cas_store.cc) may delete blobs in this namespace —
/// enforced by the mmmlint `chunk-delete` rule.
inline constexpr char kCasChunkPrefix[] = "cas-";

/// First 8 bytes of every manifest payload. Raw artifact blobs all start
/// with their own codec magic (see core/blob_formats.h), so a reader can
/// tell a manifest from a verbatim payload by sniffing bytes it already
/// fetched — mixed stores (some blobs chunked, some not) stay readable.
inline constexpr char kCasManifestMagic[] = "MMCASM1\n";
inline constexpr size_t kCasManifestMagicSize = 8;

/// \brief One chunk reference inside a manifest.
struct CasChunkRef {
  std::string hash_hex;  ///< lowercase SHA-256 of the chunk bytes
  uint64_t length = 0;   ///< chunk size in bytes
};

/// \brief A chunked blob's manifest: what to fetch and how to check it.
struct CasManifest {
  uint64_t raw_size = 0;  ///< size of the reassembled payload
  uint32_t raw_crc = 0;   ///< CRC32 of the reassembled payload
  std::vector<CasChunkRef> chunks;
};

/// File-store blob name of a chunk.
std::string ChunkBlobName(const std::string& hash_hex);

/// True if `name` is in the chunk namespace.
bool IsChunkBlobName(std::string_view name);

/// The hex digest of a chunk blob name (inverse of ChunkBlobName); the name
/// must satisfy IsChunkBlobName.
std::string ChunkHexOfBlobName(std::string_view name);

/// True if `data` begins with the manifest magic.
bool IsManifestPayload(std::span<const uint8_t> data);

/// Serializes a manifest: magic + one-line JSON
/// `{"raw_size":N,"raw_crc":C,"chunks":[["<hex>",len],...]}`.
std::vector<uint8_t> EncodeManifest(const CasManifest& manifest);

/// Parses a manifest payload; fails with Corruption on bad magic/JSON.
Result<CasManifest> DecodeManifest(std::span<const uint8_t> data);

}  // namespace mmm

#endif  // MMM_CAS_MANIFEST_H_
