file(REMOVE_RECURSE
  "libmmm_common.a"
)
