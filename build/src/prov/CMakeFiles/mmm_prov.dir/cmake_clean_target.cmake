file(REMOVE_RECURSE
  "libmmm_prov.a"
)
