#ifndef MMM_NN_TRAINER_H_
#define MMM_NN_TRAINER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "serialize/json.h"
#include "nn/model.h"

namespace mmm {

/// \brief Fully deterministic training-run description.
///
/// A TrainConfig plus a dataset plus the starting parameters determine the
/// resulting parameters bit-exactly (single-threaded FP32, seeded shuffling,
/// fixed reduction order). The Provenance approach persists exactly this
/// config (as JSON) and replays it to recover models.
struct TrainConfig {
  int epochs = 1;
  size_t batch_size = 32;
  float learning_rate = 0.01f;
  float momentum = 0.0f;
  std::string optimizer = "sgd";  ///< "sgd" | "adam"
  std::string loss = "mse";       ///< "mse" | "cross_entropy"
  uint64_t shuffle_seed = 1;
  /// Layer names to train; empty = full update, non-empty = partial update
  /// (all other layers are frozen, paper §2.1).
  std::vector<std::string> trainable_layers;

  JsonValue ToJson() const;
  static Result<TrainConfig> FromJson(const JsonValue& json);

  bool operator==(const TrainConfig& other) const = default;
};

/// \brief Outcome statistics of one training run.
struct TrainReport {
  float initial_loss = 0.0f;
  float final_loss = 0.0f;
  int64_t steps = 0;
};

/// \brief Runs deterministic mini-batch training on a model.
///
/// `inputs` is [n, features...] (first dim = sample), `targets` is
/// [n, outputs] for MSE or [n] class indices for cross-entropy.
Result<TrainReport> TrainModel(Model* model, const Tensor& inputs,
                               const Tensor& targets, const TrainConfig& config);

/// Mean loss of `model` on the given data (no parameter updates).
Result<float> EvaluateLoss(Model* model, const Tensor& inputs,
                           const Tensor& targets, const std::string& loss);

}  // namespace mmm

#endif  // MMM_NN_TRAINER_H_
