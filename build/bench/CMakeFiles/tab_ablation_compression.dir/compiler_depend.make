# Empty compiler generated dependencies file for tab_ablation_compression.
# This may be replaced when dependencies are built.
