# Empty dependencies file for test_blob_formats.
# This may be replaced when dependencies are built.
