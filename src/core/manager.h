#ifndef MMM_CORE_MANAGER_H_
#define MMM_CORE_MANAGER_H_

#include <memory>
#include <string>

#include "core/approach.h"
#include "core/baseline.h"
#include "core/compactor.h"
#include "core/inspect.h"
#include "core/mmlib_base.h"
#include "core/provenance.h"
#include "core/update.h"
#include "storage/latency_model.h"

namespace mmm {

/// The four management approaches evaluated in the paper.
enum class ApproachType : int {
  kMMlibBase = 0,
  kBaseline = 1,
  kUpdate = 2,
  kProvenance = 3,
};

/// Canonical name ("mmlib-base", "baseline", "update", "provenance").
std::string ApproachTypeName(ApproachType type);

/// Inverse of ApproachTypeName.
Result<ApproachType> ApproachTypeFromName(const std::string& name);

/// All four types, in the paper's presentation order.
inline constexpr ApproachType kAllApproaches[] = {
    ApproachType::kMMlibBase, ApproachType::kBaseline, ApproachType::kUpdate,
    ApproachType::kProvenance};

/// \brief Facade owning the stores and one instance of every approach.
///
/// This is the public entry point of the library:
///
/// \code
///   ModelSetManager::Options options;
///   options.root_dir = "/tmp/mmm";
///   options.resolver = &my_resolver;
///   MMM_ASSIGN_OR_RETURN(auto manager, ModelSetManager::Open(options));
///   MMM_ASSIGN_OR_RETURN(SaveResult saved,
///       manager->SaveInitial(ApproachType::kBaseline, set));
///   MMM_ASSIGN_OR_RETURN(ModelSet recovered, manager->Recover(saved.set_id));
/// \endcode
class ModelSetManager {
 public:
  struct Options {
    /// Directory for the file store and the document-store WAL.
    std::string root_dir;
    /// Filesystem implementation; defaults to Env::Default().
    Env* env = nullptr;
    /// Store latency profile (paper setups); default: no modeled latency.
    SetupProfile profile = SetupProfile::None();
    /// External data owner for Provenance recovery; may be nullptr when
    /// Provenance is not used for derived sets.
    DatasetResolver* resolver = nullptr;
    /// Seed of the set-id generator (determinism across runs).
    uint64_t id_seed = 42;
    /// External id source (not owned; must outlive the manager). When set,
    /// the manager draws set ids from it instead of constructing its own
    /// generator — the cluster coordinator uses this to decide a set's id
    /// (and thereby its shard placement) before the save reaches a shard.
    /// Open() still calls AdvanceTo past the largest persisted counter.
    /// Null (the default) keeps today's internal generator bit-exactly.
    IdGenerator* ids = nullptr;
    UpdateApproachOptions update_options;
    ProvenanceRecoverOptions provenance_recover_options;
    /// Compression for parameter/diff/hash blobs (§4.5 future work);
    /// reads auto-detect, so mixed stores are fine.
    Compression blob_compression = Compression::kNone;
    /// Content-addressed chunk store (src/cas/, DESIGN.md §10). Off by
    /// default: behavior and cost accounting are exactly the seed's. When
    /// enabled, parameter-scale blobs are deduplicated chunk-wise across
    /// all sets and GC refcounts chunks. A store that was ever written
    /// with CAS re-enables it automatically on reopen (the `cas.index`
    /// checkpoint is the marker), so chunked blobs always get CAS-aware
    /// GC; chunk-size knobs affect only new writes.
    CasOptions cas;
    /// Write-pipeline configuration. `pipeline.lanes = 1` (the default)
    /// reproduces the paper's serialized cost model bit-exactly; more lanes
    /// overlap blob writes, hashing, and compression across a worker pool.
    StorePipelineOptions pipeline;
    /// Streaming recovery (DESIGN.md §12). ON by default: recovery reads
    /// pull blobs window-by-window through FileStore::OpenStream and the
    /// incremental decoders, so peak recovery allocation is ≈ one stream
    /// window + one layer instead of the whole snapshot. Bit-exact with
    /// the materializing path and the modeled store cost is identical by
    /// construction; flip OFF to get the seed read path verbatim.
    bool streaming_recovery = true;
    /// Stream window size; 0 means kDefaultStreamWindowBytes (256 KiB).
    uint64_t stream_window_bytes = 0;
    /// Environment snapshot persisted by MMlib-base (per model) and
    /// Provenance (per set); defaults to EnvironmentInfo::Capture().
    std::optional<EnvironmentInfo> environment;
    /// When set, every successful SaveDerived is followed by an
    /// opportunistic CompactChains(*auto_compaction) pass, keeping every
    /// chain within the policy's depth bound as it grows (see
    /// core/compactor.h). Unset (the default) leaves compaction to explicit
    /// CompactChains calls / `mmmctl compact`.
    std::optional<CompactionPolicy> auto_compaction;
  };

  /// Opens (or creates) the stores under options.root_dir.
  static Result<std::unique_ptr<ModelSetManager>> Open(Options options);

  /// The approach instance for `type`.
  ModelSetApproach* approach(ApproachType type);

  /// The Update approach instance, typed — the only approach with a cached
  /// recovery path (see UpdateApproach::RecoverCached).
  UpdateApproach* update_approach() { return update_.get(); }

  /// Saves an initial set with the chosen approach.
  Result<SaveResult> SaveInitial(ApproachType type, const ModelSet& set);

  /// Saves a derived set with the chosen approach.
  Result<SaveResult> SaveDerived(ApproachType type, const ModelSet& set,
                                 const ModelSetUpdateInfo& update);

  /// Recovers any saved set; dispatches on the approach recorded in the
  /// set's metadata document.
  Result<ModelSet> Recover(const std::string& set_id,
                           RecoverStats* stats = nullptr);

  /// Recovers only the models at `indices` from any saved set (the paper's
  /// post-accident analysis read path); dispatches like Recover.
  Result<std::vector<StateDict>> RecoverModels(const std::string& set_id,
                                               const std::vector<size_t>& indices,
                                               RecoverStats* stats = nullptr);

  /// \name Store inspection (see core/inspect.h).
  /// @{
  Result<std::vector<SetSummary>> ListSets() { return mmm::ListSets(context_); }
  Result<std::vector<SetSummary>> Lineage(const std::string& set_id) {
    return mmm::Lineage(context_, set_id);
  }
  Result<StoreValidationReport> ValidateStore() {
    return mmm::ValidateStore(context_);
  }
  /// Rewrites the metadata WAL without tombstones/shadowed records;
  /// run after GC (DeleteSet/RetainOnly) to reclaim log space.
  Status CompactStore() { return doc_store_->Compact(); }
  /// @}

  /// Rewrites saved chains so every set is at most policy.max_chain_depth
  /// hops from a full snapshot, through journaled same-id rebase commits
  /// (see core/compactor.h). Bit-exact: Recover(id) returns identical bytes
  /// before and after for every set. Serving deployments should call
  /// ModelSetService::CompactChains instead, which also invalidates stale
  /// cache entries for the rewritten sets.
  Result<CompactionReport> CompactChains(const CompactionPolicy& policy);

  /// Shared store context (for inspection in tests/benches).
  const StoreContext& context() const { return context_; }
  SimulatedClock* sim_clock() { return &sim_clock_; }
  FileStore* file_store() { return file_store_.get(); }
  DocumentStore* doc_store() { return doc_store_.get(); }
  CommitJournal* journal() { return journal_.get(); }
  /// Content-addressed chunk store; null when CAS is off for this store.
  CasStore* cas() { return cas_.get(); }

  /// What the open-time journal replay found and repaired. A crash-free
  /// shutdown yields an empty report (zero entries scanned).
  const RepairReport& repair_report() const { return repair_report_; }

 private:
  ModelSetManager() = default;

  SimulatedClock sim_clock_;
  /// Internally owned id generator; null when Options::ids supplied an
  /// external source (the context then points at that source instead).
  std::unique_ptr<IdGenerator> ids_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<FileStore> file_store_;
  std::unique_ptr<DocumentStore> doc_store_;
  std::unique_ptr<CommitJournal> journal_;
  std::unique_ptr<CasStore> cas_;
  RepairReport repair_report_;
  StoreContext context_;
  std::optional<CompactionPolicy> auto_compaction_;
  std::unique_ptr<MMlibBaseApproach> mmlib_base_;
  std::unique_ptr<BaselineApproach> baseline_;
  std::unique_ptr<UpdateApproach> update_;
  std::unique_ptr<ProvenanceApproach> provenance_;
};

}  // namespace mmm

#endif  // MMM_CORE_MANAGER_H_
