# Empty dependencies file for mmm_prov.
# This may be replaced when dependencies are built.
