file(REMOVE_RECURSE
  "CMakeFiles/test_pack_metrics.dir/test_pack_metrics.cc.o"
  "CMakeFiles/test_pack_metrics.dir/test_pack_metrics.cc.o.d"
  "test_pack_metrics"
  "test_pack_metrics.pdb"
  "test_pack_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pack_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
