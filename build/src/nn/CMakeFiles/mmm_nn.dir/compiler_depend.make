# Empty compiler generated dependencies file for mmm_nn.
# This may be replaced when dependencies are built.
