#include "data/normalizer.h"

namespace mmm {

FeatureNormalizer::FeatureNormalizer(std::vector<float> offsets,
                                     std::vector<float> scales)
    : offsets_(std::move(offsets)), scales_(std::move(scales)) {
  MMM_DCHECK(offsets_.size() == scales_.size());
  for (float s : scales_) MMM_DCHECK(s != 0.0f);
}

Result<Tensor> FeatureNormalizer::Normalize(const Tensor& matrix) const {
  if (matrix.ndim() != 2 || matrix.dim(1) != offsets_.size()) {
    return Status::InvalidArgument("normalizer expects [n, ", offsets_.size(),
                                   "] input");
  }
  Tensor out = matrix;
  const size_t n = matrix.dim(0), f = matrix.dim(1);
  auto data = out.mutable_data();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < f; ++j) {
      data[i * f + j] = (data[i * f + j] - offsets_[j]) / scales_[j];
    }
  }
  return out;
}

Result<Tensor> FeatureNormalizer::Denormalize(const Tensor& matrix) const {
  if (matrix.ndim() != 2 || matrix.dim(1) != offsets_.size()) {
    return Status::InvalidArgument("denormalizer expects [n, ", offsets_.size(),
                                   "] input");
  }
  Tensor out = matrix;
  const size_t n = matrix.dim(0), f = matrix.dim(1);
  auto data = out.mutable_data();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < f; ++j) {
      data[i * f + j] = data[i * f + j] * scales_[j] + offsets_[j];
    }
  }
  return out;
}

JsonValue FeatureNormalizer::ToJson() const {
  JsonValue json = JsonValue::Object();
  JsonValue offsets = JsonValue::Array();
  for (float o : offsets_) offsets.Append(static_cast<double>(o));
  JsonValue scales = JsonValue::Array();
  for (float s : scales_) scales.Append(static_cast<double>(s));
  json.Set("offsets", std::move(offsets));
  json.Set("scales", std::move(scales));
  return json;
}

Result<FeatureNormalizer> FeatureNormalizer::FromJson(const JsonValue& json) {
  MMM_ASSIGN_OR_RETURN(const JsonValue* offsets, json.Get("offsets"));
  MMM_ASSIGN_OR_RETURN(const JsonValue* scales, json.Get("scales"));
  if (!offsets->is_array() || !scales->is_array() ||
      offsets->ArraySize() != scales->ArraySize()) {
    return Status::Corruption("normalizer: offsets/scales must be equal arrays");
  }
  std::vector<float> offset_values, scale_values;
  for (const JsonValue& v : offsets->array_items()) {
    MMM_ASSIGN_OR_RETURN(double value, v.AsDouble());
    offset_values.push_back(static_cast<float>(value));
  }
  for (const JsonValue& v : scales->array_items()) {
    MMM_ASSIGN_OR_RETURN(double value, v.AsDouble());
    if (value == 0.0) return Status::Corruption("normalizer: zero scale");
    scale_values.push_back(static_cast<float>(value));
  }
  return FeatureNormalizer(std::move(offset_values), std::move(scale_values));
}

}  // namespace mmm
