file(REMOVE_RECURSE
  "CMakeFiles/test_xor_delta.dir/test_xor_delta.cc.o"
  "CMakeFiles/test_xor_delta.dir/test_xor_delta.cc.o.d"
  "test_xor_delta"
  "test_xor_delta.pdb"
  "test_xor_delta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xor_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
