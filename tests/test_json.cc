#include "serialize/json.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

TEST(JsonTest, ScalarsDump) {
  EXPECT_EQ(JsonValue(nullptr).Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-3).Dump(), "-3");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, DoublesKeepPrecision) {
  JsonValue v(0.1);
  auto parsed = JsonValue::Parse(v.Dump()).ValueOrDie();
  EXPECT_DOUBLE_EQ(parsed.number_value(), 0.1);
}

TEST(JsonTest, IntegersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue(static_cast<int64_t>(1234567890123)).Dump(),
            "1234567890123");
  EXPECT_EQ(JsonValue(5.0).Dump(), "5");
}

TEST(JsonTest, StringEscaping) {
  JsonValue v(std::string("a\"b\\c\nd\te\x01"));
  std::string dumped = v.Dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  auto parsed = JsonValue::Parse(dumped).ValueOrDie();
  EXPECT_EQ(parsed.string_value(), v.string_value());
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", 1);
  obj.Set("alpha", 2);
  obj.Set("mike", 3);
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":2,\"mike\":3}");
}

TEST(JsonTest, SetOverwritesInPlace) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", 1);
  obj.Set("b", 2);
  obj.Set("a", 9);
  EXPECT_EQ(obj.Dump(), "{\"a\":9,\"b\":2}");
  EXPECT_EQ(obj.ObjectSize(), 2u);
}

TEST(JsonTest, TypedGetters) {
  JsonValue obj = JsonValue::Object();
  obj.Set("s", "text");
  obj.Set("i", 41);
  obj.Set("d", 2.5);
  obj.Set("b", true);
  EXPECT_EQ(obj.GetString("s").ValueOrDie(), "text");
  EXPECT_EQ(obj.GetInt64("i").ValueOrDie(), 41);
  EXPECT_DOUBLE_EQ(obj.GetDouble("d").ValueOrDie(), 2.5);
  EXPECT_TRUE(obj.GetBool("b").ValueOrDie());
  EXPECT_TRUE(obj.GetString("missing").status().IsNotFound());
  EXPECT_TRUE(obj.GetInt64("s").status().IsInvalidArgument());
}

TEST(JsonTest, GettersWithDefaults) {
  JsonValue obj = JsonValue::Object();
  obj.Set("x", 5);
  EXPECT_EQ(obj.GetInt64Or("x", -1), 5);
  EXPECT_EQ(obj.GetInt64Or("y", -1), -1);
  EXPECT_EQ(obj.GetStringOr("y", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(obj.GetDoubleOr("y", 1.5), 1.5);
}

TEST(JsonTest, ArrayAccess) {
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append("two");
  EXPECT_EQ(arr.ArraySize(), 2u);
  EXPECT_EQ(arr.At(1).ValueOrDie()->string_value(), "two");
  EXPECT_TRUE(arr.At(2).status().IsOutOfRange());
}

TEST(JsonTest, ParseWhitespaceAndNesting) {
  auto v = JsonValue::Parse(R"(  { "a" : [ 1 , { "b" : null } ] , "c": -2e3 } )")
               .ValueOrDie();
  EXPECT_TRUE(v.is_object());
  auto* a = v.Get("a").ValueOrDie();
  EXPECT_EQ(a->ArraySize(), 2u);
  EXPECT_TRUE(a->At(1).ValueOrDie()->Get("b").ValueOrDie()->is_null());
  EXPECT_DOUBLE_EQ(v.GetDouble("c").ValueOrDie(), -2000.0);
}

TEST(JsonTest, ParseEmptyContainers) {
  EXPECT_EQ(JsonValue::Parse("{}").ValueOrDie().ObjectSize(), 0u);
  EXPECT_EQ(JsonValue::Parse("[]").ValueOrDie().ArraySize(), 0u);
}

TEST(JsonTest, ParseUnicodeEscape) {
  auto v = JsonValue::Parse("\"\\u0041\\u00e9\\u20ac\"").ValueOrDie();
  EXPECT_EQ(v.string_value(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_TRUE(JsonValue::Parse("").status().IsCorruption());
  EXPECT_TRUE(JsonValue::Parse("{").status().IsCorruption());
  EXPECT_TRUE(JsonValue::Parse("[1,]").status().IsCorruption());
  EXPECT_TRUE(JsonValue::Parse("{\"a\":}").status().IsCorruption());
  EXPECT_TRUE(JsonValue::Parse("tru").status().IsCorruption());
  EXPECT_TRUE(JsonValue::Parse("\"unterminated").status().IsCorruption());
  EXPECT_TRUE(JsonValue::Parse("1 2").status().IsCorruption());
  EXPECT_TRUE(JsonValue::Parse("{\"a\":1 \"b\":2}").status().IsCorruption());
}

TEST(JsonTest, EqualityIsDeep) {
  auto a = JsonValue::Parse(R"({"x":[1,2,{"y":true}]})").ValueOrDie();
  auto b = JsonValue::Parse(R"({"x":[1,2,{"y":true}]})").ValueOrDie();
  auto c = JsonValue::Parse(R"({"x":[1,2,{"y":false}]})").ValueOrDie();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(JsonTest, PrettyDumpParsesBack) {
  auto v = JsonValue::Parse(R"({"a":{"b":[1,2,3]},"c":"x"})").ValueOrDie();
  auto round = JsonValue::Parse(v.DumpPretty()).ValueOrDie();
  EXPECT_EQ(v, round);
}

// Property test: randomly generated documents survive dump->parse.
JsonValue RandomJson(Rng* rng, int depth) {
  switch (depth <= 0 ? rng->NextBounded(4) : rng->NextBounded(6)) {
    case 0:
      return JsonValue(nullptr);
    case 1:
      return JsonValue(rng->NextBounded(2) == 0);
    case 2:
      return JsonValue(rng->NextUniform(-1e6, 1e6));
    case 3: {
      std::string s;
      size_t len = rng->NextBounded(12);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(32 + rng->NextBounded(95)));
      }
      return JsonValue(std::move(s));
    }
    case 4: {
      JsonValue arr = JsonValue::Array();
      size_t n = rng->NextBounded(5);
      for (size_t i = 0; i < n; ++i) arr.Append(RandomJson(rng, depth - 1));
      return arr;
    }
    default: {
      JsonValue obj = JsonValue::Object();
      size_t n = rng->NextBounded(5);
      for (size_t i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(i), RandomJson(rng, depth - 1));
      }
      return obj;
    }
  }
}

class JsonRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripSweep, DumpParseIsIdentity) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    JsonValue doc = RandomJson(&rng, 4);
    auto parsed = JsonValue::Parse(doc.Dump());
    ASSERT_OK(parsed.status());
    EXPECT_EQ(parsed.ValueOrDie(), doc);
    auto pretty = JsonValue::Parse(doc.DumpPretty());
    ASSERT_OK(pretty.status());
    EXPECT_EQ(pretty.ValueOrDie(), doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

}  // namespace
}  // namespace mmm
