#include "cas/cas_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cas/blob_io.h"
#include "cas/chunker.h"
#include "cas/manifest.h"
#include "common/rng.h"
#include "core/gc.h"
#include "core/inspect.h"
#include "core/manager.h"
#include "serialize/sha256.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (uint8_t& b : out) b = static_cast<uint8_t>(rng.NextBounded(256));
  return out;
}

CasOptions SmallChunkOptions() {
  CasOptions options;
  options.enabled = true;
  options.min_chunk_bytes = 64;
  options.avg_chunk_bytes = 256;
  options.max_chunk_bytes = 1024;
  options.min_blob_bytes = 256;
  return options;
}

// ---------------------------------------------------------------------------
// Chunker properties.

TEST(ChunkerTest, SpansTileTheInputExactly) {
  CasOptions options = SmallChunkOptions();
  for (size_t size : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                      size_t{1000}, size_t{4096}, size_t{100000}}) {
    std::vector<uint8_t> data = RandomBytes(size, /*seed=*/size + 1);
    std::vector<ChunkSpan> spans = ChunkBlob(data, options);
    size_t cursor = 0;
    for (const ChunkSpan& span : spans) {
      EXPECT_EQ(span.offset, cursor) << "blob size " << size;
      cursor += span.length;
    }
    EXPECT_EQ(cursor, size);
    if (size > 0) {
      EXPECT_FALSE(spans.empty());
    }
  }
}

TEST(ChunkerTest, RespectsMinAndMaxBounds) {
  CasOptions options = SmallChunkOptions();
  std::vector<uint8_t> data = RandomBytes(200000, /*seed=*/7);
  std::vector<ChunkSpan> spans = ChunkBlob(data, options);
  ASSERT_GT(spans.size(), 10u);  // content-defined cuts actually fire
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LE(spans[i].length, options.max_chunk_bytes);
    if (i + 1 < spans.size()) {
      EXPECT_GE(spans[i].length, options.min_chunk_bytes);
    }
  }
}

TEST(ChunkerTest, IsDeterministic) {
  CasOptions options = SmallChunkOptions();
  std::vector<uint8_t> data = RandomBytes(50000, /*seed=*/11);
  std::vector<ChunkSpan> a = ChunkBlob(data, options);
  std::vector<ChunkSpan> b = ChunkBlob(data, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

// The point of content-defined chunking: one flipped byte re-chunks only
// the neighborhood of the edit, so the other chunks dedup against the
// previous version.
TEST(ChunkerTest, SingleByteEditKeepsMostBoundaries) {
  CasOptions options = SmallChunkOptions();
  std::vector<uint8_t> data = RandomBytes(100000, /*seed=*/13);
  std::vector<uint8_t> edited = data;
  edited[50000] ^= 0xff;

  auto chunk_keys = [&](const std::vector<uint8_t>& blob) {
    std::multiset<std::string> keys;
    for (const ChunkSpan& span : ChunkBlob(blob, options)) {
      keys.insert(std::string(
          reinterpret_cast<const char*>(blob.data()) + span.offset,
          span.length));
    }
    return keys;
  };
  std::multiset<std::string> before = chunk_keys(data);
  std::multiset<std::string> after = chunk_keys(edited);
  std::vector<std::string> shared;
  std::set_intersection(before.begin(), before.end(), after.begin(),
                        after.end(), std::back_inserter(shared));
  // All but the few chunks around the edit are byte-identical.
  EXPECT_GE(shared.size() + 4, before.size());
  EXPECT_LT(shared.size(), before.size());  // the edit did change something
}

TEST(ChunkerTest, FixedSizeModeCutsEveryAvg) {
  CasOptions options = SmallChunkOptions();
  options.fixed_size = true;
  std::vector<uint8_t> data = RandomBytes(1000, /*seed=*/17);
  std::vector<ChunkSpan> spans = ChunkBlob(data, options);
  ASSERT_EQ(spans.size(), 4u);  // 256 + 256 + 256 + 232
  for (size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_EQ(spans[i].length, options.avg_chunk_bytes);
  }
  EXPECT_EQ(spans.back().length, 1000u % options.avg_chunk_bytes);
}

TEST(ChunkerTest, ValidateRejectsBadConfigs) {
  CasOptions options = SmallChunkOptions();
  options.avg_chunk_bytes = 300;  // not a power of two
  EXPECT_TRUE(options.Validate().IsInvalidArgument());

  options = SmallChunkOptions();
  options.min_chunk_bytes = 512;  // min > avg
  EXPECT_TRUE(options.Validate().IsInvalidArgument());

  options = SmallChunkOptions();
  options.max_chunk_bytes = 128;  // max < avg
  EXPECT_TRUE(options.Validate().IsInvalidArgument());

  options = SmallChunkOptions();
  options.min_blob_bytes = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());

  EXPECT_OK(SmallChunkOptions().Validate());
  EXPECT_OK(CasOptions{}.Validate());
}

// ---------------------------------------------------------------------------
// Manifest codec.

TEST(ManifestTest, RoundTrips) {
  CasManifest manifest;
  manifest.raw_size = 12345;
  manifest.raw_crc = 0xdeadbeef;
  manifest.chunks.push_back({std::string(64, 'a'), 4096});
  manifest.chunks.push_back({std::string(64, 'b'), 8249});

  std::vector<uint8_t> encoded = EncodeManifest(manifest);
  ASSERT_TRUE(IsManifestPayload(encoded));
  ASSERT_OK_AND_ASSIGN(CasManifest decoded, DecodeManifest(encoded));
  EXPECT_EQ(decoded.raw_size, manifest.raw_size);
  EXPECT_EQ(decoded.raw_crc, manifest.raw_crc);
  ASSERT_EQ(decoded.chunks.size(), 2u);
  EXPECT_EQ(decoded.chunks[0].hash_hex, manifest.chunks[0].hash_hex);
  EXPECT_EQ(decoded.chunks[1].length, manifest.chunks[1].length);
}

TEST(ManifestTest, RejectsCorruptPayloads) {
  EXPECT_TRUE(DecodeManifest(std::vector<uint8_t>{}).status().IsCorruption());
  std::vector<uint8_t> wrong_magic = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
  EXPECT_TRUE(DecodeManifest(wrong_magic).status().IsCorruption());

  CasManifest manifest;
  manifest.raw_size = 10;
  manifest.chunks.push_back({"tooshort", 10});
  std::vector<uint8_t> bad_hash = EncodeManifest(manifest);
  EXPECT_TRUE(DecodeManifest(bad_hash).status().IsCorruption());

  std::vector<uint8_t> truncated = EncodeManifest(CasManifest{});
  truncated.resize(truncated.size() - 3);
  EXPECT_TRUE(DecodeManifest(truncated).status().IsCorruption());
}

TEST(ManifestTest, ChunkNamespaceHelpers) {
  const std::string hex(64, 'c');
  const std::string name = ChunkBlobName(hex);
  EXPECT_TRUE(IsChunkBlobName(name));
  EXPECT_FALSE(IsChunkBlobName("set-000001-abcd.params.bin"));
  EXPECT_EQ(ChunkHexOfBlobName(name), hex);
}

// ---------------------------------------------------------------------------
// End-to-end through the manager.

class CasManagerTest : public ::testing::Test {
 protected:
  CasManagerTest() : temp_("cas") {}

  void InitScenario(int models = 10, double full_update_fraction = 0.05,
                    double partial_update_fraction = 0.05) {
    ScenarioConfig config = ScenarioConfig::Battery(models);
    config.samples_per_dataset = 32;
    config.full_update_fraction = full_update_fraction;
    config.partial_update_fraction = partial_update_fraction;
    scenario_ = std::make_unique<MultiModelScenario>(config);
    ASSERT_OK(scenario_->Init());
  }

  ModelSetManager::Options BaseOptions(const std::string& subdir) {
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/" + subdir;
    options.resolver = scenario_.get();
    return options;
  }

  std::unique_ptr<ModelSetManager> OpenCas(const std::string& subdir,
                                           size_t lanes = 1) {
    ModelSetManager::Options options = BaseOptions(subdir);
    options.cas = SmallChunkOptions();
    options.pipeline.lanes = lanes;
    return ModelSetManager::Open(std::move(options)).ValueOrDie();
  }

  void ExpectSetEquals(const ModelSet& a, const ModelSet& b) {
    ASSERT_EQ(a.models.size(), b.models.size());
    ASSERT_EQ(a.spec, b.spec);
    for (size_t m = 0; m < a.models.size(); ++m) {
      ASSERT_EQ(a.models[m].size(), b.models[m].size());
      for (size_t p = 0; p < a.models[m].size(); ++p) {
        ASSERT_EQ(a.models[m][p].first, b.models[m][p].first);
        ASSERT_TRUE(a.models[m][p].second.Equals(b.models[m][p].second))
            << "model " << m << " param " << a.models[m][p].first;
      }
    }
  }

  size_t CountChunkBlobs(ModelSetManager* manager) {
    size_t chunks = 0;
    for (const std::string& name :
         manager->file_store()->List().ValueOrDie()) {
      if (IsChunkBlobName(name)) ++chunks;
    }
    return chunks;
  }

  TempDir temp_;
  std::unique_ptr<MultiModelScenario> scenario_;
};

// CAS-on recovery is bit-exact with CAS-off, for every approach and for
// both serial and multi-lane pipelines.
class CasApproachSweep
    : public CasManagerTest,
      public ::testing::WithParamInterface<std::tuple<ApproachType, size_t>> {};

TEST_P(CasApproachSweep, RecoveryBitExactWithAndWithoutCas) {
  const auto [type, lanes] = GetParam();
  InitScenario();
  ModelSetManager::Options plain_options = BaseOptions("plain");
  plain_options.pipeline.lanes = lanes;
  auto plain = ModelSetManager::Open(std::move(plain_options)).ValueOrDie();
  auto cas = OpenCas("cas", lanes);

  // Same states saved to both stores: initial + two derived cycles.
  ASSERT_OK_AND_ASSIGN(SaveResult plain_head,
                       plain->SaveInitial(type, scenario_->current_set()));
  ASSERT_OK_AND_ASSIGN(SaveResult cas_head,
                       cas->SaveInitial(type, scenario_->current_set()));
  std::vector<std::pair<std::string, std::string>> ids = {
      {plain_head.set_id, cas_head.set_id}};
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    update.base_set_id = ids.back().first;
    ASSERT_OK_AND_ASSIGN(
        SaveResult p, plain->SaveDerived(type, scenario_->current_set(), update));
    update.base_set_id = ids.back().second;
    ASSERT_OK_AND_ASSIGN(
        SaveResult c, cas->SaveDerived(type, scenario_->current_set(), update));
    ids.emplace_back(p.set_id, c.set_id);
  }

  for (const auto& [plain_id, cas_id] : ids) {
    ASSERT_OK_AND_ASSIGN(ModelSet expected, plain->Recover(plain_id));
    ASSERT_OK_AND_ASSIGN(ModelSet actual, cas->Recover(cas_id));
    ExpectSetEquals(actual, expected);
  }

  // Selective recovery reads ranges through chunked blobs bit-exactly too.
  const std::vector<size_t> indices = {0, 3, 7};
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> expected_models,
                       plain->RecoverModels(ids.back().first, indices));
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> actual_models,
                       cas->RecoverModels(ids.back().second, indices));
  ASSERT_EQ(actual_models.size(), expected_models.size());
  for (size_t i = 0; i < actual_models.size(); ++i) {
    ASSERT_EQ(actual_models[i].size(), expected_models[i].size());
    for (size_t p = 0; p < actual_models[i].size(); ++p) {
      EXPECT_EQ(actual_models[i][p].first, expected_models[i][p].first);
      EXPECT_TRUE(
          actual_models[i][p].second.Equals(expected_models[i][p].second));
    }
  }

  // The CAS store is healthy and actually chunked something.
  EXPECT_GT(CountChunkBlobs(cas.get()), 0u);
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health, cas->ValidateStore());
  EXPECT_TRUE(health.ok()) << (health.problems.empty()
                                   ? ""
                                   : health.problems.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllApproaches, CasApproachSweep,
    ::testing::Combine(::testing::Values(ApproachType::kMMlibBase,
                                         ApproachType::kBaseline,
                                         ApproachType::kUpdate,
                                         ApproachType::kProvenance),
                       ::testing::Values(size_t{1}, size_t{4})),
    [](const ::testing::TestParamInfo<std::tuple<ApproachType, size_t>>& info) {
      std::string name = ApproachTypeName(std::get<0>(info.param)) + "_lanes" +
                         std::to_string(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST_F(CasManagerTest, DerivedSnapshotsDedupAgainstTheBase) {
  InitScenario(12);
  auto manager = OpenCas("store");
  // Baseline writes a full snapshot per version; consecutive versions share
  // most parameter bytes, so their chunks dedup.
  ASSERT_OK_AND_ASSIGN(
      SaveResult first,
      manager->SaveInitial(ApproachType::kBaseline, scenario_->current_set()));
  std::string head = first.set_id;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    update.base_set_id = head;
    ASSERT_OK_AND_ASSIGN(SaveResult saved,
                         manager->SaveDerived(ApproachType::kBaseline,
                                              scenario_->current_set(), update));
    head = saved.set_id;
  }
  ASSERT_OK_AND_ASSIGN(CasStore::Stats stats, manager->cas()->ComputeStats());
  EXPECT_GE(stats.manifests, 4u);  // at least the four param blobs chunked
  EXPECT_EQ(stats.orphan_chunks, 0u);
  // Four nearly identical snapshots: physical chunk bytes must be far below
  // the 4x logical bytes (the paper's cross-set dedup claim, in miniature).
  EXPECT_GT(stats.dedup_ratio(), 2.0)
      << "logical " << stats.manifest_raw_bytes << " physical "
      << stats.chunk_bytes;
  // Refcount histogram covers every chunk.
  uint64_t histogram_total = 0;
  for (const auto& [refs, count] : stats.refcount_histogram) {
    EXPECT_GT(refs, 0u);
    histogram_total += count;
  }
  EXPECT_EQ(histogram_total, stats.unique_chunks);
}

TEST_F(CasManagerTest, DeleteDecrementsAndSweepsOnlyUnsharedChunks) {
  // Update half the models per cycle so consecutive snapshots have both
  // shared and unshared chunks.
  InitScenario(8, /*full_update_fraction=*/0.5, /*partial_update_fraction=*/0.25);
  auto manager = OpenCas("store");
  ASSERT_OK_AND_ASSIGN(
      SaveResult a,
      manager->SaveInitial(ApproachType::kBaseline, scenario_->current_set()));
  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  update.base_set_id = a.set_id;
  ASSERT_OK_AND_ASSIGN(SaveResult b,
                       manager->SaveDerived(ApproachType::kBaseline,
                                            scenario_->current_set(), update));
  ModelSet b_state = scenario_->current_set();

  size_t chunks_before = CountChunkBlobs(manager.get());
  ASSERT_GT(chunks_before, 0u);

  // Deleting A reclaims only the chunks B does not share.
  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       DeleteSet(manager->context(), a.set_id));
  EXPECT_GT(report.chunks_swept, 0u);
  size_t chunks_after = CountChunkBlobs(manager.get());
  EXPECT_LT(chunks_after, chunks_before);
  EXPECT_GT(chunks_after, 0u);  // shared chunks survived

  // B recovers bit-exactly from the surviving shared chunks.
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(b.set_id));
  ExpectSetEquals(recovered, b_state);
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health, manager->ValidateStore());
  EXPECT_TRUE(health.ok()) << (health.problems.empty()
                                   ? ""
                                   : health.problems.front());

  // Deleting B reclaims everything; no chunk outlives its last reference.
  ASSERT_OK_AND_ASSIGN(DeleteReport final_report,
                       DeleteSet(manager->context(), b.set_id));
  EXPECT_GT(final_report.chunks_swept, 0u);
  EXPECT_EQ(CountChunkBlobs(manager.get()), 0u);
  EXPECT_TRUE(manager->file_store()->List().ValueOrDie().empty());
}

TEST_F(CasManagerTest, RetainOnlySweepsUnreferencedChunks) {
  InitScenario(8);
  auto manager = OpenCas("store");
  std::vector<std::string> ids;
  ASSERT_OK_AND_ASSIGN(
      SaveResult first,
      manager->SaveInitial(ApproachType::kUpdate, scenario_->current_set()));
  ids.push_back(first.set_id);
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    update.base_set_id = ids.back();
    ASSERT_OK_AND_ASSIGN(SaveResult saved,
                         manager->SaveDerived(ApproachType::kUpdate,
                                              scenario_->current_set(), update));
    ids.push_back(saved.set_id);
  }
  ModelSet tip_state = scenario_->current_set();

  // An unrelated baseline snapshot that retention will delete.
  ASSERT_OK(scenario_->AdvanceCycle().status());
  ASSERT_OK_AND_ASSIGN(
      SaveResult doomed,
      manager->SaveInitial(ApproachType::kBaseline, scenario_->current_set()));

  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       RetainOnly(manager->context(), {ids.back()}));
  EXPECT_EQ(report.sets_deleted, 1u);
  EXPECT_EQ(report.deleted_set_ids[0], doomed.set_id);

  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(ids.back()));
  ExpectSetEquals(recovered, tip_state);
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health, manager->ValidateStore());
  EXPECT_TRUE(health.ok()) << (health.problems.empty()
                                   ? ""
                                   : health.problems.front());
}

TEST_F(CasManagerTest, ReopenRebuildsIndexAndAutoEnables) {
  InitScenario(8);
  std::string set_id;
  ModelSet saved_state;
  std::map<std::string, uint64_t> refs_before;
  {
    auto manager = OpenCas("store");
    ASSERT_OK_AND_ASSIGN(
        SaveResult saved,
        manager->SaveInitial(ApproachType::kBaseline, scenario_->current_set()));
    set_id = saved.set_id;
    saved_state = scenario_->current_set();
    refs_before = manager->cas()->ChunkRefsSnapshot();
    ASSERT_FALSE(refs_before.empty());
  }

  // Reopen WITHOUT asking for CAS: the cas.index marker re-enables it, so
  // chunked blobs never meet CAS-blind GC.
  ModelSetManager::Options options = BaseOptions("store");
  ASSERT_OK_AND_ASSIGN(auto reopened, ModelSetManager::Open(std::move(options)));
  ASSERT_NE(reopened->cas(), nullptr);
  EXPECT_EQ(reopened->cas()->ChunkRefsSnapshot(), refs_before);

  ASSERT_OK_AND_ASSIGN(ModelSet recovered, reopened->Recover(set_id));
  ExpectSetEquals(recovered, saved_state);

  // GC on the reopened store still sweeps chunks.
  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       DeleteSet(reopened->context(), set_id));
  EXPECT_GT(report.chunks_swept, 0u);
  EXPECT_TRUE(reopened->file_store()->List().ValueOrDie().empty());
}

TEST_F(CasManagerTest, MixedStoreOldVerbatimBlobsStayReadable) {
  InitScenario(8);
  std::string old_id;
  ModelSet old_state;
  {
    ModelSetManager::Options options = BaseOptions("store");
    auto plain = ModelSetManager::Open(std::move(options)).ValueOrDie();
    ASSERT_OK_AND_ASSIGN(
        SaveResult saved,
        plain->SaveInitial(ApproachType::kBaseline, scenario_->current_set()));
    old_id = saved.set_id;
    old_state = scenario_->current_set();
  }

  // Enable CAS on the existing store: old blobs stay verbatim and readable,
  // new saves chunk.
  ModelSetManager::Options options = BaseOptions("store");
  options.cas = SmallChunkOptions();
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(std::move(options)));
  ASSERT_OK_AND_ASSIGN(ModelSet old_recovered, manager->Recover(old_id));
  ExpectSetEquals(old_recovered, old_state);
  EXPECT_FALSE(manager->cas()->IsManifest(old_id + ".params.bin"));

  ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
  update.base_set_id = old_id;
  ASSERT_OK_AND_ASSIGN(SaveResult new_saved,
                       manager->SaveDerived(ApproachType::kBaseline,
                                            scenario_->current_set(), update));
  EXPECT_TRUE(manager->cas()->IsManifest(new_saved.set_id + ".params.bin"));
  ASSERT_OK_AND_ASSIGN(ModelSet new_recovered, manager->Recover(new_saved.set_id));
  ExpectSetEquals(new_recovered, scenario_->current_set());
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health, manager->ValidateStore());
  EXPECT_TRUE(health.ok()) << (health.problems.empty()
                                   ? ""
                                   : health.problems.front());
}

TEST_F(CasManagerTest, CompactionComposesWithCas) {
  InitScenario(8);
  auto manager = OpenCas("store");
  ASSERT_OK_AND_ASSIGN(
      SaveResult first,
      manager->SaveInitial(ApproachType::kUpdate, scenario_->current_set()));
  std::string head = first.set_id;
  for (int cycle = 0; cycle < 4; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario_->AdvanceCycle());
    update.base_set_id = head;
    ASSERT_OK_AND_ASSIGN(SaveResult saved,
                         manager->SaveDerived(ApproachType::kUpdate,
                                              scenario_->current_set(), update));
    head = saved.set_id;
  }
  ModelSet tip_state = scenario_->current_set();

  CompactionPolicy policy;
  policy.max_chain_depth = 1;
  ASSERT_OK_AND_ASSIGN(CompactionReport report, manager->CompactChains(policy));
  EXPECT_GT(report.sets_rebased, 0u);

  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(head));
  ExpectSetEquals(recovered, tip_state);
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health, manager->ValidateStore());
  EXPECT_TRUE(health.ok()) << (health.problems.empty()
                                   ? ""
                                   : health.problems.front());
  ASSERT_OK_AND_ASSIGN(OrphanReport orphans,
                       FindOrphanBlobs(manager->context()));
  EXPECT_TRUE(orphans.clean());
}

TEST_F(CasManagerTest, OrphanSweepReclaimsUntrackedChunksOnly) {
  InitScenario(8);
  auto manager = OpenCas("store");
  ASSERT_OK_AND_ASSIGN(
      SaveResult saved,
      manager->SaveInitial(ApproachType::kBaseline, scenario_->current_set()));
  size_t live_chunks = CountChunkBlobs(manager.get());
  ASSERT_GT(live_chunks, 0u);

  // Plant a chunk blob no manifest references (what an aborted commit's
  // already-written chunk writes leave behind).
  std::vector<uint8_t> junk = RandomBytes(100, /*seed=*/23);
  const std::string junk_name =
      ChunkBlobName(Sha256::Hash(std::span<const uint8_t>(junk)).ToHex());
  ASSERT_OK(manager->file_store()->Put(junk_name, junk));

  ASSERT_OK_AND_ASSIGN(OrphanReport orphans,
                       FindOrphanBlobs(manager->context()));
  ASSERT_EQ(orphans.orphan_blobs.size(), 1u);
  EXPECT_EQ(orphans.orphan_blobs[0], junk_name);

  ASSERT_OK_AND_ASSIGN(DeleteReport report,
                       SweepOrphanBlobs(manager->context()));
  EXPECT_EQ(report.chunks_swept, 1u);
  EXPECT_EQ(CountChunkBlobs(manager.get()), live_chunks);
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(saved.set_id));
  ExpectSetEquals(recovered, scenario_->current_set());
}

TEST_F(CasManagerTest, AuditFlagsMissingAndCorruptChunks) {
  InitScenario(8);
  auto manager = OpenCas("store");
  ASSERT_OK(manager
                ->SaveInitial(ApproachType::kBaseline, scenario_->current_set())
                .status());
  std::vector<std::string> clean;
  ASSERT_OK(manager->cas()->Audit(&clean));
  EXPECT_TRUE(clean.empty()) << clean.front();

  // Corrupt one chunk's content behind the store's back.
  std::vector<std::string> chunk_names;
  for (const std::string& name : manager->file_store()->List().ValueOrDie()) {
    if (IsChunkBlobName(name)) chunk_names.push_back(name);
  }
  ASSERT_FALSE(chunk_names.empty());
  std::vector<uint8_t> garbage = RandomBytes(64, /*seed=*/29);
  ASSERT_OK(manager->file_store()->Put(chunk_names[0], garbage));

  std::vector<std::string> problems;
  ASSERT_OK(manager->cas()->Audit(&problems));
  EXPECT_FALSE(problems.empty());
}

}  // namespace
}  // namespace mmm
