#ifndef MMM_NN_ACTIVATIONS_H_
#define MMM_NN_ACTIVATIONS_H_

#include "nn/module.h"

namespace mmm {

/// \brief Hyperbolic tangent activation (used by the battery FFNN models;
/// matches the Heinrich et al. study's best-performing configuration).
class Tanh : public Module {
 public:
  std::string TypeName() const override { return "tanh"; }
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

/// \brief Rectified linear unit (used by the CIFAR conv model).
class ReLU : public Module {
 public:
  std::string TypeName() const override { return "relu"; }
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

/// \brief Logistic sigmoid.
class Sigmoid : public Module {
 public:
  std::string TypeName() const override { return "sigmoid"; }
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

}  // namespace mmm

#endif  // MMM_NN_ACTIVATIONS_H_
