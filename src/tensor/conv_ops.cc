#include "tensor/conv_ops.h"

namespace mmm {

Tensor Conv2dForward(const Tensor& input, const Tensor& weight, const Tensor& bias) {
  MMM_DCHECK(input.ndim() == 4 && weight.ndim() == 4 && bias.ndim() == 1);
  const size_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
               w = input.dim(3);
  const size_t cout = weight.dim(0), k = weight.dim(2);
  MMM_DCHECK(weight.dim(1) == cin && weight.dim(3) == k && bias.dim(0) == cout);
  MMM_DCHECK(h >= k && w >= k);
  const size_t oh = h - k + 1, ow = w - k + 1;

  Tensor out(Shape{n, cout, oh, ow});
  for (size_t b = 0; b < n; ++b) {
    for (size_t oc = 0; oc < cout; ++oc) {
      const float bias_val = bias.at(oc);
      for (size_t y = 0; y < oh; ++y) {
        for (size_t x = 0; x < ow; ++x) {
          float acc = bias_val;
          for (size_t ic = 0; ic < cin; ++ic) {
            for (size_t ky = 0; ky < k; ++ky) {
              for (size_t kx = 0; kx < k; ++kx) {
                acc += input.at4(b, ic, y + ky, x + kx) * weight.at4(oc, ic, ky, kx);
              }
            }
          }
          out.at4(b, oc, y, x) = acc;
        }
      }
    }
  }
  return out;
}

Tensor Conv2dBackward(const Tensor& input, const Tensor& weight,
                      const Tensor& grad_output, Tensor* grad_weight,
                      Tensor* grad_bias) {
  const size_t n = input.dim(0), cin = input.dim(1);
  const size_t cout = weight.dim(0), k = weight.dim(2);
  const size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  MMM_DCHECK(grad_output.dim(0) == n && grad_output.dim(1) == cout);
  MMM_DCHECK(grad_weight->shape() == weight.shape());
  MMM_DCHECK(grad_bias->ndim() == 1 && grad_bias->dim(0) == cout);

  Tensor grad_input(input.shape());
  for (size_t b = 0; b < n; ++b) {
    for (size_t oc = 0; oc < cout; ++oc) {
      for (size_t y = 0; y < oh; ++y) {
        for (size_t x = 0; x < ow; ++x) {
          const float go = grad_output.at4(b, oc, y, x);
          if (go == 0.0f) continue;
          grad_bias->at(oc) += go;
          for (size_t ic = 0; ic < cin; ++ic) {
            for (size_t ky = 0; ky < k; ++ky) {
              for (size_t kx = 0; kx < k; ++kx) {
                grad_weight->at4(oc, ic, ky, kx) +=
                    go * input.at4(b, ic, y + ky, x + kx);
                grad_input.at4(b, ic, y + ky, x + kx) +=
                    go * weight.at4(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Tensor MaxPool2dForward(const Tensor& input, std::vector<size_t>* argmax) {
  MMM_DCHECK(input.ndim() == 4);
  const size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
               w = input.dim(3);
  MMM_DCHECK(h % 2 == 0 && w % 2 == 0);
  const size_t oh = h / 2, ow = w / 2;
  Tensor out(Shape{n, c, oh, ow});
  if (argmax != nullptr) argmax->assign(out.numel(), 0);

  size_t out_index = 0;
  for (size_t b = 0; b < n; ++b) {
    for (size_t ch = 0; ch < c; ++ch) {
      for (size_t y = 0; y < oh; ++y) {
        for (size_t x = 0; x < ow; ++x) {
          float best = input.at4(b, ch, y * 2, x * 2);
          size_t best_y = y * 2, best_x = x * 2;
          for (size_t dy = 0; dy < 2; ++dy) {
            for (size_t dx = 0; dx < 2; ++dx) {
              float v = input.at4(b, ch, y * 2 + dy, x * 2 + dx);
              if (v > best) {
                best = v;
                best_y = y * 2 + dy;
                best_x = x * 2 + dx;
              }
            }
          }
          out.at4(b, ch, y, x) = best;
          if (argmax != nullptr) {
            (*argmax)[out_index] = ((b * c + ch) * h + best_y) * w + best_x;
          }
          ++out_index;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2dBackward(const Shape& input_shape, const Tensor& grad_output,
                         const std::vector<size_t>& argmax) {
  MMM_DCHECK(argmax.size() == grad_output.numel());
  Tensor grad_input(input_shape);
  auto go = grad_output.data();
  auto gi = grad_input.mutable_data();
  for (size_t i = 0; i < argmax.size(); ++i) {
    gi[argmax[i]] += go[i];
  }
  return grad_input;
}

}  // namespace mmm
