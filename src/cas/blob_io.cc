#include "cas/blob_io.h"

#include <map>

#include "serialize/compress.h"
#include "serialize/crc32.h"

namespace mmm {

namespace {

/// Fetches a manifest's chunks and reassembles the payload, verifying size
/// and CRC. Repeated chunks within one manifest are fetched once.
Result<std::vector<uint8_t>> Reassemble(FileStore* store,
                                        const std::string& name,
                                        const CasManifest& manifest) {
  std::vector<uint8_t> out;
  out.reserve(manifest.raw_size);
  std::map<std::string, std::vector<uint8_t>> fetched;
  for (const CasChunkRef& ref : manifest.chunks) {
    auto it = fetched.find(ref.hash_hex);
    if (it == fetched.end()) {
      auto chunk = store->Get(ChunkBlobName(ref.hash_hex));
      if (!chunk.ok()) {
        return chunk.status().WithContext("blob '", name, "' chunk ",
                                          ref.hash_hex);
      }
      it = fetched.emplace(ref.hash_hex, std::move(chunk).ValueOrDie()).first;
    }
    if (it->second.size() != ref.length) {
      return Status::Corruption("blob '", name, "' chunk ", ref.hash_hex,
                                " has ", it->second.size(),
                                " bytes, manifest records ", ref.length);
    }
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  if (out.size() != manifest.raw_size) {
    return Status::Corruption("blob '", name, "' reassembled to ", out.size(),
                              " bytes, manifest records ", manifest.raw_size);
  }
  if (Crc32::Compute(out) != manifest.raw_crc) {
    return Status::Corruption("blob '", name,
                              "' fails its manifest crc after reassembly");
  }
  return out;
}

Result<CasManifest> FetchManifest(FileStore* store, const std::string& name) {
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, store->Get(name));
  auto manifest = DecodeManifest(data);
  if (!manifest.ok()) {
    return manifest.status().WithContext("blob '", name, "'");
  }
  return manifest;
}

}  // namespace

Result<std::vector<uint8_t>> CasReadBlob(FileStore* store,
                                         const std::string& name) {
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, store->Get(name));
  if (!IsManifestPayload(data)) return data;
  auto manifest = DecodeManifest(data);
  if (!manifest.ok()) {
    return manifest.status().WithContext("blob '", name, "'");
  }
  return Reassemble(store, name, manifest.ValueOrDie());
}

Result<std::string> CasReadBlobString(FileStore* store,
                                      const std::string& name) {
  MMM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, CasReadBlob(store, name));
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

Result<uint64_t> CasBlobSize(FileStore* store, const CasStore* cas,
                             const std::string& name) {
  if (cas == nullptr || !cas->IsManifest(name)) return store->Size(name);
  MMM_ASSIGN_OR_RETURN(CasManifest manifest, FetchManifest(store, name));
  return manifest.raw_size;
}

Result<std::vector<uint8_t>> CasReadBlobRange(FileStore* store,
                                              const CasStore* cas,
                                              const std::string& name,
                                              uint64_t offset,
                                              uint64_t length) {
  if (cas == nullptr || !cas->IsManifest(name)) {
    return store->GetRange(name, offset, length);
  }
  MMM_ASSIGN_OR_RETURN(CasManifest manifest, FetchManifest(store, name));
  // Overflow-safe form of `offset + length > raw_size` (matches the
  // Env::ReadFileRange contract verbatim blobs get from the store).
  if (offset > manifest.raw_size || length > manifest.raw_size - offset) {
    return Status::OutOfRange("blob '", name, "' range [", offset, ", +",
                              length, ") exceeds logical size ",
                              manifest.raw_size);
  }
  std::vector<uint8_t> out;
  out.reserve(length);
  uint64_t chunk_start = 0;
  const uint64_t end = offset + length;
  for (const CasChunkRef& ref : manifest.chunks) {
    const uint64_t chunk_end = chunk_start + ref.length;
    if (chunk_end > offset && chunk_start < end) {
      const uint64_t local_offset =
          offset > chunk_start ? offset - chunk_start : 0;
      const uint64_t local_end =
          end < chunk_end ? end - chunk_start : ref.length;
      MMM_ASSIGN_OR_RETURN(
          std::vector<uint8_t> piece,
          store->GetRange(ChunkBlobName(ref.hash_hex), local_offset,
                          local_end - local_offset));
      out.insert(out.end(), piece.begin(), piece.end());
    }
    chunk_start = chunk_end;
    if (chunk_start >= end) break;
  }
  if (out.size() != length) {
    return Status::Corruption("blob '", name, "' ranged read produced ",
                              out.size(), " bytes, wanted ", length);
  }
  return out;
}

namespace {

/// Streams one chunk (or replays a retained copy) into `on_window`,
/// retaining the bytes only when `retain` is set.
Status StreamChunk(FileStore* store, const std::string& name,
                   const CasChunkRef& ref, uint64_t window_bytes, bool retain,
                   std::vector<uint8_t>* retained,
                   const std::function<Status(std::span<const uint8_t>)>&
                       on_window) {
  auto stream = store->OpenStream(ChunkBlobName(ref.hash_hex), window_bytes);
  if (!stream.ok()) {
    return stream.status().WithContext("blob '", name, "' chunk ",
                                       ref.hash_hex);
  }
  if (stream.ValueOrDie().size() != ref.length) {
    return Status::Corruption("blob '", name, "' chunk ", ref.hash_hex,
                              " has ", stream.ValueOrDie().size(),
                              " bytes, manifest records ", ref.length);
  }
  while (!stream.ValueOrDie().done()) {
    auto window = stream.ValueOrDie().Next();
    if (!window.ok()) {
      return window.status().WithContext("blob '", name, "' chunk ",
                                         ref.hash_hex);
    }
    if (retain) {
      retained->insert(retained->end(), window.ValueOrDie().begin(),
                       window.ValueOrDie().end());
    }
    MMM_RETURN_NOT_OK(on_window(window.ValueOrDie()));
  }
  return Status::OK();
}

}  // namespace

Status CasStreamBlob(FileStore* store, const std::string& name,
                     uint64_t window_bytes,
                     const std::function<Status(uint64_t)>& on_open,
                     const std::function<Status(std::span<const uint8_t>)>&
                         on_window) {
  MMM_ASSIGN_OR_RETURN(StreamFile stream,
                       store->OpenStream(name, window_bytes));
  // Sniff the manifest magic from the head of the stream (a window smaller
  // than the magic just pulls another one — tiny blobs cannot be
  // manifests, but the sniff must not depend on the window size).
  std::vector<uint8_t> head;
  while (head.size() < kCasManifestMagicSize && !stream.done()) {
    MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> window, stream.Next());
    head.insert(head.end(), window.begin(), window.end());
  }

  if (!IsManifestPayload(head)) {
    // Verbatim blob: the stored bytes are the payload.
    if (on_open != nullptr) MMM_RETURN_NOT_OK(on_open(stream.size()));
    if (!head.empty()) {
      MMM_RETURN_NOT_OK(on_window(head));
    }
    while (!stream.done()) {
      MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> window, stream.Next());
      MMM_RETURN_NOT_OK(on_window(window));
    }
    return Status::OK();
  }

  // Manifest: materialize it (small next to the payload), then stream the
  // chunks it names.
  while (!stream.done()) {
    MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> window, stream.Next());
    head.insert(head.end(), window.begin(), window.end());
  }
  auto decoded = DecodeManifest(head);
  if (!decoded.ok()) {
    return decoded.status().WithContext("blob '", name, "'");
  }
  const CasManifest manifest = std::move(decoded).ValueOrDie();
  head.clear();
  head.shrink_to_fit();
  if (on_open != nullptr) MMM_RETURN_NOT_OK(on_open(manifest.raw_size));

  // Mirror the materializing reassembly's fetch-once semantics: each
  // distinct chunk is read from the store exactly once, so only chunks
  // with uses still ahead of the cursor need their bytes retained.
  std::map<std::string, size_t> uses;
  for (const CasChunkRef& ref : manifest.chunks) ++uses[ref.hash_hex];
  std::map<std::string, std::vector<uint8_t>> retained;

  uint64_t total = 0;
  uint32_t crc = 0;
  auto count_and_forward = [&](std::span<const uint8_t> window) -> Status {
    total += window.size();
    crc = Crc32::Extend(crc, window);
    return on_window(window);
  };
  for (const CasChunkRef& ref : manifest.chunks) {
    const size_t remaining_uses = --uses[ref.hash_hex];
    auto it = retained.find(ref.hash_hex);
    if (it != retained.end()) {
      if (it->second.size() != ref.length) {
        return Status::Corruption("blob '", name, "' chunk ", ref.hash_hex,
                                  " has ", it->second.size(),
                                  " bytes, manifest records ", ref.length);
      }
      MMM_RETURN_NOT_OK(count_and_forward(it->second));
      if (remaining_uses == 0) retained.erase(it);
      continue;
    }
    std::vector<uint8_t>* keep = nullptr;
    if (remaining_uses > 0) keep = &retained[ref.hash_hex];
    MMM_RETURN_NOT_OK(StreamChunk(store, name, ref, window_bytes,
                                  keep != nullptr, keep, count_and_forward));
  }
  if (total != manifest.raw_size) {
    return Status::Corruption("blob '", name, "' reassembled to ", total,
                              " bytes, manifest records ", manifest.raw_size);
  }
  if (crc != manifest.raw_crc) {
    return Status::Corruption("blob '", name,
                              "' fails its manifest crc after reassembly");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> CasReadBlobDecompressed(FileStore* store,
                                                     const std::string& name,
                                                     uint64_t window_bytes) {
  std::vector<uint8_t> out;
  BlobDecompressor decompressor;
  MMM_RETURN_NOT_OK(CasStreamBlob(
      store, name, window_bytes, nullptr,
      [&](std::span<const uint8_t> window) {
        return decompressor.Feed(window, &out);
      }));
  MMM_RETURN_NOT_OK(decompressor.Finish(&out));
  return out;
}

}  // namespace mmm
