#include "battery/drive_cycle.h"

#include <algorithm>
#include <cmath>

namespace mmm {

DriveCycleGenerator::DriveCycleGenerator(uint64_t seed) : seed_(seed) {}

std::vector<double> DriveCycleGenerator::Generate(uint64_t cycle_index,
                                                  size_t num_samples) const {
  Rng rng = Rng(seed_).Fork("drive-cycle", cycle_index);
  std::vector<double> current;
  current.reserve(num_samples);

  enum class Phase { kIdle, kAccelerate, kCruise, kBrake };
  Phase phase = Phase::kIdle;
  size_t phase_remaining = 3 + rng.NextBounded(10);
  double level = 0.0;   // steady current of the current phase
  double previous = 0.0;

  while (current.size() < num_samples) {
    if (phase_remaining == 0) {
      // Markov-style phase transitions approximating urban/highway mixes.
      double roll = rng.NextDouble();
      switch (phase) {
        case Phase::kIdle:
          phase = roll < 0.8 ? Phase::kAccelerate : Phase::kIdle;
          break;
        case Phase::kAccelerate:
          phase = roll < 0.7 ? Phase::kCruise
                             : (roll < 0.9 ? Phase::kBrake : Phase::kAccelerate);
          break;
        case Phase::kCruise:
          phase = roll < 0.4 ? Phase::kCruise
                             : (roll < 0.75 ? Phase::kBrake : Phase::kAccelerate);
          break;
        case Phase::kBrake:
          phase = roll < 0.5 ? Phase::kIdle : Phase::kAccelerate;
          break;
      }
      switch (phase) {
        case Phase::kIdle:
          phase_remaining = 2 + rng.NextBounded(15);
          level = rng.NextUniform(0.05, 0.3);  // auxiliary loads
          break;
        case Phase::kAccelerate:
          phase_remaining = 3 + rng.NextBounded(8);
          level = rng.NextUniform(0.5, 1.0) * kMaxDischargeA;
          break;
        case Phase::kCruise:
          phase_remaining = 10 + rng.NextBounded(40);
          level = rng.NextUniform(0.15, 0.45) * kMaxDischargeA;
          break;
        case Phase::kBrake:
          phase_remaining = 2 + rng.NextBounded(6);
          level = -rng.NextUniform(0.3, 1.0) * kMaxRegenA;
          break;
      }
    }
    // First-order lag toward the phase level plus small ripple: real traces
    // never step instantaneously.
    double target = level + rng.NextGaussian(0.0, 0.15);
    previous = previous + 0.45 * (target - previous);
    current.push_back(
        std::clamp(previous, -kMaxRegenA, kMaxDischargeA));
    --phase_remaining;
  }
  return current;
}

}  // namespace mmm
