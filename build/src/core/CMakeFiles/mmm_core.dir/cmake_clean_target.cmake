file(REMOVE_RECURSE
  "libmmm_core.a"
)
