#include "serve/trace.h"

#include <algorithm>
#include <cmath>

namespace mmm {

ZipfianSampler::ZipfianSampler(size_t n, double theta) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfianSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

std::vector<std::string> BuildZipfianTrace(const std::vector<std::string>& ids,
                                           size_t requests, double theta,
                                           uint64_t seed) {
  std::vector<std::string> trace;
  if (ids.empty()) return trace;
  ZipfianSampler sampler(ids.size(), theta);
  Rng rng(seed);
  trace.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    trace.push_back(ids[sampler.Sample(&rng)]);
  }
  return trace;
}

LatencySummary Summarize(std::vector<uint64_t> nanos) {
  LatencySummary out;
  if (nanos.empty()) return out;
  std::sort(nanos.begin(), nanos.end());
  double sum = 0;
  for (uint64_t v : nanos) sum += static_cast<double>(v);
  out.mean = sum / static_cast<double>(nanos.size());
  auto rank = [&](double q) {
    size_t r = static_cast<size_t>(
        std::ceil(q * static_cast<double>(nanos.size())));
    if (r == 0) r = 1;
    return nanos[std::min(r, nanos.size()) - 1];
  };
  out.p50 = rank(0.50);
  out.p99 = rank(0.99);
  out.max = nanos.back();
  return out;
}

}  // namespace mmm
