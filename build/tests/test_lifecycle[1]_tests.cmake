add_test([=[LifecycleTest.FullDeploymentStory]=]  /root/repo/build/tests/test_lifecycle [==[--gtest_filter=LifecycleTest.FullDeploymentStory]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[LifecycleTest.FullDeploymentStory]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_lifecycle_TESTS LifecycleTest.FullDeploymentStory)
