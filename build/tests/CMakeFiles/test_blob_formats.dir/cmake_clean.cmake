file(REMOVE_RECURSE
  "CMakeFiles/test_blob_formats.dir/test_blob_formats.cc.o"
  "CMakeFiles/test_blob_formats.dir/test_blob_formats.cc.o.d"
  "test_blob_formats"
  "test_blob_formats.pdb"
  "test_blob_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
