file(REMOVE_RECURSE
  "CMakeFiles/mmm_battery.dir/data_gen.cc.o"
  "CMakeFiles/mmm_battery.dir/data_gen.cc.o.d"
  "CMakeFiles/mmm_battery.dir/drive_cycle.cc.o"
  "CMakeFiles/mmm_battery.dir/drive_cycle.cc.o.d"
  "CMakeFiles/mmm_battery.dir/ecm.cc.o"
  "CMakeFiles/mmm_battery.dir/ecm.cc.o.d"
  "CMakeFiles/mmm_battery.dir/ocv.cc.o"
  "CMakeFiles/mmm_battery.dir/ocv.cc.o.d"
  "CMakeFiles/mmm_battery.dir/pack.cc.o"
  "CMakeFiles/mmm_battery.dir/pack.cc.o.d"
  "libmmm_battery.a"
  "libmmm_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
