#ifndef MMM_BATTERY_OCV_H_
#define MMM_BATTERY_OCV_H_

#include <cstddef>

namespace mmm {

/// \brief Open-circuit-voltage curve of an 18650 Li-ion (NMC) cell.
///
/// Piecewise-linear interpolation over a 21-point table spanning the full
/// state-of-charge range. The curve has the characteristic Li-ion shape:
/// a steep knee below 10% SoC, a long flat plateau around 3.6-3.8 V, and a
/// gentle rise to 4.2 V at full charge.
class OcvCurve {
 public:
  /// Open-circuit voltage in volts for state of charge in [0, 1].
  /// Values outside the range are clamped.
  static double Voltage(double soc);

  /// Slope dOCV/dSoC in volts at the given state of charge.
  static double Slope(double soc);

  /// Number of interpolation knots.
  static size_t KnotCount();
};

}  // namespace mmm

#endif  // MMM_BATTERY_OCV_H_
