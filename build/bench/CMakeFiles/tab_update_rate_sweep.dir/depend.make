# Empty dependencies file for tab_update_rate_sweep.
# This may be replaced when dependencies are built.
