#include "storage/stream_file.h"

#include <algorithm>

namespace mmm {

Result<std::span<const uint8_t>> StreamFile::Next() {
  if (offset_ >= size_) return std::span<const uint8_t>();
  const uint64_t take = std::min(window_bytes_, size_ - offset_);
  auto window = env_->ReadFileRange(path_, offset_, take);
  if (!window.ok()) {
    return window.status().WithContext("stream window [", offset_, ", +",
                                       take, ") of ", path_);
  }
  buffer_ = std::move(window).ValueOrDie();
  offset_ += buffer_.size();
  return std::span<const uint8_t>(buffer_);
}

}  // namespace mmm
