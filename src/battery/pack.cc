#include "battery/pack.h"

#include <algorithm>

namespace mmm {

SeriesPack::SeriesPack(PackConfig config) : config_(config) {
  cells_.reserve(config_.num_cells);
  Rng rng(config_.seed);
  for (size_t i = 0; i < config_.num_cells; ++i) {
    Rng cell_rng = rng.Fork("pack-cell", i);
    EcmParameters params = EcmParameters::Perturbed(
        EcmParameters{}, &cell_rng, config_.parameter_spread);
    cells_.emplace_back(params, config_.ambient_temperature_c);
  }
}

void SeriesPack::ResetState(double soc) {
  for (EcmCell& cell : cells_) cell.ResetState(soc);
}

double SeriesPack::Step(double current_a, double dt_seconds) {
  double pack_voltage = 0.0;
  for (EcmCell& cell : cells_) {
    pack_voltage += cell.Step(current_a, dt_seconds);
  }
  // Conductive neighbor coupling: heat flows down the temperature gradient.
  // Applied after the electric step with the same dt (explicit Euler).
  if (cells_.size() > 1 && config_.neighbor_coupling_w_per_k > 0.0) {
    std::vector<double> delta(cells_.size(), 0.0);
    for (size_t i = 0; i + 1 < cells_.size(); ++i) {
      double gradient =
          cells_[i].state().temperature_c - cells_[i + 1].state().temperature_c;
      double heat_w = config_.neighbor_coupling_w_per_k * gradient;
      double joules = heat_w * dt_seconds;
      delta[i] -= joules / cells_[i].parameters().thermal_mass_j_per_k;
      delta[i + 1] += joules / cells_[i + 1].parameters().thermal_mass_j_per_k;
    }
    for (size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].AdjustTemperature(delta[i]);
    }
  }
  return pack_voltage;
}

double SeriesPack::PackVoltage() const {
  double total = 0.0;
  for (const EcmCell& cell : cells_) total += cell.state().terminal_voltage;
  return total;
}

double SeriesPack::MinCellVoltage() const {
  double best = cells_.front().state().terminal_voltage;
  for (const EcmCell& cell : cells_) {
    best = std::min(best, cell.state().terminal_voltage);
  }
  return best;
}

double SeriesPack::MaxCellVoltage() const {
  double best = cells_.front().state().terminal_voltage;
  for (const EcmCell& cell : cells_) {
    best = std::max(best, cell.state().terminal_voltage);
  }
  return best;
}

double SeriesPack::MeanSoc() const {
  double total = 0.0;
  for (const EcmCell& cell : cells_) total += cell.state().soc;
  return total / static_cast<double>(cells_.size());
}

double SeriesPack::TemperatureSpread() const {
  double low = cells_.front().state().temperature_c;
  double high = low;
  for (const EcmCell& cell : cells_) {
    low = std::min(low, cell.state().temperature_c);
    high = std::max(high, cell.state().temperature_c);
  }
  return high - low;
}

size_t SeriesPack::WeakestCell() const {
  size_t weakest = 0;
  for (size_t i = 1; i < cells_.size(); ++i) {
    if (cells_[i].state().terminal_voltage <
        cells_[weakest].state().terminal_voltage) {
      weakest = i;
    }
  }
  return weakest;
}

}  // namespace mmm
