#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace mmm {

float MSELoss::Forward(const Tensor& prediction, const Tensor& target) {
  MMM_DCHECK(prediction.shape() == target.shape());
  cached_diff_ = Sub(prediction, target);
  float acc = 0.0f;
  for (float d : cached_diff_.data()) acc += d * d;
  return acc / static_cast<float>(cached_diff_.numel());
}

Tensor MSELoss::Backward() {
  float scale = 2.0f / static_cast<float>(cached_diff_.numel());
  return Scale(cached_diff_, scale);
}

float CrossEntropyLoss::Forward(const Tensor& prediction, const Tensor& target) {
  MMM_DCHECK(prediction.ndim() == 2 && target.ndim() == 1);
  MMM_DCHECK(prediction.dim(0) == target.dim(0));
  cached_softmax_ = SoftmaxRows(prediction);
  cached_target_ = target;
  const size_t batch = prediction.dim(0);
  float loss = 0.0f;
  for (size_t i = 0; i < batch; ++i) {
    auto label = static_cast<size_t>(target.at(i));
    MMM_DCHECK(label < prediction.dim(1));
    loss -= std::log(std::max(cached_softmax_.at2(i, label), 1e-12f));
  }
  return loss / static_cast<float>(batch);
}

Tensor CrossEntropyLoss::Backward() {
  const size_t batch = cached_softmax_.dim(0);
  Tensor grad = cached_softmax_;
  for (size_t i = 0; i < batch; ++i) {
    auto label = static_cast<size_t>(cached_target_.at(i));
    grad.at2(i, label) -= 1.0f;
  }
  ScaleInPlace(&grad, 1.0f / static_cast<float>(batch));
  return grad;
}

}  // namespace mmm
