file(REMOVE_RECURSE
  "CMakeFiles/mmm_nn.dir/activations.cc.o"
  "CMakeFiles/mmm_nn.dir/activations.cc.o.d"
  "CMakeFiles/mmm_nn.dir/architecture.cc.o"
  "CMakeFiles/mmm_nn.dir/architecture.cc.o.d"
  "CMakeFiles/mmm_nn.dir/conv2d.cc.o"
  "CMakeFiles/mmm_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/mmm_nn.dir/init.cc.o"
  "CMakeFiles/mmm_nn.dir/init.cc.o.d"
  "CMakeFiles/mmm_nn.dir/linear.cc.o"
  "CMakeFiles/mmm_nn.dir/linear.cc.o.d"
  "CMakeFiles/mmm_nn.dir/loss.cc.o"
  "CMakeFiles/mmm_nn.dir/loss.cc.o.d"
  "CMakeFiles/mmm_nn.dir/metrics.cc.o"
  "CMakeFiles/mmm_nn.dir/metrics.cc.o.d"
  "CMakeFiles/mmm_nn.dir/model.cc.o"
  "CMakeFiles/mmm_nn.dir/model.cc.o.d"
  "CMakeFiles/mmm_nn.dir/optimizer.cc.o"
  "CMakeFiles/mmm_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/mmm_nn.dir/sequential.cc.o"
  "CMakeFiles/mmm_nn.dir/sequential.cc.o.d"
  "CMakeFiles/mmm_nn.dir/trainer.cc.o"
  "CMakeFiles/mmm_nn.dir/trainer.cc.o.d"
  "libmmm_nn.a"
  "libmmm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
