#include <gtest/gtest.h>

#include <limits>

#include "storage/document_store.h"
#include "storage/env.h"
#include "storage/file_store.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::TempDir;

std::span<const uint8_t> AsBytes(std::string_view s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// ---------------------------------------------------------------------------
// Env implementations, exercised uniformly.

enum class EnvKind { kPosix, kInMemory };

class EnvSweep : public ::testing::TestWithParam<EnvKind> {
 protected:
  EnvSweep() : temp_("env") {
    if (GetParam() == EnvKind::kPosix) {
      env_ = Env::Default();
      root_ = temp_.path();
    } else {
      env_ = &in_memory_;
      root_ = "/mem";
      in_memory_.CreateDirs(root_).Check();
    }
  }

  TempDir temp_;
  InMemoryEnv in_memory_;
  Env* env_ = nullptr;
  std::string root_;
};

TEST_P(EnvSweep, WriteReadRoundTrip) {
  std::string path = root_ + "/file.bin";
  ASSERT_OK(env_->WriteFile(path, AsBytes("hello")));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> data, env_->ReadFile(path));
  EXPECT_EQ(std::string(data.begin(), data.end()), "hello");
}

TEST_P(EnvSweep, WriteOverwrites) {
  std::string path = root_ + "/file.bin";
  ASSERT_OK(env_->WriteFile(path, AsBytes("aaaa")));
  ASSERT_OK(env_->WriteFile(path, AsBytes("bb")));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> data, env_->ReadFile(path));
  EXPECT_EQ(data.size(), 2u);
}

TEST_P(EnvSweep, AppendAccumulates) {
  std::string path = root_ + "/log";
  ASSERT_OK(env_->AppendToFile(path, AsBytes("one;")));
  ASSERT_OK(env_->AppendToFile(path, AsBytes("two;")));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> data, env_->ReadFile(path));
  EXPECT_EQ(std::string(data.begin(), data.end()), "one;two;");
}

TEST_P(EnvSweep, EmptyFileRoundTrip) {
  std::string path = root_ + "/empty";
  ASSERT_OK(env_->WriteFile(path, {}));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> data, env_->ReadFile(path));
  EXPECT_TRUE(data.empty());
}

TEST_P(EnvSweep, MissingFileIsNotFound) {
  EXPECT_TRUE(env_->ReadFile(root_ + "/missing").status().IsNotFound());
  EXPECT_FALSE(env_->FileExists(root_ + "/missing").ValueOrDie());
}

TEST_P(EnvSweep, FileSizeAndExists) {
  std::string path = root_ + "/sized";
  ASSERT_OK(env_->WriteFile(path, AsBytes("12345")));
  EXPECT_TRUE(env_->FileExists(path).ValueOrDie());
  EXPECT_EQ(env_->FileSize(path).ValueOrDie(), 5u);
}

TEST_P(EnvSweep, ReadFileRange) {
  std::string path = root_ + "/ranged";
  ASSERT_OK(env_->WriteFile(path, AsBytes("0123456789")));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> mid, env_->ReadFileRange(path, 3, 4));
  EXPECT_EQ(std::string(mid.begin(), mid.end()), "3456");
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> all, env_->ReadFileRange(path, 0, 10));
  EXPECT_EQ(all.size(), 10u);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> none, env_->ReadFileRange(path, 5, 0));
  EXPECT_TRUE(none.empty());
}

TEST_P(EnvSweep, ReadFileRangePastEndFails) {
  std::string path = root_ + "/ranged2";
  ASSERT_OK(env_->WriteFile(path, AsBytes("abc")));
  EXPECT_TRUE(env_->ReadFileRange(path, 2, 5).status().IsOutOfRange());
  EXPECT_TRUE(env_->ReadFileRange(root_ + "/missing", 0, 1).status().IsNotFound());
}

// The unified ReadFileRange contract (env.h): bounds are checked overflow-
// safely, so an `offset + length` that wraps uint64 is OutOfRange instead
// of slipping past the end check.
TEST_P(EnvSweep, ReadFileRangeOverflowSafeBounds) {
  std::string path = root_ + "/ranged3";
  ASSERT_OK(env_->WriteFile(path, AsBytes("abc")));
  const uint64_t huge = std::numeric_limits<uint64_t>::max();
  EXPECT_TRUE(env_->ReadFileRange(path, huge, 2).status().IsOutOfRange());
  EXPECT_TRUE(env_->ReadFileRange(path, 2, huge).status().IsOutOfRange());
  EXPECT_TRUE(env_->ReadFileRange(path, huge, huge).status().IsOutOfRange());
  EXPECT_TRUE(env_->ReadFileRange(path, huge - 1, 2).status().IsOutOfRange());
}

// Zero-length reads succeed at every offset <= size — including exactly at
// EOF, which is what a StreamFile that consumed the whole file relies on —
// while offset > size is OutOfRange even when length == 0.
TEST_P(EnvSweep, ReadFileRangeZeroLengthContract) {
  std::string path = root_ + "/ranged4";
  ASSERT_OK(env_->WriteFile(path, AsBytes("abc")));
  for (uint64_t offset : {0u, 1u, 3u}) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> none,
                         env_->ReadFileRange(path, offset, 0));
    EXPECT_TRUE(none.empty()) << "offset " << offset;
  }
  EXPECT_TRUE(env_->ReadFileRange(path, 4, 0).status().IsOutOfRange());
  std::string empty_path = root_ + "/ranged-empty";
  ASSERT_OK(env_->WriteFile(empty_path, {}));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> none,
                       env_->ReadFileRange(empty_path, 0, 0));
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(env_->ReadFileRange(empty_path, 1, 0).status().IsOutOfRange());
}

TEST_P(EnvSweep, DeleteRemoves) {
  std::string path = root_ + "/gone";
  ASSERT_OK(env_->WriteFile(path, AsBytes("x")));
  ASSERT_OK(env_->DeleteFile(path));
  EXPECT_FALSE(env_->FileExists(path).ValueOrDie());
}

TEST_P(EnvSweep, ListDirSortsNames) {
  ASSERT_OK(env_->WriteFile(root_ + "/b", AsBytes("1")));
  ASSERT_OK(env_->WriteFile(root_ + "/a", AsBytes("2")));
  ASSERT_OK(env_->WriteFile(root_ + "/c", AsBytes("3")));
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> names, env_->ListDir(root_));
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

INSTANTIATE_TEST_SUITE_P(Envs, EnvSweep,
                         ::testing::Values(EnvKind::kPosix, EnvKind::kInMemory));

TEST(FaultInjectionEnvTest, FailsScheduledWrites) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  env.FailWritesAfter(2);
  EXPECT_OK(env.WriteFile("/a", AsBytes("1")));
  EXPECT_OK(env.WriteFile("/b", AsBytes("2")));
  EXPECT_TRUE(env.WriteFile("/c", AsBytes("3")).IsIOError());
  EXPECT_TRUE(env.AppendToFile("/d", AsBytes("4")).IsIOError());
  env.Heal();
  EXPECT_OK(env.WriteFile("/e", AsBytes("5")));
  EXPECT_EQ(env.write_count(), 5);
}

// The decorator inherits the ranged-read contract from its base env, so
// fault-injection sweeps exercise exactly the semantics production sees.
TEST(FaultInjectionEnvTest, RangeContractPassesThrough) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  ASSERT_OK(base.CreateDirs("/mem"));
  ASSERT_OK(env.WriteFile("/mem/f", AsBytes("abc")));
  const uint64_t huge = std::numeric_limits<uint64_t>::max();
  EXPECT_TRUE(env.ReadFileRange("/mem/f", huge, 2).status().IsOutOfRange());
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> none,
                       env.ReadFileRange("/mem/f", 3, 0));
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(env.ReadFileRange("/mem/f", 4, 0).status().IsOutOfRange());
}

// ---------------------------------------------------------------------------
// FileStore

TEST(FileStoreTest, PutGetRoundTrip) {
  InMemoryEnv env;
  FileStore store(&env, "/store");
  ASSERT_OK(store.Open());
  ASSERT_OK(store.PutString("blob", "payload"));
  EXPECT_EQ(store.GetString("blob").ValueOrDie(), "payload");
  EXPECT_TRUE(store.Exists("blob").ValueOrDie());
  EXPECT_FALSE(store.Exists("other").ValueOrDie());
}

TEST(FileStoreTest, RejectsBadNames) {
  InMemoryEnv env;
  FileStore store(&env, "/store");
  ASSERT_OK(store.Open());
  EXPECT_TRUE(store.PutString("", "x").IsInvalidArgument());
  EXPECT_TRUE(store.PutString("a/b", "x").IsInvalidArgument());
  EXPECT_TRUE(store.Get("../escape").status().IsInvalidArgument());
}

TEST(FileStoreTest, TracksStats) {
  InMemoryEnv env;
  FileStore store(&env, "/store");
  ASSERT_OK(store.Open());
  ASSERT_OK(store.PutString("a", "12345"));
  ASSERT_OK(store.PutString("b", "123"));
  store.Get("a").ValueOrDie();
  EXPECT_EQ(store.stats().write_ops, 2u);
  EXPECT_EQ(store.stats().bytes_written, 8u);
  EXPECT_EQ(store.stats().read_ops, 1u);
  EXPECT_EQ(store.stats().bytes_read, 5u);
  store.ResetStats();
  EXPECT_EQ(store.stats().write_ops, 0u);
}

TEST(FileStoreTest, ChargesLatencyToSimulatedClock) {
  InMemoryEnv env;
  SimulatedClock clock;
  StoreLatencyModel latency{1000, 2.0};  // 1 us + 2 ns/B
  FileStore store(&env, "/store", latency, &clock);
  ASSERT_OK(store.Open());
  ASSERT_OK(store.PutString("a", std::string(500, 'x')));
  EXPECT_EQ(clock.nanos(), 1000u + 1000u);
  store.Get("a").ValueOrDie();
  EXPECT_EQ(clock.nanos(), 2u * 2000u);
}

TEST(FileStoreTest, GetRangeAndSize) {
  InMemoryEnv env;
  SimulatedClock clock;
  FileStore store(&env, "/store", {1000, 1.0}, &clock);
  ASSERT_OK(store.Open());
  ASSERT_OK(store.PutString("blob", "abcdefghij"));
  EXPECT_EQ(store.Size("blob").ValueOrDie(), 10u);
  uint64_t before = clock.nanos();
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> range, store.GetRange("blob", 2, 3));
  EXPECT_EQ(std::string(range.begin(), range.end()), "cde");
  // Ranged reads are charged only for the bytes moved.
  EXPECT_EQ(clock.nanos() - before, 1000u + 3u);
  EXPECT_TRUE(store.GetRange("blob", 8, 5).status().IsOutOfRange());
}

// OpenStream is cost-model-equivalent to Get: one read op and the full
// byte count charged at open, no extra charge per window — so flipping a
// read path between the two leaves StoreStats and the simulated clock
// identical.
TEST(FileStoreTest, OpenStreamMatchesGetAccounting) {
  InMemoryEnv env;
  SimulatedClock clock;
  FileStore store(&env, "/store", {1000, 2.0}, &clock);
  ASSERT_OK(store.Open());
  std::string payload(1000, 'x');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + i % 26);
  }
  ASSERT_OK(store.PutString("blob", payload));

  StoreStats before = store.stats();
  uint64_t nanos_before = clock.nanos();
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> whole, store.Get("blob"));
  StoreStats get_delta = store.stats() - before;
  uint64_t get_nanos = clock.nanos() - nanos_before;

  before = store.stats();
  nanos_before = clock.nanos();
  ASSERT_OK_AND_ASSIGN(StreamFile stream, store.OpenStream("blob", 64));
  EXPECT_EQ(stream.size(), payload.size());
  std::vector<uint8_t> streamed;
  while (!stream.done()) {
    ASSERT_OK_AND_ASSIGN(std::span<const uint8_t> window, stream.Next());
    EXPECT_LE(window.size(), 64u);
    streamed.insert(streamed.end(), window.begin(), window.end());
  }
  StoreStats stream_delta = store.stats() - before;
  uint64_t stream_nanos = clock.nanos() - nanos_before;

  EXPECT_EQ(streamed, whole);  // windows concatenate bit-exactly
  EXPECT_EQ(stream_delta.read_ops, get_delta.read_ops);
  EXPECT_EQ(stream_delta.bytes_read, get_delta.bytes_read);
  EXPECT_EQ(stream_nanos, get_nanos);

  // A drained stream keeps answering empty windows.
  ASSERT_OK_AND_ASSIGN(std::span<const uint8_t> after_eof, stream.Next());
  EXPECT_TRUE(after_eof.empty());
  // Missing names surface as NotFound, exactly like Get.
  EXPECT_TRUE(store.OpenStream("missing").status().IsNotFound());
  EXPECT_TRUE(store.Get("missing").status().IsNotFound());
}

TEST(FileStoreTest, ListsBlobs) {
  InMemoryEnv env;
  FileStore store(&env, "/store");
  ASSERT_OK(store.Open());
  ASSERT_OK(store.PutString("z", "1"));
  ASSERT_OK(store.PutString("a", "2"));
  EXPECT_EQ(store.List().ValueOrDie(), (std::vector<std::string>{"a", "z"}));
  ASSERT_OK(store.Delete("a"));
  EXPECT_EQ(store.List().ValueOrDie(), (std::vector<std::string>{"z"}));
}

// ---------------------------------------------------------------------------
// DocumentStore

JsonValue MakeDoc(const std::string& id, int value) {
  JsonValue doc = JsonValue::Object();
  doc.Set("_id", id);
  doc.Set("value", value);
  return doc;
}

TEST(DocumentStoreTest, InsertGetRoundTrip) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  ASSERT_OK(store.Open());
  ASSERT_OK(store.Insert("sets", MakeDoc("s1", 7)));
  ASSERT_OK_AND_ASSIGN(JsonValue doc, store.Get("sets", "s1"));
  EXPECT_EQ(doc.GetInt64("value").ValueOrDie(), 7);
}

TEST(DocumentStoreTest, RequiresObjectWithId) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  ASSERT_OK(store.Open());
  EXPECT_TRUE(store.Insert("c", JsonValue(3)).IsInvalidArgument());
  JsonValue no_id = JsonValue::Object();
  no_id.Set("x", 1);
  EXPECT_TRUE(store.Insert("c", no_id).IsInvalidArgument());
}

TEST(DocumentStoreTest, RejectsDuplicateIds) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  ASSERT_OK(store.Open());
  ASSERT_OK(store.Insert("c", MakeDoc("dup", 1)));
  EXPECT_TRUE(store.Insert("c", MakeDoc("dup", 2)).IsAlreadyExists());
  // Same id in a different collection is fine.
  EXPECT_OK(store.Insert("d", MakeDoc("dup", 3)));
}

TEST(DocumentStoreTest, GetMissing) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  ASSERT_OK(store.Open());
  EXPECT_TRUE(store.Get("nope", "x").status().IsNotFound());
  ASSERT_OK(store.Insert("c", MakeDoc("a", 1)));
  EXPECT_TRUE(store.Get("c", "missing").status().IsNotFound());
}

TEST(DocumentStoreTest, FindByFieldEquality) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  ASSERT_OK(store.Open());
  for (int i = 0; i < 5; ++i) {
    JsonValue doc = MakeDoc("m" + std::to_string(i), i);
    doc.Set("set_id", i < 3 ? "s1" : "s2");
    ASSERT_OK(store.Insert("models", doc));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<JsonValue> found,
                       store.Find("models", "set_id", JsonValue("s1")));
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0].GetString("_id").ValueOrDie(), "m0");
  EXPECT_EQ(found[2].GetString("_id").ValueOrDie(), "m2");
}

TEST(DocumentStoreTest, AllAndCount) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  ASSERT_OK(store.Open());
  EXPECT_EQ(store.Count("c"), 0u);
  ASSERT_OK(store.Insert("c", MakeDoc("a", 1)));
  ASSERT_OK(store.Insert("c", MakeDoc("b", 2)));
  EXPECT_EQ(store.Count("c"), 2u);
  EXPECT_EQ(store.All("c").ValueOrDie().size(), 2u);
  EXPECT_EQ(store.Collections(), (std::vector<std::string>{"c"}));
}

TEST(DocumentStoreTest, PersistsAcrossReopen) {
  InMemoryEnv env;
  {
    DocumentStore store(&env, "/wal");
    ASSERT_OK(store.Open());
    ASSERT_OK(store.Insert("sets", MakeDoc("s1", 1)));
    ASSERT_OK(store.Insert("models", MakeDoc("m1", 2)));
  }
  DocumentStore reopened(&env, "/wal");
  ASSERT_OK(reopened.Open());
  EXPECT_EQ(reopened.Get("sets", "s1").ValueOrDie().GetInt64("value").ValueOrDie(),
            1);
  EXPECT_EQ(reopened.Count("models"), 1u);
  // Duplicate detection survives reopen.
  EXPECT_TRUE(reopened.Insert("sets", MakeDoc("s1", 9)).IsAlreadyExists());
}

TEST(DocumentStoreTest, TornTailIsDroppedOnRecovery) {
  InMemoryEnv env;
  {
    DocumentStore store(&env, "/wal");
    ASSERT_OK(store.Open());
    ASSERT_OK(store.Insert("c", MakeDoc("a", 1)));
    ASSERT_OK(store.Insert("c", MakeDoc("b", 2)));
  }
  // Simulate a crash mid-append: an incomplete record without a newline.
  std::string torn = R"({"collection":"c","doc":{"_id":"cc","va)";
  ASSERT_OK(env.AppendToFile(
      "/wal", {reinterpret_cast<const uint8_t*>(torn.data()), torn.size()}));
  DocumentStore recovered(&env, "/wal");
  ASSERT_OK(recovered.Open());
  EXPECT_EQ(recovered.Count("c"), 2u);  // torn record dropped
  EXPECT_TRUE(recovered.Get("c", "cc").status().IsNotFound());
  // The store accepts new writes after recovery.
  EXPECT_OK(recovered.Insert("c", MakeDoc("d", 3)));
}

TEST(DocumentStoreTest, MidFileGarbageStillFailsOpen) {
  InMemoryEnv env;
  std::string wal = "garbage line\n";
  JsonValue record = JsonValue::Object();
  record.Set("collection", "c");
  record.Set("doc", MakeDoc("a", 1));
  wal += record.Dump() + "\n";
  ASSERT_OK(env.WriteFile(
      "/wal", {reinterpret_cast<const uint8_t*>(wal.data()), wal.size()}));
  DocumentStore store(&env, "/wal");
  EXPECT_TRUE(store.Open().IsCorruption());
}

TEST(DocumentStoreTest, CompactShrinksWalAndPreservesState) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  ASSERT_OK(store.Open());
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(store.Insert("c", MakeDoc("d" + std::to_string(i), i)));
  }
  for (int i = 0; i < 15; ++i) {
    ASSERT_OK(store.Remove("c", "d" + std::to_string(i)));
  }
  uint64_t before = store.WalBytes().ValueOrDie();
  ASSERT_OK(store.Compact());
  uint64_t after = store.WalBytes().ValueOrDie();
  EXPECT_LT(after, before / 2);
  EXPECT_EQ(store.Count("c"), 5u);

  // The compacted log reloads to the same state.
  DocumentStore reopened(&env, "/wal");
  ASSERT_OK(reopened.Open());
  EXPECT_EQ(reopened.Count("c"), 5u);
  EXPECT_EQ(reopened.Get("c", "d17").ValueOrDie().GetInt64("value").ValueOrDie(),
            17);
  EXPECT_TRUE(reopened.Get("c", "d3").status().IsNotFound());
}

TEST(DocumentStoreTest, CompactEmptyStoreWritesEmptyWal) {
  InMemoryEnv env;
  DocumentStore store(&env, "/wal");
  ASSERT_OK(store.Open());
  ASSERT_OK(store.Compact());
  EXPECT_EQ(store.WalBytes().ValueOrDie(), 0u);
}

TEST(DocumentStoreTest, CorruptWalFailsOpen) {
  InMemoryEnv env;
  std::string garbage = "not json\n";
  ASSERT_OK(env.WriteFile("/wal", {reinterpret_cast<const uint8_t*>(garbage.data()),
                                   garbage.size()}));
  DocumentStore store(&env, "/wal");
  EXPECT_TRUE(store.Open().IsCorruption());
}

TEST(DocumentStoreTest, ChargesLatencyPerOperation) {
  InMemoryEnv env;
  SimulatedClock clock;
  StoreLatencyModel latency{10000, 0.0};
  DocumentStore store(&env, "/wal", latency, &clock);
  ASSERT_OK(store.Open());
  ASSERT_OK(store.Insert("c", MakeDoc("a", 1)));
  store.Get("c", "a").ValueOrDie();
  EXPECT_EQ(clock.nanos(), 20000u);
}

TEST(StoreStatsTest, Arithmetic) {
  StoreStats a{10, 5, 100, 50};
  StoreStats b{4, 2, 40, 20};
  StoreStats diff = a - b;
  EXPECT_EQ(diff.write_ops, 6u);
  EXPECT_EQ(diff.bytes_read, 30u);
  StoreStats sum = a + b;
  EXPECT_EQ(sum.write_ops, 14u);
  EXPECT_EQ(sum.bytes_written, 140u);
}

}  // namespace
}  // namespace mmm
