#ifndef MMM_CORE_STREAMING_H_
#define MMM_CORE_STREAMING_H_

#include <memory>
#include <string>

#include "core/set_codec.h"

namespace mmm {

/// \brief Streams a Baseline-format full snapshot one model at a time.
///
/// The in-memory save path (BaselineApproach::SaveInitial) materializes the
/// whole parameter blob — ~100 MB for the paper's 5000-model fleet, but
/// prohibitive for the "n >> 1000" deployments the paper motivates when n
/// reaches the hundreds of thousands. The streaming writer appends each
/// model's parameters directly to the file store and keeps only O(1) state
/// (a running CRC), producing a byte-identical artifact that every reader
/// (full recovery, ranged selective recovery, validation) handles
/// unchanged.
///
/// \code
///   MMM_ASSIGN_OR_RETURN(auto writer,
///       StreamingSnapshotWriter::Begin(context, spec, fleet_size));
///   for (...) MMM_RETURN_NOT_OK(writer->Append(NextModelStateDict()));
///   MMM_ASSIGN_OR_RETURN(SaveResult saved, writer->Finish());
/// \endcode
///
/// The fleet size must be known up front (it defines the blob header).
/// Streaming composes with every reader but not with blob compression
/// (Begin rejects a context with a codec configured).
class StreamingSnapshotWriter {
 public:
  /// Starts a streaming save of exactly `num_models` models.
  static Result<std::unique_ptr<StreamingSnapshotWriter>> Begin(
      const StoreContext& context, const ArchitectureSpec& spec,
      size_t num_models);

  /// Appends the next model. Keys/shapes must match the architecture.
  Status Append(const StateDict& model);

  /// Writes the CRC footer, the architecture blob, and the set document.
  /// Fails unless exactly `num_models` models were appended. The writer is
  /// unusable afterwards.
  Result<SaveResult> Finish();

  /// The id the set will be saved under.
  const std::string& set_id() const { return set_id_; }
  size_t appended() const { return appended_; }

 private:
  StreamingSnapshotWriter(const StoreContext& context, ArchitectureSpec spec,
                          size_t num_models, std::string set_id);

  StoreContext context_;
  ArchitectureSpec spec_;
  ParamLayout layout_;
  size_t params_per_model_;
  size_t num_models_;
  std::string set_id_;
  std::string blob_name_;
  size_t appended_ = 0;
  uint32_t crc_ = 0;
  bool finished_ = false;
  StatsCapture capture_;
};

}  // namespace mmm

#endif  // MMM_CORE_STREAMING_H_
