// Fixture: suppressed direct writes lint clean.
struct Env;

int Save(Env* env) {
  // MMMLINT(direct-env-write): fixture writes a debug dump, not a save blob
  int s = env->WriteFile("blob", "payload");
  if (s != 0) return s;
  // MMMLINT(direct-env-write): fixture appends outside the commit protocol
  s = env->AppendToFile("manifest", "entry");
  return s;
}
