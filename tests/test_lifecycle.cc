#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/gc.h"
#include "core/streaming.h"
#include "nn/metrics.h"
#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

// End-to-end lifecycle: commission a fleet (streamed), run update cycles
// under every approach, retire old versions, compact, reopen, and analyse a
// single cell — the full deployment story of the paper plus this
// repository's extensions, in one test.
TEST(LifecycleTest, FullDeploymentStory) {
  TempDir temp("lifecycle");
  ScenarioConfig config = ScenarioConfig::Battery(24);
  config.samples_per_dataset = 48;
  MultiModelScenario scenario(config);
  ASSERT_OK(scenario.Init());

  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.resolver = &scenario;
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));

  // --- Commissioning: stream the initial fleet into a baseline snapshot.
  ASSERT_OK_AND_ASSIGN(auto writer,
                       StreamingSnapshotWriter::Begin(
                           manager->context(), config.spec, 24));
  for (const StateDict& model : scenario.current_set().models) {
    ASSERT_OK(writer->Append(model));
  }
  ASSERT_OK_AND_ASSIGN(SaveResult commissioned, writer->Finish());

  // --- Deployment: three update cycles archived with the Update approach,
  // seeded from the streamed snapshot's models.
  ASSERT_OK_AND_ASSIGN(ModelSet seeded, manager->Recover(commissioned.set_id));
  ASSERT_OK_AND_ASSIGN(SaveResult u1,
                       manager->SaveInitial(ApproachType::kUpdate, seeded));
  std::vector<std::string> versions{u1.set_id};
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
    update.base_set_id = versions.back();
    ASSERT_OK_AND_ASSIGN(
        SaveResult saved,
        manager->SaveDerived(ApproachType::kUpdate, scenario.current_set(),
                             update));
    versions.push_back(saved.set_id);
  }

  // --- Incident analysis: selectively recover one cell's history.
  size_t cell = 11;
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> now,
                       manager->RecoverModels(versions.back(), {cell}));
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> commissioned_state,
                       manager->RecoverModels(commissioned.set_id, {cell}));
  ASSERT_EQ(now.size(), 1u);
  ASSERT_EQ(commissioned_state.size(), 1u);
  EXPECT_TRUE(commissioned_state[0][0].second.Equals(seeded.models[cell][0].second));
  EXPECT_TRUE(
      now[0][0].second.Equals(scenario.current_set().models[cell][0].second));

  // The current model genuinely beats the commissioned one on fresh data
  // when the cell was updated at least once; both must at least be finite.
  BatteryDataGenerator generator({config.seed, 128, 0.004, 1.0, 25.0});
  TrainingData fresh = generator.GenerateCellDataset(cell, 3, 0.97);
  Model current_model = Model::Create(config.spec).ValueOrDie();
  ASSERT_OK(current_model.LoadStateDict(now[0]));
  ASSERT_OK_AND_ASSIGN(double rmse,
                       Rmse(current_model.Predict(fresh.inputs), fresh.targets));
  EXPECT_LT(rmse, 10.0);

  // --- Retention: keep only the newest chain, drop the streamed snapshot.
  ASSERT_OK_AND_ASSIGN(DeleteReport gc,
                       RetainOnly(manager->context(), {versions.back()}));
  EXPECT_EQ(gc.sets_deleted, 1u);  // the commissioned snapshot
  ASSERT_OK_AND_ASSIGN(uint64_t wal_before,
                       manager->doc_store()->WalBytes());
  ASSERT_OK(manager->CompactStore());
  ASSERT_OK_AND_ASSIGN(uint64_t wal_after, manager->doc_store()->WalBytes());
  EXPECT_LT(wal_after, wal_before);

  // --- The store survives a reopen with full integrity.
  ASSERT_OK_AND_ASSIGN(auto reopened, ModelSetManager::Open(options));
  ASSERT_OK_AND_ASSIGN(StoreValidationReport health, reopened->ValidateStore());
  EXPECT_TRUE(health.ok()) << (health.problems.empty()
                                   ? ""
                                   : health.problems.front());
  ASSERT_OK_AND_ASSIGN(ModelSet final_state,
                       reopened->Recover(versions.back()));
  for (size_t m = 0; m < final_state.models.size(); ++m) {
    for (size_t p = 0; p < final_state.models[m].size(); ++p) {
      ASSERT_TRUE(final_state.models[m][p].second.Equals(
          scenario.current_set().models[m][p].second));
    }
  }
  EXPECT_TRUE(reopened->Recover(commissioned.set_id).status().IsNotFound());
}

}  // namespace
}  // namespace mmm
