#include "workload/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "nn/trainer.h"
#include "prov/pipeline.h"

namespace mmm {
namespace {

BatteryDataConfig MakeBatteryDataConfig(const ScenarioConfig& config) {
  BatteryDataConfig data_config;
  data_config.seed = config.seed;
  data_config.samples_per_cycle = config.samples_per_dataset;
  return data_config;
}

}  // namespace

ScenarioConfig ScenarioConfig::Battery(size_t num_models) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kBattery;
  config.spec = Ffnn48Spec();
  config.num_models = num_models;
  config.partial_layers = {"fc3", "fc4"};
  return config;
}

ScenarioConfig ScenarioConfig::BatteryLarge(size_t num_models) {
  ScenarioConfig config = Battery(num_models);
  config.spec = Ffnn69Spec();
  return config;
}

ScenarioConfig ScenarioConfig::Cifar(size_t num_models) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kCifar;
  config.spec = CifarNetSpec();
  config.num_models = num_models;
  config.partial_layers = {"fc1"};
  config.samples_per_dataset = 48;
  config.batch_size = 16;
  config.learning_rate = 0.01f;
  return config;
}

MultiModelScenario::MultiModelScenario(ScenarioConfig config)
    : config_(std::move(config)),
      battery_gen_(MakeBatteryDataConfig(config_)),
      cifar_gen_(config_.seed) {}

Status MultiModelScenario::Init() {
  if (initialized_) return Status::InvalidArgument("scenario already initialized");
  MMM_ASSIGN_OR_RETURN(
      set_, MakeInitializedSet(config_.spec, config_.num_models, config_.seed));
  initialized_ = true;
  return Status::OK();
}

TrainPipelineSpec MultiModelScenario::PipelineForCycle(uint64_t cycle) const {
  TrainConfig train;
  train.epochs = config_.epochs;
  train.batch_size = config_.batch_size;
  train.learning_rate = config_.learning_rate;
  train.optimizer = "sgd";
  train.loss = config_.kind == ScenarioKind::kCifar ? "cross_entropy" : "mse";
  train.shuffle_seed = Rng::Mix64(config_.seed ^ (0xabcdef12345ULL + cycle));
  return TrainPipelineSpec::Create(train, CanonicalPipelineCode(train));
}

TrainingData MultiModelScenario::GenerateData(uint64_t model_index,
                                              uint64_t cycle) const {
  if (config_.kind == ScenarioKind::kCifar) {
    return cifar_gen_.Generate(model_index, cycle, config_.samples_per_dataset);
  }
  double soh =
      std::max(0.5, config_.initial_soh -
                        config_.soh_decrement * static_cast<double>(cycle));
  return battery_gen_.GenerateCellDataset(model_index, cycle, soh);
}

DatasetRef MultiModelScenario::MakeDatasetRef(uint64_t model_index,
                                              uint64_t cycle) const {
  DatasetRef ref;
  const char* scheme =
      config_.kind == ScenarioKind::kCifar ? "cifar://model" : "battery://cell";
  ref.uri = StringFormat("%s/%llu/cycle/%llu", scheme,
                         static_cast<unsigned long long>(model_index),
                         static_cast<unsigned long long>(cycle));
  ref.content_hash = HashTrainingData(GenerateData(model_index, cycle));
  return ref;
}

Result<TrainingData> MultiModelScenario::Resolve(const DatasetRef& ref) {
  // Parse "<scheme>://<entity>/<index>/cycle/<cycle>".
  std::vector<std::string> parts = Split(ref.uri, '/');
  // e.g. {"battery:", "", "cell", "17", "cycle", "2"}
  if (parts.size() != 6 || parts[4] != "cycle") {
    return Status::InvalidArgument("malformed dataset uri '", ref.uri, "'");
  }
  const char* expected_scheme =
      config_.kind == ScenarioKind::kCifar ? "cifar:" : "battery:";
  if (parts[0] != expected_scheme) {
    return Status::InvalidArgument("dataset uri '", ref.uri,
                                   "' does not match the scenario kind");
  }
  char* end = nullptr;
  uint64_t model_index = std::strtoull(parts[3].c_str(), &end, 10);
  if (end == parts[3].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad model index in uri '", ref.uri, "'");
  }
  uint64_t cycle = std::strtoull(parts[5].c_str(), &end, 10);
  if (end == parts[5].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad cycle in uri '", ref.uri, "'");
  }
  TrainingData data = GenerateData(model_index, cycle);
  if (!ref.content_hash.empty() &&
      HashTrainingData(data) != ref.content_hash) {
    return Status::Corruption("dataset '", ref.uri,
                              "' no longer matches its content hash");
  }
  return data;
}

Status MultiModelScenario::TrainOne(size_t model_index, UpdateKind kind,
                                    uint64_t cycle, std::string* content_hash) {
  TrainingData data = GenerateData(model_index, cycle);
  if (content_hash != nullptr) *content_hash = HashTrainingData(data);
  MMM_ASSIGN_OR_RETURN(Model model, Model::Create(config_.spec));
  MMM_RETURN_NOT_OK(model.LoadStateDict(set_.models[model_index]));
  TrainPipelineSpec pipeline = PipelineForCycle(cycle);
  TrainConfig train = pipeline.train_config;
  if (kind == UpdateKind::kPartial) {
    train.trainable_layers = config_.partial_layers;
  }
  MMM_ASSIGN_OR_RETURN(TrainReport report,
                       TrainModel(&model, data.inputs, data.targets, train));
  (void)report;
  set_.models[model_index] = model.GetStateDict();
  return Status::OK();
}

Result<ModelSetUpdateInfo> MultiModelScenario::AdvanceCycle() {
  if (!initialized_) {
    return Status::InvalidArgument("scenario not initialized");
  }
  ++cycle_;

  const size_t n = config_.num_models;
  auto count_full = static_cast<size_t>(
      std::llround(config_.full_update_fraction * static_cast<double>(n)));
  auto count_partial = static_cast<size_t>(
      std::llround(config_.partial_update_fraction * static_cast<double>(n)));
  count_full = std::min(count_full, n);
  count_partial = std::min(count_partial, n - count_full);

  // "only a subset of models has diverged significantly ... and needs
  // updating" (§4.1) — the subset is drawn fresh every cycle.
  Rng schedule_rng = Rng(config_.seed).Fork("update-schedule", cycle_);
  std::vector<size_t> order = schedule_rng.Permutation(n);

  ModelSetUpdateInfo info;
  info.kinds.assign(n, UpdateKind::kNone);
  info.data_refs.resize(n);
  info.pipeline = PipelineForCycle(cycle_);
  info.partial_layers = config_.partial_layers;

  for (size_t i = 0; i < count_full + count_partial; ++i) {
    size_t model_index = order[i];
    UpdateKind kind = i < count_full ? UpdateKind::kFull : UpdateKind::kPartial;
    info.kinds[model_index] = kind;
    DatasetRef ref;
    MMM_RETURN_NOT_OK(TrainOne(model_index, kind, cycle_, &ref.content_hash));
    const char* scheme =
        config_.kind == ScenarioKind::kCifar ? "cifar://model" : "battery://cell";
    ref.uri = StringFormat("%s/%llu/cycle/%llu", scheme,
                           static_cast<unsigned long long>(model_index),
                           static_cast<unsigned long long>(cycle_));
    info.data_refs[model_index] = std::move(ref);
  }
  return info;
}

}  // namespace mmm
