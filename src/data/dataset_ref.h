#ifndef MMM_DATA_DATASET_REF_H_
#define MMM_DATA_DATASET_REF_H_

#include <string>

#include "common/result.h"
#include "serialize/json.h"
#include "data/dataset.h"

namespace mmm {

/// \brief A reference to training data stored outside the model-management
/// system.
///
/// Optimization opportunity O2 (paper §3.1): "the training data is often
/// saved regardless of the model management", so the Provenance approach
/// persists one small reference per model instead of a dataset snapshot.
/// The reference carries a content hash so recovery can detect that the
/// externally stored data changed since the save.
struct DatasetRef {
  /// Locator understood by a DatasetResolver
  /// (e.g. "battery://cell/17/cycle/2").
  std::string uri;
  /// Hex SHA-256 of the dataset's canonical byte encoding ("" = unchecked).
  std::string content_hash;

  JsonValue ToJson() const;
  static Result<DatasetRef> FromJson(const JsonValue& json);

  bool operator==(const DatasetRef& other) const = default;
};

/// Canonical content hash of a dataset (hashes shapes and raw float bytes of
/// inputs then targets).
std::string HashTrainingData(const TrainingData& data);

/// \brief Resolves DatasetRefs back to data during Provenance recovery.
///
/// Implementations wrap whatever external system owns the data; in this
/// repository the scenario generators (battery, CIFAR) act as the external
/// system because their output is deterministic in the URI.
class DatasetResolver {
 public:
  virtual ~DatasetResolver() = default;

  /// Fetches the referenced dataset. Implementations must verify
  /// `ref.content_hash` when it is non-empty and fail with Corruption on
  /// mismatch.
  virtual Result<TrainingData> Resolve(const DatasetRef& ref) = 0;
};

}  // namespace mmm

#endif  // MMM_DATA_DATASET_REF_H_
