#ifndef MMM_CLUSTER_SHARD_ROUTER_H_
#define MMM_CLUSTER_SHARD_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mmm {

/// \brief Consistent-hash ring placing set ids on shards.
///
/// Each shard contributes `virtual_nodes` points to a 64-bit ring; a set id
/// is owned by the shard whose point is the first at or after the id's hash
/// (wrapping). Placement is fully deterministic — points and key hashes are
/// SHA-256 prefixes of stable strings — so two routers built from the same
/// shard list agree on every id, across processes and reopens.
///
/// Movement bounds (the reason for a ring instead of `hash % N`):
///  - AddShard / RemoveShard relocate only the ids whose owning arc changed:
///    ~K/N of K ids on average for N shards (virtual nodes keep the variance
///    small).
///  - ReplaceShard relocates *nothing*: the replacement inherits the dead
///    shard's ring points via its ring key, so failover rewrites the ring
///    without moving a single id. The ring key is persisted in the cluster
///    manifest so a reopened coordinator rebuilds the identical ring even
///    after generations of failovers.
///
/// Not thread-safe; the Coordinator guards it with its topology lock.
class ShardRouter {
 public:
  explicit ShardRouter(size_t virtual_nodes = 64);

  /// Adds a shard whose points derive from its own name.
  Status AddShard(const std::string& name);

  /// Adds a shard whose points derive from `ring_key` — used when
  /// rebuilding a ring from a manifest that recorded failover renames.
  Status AddShardWithKey(const std::string& name, const std::string& ring_key);

  /// Removes a shard and its points. Ids it owned spread over the
  /// remaining shards' arcs.
  Status RemoveShard(const std::string& name);

  /// Renames a shard in place: `new_name` inherits every point of
  /// `old_name` (same ring key), so ownership of every id is unchanged.
  Status ReplaceShard(const std::string& old_name, const std::string& new_name);

  /// The shard owning `id`. InvalidArgument on an empty ring.
  Result<std::string> OwnerOf(const std::string& id) const;

  /// The ring key a shard's points derive from (== its name unless the
  /// shard replaced another). NotFound for unknown shards.
  Result<std::string> RingKeyOf(const std::string& name) const;

  /// Shard names, sorted.
  std::vector<std::string> Shards() const;

  size_t size() const { return ring_keys_.size(); }
  size_t virtual_nodes() const { return virtual_nodes_; }

 private:
  /// 64-bit ring position of a stable string (SHA-256 prefix, big-endian).
  static uint64_t HashPoint(const std::string& text);

  size_t virtual_nodes_;
  /// Ring point -> owning shard name.
  std::map<uint64_t, std::string> ring_;
  /// Shard name -> ring key its points derive from.
  std::map<std::string, std::string> ring_keys_;
};

}  // namespace mmm

#endif  // MMM_CLUSTER_SHARD_ROUTER_H_
