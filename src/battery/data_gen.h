#ifndef MMM_BATTERY_DATA_GEN_H_
#define MMM_BATTERY_DATA_GEN_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/normalizer.h"
#include "battery/ecm.h"

namespace mmm {

/// \brief Configuration of the battery training-data generator (paper §4.1).
struct BatteryDataConfig {
  uint64_t seed = 7;
  /// 1 Hz samples per generated discharge cycle. The paper uses 342 M samples
  /// over 352 cycles; we scale down (configurable) since only data *shape*
  /// affects the management-layer metrics.
  size_t samples_per_cycle = 512;
  /// Gaussian measurement noise on the voltage target, in volts ("we corrupt
  /// the data by adding measurement noise", §4.1).
  double voltage_noise_stddev = 0.004;
  double dt_seconds = 1.0;
  double ambient_temperature_c = 25.0;
};

/// \brief Generates per-cell training datasets from the 2nd-order ECM.
///
/// Feature layout (4 inputs, matching FFNN-48/69's input width):
///   0: discharge current I_t        [A]
///   1: cell temperature T_t         [degC]
///   2: state of charge SoC_t        [0..1]
///   3: previous current I_{t-1}     [A]  (captures polarization dynamics)
/// Target: terminal voltage V_t [V] (+ measurement noise).
///
/// Deterministic in (seed, cell_id, cycle, soh): the same inputs always
/// produce bit-identical datasets, which lets the Provenance approach treat
/// the generator as the externally-stored training data (DESIGN.md §1).
class BatteryDataGenerator {
 public:
  explicit BatteryDataGenerator(BatteryDataConfig config = {});

  /// Generates the dataset cell `cell_id` trains on at update cycle `cycle`
  /// with state of health `soh` (decremented by the workload every cycle to
  /// emulate aging). Features and targets are normalized.
  TrainingData GenerateCellDataset(uint64_t cell_id, uint64_t cycle,
                                   double soh) const;

  /// Generates the datasets of every cell in a series pack from a single
  /// coupled simulation: all cells see the pack's shared string current and
  /// exchange heat with their neighbors (battery/pack.h), so the per-cell
  /// voltage/temperature traces reflect pack inhomogeneities rather than
  /// isolated cells. `sohs` gives each cell's state of health and defines
  /// the pack size. Deterministic in (seed, pack_id, cycle, sohs).
  std::vector<TrainingData> GeneratePackDatasets(
      uint64_t pack_id, uint64_t cycle, const std::vector<double>& sohs) const;

  /// The fixed feature normalizer (part of the training pipeline).
  static FeatureNormalizer InputNormalizer();
  /// The fixed target normalizer.
  static FeatureNormalizer TargetNormalizer();

  const BatteryDataConfig& config() const { return config_; }

 private:
  BatteryDataConfig config_;
  EcmParameters base_parameters_;
};

}  // namespace mmm

#endif  // MMM_BATTERY_DATA_GEN_H_
