file(REMOVE_RECURSE
  "CMakeFiles/mmm_data.dir/cifar_synthetic.cc.o"
  "CMakeFiles/mmm_data.dir/cifar_synthetic.cc.o.d"
  "CMakeFiles/mmm_data.dir/dataset.cc.o"
  "CMakeFiles/mmm_data.dir/dataset.cc.o.d"
  "CMakeFiles/mmm_data.dir/dataset_ref.cc.o"
  "CMakeFiles/mmm_data.dir/dataset_ref.cc.o.d"
  "CMakeFiles/mmm_data.dir/normalizer.cc.o"
  "CMakeFiles/mmm_data.dir/normalizer.cc.o.d"
  "libmmm_data.a"
  "libmmm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
