#ifndef MMM_STORAGE_ENV_H_
#define MMM_STORAGE_ENV_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mmm {

/// \brief Filesystem abstraction (RocksDB-style Env).
///
/// The stores talk to the filesystem exclusively through an Env so tests can
/// substitute an in-memory implementation and failure-injection wrappers.
class Env {
 public:
  virtual ~Env() = default;

  /// Writes `data` to `path`, replacing any existing file.
  virtual Status WriteFile(const std::string& path,
                           std::span<const uint8_t> data) = 0;

  /// Appends `data` to `path`, creating the file if needed.
  virtual Status AppendToFile(const std::string& path,
                              std::span<const uint8_t> data) = 0;

  /// Reads the whole file.
  virtual Result<std::vector<uint8_t>> ReadFile(const std::string& path) = 0;

  /// Reads `length` bytes starting at `offset`. Fails with OutOfRange if the
  /// range extends past the end of the file.
  virtual Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                                     uint64_t offset,
                                                     uint64_t length) = 0;

  virtual Result<bool> FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Creates a directory and all missing parents.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Recursively removes a directory tree (no-op if absent).
  virtual Status RemoveDirs(const std::string& path) = 0;

  /// Lists regular files directly under `path` (names, not full paths),
  /// sorted lexicographically.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  /// The process-wide POSIX-filesystem Env.
  static Env* Default();
};

/// \brief Heap-backed Env for unit tests (no disk access). Thread-safe, so
/// it can stand in for the filesystem under the parallel write pipeline.
class InMemoryEnv : public Env {
 public:
  Status WriteFile(const std::string& path, std::span<const uint8_t> data) override;
  Status AppendToFile(const std::string& path,
                      std::span<const uint8_t> data) override;
  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                             uint64_t offset,
                                             uint64_t length) override;
  Result<bool> FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveDirs(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::vector<uint8_t>>> files_;
};

/// \brief Env decorator that fails the N-th write, for recovery tests.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// After this call, the `fail_after`-th subsequent write (0-based) and all
  /// later writes fail with IOError.
  void FailWritesAfter(int64_t fail_after) { fail_after_ = fail_after; }
  /// Clears the failure plan.
  void Heal() { fail_after_ = -1; }

  int64_t write_count() const { return write_count_.load(); }

  Status WriteFile(const std::string& path, std::span<const uint8_t> data) override;
  Status AppendToFile(const std::string& path,
                      std::span<const uint8_t> data) override;
  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                             uint64_t offset,
                                             uint64_t length) override;
  Result<bool> FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveDirs(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  Status MaybeFail();

  Env* base_;
  int64_t fail_after_ = -1;
  /// Atomic so batched writes racing through parallel lanes count exactly.
  std::atomic<int64_t> write_count_ = 0;
};

}  // namespace mmm

#endif  // MMM_STORAGE_ENV_H_
