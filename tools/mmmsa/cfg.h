#ifndef MMM_TOOLS_MMMSA_CFG_H_
#define MMM_TOOLS_MMMSA_CFG_H_

#include <vector>

#include "parser.h"

/// \file
/// Intra-procedural control-flow graph built over the mmmsa statement tree.
///
/// Nodes are statements (conditions get their own node; bodies hang off
/// them); edges are fall-through, branch, loop back-edge, and break/continue
/// jumps. One synthetic exit node (`Cfg::exit`, with a null stmt) collects
/// every way out of the function: explicit `return` statements edge into it
/// and so does falling off the end.
///
/// Deliberate simplification: `MMM_RETURN_NOT_OK` / `MMM_ASSIGN_OR_RETURN`
/// hide an early return inside a plain statement, but those macro returns
/// forward their Status, so for the Status-drop analysis they are never a
/// drop site — modelling them as straight-line code avoids a false "dropped
/// on early return" at every macro use while losing nothing we report on.

namespace mmmsa {

struct CfgNode {
  const Stmt* stmt = nullptr;  ///< null only for the synthetic exit node
  std::vector<int> succs;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = -1;  ///< -1 when the function body is empty
  int exit = -1;   ///< always valid
};

/// Builds the CFG for one function body.
Cfg BuildCfg(const std::vector<Stmt>& body);

}  // namespace mmmsa

#endif  // MMM_TOOLS_MMMSA_CFG_H_
