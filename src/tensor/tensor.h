#ifndef MMM_TENSOR_TENSOR_H_
#define MMM_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"

namespace mmm {

/// Row-major tensor shape.
using Shape = std::vector<size_t>;

/// \brief Dense row-major float32 tensor.
///
/// The numeric foundation of the NN substrate. Deliberately simple: always
/// contiguous, always float32 (the paper's models are float32 — "4 Byte
/// floats", §4.2), deep-copy semantics. Shape violations are programmer
/// errors and abort via MMM_DCHECK; fallible I/O lives in
/// tensor/tensor_serialize.h and returns Status.
class Tensor {
 public:
  /// Constructs an empty (0-element, 0-dim) tensor.
  Tensor() = default;

  /// Constructs a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Constructs from explicit data; `data.size()` must match the shape.
  Tensor(Shape shape, std::vector<float> data);

  /// \name Factories
  /// @{
  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  /// 1-D tensor from values.
  static Tensor FromVector(std::vector<float> values);
  /// @}

  const Shape& shape() const { return shape_; }
  size_t ndim() const { return shape_.size(); }
  /// Total number of elements.
  size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Size of dimension `dim`.
  size_t dim(size_t d) const {
    MMM_DCHECK(d < shape_.size());
    return shape_[d];
  }

  std::span<const float> data() const { return data_; }
  std::span<float> mutable_data() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  /// \name Element access (row-major).
  /// @{
  float& at(size_t i) {
    MMM_DCHECK(i < data_.size());
    return data_[i];
  }
  float at(size_t i) const {
    MMM_DCHECK(i < data_.size());
    return data_[i];
  }
  float& at2(size_t i, size_t j) {
    MMM_DCHECK(ndim() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  float at2(size_t i, size_t j) const {
    MMM_DCHECK(ndim() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  float& at4(size_t n, size_t c, size_t h, size_t w) {
    MMM_DCHECK(ndim() == 4);
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at4(size_t n, size_t c, size_t h, size_t w) const {
    MMM_DCHECK(ndim() == 4);
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  /// @}

  /// Returns a tensor with the same data and a new shape of equal numel.
  Tensor Reshape(Shape new_shape) const;

  /// Fills every element with `value`.
  void Fill(float value);

  /// Exact bitwise equality of shape and data.
  bool Equals(const Tensor& other) const;

  /// True when shapes match and elements differ by at most `atol`.
  bool AllClose(const Tensor& other, float atol = 1e-6f) const;

  /// "[2x3] {1, 2, 3, ...}" (first 8 elements).
  std::string ToString() const;

  /// Number of elements implied by a shape.
  static size_t NumElements(const Shape& shape);

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace mmm

#endif  // MMM_TENSOR_TENSOR_H_
