#ifndef MMM_FLEET_SIMULATOR_H_
#define MMM_FLEET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/inspect.h"
#include "fleet/content.h"
#include "fleet/plan.h"

namespace mmm {

/// \brief World configuration a fleet plan is replayed against.
struct FleetSimOptions {
  /// 0 = un-sharded world (ModelSetManager + ModelSetService);
  /// >= 1 = Coordinator cluster with that many shards.
  size_t shards = 0;
  /// Service worker lanes (ModelSetServiceOptions::workers). Oracle verdicts
  /// are identical at any worker count: the oracles compare recovered bytes,
  /// inventories, depths, and pins — never scheduling-dependent statistics.
  /// The recover_modeled_nanos measurement is the one exception: which
  /// request warms the shared layer cache first depends on worker
  /// scheduling, so that stream is byte-identical across reruns only at
  /// workers = 1; its length (one entry per served recovery) and every
  /// other report field are invariant at any worker count.
  size_t workers = 1;
  /// Store write-pipeline lanes (StorePipelineOptions::lanes).
  size_t lanes = 1;
  bool cache_enabled = true;
  /// Generous by default so pin admission never fails on capacity (pin
  /// outcomes stay deterministic across cache configurations).
  uint64_t cache_capacity_bytes = 256ull << 20;
  /// Content-addressed chunk store (cas/cas_store.h). Off by default; when
  /// enabled the run adds a chunk-refcount oracle after every executed op:
  /// the shadow's per-set chunk ownership (observed from the manifests each
  /// save/compaction wrote) summed over live sets must equal the CAS index's
  /// refcount snapshot AND the literal `cas-` listing of the file store —
  /// GC must decrement exactly the dead sets' references and sweep exactly
  /// the zero-ref chunks. The oracle runs in un-sharded worlds; sharded
  /// runs still open every shard with CAS and audit it through fsck.
  CasOptions cas;
  /// Arm FaultInjectionEnv crash points around saves: a deterministic
  /// per-ordinal draw decides whether a save crashes mid-commit, after which
  /// the world is healed, reopened (journal replay), checked fsck-clean, and
  /// the shadow model reconciled against the store's surviving inventory.
  bool inject_crashes = false;
  uint64_t crash_seed = 17;
  /// Percent of saves armed to crash when inject_crashes is set.
  uint64_t crash_percent = 35;
  /// Writes into the commit a crash point may land on (drawn per ordinal).
  /// Must stay near a save's actual write count — a point past the commit's
  /// last write never fires and the armed save simply succeeds.
  uint64_t crash_window = 6;
  /// Recover and bit-verify every live set at every checkpoint (the
  /// strongest oracle; disable for cheap, long horizons).
  bool deep_checkpoints = true;
  /// Test hook for the minimizer suite: called after each executed op; a
  /// non-empty return is recorded as a synthetic oracle violation.
  std::function<std::string(const FleetOp& op, size_t step)> synthetic_fault;
};

/// \brief One oracle violation (or hard execution error) at a trace step.
struct FleetProblem {
  /// Index into the op sequence the run executed.
  size_t step = 0;
  /// Canonical rendering of the offending op.
  std::string op;
  std::string detail;
};

/// \brief Outcome of replaying one op sequence.
struct FleetRunReport {
  /// First (and only — the run stops there) violation, empty when clean.
  std::vector<FleetProblem> problems;
  bool ok() const { return problems.empty(); }
  /// Step index of the first problem; SIZE_MAX when clean.
  size_t failing_step = static_cast<size_t>(-1);

  size_t ops_executed = 0;
  /// Ops skipped because a referenced ordinal was unbound or dead (the
  /// minimizer's subsequences make this normal, as do crash rollbacks).
  size_t ops_skipped = 0;
  uint64_t saves = 0;
  uint64_t recoveries = 0;
  uint64_t deletes = 0;
  uint64_t retains = 0;
  uint64_t compactions = 0;
  uint64_t crashes_injected = 0;
  uint64_t failovers = 0;
  uint64_t shards_added = 0;
  uint64_t rebalances = 0;
  uint64_t live_sets_final = 0;

  /// Modeled store nanos of every served recovery, in request order —
  /// exact at any worker count, so reruns compare these verbatim.
  std::vector<uint64_t> recover_modeled_nanos;

  /// Storage trajectory, sampled at checkpoints.
  struct StorageSample {
    size_t step = 0;
    uint64_t live_sets = 0;
    /// Sum of live sets' file-store artifact bytes.
    uint64_t artifact_bytes = 0;
    /// Bytes and count of the full-snapshot subset (the bench derives the
    /// storage ratio vs an all-snapshots store from these).
    uint64_t full_artifact_bytes = 0;
    uint64_t full_sets = 0;
  };
  std::vector<StorageSample> storage;
};

/// \brief Replays fleet plans against a real serving world under invariant
/// oracles.
///
/// The world is built fresh (in-memory env, optionally behind fault
/// injection) at the start of every Run/RunOps, driven one op at a time, and
/// kept alive afterwards for inspection. A lightweight shadow model — the
/// plan's own FleetSymbolicState plus the ordinal→set-id binding — predicts
/// the exact effect of every operation; divergence between prediction and
/// the system under test stops the run with a FleetProblem:
///
///  - every served recovery must be bit-exact against the content engine's
///    memoized expected set, with a successful status;
///  - save results must report the shadow's predicted chain depth;
///  - DeleteSet/RetainOnly must delete exactly the predicted closure, and
///    deletes the shadow predicts to be refused (dependents without cascade,
///    pin protection) must fail;
///  - CompactChains must rebase exactly the predicted set ids, skipping
///    nothing;
///  - at checkpoints: the store inventory equals the shadow's live set,
///    recorded chain depths and kinds match per set (and match the measured
///    walk, InspectChain), pinned sets match, the store is fsck-clean
///    (validation + orphan scan + journal repair report), and optionally
///    every live set is recovered and bit-verified.
///
/// Crash injection: saves may be armed to fail mid-commit at a
/// deterministic write offset; the run then heals the env, reopens the
/// world (commit-journal replay), asserts it fsck-clean, and reconciles the
/// shadow by diffing the store's id inventory — a crashed save that rolled
/// forward binds its ordinal, one that rolled back leaves it dead. Cluster
/// rebalance flattens chains ring-dependently, so after kRebalance the
/// shadow re-syncs per-set kind/depth from the store (inventory equality is
/// still enforced).
///
/// Determinism: one Run is a pure function of (plan, options) in every
/// oracle verdict and counter at any worker count; the per-request
/// recover_modeled_nanos stream is additionally byte-stable at workers = 1
/// (see FleetSimOptions::workers).
class FleetSimulator {
 public:
  explicit FleetSimulator(FleetPlan plan, FleetSimOptions options = {});
  ~FleetSimulator();

  FleetSimulator(const FleetSimulator&) = delete;
  FleetSimulator& operator=(const FleetSimulator&) = delete;

  /// Replays the whole plan from a fresh world.
  Result<FleetRunReport> Run();

  /// Replays an arbitrary subsequence of the plan's ops from a fresh world
  /// (the minimizer's entry point). Ops must originate from this plan.
  Result<FleetRunReport> RunOps(const std::vector<FleetOp>& ops);

  /// \name Post-run inspection (world of the most recent run).
  /// @{

  /// Recovers a live ordinal through the serving path.
  Result<ModelSet> RecoverOrdinal(uint64_t ordinal);
  /// Store inventory: one summary per live set, ascending by ordinal.
  Result<std::vector<SetSummary>> LiveSummaries();
  /// Live ordinals per the shadow model, ascending.
  std::vector<uint64_t> LiveOrdinals() const;
  /// The expected-content engine (shared across runs; memoized sets are
  /// keyed by ordinal, so they are identical for any subsequence).
  FleetContentEngine* content() { return engine_.get(); }
  /// @}

  const FleetPlan& plan() const { return plan_; }
  const FleetSimOptions& options() const { return options_; }

 private:
  struct World;

  FleetPlan plan_;
  FleetSimOptions options_;
  std::unique_ptr<FleetContentEngine> engine_;
  std::unique_ptr<World> world_;
};

}  // namespace mmm

#endif  // MMM_FLEET_SIMULATOR_H_
