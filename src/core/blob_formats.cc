#include "core/blob_formats.h"

#include <cstring>

#include "serialize/binary_io.h"
#include "serialize/crc32.h"
#include "tensor/tensor_serialize.h"

namespace mmm {
namespace {

constexpr char kStateDictMagic[] = "MMMSDIC1";
constexpr char kParamMagic[] = "MMMPARM1";
constexpr char kHashMagic[] = "MMMHASH1";
constexpr char kDiffMagic[] = "MMMDIFF1";

void AppendCrcFooter(BinaryWriter* writer) {
  uint32_t crc = Crc32::Compute(writer->buffer());
  writer->WriteUint32(crc);
}

/// Validates the CRC footer and returns the payload without it.
Result<std::span<const uint8_t>> CheckCrcFooter(std::span<const uint8_t> blob) {
  if (blob.size() < 4) return Status::Corruption("blob too small for crc footer");
  std::span<const uint8_t> payload = blob.subspan(0, blob.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(blob[blob.size() - 4 + i]) << (8 * i);
  }
  if (Crc32::Compute(payload) != stored) {
    return Status::Corruption("blob crc mismatch");
  }
  return payload;
}

Status CheckMagic(BinaryReader* reader, const char* magic) {
  for (size_t i = 0; i < 8; ++i) {
    MMM_ASSIGN_OR_RETURN(uint8_t byte, reader->ReadUint8());
    if (byte != static_cast<uint8_t>(magic[i])) {
      return Status::Corruption("bad blob magic, expected ", magic);
    }
  }
  return Status::OK();
}

void WriteMagic(BinaryWriter* writer, const char* magic) {
  writer->WriteBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(magic), 8));
}

std::span<const uint8_t> TensorBytes(const Tensor& tensor) {
  return std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(tensor.data().data()),
      tensor.numel() * sizeof(float));
}

}  // namespace

std::vector<uint8_t> EncodeStateDict(const StateDict& state) {
  BinaryWriter writer;
  WriteMagic(&writer, kStateDictMagic);
  writer.WriteVarint(state.size());
  for (const auto& [key, tensor] : state) {
    writer.WriteString(key);
    WriteTensor(&writer, tensor);
  }
  AppendCrcFooter(&writer);
  return writer.TakeBuffer();
}

Result<StateDict> DecodeStateDict(std::span<const uint8_t> blob) {
  MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, CheckCrcFooter(blob));
  BinaryReader reader(payload);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kStateDictMagic));
  MMM_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  StateDict state;
  state.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MMM_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    MMM_ASSIGN_OR_RETURN(Tensor tensor, ReadTensor(&reader));
    state.emplace_back(std::move(key), std::move(tensor));
  }
  if (!reader.AtEnd()) return Status::Corruption("state dict has trailing bytes");
  return state;
}

std::vector<uint8_t> EncodeParamBlob(const ModelSet& set) {
  ParamLayout layout = LayoutOf(set.spec);
  size_t per_model = LayoutNumel(layout);
  BinaryWriter writer;
  WriteMagic(&writer, kParamMagic);
  writer.WriteVarint(set.models.size());
  writer.WriteVarint(per_model);
  for (const StateDict& state : set.models) {
    for (const auto& [_, tensor] : state) {
      writer.WriteFloatSpan(tensor.data());
    }
  }
  AppendCrcFooter(&writer);
  return writer.TakeBuffer();
}

Result<std::vector<StateDict>> DecodeParamBlob(const ArchitectureSpec& spec,
                                               std::span<const uint8_t> blob) {
  MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, CheckCrcFooter(blob));
  BinaryReader reader(payload);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kParamMagic));
  MMM_ASSIGN_OR_RETURN(uint64_t num_models, reader.ReadVarint());
  MMM_ASSIGN_OR_RETURN(uint64_t per_model, reader.ReadVarint());

  ParamLayout layout = LayoutOf(spec);
  if (per_model != LayoutNumel(layout)) {
    return Status::Corruption("param blob expects ", per_model,
                              " params/model, architecture implies ",
                              LayoutNumel(layout));
  }
  if (reader.remaining() != num_models * per_model * sizeof(float)) {
    return Status::Corruption("param blob size mismatch");
  }

  std::vector<StateDict> models;
  models.reserve(num_models);
  for (uint64_t m = 0; m < num_models; ++m) {
    StateDict state;
    state.reserve(layout.size());
    for (const auto& [key, shape] : layout) {
      size_t numel = Tensor::NumElements(shape);
      std::vector<float> data(numel);
      MMM_RETURN_NOT_OK(reader.ReadFloatSpan(numel, data.data()));
      state.emplace_back(key, Tensor(shape, std::move(data)));
    }
    models.push_back(std::move(state));
  }
  return models;
}

Result<ParamBlobLayout> ReadParamBlobHeader(std::span<const uint8_t> prefix) {
  BinaryReader reader(prefix);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kParamMagic));
  ParamBlobLayout layout;
  MMM_ASSIGN_OR_RETURN(uint64_t num_models, reader.ReadVarint());
  MMM_ASSIGN_OR_RETURN(uint64_t per_model, reader.ReadVarint());
  layout.num_models = num_models;
  layout.params_per_model = per_model;
  layout.header_bytes = reader.offset();
  return layout;
}

Result<StateDict> DecodeModelSlice(const ArchitectureSpec& spec,
                                   std::span<const uint8_t> slice) {
  ParamLayout layout = LayoutOf(spec);
  if (slice.size() != LayoutNumel(layout) * sizeof(float)) {
    return Status::Corruption("model slice has ", slice.size(),
                              " bytes, architecture implies ",
                              LayoutNumel(layout) * sizeof(float));
  }
  BinaryReader reader(slice);
  StateDict state;
  state.reserve(layout.size());
  for (const auto& [key, shape] : layout) {
    size_t numel = Tensor::NumElements(shape);
    std::vector<float> data(numel);
    MMM_RETURN_NOT_OK(reader.ReadFloatSpan(numel, data.data()));
    state.emplace_back(key, Tensor(shape, std::move(data)));
  }
  return state;
}

HashTable ComputeHashTable(const ModelSet& set, Executor* executor) {
  HashTable hashes(set.models.size());
  auto hash_model = [&](size_t m) {
    const StateDict& state = set.models[m];
    std::vector<Sha256Digest>& model_hashes = hashes[m];
    model_hashes.reserve(state.size());
    for (const auto& [_, tensor] : state) {
      model_hashes.push_back(Sha256::Hash(TensorBytes(tensor)));
    }
  };
  if (executor != nullptr && executor->lanes() > 1) {
    executor->ParallelFor(set.models.size(), hash_model);
  } else {
    for (size_t m = 0; m < set.models.size(); ++m) hash_model(m);
  }
  return hashes;
}

std::vector<uint8_t> EncodeHashTable(const HashTable& hashes) {
  BinaryWriter writer;
  WriteMagic(&writer, kHashMagic);
  writer.WriteVarint(hashes.size());
  writer.WriteVarint(hashes.empty() ? 0 : hashes[0].size());
  for (const auto& model_hashes : hashes) {
    for (const Sha256Digest& digest : model_hashes) {
      writer.WriteBytes(digest.bytes);
    }
  }
  AppendCrcFooter(&writer);
  return writer.TakeBuffer();
}

Result<HashTable> DecodeHashTable(std::span<const uint8_t> blob) {
  MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, CheckCrcFooter(blob));
  BinaryReader reader(payload);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kHashMagic));
  MMM_ASSIGN_OR_RETURN(uint64_t num_models, reader.ReadVarint());
  MMM_ASSIGN_OR_RETURN(uint64_t per_model, reader.ReadVarint());
  if (reader.remaining() != num_models * per_model * 32) {
    return Status::Corruption("hash table size mismatch");
  }
  HashTable hashes(num_models);
  for (uint64_t m = 0; m < num_models; ++m) {
    hashes[m].resize(per_model);
    for (uint64_t p = 0; p < per_model; ++p) {
      for (auto& byte : hashes[m][p].bytes) {
        MMM_ASSIGN_OR_RETURN(byte, reader.ReadUint8());
      }
    }
  }
  return hashes;
}

Tensor XorTensors(const Tensor& a, const Tensor& b) {
  MMM_DCHECK(a.shape() == b.shape());
  Tensor out = a;
  auto dst = out.mutable_data();
  auto src = b.data();
  for (size_t i = 0; i < dst.size(); ++i) {
    uint32_t bits_a, bits_b;
    std::memcpy(&bits_a, &dst[i], sizeof(bits_a));
    std::memcpy(&bits_b, &src[i], sizeof(bits_b));
    bits_a ^= bits_b;
    std::memcpy(&dst[i], &bits_a, sizeof(bits_a));
  }
  return out;
}

std::vector<uint8_t> EncodeDiffBlob(const ModelSet& set,
                                    const std::vector<DiffEntry>& entries,
                                    DiffEncoding encoding,
                                    const ModelSet* base_set) {
  MMM_DCHECK(encoding == DiffEncoding::kAbsolute || base_set != nullptr);
  BinaryWriter writer;
  WriteMagic(&writer, kDiffMagic);
  writer.WriteVarint(static_cast<uint64_t>(encoding));
  writer.WriteVarint(entries.size());
  for (const DiffEntry& entry : entries) {
    writer.WriteVarint(entry.model_index);
    writer.WriteVarint(entry.param_index);
  }
  for (const DiffEntry& entry : entries) {
    const Tensor& tensor = set.models[entry.model_index][entry.param_index].second;
    if (encoding == DiffEncoding::kXorBase) {
      Tensor delta = XorTensors(
          tensor, base_set->models[entry.model_index][entry.param_index].second);
      writer.WriteFloatSpan(delta.data());
    } else {
      writer.WriteFloatSpan(tensor.data());
    }
  }
  AppendCrcFooter(&writer);
  return writer.TakeBuffer();
}

Result<DecodedDiff> DecodeDiffBlob(const ArchitectureSpec& spec,
                                   std::span<const uint8_t> blob) {
  MMM_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, CheckCrcFooter(blob));
  BinaryReader reader(payload);
  MMM_RETURN_NOT_OK(CheckMagic(&reader, kDiffMagic));
  MMM_ASSIGN_OR_RETURN(uint64_t encoding_value, reader.ReadVarint());
  if (encoding_value > static_cast<uint64_t>(DiffEncoding::kXorBase)) {
    return Status::Corruption("diff blob has unknown encoding ", encoding_value);
  }
  MMM_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());

  ParamLayout layout = LayoutOf(spec);
  DecodedDiff diff;
  diff.encoding = static_cast<DiffEncoding>(encoding_value);
  diff.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MMM_ASSIGN_OR_RETURN(uint64_t model_index, reader.ReadVarint());
    MMM_ASSIGN_OR_RETURN(uint64_t param_index, reader.ReadVarint());
    if (param_index >= layout.size()) {
      return Status::Corruption("diff entry references parameter ", param_index,
                                " but layout has ", layout.size());
    }
    diff.entries.push_back({static_cast<uint32_t>(model_index),
                            static_cast<uint32_t>(param_index)});
  }
  diff.tensors.reserve(count);
  for (const DiffEntry& entry : diff.entries) {
    const Shape& shape = layout[entry.param_index].second;
    size_t numel = Tensor::NumElements(shape);
    std::vector<float> data(numel);
    MMM_RETURN_NOT_OK(reader.ReadFloatSpan(numel, data.data()));
    diff.tensors.emplace_back(shape, std::move(data));
  }
  if (!reader.AtEnd()) return Status::Corruption("diff blob has trailing bytes");
  return diff;
}

Result<std::vector<DiffEntry>> DiffHashTables(const HashTable& base,
                                              const HashTable& current) {
  if (base.size() != current.size()) {
    return Status::InvalidArgument("hash tables differ in model count: ",
                                   base.size(), " vs ", current.size());
  }
  std::vector<DiffEntry> entries;
  for (size_t m = 0; m < base.size(); ++m) {
    if (base[m].size() != current[m].size()) {
      return Status::InvalidArgument("hash tables differ in layer count at model ",
                                     m);
    }
    for (size_t p = 0; p < base[m].size(); ++p) {
      if (base[m][p] != current[m][p]) {
        entries.push_back(
            {static_cast<uint32_t>(m), static_cast<uint32_t>(p)});
      }
    }
  }
  return entries;
}

}  // namespace mmm
