#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "battery/data_gen.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

TrainingData SyntheticRegression(size_t n, uint64_t seed) {
  // y = 0.3*x0 - 0.2*x1 + 0.1 (learnable by the FFNN in a few steps).
  Rng rng(seed);
  Tensor x(Shape{n, 4});
  Tensor y(Shape{n, 1});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      x.at2(i, j) = static_cast<float>(rng.NextUniform(-1, 1));
    }
    y.at2(i, 0) = 0.3f * x.at2(i, 0) - 0.2f * x.at2(i, 1) + 0.1f;
  }
  return {std::move(x), std::move(y)};
}

TrainConfig SmallConfig() {
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 16;
  config.learning_rate = 0.05f;
  config.shuffle_seed = 0xfeedface12345678ULL;
  return config;
}

TEST(TrainerTest, TrainingReducesLoss) {
  TrainingData data = SyntheticRegression(128, 1);
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 2));
  TrainConfig config = SmallConfig();
  config.epochs = 10;
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       TrainModel(&model, data.inputs, data.targets, config));
  EXPECT_LT(report.final_loss, report.initial_loss * 0.5f);
  EXPECT_EQ(report.steps, 10 * 8);
}

TEST(TrainerTest, BitExactDeterminism) {
  TrainingData data = SyntheticRegression(64, 3);
  ASSERT_OK_AND_ASSIGN(Model a, Model::CreateInitialized(Ffnn48Spec(), 4));
  ASSERT_OK_AND_ASSIGN(Model b, a.Clone());
  TrainConfig config = SmallConfig();
  ASSERT_OK(TrainModel(&a, data.inputs, data.targets, config).status());
  ASSERT_OK(TrainModel(&b, data.inputs, data.targets, config).status());
  StateDict sa = a.GetStateDict(), sb = b.GetStateDict();
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(sa[i].second.Equals(sb[i].second)) << sa[i].first;
  }
}

TEST(TrainerTest, DifferentShuffleSeedDiverges) {
  TrainingData data = SyntheticRegression(64, 3);
  ASSERT_OK_AND_ASSIGN(Model a, Model::CreateInitialized(Ffnn48Spec(), 4));
  ASSERT_OK_AND_ASSIGN(Model b, a.Clone());
  TrainConfig config = SmallConfig();
  ASSERT_OK(TrainModel(&a, data.inputs, data.targets, config).status());
  config.shuffle_seed ^= 1;
  ASSERT_OK(TrainModel(&b, data.inputs, data.targets, config).status());
  EXPECT_FALSE(a.GetStateDict()[0].second.Equals(b.GetStateDict()[0].second));
}

TEST(TrainerTest, PartialTrainingOnlyChangesSelectedLayers) {
  TrainingData data = SyntheticRegression(64, 5);
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 6));
  StateDict before = model.GetStateDict();
  TrainConfig config = SmallConfig();
  config.trainable_layers = {"fc3", "fc4"};
  ASSERT_OK(TrainModel(&model, data.inputs, data.targets, config).status());
  StateDict after = model.GetStateDict();
  for (size_t i = 0; i < before.size(); ++i) {
    bool frozen = before[i].first.rfind("fc1", 0) == 0 ||
                  before[i].first.rfind("fc2", 0) == 0;
    if (frozen) {
      EXPECT_TRUE(before[i].second.Equals(after[i].second)) << before[i].first;
    } else {
      EXPECT_FALSE(before[i].second.Equals(after[i].second)) << before[i].first;
    }
  }
}

TEST(TrainerTest, UnknownTrainableLayerFails) {
  TrainingData data = SyntheticRegression(16, 7);
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 8));
  TrainConfig config = SmallConfig();
  config.trainable_layers = {"does-not-exist"};
  EXPECT_TRUE(TrainModel(&model, data.inputs, data.targets, config)
                  .status()
                  .IsInvalidArgument());
}

TEST(TrainerTest, RejectsBadInputs) {
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 9));
  TrainConfig config = SmallConfig();
  Tensor x(Shape{4, 4}), y(Shape{3, 1});
  EXPECT_TRUE(
      TrainModel(&model, x, y, config).status().IsInvalidArgument());
  Tensor empty_x(Shape{0, 4}), empty_y(Shape{0, 1});
  EXPECT_TRUE(TrainModel(&model, empty_x, empty_y, config)
                  .status()
                  .IsInvalidArgument());
  config.batch_size = 0;
  Tensor ok_x(Shape{4, 4}), ok_y(Shape{4, 1});
  EXPECT_TRUE(
      TrainModel(&model, ok_x, ok_y, config).status().IsInvalidArgument());
}

TEST(TrainerTest, UnknownLossAndOptimizerFail) {
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 10));
  Tensor x(Shape{4, 4}), y(Shape{4, 1});
  TrainConfig config = SmallConfig();
  config.loss = "hinge";
  EXPECT_TRUE(TrainModel(&model, x, y, config).status().IsInvalidArgument());
  config = SmallConfig();
  config.optimizer = "lbfgs";
  EXPECT_TRUE(TrainModel(&model, x, y, config).status().IsInvalidArgument());
}

TEST(TrainerTest, ZeroEpochsLeavesParametersUntouched) {
  TrainingData data = SyntheticRegression(32, 11);
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 12));
  StateDict before = model.GetStateDict();
  TrainConfig config = SmallConfig();
  config.epochs = 0;
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       TrainModel(&model, data.inputs, data.targets, config));
  EXPECT_EQ(report.steps, 0);
  StateDict after = model.GetStateDict();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(before[i].second.Equals(after[i].second));
  }
}

TEST(TrainerTest, AdamOptimizerTrains) {
  TrainingData data = SyntheticRegression(128, 13);
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(Ffnn48Spec(), 14));
  TrainConfig config = SmallConfig();
  config.optimizer = "adam";
  config.learning_rate = 0.01f;
  config.epochs = 10;
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       TrainModel(&model, data.inputs, data.targets, config));
  EXPECT_LT(report.final_loss, report.initial_loss);
}

TEST(TrainerTest, CrossEntropyTrainingOnCifarNet) {
  // Tiny 2-class separation task on the conv net.
  Rng rng(15);
  const size_t n = 16;
  Tensor x(Shape{n, 3, 32, 32});
  Tensor y(Shape{n});
  for (size_t i = 0; i < n; ++i) {
    float base = (i % 2 == 0) ? 0.2f : 0.8f;
    y.at(i) = static_cast<float>(i % 2);
    for (size_t j = 0; j < 3 * 32 * 32; ++j) {
      x.at(i * 3 * 32 * 32 + j) =
          base + static_cast<float>(rng.NextGaussian(0.0, 0.05));
    }
  }
  ASSERT_OK_AND_ASSIGN(Model model, Model::CreateInitialized(CifarNetSpec(), 16));
  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  config.learning_rate = 0.05f;
  config.loss = "cross_entropy";
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       TrainModel(&model, x, y, config));
  EXPECT_LT(report.final_loss, report.initial_loss);
}

TEST(TrainConfigTest, JsonRoundTripIncludingFullRangeSeed) {
  TrainConfig config;
  config.epochs = 7;
  config.batch_size = 33;
  config.learning_rate = 0.123f;
  config.momentum = 0.9f;
  config.optimizer = "adam";
  config.loss = "cross_entropy";
  config.shuffle_seed = 0xffffffffffffff9bULL;  // would not survive a double
  config.trainable_layers = {"fc3", "fc4"};
  ASSERT_OK_AND_ASSIGN(TrainConfig decoded,
                       TrainConfig::FromJson(config.ToJson()));
  EXPECT_EQ(decoded, config);
}

TEST(TrainConfigTest, JsonRoundTripThroughText) {
  TrainConfig config;
  config.shuffle_seed = 0x8000000000000001ULL;
  ASSERT_OK_AND_ASSIGN(JsonValue parsed,
                       JsonValue::Parse(config.ToJson().Dump()));
  ASSERT_OK_AND_ASSIGN(TrainConfig decoded, TrainConfig::FromJson(parsed));
  EXPECT_EQ(decoded.shuffle_seed, config.shuffle_seed);
}

TEST(TrainConfigTest, FromJsonRejectsBadSeed) {
  TrainConfig config;
  JsonValue json = config.ToJson();
  json.Set("shuffle_seed", "not-a-number");
  EXPECT_TRUE(TrainConfig::FromJson(json).status().IsCorruption());
}

}  // namespace
}  // namespace mmm
