// Seeded journal-protocol violation: a blob deletion reachable outside
// src/storage//src/cas/ with no journaled-intent construction dominating
// it. Both the direct primitive and the caller that reaches it through a
// helper must be flagged (the finding lands on the outermost entry point).

class Env {
 public:
  int Delete(const char* path);
};

static void EvictBlobRaw(Env* env, const char* path) {
  env->Delete(path);
}

void SweepEverything(Env* env, const char* path) {
  EvictBlobRaw(env, path);
}
