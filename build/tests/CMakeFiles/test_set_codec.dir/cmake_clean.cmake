file(REMOVE_RECURSE
  "CMakeFiles/test_set_codec.dir/test_set_codec.cc.o"
  "CMakeFiles/test_set_codec.dir/test_set_codec.cc.o.d"
  "test_set_codec"
  "test_set_codec.pdb"
  "test_set_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
