// Same two locks as the bad variant, but both paths take them in rank
// order: no cycle, no inversion.
#ifndef SA_FIXTURE_LOCK_CYCLE_CLEAN_H_
#define SA_FIXTURE_LOCK_CYCLE_CLEAN_H_

class Tangle {
 public:
  void f() {
    MutexLock first(a_);
    MutexLock second(b_);
    ++work_;
  }

  void g() {
    MutexLock first(a_);
    MutexLock second(b_);
    ++work_;
  }

 private:
  Mutex a_ MMM_LOCK_RANK(10);
  Mutex b_ MMM_LOCK_RANK(20);
  int work_ = 0;
};

#endif  // SA_FIXTURE_LOCK_CYCLE_CLEAN_H_
