#ifndef MMM_COMMON_LOGGING_H_
#define MMM_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace mmm {

/// Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal leveled logger writing to stderr.
///
/// Usage: `MMM_LOG(kInfo) << "saved set " << id;`
/// The global threshold defaults to kWarning so library internals stay quiet
/// in tests and benchmarks; drivers can lower it.
class Logger {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  Logger(LogLevel level, const char* file, int line);
  ~Logger();

  template <typename T>
  Logger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace mmm

#define MMM_LOG(level) \
  ::mmm::Logger(::mmm::LogLevel::level, __FILE__, __LINE__)

/// Internal invariant check; aborts with a message when violated.
#define MMM_DCHECK(condition)                                              \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::mmm::Logger(::mmm::LogLevel::kError, __FILE__, __LINE__)           \
          << "DCHECK failed: " #condition;                                 \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#endif  // MMM_COMMON_LOGGING_H_
