#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/blob_formats.h"
#include "core/inspect.h"
#include "core/manager.h"
#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::TempDir;

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() : temp_("streaming") {
    ModelSetManager::Options options;
    options.root_dir = temp_.path() + "/store";
    manager_ = ModelSetManager::Open(options).ValueOrDie();
  }

  TempDir temp_;
  std::unique_ptr<ModelSetManager> manager_;
};

TEST_F(StreamingTest, StreamedSnapshotIsByteCompatible) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 25, 1));
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      StreamingSnapshotWriter::Begin(manager_->context(), set.spec, 25));
  for (const StateDict& model : set.models) {
    ASSERT_OK(writer->Append(model));
  }
  ASSERT_OK_AND_ASSIGN(SaveResult saved, writer->Finish());

  // The streamed blob equals the in-memory encoder's output bit for bit.
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> streamed,
                       manager_->file_store()->Get(saved.set_id + ".params.bin"));
  EXPECT_EQ(streamed, EncodeParamBlob(set));
}

TEST_F(StreamingTest, RecoverableThroughEveryReadPath) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 12, 2));
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      StreamingSnapshotWriter::Begin(manager_->context(), set.spec, 12));
  for (const StateDict& model : set.models) ASSERT_OK(writer->Append(model));
  ASSERT_OK_AND_ASSIGN(SaveResult saved, writer->Finish());

  // Full recovery (validates the streamed CRC).
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager_->Recover(saved.set_id));
  EXPECT_TRUE(recovered.models[7][3].second.Equals(set.models[7][3].second));
  // Selective recovery via ranged reads.
  ASSERT_OK_AND_ASSIGN(std::vector<StateDict> selected,
                       manager_->RecoverModels(saved.set_id, {11, 0}));
  EXPECT_TRUE(selected[0][5].second.Equals(set.models[11][5].second));
  EXPECT_TRUE(selected[1][5].second.Equals(set.models[0][5].second));
  // Store validation.
  ASSERT_OK_AND_ASSIGN(StoreValidationReport report, manager_->ValidateStore());
  EXPECT_TRUE(report.ok()) << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
}

TEST_F(StreamingTest, BoundedMemoryAccounting) {
  // The writer itself holds only per-model staging: the file-store bytes
  // grow model by model.
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 3, 3));
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      StreamingSnapshotWriter::Begin(manager_->context(), set.spec, 3));
  uint64_t after_begin = manager_->file_store()->stats().bytes_written;
  ASSERT_OK(writer->Append(set.models[0]));
  uint64_t after_one = manager_->file_store()->stats().bytes_written;
  EXPECT_EQ(after_one - after_begin, 4993u * 4);
  ASSERT_OK(writer->Append(set.models[1]));
  ASSERT_OK(writer->Append(set.models[2]));
  ASSERT_OK(writer->Finish().status());
}

TEST_F(StreamingTest, CountMismatchFailsFinish) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 4, 4));
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      StreamingSnapshotWriter::Begin(manager_->context(), set.spec, 4));
  ASSERT_OK(writer->Append(set.models[0]));
  EXPECT_TRUE(writer->Finish().status().IsInvalidArgument());
}

TEST_F(StreamingTest, AppendBeyondDeclaredCountFails) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 2, 5));
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      StreamingSnapshotWriter::Begin(manager_->context(), set.spec, 1));
  ASSERT_OK(writer->Append(set.models[0]));
  EXPECT_TRUE(writer->Append(set.models[1]).IsInvalidArgument());
}

TEST_F(StreamingTest, AppendAfterFinishFails) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 1, 6));
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      StreamingSnapshotWriter::Begin(manager_->context(), set.spec, 1));
  ASSERT_OK(writer->Append(set.models[0]));
  ASSERT_OK(writer->Finish().status());
  EXPECT_TRUE(writer->Append(set.models[0]).IsInvalidArgument());
  EXPECT_TRUE(writer->Finish().status().IsInvalidArgument());
}

TEST_F(StreamingTest, RejectsMismatchedModel) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn69Spec(), 1, 7));
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      StreamingSnapshotWriter::Begin(manager_->context(), Ffnn48Spec(), 1));
  EXPECT_TRUE(writer->Append(set.models[0]).IsInvalidArgument());
}

TEST_F(StreamingTest, RejectsCompressionContext) {
  TempDir temp("streaming-compressed");
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.blob_compression = Compression::kShuffleLz;
  auto manager = ModelSetManager::Open(options).ValueOrDie();
  EXPECT_TRUE(
      StreamingSnapshotWriter::Begin(manager->context(), Ffnn48Spec(), 1)
          .status()
          .IsUnimplemented());
}

TEST_F(StreamingTest, StreamedSetCanSeedAnUpdateChain) {
  // A streamed snapshot is a normal baseline set; Baseline recovers it and
  // a fresh Update chain can start from the same models.
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 8, 8));
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      StreamingSnapshotWriter::Begin(manager_->context(), set.spec, 8));
  for (const StateDict& model : set.models) ASSERT_OK(writer->Append(model));
  ASSERT_OK_AND_ASSIGN(SaveResult saved, writer->Finish());
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager_->Recover(saved.set_id));
  ASSERT_OK(
      manager_->SaveInitial(ApproachType::kUpdate, recovered).status());
}

}  // namespace
}  // namespace mmm
