// The bad variant with MMMSA suppressions on every finding site.

Status Load();
Status Persist();

Status DropOnEarlyReturn(bool flaky) {
  Status st = Load();
  if (flaky) {
    // MMMSA(status-flow): seeded fixture, drop is the point
    return Persist();
  }
  return st;
}

Status OverwriteUnchecked() {
  Status st = Load();
  // MMMSA(status-flow): seeded fixture, overwrite is the point
  st = Persist();
  return st;
}

void DropAtScopeExit() {
  // MMMSA(status-flow): seeded fixture, scope-exit drop is the point
  Status st = Persist();
  int done = 1;
  (void)done;
}
