#ifndef MMM_SERVE_SERVICE_H_
#define MMM_SERVE_SERVICE_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/gc.h"
#include "core/manager.h"
#include "core/recovery_cache.h"
#include "serve/layer_cache.h"
#include "storage/executor.h"

namespace mmm {

/// \brief Configuration of a ModelSetService.
struct ModelSetServiceOptions {
  /// Worker lanes for Replay. 1 = serve on the calling thread, in request
  /// order — bit-identical to sequential Recover calls. Per-request store
  /// counters (ServeResult::modeled_store_nanos) are exact at any worker
  /// count; only the *cache* hit pattern can shift under concurrency,
  /// because overlapping requests race to populate shared entries.
  size_t workers = 1;
  /// Disable to serve every request straight from the stores (the control
  /// arm of the serving bench; results are bit-identical either way).
  bool cache_enabled = true;
  /// Layer-cache budget; capacity is enforced strictly (see LayerCache).
  uint64_t cache_capacity_bytes = 256ull << 20;
  size_t cache_shards = 8;
  /// Entry bound of the per-set metadata memo (hash table + architecture).
  size_t meta_cache_entries = 1024;
};

/// \brief Outcome of one served recovery request.
struct ServeResult {
  std::string set_id;
  Status status = Status::OK();
  /// Wall time of this request in the service, nanoseconds.
  uint64_t wall_nanos = 0;
  /// Modeled store latency charged by this request, in nanoseconds. Exact
  /// per request at any worker count: charges are attributed through a
  /// per-thread accumulator (SimulatedClock::ThreadNanos), and a request
  /// runs entirely on one worker.
  uint64_t modeled_store_nanos = 0;
  /// Sets materialized, including recursively recovered bases.
  uint64_t sets_walked = 0;
  /// Cache effectiveness of this request (all-zero on the uncached path).
  CacheRequestStats cache;
};

/// \brief Concurrent model-set recovery service (the serving layer).
///
/// Wraps a ModelSetManager behind a thread-safe facade: recovery requests
/// run concurrently on a fixed worker pool and answer through a sharded,
/// layer-granular LRU cache keyed by the per-layer SHA-256 content hashes
/// the Update approach persists (see core/recovery_cache.h for the key
/// scheme and why the document store remains the root of trust). Layers
/// shared between a base set and its derived sets are fetched and decoded
/// once; hot sets can be pinned.
///
/// Sets saved by the other approaches are served through the manager's
/// ordinary (uncached) Recover — every approach is servable, Update gets
/// the cache speedup.
///
/// Deletion coherence: DeleteSet/RetainOnly must go through the service,
/// which serializes them against in-flight recoveries, refuses to delete
/// any set a pinned set needs (pin-fail), and invalidates the cached
/// layers and metadata of collected sets.
class ModelSetService {
 public:
  /// \param manager store facade; must outlive the service (not owned).
  ModelSetService(ModelSetManager* manager, ModelSetServiceOptions options = {});
  ~ModelSetService();

  ModelSetService(const ModelSetService&) = delete;
  ModelSetService& operator=(const ModelSetService&) = delete;

  /// Recovers one set (any approach). Thread-safe; concurrent callers
  /// proceed in parallel. `result` (optional) receives per-request stats.
  Result<ModelSet> Recover(const std::string& set_id,
                           ServeResult* result = nullptr);

  /// Serves a whole request trace across the worker pool. Request i runs on
  /// lane i % workers (deterministic assignment). Returns one ServeResult
  /// per request, parallel to `set_ids`; `recovered` (optional) receives
  /// the recovered sets, also parallel. Only one Replay may run at a time.
  std::vector<ServeResult> Replay(const std::vector<std::string>& set_ids,
                                  std::vector<ModelSet>* recovered = nullptr);

  /// Pins a hot set: recovers it, admits every layer pre-pinned, and
  /// shields the layers from eviction until UnpinSet. Fails with
  /// InvalidArgument if the cache cannot hold the whole set (partial pins
  /// are rolled back). Requires the Update approach and an enabled cache.
  Status PinSet(const std::string& set_id);

  /// Releases a pin (layers stay cached, evictable again). NotFound if the
  /// set is not pinned.
  Status UnpinSet(const std::string& set_id);

  /// Deletes a set through the garbage collector, serialized against
  /// recoveries. Fails with InvalidArgument if any pinned set needs the
  /// target for recovery. Invalidates cached layers/metadata of every
  /// collected set.
  Result<DeleteReport> DeleteSet(const std::string& set_id,
                                 const DeleteOptions& options = {});

  /// Retention sweep through the garbage collector; pinned sets (and their
  /// recovery lineage) are implicitly kept. Invalidates like DeleteSet.
  Result<DeleteReport> RetainOnly(const std::vector<std::string>& keep_set_ids);

  /// Runs the chain compactor (see core/compactor.h), serialized against
  /// in-flight recoveries like the GC entry points, and invalidates the
  /// cached layers and metadata of every rewritten set. Pinned sets are
  /// safe by construction — compaction preserves every set id and keeps
  /// recovery bit-exact, so a pinned set's lineage survives any rebase and
  /// its pinned layers (keyed by content hash) remain valid; the
  /// invalidation only drops the stale per-set metadata memos (recorded
  /// depths changed) and unpinned layer entries defensively.
  Result<CompactionReport> CompactChains(const CompactionPolicy& policy);

  /// Aggregate layer-cache counters.
  LayerCacheStats cache_stats() const { return layer_cache_.stats(); }

  /// Ids currently pinned, sorted.
  std::vector<std::string> PinnedSets() const;

  /// True if deleting `set_id` would be refused by the pin guard: the set
  /// is pinned, or some pinned set's recorded recovery lineage reaches it.
  /// Lets callers (e.g. the coordinator's rebalancer) test the guard
  /// before starting a multi-step operation whose delete leg would fail.
  Result<bool> PinProtects(const std::string& set_id) MMM_EXCLUDES(gate_);

  const ModelSetServiceOptions& options() const { return options_; }

  /// \name Coordinator hooks (see cluster/coordinator.h).
  /// @{

  /// Blocks until every in-flight recovery has finished, then returns.
  /// Requests arriving after the call proceed normally; the coordinator
  /// calls this with new traffic already fenced off (its topology lock),
  /// so the shard is quiescent when it is closed or migrated from.
  void Drain() MMM_EXCLUDES(gate_);

  /// One coherent stats snapshot (cache counters + pinned sets), so
  /// `mmmctl cluster status` reads each shard in one call.
  struct StatsSnapshot {
    LayerCacheStats cache;
    std::vector<std::string> pinned_sets;
    size_t workers = 0;
    bool cache_enabled = false;
  };
  StatsSnapshot Snapshot() const;

  /// Drops the cached layers and metadata of `set_ids` (sparing layers a
  /// pinned set still needs), serialized against in-flight recoveries.
  /// The coordinator calls this after migrating a set away so a stale
  /// entry can never answer for a set this shard no longer owns.
  void InvalidateSets(const std::vector<std::string>& set_ids);
  /// @}

 private:
  /// RecoveryCache view of the service handed to RecoverCached: layers go
  /// to the sharded LayerCache, set metadata to the entry-bounded memo.
  /// Under streaming recovery (DESIGN.md §12) PutLayer fires from inside
  /// the blob decode — each finished layer is admitted while later models
  /// of the same blob are still streaming, so a concurrent request for a
  /// sibling set can hit layers of a recovery that has not returned yet.
  /// Both calls are therefore concurrent across worker lanes; the sharded
  /// cache and the metadata memo each take their own locks.
  class CacheAdapter : public RecoveryCache {
   public:
    explicit CacheAdapter(ModelSetService* service) : service_(service) {}
    bool GetLayer(const Sha256Digest& hash, Tensor* out) override;
    void PutLayer(const Sha256Digest& hash, const Tensor& value) override;
    bool GetSetMeta(const std::string& set_id, HashTable* hashes,
                    ArchitectureSpec* spec) override;
    void PutSetMeta(const std::string& set_id, const HashTable& hashes,
                    const ArchitectureSpec& spec) override;

   private:
    ModelSetService* service_;
  };

  struct MetaEntry {
    std::string set_id;
    HashTable hashes;
    ArchitectureSpec spec;
  };

  Result<ModelSet> RecoverLocked(const std::string& set_id, ServeResult* result)
      MMM_REQUIRES_SHARED(gate_);
  /// Pin-guard walk shared by DeleteSet and PinProtects: returns the id of
  /// the pinned set whose recovery lineage reaches `set_id`, or "" if no
  /// pin protects it. Caller must hold gate_ (shared suffices — the walk
  /// only reads documents).
  std::string PinGuardOwner(const std::string& set_id)
      MMM_REQUIRES_SHARED(gate_) MMM_EXCLUDES(pin_mu_);
  /// Removes cached layers + metadata of the given deleted sets, sparing
  /// layers a pinned set still needs.
  void InvalidateDeleted(const std::vector<std::string>& deleted_set_ids)
      MMM_EXCLUDES(meta_mu_, pin_mu_);
  /// Flattened hashes of a set from the meta memo / hash index.
  std::vector<Sha256Digest> KnownHashesOf(const std::string& set_id)
      MMM_EXCLUDES(meta_mu_);

  ModelSetManager* manager_;
  ModelSetServiceOptions options_;
  LayerCache layer_cache_;
  CacheAdapter adapter_;
  std::unique_ptr<Executor> executor_;
  Mutex replay_mu_ MMM_LOCK_RANK(60);  ///< Executor dispatch is not reentrant.

  /// Readers (Recover) take it shared; DeleteSet/RetainOnly/PinSet take it
  /// exclusive, so the GC never races a recovery mid-walk. Lock order:
  /// replay_mu_ > gate_ > meta_mu_ > pin_mu_ (see DESIGN.md §6.2).
  SharedMutex gate_ MMM_LOCK_RANK(70);

  mutable Mutex meta_mu_ MMM_LOCK_RANK(80);
  /// Front = most recently used.
  std::list<MetaEntry> meta_lru_ MMM_GUARDED_BY(meta_mu_);
  std::unordered_map<std::string, std::list<MetaEntry>::iterator> meta_index_
      MMM_GUARDED_BY(meta_mu_);
  /// set id -> flattened layer hashes, kept past meta eviction so GC can
  /// always invalidate a collected set's layers. One entry per set ever
  /// served; pruned on deletion.
  std::unordered_map<std::string, std::vector<Sha256Digest>> hash_index_
      MMM_GUARDED_BY(meta_mu_);

  mutable Mutex pin_mu_ MMM_LOCK_RANK(90);
  /// set id -> flattened layer hashes pinned for it.
  std::unordered_map<std::string, std::vector<Sha256Digest>> pinned_sets_
      MMM_GUARDED_BY(pin_mu_);
  /// raw 32-byte digest -> number of pinned sets referencing the layer.
  std::unordered_map<std::string, uint64_t> pinned_hash_refs_
      MMM_GUARDED_BY(pin_mu_);
};

}  // namespace mmm

#endif  // MMM_SERVE_SERVICE_H_
