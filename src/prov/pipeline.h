#ifndef MMM_PROV_PIPELINE_H_
#define MMM_PROV_PIPELINE_H_

#include <string>

#include "common/result.h"
#include "nn/trainer.h"
#include "serialize/json.h"

namespace mmm {

/// \brief Complete, replayable description of a training pipeline.
///
/// "the training procedure for updating the models differs only by the used
/// data" (paper §3.4) — so one TrainPipelineSpec per model set suffices. It
/// bundles the deterministic TrainConfig with the pipeline source code and
/// its hash; replaying the config on the referenced data reproduces the
/// trained parameters bit-exactly.
struct TrainPipelineSpec {
  TrainConfig train_config;
  /// Source listing of the pipeline (persisted verbatim, as MMlib does).
  std::string pipeline_code;
  /// Hex SHA-256 of `pipeline_code`, used to detect drift at recovery time.
  std::string code_hash;

  /// Builds a spec and fills in the code hash.
  static TrainPipelineSpec Create(TrainConfig config, std::string code);

  /// Returns Corruption if `code_hash` no longer matches `pipeline_code`.
  Status Validate() const;

  JsonValue ToJson() const;
  static Result<TrainPipelineSpec> FromJson(const JsonValue& json);

  bool operator==(const TrainPipelineSpec& other) const = default;
};

/// The canonical pipeline source listing for this library's deterministic
/// trainer (what a Python MMlib deployment would persist as pipeline code).
std::string CanonicalPipelineCode(const TrainConfig& config);

}  // namespace mmm

#endif  // MMM_PROV_PIPELINE_H_
