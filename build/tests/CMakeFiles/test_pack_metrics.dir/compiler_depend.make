# Empty compiler generated dependencies file for test_pack_metrics.
# This may be replaced when dependencies are built.
