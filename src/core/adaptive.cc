#include "core/adaptive.h"

#include <algorithm>

#include "core/set_codec.h"

namespace mmm {
namespace {

/// Fraction of a model's parameters a partial update retrains, derived from
/// the update's partial-layer list and the set's layout.
double PartialFraction(const ArchitectureSpec& spec,
                       const std::vector<std::string>& partial_layers) {
  if (partial_layers.empty()) return 1.0;
  ParamLayout layout = LayoutOf(spec);
  size_t total = 0, partial = 0;
  for (const auto& [key, shape] : layout) {
    size_t numel = Tensor::NumElements(shape);
    total += numel;
    for (const std::string& layer : partial_layers) {
      if (key.rfind(layer + ".", 0) == 0) {
        partial += numel;
        break;
      }
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(partial) /
                                static_cast<double>(total);
}

}  // namespace

AdaptiveModelSetManager::AdaptiveModelSetManager(ModelSetManager* manager,
                                                 AdaptivePolicyOptions options)
    : manager_(manager),
      options_(options),
      choice_(RecommendApproach(options_.profile).approach),
      head_approach_(choice_) {}

void AdaptiveModelSetManager::ObserveUpdate(const ModelSet& set,
                                            const ModelSetUpdateInfo& update) {
  const double alpha = std::clamp(options_.smoothing, 0.0, 1.0);
  // Realized update rate and the weighted fraction of parameters changed.
  if (!update.kinds.empty()) {
    size_t updated = 0;
    double param_fraction_sum = 0.0;
    double partial_fraction = PartialFraction(set.spec, update.partial_layers);
    for (UpdateKind kind : update.kinds) {
      if (kind == UpdateKind::kNone) continue;
      ++updated;
      param_fraction_sum += kind == UpdateKind::kFull ? 1.0 : partial_fraction;
    }
    double rate =
        static_cast<double>(updated) / static_cast<double>(update.kinds.size());
    options_.profile.update_rate =
        (1 - alpha) * options_.profile.update_rate + alpha * rate;
    if (updated > 0) {
      options_.profile.updated_param_fraction =
          (1 - alpha) * options_.profile.updated_param_fraction +
          alpha * (param_fraction_sum / static_cast<double>(updated));
    }
  }
  // Recovery frequency: recoveries observed since the previous save.
  double recoveries = static_cast<double>(recoveries_since_save_);
  options_.profile.recoveries_per_save =
      (1 - alpha) * options_.profile.recoveries_per_save + alpha * recoveries;
  recoveries_since_save_ = 0;
  // Fleet shape.
  options_.profile.num_models = set.models.size();
  options_.profile.params_per_model = set.spec.ParameterCount();
  // Chain length is directly observable — no estimator needed: chain_depth_
  // tracks the head's recorded depth (SaveResult::chain_depth) and resets
  // through the same channel whenever a chain restarts with a full snapshot
  // (approach switch, the update approach's snapshot_interval) and via
  // ObserveCompaction when the compactor rebases the head. At decision time
  // the selector prices the chain a recovery will walk once the impending
  // save lands — one hop below the head — and SaveDerived refreshes the
  // profile to the realized depth right after the save.
  options_.profile.expected_chain_length =
      static_cast<double>(chain_depth_ + 1);
}

void AdaptiveModelSetManager::Reselect() {
  choice_ = RecommendApproach(options_.profile).approach;
}

Result<SaveResult> AdaptiveModelSetManager::SaveInitial(const ModelSet& set) {
  options_.profile.num_models = set.models.size();
  options_.profile.params_per_model = set.spec.ParameterCount();
  Reselect();
  MMM_ASSIGN_OR_RETURN(SaveResult result, manager_->SaveInitial(choice_, set));
  head_ = result.set_id;
  head_approach_ = choice_;
  chain_depth_ = result.chain_depth;
  options_.profile.expected_chain_length = static_cast<double>(chain_depth_);
  ++saves_;
  return result;
}

Result<SaveResult> AdaptiveModelSetManager::SaveDerived(
    const ModelSet& set, const ModelSetUpdateInfo& update) {
  ObserveUpdate(set, update);
  Reselect();

  Result<SaveResult> result = [&]() -> Result<SaveResult> {
    if (choice_ == head_approach_ && !head_.empty() &&
        (choice_ == ApproachType::kUpdate ||
         choice_ == ApproachType::kProvenance)) {
      // Continue the existing chain.
      ModelSetUpdateInfo derived = update;
      derived.base_set_id = head_;
      return manager_->SaveDerived(choice_, set, derived);
    }
    if (choice_ == ApproachType::kMMlibBase ||
        choice_ == ApproachType::kBaseline) {
      ModelSetUpdateInfo derived = update;
      derived.base_set_id =
          choice_ == head_approach_ ? head_ : std::string();
      return manager_->SaveDerived(choice_, set, derived);
    }
    // Chain-based approach but the previous version was saved differently:
    // start a fresh chain with a full snapshot.
    return manager_->SaveInitial(choice_, set);
  }();
  if (!result.ok()) return result.status();

  head_ = result.ValueOrDie().set_id;
  head_approach_ = choice_;
  chain_depth_ = result.ValueOrDie().chain_depth;
  options_.profile.expected_chain_length = static_cast<double>(chain_depth_);
  ++saves_;
  return result;
}

Result<ModelSet> AdaptiveModelSetManager::Recover(const std::string& set_id,
                                                  RecoverStats* stats) {
  ++recoveries_since_save_;
  return manager_->Recover(set_id, stats);
}

void AdaptiveModelSetManager::ObserveCompaction(const CompactionReport& report) {
  if (head_.empty()) return;
  bool head_rewritten =
      std::find(report.rewritten_set_ids.begin(),
                report.rewritten_set_ids.end(),
                head_) != report.rewritten_set_ids.end();
  if (!head_rewritten) return;
  // The rewritten document's recorded depth is the true post-compaction
  // depth (0 if the head itself was the rebase point). Best effort: an
  // unreadable document leaves the previous — by construction only ever
  // over-stated — value in place.
  auto doc = FetchSetDocument(manager_->context(), head_);
  if (!doc.ok()) return;
  chain_depth_ = doc.ValueOrDie().chain_depth;
  options_.profile.expected_chain_length = static_cast<double>(chain_depth_);
}

}  // namespace mmm
