
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prov/environment.cc" "src/prov/CMakeFiles/mmm_prov.dir/environment.cc.o" "gcc" "src/prov/CMakeFiles/mmm_prov.dir/environment.cc.o.d"
  "/root/repo/src/prov/pipeline.cc" "src/prov/CMakeFiles/mmm_prov.dir/pipeline.cc.o" "gcc" "src/prov/CMakeFiles/mmm_prov.dir/pipeline.cc.o.d"
  "/root/repo/src/prov/replay.cc" "src/prov/CMakeFiles/mmm_prov.dir/replay.cc.o" "gcc" "src/prov/CMakeFiles/mmm_prov.dir/replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/mmm_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mmm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmm_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
