#include "core/manager.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/scenario.h"

namespace mmm {
namespace {

using testing::TempDir;

TEST(ApproachTypeTest, NamesRoundTrip) {
  for (ApproachType type : kAllApproaches) {
    ASSERT_OK_AND_ASSIGN(ApproachType parsed,
                         ApproachTypeFromName(ApproachTypeName(type)));
    EXPECT_EQ(parsed, type);
  }
  EXPECT_TRUE(ApproachTypeFromName("bogus").status().IsInvalidArgument());
}

TEST(ManagerTest, OpenRequiresRootDir) {
  ModelSetManager::Options options;
  EXPECT_TRUE(ModelSetManager::Open(options).status().IsInvalidArgument());
}

TEST(ManagerTest, DispatchesRecoveryByApproach) {
  TempDir temp("manager");
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));

  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 5, 1));
  std::map<ApproachType, std::string> ids;
  for (ApproachType type : kAllApproaches) {
    ASSERT_OK_AND_ASSIGN(SaveResult saved, manager->SaveInitial(type, set));
    ids[type] = saved.set_id;
  }
  // Recover() must route each id to the approach that saved it.
  for (ApproachType type : kAllApproaches) {
    ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(ids[type]));
    EXPECT_EQ(recovered.models.size(), 5u) << ApproachTypeName(type);
    EXPECT_TRUE(recovered.models[2][3].second.Equals(set.models[2][3].second));
  }
}

TEST(ManagerTest, PersistsAcrossReopen) {
  TempDir temp("manager-reopen");
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 4, 2));
  std::string saved_id;
  {
    ModelSetManager::Options options;
    options.root_dir = temp.path() + "/store";
    ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));
    ASSERT_OK_AND_ASSIGN(SaveResult saved,
                         manager->SaveInitial(ApproachType::kBaseline, set));
    saved_id = saved.set_id;
  }
  // A second session over the same directory sees the set ...
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(saved_id));
  EXPECT_TRUE(recovered.models[0][0].second.Equals(set.models[0][0].second));
  // ... and can save new sets without id collisions.
  ASSERT_OK_AND_ASSIGN(SaveResult again,
                       manager->SaveInitial(ApproachType::kBaseline, set));
  EXPECT_NE(again.set_id, saved_id);
}

TEST(ManagerTest, UpdateChainSurvivesReopen) {
  TempDir temp("manager-chain");
  ScenarioConfig config = ScenarioConfig::Battery(10);
  config.samples_per_dataset = 32;
  MultiModelScenario scenario(config);
  ASSERT_OK(scenario.Init());

  std::string head;
  {
    ModelSetManager::Options options;
    options.root_dir = temp.path() + "/store";
    ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));
    ASSERT_OK_AND_ASSIGN(
        SaveResult initial,
        manager->SaveInitial(ApproachType::kUpdate, scenario.current_set()));
    ASSERT_OK_AND_ASSIGN(ModelSetUpdateInfo update, scenario.AdvanceCycle());
    update.base_set_id = initial.set_id;
    ASSERT_OK_AND_ASSIGN(SaveResult derived,
                         manager->SaveDerived(ApproachType::kUpdate,
                                              scenario.current_set(), update));
    head = derived.set_id;
  }
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));
  RecoverStats stats;
  ASSERT_OK_AND_ASSIGN(ModelSet recovered, manager->Recover(head, &stats));
  EXPECT_EQ(stats.sets_recovered, 2u);
  EXPECT_TRUE(recovered.models[3][1].second.Equals(
      scenario.current_set().models[3][1].second));
}

TEST(ManagerTest, SimulatedClockAccumulatesWithProfile) {
  TempDir temp("manager-clock");
  ModelSetManager::Options options;
  options.root_dir = temp.path() + "/store";
  options.profile = SetupProfile::M1();
  ASSERT_OK_AND_ASSIGN(auto manager, ModelSetManager::Open(options));
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 3, 3));
  ASSERT_OK_AND_ASSIGN(SaveResult saved,
                       manager->SaveInitial(ApproachType::kMMlibBase, set));
  // 3 models -> >= 9 store ops, M1 doc latency 0.45 ms each.
  EXPECT_GT(saved.simulated_store_nanos, 3u * 450'000);
}

TEST(ManagerTest, M1ProfileChargesMoreThanServer) {
  ASSERT_OK_AND_ASSIGN(ModelSet set, MakeInitializedSet(Ffnn48Spec(), 10, 4));
  auto run = [&](SetupProfile profile) {
    TempDir temp("manager-profile");
    ModelSetManager::Options options;
    options.root_dir = temp.path() + "/store";
    options.profile = profile;
    auto manager = ModelSetManager::Open(options).ValueOrDie();
    return manager->SaveInitial(ApproachType::kMMlibBase, set)
        .ValueOrDie()
        .simulated_store_nanos;
  };
  EXPECT_GT(run(SetupProfile::M1()), 3 * run(SetupProfile::Server()));
}

}  // namespace
}  // namespace mmm
