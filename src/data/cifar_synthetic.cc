#include "data/cifar_synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mmm {

TrainingData CifarSyntheticGenerator::Generate(uint64_t model_id, uint64_t cycle,
                                               size_t num_samples) const {
  Rng rng = Rng(seed_).Fork("cifar", Rng::Mix64(model_id * 1315423911ULL + cycle));

  // Class prototypes are derived from the seed only, so every model learns
  // the same 10-way task; the per-image noise and composition differ.
  Rng proto_rng = Rng(seed_).Fork("cifar-prototypes");
  struct ClassProto {
    float mean[3];
    float freq_x, freq_y, phase;
  };
  ClassProto protos[kClasses];
  for (size_t c = 0; c < kClasses; ++c) {
    for (float& m : protos[c].mean) {
      m = static_cast<float>(proto_rng.NextUniform(0.2, 0.8));
    }
    protos[c].freq_x = static_cast<float>(proto_rng.NextUniform(0.3, 3.0));
    protos[c].freq_y = static_cast<float>(proto_rng.NextUniform(0.3, 3.0));
    protos[c].phase = static_cast<float>(proto_rng.NextUniform(0.0, 6.28));
  }
  // Later cycles drift the textures slightly, emulating distribution shift
  // that motivates the periodic model updates.
  float drift = 0.03f * static_cast<float>(cycle);

  Tensor inputs(Shape{num_samples, kChannels, kHeight, kWidth});
  Tensor targets(Shape{num_samples});
  auto pixels = inputs.mutable_data();

  const size_t image_size = kChannels * kHeight * kWidth;
  for (size_t i = 0; i < num_samples; ++i) {
    auto label = static_cast<size_t>(rng.NextBounded(kClasses));
    targets.at(i) = static_cast<float>(label);
    const ClassProto& proto = protos[label];
    float phase = proto.phase + drift +
                  static_cast<float>(rng.NextUniform(-0.4, 0.4));
    float* image = pixels.data() + i * image_size;
    for (size_t ch = 0; ch < kChannels; ++ch) {
      float channel_gain = 0.25f + 0.1f * static_cast<float>(ch);
      for (size_t y = 0; y < kHeight; ++y) {
        for (size_t x = 0; x < kWidth; ++x) {
          float wave = std::sin(proto.freq_x * static_cast<float>(x) * 0.2f +
                                proto.freq_y * static_cast<float>(y) * 0.2f +
                                phase);
          float noise = static_cast<float>(rng.NextGaussian(0.0, 0.05));
          float value = proto.mean[ch] + channel_gain * wave + noise;
          image[(ch * kHeight + y) * kWidth + x] = std::clamp(value, 0.0f, 1.0f);
        }
      }
    }
  }
  return TrainingData{std::move(inputs), std::move(targets)};
}

}  // namespace mmm
