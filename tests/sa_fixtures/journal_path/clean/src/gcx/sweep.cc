// The same deletion, but dominated by a journaled intent (CommitJournal::
// Begin) on the path: conformant, the analysis must stay silent.

class Env {
 public:
  int Delete(const char* path);
};

class CommitJournal {
 public:
  int Begin(const char* path);
};

void SweepEverything(Env* env, CommitJournal* journal, const char* path) {
  journal->Begin(path);
  env->Delete(path);
}
