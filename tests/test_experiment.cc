#include "workload/experiment.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mmm {
namespace {

using testing::TempDir;

TEST(MedianTest, OddEvenEmpty) {
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_EQ(Median({3.0}), 3.0);
  EXPECT_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

class ExperimentTest : public ::testing::Test {
 protected:
  ExperimentConfig SmallConfig(const TempDir& temp) {
    ExperimentConfig config;
    config.scenario = ScenarioConfig::Battery(30);
    config.scenario.samples_per_dataset = 48;
    config.u3_iterations = 2;
    config.runs = 1;
    config.profile = SetupProfile::Server();
    config.work_dir = temp.path() + "/exp";
    config.provenance_recover = {1, 16};
    return config;
  }
};

TEST_F(ExperimentTest, ProducesExpectedRowsAndOrdering) {
  TempDir temp("experiment");
  ExperimentRunner runner(SmallConfig(temp));
  ASSERT_OK_AND_ASSIGN(std::vector<UseCaseResult> results, runner.Run());
  ASSERT_EQ(results.size(), 3u);  // U1, U3-1, U3-2
  EXPECT_EQ(results[0].use_case, "U1");
  EXPECT_EQ(results[2].use_case, "U3-2");

  for (const UseCaseResult& row : results) {
    ASSERT_EQ(row.metrics.size(), 4u) << row.use_case;
    for (const auto& [type, metrics] : row.metrics) {
      EXPECT_FALSE(metrics.set_id.empty());
      EXPECT_GT(metrics.storage_bytes, 0u);
      EXPECT_GT(metrics.tts_seconds, 0.0);
      EXPECT_GT(metrics.ttr_seconds, 0.0);
    }
  }

  // Figure 3 orderings at U1: Baseline/Provenance < Update < MMlib-base.
  const auto& u1 = results[0].metrics;
  EXPECT_LT(u1.at(ApproachType::kBaseline).storage_bytes,
            u1.at(ApproachType::kMMlibBase).storage_bytes);
  // Provenance's U1 save uses Baseline's logic; sizes match up to a few
  // metadata-document bytes (the approach-name string differs).
  EXPECT_NEAR(
      static_cast<double>(u1.at(ApproachType::kBaseline).storage_bytes),
      static_cast<double>(u1.at(ApproachType::kProvenance).storage_bytes), 64);
  EXPECT_GT(u1.at(ApproachType::kUpdate).storage_bytes,
            u1.at(ApproachType::kBaseline).storage_bytes);

  // Figure 3 orderings at U3: Provenance << Update << Baseline == U1 value.
  const auto& u3 = results[1].metrics;
  EXPECT_LT(u3.at(ApproachType::kProvenance).storage_bytes,
            u3.at(ApproachType::kUpdate).storage_bytes);
  EXPECT_LT(u3.at(ApproachType::kUpdate).storage_bytes,
            u3.at(ApproachType::kBaseline).storage_bytes);
  // Baseline's storage is flat across use cases (up to the lineage field in
  // the metadata document).
  EXPECT_NEAR(static_cast<double>(u3.at(ApproachType::kBaseline).storage_bytes),
              static_cast<double>(u1.at(ApproachType::kBaseline).storage_bytes),
              64);

  // O3: MMlib-base performs ~3n store writes, Baseline a constant few.
  EXPECT_GT(u1.at(ApproachType::kMMlibBase).file_store_writes +
                u1.at(ApproachType::kMMlibBase).doc_store_writes,
            80u);
  EXPECT_LE(u1.at(ApproachType::kBaseline).file_store_writes +
                u1.at(ApproachType::kBaseline).doc_store_writes,
            4u);
}

TEST_F(ExperimentTest, TtrStaircaseForRecursiveApproaches) {
  TempDir temp("experiment-ttr");
  ExperimentConfig config = SmallConfig(temp);
  config.u3_iterations = 3;
  ExperimentRunner runner(config);
  ASSERT_OK_AND_ASSIGN(std::vector<UseCaseResult> results, runner.Run());
  // Update's TTR grows along the chain (staircase, Figure 5); use the
  // modeled store time, which is noise-free.
  double prev = results[0].metrics.at(ApproachType::kUpdate).ttr_modeled_seconds;
  for (size_t i = 1; i < results.size(); ++i) {
    double current =
        results[i].metrics.at(ApproachType::kUpdate).ttr_modeled_seconds;
    EXPECT_GT(current, prev) << results[i].use_case;
    prev = current;
  }
  // Baseline's modeled TTR is flat across use cases.
  double u1 = results[0].metrics.at(ApproachType::kBaseline).ttr_modeled_seconds;
  double u3_last =
      results.back().metrics.at(ApproachType::kBaseline).ttr_modeled_seconds;
  EXPECT_NEAR(u3_last / u1, 1.0, 0.05);
}

TEST_F(ExperimentTest, SubsetOfApproachesRuns) {
  TempDir temp("experiment-subset");
  ExperimentConfig config = SmallConfig(temp);
  config.approaches = {ApproachType::kBaseline, ApproachType::kUpdate};
  config.u3_iterations = 1;
  ExperimentRunner runner(config);
  ASSERT_OK_AND_ASSIGN(std::vector<UseCaseResult> results, runner.Run());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].metrics.size(), 2u);
  EXPECT_FALSE(results[0].metrics.contains(ApproachType::kProvenance));
}

}  // namespace
}  // namespace mmm
