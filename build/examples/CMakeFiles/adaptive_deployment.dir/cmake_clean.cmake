file(REMOVE_RECURSE
  "CMakeFiles/adaptive_deployment.dir/adaptive_deployment.cpp.o"
  "CMakeFiles/adaptive_deployment.dir/adaptive_deployment.cpp.o.d"
  "adaptive_deployment"
  "adaptive_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
