// Extension experiment (motivated by §1: "we ... only recover a selected
// number of models, for example, after an accident"): selective model
// recovery.
//
// Measures time and store bytes read to recover k models out of a 5000-model
// fleet at the end of a 3-delta chain, per approach, compared against full
// set recovery. Baseline/Update use ranged parameter-blob reads; MMlib-base
// fetches per-model artifacts; Provenance replays only the requested models.
//
// Knobs: MMM_MODELS (default 5000), MMM_SAMPLES (256).

#include "bench/bench_util.h"

using namespace mmm;         // NOLINT — benchmark driver
using namespace mmm::bench;  // NOLINT

int main() {
  BenchKnobs knobs = BenchKnobs::FromEnv(/*default_models=*/5000,
                                         /*default_runs=*/1);
  knobs.Describe("tab_selective_recovery");

  // Build one store with a 3-delta chain per approach.
  ScenarioConfig scenario_config = ScenarioConfig::Battery(knobs.models);
  scenario_config.samples_per_dataset = knobs.samples;
  MultiModelScenario scenario(scenario_config);
  scenario.Init().Check();

  std::string work_dir = "/tmp/mmm-bench-selective";
  Env::Default()->RemoveDirs(work_dir).Check();
  ModelSetManager::Options options;
  options.root_dir = work_dir;
  options.resolver = &scenario;
  auto manager = ModelSetManager::Open(options).ValueOrDie();

  std::map<ApproachType, std::string> heads;
  for (ApproachType type : kAllApproaches) {
    heads[type] =
        manager->SaveInitial(type, scenario.current_set()).ValueOrDie().set_id;
  }
  for (int cycle = 0; cycle < static_cast<int>(knobs.u3_iterations); ++cycle) {
    ModelSetUpdateInfo update = scenario.AdvanceCycle().ValueOrDie();
    for (ApproachType type : kAllApproaches) {
      ModelSetUpdateInfo derived = update;
      derived.base_set_id = heads[type];
      heads[type] = manager
                        ->SaveDerived(type, scenario.current_set(), derived)
                        .ValueOrDie()
                        .set_id;
    }
  }

  std::printf(
      "\nRecovering k of %zu models from the newest set (3-delta chain):\n",
      knobs.models);
  std::printf("%-11s | %6s | %12s | %14s | %12s\n", "approach", "k",
              "time (s)", "bytes read", "vs full");

  Rng rng(99);
  for (ApproachType type : kAllApproaches) {
    // Full recovery as the reference point.
    manager->file_store()->ResetStats();
    manager->doc_store()->ResetStats();
    StopWatch full_watch;
    manager->Recover(heads[type]).status().Check();
    double full_time = full_watch.ElapsedSeconds();
    uint64_t full_bytes = manager->file_store()->stats().bytes_read +
                          manager->doc_store()->stats().bytes_read;

    for (size_t k : {size_t{1}, size_t{10}, size_t{100}}) {
      std::vector<size_t> indices;
      for (size_t i = 0; i < k; ++i) {
        indices.push_back(rng.NextBounded(knobs.models));
      }
      manager->file_store()->ResetStats();
      manager->doc_store()->ResetStats();
      StopWatch watch;
      manager->RecoverModels(heads[type], indices).status().Check();
      double elapsed = watch.ElapsedSeconds();
      uint64_t bytes = manager->file_store()->stats().bytes_read +
                       manager->doc_store()->stats().bytes_read;
      std::printf("%-11s | %6zu | %12.4f | %14llu | %11.1f%%\n",
                  ApproachTypeName(type).c_str(), k, elapsed,
                  static_cast<unsigned long long>(bytes),
                  100.0 * static_cast<double>(bytes) /
                      static_cast<double>(full_bytes));
    }
    std::printf("%-11s | %6s | %12.4f | %14llu | %11s\n",
                ApproachTypeName(type).c_str(), "all", full_time,
                static_cast<unsigned long long>(full_bytes), "100.0%");
  }
  std::printf(
      "\n(Expected: for the blob-based approaches, bytes read scale with k, "
      "not with\n the fleet size; Update additionally reads the chain's "
      "diff blobs; Provenance\n pays k x chain retraining time but reads "
      "almost nothing.)\n");

  CleanupWorkDir(knobs, work_dir);
  return 0;
}
