#include "nn/trainer.h"

#include <cstdlib>
#include <memory>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mmm {

JsonValue TrainConfig::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("epochs", static_cast<int64_t>(epochs));
  json.Set("batch_size", static_cast<int64_t>(batch_size));
  json.Set("learning_rate", static_cast<double>(learning_rate));
  json.Set("momentum", static_cast<double>(momentum));
  json.Set("optimizer", optimizer);
  json.Set("loss", loss);
  // Stored as a string: JSON numbers are doubles and would silently lose
  // precision for full-range 64-bit seeds, breaking bit-exact replay.
  json.Set("shuffle_seed", std::to_string(shuffle_seed));
  JsonValue layer_array = JsonValue::Array();
  for (const std::string& layer : trainable_layers) layer_array.Append(layer);
  json.Set("trainable_layers", std::move(layer_array));
  return json;
}

Result<TrainConfig> TrainConfig::FromJson(const JsonValue& json) {
  TrainConfig config;
  MMM_ASSIGN_OR_RETURN(int64_t epochs, json.GetInt64("epochs"));
  config.epochs = static_cast<int>(epochs);
  MMM_ASSIGN_OR_RETURN(int64_t batch, json.GetInt64("batch_size"));
  config.batch_size = static_cast<size_t>(batch);
  MMM_ASSIGN_OR_RETURN(double lr, json.GetDouble("learning_rate"));
  config.learning_rate = static_cast<float>(lr);
  config.momentum = static_cast<float>(json.GetDoubleOr("momentum", 0.0));
  MMM_ASSIGN_OR_RETURN(config.optimizer, json.GetString("optimizer"));
  MMM_ASSIGN_OR_RETURN(config.loss, json.GetString("loss"));
  MMM_ASSIGN_OR_RETURN(std::string seed_text, json.GetString("shuffle_seed"));
  char* end = nullptr;
  config.shuffle_seed = std::strtoull(seed_text.c_str(), &end, 10);
  if (end == seed_text.c_str() || *end != '\0') {
    return Status::Corruption("train config: bad shuffle_seed '", seed_text, "'");
  }
  MMM_ASSIGN_OR_RETURN(const JsonValue* layers, json.Get("trainable_layers"));
  for (const JsonValue& layer : layers->array_items()) {
    MMM_ASSIGN_OR_RETURN(std::string name, layer.AsString());
    config.trainable_layers.push_back(std::move(name));
  }
  return config;
}

namespace {

Result<std::unique_ptr<Loss>> MakeLoss(const std::string& name) {
  if (name == "mse") return std::unique_ptr<Loss>(std::make_unique<MSELoss>());
  if (name == "cross_entropy") {
    return std::unique_ptr<Loss>(std::make_unique<CrossEntropyLoss>());
  }
  return Status::InvalidArgument("unknown loss '", name, "'");
}

Result<std::unique_ptr<Optimizer>> MakeOptimizer(const TrainConfig& config,
                                                 std::vector<Parameter*> params) {
  if (config.optimizer == "sgd") {
    return std::unique_ptr<Optimizer>(std::make_unique<SGD>(
        std::move(params), config.learning_rate, config.momentum));
  }
  if (config.optimizer == "adam") {
    return std::unique_ptr<Optimizer>(
        std::make_unique<Adam>(std::move(params), config.learning_rate));
  }
  return Status::InvalidArgument("unknown optimizer '", config.optimizer, "'");
}

/// Copies sample rows `indices[start, start+count)` of `data` (first dim =
/// sample) into a new tensor with the same trailing dims.
Tensor GatherBatch(const Tensor& data, const std::vector<size_t>& indices,
                   size_t start, size_t count) {
  size_t sample_size = data.dim(0) == 0 ? 0 : data.numel() / data.dim(0);
  Shape batch_shape = data.shape();
  batch_shape[0] = count;
  Tensor batch(batch_shape);
  auto src = data.data();
  auto dst = batch.mutable_data();
  for (size_t i = 0; i < count; ++i) {
    size_t sample = indices[start + i];
    for (size_t j = 0; j < sample_size; ++j) {
      dst[i * sample_size + j] = src[sample * sample_size + j];
    }
  }
  return batch;
}

}  // namespace

Result<TrainReport> TrainModel(Model* model, const Tensor& inputs,
                               const Tensor& targets, const TrainConfig& config) {
  if (inputs.ndim() < 1 || targets.ndim() < 1 ||
      inputs.dim(0) != targets.dim(0)) {
    return Status::InvalidArgument("inputs and targets must share dim 0");
  }
  if (inputs.dim(0) == 0) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  if (config.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (config.epochs < 0) {
    return Status::InvalidArgument("epochs must be non-negative");
  }

  MMM_RETURN_NOT_OK(model->network()->SetTrainableLayers(config.trainable_layers));
  MMM_ASSIGN_OR_RETURN(std::unique_ptr<Loss> loss, MakeLoss(config.loss));
  MMM_ASSIGN_OR_RETURN(
      std::unique_ptr<Optimizer> optimizer,
      MakeOptimizer(config, model->network()->Parameters()));

  TrainReport report;
  MMM_ASSIGN_OR_RETURN(report.initial_loss,
                       EvaluateLoss(model, inputs, targets, config.loss));
  report.final_loss = report.initial_loss;

  const size_t n = inputs.dim(0);
  Rng shuffle_rng = Rng(config.shuffle_seed).Fork("train-shuffle");
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle_rng.Shuffle(&order);
    for (size_t start = 0; start < n; start += config.batch_size) {
      size_t count = std::min(config.batch_size, n - start);
      Tensor batch_x = GatherBatch(inputs, order, start, count);
      Tensor batch_y = GatherBatch(targets, order, start, count);
      Tensor prediction = model->network()->Forward(batch_x);
      report.final_loss = loss->Forward(prediction, batch_y);
      optimizer->ZeroGrad();
      model->network()->Backward(loss->Backward());
      optimizer->Step();
      ++report.steps;
    }
  }
  // Leave the model fully trainable for subsequent callers.
  MMM_RETURN_NOT_OK(model->network()->SetTrainableLayers({}));
  return report;
}

Result<float> EvaluateLoss(Model* model, const Tensor& inputs,
                           const Tensor& targets, const std::string& loss_name) {
  MMM_ASSIGN_OR_RETURN(std::unique_ptr<Loss> loss, MakeLoss(loss_name));
  Tensor prediction = model->network()->Forward(inputs);
  return loss->Forward(prediction, targets);
}

}  // namespace mmm
