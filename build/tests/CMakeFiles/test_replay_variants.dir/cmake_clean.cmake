file(REMOVE_RECURSE
  "CMakeFiles/test_replay_variants.dir/test_replay_variants.cc.o"
  "CMakeFiles/test_replay_variants.dir/test_replay_variants.cc.o.d"
  "test_replay_variants"
  "test_replay_variants.pdb"
  "test_replay_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
