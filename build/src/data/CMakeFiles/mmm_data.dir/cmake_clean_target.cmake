file(REMOVE_RECURSE
  "libmmm_data.a"
)
