#include "prov/pipeline.h"

#include "common/strings.h"
#include "serialize/sha256.h"

namespace mmm {

TrainPipelineSpec TrainPipelineSpec::Create(TrainConfig config, std::string code) {
  TrainPipelineSpec spec;
  spec.train_config = std::move(config);
  spec.pipeline_code = std::move(code);
  spec.code_hash = Sha256::Hash(spec.pipeline_code).ToHex();
  return spec;
}

Status TrainPipelineSpec::Validate() const {
  if (Sha256::Hash(pipeline_code).ToHex() != code_hash) {
    return Status::Corruption("pipeline code hash mismatch");
  }
  return Status::OK();
}

JsonValue TrainPipelineSpec::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("train_config", train_config.ToJson());
  json.Set("pipeline_code", pipeline_code);
  json.Set("code_hash", code_hash);
  return json;
}

Result<TrainPipelineSpec> TrainPipelineSpec::FromJson(const JsonValue& json) {
  TrainPipelineSpec spec;
  MMM_ASSIGN_OR_RETURN(const JsonValue* config_json, json.Get("train_config"));
  MMM_ASSIGN_OR_RETURN(spec.train_config, TrainConfig::FromJson(*config_json));
  MMM_ASSIGN_OR_RETURN(spec.pipeline_code, json.GetString("pipeline_code"));
  MMM_ASSIGN_OR_RETURN(spec.code_hash, json.GetString("code_hash"));
  return spec;
}

std::string CanonicalPipelineCode(const TrainConfig& config) {
  std::string code;
  code += "def update_model(model, dataset, config):\n";
  code += "    # deterministic single-threaded fp32 training\n";
  code += StringFormat("    optimizer = %s(model.parameters(), lr=%g",
                       config.optimizer == "adam" ? "Adam" : "SGD",
                       static_cast<double>(config.learning_rate));
  if (config.momentum != 0.0f) {
    code += StringFormat(", momentum=%g", static_cast<double>(config.momentum));
  }
  code += ")\n";
  code += StringFormat("    criterion = %s()\n",
                       config.loss == "cross_entropy" ? "CrossEntropyLoss"
                                                      : "MSELoss");
  code += StringFormat("    loader = DataLoader(dataset, batch_size=%zu,\n",
                       config.batch_size);
  code += StringFormat("                        shuffle_seed=%llu)\n",
                       static_cast<unsigned long long>(config.shuffle_seed));
  code += StringFormat("    for epoch in range(%d):\n", config.epochs);
  code += "        for x, y in loader:\n";
  code += "            optimizer.zero_grad()\n";
  code += "            loss = criterion(model(x), y)\n";
  code += "            loss.backward()\n";
  code += "            optimizer.step()\n";
  code += "    return model\n";
  return code;
}

}  // namespace mmm
