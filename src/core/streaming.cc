#include "core/streaming.h"

#include "core/blob_formats.h"
#include "serialize/binary_io.h"
#include "serialize/crc32.h"

namespace mmm {
namespace {

/// Header of the param blob format (see blob_formats.cc / docs/FORMATS.md):
/// magic, varint num_models, varint params_per_model.
std::vector<uint8_t> ParamBlobHeader(size_t num_models, size_t params_per_model) {
  BinaryWriter writer;
  static constexpr char kParamMagic[] = "MMMPARM1";
  writer.WriteBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(kParamMagic), 8));
  writer.WriteVarint(num_models);
  writer.WriteVarint(params_per_model);
  return writer.TakeBuffer();
}

}  // namespace

StreamingSnapshotWriter::StreamingSnapshotWriter(const StoreContext& context,
                                                 ArchitectureSpec spec,
                                                 size_t num_models,
                                                 std::string set_id)
    : context_(context),
      spec_(std::move(spec)),
      layout_(LayoutOf(spec_)),
      params_per_model_(LayoutNumel(layout_)),
      num_models_(num_models),
      set_id_(std::move(set_id)),
      blob_name_(set_id_ + ".params.bin"),
      capture_(context_) {}

Result<std::unique_ptr<StreamingSnapshotWriter>> StreamingSnapshotWriter::Begin(
    const StoreContext& context, const ArchitectureSpec& spec,
    size_t num_models) {
  MMM_RETURN_NOT_OK(context.Validate());
  if (context.blob_compression != Compression::kNone) {
    return Status::Unimplemented(
        "streaming saves do not compose with blob compression");
  }
  if (LayoutOf(spec).empty()) {
    return Status::InvalidArgument("architecture '", spec.family,
                                   "' has no parameters");
  }
  std::string set_id = context.ids->Next("set");
  auto writer = std::unique_ptr<StreamingSnapshotWriter>(
      new StreamingSnapshotWriter(context, spec, num_models, std::move(set_id)));

  std::vector<uint8_t> header =
      ParamBlobHeader(num_models, writer->params_per_model_);
  MMM_RETURN_NOT_OK(context.file_store->Put(writer->blob_name_, header));
  writer->crc_ = Crc32::Extend(0, header);
  return writer;
}

Status StreamingSnapshotWriter::Append(const StateDict& model) {
  if (finished_) {
    return Status::InvalidArgument("streaming writer already finished");
  }
  if (appended_ >= num_models_) {
    return Status::InvalidArgument("streaming writer declared ", num_models_,
                                   " models; cannot append more");
  }
  if (model.size() != layout_.size()) {
    return Status::InvalidArgument("model has ", model.size(),
                                   " parameters, layout expects ",
                                   layout_.size());
  }
  BinaryWriter writer;
  for (size_t p = 0; p < layout_.size(); ++p) {
    if (model[p].first != layout_[p].first ||
        model[p].second.shape() != layout_[p].second) {
      return Status::InvalidArgument("model parameter ", p,
                                     " does not match layout ('",
                                     model[p].first, "')");
    }
    writer.WriteFloatSpan(model[p].second.data());
  }
  MMM_RETURN_NOT_OK(context_.file_store->Append(blob_name_, writer.buffer()));
  crc_ = Crc32::Extend(crc_, writer.buffer());
  ++appended_;
  return Status::OK();
}

Result<SaveResult> StreamingSnapshotWriter::Finish() {
  if (finished_) {
    return Status::InvalidArgument("streaming writer already finished");
  }
  if (appended_ != num_models_) {
    return Status::InvalidArgument("streaming writer declared ", num_models_,
                                   " models but ", appended_,
                                   " were appended");
  }
  finished_ = true;
  // CRC footer (little-endian), matching EncodeParamBlob's framing.
  BinaryWriter footer;
  footer.WriteUint32(crc_);
  MMM_RETURN_NOT_OK(context_.file_store->Append(blob_name_, footer.buffer()));

  SetDocument doc;
  doc.id = set_id_;
  doc.approach = "baseline";
  doc.kind = "full";
  doc.family = spec_.family;
  doc.num_models = num_models_;
  doc.arch_blob = set_id_ + ".arch.json";
  doc.param_blob = blob_name_;
  StoreBatch batch = MakeBatch(context_);
  // Only the trailer commits through the batch: the parameter blob itself
  // was streamed directly (Begin/Append), outside journal protection.
  batch.AnnotateCommit(set_id_, doc.approach);
  batch.PutBlobString(doc.arch_blob, EncodeArchBlob(spec_));
  StageSetDocument(&batch, doc);
  MMM_RETURN_NOT_OK(batch.Commit());

  SaveResult result;
  result.set_id = set_id_;
  capture_.FillSave(&result);
  return result;
}

}  // namespace mmm
